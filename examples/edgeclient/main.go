// Enhanced client at the edge (§I, §III-A, Fig 4): capture data offline
// on a device, de-identify and encrypt it locally, sync on reconnect,
// run a platform-approved model locally, and show the client cache
// absorbing knowledge-base reads.
//
//	go run ./examples/edgeclient
package main

import (
	"fmt"
	"log"
	"time"

	"healthcloud/internal/analytics"
	"healthcloud/internal/client"
	"healthcloud/internal/consent"
	"healthcloud/internal/core"
	"healthcloud/internal/fhir"
	"healthcloud/internal/kb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Enhanced client: edge computing, privacy, offline (§III-A) ===")
	kbCfg := kb.DefaultConfig()
	kbCfg.Drugs, kbCfg.Diseases = 40, 30
	dataset, err := kb.Generate(kbCfg)
	if err != nil {
		return err
	}
	platform, err := core.New(core.Config{Tenant: "mercy-health", KBDataset: dataset,
		KBLatency: 20 * time.Millisecond})
	if err != nil {
		return err
	}
	defer platform.Close()

	// Deploy a DELT-derived risk model through the lifecycle so it can be
	// pushed to clients.
	model := &analytics.LinearModel{Name: "hba1c-risk", Bias: 6.0,
		Weights: map[string]float64{"metformin": -1.2, "steroid": 0.4, "age_decades": 0.05}}
	payload, err := model.Marshal()
	if err != nil {
		return err
	}
	platform.Analytics.Create("hba1c-risk", nil)
	platform.Analytics.MarkTrained("hba1c-risk", 1, payload)
	platform.Analytics.RecordTest("hba1c-risk", 1, map[string]float64{"auc": 0.88}, "auc", 0.8)
	platform.Analytics.Approve("hba1c-risk", 1, "compliance-officer")
	platform.Analytics.Deploy("hba1c-risk", 1)

	device, err := platform.NewEnhancedClient("field-tablet", 64)
	if err != nil {
		return err
	}
	if err := device.InstallModel("hba1c-risk"); err != nil {
		return err
	}
	fmt.Println("approved model pushed to the device")

	// Go offline: rural clinic with no connectivity.
	device.SetOnline(false)
	fmt.Println("\n-- device offline --")

	// Local analytics still work.
	risk, err := device.Predict("hba1c-risk", map[string]float64{"metformin": 1, "age_decades": 5})
	if err != nil {
		return err
	}
	fmt.Printf("local model prediction (offline): predicted HbA1c %.2f%%\n", risk)

	// Captures queue locally, de-identified and encrypted on-device.
	for i, pid := range []string{"patient-a", "patient-b", "patient-c"} {
		platform.Consents.Grant(pid, "field-study", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid,
			Name:   []fhir.HumanName{{Family: "Confidential"}},
			Gender: "female", BirthDate: "1975-01-02",
			Address: []fhir.Address{{State: "MT", PostalCode: "59901"}}})
		b.AddResource(&fhir.Observation{ResourceType: "Observation", Status: "final",
			Code:          fhir.CodeableConcept{Text: "HbA1c"},
			ValueQuantity: &fhir.Quantity{Value: 6.5 + float64(i)*0.4, Unit: "%"}})
		// De-identify BEFORE anything leaves the device (§IV-C).
		if _, err := device.Capture(b, "field-study", client.Options{Deidentify: true}); err != nil {
			return err
		}
	}
	fmt.Printf("captured %d bundles offline (de-identified + encrypted on device)\n", device.Pending())

	// Reconnect and sync.
	device.SetOnline(true)
	fmt.Println("\n-- device back online --")
	n, err := device.Sync()
	if err != nil {
		return err
	}
	fmt.Printf("synced %d queued captures\n", n)
	for _, id := range device.Uploads() {
		st, err := platform.Ingest.WaitForUpload(id, 30*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("  upload %s: %s\n", id[:14]+"…", st.State)
	}

	// Client cache vs simulated 20ms WAN to the knowledge base.
	key := "drug:" + dataset.DrugIDs[0]
	start := time.Now()
	device.QueryKB(key)
	cold := time.Since(start)
	start = time.Now()
	device.QueryKB(key)
	warm := time.Since(start)
	fmt.Printf("\nkb read: cold=%v (remote), warm=%v (client cache) — %.0fx faster\n",
		cold.Round(time.Microsecond), warm.Round(time.Microsecond), float64(cold)/float64(warm))
	fmt.Println("=== done ===")
	return nil
}
