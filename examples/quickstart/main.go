// Quickstart: stand up an in-process trusted health cloud instance,
// register a device, consent a patient, ingest an encrypted FHIR bundle
// through the asynchronous pipeline, inspect its blockchain provenance
// trail, and run an anonymized export.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"healthcloud/internal/client"
	"healthcloud/internal/consent"
	"healthcloud/internal/core"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/kb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Trusted Healthcare Data Analytics Cloud Platform: quickstart ===")

	// A small knowledge base keeps startup fast.
	kbCfg := kb.DefaultConfig()
	kbCfg.Drugs, kbCfg.Diseases = 40, 30
	dataset, err := kb.Generate(kbCfg)
	if err != nil {
		return err
	}
	platform, err := core.New(core.Config{
		Tenant:      "mercy-health",
		LedgerPeers: []string{"hospital", "audit-svc", "data-protection"},
		KBDataset:   dataset,
	})
	if err != nil {
		return err
	}
	defer platform.Close()
	fmt.Printf("platform up with %d components\n", len(platform.Components()))

	// Provision and attest the trusted instance (Fig 1 / §II-A).
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return err
	}
	host, vm, err := platform.ProvisionTrustedInstance(signer)
	if err != nil {
		return err
	}
	fmt.Printf("trusted instance attested: host=%s vm=%s\n", host, vm)

	// Patient consents their data to the diabetes study.
	platform.Consents.Grant("patient-jane", "diabetes-study", consent.PurposeResearch, 0)
	if n, err := platform.SyncConsentProvenance(10 * time.Second); err == nil {
		fmt.Printf("consent provenance: %d event(s) on the ledger\n", n)
	}

	// An enhanced client captures an encrypted bundle.
	device, err := platform.NewEnhancedClient("janes-phone", 32)
	if err != nil {
		return err
	}
	bundle := fhir.NewBundle("collection")
	bundle.AddResource(&fhir.Patient{ResourceType: "Patient", ID: "patient-jane",
		Name:   []fhir.HumanName{{Family: "Doe", Given: []string{"Jane"}}},
		Gender: "female", BirthDate: "1980-04-02",
		Address: []fhir.Address{{State: "NY", PostalCode: "10598"}}})
	bundle.AddResource(&fhir.Observation{ResourceType: "Observation", Status: "final",
		Code:          fhir.CodeableConcept{Coding: []fhir.Coding{{System: "http://loinc.org", Code: "4548-4", Display: "HbA1c"}}},
		Subject:       fhir.Reference{Reference: "Patient/patient-jane"},
		ValueQuantity: &fhir.Quantity{Value: 7.4, Unit: "%"}})
	if _, err := device.Capture(bundle, "diabetes-study", client.Options{}); err != nil {
		return err
	}
	st, err := platform.Ingest.WaitForUpload(device.Uploads()[0], 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("ingestion: state=%s ref=%s\n", st.State, st.RefID)

	// Provenance trail from the audit peer's ledger copy.
	peer, err := platform.Provenance.Peer("audit-svc")
	if err != nil {
		return err
	}
	for _, tx := range peer.Ledger().ProvenanceTrail(st.RefID) {
		fmt.Printf("ledger: %-14s by %s\n", tx.Type, tx.Creator)
	}
	if err := peer.Ledger().VerifyChain(); err != nil {
		return err
	}
	fmt.Println("ledger chain verified")

	// Query a knowledge base through the server cache.
	record, err := device.QueryKB("drug:" + dataset.DrugIDs[0])
	if err != nil {
		return err
	}
	fmt.Printf("kb read (%d bytes) — second read is a client cache hit\n", len(record))
	device.QueryKB("drug:" + dataset.DrugIDs[0])
	fmt.Printf("client cache: %+v\n", device.CacheStats())

	// Anonymized export needs a k>=2 cohort; add two more patients.
	for _, pid := range []string{"patient-amy", "patient-bea"} {
		platform.Consents.Grant(pid, "diabetes-study", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "female",
			Address: []fhir.Address{{State: "NY", PostalCode: "10598"}}})
		if _, err := device.Capture(b, "diabetes-study", client.Options{}); err != nil {
			return err
		}
	}
	for _, id := range device.Uploads()[1:] {
		if _, err := platform.Ingest.WaitForUpload(id, 30*time.Second); err != nil {
			return err
		}
	}
	recs, err := platform.Ingest.ExportAnonymized("diabetes-study", "cro-acme")
	if err != nil {
		return err
	}
	fmt.Printf("anonymized export: %d record(s), k-anonymity verified\n", len(recs))

	// Right to forget.
	n, err := platform.Ingest.Forget("patient-jane")
	if err != nil {
		return err
	}
	fmt.Printf("right-to-forget: %d record(s) crypto-shredded\n", n)
	fmt.Println("=== done ===")
	return nil
}
