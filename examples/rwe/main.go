// Real-World-Evidence analytics (§V-B, Figs 10–11): generate a synthetic
// EMR cohort (the Explorys/MarketScan stand-in), fit the DELT model to
// recover planted drug effects on HbA1c, and show how the marginal SCCS
// baseline is fooled by co-medication confounding while DELT is not.
//
//	go run ./examples/rwe
package main

import (
	"fmt"
	"log"
	"sort"

	"healthcloud/internal/delt"
	"healthcloud/internal/emr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Drug-effect signal detection from RWE with DELT (§V-B) ===")
	cohort, err := emr.Generate(emr.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("cohort: %d patients, %d drugs, %d lab measurements\n\n",
		len(cohort.Patients), cohort.Cfg.Drugs, cohort.TotalVisits())

	model, err := delt.Fit(cohort, delt.DefaultConfig())
	if err != nil {
		return err
	}
	marginal := delt.MarginalSCCS(cohort)

	fmt.Println("effect estimates for drugs with planted effects:")
	fmt.Printf("  %-8s %8s %8s %10s\n", "drug", "true β", "DELT", "marginal")
	var effectDrugs []int
	for d := range cohort.Cfg.TrueEffects {
		effectDrugs = append(effectDrugs, d)
	}
	sort.Ints(effectDrugs)
	for _, d := range effectDrugs {
		fmt.Printf("  drug-%02d  %8.2f %8.2f %10.2f\n", d, cohort.TrueBeta[d], model.Beta[d], marginal[d])
	}

	fmt.Println("\nco-medication decoys (true β = 0; marginal analysis is fooled):")
	for _, pair := range cohort.Cfg.ConfoundPairs {
		decoy := pair[0]
		fmt.Printf("  drug-%02d  %8.2f %8.2f %10.2f   (rides along with drug-%02d)\n",
			decoy, cohort.TrueBeta[decoy], model.Beta[decoy], marginal[decoy], pair[1])
	}

	deltRMSE, _ := delt.RMSE(model.Beta, cohort.TrueBeta)
	margRMSE, _ := delt.RMSE(marginal, cohort.TrueBeta)
	fmt.Printf("\noverall effect-vector RMSE: DELT=%.3f  marginal=%.3f (%.1fx worse)\n",
		deltRMSE, margRMSE, margRMSE/deltRMSE)

	fmt.Println("\nblood-sugar-lowering repositioning candidates (β ≤ -0.2):")
	for _, d := range model.LoweringCandidates(0.2) {
		fmt.Printf("  drug-%02d (β̂=%.2f)\n", d, model.Beta[d])
	}
	fmt.Println("=== done ===")
	return nil
}
