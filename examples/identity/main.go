// Self-sovereign identity (§IV-B1): a clinician's wallet obtains a
// credential from a health authority, the commitment is anchored on the
// platform's blockchain, and the clinician authenticates at two portals
// with unlinkable pseudonyms and selective disclosure. Revocation on the
// ledger takes effect everywhere.
//
//	go run ./examples/identity
package main

import (
	"encoding/hex"
	"fmt"
	"log"
	"time"

	"healthcloud/internal/core"
	"healthcloud/internal/kb"
	"healthcloud/internal/ssi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Self-sovereign identity with identity-mixer-style privacy (§IV-B1) ===")
	kbCfg := kb.DefaultConfig()
	kbCfg.Drugs, kbCfg.Diseases = 20, 10
	dataset, err := kb.Generate(kbCfg)
	if err != nil {
		return err
	}
	platform, err := core.New(core.Config{
		Tenant:      "mercy-health",
		LedgerPeers: []string{"hospital", "audit-svc", "state-authority"},
		KBDataset:   dataset,
	})
	if err != nil {
		return err
	}
	defer platform.Close()

	// The clinician's wallet: the master secret never leaves it.
	wallet, err := ssi.NewWallet()
	if err != nil {
		return err
	}
	authority, err := ssi.NewIssuer("state-health-authority")
	if err != nil {
		return err
	}
	cred, err := authority.Issue(wallet.Commitment(), map[string]string{
		"role": "clinician", "specialty": "endocrinology", "license": "NY-88231",
	})
	if err != nil {
		return err
	}
	if err := platform.Identity.Anchor(cred, authority.Name(), 20*time.Second); err != nil {
		return err
	}
	fmt.Println("credential issued and commitment anchored on the identity ledger (no PII on-chain)")

	// Two relying parties; the clinician's pseudonyms there are unlinkable.
	nymHospital := wallet.Pseudonym("hospital-portal")
	nymResearch := wallet.Pseudonym("research-portal")
	fmt.Printf("pseudonym at hospital portal: %s…\n", hex.EncodeToString(nymHospital)[:16])
	fmt.Printf("pseudonym at research portal: %s…  (unlinkable)\n", hex.EncodeToString(nymResearch)[:16])

	hospital := ssi.NewVerifier("hospital-portal", authority.VerifyKey(), platform.Identity)
	nym, proofKey := wallet.RegisterProofKey("hospital-portal")
	hospital.Enroll(nym, proofKey)

	// Selective disclosure: the hospital learns the role, not the license.
	nonce := hospital.Challenge(nym)
	pres, err := wallet.Present(cred, "hospital-portal", nonce, []string{"role"})
	if err != nil {
		return err
	}
	attrs, err := hospital.Verify(pres)
	if err != nil {
		return err
	}
	fmt.Printf("hospital portal verified: %v (license withheld, issuer signature intact)\n", attrs)

	// A tampered presentation (role → admin) is rejected by the
	// redactable-signature check.
	nonce = hospital.Challenge(nym)
	forged, err := wallet.Present(cred, "hospital-portal", nonce, []string{"role"})
	if err != nil {
		return err
	}
	for i, f := range forged.Redacted.Disclosed {
		if f.Name == "role" {
			f.Value = "admin"
			forged.Redacted.Disclosed[i] = f
		}
	}
	if _, err := hospital.Verify(forged); err != nil {
		fmt.Printf("privilege-escalation attempt rejected: %v\n", err)
	} else {
		return fmt.Errorf("forged presentation accepted")
	}

	// The authority revokes the license on-chain; every portal sees it.
	commitment, err := cred.Commitment()
	if err != nil {
		return err
	}
	if err := platform.Identity.Revoke(commitment, authority.Name(), 20*time.Second); err != nil {
		return err
	}
	nonce = hospital.Challenge(nym)
	pres2, err := wallet.Present(cred, "hospital-portal", nonce, []string{"role"})
	if err != nil {
		return err
	}
	if _, err := hospital.Verify(pres2); err != nil {
		fmt.Printf("post-revocation presentation rejected: %v\n", err)
	} else {
		return fmt.Errorf("revoked credential accepted")
	}
	fmt.Println("=== done ===")
	return nil
}
