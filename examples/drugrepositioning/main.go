// Drug repositioning (§V-A, Fig 9): run Joint Matrix Factorization over
// the synthetic knowledge bases (PubChem/DrugBank/SIDER-style drug
// views, phenotype/ontology/gene disease views), compare it against the
// Guilt-by-Association and single-source MF baselines on held-out
// associations, and print repositioning hypotheses with learned source
// weights.
//
//	go run ./examples/drugrepositioning
package main

import (
	"fmt"
	"log"

	"healthcloud/internal/jmf"
	"healthcloud/internal/kb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Drug repositioning with JMF (§V-A) ===")
	dataset, err := kb.Generate(kb.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("knowledge base: %d drugs × %d diseases, %d drug views, %d disease views\n",
		len(dataset.DrugIDs), len(dataset.DisIDs), len(kb.DrugSources), len(kb.DiseaseSources))

	train, held := dataset.HoldOut(0.2, 1)
	fmt.Printf("held out %d known associations for evaluation\n\n", len(held))

	var drugSims, disSims [][][]float64
	for _, src := range kb.DrugSources {
		drugSims = append(drugSims, dataset.DrugSim[src])
	}
	for _, src := range kb.DiseaseSources {
		disSims = append(disSims, dataset.DisSim[src])
	}

	model, err := jmf.Fit(train, drugSims, disSims, jmf.DefaultConfig())
	if err != nil {
		return err
	}
	jmfAUC := jmf.AUC(jmf.ScoresOf(model), dataset.Assoc, train, held)

	gba, err := jmf.GBA(train, dataset.DrugSim[kb.DrugChemical])
	if err != nil {
		return err
	}
	gbaAUC := jmf.AUC(gba, dataset.Assoc, train, held)

	mf, err := jmf.SingleSourceMF(train, jmf.DefaultConfig())
	if err != nil {
		return err
	}
	mfAUC := jmf.AUC(jmf.ScoresOf(mf), dataset.Assoc, train, held)

	fmt.Println("method comparison (AUC on held-out drug-disease associations):")
	fmt.Printf("  %-22s %.3f\n", "JMF (this paper)", jmfAUC)
	fmt.Printf("  %-22s %.3f\n", "Guilt-by-Association", gbaAUC)
	fmt.Printf("  %-22s %.3f\n\n", "single-source MF", mfAUC)

	fmt.Println("learned source importances (interpretable weights):")
	for i, src := range kb.DrugSources {
		fmt.Printf("  drug/%-12s %.3f\n", src, model.DrugWeights[i])
	}
	for i, src := range kb.DiseaseSources {
		fmt.Printf("  disease/%-9s %.3f\n", src, model.DiseaseWeight[i])
	}

	fmt.Println("\nrepositioning hypotheses (top new indications per drug):")
	for _, drug := range []int{0, 1, 2} {
		top := model.TopDiseases(drug, train, 3)
		fmt.Printf("  %s →", dataset.DrugIDs[drug])
		for _, j := range top {
			verified := ""
			if dataset.Assoc[drug][j] > 0 {
				verified = "*" // held-out truth: the hypothesis is correct
			}
			fmt.Printf(" %s%s", dataset.DisIDs[j], verified)
		}
		fmt.Println()
	}
	fmt.Println("  (* = hypothesis confirmed by a held-out ground-truth association)")

	groups := model.DrugGroups()
	counts := map[int]int{}
	for _, g := range groups {
		counts[g]++
	}
	fmt.Printf("\nby-product drug groups: %d clusters over %d drugs\n", len(counts), len(groups))
	fmt.Println("=== done ===")
	return nil
}
