// Intercloud secure gateway (§II-C, Fig 1): package an analytics
// workload as a signed container, ship it from the analytics cloud to
// the data-collection cloud over a simulated WAN, remote-attest it at
// start, and contrast the cost with moving the dataset instead —
// "computation to be transferred to data instead of otherwise".
//
//	go run ./examples/intercloud
package main

import (
	"fmt"
	"log"
	"time"

	"healthcloud/internal/attest"
	"healthcloud/internal/audit"
	"healthcloud/internal/cloud"
	"healthcloud/internal/gateway"
	"healthcloud/internal/hckrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Intercloud secure gateway (§II-C) ===")

	// The data-collection cloud: its own attestation authority, one host,
	// one VM holding the patient data.
	attSvc := attest.NewService()
	trustedSigner, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return err
	}
	attSvc.ApproveImageSigner(trustedSigner.Public())
	dataCloud := cloud.New(attSvc, audit.NewLog())
	osImg, err := cloud.NewImage("guest-os", []byte("hardened-os-v1"), trustedSigner)
	if err != nil {
		return err
	}
	if err := dataCloud.Registry().Register(osImg); err != nil {
		return err
	}
	if _, err := dataCloud.ProvisionHost("dc-host-1", 4); err != nil {
		return err
	}
	if _, err := dataCloud.LaunchVM("dc-host-1", "data-vm", "guest-os"); err != nil {
		return err
	}
	fmt.Println("data-collection cloud up: host + VM attested")

	// A 50 ms / 100 MB/s WAN between the clouds.
	link := gateway.Link{Latency: 50 * time.Millisecond, BandwidthMBps: 100}
	var modeled time.Duration
	gw, err := gateway.New(link, gateway.WithSleeper(func(d time.Duration) { modeled += d }))
	if err != nil {
		return err
	}

	// The analytics cloud authors a JMF workload container in a trusted
	// environment and signs it with the approved key.
	workloadImage, err := cloud.NewImage("jmf-workload",
		make([]byte, 1<<20), // 1 MiB container image
		trustedSigner)
	if err != nil {
		return err
	}
	receipt, err := gw.ShipWorkload(dataCloud, "dc-host-1", "data-vm", "jmf-1", workloadImage)
	if err != nil {
		return err
	}
	fmt.Printf("workload shipped: %d bytes, modeled transfer %v, chain attested=%v\n",
		receipt.BytesShipped, receipt.TransferTime, receipt.AttestedChain)

	// The rejected alternative: ship the 512 MiB dataset to the analytics
	// cloud instead.
	dataTime, err := gw.ShipData(512 << 20)
	if err != nil {
		return err
	}
	fmt.Printf("alternative (data → compute): modeled transfer %v — %.0fx slower\n",
		dataTime, float64(dataTime)/float64(receipt.TransferTime))

	// An unsigned workload is rejected by the destination's image
	// management and never runs.
	rogueSigner, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return err
	}
	rogueImage, err := cloud.NewImage("cryptominer", []byte("evil"), rogueSigner)
	if err != nil {
		return err
	}
	if _, err := gw.ShipWorkload(dataCloud, "dc-host-1", "data-vm", "rogue-1", rogueImage); err != nil {
		fmt.Printf("rogue workload rejected: %v\n", err)
	} else {
		return fmt.Errorf("rogue workload was accepted — trust chain broken")
	}
	fmt.Println("=== done ===")
	return nil
}
