package tiresias

import (
	"errors"
	"math/rand"
	"testing"

	"healthcloud/internal/kb"
)

// ddiFixture returns a dataset, its full interaction matrix, a training
// split, and the held-out pairs.
func ddiFixture(t *testing.T) (*kb.Dataset, [][]float64, [][]float64, [][2]int) {
	t.Helper()
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 100, 20
	d, err := kb.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := d.GenerateInteractions(0.05)
	if err != nil {
		t.Fatal(err)
	}
	train, held := HoldOutPairs(full, 0.2)
	return d, full, train, held
}

func sims(d *kb.Dataset) [][][]float64 {
	var out [][][]float64
	for _, src := range kb.DrugSources {
		out = append(out, d.DrugSim[src])
	}
	return out
}

func TestNewValidation(t *testing.T) {
	d, _, train, _ := ddiFixture(t)
	if _, err := New(nil, sims(d), DefaultConfig()); !errors.Is(err, ErrInput) {
		t.Errorf("nil train: %v", err)
	}
	if _, err := New(train, nil, DefaultConfig()); !errors.Is(err, ErrInput) {
		t.Errorf("no sims: %v", err)
	}
	if _, err := New(train, sims(d), Config{K: 0}); !errors.Is(err, ErrInput) {
		t.Errorf("K=0: %v", err)
	}
	tiny := [][]float64{{0, 0}, {0, 0}}
	tinySim := [][][]float64{{{1, 0}, {0, 1}}}
	if _, err := New(tiny, tinySim, DefaultConfig()); !errors.Is(err, ErrInput) {
		t.Errorf("no known interactions: %v", err)
	}
	misaligned := [][][]float64{{{1}}}
	if _, err := New(train, misaligned, DefaultConfig()); !errors.Is(err, ErrInput) {
		t.Errorf("misaligned sim: %v", err)
	}
}

func TestInteractionGeneration(t *testing.T) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 50, 10
	d, _ := kb.Generate(cfg)
	full, err := d.GenerateInteractions(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GenerateInteractions(0); err == nil {
		t.Error("density 0 accepted")
	}
	ones := 0
	for i := range full {
		if full[i][i] != 0 {
			t.Fatal("self-interaction generated")
		}
		for j := range full[i] {
			if full[i][j] != full[j][i] {
				t.Fatal("interaction matrix not symmetric")
			}
			if full[i][j] > 0 {
				ones++
			}
		}
	}
	totalPairs := 50 * 49 / 2
	wantPairs := int(0.1 * float64(totalPairs))
	if ones/2 != wantPairs {
		t.Errorf("positive pairs = %d, want %d", ones/2, wantPairs)
	}
}

func TestHoldOutPairs(t *testing.T) {
	_, full, train, held := ddiFixture(t)
	if len(held) == 0 {
		t.Fatal("nothing held out")
	}
	for _, p := range held {
		if full[p[0]][p[1]] != 1 {
			t.Errorf("held-out %v not positive in truth", p)
		}
		if train[p[0]][p[1]] != 0 || train[p[1]][p[0]] != 0 {
			t.Errorf("held-out %v still in train (both directions)", p)
		}
	}
}

func TestScoreSymmetryAndSelf(t *testing.T) {
	d, _, train, _ := ddiFixture(t)
	m, err := New(train, sims(d), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Score(3, 3) != 0 {
		t.Error("self-pair scored nonzero")
	}
	if m.Score(3, 7) != m.Score(7, 3) {
		t.Error("score not symmetric")
	}
}

// TestTiresiasBeatsBaselines is experiment E14's shape: similarity-based
// pair prediction beats popularity and random ranking.
func TestTiresiasBeatsBaselines(t *testing.T) {
	d, full, train, held := ddiFixture(t)
	m, err := New(train, sims(d), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tireAUC := PairAUC(m.ScoreAll(), full, train, held)
	degAUC := PairAUC(DegreeBaseline(train), full, train, held)
	rng := rand.New(rand.NewSource(5))
	randScores := make([][]float64, len(full))
	for i := range randScores {
		randScores[i] = make([]float64, len(full))
		for j := range randScores[i] {
			randScores[i][j] = rng.Float64()
		}
	}
	randAUC := PairAUC(randScores, full, train, held)
	t.Logf("AUC: tiresias=%.3f degree=%.3f random=%.3f", tireAUC, degAUC, randAUC)
	if tireAUC < 0.65 {
		t.Errorf("tiresias AUC = %.3f, want >= 0.65", tireAUC)
	}
	if tireAUC <= degAUC {
		t.Errorf("tiresias (%.3f) did not beat degree baseline (%.3f)", tireAUC, degAUC)
	}
	if randAUC < 0.4 || randAUC > 0.6 {
		t.Errorf("random AUC = %.3f, want ~0.5 (evaluator sanity)", randAUC)
	}
}

func TestPairAUCEdgeCases(t *testing.T) {
	truth := [][]float64{{0, 1}, {1, 0}}
	train := [][]float64{{0, 0}, {0, 0}}
	scores := [][]float64{{0, 0.9}, {0.9, 0}}
	if got := PairAUC(scores, truth, train, nil); got != 0 {
		t.Errorf("no held-out: %f", got)
	}
	// One positive, no negatives -> 0.
	if got := PairAUC(scores, truth, train, [][2]int{{0, 1}}); got != 0 {
		t.Errorf("no negatives: %f", got)
	}
}
