// Package tiresias implements similarity-based drug–drug interaction
// prediction after the Tiresias system §V-A cites (Fokoue et al.,
// ESWC'16): "Entities of interest for drug-drug interaction prediction
// are pairs of drugs instead of single drugs. Tiresias computes
// similarities on pairs of drugs by combining similarity metrics on
// individual drugs." A candidate pair is scored by the similarity-
// weighted vote of known interacting pairs, where pair similarity is the
// best alignment of the two pairings' single-drug similarities combined
// across sources.
package tiresias

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Config tunes prediction.
type Config struct {
	// K is the number of nearest known interacting pairs that vote.
	K int
}

// DefaultConfig returns the standard settings.
func DefaultConfig() Config { return Config{K: 20} }

// ErrInput reports invalid inputs.
var ErrInput = errors.New("tiresias: invalid input")

// Model holds the known-interaction training data and similarity views.
type Model struct {
	sims  [][][]float64 // per-source drug similarity
	known [][2]int      // training interacting pairs (i<j)
	n     int
	cfg   Config
}

// New builds a model from training interactions (symmetric 0/1 matrix)
// and one or more single-drug similarity sources.
func New(train [][]float64, sims [][][]float64, cfg Config) (*Model, error) {
	n := len(train)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty interaction matrix", ErrInput)
	}
	if len(sims) == 0 {
		return nil, fmt.Errorf("%w: need at least one similarity source", ErrInput)
	}
	for s, sim := range sims {
		if len(sim) != n {
			return nil, fmt.Errorf("%w: source %d not aligned (%d vs %d)", ErrInput, s, len(sim), n)
		}
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("%w: K must be positive", ErrInput)
	}
	m := &Model{sims: sims, n: n, cfg: cfg}
	for i := 0; i < n; i++ {
		if len(train[i]) != n {
			return nil, fmt.Errorf("%w: ragged interaction matrix", ErrInput)
		}
		for j := i + 1; j < n; j++ {
			if train[i][j] > 0 {
				m.known = append(m.known, [2]int{i, j})
			}
		}
	}
	if len(m.known) == 0 {
		return nil, fmt.Errorf("%w: no known interactions to learn from", ErrInput)
	}
	return m, nil
}

// drugSim combines the per-source similarities of two single drugs by
// averaging across sources.
func (m *Model) drugSim(a, b int) float64 {
	s := 0.0
	for _, sim := range m.sims {
		s += sim[a][b]
	}
	return s / float64(len(m.sims))
}

// pairSim returns the similarity between pair (a,b) and pair (c,d): the
// better of the two alignments, each the geometric mean of its
// single-drug similarities.
func (m *Model) pairSim(a, b, c, d int) float64 {
	align1 := math.Sqrt(m.drugSim(a, c) * m.drugSim(b, d))
	align2 := math.Sqrt(m.drugSim(a, d) * m.drugSim(b, c))
	if align2 > align1 {
		return align2
	}
	return align1
}

// Score predicts the interaction likelihood of (a, b): the mean pair
// similarity to its K nearest known interacting pairs. Known pairs that
// share a drug with the candidate vote with the similarity of the other
// ends (triadic closure: if a interacts with c and b resembles c, then
// (a,b) is a plausible interaction).
func (m *Model) Score(a, b int) float64 {
	if a == b {
		return 0
	}
	top := make([]float64, 0, m.cfg.K)
	for _, kp := range m.known {
		if (kp[0] == a && kp[1] == b) || (kp[0] == b && kp[1] == a) {
			continue // the candidate itself must not vote
		}
		s := m.pairSim(a, b, kp[0], kp[1])
		if len(top) < m.cfg.K {
			top = append(top, s)
			continue
		}
		minAt, minV := 0, top[0]
		for i := 1; i < len(top); i++ {
			if top[i] < minV {
				minAt, minV = i, top[i]
			}
		}
		if s > minV {
			top[minAt] = s
		}
	}
	if len(top) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range top {
		sum += v
	}
	return sum / float64(len(top))
}

// ScoreAll returns the full symmetric prediction matrix.
func (m *Model) ScoreAll() [][]float64 {
	out := make([][]float64, m.n)
	for i := range out {
		out[i] = make([]float64, m.n)
	}
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			s := m.Score(i, j)
			out[i][j], out[j][i] = s, s
		}
	}
	return out
}

// DegreeBaseline scores pairs by the product of their training
// interaction degrees — the popularity baseline.
func DegreeBaseline(train [][]float64) [][]float64 {
	n := len(train)
	deg := make([]float64, n)
	for i := range train {
		for j := range train[i] {
			deg[i] += train[i][j]
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i != j {
				out[i][j] = deg[i] * deg[j]
			}
		}
	}
	return out
}

// PairAUC evaluates pair scores against held-out positive pairs,
// ranking them among all non-training pairs (i<j).
func PairAUC(scores, truth, train [][]float64, heldOut [][2]int) float64 {
	held := make(map[[2]int]bool, len(heldOut))
	for _, p := range heldOut {
		a, b := p[0], p[1]
		if a > b {
			a, b = b, a
		}
		held[[2]int{a, b}] = true
	}
	var pos, neg []float64
	n := len(truth)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if train[i][j] > 0 {
				continue
			}
			if held[[2]int{i, j}] {
				pos = append(pos, scores[i][j])
			} else if truth[i][j] == 0 {
				neg = append(neg, scores[i][j])
			}
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0
	}
	type sample struct {
		v   float64
		pos bool
	}
	all := make([]sample, 0, len(pos)+len(neg))
	for _, v := range pos {
		all = append(all, sample{v, true})
	}
	for _, v := range neg {
		all = append(all, sample{v, false})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].v < all[b].v })
	ranks := make([]float64, len(all))
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avg := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var rankSum float64
	for i, s := range all {
		if s.pos {
			rankSum += ranks[i]
		}
	}
	nP, nN := float64(len(pos)), float64(len(neg))
	return (rankSum - nP*(nP+1)/2) / (nP * nN)
}

// HoldOutPairs removes a fraction of the positive pairs (i<j) from a
// symmetric interaction matrix, deterministically by index stride, and
// returns the training copy plus the held-out pairs.
func HoldOutPairs(full [][]float64, fraction float64) (train [][]float64, heldOut [][2]int) {
	n := len(full)
	train = make([][]float64, n)
	for i := range full {
		train[i] = append([]float64(nil), full[i]...)
	}
	var positives [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if full[i][j] > 0 {
				positives = append(positives, [2]int{i, j})
			}
		}
	}
	stride := int(1 / fraction)
	if stride < 1 {
		stride = 1
	}
	for idx := 0; idx < len(positives); idx += stride {
		p := positives[idx]
		train[p[0]][p[1]] = 0
		train[p[1]][p[0]] = 0
		heldOut = append(heldOut, p)
	}
	return train, heldOut
}
