// Package analytics implements the Analytics Platform of §II-B/§III-A:
// "The Analytics platform supports various lifecycle stages of analytics
// models, namely i) data cleaning, ii) initial model generation iii)
// model testing iv) model deployment and v) model update." Models move
// through an audited state machine; only approved-and-deployed versions
// may be pushed to enhanced clients ("Customized client services could
// also take approved and compliant models and push them to enhanced
// clients", §II-C). The portable model payload is a linear scorer —
// enough to ship DELT effect vectors or JMF factor rows to the edge.
package analytics

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"healthcloud/internal/audit"
)

// Stage is a model version's lifecycle position.
type Stage string

// Lifecycle stages, in order.
const (
	StageDraft    Stage = "draft"    // created from cleaned data
	StageTrained  Stage = "trained"  // initial model generation done
	StageTested   Stage = "tested"   // evaluation metrics recorded
	StageApproved Stage = "approved" // compliance sign-off
	StageDeployed Stage = "deployed" // live on the platform
	StageRetired  Stage = "retired"
)

// Errors returned by this package.
var (
	ErrNoSuchModel   = errors.New("analytics: no such model/version")
	ErrBadTransition = errors.New("analytics: invalid stage transition")
	ErrNotApproved   = errors.New("analytics: model not approved for distribution")
	ErrTestFailed    = errors.New("analytics: model failed testing threshold")
)

// Version is one immutable model version.
type Version struct {
	Name     string
	Number   int
	Stage    Stage
	Payload  []byte // serialized model (e.g. LinearModel JSON)
	Metrics  map[string]float64
	Approver string
}

// Platform is the model registry + lifecycle manager.
type Platform struct {
	log *audit.Log

	mu     sync.RWMutex
	models map[string][]*Version
}

// NewPlatform creates an empty analytics platform.
func NewPlatform(log *audit.Log) *Platform {
	return &Platform{log: log, models: make(map[string][]*Version)}
}

// Create registers version 1 of a model in draft state (post data
// cleaning).
func (p *Platform) Create(name string, payload []byte) *Version {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := &Version{Name: name, Number: len(p.models[name]) + 1, Stage: StageDraft,
		Payload: append([]byte(nil), payload...)}
	p.models[name] = append(p.models[name], v)
	p.log.Record(audit.Event{Level: audit.LevelInfo, Service: "analytics",
		Action: "model-create", Resource: fmt.Sprintf("%s:v%d", name, v.Number)})
	return &Version{Name: v.Name, Number: v.Number, Stage: v.Stage}
}

// Update creates the next version from new training data ("model
// update"), starting again at draft.
func (p *Platform) Update(name string, payload []byte) (*Version, error) {
	p.mu.RLock()
	existing := len(p.models[name])
	p.mu.RUnlock()
	if existing == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchModel, name)
	}
	v := p.Create(name, payload)
	return v, nil
}

func (p *Platform) version(name string, number int) (*Version, error) {
	versions := p.models[name]
	if number < 1 || number > len(versions) {
		return nil, fmt.Errorf("%w: %s:v%d", ErrNoSuchModel, name, number)
	}
	return versions[number-1], nil
}

// advance moves a version along the state machine.
func (p *Platform) advance(name string, number int, from, to Stage, mutate func(*Version)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, err := p.version(name, number)
	if err != nil {
		return err
	}
	if v.Stage != from {
		return fmt.Errorf("%w: %s -> %s (version is %s)", ErrBadTransition, from, to, v.Stage)
	}
	if mutate != nil {
		mutate(v)
	}
	v.Stage = to
	p.log.Record(audit.Event{Level: audit.LevelInfo, Service: "analytics",
		Action: "model-" + string(to), Resource: fmt.Sprintf("%s:v%d", name, number)})
	return nil
}

// MarkTrained records that training completed, replacing the payload
// with the trained parameters.
func (p *Platform) MarkTrained(name string, number int, payload []byte) error {
	return p.advance(name, number, StageDraft, StageTrained, func(v *Version) {
		v.Payload = append([]byte(nil), payload...)
	})
}

// RecordTest stores evaluation metrics; the version passes to tested
// only if metric[gate] >= threshold (model testing).
func (p *Platform) RecordTest(name string, number int, metrics map[string]float64, gate string, threshold float64) error {
	if v, ok := metrics[gate]; !ok || v < threshold {
		p.log.Record(audit.Event{Level: audit.LevelWarn, Service: "analytics",
			Action: "model-test-failed", Resource: fmt.Sprintf("%s:v%d", name, number),
			Detail: fmt.Sprintf("%s=%f < %f", gate, metrics[gate], threshold)})
		return fmt.Errorf("%w: %s=%f < %f", ErrTestFailed, gate, metrics[gate], threshold)
	}
	return p.advance(name, number, StageTrained, StageTested, func(v *Version) {
		v.Metrics = make(map[string]float64, len(metrics))
		for k, val := range metrics {
			v.Metrics[k] = val
		}
	})
}

// Approve records compliance sign-off.
func (p *Platform) Approve(name string, number int, approver string) error {
	return p.advance(name, number, StageTested, StageApproved, func(v *Version) {
		v.Approver = approver
	})
}

// Deploy makes an approved version live, retiring any previously
// deployed version of the same model.
func (p *Platform) Deploy(name string, number int) error {
	p.mu.Lock()
	for _, v := range p.models[name] {
		if v.Stage == StageDeployed {
			v.Stage = StageRetired
		}
	}
	p.mu.Unlock()
	return p.advance(name, number, StageApproved, StageDeployed, nil)
}

// Retire takes a deployed version out of service.
func (p *Platform) Retire(name string, number int) error {
	return p.advance(name, number, StageDeployed, StageRetired, nil)
}

// Get returns a copy of a version.
func (p *Platform) Get(name string, number int) (Version, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, err := p.version(name, number)
	if err != nil {
		return Version{}, err
	}
	out := *v
	out.Payload = append([]byte(nil), v.Payload...)
	return out, nil
}

// Deployed returns the live version of a model.
func (p *Platform) Deployed(name string) (Version, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, v := range p.models[name] {
		if v.Stage == StageDeployed {
			out := *v
			out.Payload = append([]byte(nil), v.Payload...)
			return out, nil
		}
	}
	return Version{}, fmt.Errorf("%w: no deployed version of %s", ErrNoSuchModel, name)
}

// PushPayload returns the payload of the deployed version for
// distribution to an enhanced client. Only deployed (hence approved)
// models leave the platform.
func (p *Platform) PushPayload(name string) ([]byte, error) {
	v, err := p.Deployed(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotApproved, err)
	}
	return v.Payload, nil
}

// Models lists registered model names, sorted.
func (p *Platform) Models() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.models))
	for name := range p.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LinearModel is the portable model format pushed to enhanced clients:
// score = Bias + Σ Weights[f]·x[f]. DELT effect vectors and risk scores
// serialize into it directly.
type LinearModel struct {
	Name    string             `json:"name"`
	Bias    float64            `json:"bias"`
	Weights map[string]float64 `json:"weights"`
}

// Predict scores a feature map (missing features contribute zero).
func (m *LinearModel) Predict(features map[string]float64) float64 {
	y := m.Bias
	for f, w := range m.Weights {
		y += w * features[f]
	}
	return y
}

// Marshal serializes the model for registry storage / client push.
func (m *LinearModel) Marshal() ([]byte, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("analytics: marshal model: %w", err)
	}
	return data, nil
}

// ParseLinearModel decodes a pushed payload.
func ParseLinearModel(data []byte) (*LinearModel, error) {
	var m LinearModel
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("analytics: parse model: %w", err)
	}
	return &m, nil
}
