package analytics

import (
	"errors"
	"math"
	"testing"

	"healthcloud/internal/audit"
)

func newPlatform() *Platform { return NewPlatform(audit.NewLog()) }

// runLifecycle drives a model to deployed and returns the platform.
func runLifecycle(t *testing.T) *Platform {
	t.Helper()
	p := newPlatform()
	v := p.Create("delt-hba1c", []byte("raw"))
	if v.Number != 1 || v.Stage != StageDraft {
		t.Fatalf("created = %+v", v)
	}
	if err := p.MarkTrained("delt-hba1c", 1, []byte(`{"weights":{}}`)); err != nil {
		t.Fatal(err)
	}
	if err := p.RecordTest("delt-hba1c", 1, map[string]float64{"rmse_inv": 0.9}, "rmse_inv", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := p.Approve("delt-hba1c", 1, "compliance-officer"); err != nil {
		t.Fatal(err)
	}
	if err := p.Deploy("delt-hba1c", 1); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFullLifecycle(t *testing.T) {
	p := runLifecycle(t)
	v, err := p.Deployed("delt-hba1c")
	if err != nil {
		t.Fatal(err)
	}
	if v.Stage != StageDeployed || v.Approver != "compliance-officer" {
		t.Errorf("deployed = %+v", v)
	}
	if v.Metrics["rmse_inv"] != 0.9 {
		t.Errorf("metrics = %v", v.Metrics)
	}
}

func TestTransitionsEnforced(t *testing.T) {
	p := newPlatform()
	p.Create("m", []byte("x"))
	// Cannot skip stages.
	if err := p.Approve("m", 1, "a"); !errors.Is(err, ErrBadTransition) {
		t.Errorf("approve from draft: %v", err)
	}
	if err := p.Deploy("m", 1); !errors.Is(err, ErrBadTransition) {
		t.Errorf("deploy from draft: %v", err)
	}
	if err := p.RecordTest("m", 1, map[string]float64{"auc": 1}, "auc", 0.5); !errors.Is(err, ErrBadTransition) {
		t.Errorf("test from draft: %v", err)
	}
	if err := p.Retire("m", 1); !errors.Is(err, ErrBadTransition) {
		t.Errorf("retire from draft: %v", err)
	}
}

func TestTestGate(t *testing.T) {
	p := newPlatform()
	p.Create("m", nil)
	if err := p.MarkTrained("m", 1, []byte("params")); err != nil {
		t.Fatal(err)
	}
	err := p.RecordTest("m", 1, map[string]float64{"auc": 0.55}, "auc", 0.7)
	if !errors.Is(err, ErrTestFailed) {
		t.Fatalf("under-threshold test: %v", err)
	}
	// Version stays trained; a better test run passes.
	if err := p.RecordTest("m", 1, map[string]float64{"auc": 0.8}, "auc", 0.7); err != nil {
		t.Fatal(err)
	}
	// Missing gate metric fails.
	p.Create("m2", nil)
	p.MarkTrained("m2", 1, nil)
	if err := p.RecordTest("m2", 1, map[string]float64{"other": 1}, "auc", 0.1); !errors.Is(err, ErrTestFailed) {
		t.Errorf("missing gate metric: %v", err)
	}
}

func TestUnknownModelAndVersion(t *testing.T) {
	p := newPlatform()
	if _, err := p.Get("ghost", 1); !errors.Is(err, ErrNoSuchModel) {
		t.Errorf("Get: %v", err)
	}
	if err := p.MarkTrained("ghost", 1, nil); !errors.Is(err, ErrNoSuchModel) {
		t.Errorf("MarkTrained: %v", err)
	}
	if _, err := p.Update("ghost", nil); !errors.Is(err, ErrNoSuchModel) {
		t.Errorf("Update: %v", err)
	}
	p.Create("m", nil)
	if _, err := p.Get("m", 2); !errors.Is(err, ErrNoSuchModel) {
		t.Errorf("Get v2: %v", err)
	}
	if _, err := p.Get("m", 0); !errors.Is(err, ErrNoSuchModel) {
		t.Errorf("Get v0: %v", err)
	}
}

func TestUpdateCreatesNextVersionAndDeployRetiresOld(t *testing.T) {
	p := runLifecycle(t)
	v2, err := p.Update("delt-hba1c", []byte("new data"))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Number != 2 || v2.Stage != StageDraft {
		t.Fatalf("v2 = %+v", v2)
	}
	if err := p.MarkTrained("delt-hba1c", 2, []byte("params2")); err != nil {
		t.Fatal(err)
	}
	if err := p.RecordTest("delt-hba1c", 2, map[string]float64{"rmse_inv": 0.95}, "rmse_inv", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := p.Approve("delt-hba1c", 2, "compliance-officer"); err != nil {
		t.Fatal(err)
	}
	if err := p.Deploy("delt-hba1c", 2); err != nil {
		t.Fatal(err)
	}
	// v1 retired, v2 live.
	v1, _ := p.Get("delt-hba1c", 1)
	if v1.Stage != StageRetired {
		t.Errorf("v1 stage = %s", v1.Stage)
	}
	live, _ := p.Deployed("delt-hba1c")
	if live.Number != 2 {
		t.Errorf("live version = %d", live.Number)
	}
}

func TestPushPayloadOnlyDeployed(t *testing.T) {
	p := newPlatform()
	p.Create("m", []byte("draft-payload"))
	if _, err := p.PushPayload("m"); !errors.Is(err, ErrNotApproved) {
		t.Errorf("push draft: %v", err)
	}
	p2 := runLifecycle(t)
	payload, err := p2.PushPayload("delt-hba1c")
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != `{"weights":{}}` {
		t.Errorf("payload = %q", payload)
	}
}

func TestRetire(t *testing.T) {
	p := runLifecycle(t)
	if err := p.Retire("delt-hba1c", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deployed("delt-hba1c"); !errors.Is(err, ErrNoSuchModel) {
		t.Errorf("Deployed after retire: %v", err)
	}
}

func TestModelsListing(t *testing.T) {
	p := newPlatform()
	p.Create("zeta", nil)
	p.Create("alpha", nil)
	got := p.Models()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Models = %v", got)
	}
}

func TestLinearModelRoundTrip(t *testing.T) {
	m := &LinearModel{Name: "hba1c-risk", Bias: 6.0,
		Weights: map[string]float64{"metformin": -1.2, "steroid": 0.4}}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ParseLinearModel(data)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Predict(map[string]float64{"metformin": 1})
	if math.Abs(got-4.8) > 1e-9 {
		t.Errorf("Predict = %f, want 4.8", got)
	}
	// Missing features contribute zero.
	if m2.Predict(nil) != 6.0 {
		t.Errorf("empty features = %f", m2.Predict(nil))
	}
	if _, err := ParseLinearModel([]byte("{bad")); err == nil {
		t.Error("malformed payload accepted")
	}
}

func TestVersionPayloadIsolated(t *testing.T) {
	p := newPlatform()
	p.Create("m", []byte("original"))
	v, _ := p.Get("m", 1)
	v.Payload[0] = 'X'
	v2, _ := p.Get("m", 1)
	if string(v2.Payload) != "original" {
		t.Error("payload aliasing between Get calls")
	}
}
