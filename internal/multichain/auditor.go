package multichain

import (
	"fmt"
	"sort"

	"healthcloud/internal/blockchain"
)

// Entry locates one committed transaction in the multi-channel fabric.
// Ordering rules:
//
//   - Per record, order is total and verifiable: every event of one
//     record routes to one channel (RouteKey), so the triple
//     (Epoch, Height, Index) on that channel — channel epoch, block
//     height, intra-block index — totally orders the record's history,
//     anchored by the channel's hash chain.
//   - Across records (and therefore channels) there is no single
//     hash-anchored order; merged views sort by (Timestamp, Channel,
//     Height, Index), which is deterministic and stable under replay
//     because every component is committed on-chain.
type Entry struct {
	Channel string
	Epoch   uint64
	Height  uint64 // block number within the channel
	Index   int    // transaction index within the block
	Tx      blockchain.Transaction
}

// less is the cross-channel merge order (see Entry).
func (e Entry) less(o Entry) bool {
	if !e.Tx.Timestamp.Equal(o.Tx.Timestamp) {
		return e.Tx.Timestamp.Before(o.Tx.Timestamp)
	}
	if e.Channel != o.Channel {
		return e.Channel < o.Channel
	}
	if e.Height != o.Height {
		return e.Height < o.Height
	}
	return e.Index < o.Index
}

// Auditor is the cross-channel auditor view (§IV-E's "auditor gets
// access to the ledgers and searches for use and processing of data",
// now plural). Every query verifies the chains it reads before
// trusting them.
type Auditor struct{ m *Ledger }

// Auditor returns the fabric's auditor view.
func (m *Ledger) Auditor() *Auditor { return &Auditor{m: m} }

// TotalOrder reconstructs one record's verifiable total order: it
// verifies the owning channel's chain, then walks its retained blocks
// collecting the record's transactions in (Height, Index) order. The
// result is identical no matter how commits interleaved across
// channels, and stable under WAL replay — both properties are pinned
// by tests.
func (a *Auditor) TotalOrder(handle string) ([]Entry, error) {
	name := a.m.Route(handle)
	ch := a.m.byName[name]
	led := ch.ledger()
	if err := led.VerifyChain(); err != nil {
		return nil, fmt.Errorf("multichain: auditor: channel %s: %w", name, err)
	}
	return collectEntries(ch, a.m.cfg.Epoch, func(tx *blockchain.Transaction) bool {
		return tx.Handle == handle
	})
}

// Entries returns every committed transaction matching the query,
// merged across all channels in the deterministic cross-channel order
// (see Entry). Chains are verified before the merge.
func (a *Auditor) Entries(q blockchain.AuditQuery) ([]Entry, error) {
	var out []Entry
	for _, ch := range a.m.chans {
		led := ch.ledger()
		if err := led.VerifyChain(); err != nil {
			return nil, fmt.Errorf("multichain: auditor: channel %s: %w", ch.Name, err)
		}
		entries, err := collectEntries(ch, a.m.cfg.Epoch, func(tx *blockchain.Transaction) bool {
			return matchesQuery(tx, q)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, entries...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out, nil
}

// Audit flattens Entries into bare transactions — the ssi.LedgerQuerier
// surface, so identity status queries work unchanged over a partitioned
// fabric. A chain-verification failure yields no results: an auditor
// must never act on a tampered view.
func (m *Ledger) Audit(q blockchain.AuditQuery) []blockchain.Transaction {
	entries, err := m.Auditor().Entries(q)
	if err != nil {
		return nil
	}
	out := make([]blockchain.Transaction, len(entries))
	for i, e := range entries {
		out[i] = e.Tx
	}
	return out
}

// ProvenanceTrail is the full, totally ordered event history of one
// record, flattened (GDPR/HIPAA audit surface).
func (m *Ledger) ProvenanceTrail(handle string) []blockchain.Transaction {
	entries, err := m.Auditor().TotalOrder(handle)
	if err != nil {
		return nil
	}
	out := make([]blockchain.Transaction, len(entries))
	for i, e := range entries {
		out[i] = e.Tx
	}
	return out
}

// collectEntries walks one channel's retained blocks (Base and up —
// transactions folded into a restore snapshot live in the WAL prefix,
// not in memory) collecting matching transactions in chain order.
func collectEntries(ch *Channel, epoch uint64, match func(*blockchain.Transaction) bool) ([]Entry, error) {
	led := ch.ledger()
	var out []Entry
	for n := led.Base(); n < uint64(led.Height()); n++ {
		b, err := led.Block(n)
		if err != nil {
			return nil, fmt.Errorf("multichain: auditor: channel %s block %d: %w", ch.Name, n, err)
		}
		for i := range b.Txs {
			if match(&b.Txs[i]) {
				out = append(out, Entry{
					Channel: ch.Name, Epoch: epoch,
					Height: b.Number, Index: i, Tx: b.Txs[i],
				})
			}
		}
	}
	return out, nil
}

// matchesQuery mirrors blockchain.Ledger.Audit's filter semantics.
func matchesQuery(tx *blockchain.Transaction, q blockchain.AuditQuery) bool {
	if q.Type != "" && tx.Type != q.Type {
		return false
	}
	if q.Creator != "" && tx.Creator != q.Creator {
		return false
	}
	if q.Handle != "" && tx.Handle != q.Handle {
		return false
	}
	if !q.Since.IsZero() && tx.Timestamp.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && tx.Timestamp.After(q.Until) {
		return false
	}
	return true
}
