package multichain

import (
	"fmt"
	"testing"

	"healthcloud/internal/shardlake"
)

// TestChannelRingSkewBound pins the E21 skew fix at the routing layer:
// over a large structured-key population the balanced channel ring
// keeps every channel's share of traffic within 25% of fair, while the
// legacy equal-vnode FNV ring it replaces is measurably worse. Runs on
// rings directly (no networks) so the bound is cheap to sweep.
func TestChannelRingSkewBound(t *testing.T) {
	const channels, keys = 4, 20000
	names := make([]string, channels)
	for i := range names {
		names[i] = ChannelName(i)
	}
	balanced := shardlake.NewBalancedRing(names, ringVnodes, testSeed)
	legacy := shardlake.NewRing(names, ringVnodes, testSeed)

	count := func(r *shardlake.Ring) map[string]int {
		out := make(map[string]int, channels)
		for i := 0; i < keys; i++ {
			out[r.Placement(routeDigest(fmt.Sprintf("patient-%08d", i)), 1)[0]]++
		}
		return out
	}
	balCounts, legCounts := count(balanced), count(legacy)
	fair := float64(keys) / channels
	balMax, legMax := 0, 0
	for _, name := range names {
		if balCounts[name] == 0 {
			t.Fatalf("balanced ring starves %s entirely: %v", name, balCounts)
		}
		if balCounts[name] > balMax {
			balMax = balCounts[name]
		}
		if legCounts[name] > legMax {
			legMax = legCounts[name]
		}
	}
	if skew := float64(balMax) / fair; skew > 1.25 {
		t.Errorf("balanced routing skew %.3f exceeds 1.25x fair share: %v", skew, balCounts)
	}
	if float64(balMax)/fair >= float64(legMax)/fair {
		t.Errorf("balanced ring (max %d) not better than legacy (max %d)", balMax, legMax)
	}
	if skew := balanced.Skew(); skew > 1.25 {
		t.Errorf("balanced arc-share skew %.3f exceeds 1.25", skew)
	}
}

// TestUnbalancedRingOptOutKeepsLegacyRouting pins the migration
// contract: a fabric opened with UnbalancedRing routes exactly as every
// pre-balanced-ring fabric did, so existing DataDirs stay readable.
func TestUnbalancedRingOptOutKeepsLegacyRouting(t *testing.T) {
	legacyRing := shardlake.NewRing([]string{"ch-0", "ch-1", "ch-2", "ch-3"}, ringVnodes, testSeed)
	m := newFabric(t, 4, func(c *Config) { c.UnbalancedRing = true })
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("record-%05d", i)
		want := legacyRing.Placement(routeDigest(key), 1)[0]
		if got := m.Route(key); got != want {
			t.Fatalf("key %s: opt-out fabric routes to %s, legacy ring says %s", key, got, want)
		}
	}
}
