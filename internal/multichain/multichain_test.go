package multichain

import (
	"fmt"
	"testing"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/faultinject"
)

const testSeed = 2112

// newFabric builds a small fabric for tests: 2 peers, policy 1 (cheap
// RSA keygen), fixed seed.
func newFabric(t *testing.T, channels int, mutate func(*Config)) *Ledger {
	t.Helper()
	cfg := Config{
		Name:     "test-ledger",
		Channels: channels,
		PeerIDs:  []string{"org-a", "org-b"},
		PolicyK:  1,
		Seed:     testSeed,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(m.Close)
	return m
}

func testTx(handle string, seq int) blockchain.Transaction {
	return blockchain.NewTransaction(blockchain.EventDataReceipt, "ingest", handle,
		nil, map[string]string{"seq": fmt.Sprintf("%d", seq)})
}

func TestRoutingDeterministicAcrossFabrics(t *testing.T) {
	a := newFabric(t, 4, nil)
	b := newFabric(t, 4, nil)
	seen := make(map[string]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("patient-%03d", i)
		ra, rb := a.Route(key), b.Route(key)
		if ra != rb {
			t.Fatalf("key %q routes to %s on one fabric, %s on another", key, ra, rb)
		}
		seen[ra]++
	}
	if len(seen) != 4 {
		t.Fatalf("200 keys spread over %d channels, want all 4: %v", len(seen), seen)
	}
}

func TestSubmitLandsOnOwningChannelOnly(t *testing.T) {
	m := newFabric(t, 2, nil)
	txs := make([]blockchain.Transaction, 6)
	for i := range txs {
		txs[i] = testTx(fmt.Sprintf("ref-%d", i), 0)
		if err := m.Submit(txs[i], 5*time.Second); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	for _, tx := range txs {
		owner := m.Route(RouteKey(&tx))
		for _, ch := range m.Channels() {
			committed := ch.ledger().Committed(tx.ID)
			if (ch.Name == owner) != committed {
				t.Fatalf("tx %s (owner %s): committed=%v on channel %s",
					tx.ID, owner, committed, ch.Name)
			}
		}
	}
	if got := m.TxCount(); got != len(txs) {
		t.Fatalf("TxCount = %d, want %d", got, len(txs))
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}

func TestSubmitBatchSplitsAcrossChannels(t *testing.T) {
	m := newFabric(t, 3, nil)
	txs := make([]blockchain.Transaction, 24)
	for i := range txs {
		txs[i] = testTx(fmt.Sprintf("batch-ref-%02d", i), 0)
	}
	if err := m.SubmitBatch(txs, 10*time.Second); err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if got := m.TxCount(); got != len(txs) {
		t.Fatalf("TxCount = %d, want %d", got, len(txs))
	}
	// Each channel committed exactly its routed share, as one batch.
	perChannel := make(map[string]int)
	for _, tx := range txs {
		perChannel[m.Route(RouteKey(&tx))]++
	}
	for _, ch := range m.Channels() {
		if got := ch.ledger().TxCount(); got != perChannel[ch.Name] {
			t.Fatalf("channel %s has %d txs, want %d", ch.Name, got, perChannel[ch.Name])
		}
	}
}

func TestBatcherPathFlushAndClose(t *testing.T) {
	m := newFabric(t, 2, func(c *Config) {
		c.Batch = true
		c.BatchMaxDelay = -1 // commit immediately, no window latency
	})
	for i := 0; i < 10; i++ {
		if err := m.Submit(testTx(fmt.Sprintf("b-ref-%d", i), 0), 5*time.Second); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	m.Flush()
	if got := m.TxCount(); got != 10 {
		t.Fatalf("TxCount = %d, want 10", got)
	}
	for _, ch := range m.Channels() {
		if ch.Batcher == nil {
			t.Fatalf("channel %s has no batcher", ch.Name)
		}
	}
}

func TestDurableRestartReplaysEveryChannel(t *testing.T) {
	dir := t.TempDir()
	build := func() *Ledger {
		m, err := New(Config{
			Name: "test-ledger", Channels: 2,
			PeerIDs: []string{"org-a", "org-b"}, PolicyK: 1,
			Seed: testSeed, DataDir: dir, SnapshotEvery: 3,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return m
	}
	m := build()
	for i := 0; i < 14; i++ {
		if err := m.Submit(testTx(fmt.Sprintf("durable-ref-%02d", i), 0), 5*time.Second); err != nil {
			m.Close()
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	want := m.StateHashes()
	wantTxs := m.TxCount()
	m.Close()

	re := build()
	defer re.Close()
	got := re.StateHashes()
	for name, hash := range want {
		if got[name] != hash {
			t.Fatalf("channel %s state hash after restart = %s, want %s", name, got[name], hash)
		}
	}
	if re.TxCount() != wantTxs {
		t.Fatalf("TxCount after restart = %d, want %d", re.TxCount(), wantTxs)
	}
	if err := re.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after restart: %v", err)
	}
	if len(re.WALs()) != 2 {
		t.Fatalf("WALs() returned %d logs, want 2", len(re.WALs()))
	}
	// The restored fabric keeps taking traffic.
	if err := re.Submit(testTx("durable-ref-post", 0), 5*time.Second); err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
}

func TestChannelHealthAndLeaders(t *testing.T) {
	faults := faultinject.NewRegistry(1)
	m := newFabric(t, 2, func(c *Config) { c.Faults = faults })
	health := m.ChannelHealth()
	if len(health) != 2 {
		t.Fatalf("ChannelHealth returned %d channels, want 2", len(health))
	}
	for name, err := range health {
		if err != nil {
			t.Fatalf("channel %s unhealthy on a clean fabric: %v", name, err)
		}
	}
	// Leaders settle; every channel reports one eventually.
	deadline := time.Now().Add(5 * time.Second)
	for {
		leaders := m.OrderingLeaders()
		settled := 0
		for _, id := range leaders {
			if id != "" {
				settled++
			}
		}
		if settled == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaders never settled: %v", leaders)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// An injected submit fault surfaces on every channel's health check
	// (the fault point is shared), never silently.
	faults.Enable(blockchain.FaultSubmit, faultinject.Fault{ErrorRate: 1})
	health = m.ChannelHealth()
	for name, err := range health {
		if err == nil {
			t.Fatalf("channel %s healthy under a 100%% submit fault", name)
		}
	}
}

func TestSingleChannelMatchesRouteEverything(t *testing.T) {
	m := newFabric(t, 1, nil)
	for i := 0; i < 20; i++ {
		if got := m.Route(fmt.Sprintf("any-%d", i)); got != ChannelName(0) {
			t.Fatalf("single-channel fabric routed %q to %s", fmt.Sprintf("any-%d", i), got)
		}
	}
}
