package multichain

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"healthcloud/internal/blockchain"
)

// entrySig reduces an auditor entry to its order-defining coordinates,
// comparable across restarts (transaction timestamps don't round-trip
// bit-identically through JSON monotonic-clock stripping).
func entrySig(e Entry) string {
	return fmt.Sprintf("%s@%d/%s/%d/%d", e.Tx.ID, e.Epoch, e.Channel, e.Height, e.Index)
}

// TestAuditorTotalOrderUnderInterleaving is the cross-channel property
// test: however commits interleave across records (and therefore
// channels), the auditor reconstructs each record's events in exactly
// submission order, entirely on one channel, at strictly increasing
// (height, index) — and the reconstruction is identical after a full
// WAL replay.
func TestAuditorTotalOrderUnderInterleaving(t *testing.T) {
	const (
		records   = 10
		perRecord = 5
		channels  = 3
	)
	dir := t.TempDir()
	build := func() *Ledger {
		m, err := New(Config{
			Name: "audit-ledger", Channels: channels,
			PeerIDs: []string{"org-a", "org-b"}, PolicyK: 1,
			Seed: testSeed, DataDir: dir,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return m
	}
	m := build()

	// Interleave per-record event sequences with a seeded shuffle that
	// preserves each record's internal order (submission is sequential,
	// so commit order per record == submission order).
	rng := rand.New(rand.NewSource(7))
	types := []blockchain.EventType{
		blockchain.EventDataReceipt, blockchain.EventAnonymization,
		blockchain.EventConsentGranted, blockchain.EventWorkloadAttest,
		blockchain.EventSecureDeletion,
	}
	nextSeq := make([]int, records)
	remaining := records * perRecord
	for remaining > 0 {
		rec := rng.Intn(records)
		if nextSeq[rec] >= perRecord {
			continue
		}
		handle := fmt.Sprintf("rec-%02d", rec)
		seq := nextSeq[rec]
		tx := blockchain.NewTransaction(types[seq%len(types)], "ingest", handle,
			nil, map[string]string{"seq": fmt.Sprintf("%d", seq)})
		if err := m.Submit(tx, 5*time.Second); err != nil {
			m.Close()
			t.Fatalf("Submit %s seq %d: %v", handle, seq, err)
		}
		nextSeq[rec]++
		remaining--
	}

	aud := m.Auditor()
	sigs := make(map[string][]string, records)
	for rec := 0; rec < records; rec++ {
		handle := fmt.Sprintf("rec-%02d", rec)
		entries, err := aud.TotalOrder(handle)
		if err != nil {
			m.Close()
			t.Fatalf("TotalOrder(%s): %v", handle, err)
		}
		if len(entries) != perRecord {
			m.Close()
			t.Fatalf("TotalOrder(%s) returned %d events, want %d", handle, len(entries), perRecord)
		}
		owner := m.Route(handle)
		for i, e := range entries {
			if e.Channel != owner {
				m.Close()
				t.Fatalf("%s event %d on channel %s, owner is %s", handle, i, e.Channel, owner)
			}
			if got := e.Tx.Meta["seq"]; got != fmt.Sprintf("%d", i) {
				m.Close()
				t.Fatalf("%s position %d carries seq %s — total order broken", handle, i, got)
			}
			if i > 0 {
				prev := entries[i-1]
				if e.Height < prev.Height || (e.Height == prev.Height && e.Index <= prev.Index) {
					m.Close()
					t.Fatalf("%s events %d,%d not strictly increasing: (%d,%d) then (%d,%d)",
						handle, i-1, i, prev.Height, prev.Index, e.Height, e.Index)
				}
			}
			sigs[handle] = append(sigs[handle], entrySig(e))
		}
	}

	// The merged view is deterministic: two passes agree exactly.
	all1, err := aud.Entries(blockchain.AuditQuery{})
	if err != nil {
		m.Close()
		t.Fatalf("Entries: %v", err)
	}
	all2, _ := aud.Entries(blockchain.AuditQuery{})
	if len(all1) != records*perRecord || len(all1) != len(all2) {
		m.Close()
		t.Fatalf("merged view sized %d/%d, want %d", len(all1), len(all2), records*perRecord)
	}
	for i := range all1 {
		if entrySig(all1[i]) != entrySig(all2[i]) {
			m.Close()
			t.Fatalf("merged view not deterministic at %d: %s vs %s",
				i, entrySig(all1[i]), entrySig(all2[i]))
		}
	}
	m.Close()

	// Stable under replay: a fabric rebuilt from the WALs reconstructs
	// the identical total order for every record.
	re := build()
	defer re.Close()
	reAud := re.Auditor()
	for rec := 0; rec < records; rec++ {
		handle := fmt.Sprintf("rec-%02d", rec)
		entries, err := reAud.TotalOrder(handle)
		if err != nil {
			t.Fatalf("TotalOrder(%s) after replay: %v", handle, err)
		}
		if len(entries) != len(sigs[handle]) {
			t.Fatalf("%s: %d events after replay, want %d", handle, len(entries), len(sigs[handle]))
		}
		for i, e := range entries {
			if got := entrySig(e); got != sigs[handle][i] {
				t.Fatalf("%s event %d changed across replay: %s, want %s",
					handle, i, got, sigs[handle][i])
			}
		}
	}
}

// TestAuditorRefusesTamperedChain: the auditor view must verify before
// trusting; Audit returns nothing rather than serving a tampered chain.
func TestAuditQueryFiltersAcrossChannels(t *testing.T) {
	m := newFabric(t, 2, nil)
	for i := 0; i < 8; i++ {
		typ := blockchain.EventDataReceipt
		if i%2 == 1 {
			typ = blockchain.EventSecureDeletion
		}
		tx := blockchain.NewTransaction(typ, "ingest", fmt.Sprintf("q-ref-%d", i), nil, nil)
		if err := m.Submit(tx, 5*time.Second); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	got := m.Audit(blockchain.AuditQuery{Type: blockchain.EventSecureDeletion})
	if len(got) != 4 {
		t.Fatalf("Audit by type returned %d txs, want 4", len(got))
	}
	one := m.Audit(blockchain.AuditQuery{Handle: "q-ref-3"})
	if len(one) != 1 || one[0].Handle != "q-ref-3" {
		t.Fatalf("Audit by handle returned %v", one)
	}
	if trail := m.ProvenanceTrail("q-ref-0"); len(trail) != 1 {
		t.Fatalf("ProvenanceTrail returned %d events, want 1", len(trail))
	}
}
