package multichain

import (
	"testing"

	"healthcloud/internal/shardlake"
)

// FuzzChannelAssignment pins routing determinism: the same key must
// route to the same channel across independent ring rebuilds —
// including rebuilds from a differently ordered name list — for any
// key, channel count, and seed. This is the invariant the whole
// subsystem leans on: if a rebuilt ring (restart, monitor, auditor)
// ever disagreed with the ring that placed the data, records would
// silently split across channels and the per-record total order would
// be gone.
func FuzzChannelAssignment(f *testing.F) {
	f.Add("patient-00042", uint64(4), int64(2112))
	f.Add("", uint64(1), int64(0))
	f.Add("ref-a", uint64(7), int64(1907))
	f.Add("идентификатор-пациента", uint64(3), int64(-9000))
	f.Fuzz(func(t *testing.T, key string, channels uint64, seed int64) {
		n := int(channels%8) + 1
		names := make([]string, n)
		reversed := make([]string, n)
		for i := range names {
			names[i] = ChannelName(i)
			reversed[n-1-i] = ChannelName(i)
		}
		digest := routeDigest(key)
		a := shardlake.NewRing(names, ringVnodes, seed).Placement(digest, 1)[0]
		b := shardlake.NewRing(reversed, ringVnodes, seed).Placement(digest, 1)[0]
		c := shardlake.NewRing(names, ringVnodes, seed).Placement(digest, 1)[0]
		if a != b {
			t.Fatalf("key %q (n=%d seed=%d): %s from sorted build, %s from reversed build", key, n, seed, a, b)
		}
		if a != c {
			t.Fatalf("key %q (n=%d seed=%d): rebuild disagreed: %s vs %s", key, n, seed, a, c)
		}
		valid := false
		for _, name := range names {
			if a == name {
				valid = true
				break
			}
		}
		if !valid {
			t.Fatalf("key %q routed to unknown channel %s", key, a)
		}
	})
}
