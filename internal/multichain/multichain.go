// Package multichain partitions provenance across N independent
// blockchain channels — the trust-plane analogue of what
// internal/shardlake did for the Data Lake. The paper's Fabric model
// is explicitly channel-based (§IV-B1 discusses one network per event
// family as "a design decision"); hChain 4.0 makes the same pitch for
// EHR provenance at scale. Each channel is a full blockchain.Network:
// its own peers, endorsement policy, Raft ordering cluster, commit
// pumps, optional group-commit Batcher, and (when durable) its own
// block WAL directory — so endorsement, ordering, fsync and commit all
// parallelize across channels.
//
// Transactions route by record key (the data handle, falling back to
// the creator) on the same seeded consistent-hash ring idiom as
// shardlake, which guarantees the property the auditor view depends
// on: every event for one record lands on one channel, so that
// channel's chain alone carries the record's total order. The Auditor
// merges per-channel chains into one verifiable, deterministic view
// (see auditor.go for the ordering rules).
package multichain

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/durable"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/shardlake"
	"healthcloud/internal/telemetry"
)

// ringVnodes matches shardlake's virtual-node count: enough spread for
// a handful of channels without measurable ring cost.
const ringVnodes = 64

// ChannelName is the conventional name of the i-th channel.
func ChannelName(i int) string { return fmt.Sprintf("ch-%d", i) }

// Config sizes a multi-channel provenance fabric.
type Config struct {
	// Name is the base network name; channel i's network is named
	// "<Name>/ch-<i>" so metric labels and traces stay distinguishable.
	Name string
	// Channels is the partition count (>= 1).
	Channels int
	// PeerIDs and PolicyK configure every channel identically: the same
	// organizations endorse on every channel, mirroring Fabric channels
	// sharing a membership.
	PeerIDs []string
	PolicyK int
	// Seed pins ring placement so the same key routes to the same
	// channel on every run and every restart. Changing the seed (or the
	// channel count) over an existing DataDir reshuffles routing and is
	// refused at open time via the per-channel WAL chains themselves:
	// replayed blocks would no longer match incoming traffic's routing.
	Seed int64
	// Epoch stamps auditor entries; bump it when a channel layout
	// migration re-anchors chains (0 for the initial layout).
	Epoch uint64
	// UnbalancedRing keeps the legacy equal-vnode channel ring instead
	// of the skew-corrected one (shardlake.NewBalancedRing). The two
	// rings place keys differently, so a DataDir written under one is a
	// routing-format mismatch under the other — set this on fabrics
	// whose directories predate the balanced ring. Fresh deployments
	// should leave it false: the balanced ring evens the per-channel
	// keyspace shares that E21 measured as block-cut skew.
	UnbalancedRing bool
	// Batch puts a group-commit Batcher in front of every channel.
	Batch bool
	// BatchMaxDelay overrides the batcher window (0 = batcher default,
	// negative = commit immediately without a window).
	BatchMaxDelay time.Duration
	// DataDir, when set, gives every channel its own WAL directory
	// (<DataDir>/ch-<i>) replayed on open. The channel count must stay
	// stable for a given DataDir.
	DataDir string
	// SnapshotEvery cuts a world-state snapshot into each channel's WAL
	// every K blocks (0 disables).
	SnapshotEvery int
	// OrderServiceTime > 0 installs the serial ordering device model on
	// every channel (experiments; see Network.SetOrderServiceTime).
	OrderServiceTime time.Duration
	// Scheme pins the endorsement signature scheme on every channel
	// (zero value = the platform default; see
	// blockchain.WithSignatureScheme).
	Scheme hckrypto.Scheme

	Faults   *faultinject.Registry
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
}

// Channel is one independent provenance partition.
type Channel struct {
	Name     string
	Net      *blockchain.Network
	Batcher  *blockchain.Batcher // nil unless Config.Batch
	WAL      *durable.WAL        // nil unless Config.DataDir
	routed   *telemetry.Counter
	routeLat *telemetry.Histogram
}

// submit runs one transaction through the channel's write path —
// batcher when configured, direct network submission otherwise.
func (c *Channel) submit(tx blockchain.Transaction, timeout time.Duration, parent telemetry.SpanContext) error {
	if c.Batcher != nil {
		return c.Batcher.SubmitCtx(tx, timeout, parent)
	}
	return c.Net.SubmitCtx(tx, timeout, parent)
}

// ledger returns the channel's reference ledger copy (first sorted
// peer; all peers converge and VerifyChain audits divergence).
func (c *Channel) ledger() *blockchain.Ledger {
	peer, err := c.Net.Peer(c.Net.PeerIDs()[0])
	if err != nil {
		// Unreachable: the first PeerID always resolves.
		panic(err)
	}
	return peer.Ledger()
}

// Ledger is the multi-channel fabric. It satisfies the same write
// interfaces as a single network or batcher (ingest.Ledger,
// ingest.TracedLedger, ingest.LedgerFlusher, ssi.Ledger) plus a merged
// read surface (Audit, satisfying ssi.LedgerQuerier), so callers swap
// it in wherever one channel used to sit.
type Ledger struct {
	cfg    Config
	ring   *shardlake.Ring
	names  []string
	byName map[string]*Channel
	chans  []*Channel
	tracer *telemetry.Tracer

	closeOnce sync.Once
}

// New builds the fabric: N channels, each restored from its own WAL
// when DataDir is set.
func New(cfg Config) (*Ledger, error) {
	if cfg.Name == "" {
		cfg.Name = "multichain"
	}
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("multichain: channel count %d out of range (>= 1)", cfg.Channels)
	}
	if len(cfg.PeerIDs) == 0 {
		return nil, errors.New("multichain: at least one peer required")
	}
	if cfg.PolicyK <= 0 {
		cfg.PolicyK = len(cfg.PeerIDs)/2 + 1
	}
	m := &Ledger{
		cfg:    cfg,
		names:  make([]string, cfg.Channels),
		byName: make(map[string]*Channel, cfg.Channels),
		chans:  make([]*Channel, 0, cfg.Channels),
		tracer: cfg.Tracer,
	}
	for i := range m.names {
		m.names[i] = ChannelName(i)
	}
	if cfg.Channels > 1 && !cfg.UnbalancedRing {
		m.ring = shardlake.NewBalancedRing(m.names, ringVnodes, cfg.Seed)
	} else {
		m.ring = shardlake.NewRing(m.names, ringVnodes, cfg.Seed)
	}
	for _, name := range m.names {
		ch, err := m.openChannel(name)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.byName[name] = ch
		m.chans = append(m.chans, ch)
	}
	if cfg.Registry != nil {
		cfg.Registry.Gauge("multichain_channels").Set(int64(cfg.Channels))
	}
	return m, nil
}

// openChannel builds one channel's network, replays and attaches its
// WAL, and fronts it with a batcher when configured.
func (m *Ledger) openChannel(name string) (*Channel, error) {
	cfg := m.cfg
	net, err := blockchain.NewNetwork(cfg.Name+"/"+name, cfg.PeerIDs, cfg.PolicyK,
		blockchain.WithSignatureScheme(cfg.Scheme),
		blockchain.WithFaults(cfg.Faults),
		blockchain.WithTelemetry(cfg.Registry, cfg.Tracer))
	if err != nil {
		return nil, fmt.Errorf("multichain: channel %s: %w", name, err)
	}
	ch := &Channel{Name: name, Net: net}
	if cfg.OrderServiceTime > 0 {
		net.SetOrderServiceTime(cfg.OrderServiceTime)
	}
	if cfg.Registry != nil {
		ch.routed = cfg.Registry.Counter(fmt.Sprintf("multichain_routed_total{channel=%q}", name))
		ch.routeLat = cfg.Registry.Histogram(fmt.Sprintf("multichain_route_seconds{channel=%q}", name))
	}
	if cfg.DataDir != "" {
		wal, rep, werr := durable.OpenWALSnapshot(filepath.Join(cfg.DataDir, name), durable.Options{
			FaultScope: "durable.ledger." + name,
			Faults:     cfg.Faults, Registry: cfg.Registry, Tracer: cfg.Tracer,
		})
		if werr != nil {
			net.Close()
			return nil, fmt.Errorf("multichain: channel %s wal: %w", name, werr)
		}
		for _, id := range net.PeerIDs() {
			peer, perr := net.Peer(id)
			if perr != nil {
				net.Close()
				wal.Close()
				return nil, fmt.Errorf("multichain: channel %s: %w", name, perr)
			}
			var rerr error
			if rep.Snapshot != nil {
				rerr = peer.Ledger().RestoreSnapshot(*rep.Snapshot, rep.Blocks)
			} else {
				rerr = peer.Ledger().Restore(rep.Blocks)
			}
			if rerr != nil {
				net.Close()
				wal.Close()
				return nil, fmt.Errorf("multichain: channel %s restore (%s): %w", name, id, rerr)
			}
			peer.Ledger().SetWAL(wal)
			peer.Ledger().SetSnapshotEvery(cfg.SnapshotEvery)
		}
		ch.WAL = wal
	} else if cfg.SnapshotEvery > 0 {
		for _, id := range net.PeerIDs() {
			if peer, perr := net.Peer(id); perr == nil {
				peer.Ledger().SetSnapshotEvery(cfg.SnapshotEvery)
			}
		}
	}
	if cfg.Batch {
		ch.Batcher = blockchain.NewBatcher(net, blockchain.BatcherConfig{
			MaxDelay: cfg.BatchMaxDelay,
			Registry: cfg.Registry, Tracer: cfg.Tracer,
		})
	}
	return ch, nil
}

// RouteKey is the partition key of one transaction: the record handle
// when present (all events of one record share it, which is what gives
// the per-record total order), the creator otherwise, falling back to
// the transaction ID so keyless traffic still spreads.
func RouteKey(tx *blockchain.Transaction) string {
	switch {
	case tx.Handle != "":
		return tx.Handle
	case tx.Creator != "":
		return tx.Creator
	default:
		return tx.ID
	}
}

// routeDigest pre-digests a route key before ring placement. The ring
// hashes with FNV-1a, whose suffix changes diffuse weakly into the
// high bits that select a ring arc — and real record keys share long
// prefixes ("patient-00042"), which would clump whole key families
// onto one or two channels. SHA-256 gives full avalanche, so
// structured and unstructured keys spread alike.
func routeDigest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// Route returns the channel name owning a key — deterministic for a
// given (channel count, seed) on every run and rebuild.
func (m *Ledger) Route(key string) string {
	return m.ring.Placement(routeDigest(key), 1)[0]
}

// ChannelNames returns the channel names in index order.
func (m *Ledger) ChannelNames() []string { return append([]string(nil), m.names...) }

// Channels returns the channels in index order.
func (m *Ledger) Channels() []*Channel { return append([]*Channel(nil), m.chans...) }

// Channel returns one channel by name.
func (m *Ledger) Channel(name string) (*Channel, bool) {
	ch, ok := m.byName[name]
	return ch, ok
}

// Submit routes one transaction to its owning channel and runs the
// full submit lifecycle there (ssi.Ledger / ingest.Ledger).
func (m *Ledger) Submit(tx blockchain.Transaction, timeout time.Duration) error {
	return m.SubmitCtx(tx, timeout, telemetry.SpanContext{})
}

// SubmitCtx is Submit continuing a caller's trace: the routing
// decision appears as a span carrying the channel label, then the
// channel's own submit spans nest under it (ingest.TracedLedger).
func (m *Ledger) SubmitCtx(tx blockchain.Transaction, timeout time.Duration, parent telemetry.SpanContext) error {
	ch := m.byName[m.Route(RouteKey(&tx))]
	sp := m.tracer.StartSpan("multichain.route", parent)
	sc := sp.Context()
	sp.SetAttr("channel", ch.Name)
	if ch.routed != nil {
		ch.routed.Inc()
	}
	start := ch.routeLat.Start()
	err := ch.submit(tx, timeout, sc)
	ch.routeLat.ObserveSinceTrace(start, sc.TraceID)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

// SubmitBatch splits a batch by owning channel and submits the groups
// concurrently — cross-channel parallelism even for one caller. Each
// group is one ordering batch on its channel. The first error is
// returned (all groups are attempted).
func (m *Ledger) SubmitBatch(txs []blockchain.Transaction, timeout time.Duration) error {
	if len(txs) == 0 {
		return nil
	}
	groups := make(map[string][]blockchain.Transaction, len(m.chans))
	for _, tx := range txs {
		name := m.Route(RouteKey(&tx))
		groups[name] = append(groups[name], tx)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(m.chans))
	for i, ch := range m.chans {
		group := groups[ch.Name]
		if len(group) == 0 {
			continue
		}
		if ch.routed != nil {
			ch.routed.Add(uint64(len(group)))
		}
		wg.Add(1)
		go func(i int, ch *Channel, group []blockchain.Transaction) {
			defer wg.Done()
			errs[i] = ch.Net.SubmitBatch(group, timeout)
		}(i, ch, group)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Flush drains every channel's batcher (ingest.LedgerFlusher); no-op
// without batching.
func (m *Ledger) Flush() {
	for _, ch := range m.chans {
		if ch.Batcher != nil {
			ch.Batcher.Flush()
		}
	}
}

// ChannelHealth runs every channel's side-effect-free submit-path
// check, keyed by channel name (nil = healthy). The monitor's ledger
// probe aggregates this worst-state.
func (m *Ledger) ChannelHealth() map[string]error {
	out := make(map[string]error, len(m.chans))
	for _, ch := range m.chans {
		out[ch.Name] = ch.Net.CheckSubmitPath()
	}
	return out
}

// OrderingLeaders reports each channel's settled ordering leader ("" =
// election in flight), keyed by channel name — the per-channel
// consensus-liveness signal the labelled leader gauges export.
func (m *Ledger) OrderingLeaders() map[string]string {
	out := make(map[string]string, len(m.chans))
	for _, ch := range m.chans {
		id, ok := ch.Net.OrderingLeader()
		if !ok {
			id = ""
		}
		out[ch.Name] = id
	}
	return out
}

// StateHashes returns each channel's reference-ledger state hash,
// keyed by channel name — the per-channel golden values crash-recovery
// tests compare across restarts.
func (m *Ledger) StateHashes() map[string]string {
	out := make(map[string]string, len(m.chans))
	for _, ch := range m.chans {
		out[ch.Name] = ch.ledger().StateHash()
	}
	return out
}

// TxCount sums committed transactions across all channels (reference
// ledgers).
func (m *Ledger) TxCount() int {
	total := 0
	for _, ch := range m.chans {
		total += ch.ledger().TxCount()
	}
	return total
}

// VerifyAll re-verifies every peer chain on every channel — the
// auditor's integrity sweep before trusting any merged view.
func (m *Ledger) VerifyAll() error {
	var errs []error
	for _, ch := range m.chans {
		for _, id := range ch.Net.PeerIDs() {
			peer, err := ch.Net.Peer(id)
			if err != nil {
				errs = append(errs, fmt.Errorf("%s/%s: %w", ch.Name, id, err))
				continue
			}
			if err := peer.Ledger().VerifyChain(); err != nil {
				errs = append(errs, fmt.Errorf("%s/%s: %w", ch.Name, id, err))
			}
		}
	}
	return errors.Join(errs...)
}

// WALs returns the per-channel write-ahead logs, keyed by channel
// name; empty without DataDir. The durable-storage probe folds these
// into its wedged/slow-fsync sweep.
func (m *Ledger) WALs() map[string]*durable.WAL {
	out := make(map[string]*durable.WAL, len(m.chans))
	for _, ch := range m.chans {
		if ch.WAL != nil {
			out[ch.Name] = ch.WAL
		}
	}
	return out
}

// Close shuts the fabric down in drain order per channel: batcher
// first (flushes its queue), then the network (stops ordering and
// waits for commit pumps), then the WAL (final fsync seals the image).
func (m *Ledger) Close() {
	m.closeOnce.Do(func() {
		var wg sync.WaitGroup
		for _, ch := range m.chans {
			wg.Add(1)
			go func(ch *Channel) {
				defer wg.Done()
				if ch.Batcher != nil {
					ch.Batcher.Close()
				}
				ch.Net.Close()
				if ch.WAL != nil {
					ch.WAL.Close()
				}
			}(ch)
		}
		wg.Wait()
	})
}
