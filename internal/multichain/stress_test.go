package multichain

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"healthcloud/internal/blockchain"
)

// TestMultiChainStress hammers a 4-channel batched fabric with 16
// concurrent submitters, then audits everything: no lost or duplicated
// transactions, every peer chain on every channel verifies, every
// channel took traffic, and per-record total order held. CI runs this
// 3× under the race detector.
func TestMultiChainStress(t *testing.T) {
	const (
		workers   = 16
		perWorker = 10
		channels  = 4
	)
	m := newFabric(t, channels, func(c *Config) {
		c.Batch = true
		c.BatchMaxDelay = -1 // commit immediately; groups form under contention
	})

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				// Every worker owns its keys and submits each key's events
				// sequentially, so per-record order is well-defined.
				handle := fmt.Sprintf("stress-w%02d-r%d", w, j%4)
				tx := blockchain.NewTransaction(blockchain.EventDataReceipt, "ingest",
					handle, nil, map[string]string{"worker": fmt.Sprintf("%d", w), "j": fmt.Sprintf("%d", j)})
				if err := m.Submit(tx, 10*time.Second); err != nil {
					errs[w] = fmt.Errorf("worker %d submit %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()

	if got, want := m.TxCount(), workers*perWorker; got != want {
		t.Fatalf("TxCount = %d, want %d", got, want)
	}
	if err := m.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	for _, ch := range m.Channels() {
		blocks, _ := ch.Net.BlockCutStats()
		if ch.ledger().TxCount() == 0 || blocks == 0 {
			t.Fatalf("channel %s idle under stress: %d txs, %d blocks",
				ch.Name, ch.ledger().TxCount(), blocks)
		}
	}
	// Spot-check total order for every worker's first record: events
	// must come back in j order.
	aud := m.Auditor()
	for w := 0; w < workers; w++ {
		handle := fmt.Sprintf("stress-w%02d-r0", w)
		entries, err := aud.TotalOrder(handle)
		if err != nil {
			t.Fatalf("TotalOrder(%s): %v", handle, err)
		}
		lastJ := -1
		for _, e := range entries {
			j := 0
			fmt.Sscanf(e.Tx.Meta["j"], "%d", &j)
			if j <= lastJ {
				t.Fatalf("%s total order broken: j %d after %d", handle, j, lastJ)
			}
			lastJ = j
		}
	}
}
