package ssi

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"healthcloud/internal/blockchain"
)

// fakeLedger is an in-memory identity network.
type fakeLedger struct {
	mu  sync.Mutex
	txs []blockchain.Transaction
}

func (f *fakeLedger) Submit(tx blockchain.Transaction, _ time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.txs = append(f.txs, tx)
	return nil
}

func (f *fakeLedger) Audit(q blockchain.AuditQuery) []blockchain.Transaction {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []blockchain.Transaction
	for _, tx := range f.txs {
		if q.Handle != "" && tx.Handle != q.Handle {
			continue
		}
		if q.Type != "" && tx.Type != q.Type {
			continue
		}
		out = append(out, tx)
	}
	return out
}

// fixture wires wallet → issuer → registry → verifier.
type fixture struct {
	wallet   *Wallet
	issuer   *Issuer
	cred     *Credential
	registry *Registry
	verifier *Verifier
	ledger   *fakeLedger
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w, err := NewWallet()
	if err != nil {
		t.Fatal(err)
	}
	issuer, err := NewIssuer("state-health-authority")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := issuer.Issue(w.Commitment(), map[string]string{
		"role": "clinician", "tenant": "mercy-health", "license": "NY-12345",
	})
	if err != nil {
		t.Fatal(err)
	}
	ledger := &fakeLedger{}
	registry := NewRegistry(ledger, ledger)
	if err := registry.Anchor(cred, issuer.Name(), time.Second); err != nil {
		t.Fatal(err)
	}
	v := NewVerifier("mercy-portal", issuer.VerifyKey(), registry)
	nym, proofKey := w.RegisterProofKey("mercy-portal")
	v.Enroll(nym, proofKey)
	return &fixture{wallet: w, issuer: issuer, cred: cred, registry: registry, verifier: v, ledger: ledger}
}

func (f *fixture) present(t *testing.T, disclose ...string) *Presentation {
	t.Helper()
	nonce := f.verifier.Challenge(f.wallet.Pseudonym("mercy-portal"))
	p, err := f.wallet.Present(f.cred, "mercy-portal", nonce, disclose)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPresentAndVerify(t *testing.T) {
	f := newFixture(t)
	p := f.present(t, "role", "tenant")
	attrs, err := f.verifier.Verify(p)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if attrs["role"] != "clinician" || attrs["tenant"] != "mercy-health" {
		t.Errorf("attrs = %v", attrs)
	}
	// Selective disclosure: the license number was withheld.
	if _, leaked := attrs["license"]; leaked {
		t.Error("withheld attribute disclosed")
	}
}

func TestIssueReservedAttribute(t *testing.T) {
	f := newFixture(t)
	if _, err := f.issuer.Issue(f.wallet.Commitment(), map[string]string{"ssi.commitment": "x"}); err == nil {
		t.Error("reserved attribute name accepted")
	}
}

func TestPresentationUnlinkableAcrossParties(t *testing.T) {
	f := newFixture(t)
	nymA := f.wallet.Pseudonym("mercy-portal")
	nymB := f.wallet.Pseudonym("research-portal")
	if bytes.Equal(nymA, nymB) {
		t.Fatal("pseudonyms identical across relying parties")
	}
	if bytes.Equal(nymA, f.wallet.Commitment()) || bytes.Equal(nymB, f.wallet.Commitment()) {
		t.Error("pseudonym equals commitment")
	}
	// Stable per party.
	if !bytes.Equal(nymA, f.wallet.Pseudonym("mercy-portal")) {
		t.Error("pseudonym not stable")
	}
}

func TestReplayRejected(t *testing.T) {
	f := newFixture(t)
	p := f.present(t, "role")
	if _, err := f.verifier.Verify(p); err != nil {
		t.Fatal(err)
	}
	if _, err := f.verifier.Verify(p); !errors.Is(err, ErrStaleNonce) {
		t.Errorf("replay: got %v", err)
	}
}

func TestWrongNonceRejected(t *testing.T) {
	f := newFixture(t)
	f.verifier.Challenge(f.wallet.Pseudonym("mercy-portal"))
	p, err := f.wallet.Present(f.cred, "mercy-portal", []byte("self-chosen"), []string{"role"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.verifier.Verify(p); !errors.Is(err, ErrStaleNonce) {
		t.Errorf("got %v", err)
	}
}

func TestForgedProofRejected(t *testing.T) {
	f := newFixture(t)
	p := f.present(t, "role")
	p.Proof = []byte("not a real proof")
	// Re-challenge so the nonce exists again.
	f.verifier.Challenge(f.wallet.Pseudonym("mercy-portal"))
	p.Nonce = f.verifier.Challenge(f.wallet.Pseudonym("mercy-portal"))
	if _, err := f.verifier.Verify(p); !errors.Is(err, ErrBadProof) {
		t.Errorf("got %v", err)
	}
}

func TestUnenrolledPseudonymRejected(t *testing.T) {
	f := newFixture(t)
	stranger, err := NewWallet()
	if err != nil {
		t.Fatal(err)
	}
	// The stranger somehow holds the clinician's credential bytes but has
	// a different master secret, hence a different (unenrolled) pseudonym.
	nonce := f.verifier.Challenge(stranger.Pseudonym("mercy-portal"))
	p, err := stranger.Present(f.cred, "mercy-portal", nonce, []string{"role"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.verifier.Verify(p); !errors.Is(err, ErrBadProof) {
		t.Errorf("got %v", err)
	}
}

// TestAttributeTamperRejected is the property the redactable-signature
// integration buys: a holder cannot present an attribute value the
// issuer did not sign.
func TestAttributeTamperRejected(t *testing.T) {
	f := newFixture(t)
	p := f.present(t, "role")
	// Privilege escalation attempt: mutate the disclosed role.
	for i, field := range p.Redacted.Disclosed {
		if field.Name == "role" {
			field.Value = "admin"
			p.Redacted.Disclosed[i] = field
		}
	}
	if _, err := f.verifier.Verify(p); !errors.Is(err, ErrBadIssuer) {
		t.Errorf("tampered attribute: got %v, want ErrBadIssuer", err)
	}
}

func TestWithheldAttributesDoNotLeak(t *testing.T) {
	f := newFixture(t)
	p := f.present(t, "role")
	// The withheld license field appears only as a blinded commitment;
	// its value must not be derivable from the presentation bytes.
	for _, c := range p.Redacted.Commitments {
		if bytes.Contains(c, []byte("NY-12345")) {
			t.Error("withheld attribute value visible in commitment")
		}
	}
	if len(p.Redacted.Disclosed) != 2 { // commitment field + role
		t.Errorf("disclosed %d fields, want 2", len(p.Redacted.Disclosed))
	}
}

func TestRevocation(t *testing.T) {
	f := newFixture(t)
	commitment, err := f.cred.Commitment()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.registry.Revoke(commitment, f.issuer.Name(), time.Second); err != nil {
		t.Fatal(err)
	}
	p := f.present(t, "role")
	if _, err := f.verifier.Verify(p); !errors.Is(err, ErrRevoked) {
		t.Errorf("got %v", err)
	}
}

func TestUnanchoredRejected(t *testing.T) {
	f := newFixture(t)
	other, err := NewWallet()
	if err != nil {
		t.Fatal(err)
	}
	cred, err := f.issuer.Issue(other.Commitment(), map[string]string{"role": "clinician"})
	if err != nil {
		t.Fatal(err)
	}
	nym, proofKey := other.RegisterProofKey("mercy-portal")
	f.verifier.Enroll(nym, proofKey)
	nonce := f.verifier.Challenge(nym)
	p, err := other.Present(cred, "mercy-portal", nonce, []string{"role"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.verifier.Verify(p); !errors.Is(err, ErrNotAnchored) {
		t.Errorf("got %v", err)
	}
}

func TestNoPIIOnLedger(t *testing.T) {
	f := newFixture(t)
	for _, tx := range f.ledger.txs {
		body := tx.Handle + tx.Meta["issuer"]
		for _, sensitive := range []string{"clinician", "NY-12345", "mercy-health"} {
			if bytes.Contains([]byte(body), []byte(sensitive)) {
				t.Errorf("PII on the identity ledger: %+v", tx)
			}
		}
	}
}

func TestPresentUnknownAttribute(t *testing.T) {
	f := newFixture(t)
	if _, err := f.wallet.Present(f.cred, "rp", []byte("n"), []string{"ghost"}); !errors.Is(err, ErrNoAttribute) {
		t.Errorf("got %v", err)
	}
}

func TestCredentialCommitmentAccessor(t *testing.T) {
	f := newFixture(t)
	got, err := f.cred.Commitment()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f.wallet.Commitment()) {
		t.Error("credential commitment mismatch")
	}
}

// TestLedgerBackedEndToEnd runs the whole flow against a real blockchain
// network rather than the fake ledger.
func TestLedgerBackedEndToEnd(t *testing.T) {
	net, err := blockchain.NewNetwork("identity", []string{"issuer-peer", "audit-peer"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	w, err := NewWallet()
	if err != nil {
		t.Fatal(err)
	}
	issuer, err := NewIssuer("authority")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := issuer.Issue(w.Commitment(), map[string]string{"role": "patient"})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := net.Peer("audit-peer")
	if err != nil {
		t.Fatal(err)
	}
	registry := NewRegistry(net, peer.Ledger())
	if err := registry.Anchor(cred, issuer.Name(), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	v := NewVerifier("portal", issuer.VerifyKey(), registry)
	nym, proofKey := w.RegisterProofKey("portal")
	v.Enroll(nym, proofKey)
	nonce := v.Challenge(nym)
	p, err := w.Present(cred, "portal", nonce, []string{"role"})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := v.Verify(p)
	if err != nil {
		t.Fatalf("ledger-backed verify: %v", err)
	}
	if attrs["role"] != "patient" {
		t.Errorf("attrs = %v", attrs)
	}
	// Revoke on-chain; verification now fails.
	commitment, _ := cred.Commitment()
	if err := registry.Revoke(commitment, issuer.Name(), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	nonce2 := v.Challenge(nym)
	p2, err := w.Present(cred, "portal", nonce2, []string{"role"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(p2); !errors.Is(err, ErrRevoked) {
		t.Errorf("post-revocation: %v", err)
	}
}
