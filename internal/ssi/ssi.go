// Package ssi implements the identity layer §IV-B1 sketches: "Identity
// management of healthcare providers, system administrators and patients
// are managed with blockchain using self-sovereign identity and
// privacy-preserving identity-mixer technology."
//
// The design simulates Idemix-style unlinkable credentials with
// standard-library primitives (DESIGN.md substitution rule), composing
// two pieces this repository already provides:
//
//   - Credentials are leakage-free redactable signatures
//     (internal/redact) over [commitment, attribute…] fields, so a
//     holder can *selectively disclose* attributes and the verifier
//     still checks issuer authenticity over exactly what is shown — a
//     holder cannot claim an undisclosed or altered attribute.
//   - The subject's master secret never leaves their wallet. The issuer
//     signs a hiding *commitment* to it; the commitment (never the
//     identity) is anchored on the identity blockchain network, giving
//     registration/revocation provenance without PII on-chain.
//   - Per relying party, the wallet derives a pseudonym
//     HMAC(master, party) and a proof key; presentations are bound to
//     pseudonym + verifier nonce, so presentations at different parties
//     are mutually unlinkable yet each proves knowledge of the master
//     secret behind the anchored commitment.
//
// A production system would use CL signatures and zero-knowledge proofs;
// this construction reproduces the interface and privacy behaviour
// (authentic selective disclosure, unlinkability, ledger-anchored
// revocation) that the platform's other components integrate with.
package ssi

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"healthcloud/internal/hckrypto"
	"healthcloud/internal/redact"
)

// Errors returned by this package.
var (
	ErrBadProof    = errors.New("ssi: presentation proof invalid")
	ErrBadIssuer   = errors.New("ssi: issuer signature invalid")
	ErrRevoked     = errors.New("ssi: credential revoked")
	ErrNotAnchored = errors.New("ssi: credential not anchored on the identity ledger")
	ErrStaleNonce  = errors.New("ssi: nonce mismatch")
	ErrNoAttribute = errors.New("ssi: credential lacks attribute")
)

// commitmentField is the reserved field name carrying the wallet
// commitment inside the credential record.
const commitmentField = "ssi.commitment"

// Wallet holds a subject's master secret. It never leaves the device.
type Wallet struct {
	master []byte
}

// NewWallet creates a wallet with a fresh 256-bit master secret.
func NewWallet() (*Wallet, error) {
	w := &Wallet{master: make([]byte, 32)}
	if _, err := io.ReadFull(rand.Reader, w.master); err != nil {
		return nil, fmt.Errorf("ssi: master secret: %w", err)
	}
	return w, nil
}

// Commitment returns the hiding commitment to the master secret that the
// issuer signs and the ledger anchors. It reveals nothing about the
// master secret.
func (w *Wallet) Commitment() []byte {
	h := sha256.New()
	h.Write([]byte("ssi:commit"))
	h.Write(w.master)
	return h.Sum(nil)
}

// Pseudonym derives the subject's stable, per-relying-party identity:
// HMAC(master, relyingParty). Pseudonyms for different relying parties
// are computationally unlinkable.
func (w *Wallet) Pseudonym(relyingParty string) []byte {
	mac := hmac.New(sha256.New, w.master)
	mac.Write([]byte("ssi:nym:" + relyingParty))
	return mac.Sum(nil)
}

// proofKey derives the presentation-proof MAC key for a relying party;
// only the master-secret holder can compute it.
func (w *Wallet) proofKey(relyingParty string) []byte {
	mac := hmac.New(sha256.New, w.master)
	mac.Write([]byte("ssi:proof:" + relyingParty))
	return mac.Sum(nil)
}

// RegisterProofKey is the once-per-(wallet, relying party) pseudonym
// registration: the relying party stores the pseudonym and proof key,
// delivered over the authenticated issuance channel.
func (w *Wallet) RegisterProofKey(relyingParty string) (pseudonym, proofKey []byte) {
	return w.Pseudonym(relyingParty), w.proofKey(relyingParty)
}

// Credential is an issuer-signed redactable record over the wallet
// commitment and attributes.
type Credential struct {
	Record *redact.SignedRecord
}

// Commitment extracts the wallet commitment the credential binds.
func (c *Credential) Commitment() ([]byte, error) {
	for _, f := range c.Record.Fields {
		if f.Name == commitmentField {
			return hex.DecodeString(f.Value)
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoAttribute, commitmentField)
}

// Issuer is a healthcare authority that issues credentials.
type Issuer struct {
	name string
	key  *hckrypto.SigningKey
}

// NewIssuer creates an issuer with a fresh signing identity.
func NewIssuer(name string) (*Issuer, error) {
	key, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return nil, fmt.Errorf("ssi: issuer key: %w", err)
	}
	return &Issuer{name: name, key: key}, nil
}

// Name returns the issuer name.
func (is *Issuer) Name() string { return is.name }

// VerifyKey returns the issuer's public key, distributed to verifiers.
func (is *Issuer) VerifyKey() *hckrypto.VerifyKey { return is.key.Public() }

// Issue signs a credential over the wallet's commitment and attributes.
// Attribute names must not collide with the reserved commitment field.
func (is *Issuer) Issue(commitment []byte, attrs map[string]string) (*Credential, error) {
	rec := redact.Record{{Name: commitmentField, Value: hex.EncodeToString(commitment)}}
	names := make([]string, 0, len(attrs))
	for name := range attrs {
		if name == commitmentField || strings.HasPrefix(name, "ssi.") {
			return nil, fmt.Errorf("ssi: attribute name %q is reserved", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec = append(rec, redact.Field{Name: name, Value: attrs[name]})
	}
	signed, err := redact.Sign(is.key, rec)
	if err != nil {
		return nil, fmt.Errorf("ssi: issuing: %w", err)
	}
	return &Credential{Record: signed}, nil
}

// Presentation is what a wallet shows a relying party: a redacted view
// of the credential (commitment + chosen attributes disclosed, the rest
// hidden behind blinded commitments), the per-party pseudonym, and a
// proof binding all of it to a verifier nonce.
type Presentation struct {
	Redacted  *redact.RedactedRecord
	Pseudonym []byte
	Nonce     []byte
	Proof     []byte
}

// Present builds a presentation disclosing only the named attributes
// (the commitment field is always disclosed so the verifier can check
// anchoring/revocation).
func (w *Wallet) Present(cred *Credential, relyingParty string, nonce []byte, disclose []string) (*Presentation, error) {
	positions := []int{}
	wanted := make(map[string]bool, len(disclose))
	for _, a := range disclose {
		wanted[a] = true
	}
	found := make(map[string]bool, len(disclose))
	for i, f := range cred.Record.Fields {
		if f.Name == commitmentField || wanted[f.Name] {
			positions = append(positions, i)
			found[f.Name] = true
		}
	}
	for _, a := range disclose {
		if !found[a] {
			return nil, fmt.Errorf("%w: %q", ErrNoAttribute, a)
		}
	}
	rr, err := cred.Record.Redact(positions)
	if err != nil {
		return nil, fmt.Errorf("ssi: redacting credential: %w", err)
	}
	nym := w.Pseudonym(relyingParty)
	p := &Presentation{
		Redacted:  rr,
		Pseudonym: nym,
		Nonce:     append([]byte(nil), nonce...),
	}
	mac := hmac.New(sha256.New, w.proofKey(relyingParty))
	mac.Write(presentationPayload(rr, nym, p.Nonce))
	p.Proof = mac.Sum(nil)
	return p, nil
}

// DisclosedAttributes returns the attribute map revealed by a
// presentation (excluding the reserved commitment field).
func (p *Presentation) DisclosedAttributes() map[string]string {
	out := make(map[string]string, len(p.Redacted.Disclosed))
	for _, f := range p.Redacted.Disclosed {
		if f.Name != commitmentField {
			out[f.Name] = f.Value
		}
	}
	return out
}

// Commitment extracts the disclosed wallet commitment.
func (p *Presentation) Commitment() ([]byte, error) {
	for _, f := range p.Redacted.Disclosed {
		if f.Name == commitmentField {
			return hex.DecodeString(f.Value)
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoAttribute, commitmentField)
}

// presentationPayload binds the redacted record (via its signature and
// disclosed content), pseudonym, and nonce.
func presentationPayload(rr *redact.RedactedRecord, pseudonym, nonce []byte) []byte {
	h := sha256.New()
	writeField(h, []byte("ssi:present"))
	writeField(h, rr.Signature)
	positions := rr.DisclosedPositions()
	for _, i := range positions {
		f := rr.Disclosed[i]
		writeField(h, []byte(f.Name))
		writeField(h, []byte(f.Value))
	}
	writeField(h, pseudonym)
	writeField(h, nonce)
	return h.Sum(nil)
}

// writeField length-prefixes a hash input field.
func writeField(h interface{ Write([]byte) (int, error) }, b []byte) {
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
	h.Write(lenBuf[:])
	h.Write(b)
}
