package ssi

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/redact"
)

// Ledger is the identity-network slice the registry needs.
type Ledger interface {
	Submit(tx blockchain.Transaction, timeout time.Duration) error
}

// LedgerQuerier reads committed identity events (a peer's ledger copy).
type LedgerQuerier interface {
	Audit(q blockchain.AuditQuery) []blockchain.Transaction
}

// Registry anchors credential commitments on the identity blockchain and
// answers revocation queries against a peer's ledger copy.
type Registry struct {
	submit Ledger
	query  LedgerQuerier
}

// NewRegistry wires the registry to the identity network.
func NewRegistry(submit Ledger, query LedgerQuerier) *Registry {
	return &Registry{submit: submit, query: query}
}

// commitmentHandle renders a commitment as the on-chain handle.
func commitmentHandle(commitment []byte) string {
	return "idc-" + hex.EncodeToString(commitment[:16])
}

// Anchor records a credential registration on-chain. Only the commitment
// handle and issuer name land on the ledger — no PII.
func (r *Registry) Anchor(cred *Credential, issuer string, timeout time.Duration) error {
	commitment, err := cred.Commitment()
	if err != nil {
		return err
	}
	tx := blockchain.NewTransaction(blockchain.EventIdentityRegister, issuer,
		commitmentHandle(commitment), nil, map[string]string{"issuer": issuer})
	if err := r.submit.Submit(tx, timeout); err != nil {
		return fmt.Errorf("ssi: anchoring: %w", err)
	}
	return nil
}

// Revoke records a revocation event for a commitment.
func (r *Registry) Revoke(commitment []byte, issuer string, timeout time.Duration) error {
	tx := blockchain.NewTransaction(blockchain.EventIdentityRevoke, issuer,
		commitmentHandle(commitment), nil, nil)
	if err := r.submit.Submit(tx, timeout); err != nil {
		return fmt.Errorf("ssi: revoking: %w", err)
	}
	return nil
}

// Status reports whether a commitment is anchored and whether it has
// been revoked, from the ledger.
func (r *Registry) Status(commitment []byte) (anchored, revoked bool) {
	handle := commitmentHandle(commitment)
	for _, tx := range r.query.Audit(blockchain.AuditQuery{Handle: handle}) {
		switch tx.Type {
		case blockchain.EventIdentityRegister:
			anchored = true
		case blockchain.EventIdentityRevoke:
			revoked = true
		}
	}
	return anchored, revoked
}

// Verifier is one relying party: it knows the issuer key, holds the
// registered pseudonym→proof-key bindings, and checks presentations.
type Verifier struct {
	relyingParty string
	issuerKey    *hckrypto.VerifyKey
	registry     *Registry

	mu        sync.Mutex
	proofKeys map[string][]byte // hex(pseudonym) -> proof key
	nonces    map[string][]byte // hex(pseudonym) -> outstanding nonce
}

// NewVerifier creates a relying party bound to an issuer and registry.
func NewVerifier(relyingParty string, issuerKey *hckrypto.VerifyKey, registry *Registry) *Verifier {
	return &Verifier{
		relyingParty: relyingParty, issuerKey: issuerKey, registry: registry,
		proofKeys: make(map[string][]byte),
		nonces:    make(map[string][]byte),
	}
}

// Enroll stores a subject's pseudonym and proof key (the pseudonym-
// registration step, done once over the issuance channel).
func (v *Verifier) Enroll(pseudonym, proofKey []byte) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.proofKeys[hex.EncodeToString(pseudonym)] = append([]byte(nil), proofKey...)
}

// Challenge issues a one-shot nonce for a pseudonym.
func (v *Verifier) Challenge(pseudonym []byte) []byte {
	nonce := []byte(hckrypto.NewUUID())
	v.mu.Lock()
	v.nonces[hex.EncodeToString(pseudonym)] = nonce
	v.mu.Unlock()
	return append([]byte(nil), nonce...)
}

// Verify checks a presentation end to end:
//
//  1. the redacted credential verifies under the issuer's key — every
//     disclosed attribute is exactly what the issuer signed, and hidden
//     attributes leak nothing (redactable-signature property);
//  2. the pseudonym is enrolled and the proof verifies under its key —
//     the holder knows the master secret for this pairing;
//  3. the nonce matches the outstanding challenge (consumed, anti-replay);
//  4. the disclosed commitment is anchored and not revoked on the
//     identity ledger.
//
// It returns the disclosed attributes on success.
func (v *Verifier) Verify(p *Presentation) (map[string]string, error) {
	// 1. Issuer authenticity over the disclosed view.
	if err := redact.VerifyRedacted(v.issuerKey, p.Redacted); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIssuer, err)
	}
	// 2–3. Holder proof and nonce.
	nymHex := hex.EncodeToString(p.Pseudonym)
	v.mu.Lock()
	proofKey, enrolled := v.proofKeys[nymHex]
	nonce, hasNonce := v.nonces[nymHex]
	delete(v.nonces, nymHex)
	v.mu.Unlock()
	if !enrolled {
		return nil, fmt.Errorf("%w: pseudonym not enrolled", ErrBadProof)
	}
	if !hasNonce || !hmac.Equal(nonce, p.Nonce) {
		return nil, ErrStaleNonce
	}
	mac := hmac.New(sha256.New, proofKey)
	mac.Write(presentationPayload(p.Redacted, p.Pseudonym, p.Nonce))
	if !hmac.Equal(mac.Sum(nil), p.Proof) {
		return nil, ErrBadProof
	}
	// 4. Ledger anchoring and revocation.
	commitment, err := p.Commitment()
	if err != nil {
		return nil, err
	}
	anchored, revoked := v.registry.Status(commitment)
	if !anchored {
		return nil, ErrNotAnchored
	}
	if revoked {
		return nil, ErrRevoked
	}
	return p.DisclosedAttributes(), nil
}
