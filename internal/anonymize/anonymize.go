// Package anonymize implements the platform's privacy machinery (§IV-C):
// HIPAA Safe-Harbor de-identification of FHIR resources, generalization
// of quasi-identifiers, k-anonymity and l-diversity measurement, and the
// "anonymization verification service" that scores "the degree of
// anonymization of the receiving data". Per the paper the degree has two
// parts — "one independent of other data objects and another that is
// determined holistically with respect to other data objects" — which map
// to the per-record identifier scan and the cohort k-anonymity check.
package anonymize

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"healthcloud/internal/fhir"
)

// Record is one row of tabular (quasi-identifier) data.
type Record map[string]string

// Table is a cohort of records sharing a schema, with declared
// quasi-identifier columns and one sensitive column.
type Table struct {
	QuasiIDs  []string
	Sensitive string
	Rows      []Record
}

// ErrNotAnonymized is returned when verification fails.
var ErrNotAnonymized = errors.New("anonymize: record not sufficiently anonymized")

// Direct-identifier detectors (per-record, data-object-independent part
// of the privacy degree). Intentionally conservative: false positives
// cost a manual review, false negatives cost a breach.
var (
	emailRe = regexp.MustCompile(`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}`)
	phoneRe = regexp.MustCompile(`(\+?1[-. ]?)?(\(\d{3}\)\s?|\b\d{3}[-. ])\d{3}[-. ]\d{4}\b`)
	ssnRe   = regexp.MustCompile(`\b\d{3}-\d{2}-\d{4}\b`)
	mrnRe   = regexp.MustCompile(`\bMRN[-:]?\s*\d+\b`)
	dateRe  = regexp.MustCompile(`\b\d{4}-\d{2}-\d{2}\b`) // full dates are PHI under Safe Harbor
)

// ScanIdentifiers returns the direct identifiers found in free text —
// the per-record privacy check.
func ScanIdentifiers(text string) []string {
	var found []string
	for _, probe := range []struct {
		name string
		re   *regexp.Regexp
	}{
		{"email", emailRe}, {"phone", phoneRe}, {"ssn", ssnRe},
		{"mrn", mrnRe}, {"full-date", dateRe},
	} {
		if probe.re.MatchString(text) {
			found = append(found, probe.name)
		}
	}
	return found
}

// GeneralizeZip truncates a ZIP code to its 3-digit prefix, the Safe
// Harbor rule for geographic subdivisions. Prefixes covering under
// 20,000 people must become "000"; callers pass smallZones for those.
func GeneralizeZip(zip string, smallZones map[string]bool) string {
	if len(zip) < 3 {
		return "000"
	}
	prefix := zip[:3]
	if smallZones[prefix] {
		return "000"
	}
	return prefix + "00"
}

// GeneralizeAge buckets an age into a width-sized band ("40-49").
// Ages of 90 and over collapse into "90+" per Safe Harbor.
func GeneralizeAge(age, width int) string {
	if age >= 90 {
		return "90+"
	}
	if width <= 0 {
		width = 10
	}
	lo := (age / width) * width
	return fmt.Sprintf("%d-%d", lo, lo+width-1)
}

// GeneralizeBirthDate reduces a YYYY-MM-DD birth date to its year, the
// Safe Harbor treatment of dates.
func GeneralizeBirthDate(birthDate string) string {
	if len(birthDate) >= 4 {
		if _, err := strconv.Atoi(birthDate[:4]); err == nil {
			return birthDate[:4]
		}
	}
	return ""
}

// DeidentifyPatient applies Safe Harbor to a FHIR Patient: names,
// telecoms, and business identifiers are removed; the birth date is
// generalized to a year; addresses keep only state and a generalized
// ZIP prefix. The input is not modified.
func DeidentifyPatient(p *fhir.Patient, smallZones map[string]bool) *fhir.Patient {
	// Name, Telecom, and Identifier are omitted entirely; BirthDate is
	// dropped from the resource (Safe Harbor forbids full dates) and the
	// generalized year is available separately via BirthYear.
	out := &fhir.Patient{
		ResourceType: "Patient",
		ID:           p.ID, // caller replaces with a reference-id
		Gender:       p.Gender,
	}
	for _, a := range p.Address {
		out.Address = append(out.Address, fhir.Address{
			State:      a.State,
			PostalCode: GeneralizeZip(a.PostalCode, smallZones),
		})
	}
	return out
}

// BirthYear extracts the generalized birth year for analytics tables.
func BirthYear(p *fhir.Patient) string { return GeneralizeBirthDate(p.BirthDate) }

// equivalenceClasses groups rows by their quasi-identifier signature.
func (t *Table) equivalenceClasses() map[string][]Record {
	classes := make(map[string][]Record)
	for _, row := range t.Rows {
		var sb strings.Builder
		for _, q := range t.QuasiIDs {
			sb.WriteString(row[q])
			sb.WriteByte('\x1f')
		}
		key := sb.String()
		classes[key] = append(classes[key], row)
	}
	return classes
}

// KAnonymity returns the k of the table: the size of its smallest
// equivalence class over the quasi-identifiers. An empty table has k=0.
func (t *Table) KAnonymity() int {
	classes := t.equivalenceClasses()
	if len(classes) == 0 {
		return 0
	}
	k := int(^uint(0) >> 1)
	for _, rows := range classes {
		if len(rows) < k {
			k = len(rows)
		}
	}
	return k
}

// LDiversity returns the l of the table: the minimum number of distinct
// sensitive values within any equivalence class. k-anonymity without
// l-diversity still leaks when a class is homogeneous in the sensitive
// attribute.
func (t *Table) LDiversity() int {
	if t.Sensitive == "" {
		return 0
	}
	classes := t.equivalenceClasses()
	if len(classes) == 0 {
		return 0
	}
	l := int(^uint(0) >> 1)
	for _, rows := range classes {
		distinct := make(map[string]bool)
		for _, r := range rows {
			distinct[r[t.Sensitive]] = true
		}
		if len(distinct) < l {
			l = len(distinct)
		}
	}
	return l
}

// Suppress removes every row in equivalence classes smaller than k,
// returning the suppressed table and the number of rows dropped. This is
// the standard repair when generalization alone cannot reach k.
func (t *Table) Suppress(k int) (*Table, int) {
	classes := t.equivalenceClasses()
	out := &Table{QuasiIDs: t.QuasiIDs, Sensitive: t.Sensitive}
	dropped := 0
	// Iterate rows in original order to keep the result deterministic.
	keep := make(map[string]bool, len(classes))
	for key, rows := range classes {
		if len(rows) >= k {
			keep[key] = true
		}
	}
	for _, row := range t.Rows {
		var sb strings.Builder
		for _, q := range t.QuasiIDs {
			sb.WriteString(row[q])
			sb.WriteByte('\x1f')
		}
		if keep[sb.String()] {
			out.Rows = append(out.Rows, row)
		} else {
			dropped++
		}
	}
	return out, dropped
}

// Report is the verification service's assessment of a submission.
type Report struct {
	PerRecordFindings map[int][]string // row index -> identifiers found
	K                 int
	L                 int
	Passed            bool
	Reason            string
}

// VerificationService is the anonymization verification service of
// §IV-B1/§IV-C: it decides whether "a claimed anonymized record is ...
// properly anonymized"; failing records "are dropped, and a response is
// sent back to the sender", with the outcome recorded on the privacy
// blockchain network by the caller.
type VerificationService struct {
	RequiredK int
	RequiredL int
}

// Verify scores a table. It fails if any record carries a direct
// identifier (per-record degree) or if the cohort's k/l fall below the
// policy (holistic degree).
func (v *VerificationService) Verify(t *Table) (*Report, error) {
	rep := &Report{PerRecordFindings: make(map[int][]string)}
	for i, row := range t.Rows {
		keys := make([]string, 0, len(row))
		for k := range row {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if found := ScanIdentifiers(row[k]); len(found) > 0 {
				rep.PerRecordFindings[i] = append(rep.PerRecordFindings[i], found...)
			}
		}
	}
	rep.K = t.KAnonymity()
	rep.L = t.LDiversity()
	switch {
	case len(rep.PerRecordFindings) > 0:
		rep.Reason = fmt.Sprintf("%d records carry direct identifiers", len(rep.PerRecordFindings))
	case v.RequiredK > 0 && rep.K < v.RequiredK:
		rep.Reason = fmt.Sprintf("k-anonymity %d below required %d", rep.K, v.RequiredK)
	case v.RequiredL > 0 && rep.L < v.RequiredL:
		rep.Reason = fmt.Sprintf("l-diversity %d below required %d", rep.L, v.RequiredL)
	default:
		rep.Passed = true
		return rep, nil
	}
	return rep, fmt.Errorf("%w: %s", ErrNotAnonymized, rep.Reason)
}
