package anonymize

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"healthcloud/internal/fhir"
)

func TestScanIdentifiers(t *testing.T) {
	tests := []struct {
		text string
		want []string
	}{
		{"no identifiers here, k=5 cohort", nil},
		{"contact jane.doe@example.com", []string{"email"}},
		{"call (914) 555-1234 now", []string{"phone"}},
		{"ssn 123-45-6789", []string{"ssn"}},
		{"chart MRN: 44821", []string{"mrn"}},
		{"seen on 2016-03-01", []string{"full-date"}},
		{"jane@x.org or 212-555-9876", []string{"email", "phone"}},
	}
	for _, tt := range tests {
		got := ScanIdentifiers(tt.text)
		if len(got) != len(tt.want) {
			t.Errorf("ScanIdentifiers(%q) = %v, want %v", tt.text, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("ScanIdentifiers(%q) = %v, want %v", tt.text, got, tt.want)
			}
		}
	}
}

func TestGeneralizeZip(t *testing.T) {
	small := map[string]bool{"036": true}
	tests := []struct {
		zip, want string
	}{
		{"10598", "10500"},
		{"03601", "000"}, // small zone collapses
		{"12", "000"},    // malformed
		{"", "000"},
	}
	for _, tt := range tests {
		if got := GeneralizeZip(tt.zip, small); got != tt.want {
			t.Errorf("GeneralizeZip(%q) = %q, want %q", tt.zip, got, tt.want)
		}
	}
}

func TestGeneralizeAge(t *testing.T) {
	tests := []struct {
		age, width int
		want       string
	}{
		{44, 10, "40-49"},
		{40, 10, "40-49"},
		{49, 10, "40-49"},
		{89, 10, "80-89"},
		{90, 10, "90+"},
		{103, 10, "90+"},
		{23, 5, "20-24"},
		{7, 0, "0-9"}, // zero width falls back to 10
	}
	for _, tt := range tests {
		if got := GeneralizeAge(tt.age, tt.width); got != tt.want {
			t.Errorf("GeneralizeAge(%d,%d) = %q, want %q", tt.age, tt.width, got, tt.want)
		}
	}
}

func TestGeneralizeBirthDate(t *testing.T) {
	if got := GeneralizeBirthDate("1980-04-02"); got != "1980" {
		t.Errorf("got %q", got)
	}
	if got := GeneralizeBirthDate(""); got != "" {
		t.Errorf("empty input: %q", got)
	}
	if got := GeneralizeBirthDate("ab"); got != "" {
		t.Errorf("short input: %q", got)
	}
	if got := GeneralizeBirthDate("abcd-01-01"); got != "" {
		t.Errorf("non-numeric year: %q", got)
	}
}

func TestDeidentifyPatient(t *testing.T) {
	p := &fhir.Patient{
		ResourceType: "Patient", ID: "p1",
		Identifier: []fhir.Identifier{{System: "urn:mrn", Value: "MRN001"}},
		Name:       []fhir.HumanName{{Family: "Doe", Given: []string{"Jane"}}},
		Gender:     "female", BirthDate: "1980-04-02",
		Address: []fhir.Address{{City: "Yorktown", State: "NY", PostalCode: "10598"}},
		Telecom: []fhir.Telecom{{System: "phone", Value: "914-555-1234"}},
	}
	d := DeidentifyPatient(p, nil)
	if len(d.Name) != 0 || len(d.Telecom) != 0 || len(d.Identifier) != 0 {
		t.Errorf("direct identifiers survived: %+v", d)
	}
	if d.BirthDate != "" {
		t.Errorf("full birth date survived: %q", d.BirthDate)
	}
	if d.Gender != "female" {
		t.Error("gender lost (needed for analytics)")
	}
	if len(d.Address) != 1 || d.Address[0].City != "" || d.Address[0].PostalCode != "10500" {
		t.Errorf("address = %+v", d.Address)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("de-identified patient invalid: %v", err)
	}
	// Original untouched.
	if p.Name == nil || p.BirthDate != "1980-04-02" {
		t.Error("input mutated")
	}
	if BirthYear(p) != "1980" {
		t.Errorf("BirthYear = %q", BirthYear(p))
	}
}

func cohort() *Table {
	return &Table{
		QuasiIDs:  []string{"age", "zip", "sex"},
		Sensitive: "diagnosis",
		Rows: []Record{
			{"age": "40-49", "zip": "10500", "sex": "F", "diagnosis": "T2D"},
			{"age": "40-49", "zip": "10500", "sex": "F", "diagnosis": "HTN"},
			{"age": "40-49", "zip": "10500", "sex": "F", "diagnosis": "T2D"},
			{"age": "50-59", "zip": "10500", "sex": "M", "diagnosis": "CAD"},
			{"age": "50-59", "zip": "10500", "sex": "M", "diagnosis": "T2D"},
		},
	}
}

func TestKAnonymity(t *testing.T) {
	tbl := cohort()
	if k := tbl.KAnonymity(); k != 2 {
		t.Errorf("k = %d, want 2", k)
	}
	// A unique row drops k to 1.
	tbl.Rows = append(tbl.Rows, Record{"age": "90+", "zip": "000", "sex": "F", "diagnosis": "RA"})
	if k := tbl.KAnonymity(); k != 1 {
		t.Errorf("k = %d, want 1", k)
	}
	empty := &Table{QuasiIDs: []string{"age"}}
	if k := empty.KAnonymity(); k != 0 {
		t.Errorf("empty table k = %d", k)
	}
}

func TestLDiversity(t *testing.T) {
	tbl := cohort()
	// Class 1 has {T2D,HTN} → 2 distinct; class 2 has {CAD,T2D} → 2.
	if l := tbl.LDiversity(); l != 2 {
		t.Errorf("l = %d, want 2", l)
	}
	// Make a class homogeneous.
	tbl.Rows[1]["diagnosis"] = "T2D"
	if l := tbl.LDiversity(); l != 1 {
		t.Errorf("l = %d, want 1", l)
	}
	noSensitive := &Table{QuasiIDs: []string{"age"}, Rows: []Record{{"age": "1"}}}
	if l := noSensitive.LDiversity(); l != 0 {
		t.Errorf("no sensitive column l = %d", l)
	}
}

func TestSuppress(t *testing.T) {
	tbl := cohort()
	tbl.Rows = append(tbl.Rows, Record{"age": "90+", "zip": "000", "sex": "F", "diagnosis": "RA"})
	suppressed, dropped := tbl.Suppress(2)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if k := suppressed.KAnonymity(); k < 2 {
		t.Errorf("post-suppression k = %d, want >= 2", k)
	}
	if len(suppressed.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(suppressed.Rows))
	}
}

// Property: suppression at k always yields a table with k-anonymity >= k
// (or an empty table).
func TestQuickSuppressionReachesK(t *testing.T) {
	f := func(ages []uint8, k uint8) bool {
		if k == 0 {
			k = 1
		}
		kk := int(k%5) + 1
		tbl := &Table{QuasiIDs: []string{"age"}}
		for _, a := range ages {
			tbl.Rows = append(tbl.Rows, Record{"age": GeneralizeAge(int(a)%100, 20)})
		}
		out, _ := tbl.Suppress(kk)
		return len(out.Rows) == 0 || out.KAnonymity() >= kk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVerificationService(t *testing.T) {
	v := &VerificationService{RequiredK: 2, RequiredL: 2}
	rep, err := v.Verify(cohort())
	if err != nil || !rep.Passed {
		t.Fatalf("clean cohort rejected: %v (%+v)", err, rep)
	}

	// Direct identifier sneaks in: per-record check fails first.
	leaky := cohort()
	leaky.Rows[0]["note"] = "patient reachable at jane@x.org"
	rep, err = v.Verify(leaky)
	if !errors.Is(err, ErrNotAnonymized) {
		t.Errorf("leaky cohort: got %v", err)
	}
	if rep.Passed || len(rep.PerRecordFindings) != 1 {
		t.Errorf("report = %+v", rep)
	}

	// Cohort too small for k.
	vStrict := &VerificationService{RequiredK: 3}
	if _, err := vStrict.Verify(cohort()); !errors.Is(err, ErrNotAnonymized) {
		t.Errorf("under-k cohort: got %v", err)
	}

	// l-diversity failure.
	homogeneous := cohort()
	homogeneous.Rows[1]["diagnosis"] = "T2D"
	vL := &VerificationService{RequiredK: 2, RequiredL: 2}
	if _, err := vL.Verify(homogeneous); !errors.Is(err, ErrNotAnonymized) {
		t.Errorf("homogeneous cohort: got %v", err)
	}

	// Zero requirements: anything without direct identifiers passes.
	vZero := &VerificationService{}
	if _, err := vZero.Verify(cohort()); err != nil {
		t.Errorf("zero-policy: %v", err)
	}
}

func TestVerifyDeterministicFindings(t *testing.T) {
	v := &VerificationService{}
	tbl := &Table{QuasiIDs: []string{"a"}, Rows: []Record{
		{"a": "x", "b": "jane@x.org", "c": "123-45-6789"},
	}}
	var first []string
	for i := 0; i < 10; i++ {
		rep, _ := v.Verify(tbl)
		got := rep.PerRecordFindings[0]
		if first == nil {
			first = got
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("findings order unstable: %v vs %v", got, first)
		}
	}
}
