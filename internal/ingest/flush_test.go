package ingest

import (
	"fmt"
	"testing"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/consent"
)

// TestCloseFlushesBatchedProvenance is the regression test for the
// batcher-flush-on-Close fix: with a pathological batch window (an hour)
// every worker blocks inside the provenance stage waiting for a group
// commit that would never fill. Close must flush the batcher so that no
// enqueued provenance event is dropped or left un-acked — every upload
// still reaches its stored terminal state and lands on the ledger.
func TestCloseFlushesBatchedProvenance(t *testing.T) {
	net, err := blockchain.NewNetwork("provenance", []string{"p0", "p1", "p2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	b := blockchain.NewBatcher(net, blockchain.BatcherConfig{MaxBatch: 1000, MaxDelay: time.Hour})
	t.Cleanup(b.Close)

	r := newRigWith(t, bus.New(), b)

	const uploads = 4 // one per worker: all four block in provenance
	key, err := r.p.RegisterClient("clinic-1")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, uploads)
	for i := 0; i < uploads; i++ {
		pid := fmt.Sprintf("patient-%d", i)
		r.consents.Grant(pid, "study-1", consent.PurposeResearch, 0)
		ids[i], err = r.p.Upload("clinic-1", "study-1", patientBundle(t, key, "clinic-1", pid, "10598"))
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every worker must be parked in the provenance stage before Close.
	deadline := time.Now().Add(10 * time.Second)
	for b.QueueDepth() < uploads && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := b.QueueDepth(); d != uploads {
		t.Fatalf("batcher queue depth %d, want %d workers blocked", d, uploads)
	}

	done := make(chan struct{})
	go func() { r.p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Close hung: batched provenance events left un-acked")
	}

	for i, id := range ids {
		st, err := r.p.Status(id)
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
		if st.State != StateStored {
			t.Errorf("upload %d state = %q, want %q (event dropped at shutdown)", i, st.State, StateStored)
		}
	}
	p, err := net.Peer("p0")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Ledger().TxCount(); got != uploads {
		t.Errorf("ledger has %d provenance events, want %d", got, uploads)
	}
}
