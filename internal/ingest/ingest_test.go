package ingest

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"healthcloud/internal/anonymize"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/consent"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
)

// fakeLedger records submitted transactions.
type fakeLedger struct {
	mu  sync.Mutex
	txs []blockchain.Transaction
}

func (f *fakeLedger) Submit(tx blockchain.Transaction, _ time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.txs = append(f.txs, tx)
	return nil
}

func (f *fakeLedger) byType(t blockchain.EventType) []blockchain.Transaction {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []blockchain.Transaction
	for _, tx := range f.txs {
		if tx.Type == t {
			out = append(out, tx)
		}
	}
	return out
}

// rig bundles a running pipeline with its collaborators.
type rig struct {
	p        *Pipeline
	kms      *hckrypto.KMS
	lake     *store.DataLake
	consents *consent.Service
	ledger   *fakeLedger
	log      *audit.Log
}

func newRig(t *testing.T) *rig {
	t.Helper()
	return newRigWith(t, bus.New(), nil)
}

// newRigWith lets a test choose the bus (e.g. with a max-attempts cap)
// and substitute the ledger before the workers start.
func newRigWith(t *testing.T, b *bus.Bus, ledger Ledger) *rig {
	t.Helper()
	kms, err := hckrypto.NewKMS("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	lake := store.NewDataLake(kms, "svc-storage")
	t.Cleanup(b.Close)
	scanner, err := scan.NewScanner(scan.DefaultSignatures()...)
	if err != nil {
		t.Fatal(err)
	}
	fake := &fakeLedger{}
	if ledger == nil {
		ledger = fake
	}
	deps := Deps{
		Tenant: "tenant-a", KMS: kms, Lake: lake,
		IDMap: store.NewIdentityMap("svc-reident"),
		Bus:   b, Scanner: scanner,
		Consents: consent.NewService(),
		Verifier: &anonymize.VerificationService{RequiredK: 2},
		Ledger:   ledger, Log: audit.NewLog(),
	}
	p, err := New(deps)
	if err != nil {
		t.Fatal(err)
	}
	p.Start(4)
	t.Cleanup(p.Close)
	return &rig{p: p, kms: kms, lake: lake, consents: deps.Consents, ledger: fake, log: deps.Log}
}

// patientBundle builds and encrypts a bundle for one patient.
func patientBundle(t *testing.T, key hckrypto.SymmetricKey, clientID, patientID, zip string) []byte {
	t.Helper()
	b := fhir.NewBundle("collection")
	if err := b.AddResource(&fhir.Patient{
		ResourceType: "Patient", ID: patientID,
		Name:   []fhir.HumanName{{Family: "Doe", Given: []string{"J"}}},
		Gender: "female", BirthDate: "1980-04-02",
		Address:    []fhir.Address{{City: "Yorktown", State: "NY", PostalCode: zip}},
		Telecom:    []fhir.Telecom{{System: "phone", Value: "914-555-0000"}},
		Identifier: []fhir.Identifier{{System: "urn:mrn", Value: patientID}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddResource(&fhir.Observation{
		ResourceType: "Observation", Status: "final",
		Code:          fhir.CodeableConcept{Coding: []fhir.Coding{{Code: "4548-4", Display: "HbA1c"}}},
		Subject:       fhir.Reference{Reference: "Patient/" + patientID},
		ValueQuantity: &fhir.Quantity{Value: 7.5, Unit: "%"},
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := fhir.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := hckrypto.EncryptGCM(key, raw, []byte(clientID))
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// ingestOne registers, consents, uploads, and waits for one patient.
func (r *rig) ingestOne(t *testing.T, clientID, patientID, zip string) Status {
	t.Helper()
	key, err := r.p.RegisterClient(clientID)
	if err != nil {
		t.Fatal(err)
	}
	r.consents.Grant(patientID, "study-1", consent.PurposeResearch, 0)
	id, err := r.p.Upload(clientID, "study-1", patientBundle(t, key, clientID, patientID, zip))
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.p.WaitForUpload(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEndToEndIngestion(t *testing.T) {
	r := newRig(t)
	st := r.ingestOne(t, "clinic-1", "patient-1", "10598")
	if st.State != StateStored || st.RefID == "" {
		t.Fatalf("status = %+v", st)
	}
	// Both identified and de-identified copies are in the lake.
	if r.lake.Count() != 2 {
		t.Errorf("lake count = %d, want 2", r.lake.Count())
	}
	// Provenance recorded.
	receipts := r.ledger.byType(blockchain.EventDataReceipt)
	if len(receipts) != 1 || receipts[0].Handle != st.RefID {
		t.Errorf("receipts = %+v", receipts)
	}
	// The stored identified record decrypts for the storage service.
	body, err := r.lake.Get(st.RefID, "svc-storage")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "Doe") {
		t.Error("identified record lost the patient name")
	}
}

func TestDeidentifiedCopyHasNoPHI(t *testing.T) {
	r := newRig(t)
	st := r.ingestOne(t, "clinic-1", "patient-1", "10598")
	var deidRef string
	for _, ref := range r.lake.List("tenant-a", "study-1") {
		meta, _ := r.lake.Meta(ref)
		if meta.ContentType == "fhir+json;deidentified" {
			deidRef = ref
		}
	}
	if deidRef == "" {
		t.Fatal("no de-identified record stored")
	}
	body, err := r.lake.Get(deidRef, "svc-storage")
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	for _, phi := range []string{"Doe", "914-555", "1980-04-02", "10598", "Yorktown"} {
		if strings.Contains(s, phi) {
			t.Errorf("de-identified record contains %q", phi)
		}
	}
	// Non-PHI analytics payload survives.
	if !strings.Contains(s, "4548-4") {
		t.Error("observation lost during de-identification")
	}
	_ = st
}

func TestUploadUnknownClient(t *testing.T) {
	r := newRig(t)
	if _, err := r.p.Upload("ghost", "study-1", []byte("x")); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("got %v", err)
	}
}

func TestStatusUnknownUpload(t *testing.T) {
	r := newRig(t)
	if _, err := r.p.Status("ghost"); !errors.Is(err, ErrUnknownUpload) {
		t.Errorf("got %v", err)
	}
}

func TestBadCiphertextFails(t *testing.T) {
	r := newRig(t)
	if _, err := r.p.RegisterClient("clinic-1"); err != nil {
		t.Fatal(err)
	}
	id, err := r.p.Upload("clinic-1", "study-1", []byte("not encrypted"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.p.WaitForUpload(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "decrypt") {
		t.Errorf("status = %+v", st)
	}
}

func TestInvalidBundleFails(t *testing.T) {
	r := newRig(t)
	key, _ := r.p.RegisterClient("clinic-1")
	ct, err := hckrypto.EncryptGCM(key, []byte(`{"resourceType":"Bundle","type":"party"}`), []byte("clinic-1"))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := r.p.Upload("clinic-1", "study-1", ct)
	st, _ := r.p.WaitForUpload(id, 5*time.Second)
	if st.State != StateFailed || !strings.Contains(st.Error, "validate") {
		t.Errorf("status = %+v", st)
	}
}

func TestMalwareBlockedAndReported(t *testing.T) {
	r := newRig(t)
	key, _ := r.p.RegisterClient("clinic-1")
	b := fhir.NewBundle("collection")
	b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: "p1"})
	// Note: the pattern must survive encoding/json's HTML escaping, so use
	// the shell-dropper signature rather than the <script> one.
	b.AddResource(&fhir.Observation{ResourceType: "Observation", Status: "final",
		Code: fhir.CodeableConcept{Text: "note"}, ValueString: "run curl http://malware now"})
	raw, _ := fhir.Marshal(b)
	ct, _ := hckrypto.EncryptGCM(key, raw, []byte("clinic-1"))
	id, _ := r.p.Upload("clinic-1", "study-1", ct)
	st, _ := r.p.WaitForUpload(id, 5*time.Second)
	if st.State != StateFailed || !strings.Contains(st.Error, "malware") {
		t.Fatalf("status = %+v", st)
	}
	if len(r.ledger.byType(blockchain.EventMalwareReport)) != 1 {
		t.Error("malware report not recorded on ledger")
	}
	if r.lake.Count() != 0 {
		t.Error("malicious record reached the lake")
	}
}

func TestConsentRequired(t *testing.T) {
	r := newRig(t)
	key, _ := r.p.RegisterClient("clinic-1")
	// No consent granted.
	id, _ := r.p.Upload("clinic-1", "study-1", patientBundle(t, key, "clinic-1", "patient-9", "10598"))
	st, _ := r.p.WaitForUpload(id, 5*time.Second)
	if st.State != StateFailed || !strings.Contains(st.Error, "consent") {
		t.Errorf("status = %+v", st)
	}
	if r.lake.Count() != 0 {
		t.Error("unconsented record stored")
	}
}

func TestBundleWithoutPatientFails(t *testing.T) {
	r := newRig(t)
	key, _ := r.p.RegisterClient("clinic-1")
	b := fhir.NewBundle("collection")
	b.AddResource(&fhir.Observation{ResourceType: "Observation", Status: "final",
		Code: fhir.CodeableConcept{Text: "x"}})
	raw, _ := fhir.Marshal(b)
	ct, _ := hckrypto.EncryptGCM(key, raw, []byte("clinic-1"))
	id, _ := r.p.Upload("clinic-1", "study-1", ct)
	st, _ := r.p.WaitForUpload(id, 5*time.Second)
	if st.State != StateFailed || !strings.Contains(st.Error, "no patient") {
		t.Errorf("status = %+v", st)
	}
}

func TestConcurrentUploads(t *testing.T) {
	r := newRig(t)
	key, _ := r.p.RegisterClient("clinic-1")
	const total = 20
	ids := make([]string, total)
	for i := 0; i < total; i++ {
		pid := fmt.Sprintf("patient-%02d", i)
		r.consents.Grant(pid, "study-1", consent.PurposeResearch, 0)
		id, err := r.p.Upload("clinic-1", "study-1", patientBundle(t, key, "clinic-1", pid, "10598"))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		st, err := r.p.WaitForUpload(id, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateStored {
			t.Errorf("upload %s: %+v", id, st)
		}
	}
	if r.lake.Count() != 2*total {
		t.Errorf("lake count = %d, want %d", r.lake.Count(), 2*total)
	}
}

func TestExportAnonymized(t *testing.T) {
	r := newRig(t)
	// Three patients with the same quasi-identifiers → k=3 cohort.
	for i := 0; i < 3; i++ {
		r.ingestOne(t, "clinic-1", fmt.Sprintf("patient-%d", i), "10598")
	}
	recs, err := r.p.ExportAnonymized("study-1", "cro-1")
	if err != nil {
		t.Fatalf("ExportAnonymized: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("exported %d records", len(recs))
	}
	for _, rec := range recs {
		if strings.Contains(string(rec.Bundle), "Doe") {
			t.Error("anonymized export leaked a name")
		}
		if rec.Identity != "" {
			t.Error("anonymized export carries identity")
		}
	}
	if len(r.ledger.byType(blockchain.EventExport)) != 1 {
		t.Error("export not recorded on ledger")
	}
}

func TestExportAnonymizedBlockedUnderK(t *testing.T) {
	r := newRig(t)
	// A single record cannot meet k=2.
	r.ingestOne(t, "clinic-1", "patient-1", "10598")
	if _, err := r.p.ExportAnonymized("study-1", "cro-1"); !errors.Is(err, ErrExportDenied) {
		t.Errorf("got %v, want ErrExportDenied", err)
	}
}

func TestExportFull(t *testing.T) {
	r := newRig(t)
	st := r.ingestOne(t, "clinic-1", "patient-1", "10598")
	// Full export needs export-purpose consent and the authorized principal.
	if _, err := r.p.ExportFull("study-1", "svc-reident"); !errors.Is(err, ErrExportDenied) {
		t.Errorf("without export consent: %v", err)
	}
	r.consents.Grant("patient-1", "study-1", consent.PurposeExport, 0)
	if _, err := r.p.ExportFull("study-1", "cro-1"); !errors.Is(err, ErrExportDenied) {
		t.Errorf("unauthorized principal: %v", err)
	}
	recs, err := r.p.ExportFull("study-1", "svc-reident")
	if err != nil {
		t.Fatalf("ExportFull: %v", err)
	}
	if len(recs) != 1 || recs[0].Identity != "patient-1" || recs[0].RefID != st.RefID {
		t.Errorf("records = %+v", recs)
	}
	if !strings.Contains(string(recs[0].Bundle), "Doe") {
		t.Error("full export lost identified content")
	}
}

func TestForget(t *testing.T) {
	r := newRig(t)
	st := r.ingestOne(t, "clinic-1", "patient-1", "10598")
	n, err := r.p.Forget("patient-1")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("forgot %d records, want 1 (identified)", n)
	}
	// Identified record unreadable.
	if _, err := r.lake.Get(st.RefID, "svc-storage"); err == nil {
		t.Error("identified record readable after Forget")
	}
	// De-identified copy crypto-shredded via subject keys.
	for _, ref := range r.lake.List("tenant-a", "study-1") {
		if _, err := r.lake.Get(ref, "svc-storage"); err == nil {
			t.Errorf("record %s still readable after Forget", ref)
		}
	}
	if len(r.ledger.byType(blockchain.EventSecureDeletion)) != 1 {
		t.Error("secure deletion not recorded on ledger")
	}
	// Identity mapping gone: a second Forget finds nothing.
	if n, _ := r.p.Forget("patient-1"); n != 0 {
		t.Errorf("second Forget removed %d", n)
	}
}

func TestDepsValidation(t *testing.T) {
	if _, err := New(Deps{}); err == nil {
		t.Error("empty deps accepted")
	}
}

func TestWaitForIdle(t *testing.T) {
	r := newRig(t)
	// Idle pipeline returns immediately.
	if err := r.p.WaitForIdle(time.Second); err != nil {
		t.Fatalf("idle wait: %v", err)
	}
	key, _ := r.p.RegisterClient("clinic-1")
	r.consents.Grant("patient-1", "study-1", consent.PurposeResearch, 0)
	if _, err := r.p.Upload("clinic-1", "study-1", patientBundle(t, key, "clinic-1", "patient-1", "10598")); err != nil {
		t.Fatal(err)
	}
	if err := r.p.WaitForIdle(10 * time.Second); err != nil {
		t.Fatalf("WaitForIdle: %v", err)
	}
	if r.lake.Count() != 2 {
		t.Errorf("lake count after idle = %d", r.lake.Count())
	}
}

func TestLedgerFailureDeadLetters(t *testing.T) {
	// A persistently failing provenance ledger is a transient
	// infrastructure fault: the upload is retried up to the bus's
	// attempt cap and then parked on the DLQ with the reason surfaced at
	// the status URL — it is never silently lost, and the data is never
	// reported stored without its provenance receipt.
	r := newRigWith(t, bus.New(bus.WithMaxAttempts(3)), failingLedger{})
	key, err := r.p.RegisterClient("clinic-1")
	if err != nil {
		t.Fatal(err)
	}
	r.consents.Grant("patient-1", "study-1", consent.PurposeResearch, 0)
	id, err := r.p.Upload("clinic-1", "study-1", patientBundle(t, key, "clinic-1", "patient-1", "10598"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.p.WaitForUpload(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDeadLettered {
		t.Fatalf("status with failing ledger = %+v", st)
	}
	if !strings.Contains(st.Error, "ledger") {
		t.Errorf("dead-letter reason %q does not name the ledger", st.Error)
	}
	if st.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}
	if r.p.Retries() == 0 || r.p.DeadLettered() != 1 {
		t.Errorf("retries=%d deadLettered=%d", r.p.Retries(), r.p.DeadLettered())
	}
	if got := r.log.Find(audit.Query{Action: "ingest-dead-lettered"}); len(got) != 1 {
		t.Errorf("dead-letter audit events = %d, want 1", len(got))
	}
}

func TestTransientStoreFailureRecovers(t *testing.T) {
	// A lake write that fails on the first delivery succeeds on a
	// retried one: the upload ends stored with Attempts > 1 and nothing
	// reaches the DLQ.
	faults := faultinject.NewRegistry(7)
	faults.Enable(store.FaultLakePut, faultinject.Fault{FailFirst: 1})
	r := newRigWith(t, bus.New(bus.WithMaxAttempts(5)), nil)
	r.lake.SetFaults(faults)
	st := r.ingestOne(t, "clinic-1", "patient-1", "10598")
	if st.State != StateStored {
		t.Fatalf("status = %+v", st)
	}
	if st.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2", st.Attempts)
	}
	if r.p.DeadLettered() != 0 {
		t.Errorf("deadLettered = %d", r.p.DeadLettered())
	}
	// The retry must not have duplicated storage: one identified + one
	// de-identified record.
	if r.lake.Count() != 2 {
		t.Errorf("lake count = %d, want 2 (idempotent retry)", r.lake.Count())
	}
}

type failingLedger struct{}

func (failingLedger) Submit(blockchain.Transaction, time.Duration) error {
	return errors.New("ledger unavailable")
}
