// Package ingest implements the asynchronous Data Ingestion and Export
// service of §II-B. Upload is deliberately asynchronous ("data ingestion
// is a slow process and is thus designed as an asynchronous communication
// process"): the client-encrypted bundle lands in a secure staging area,
// a message is left on the platform's internal bus, and the caller gets a
// status URL. Background workers then run the §II-B/§IV-B1 sequence:
//
//	decrypt (client shared key from the KMS) → FHIR validation →
//	malware filtration → consent check → de-identification →
//	Data Lake storage under a fresh reference-id → identity-map bind →
//	provenance-ledger record
//
// Failures at any step mark the status URL and, for malware, report to
// the malware network. The Export service provides the two §II-B modes:
// anonymized export (gated by the anonymization verification service)
// and full re-identified export for CROs.
package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"healthcloud/internal/anonymize"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/consent"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/resilience"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// State is the ingestion status of one upload.
type State string

// Upload lifecycle states exposed at the status URL.
const (
	StateReceived      State = "received"
	StateDecrypting    State = "decrypting"
	StateValidating    State = "validating"
	StateScanning      State = "scanning"
	StateConsent       State = "consent-check"
	StateDeidentifying State = "de-identifying"
	StateStored        State = "stored"
	StateFailed        State = "failed"
	// StateDeadLettered marks an upload whose transient failures
	// exhausted the bus's delivery attempts; the message is parked on
	// the ingest DLQ and the reason is surfaced at the status URL. No
	// upload is ever silently lost: every terminal state is stored,
	// failed, or dead-lettered.
	StateDeadLettered State = "dead-lettered"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateStored || s == StateFailed || s == StateDeadLettered
}

// Status is what the status URL returns.
type Status struct {
	UploadID string `json:"upload_id"`
	State    State  `json:"state"`
	RefID    string `json:"ref_id,omitempty"`
	Error    string `json:"error,omitempty"`
	// Attempts counts processing deliveries (1 = no retries).
	Attempts int `json:"attempts,omitempty"`
	// TraceID links the upload to its distributed trace
	// (GET /traces/{id}); empty when telemetry is disabled.
	TraceID string `json:"trace_id,omitempty"`
	// ReceivedAt/DoneAt bracket the upload's end-to-end residence time
	// (accept to terminal state). In-process consumers (the load harness,
	// experiment E24) read them; they are not part of the HTTP status
	// body, which stays byte-identical.
	ReceivedAt time.Time `json:"-"`
	DoneAt     time.Time `json:"-"`
}

// Errors returned by this package.
var (
	ErrUnknownClient = errors.New("ingest: client not registered")
	ErrUnknownUpload = errors.New("ingest: unknown upload")
	ErrNoPatient     = errors.New("ingest: bundle contains no patient")
	ErrExportDenied  = errors.New("ingest: export not permitted")
)

// Ledger is the slice of the provenance blockchain the pipeline needs.
type Ledger interface {
	Submit(tx blockchain.Transaction, timeout time.Duration) error
}

// TracedLedger is a Ledger that can continue a distributed trace: the
// provenance span's context is handed down so endorsement, ordering and
// commit-wait appear as children of the ingest pipeline's trace.
type TracedLedger interface {
	Ledger
	SubmitCtx(tx blockchain.Transaction, timeout time.Duration, parent telemetry.SpanContext) error
}

// LedgerFlusher is implemented by group-commit ledgers (the blockchain
// Batcher): Flush synchronously commits everything queued and releases
// the waiting workers. Close detects it to guarantee no enqueued
// provenance event is dropped or left un-acked at shutdown.
type LedgerFlusher interface {
	Flush()
}

// Pipeline is the ingestion/export service. Construct with New, then
// Start workers; Close stops them.
type Pipeline struct {
	tenant   string
	kms      *hckrypto.KMS
	staging  *store.Staging
	lake     store.Lake
	idmap    *store.IdentityMap
	msgBus   *bus.Bus
	scanner  *scan.Scanner
	consents *consent.Service
	verifier *anonymize.VerificationService
	ledger   Ledger // nil disables provenance recording
	log      *audit.Log
	tracer   *telemetry.Tracer // nil disables tracing
	met      *ingestMetrics    // nil disables metrics

	mu         sync.RWMutex
	clientKeys map[string]hckrypto.SymmetricKey
	statuses   map[string]*Status
	// progress remembers which side effects of a retried upload already
	// happened (lake refs), so redelivery after a transient failure is
	// idempotent: storage is not duplicated, only the failed tail reruns.
	progress map[string]*uploadProgress
	// notify is a broadcast generation channel: closed and replaced on
	// every status change so waiters wake on events instead of polling.
	notify chan struct{}

	retries      atomic.Uint64 // transient redeliveries requested via Nack
	deadLettered atomic.Uint64 // uploads parked on the DLQ
	completed    atomic.Uint64 // uploads reaching any terminal state

	sub    *bus.Subscription
	dlqSub *bus.Subscription
	wg     sync.WaitGroup
	stopCh chan struct{}
}

// uploadProgress tracks completed storage steps across retries.
type uploadProgress struct {
	refID   string
	deidRef string
}

// Deps bundles the pipeline's collaborators.
type Deps struct {
	Tenant   string
	KMS      *hckrypto.KMS
	Lake     store.Lake
	IDMap    *store.IdentityMap
	Bus      *bus.Bus
	Scanner  *scan.Scanner
	Consents *consent.Service
	Verifier *anonymize.VerificationService
	Ledger   Ledger // optional
	Log      *audit.Log
	// Telemetry is optional; nil runs the pipeline unobserved at zero
	// cost beyond nil checks (same contract as faultinject).
	Telemetry *telemetry.Telemetry
}

// stageNames are the instrumented pipeline stages, in execution order.
var stageNames = []string{
	"decrypt", "validate", "scan", "consent", "deidentify",
	"store", "store-deid", "provenance",
}

// ingestMetrics caches the pipeline's metric handles so the hot path
// pays only atomic increments. A nil *ingestMetrics disables all of it.
type ingestMetrics struct {
	uploads, stored, failed, dead, retried *telemetry.Counter
	pipeline                               *telemetry.Histogram
	stages                                 map[string]stageHandle
}

// stageHandle pairs a stage's histogram with its precomputed span name,
// so the per-stage path does one map lookup and no string building.
type stageHandle struct {
	span string
	hist *telemetry.Histogram
}

func newIngestMetrics(reg *telemetry.Registry) *ingestMetrics {
	if reg == nil {
		return nil
	}
	m := &ingestMetrics{
		uploads:  reg.Counter("ingest_uploads_total"),
		stored:   reg.Counter("ingest_stored_total"),
		failed:   reg.Counter("ingest_failed_total"),
		dead:     reg.Counter("ingest_dead_lettered_total"),
		retried:  reg.Counter("ingest_retries_total"),
		pipeline: reg.Histogram("ingest_process_seconds"),
		stages:   make(map[string]stageHandle, len(stageNames)),
	}
	for _, s := range stageNames {
		m.stages[s] = stageHandle{
			span: "ingest." + s,
			hist: reg.Histogram(fmt.Sprintf("ingest_stage_seconds{stage=%q}", s)),
		}
	}
	return m
}

const ingestTopic = "ingest"

// New wires a pipeline. It subscribes to the ingest topic; call Start to
// launch workers.
func New(d Deps) (*Pipeline, error) {
	switch {
	case d.KMS == nil, d.Lake == nil, d.IDMap == nil, d.Bus == nil,
		d.Scanner == nil, d.Consents == nil, d.Verifier == nil, d.Log == nil:
		return nil, errors.New("ingest: missing dependency")
	}
	sub, err := d.Bus.Subscribe(ingestTopic, "ingest-workers")
	if err != nil {
		return nil, fmt.Errorf("ingest: subscribing: %w", err)
	}
	dlqSub, err := d.Bus.Subscribe(bus.DLQTopic(ingestTopic), "ingest-dlq")
	if err != nil {
		return nil, fmt.Errorf("ingest: subscribing to DLQ: %w", err)
	}
	return &Pipeline{
		tenant: d.Tenant, kms: d.KMS, staging: store.NewStaging(),
		lake: d.Lake, idmap: d.IDMap, msgBus: d.Bus, scanner: d.Scanner,
		consents: d.Consents, verifier: d.Verifier, ledger: d.Ledger, log: d.Log,
		tracer: d.Telemetry.Spans(), met: newIngestMetrics(d.Telemetry.Registry()),
		clientKeys: make(map[string]hckrypto.SymmetricKey),
		statuses:   make(map[string]*Status),
		progress:   make(map[string]*uploadProgress),
		notify:     make(chan struct{}),
		sub:        sub,
		dlqSub:     dlqSub,
		stopCh:     make(chan struct{}),
	}, nil
}

// Staging exposes the staging area so platform wiring can attach fault
// injection to it.
func (p *Pipeline) Staging() *store.Staging { return p.staging }

// RegisterClient issues a client its shared upload key ("encrypted data,
// using a client's public certificate issued by the platform ... the
// client's private key (generated by the platform at the time of
// registration and stored in a key management system)"). Following
// §IV-B1 we use a shared symmetric key rather than public-key bulk
// encryption.
func (p *Pipeline) RegisterClient(clientID string) (hckrypto.SymmetricKey, error) {
	key, err := hckrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.clientKeys[clientID] = key
	p.mu.Unlock()
	p.log.Record(audit.Event{Level: audit.LevelInfo, Service: "ingest",
		Action: "register-client", Actor: clientID})
	return append(hckrypto.SymmetricKey(nil), key...), nil
}

// uploadMsg is the bus message body.
type uploadMsg struct {
	UploadID string `json:"upload_id"`
	ClientID string `json:"client_id"`
	Group    string `json:"group"`
}

// Upload accepts a client-encrypted FHIR bundle destined for a study
// group and returns the upload ID whose status can be polled.
func (p *Pipeline) Upload(clientID, group string, encrypted []byte) (string, error) {
	p.mu.RLock()
	_, known := p.clientKeys[clientID]
	p.mu.RUnlock()
	if !known {
		return "", fmt.Errorf("%w: %q", ErrUnknownClient, clientID)
	}
	sp := p.tracer.StartRoot("ingest.upload")
	sc := sp.Context()
	sp.SetAttr("client", clientID)
	sp.SetAttr("group", group)
	if p.met != nil {
		p.met.uploads.Inc()
	}
	id, err := p.staging.Put(encrypted)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		p.tracer.FinishTrace(sc.TraceID)
		return "", fmt.Errorf("ingest: staging: %w", err)
	}
	sp.SetAttr("upload_id", id)
	p.mu.Lock()
	p.statuses[id] = &Status{UploadID: id, State: StateReceived,
		TraceID: sc.TraceID.String(), ReceivedAt: time.Now()}
	p.notifyLocked()
	p.mu.Unlock()
	body, err := json.Marshal(uploadMsg{UploadID: id, ClientID: clientID, Group: group})
	if err != nil {
		sp.End()
		p.tracer.FinishTrace(sc.TraceID)
		return "", fmt.Errorf("ingest: encoding message: %w", err)
	}
	// The publish carries the upload span's context so the bus hop and
	// the worker's processing spans join this trace. The trace itself
	// finishes at the worker's ack (or dead-letter), not here.
	if _, err := p.msgBus.PublishCtx(ingestTopic, body, sc); err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		p.tracer.FinishTrace(sc.TraceID)
		return "", fmt.Errorf("ingest: publishing: %w", err)
	}
	sp.End()
	return id, nil
}

// Status returns the state of an upload.
func (p *Pipeline) Status(uploadID string) (Status, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st, ok := p.statuses[uploadID]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrUnknownUpload, uploadID)
	}
	return *st, nil
}

// WaitForUpload blocks until the upload reaches a terminal state. It is
// event-driven: waiters sleep on a broadcast channel the pipeline closes
// on every status change, not on a poll timer.
func (p *Pipeline) WaitForUpload(uploadID string, timeout time.Duration) (Status, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		// Capture the generation channel BEFORE reading the status so a
		// change between the read and the wait still wakes us.
		p.mu.RLock()
		ch := p.notify
		st, ok := p.statuses[uploadID]
		var snap Status
		if ok {
			snap = *st
		}
		p.mu.RUnlock()
		if !ok {
			return Status{}, fmt.Errorf("%w: %q", ErrUnknownUpload, uploadID)
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		select {
		case <-ch:
		case <-timer.C:
			return snap, fmt.Errorf("ingest: upload %s still %s after %v", uploadID, snap.State, timeout)
		}
	}
}

// Retries reports how many transient redeliveries the workers requested.
func (p *Pipeline) Retries() uint64 { return p.retries.Load() }

// DeadLettered reports how many uploads were parked on the DLQ.
func (p *Pipeline) DeadLettered() uint64 { return p.deadLettered.Load() }

// Completed reports how many uploads reached a terminal state (stored,
// failed, or dead-lettered). It is the monotonic completion counter the
// admission layer's drain estimator differentiates into a service rate.
func (p *Pipeline) Completed() uint64 { return p.completed.Load() }

// QueueDepth reports uploads accepted but not yet picked up by a worker
// — the backlog a health prober watches for ingest congestion.
func (p *Pipeline) QueueDepth() int { return p.sub.Depth() }

// DLQBacklog reports dead-lettered messages still awaiting the DLQ
// consumer (distinct from DeadLettered, which is the lifetime total).
func (p *Pipeline) DLQBacklog() int { return p.dlqSub.Depth() }

// Statuses snapshots every upload status (chaos-harness support).
func (p *Pipeline) Statuses() []Status {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Status, 0, len(p.statuses))
	for _, st := range p.statuses {
		out = append(out, *st)
	}
	return out
}

// Start launches n background ingestion workers plus the DLQ consumer
// that surfaces dead-lettered uploads at the status URL.
func (p *Pipeline) Start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	p.wg.Add(1)
	go p.dlqWorker()
}

// Close stops the workers (the bus subscription keeps queued messages for
// a later pipeline generation; the paper's ingestion is durable). When
// the ledger is a group-commit batcher, Close keeps flushing it until
// the last worker exits: a worker blocked in the provenance stage is
// waiting on a batch window that may be longer than any patience, so
// without the flush loop its enqueued event would be stranded un-acked.
func (p *Pipeline) Close() {
	select {
	case <-p.stopCh:
	default:
		close(p.stopCh)
	}
	if f, ok := p.ledger.(LedgerFlusher); ok {
		done := make(chan struct{})
		go func() {
			p.wg.Wait()
			close(done)
		}()
		for {
			f.Flush()
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}
	p.wg.Wait()
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stopCh:
			return
		default:
		}
		m, err := p.sub.Receive(50 * time.Millisecond)
		if err != nil {
			continue // timeout or closed; loop checks stopCh
		}
		var msg uploadMsg
		if err := json.Unmarshal(m.Payload, &msg); err != nil {
			p.sub.Ack(m.ID) // malformed: poison message, drop
			p.tracer.FinishTrace(m.Trace.TraceID)
			continue
		}
		p.noteAttempt(msg.UploadID, m.Attempt)
		err = p.process(msg, m.Trace)
		switch {
		case err == nil:
			p.sub.Ack(m.ID)
			p.tracer.FinishTrace(m.Trace.TraceID)
		case resilience.IsPermanent(err):
			// Data problems (bad crypto, invalid FHIR, malware, missing
			// consent) never heal on retry: mark failed and consume.
			p.fail(msg.UploadID, err.Error())
			p.sub.Ack(m.ID)
			p.tracer.FinishTrace(m.Trace.TraceID)
		default:
			// Infrastructure problems (store, ledger) are transient:
			// hand the message back for redelivery. Once the bus's
			// max-attempts cap is hit it dead-letters instead, and the
			// DLQ consumer surfaces the reason at the status URL.
			p.retries.Add(1)
			if p.met != nil {
				p.met.retried.Inc()
			}
			p.log.Record(audit.Event{Level: audit.LevelWarn, Service: "ingest",
				Action: "ingest-retry", Resource: msg.UploadID, Detail: err.Error()})
			p.sub.Nack(m.ID, err.Error())
		}
	}
}

// dlqWorker consumes the ingest dead-letter topic and marks the parked
// uploads so the invariant holds: every upload terminates as stored,
// failed, or dead-lettered with a reason at its status URL.
func (p *Pipeline) dlqWorker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stopCh:
			return
		default:
		}
		m, err := p.dlqSub.Receive(50 * time.Millisecond)
		if err != nil {
			continue
		}
		var msg uploadMsg
		if err := json.Unmarshal(m.Payload, &msg); err == nil {
			p.markDeadLettered(msg.UploadID, m.Reason)
		}
		p.dlqSub.Ack(m.ID)
		// Dead-lettering ends the upload's lifecycle — and its trace.
		p.tracer.FinishTrace(m.Trace.TraceID)
	}
}

// notifyLocked wakes every waiter. Callers must hold p.mu for writing.
func (p *Pipeline) notifyLocked() {
	close(p.notify)
	p.notify = make(chan struct{})
}

// setState updates a status.
func (p *Pipeline) setState(uploadID string, s State) {
	p.mu.Lock()
	if st, ok := p.statuses[uploadID]; ok {
		st.State = s
	}
	p.notifyLocked()
	p.mu.Unlock()
}

// noteAttempt records the bus delivery count on the status.
func (p *Pipeline) noteAttempt(uploadID string, attempt int) {
	p.mu.Lock()
	if st, ok := p.statuses[uploadID]; ok && attempt > st.Attempts {
		st.Attempts = attempt
	}
	p.mu.Unlock()
}

func (p *Pipeline) fail(uploadID, reason string) {
	if p.met != nil {
		p.met.failed.Inc()
	}
	p.completed.Add(1)
	p.mu.Lock()
	if st, ok := p.statuses[uploadID]; ok {
		st.State = StateFailed
		st.Error = reason
		st.DoneAt = time.Now()
	}
	delete(p.progress, uploadID)
	p.notifyLocked()
	p.mu.Unlock()
	p.staging.Remove(uploadID)
	p.log.Record(audit.Event{Level: audit.LevelWarn, Service: "ingest",
		Action: "ingest-failed", Resource: uploadID, Detail: reason})
}

// markDeadLettered parks an upload that exhausted its retries.
func (p *Pipeline) markDeadLettered(uploadID, reason string) {
	if reason == "" {
		reason = "retries exhausted"
	}
	p.mu.Lock()
	if st, ok := p.statuses[uploadID]; ok && !st.State.Terminal() {
		st.State = StateDeadLettered
		st.Error = reason
		st.DoneAt = time.Now()
		p.deadLettered.Add(1)
		p.completed.Add(1)
		if p.met != nil {
			p.met.dead.Inc()
		}
	}
	delete(p.progress, uploadID)
	p.notifyLocked()
	p.mu.Unlock()
	p.staging.Remove(uploadID)
	p.log.Record(audit.Event{Level: audit.LevelError, Service: "ingest",
		Action: "ingest-dead-lettered", Resource: uploadID, Detail: reason})
}

// timeStage runs one pipeline stage under a span (child of parent) and
// the stage's latency histogram. The stage body receives the stage
// span's context so deeper work (the ledger submit) can nest under it.
// With telemetry disabled every instrument call no-ops on a nil check.
func (p *Pipeline) timeStage(parent telemetry.SpanContext, name string, f func(telemetry.SpanContext) error) error {
	m := p.met
	if m == nil { // telemetry off: zero cost beyond this check
		return f(telemetry.SpanContext{})
	}
	sh := m.stages[name]
	start := time.Now()
	sp := p.tracer.StartSpanAt(sh.span, parent, start)
	err := f(sp.Context())
	end := time.Now()
	sh.hist.ObserveTrace(end.Sub(start), sp.Context().TraceID)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.EndAt(end)
	return err
}

// process runs the full background ingestion flow for one upload. It
// returns nil on success, a resilience.Permanent error for data problems
// that cannot heal on retry, and a plain (transient) error for
// infrastructure failures the worker should Nack for redelivery. The
// trace context arrives via the bus message, so the processing spans
// hang off the upload's trace across the async hop.
func (p *Pipeline) process(msg uploadMsg, tctx telemetry.SpanContext) error {
	m := p.met
	if m == nil {
		return p.run(msg, telemetry.SpanContext{})
	}
	start := time.Now()
	sp := p.tracer.StartSpanAt("ingest.process", tctx, start)
	sp.SetAttr("upload_id", msg.UploadID)
	err := p.run(msg, sp.Context())
	end := time.Now()
	m.pipeline.ObserveTrace(end.Sub(start), sp.Context().TraceID)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.EndAt(end)
	return err
}

// run is the stage sequence behind process.
func (p *Pipeline) run(msg uploadMsg, pctx telemetry.SpanContext) error {
	id := msg.UploadID
	// Duplicate redelivery (e.g. after a visibility timeout) of an
	// upload that already terminated is a no-op.
	if st, err := p.Status(id); err == nil && st.State.Terminal() {
		return nil
	}
	// 1. Read the encrypted bundle from staging. The bytes stay staged
	// until a terminal state so transient failures can be retried; a
	// missing entry here is unrecoverable.
	encrypted, err := p.staging.Get(id)
	if err != nil {
		return resilience.Permanent(fmt.Errorf("staging: %w", err))
	}
	// 2. Decrypt with the client's shared key.
	p.setState(id, StateDecrypting)
	p.mu.RLock()
	key := p.clientKeys[msg.ClientID]
	p.mu.RUnlock()
	if key == nil {
		return resilience.Permanent(errors.New("unknown client key"))
	}
	var plaintext []byte
	if err := p.timeStage(pctx, "decrypt", func(telemetry.SpanContext) error {
		var derr error
		plaintext, derr = hckrypto.DecryptGCM(key, encrypted, []byte(msg.ClientID))
		if derr != nil {
			return resilience.Permanent(errors.New("decrypt: integrity or key failure"))
		}
		return nil
	}); err != nil {
		return err
	}
	// 3. Validate the bundle.
	p.setState(id, StateValidating)
	var bundle *fhir.Bundle
	if err := p.timeStage(pctx, "validate", func(telemetry.SpanContext) error {
		var verr error
		bundle, verr = fhir.ParseBundle(plaintext)
		if verr != nil {
			return resilience.Permanent(fmt.Errorf("validate: %w", verr))
		}
		return nil
	}); err != nil {
		return err
	}
	// 4. Malware filtration.
	p.setState(id, StateScanning)
	if err := p.timeStage(pctx, "scan", func(telemetry.SpanContext) error {
		if findings, serr := p.scanner.Scan(msg.ClientID, plaintext); serr != nil {
			p.recordLedger(blockchain.EventMalwareReport, id, nil, map[string]string{
				"sender": msg.ClientID, "findings": strconv.Itoa(len(findings)),
			})
			return resilience.Permanent(fmt.Errorf("malware: %w", serr))
		}
		return nil
	}); err != nil {
		return err
	}
	// 5. Find the patient and check consent for the target group.
	p.setState(id, StateConsent)
	patient, err := patientOf(bundle)
	if err != nil {
		return resilience.Permanent(err)
	}
	if err := p.timeStage(pctx, "consent", func(telemetry.SpanContext) error {
		if cerr := p.consents.Check(patient.ID, msg.Group, consent.PurposeResearch); cerr != nil {
			return resilience.Permanent(fmt.Errorf("consent: %w", cerr))
		}
		return nil
	}); err != nil {
		return err
	}
	// 6. De-identify and store. The original (identified) record and the
	// de-identified copy are both encrypted at rest under per-record keys
	// (§IV-B1: "Both the original and anonymized versions of data objects
	// are encrypted and stored"). Lake writes that already succeeded on a
	// previous attempt are remembered in the progress map and skipped, so
	// retries are idempotent.
	p.setState(id, StateDeidentifying)
	var deidBundle *fhir.Bundle
	if err := p.timeStage(pctx, "deidentify", func(telemetry.SpanContext) error {
		deidPatient := anonymize.DeidentifyPatient(patient, nil)
		var derr error
		deidBundle, derr = deidentifiedBundle(bundle, deidPatient)
		if derr != nil {
			return resilience.Permanent(fmt.Errorf("deidentify: %w", derr))
		}
		return nil
	}); err != nil {
		return err
	}
	prog := p.progressFor(id)
	if prog.refID == "" {
		if err := p.timeStage(pctx, "store", func(telemetry.SpanContext) error {
			refID, serr := p.lake.Put(patient.ID, plaintext, store.Meta{
				ContentType: "fhir+json;identified", Tenant: p.tenant, Group: msg.Group,
			})
			if serr != nil {
				return fmt.Errorf("store: %w", serr) // transient
			}
			prog.refID = refID
			p.saveProgress(id, prog)
			return nil
		}); err != nil {
			return err
		}
	}
	if prog.deidRef == "" {
		deidJSON, err := fhir.Marshal(deidBundle)
		if err != nil {
			return resilience.Permanent(fmt.Errorf("deid-marshal: %w", err))
		}
		if err := p.timeStage(pctx, "store-deid", func(telemetry.SpanContext) error {
			deidRef, serr := p.lake.Put(patient.ID, deidJSON, store.Meta{
				ContentType: "fhir+json;deidentified", Tenant: p.tenant, Group: msg.Group,
				Tags: map[string]string{"identified_ref": prog.refID},
			})
			if serr != nil {
				return fmt.Errorf("store-deid: %w", serr) // transient
			}
			prog.deidRef = deidRef
			p.saveProgress(id, prog)
			return nil
		}); err != nil {
			return err
		}
	}
	p.idmap.Bind(prog.refID, patient.ID) // idempotent rebind on retry
	// 7. Provenance. A failed ledger submit is transient: the receipt
	// must eventually land, so the whole message is redelivered (the
	// storage steps above are skipped via the progress map).
	salt := []byte(prog.refID)
	tx := blockchain.NewTransaction(blockchain.EventDataReceipt, "ingest-service",
		prog.refID, hckrypto.SaltedHash(salt, plaintext), map[string]string{
			"group": msg.Group, "deid_ref": prog.deidRef,
		})
	if p.ledger != nil {
		if err := p.timeStage(pctx, "provenance", func(sc telemetry.SpanContext) error {
			if tl, ok := p.ledger.(TracedLedger); ok {
				if lerr := tl.SubmitCtx(tx, 10*time.Second, sc); lerr != nil {
					return fmt.Errorf("ledger: %w", lerr) // transient
				}
				return nil
			}
			if lerr := p.ledger.Submit(tx, 10*time.Second); lerr != nil {
				return fmt.Errorf("ledger: %w", lerr) // transient
			}
			return nil
		}); err != nil {
			return err
		}
	}
	p.mu.Lock()
	if st, ok := p.statuses[id]; ok {
		st.State = StateStored
		st.RefID = prog.refID
		st.DoneAt = time.Now()
	}
	delete(p.progress, id)
	p.notifyLocked()
	p.mu.Unlock()
	p.staging.Remove(id)
	p.completed.Add(1)
	if p.met != nil {
		p.met.stored.Inc()
	}
	p.log.Record(audit.Event{Level: audit.LevelInfo, Service: "ingest",
		Action: "stored", Resource: prog.refID})
	return nil
}

// progressFor returns a copy of the retry progress for an upload.
func (p *Pipeline) progressFor(id string) uploadProgress {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if prog, ok := p.progress[id]; ok {
		return *prog
	}
	return uploadProgress{}
}

// saveProgress persists a completed storage step across retries.
func (p *Pipeline) saveProgress(id string, prog uploadProgress) {
	p.mu.Lock()
	cp := prog
	p.progress[id] = &cp
	p.mu.Unlock()
}

// recordLedger is the best-effort submit used by export and malware
// reporting, where the primary operation should not fail on a ledger
// hiccup; failures are audit-logged only.
func (p *Pipeline) recordLedger(typ blockchain.EventType, handle string, hash []byte, meta map[string]string) {
	if p.ledger == nil {
		return
	}
	tx := blockchain.NewTransaction(typ, "ingest-service", handle, hash, meta)
	if err := p.ledger.Submit(tx, 10*time.Second); err != nil {
		p.log.Record(audit.Event{Level: audit.LevelError, Service: "ingest",
			Action: "ledger-submit", Resource: handle, Err: err.Error()})
	}
}

// patientOf extracts the single Patient resource of a bundle.
func patientOf(b *fhir.Bundle) (*fhir.Patient, error) {
	resources, err := b.Resources()
	if err != nil {
		return nil, err
	}
	for _, r := range resources {
		if pt, ok := r.(*fhir.Patient); ok {
			return pt, nil
		}
	}
	return nil, ErrNoPatient
}

// deidentifiedBundle rebuilds the bundle with the de-identified patient
// substituted and all other resources retained.
func deidentifiedBundle(b *fhir.Bundle, deid *fhir.Patient) (*fhir.Bundle, error) {
	resources, err := b.Resources()
	if err != nil {
		return nil, err
	}
	out := fhir.NewBundle(b.Type)
	for _, r := range resources {
		if _, ok := r.(*fhir.Patient); ok {
			if err := out.AddResource(deid); err != nil {
				return nil, err
			}
			continue
		}
		if err := out.AddResource(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}
