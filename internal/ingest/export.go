package ingest

import (
	"fmt"
	"time"

	"healthcloud/internal/anonymize"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/consent"
	"healthcloud/internal/fhir"
)

// ExportedRecord is one row of an export.
type ExportedRecord struct {
	RefID    string `json:"ref_id"`
	Identity string `json:"identity,omitempty"` // full export only
	Bundle   []byte `json:"bundle"`
}

// ExportAnonymized returns the de-identified records of a study group
// after the anonymization verification service confirms the cohort's
// k-anonymity (§II-B "Anonymized export, that anonymizes the data to
// protect privacy"; §IV-C). The export is recorded on the provenance
// ledger.
func (p *Pipeline) ExportAnonymized(group, principal string) ([]ExportedRecord, error) {
	refs := p.lake.List(p.tenant, group)
	var out []ExportedRecord
	table := &anonymize.Table{QuasiIDs: []string{"gender", "state", "zip"}}
	for _, ref := range refs {
		meta, err := p.lake.Meta(ref)
		if err != nil || meta.ContentType != "fhir+json;deidentified" {
			continue
		}
		if err := p.lake.Grant(ref, principal); err != nil {
			return nil, fmt.Errorf("ingest: granting export access: %w", err)
		}
		body, err := p.lake.Get(ref, principal)
		if err != nil {
			return nil, fmt.Errorf("ingest: reading %s: %w", ref, err)
		}
		out = append(out, ExportedRecord{RefID: ref, Bundle: body})
		table.Rows = append(table.Rows, quasiRow(body))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no de-identified records in group %q", ErrExportDenied, group)
	}
	if _, err := p.verifier.Verify(table); err != nil {
		p.log.Record(audit.Event{Level: audit.LevelWarn, Service: "export",
			Action: "anonymized-export-blocked", Resource: group, Err: err.Error()})
		return nil, fmt.Errorf("%w: %v", ErrExportDenied, err)
	}
	p.recordLedger(blockchain.EventExport, group, nil, map[string]string{
		"mode": "anonymized", "principal": principal, "records": fmt.Sprint(len(out)),
	})
	p.log.Record(audit.Event{Level: audit.LevelInfo, Service: "export",
		Action: "anonymized-export", Actor: principal, Resource: group})
	return out, nil
}

// ExportFull returns re-identified records for a CRO (§II-B "Full export
// where the re-identified consented data is provided to the client").
// Every record's patient must hold an export-purpose consent; the
// principal must be the identity-map's authorized re-identification
// service.
func (p *Pipeline) ExportFull(group, principal string) ([]ExportedRecord, error) {
	refs := p.lake.List(p.tenant, group)
	var out []ExportedRecord
	for _, ref := range refs {
		meta, err := p.lake.Meta(ref)
		if err != nil || meta.ContentType != "fhir+json;identified" {
			continue
		}
		identity, err := p.idmap.Identity(ref, principal)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExportDenied, err)
		}
		if err := p.consents.Check(identity, group, consent.PurposeExport); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExportDenied, err)
		}
		if err := p.lake.Grant(ref, principal); err != nil {
			return nil, fmt.Errorf("ingest: granting export access: %w", err)
		}
		body, err := p.lake.Get(ref, principal)
		if err != nil {
			return nil, fmt.Errorf("ingest: reading %s: %w", ref, err)
		}
		out = append(out, ExportedRecord{RefID: ref, Identity: identity, Bundle: body})
		p.recordLedger(blockchain.EventDataRetrieval, ref, nil, map[string]string{
			"mode": "full", "principal": principal,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no identified records in group %q", ErrExportDenied, group)
	}
	p.recordLedger(blockchain.EventExport, group, nil, map[string]string{
		"mode": "full", "principal": principal, "records": fmt.Sprint(len(out)),
	})
	p.log.Record(audit.Event{Level: audit.LevelInfo, Service: "export",
		Action: "full-export", Actor: principal, Resource: group})
	return out, nil
}

// Forget implements GDPR right-to-forget end to end: every record of the
// patient is crypto-shredded, the identity mapping is erased, and a
// secure-deletion event lands on the ledger. It returns the number of
// records destroyed.
func (p *Pipeline) Forget(patientID string) (int, error) {
	refs := p.idmap.Forget(patientID)
	n := 0
	for _, ref := range refs {
		if err := p.lake.SecureDelete(ref); err == nil {
			n++
		}
		p.recordLedger(blockchain.EventSecureDeletion, ref, nil, nil)
	}
	// Shred every remaining key bound to the subject (covers the
	// de-identified copies, which are keyed to the same subject).
	p.kms.ShredSubject(patientID)
	p.log.Record(audit.Event{Level: audit.LevelInfo, Service: "ingest",
		Action: "right-to-forget", Resource: fmt.Sprint(n)})
	return n, nil
}

// quasiRow extracts the quasi-identifier columns the anonymization
// verification service checks on export.
func quasiRow(bundleJSON []byte) anonymize.Record {
	row := anonymize.Record{"gender": "", "state": "", "zip": ""}
	b, err := fhir.ParseBundle(bundleJSON)
	if err != nil {
		return row
	}
	resources, err := b.Resources()
	if err != nil {
		return row
	}
	for _, r := range resources {
		if pt, ok := r.(*fhir.Patient); ok {
			row["gender"] = pt.Gender
			if len(pt.Address) > 0 {
				row["state"] = pt.Address[0].State
				row["zip"] = pt.Address[0].PostalCode
			}
			break
		}
	}
	return row
}

// WaitForIdle blocks until no uploads are mid-flight (test support). It
// wakes on the pipeline's status-change broadcast rather than polling.
func (p *Pipeline) WaitForIdle(timeout time.Duration) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		busy := false
		p.mu.RLock()
		ch := p.notify
		for _, st := range p.statuses {
			if !st.State.Terminal() {
				busy = true
				break
			}
		}
		p.mu.RUnlock()
		if !busy {
			return nil
		}
		select {
		case <-ch:
		case <-timer.C:
			return fmt.Errorf("ingest: pipeline still busy after %v", timeout)
		}
	}
}
