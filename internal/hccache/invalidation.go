package hccache

import (
	"sync"
	"time"

	"healthcloud/internal/bus"
)

// Invalidation propagation (§III): "If the data are changing frequently,
// cache consistency algorithms need to be applied to keep multiple
// versions of the data consistent." When an origin record changes, the
// platform publishes the key on an invalidation topic; every cache tier
// (server-side and enhanced clients) runs a Listener that drops the key,
// so the next read refetches the fresh version.

// InvalidationTopic is the bus topic invalidations travel on.
const InvalidationTopic = "cache-invalidation"

// Publisher broadcasts invalidations.
type Publisher struct {
	bus *bus.Bus
}

// NewPublisher creates a publisher on the given bus.
func NewPublisher(b *bus.Bus) *Publisher { return &Publisher{bus: b} }

// Publish announces that key's cached copies are stale.
func (p *Publisher) Publish(key string) error {
	_, err := p.bus.Publish(InvalidationTopic, []byte(key))
	return err
}

// Listener consumes invalidations and applies them to a cache via the
// provided callback. Stop terminates its goroutine.
type Listener struct {
	sub    *bus.Subscription
	apply  func(key string)
	stopCh chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	applied uint64
}

// NewListener subscribes name on the bus and applies each invalidation.
func NewListener(b *bus.Bus, name string, apply func(key string)) (*Listener, error) {
	sub, err := b.Subscribe(InvalidationTopic, name)
	if err != nil {
		return nil, err
	}
	l := &Listener{sub: sub, apply: apply, stopCh: make(chan struct{})}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

func (l *Listener) run() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stopCh:
			return
		default:
		}
		m, err := l.sub.Receive(50 * time.Millisecond)
		if err != nil {
			continue // timeout or closed; loop re-checks stopCh
		}
		l.apply(string(m.Payload))
		l.sub.Ack(m.ID)
		l.mu.Lock()
		l.applied++
		l.mu.Unlock()
	}
}

// Applied returns how many invalidations this listener has processed.
func (l *Listener) Applied() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applied
}

// Stop terminates the listener.
func (l *Listener) Stop() {
	select {
	case <-l.stopCh:
	default:
		close(l.stopCh)
	}
	l.wg.Wait()
}
