package hccache

import (
	"errors"
	"fmt"
	"sync"
)

// Loader fetches a value (and its version) from the origin — typically a
// remote knowledge base or the data lake, with real (or simulated) WAN
// latency.
type Loader func(key string) (value []byte, version uint64, err error)

// ErrNotFound is returned by loaders for missing keys.
var ErrNotFound = errors.New("hccache: not found at origin")

// Tiered chains caches in front of an origin: Fig 4's client cache →
// cloud-server cache → external knowledge base. Get probes tiers in
// order and back-fills every missed tier on the way out, so hot keys
// migrate toward the client.
type Tiered struct {
	tiers  []*Cache
	origin Loader

	mu          sync.Mutex
	originLoads uint64
}

// NewTiered creates a tiered cache. Tier 0 is closest to the caller.
func NewTiered(origin Loader, tiers ...*Cache) (*Tiered, error) {
	if origin == nil {
		return nil, errors.New("hccache: origin loader required")
	}
	if len(tiers) == 0 {
		return nil, errors.New("hccache: at least one tier required")
	}
	return &Tiered{tiers: tiers, origin: origin}, nil
}

// Get returns the value for key, filling missed tiers read-through.
func (t *Tiered) Get(key string) ([]byte, error) {
	for i, tier := range t.tiers {
		if v, ver, ok := tier.Get(key); ok {
			// Back-fill the closer tiers.
			for j := 0; j < i; j++ {
				t.tiers[j].Put(key, v, ver)
			}
			return v, nil
		}
	}
	v, ver, err := t.origin(key)
	if err != nil {
		return nil, fmt.Errorf("hccache: origin load %q: %w", key, err)
	}
	t.mu.Lock()
	t.originLoads++
	t.mu.Unlock()
	for _, tier := range t.tiers {
		tier.Put(key, v, ver)
	}
	return v, nil
}

// Invalidate drops the key from every tier (server push invalidation).
func (t *Tiered) Invalidate(key string) {
	for _, tier := range t.tiers {
		tier.Invalidate(key)
	}
}

// OriginLoads reports how many requests reached the origin.
func (t *Tiered) OriginLoads() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.originLoads
}

// TierStats returns each tier's counters, closest first.
func (t *Tiered) TierStats() []Stats {
	out := make([]Stats, len(t.tiers))
	for i, tier := range t.tiers {
		out[i] = tier.Stats()
	}
	return out
}
