package hccache

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"healthcloud/internal/telemetry"
)

// Loader fetches a value (and its version) from the origin — typically a
// remote knowledge base or the data lake, with real (or simulated) WAN
// latency.
type Loader func(key string) (value []byte, version uint64, err error)

// ErrNotFound is returned by loaders for missing keys.
var ErrNotFound = errors.New("hccache: not found at origin")

// Tiered chains caches in front of an origin: Fig 4's client cache →
// cloud-server cache → external knowledge base. Get probes tiers in
// order and back-fills every missed tier on the way out, so hot keys
// migrate toward the client.
type Tiered struct {
	tiers  []*Cache
	origin Loader
	tracer *telemetry.Tracer
	met    *tieredMetrics

	mu          sync.Mutex
	originLoads uint64
}

// tieredMetrics instruments the tier chain; nil disables it.
type tieredMetrics struct {
	gets, origins *telemetry.Counter
	tierHits      []*telemetry.Counter // indexed by tier
	get, origin   *telemetry.Histogram
}

// SetTelemetry attaches per-tier hit counters, get/origin latency
// histograms, and (when tracer is non-nil) cache spans. Call before the
// cache is shared across goroutines; nil arguments disable each part.
func (t *Tiered) SetTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	t.tracer = tracer
	if reg == nil {
		t.met = nil
		return
	}
	m := &tieredMetrics{
		gets:     reg.Counter("cache_gets_total"),
		origins:  reg.Counter("cache_origin_loads_total"),
		get:      reg.Histogram("cache_get_seconds"),
		origin:   reg.Histogram("cache_origin_seconds"),
		tierHits: make([]*telemetry.Counter, len(t.tiers)),
	}
	for i := range t.tiers {
		m.tierHits[i] = reg.Counter(`cache_hits_total{tier="` + strconv.Itoa(i) + `"}`)
	}
	t.met = m
}

// NewTiered creates a tiered cache. Tier 0 is closest to the caller.
func NewTiered(origin Loader, tiers ...*Cache) (*Tiered, error) {
	if origin == nil {
		return nil, errors.New("hccache: origin loader required")
	}
	if len(tiers) == 0 {
		return nil, errors.New("hccache: at least one tier required")
	}
	return &Tiered{tiers: tiers, origin: origin}, nil
}

// Get returns the value for key, filling missed tiers read-through.
func (t *Tiered) Get(key string) ([]byte, error) {
	return t.GetCtx(key, telemetry.SpanContext{})
}

// GetCtx is Get continuing a caller's trace: the lookup (and, on a full
// miss, the origin load) appear as spans under parent. Untraced gets
// (invalid parent) record metrics only, so hot cache loops don't flood
// the span store with one-span traces.
func (t *Tiered) GetCtx(key string, parent telemetry.SpanContext) ([]byte, error) {
	var sp *telemetry.Span
	if parent.Valid() {
		sp = t.tracer.StartSpan("cache.get", parent)
	}
	if m := t.met; m != nil {
		m.gets.Inc()
		defer m.get.ObserveSince(m.get.Start())
	}
	for i, tier := range t.tiers {
		if v, ver, ok := tier.Get(key); ok {
			// Back-fill the closer tiers.
			for j := 0; j < i; j++ {
				t.tiers[j].Put(key, v, ver)
			}
			if m := t.met; m != nil {
				m.tierHits[i].Inc()
			}
			sp.SetAttr("outcome", "hit")
			sp.SetAttr("tier", strconv.Itoa(i))
			sp.End()
			return v, nil
		}
	}
	var osp *telemetry.Span
	if sp != nil {
		osp = t.tracer.StartSpan("cache.origin", sp.Context())
	}
	var start time.Time
	if m := t.met; m != nil {
		start = m.origin.Start()
	}
	v, ver, err := t.origin(key)
	if m := t.met; m != nil {
		m.origin.ObserveSince(start)
		m.origins.Inc()
	}
	if err != nil {
		osp.SetAttr("error", err.Error())
		osp.End()
		sp.SetAttr("outcome", "origin-error")
		sp.End()
		return nil, fmt.Errorf("hccache: origin load %q: %w", key, err)
	}
	osp.End()
	t.mu.Lock()
	t.originLoads++
	t.mu.Unlock()
	for _, tier := range t.tiers {
		tier.Put(key, v, ver)
	}
	sp.SetAttr("outcome", "origin")
	sp.End()
	return v, nil
}

// Invalidate drops the key from every tier (server push invalidation).
func (t *Tiered) Invalidate(key string) {
	for _, tier := range t.tiers {
		tier.Invalidate(key)
	}
}

// OriginLoads reports how many requests reached the origin.
func (t *Tiered) OriginLoads() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.originLoads
}

// TierStats returns each tier's counters, closest first.
func (t *Tiered) TierStats() []Stats {
	out := make([]Stats, len(t.tiers))
	for i, tier := range t.tiers {
		out[i] = tier.Stats()
	}
	return out
}
