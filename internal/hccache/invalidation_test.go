package hccache

import (
	"testing"
	"time"

	"healthcloud/internal/bus"
)

// waitApplied polls until the listener has processed n invalidations.
func waitApplied(t *testing.T, l *Listener, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Applied() >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("listener applied %d invalidations, want %d", l.Applied(), n)
}

func TestInvalidationPropagates(t *testing.T) {
	b := bus.New()
	t.Cleanup(b.Close)
	serverTier, _ := New(16, 0)
	clientTier, _ := New(16, 0)
	pub := NewPublisher(b)
	lServer, err := NewListener(b, "server-cache", func(k string) { serverTier.Invalidate(k) })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lServer.Stop)
	lClient, err := NewListener(b, "client-device-1", func(k string) { clientTier.Invalidate(k) })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lClient.Stop)

	serverTier.Put("gene:BRCA1", []byte("v1"), 1)
	clientTier.Put("gene:BRCA1", []byte("v1"), 1)
	serverTier.Put("gene:TP53", []byte("v1"), 1)

	if err := pub.Publish("gene:BRCA1"); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, lServer, 1)
	waitApplied(t, lClient, 1)

	// The invalidated key is gone from BOTH tiers; the other key survives.
	if _, _, ok := serverTier.Get("gene:BRCA1"); ok {
		t.Error("server tier still serves invalidated key")
	}
	if _, _, ok := clientTier.Get("gene:BRCA1"); ok {
		t.Error("client tier still serves invalidated key")
	}
	if _, _, ok := serverTier.Get("gene:TP53"); !ok {
		t.Error("unrelated key was invalidated")
	}
}

func TestInvalidationFanOut(t *testing.T) {
	b := bus.New()
	t.Cleanup(b.Close)
	pub := NewPublisher(b)
	const devices = 5
	caches := make([]*Cache, devices)
	listeners := make([]*Listener, devices)
	for i := range caches {
		caches[i], _ = New(8, 0)
		caches[i].Put("k", []byte("stale"), 1)
		c := caches[i]
		l, err := NewListener(b, "device-"+string(rune('a'+i)), func(k string) { c.Invalidate(k) })
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(l.Stop)
		listeners[i] = l
	}
	if err := pub.Publish("k"); err != nil {
		t.Fatal(err)
	}
	for i, l := range listeners {
		waitApplied(t, l, 1)
		if _, _, ok := caches[i].Get("k"); ok {
			t.Errorf("device %d still serves stale key", i)
		}
	}
}

func TestListenerStopIdempotent(t *testing.T) {
	b := bus.New()
	t.Cleanup(b.Close)
	l, err := NewListener(b, "x", func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	l.Stop()
	l.Stop() // must not panic or deadlock
}

// TestStaleReadWindowCloses is the end-to-end consistency scenario: a
// read-through cache serves v1, the origin changes to v2, the
// invalidation lands, and the next read observes v2.
func TestStaleReadWindowCloses(t *testing.T) {
	b := bus.New()
	t.Cleanup(b.Close)
	version := 1
	origin := func(key string) ([]byte, uint64, error) {
		if version == 1 {
			return []byte("v1"), 1, nil
		}
		return []byte("v2"), 2, nil
	}
	tier, _ := New(8, 0)
	tc, err := NewTiered(origin, tier)
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(b)
	l, err := NewListener(b, "tier", func(k string) { tc.Invalidate(k) })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Stop)

	if v, _ := tc.Get("k"); string(v) != "v1" {
		t.Fatalf("initial read = %q", v)
	}
	// Origin updates; cached copy is now stale until the invalidation.
	version = 2
	if v, _ := tc.Get("k"); string(v) != "v1" {
		t.Fatalf("pre-invalidation read should still be cached v1, got %q", v)
	}
	pub.Publish("k")
	waitApplied(t, l, 1)
	if v, _ := tc.Get("k"); string(v) != "v2" {
		t.Errorf("post-invalidation read = %q, want v2", v)
	}
}
