// Package hccache provides the multi-level caching the paper leans on
// for performance: "the cost for accessing data from remote cloud
// servers can be orders of magnitude higher than the cost for accessing
// data locally. ... Our system employs caching at multiple levels and
// not just at the client level" (§I, §III).
//
// Cache is a single tier: LRU eviction, per-entry TTL leases, and
// explicit invalidation for data that changes (the paper: "if the data
// are changing frequently, cache consistency algorithms need to be
// applied"). Tiered composes tiers in front of an origin loader,
// implementing read-through fill and hit/miss accounting per tier —
// the client cache, server cache, and remote knowledge base of Fig 4.
package hccache

import (
	"container/list"
	"errors"
	"sync"
	"time"
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// Stats counts cache activity.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Expirations uint64
	Puts        uint64
}

// HitRate returns hits/(hits+misses), or 0 when unused.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key       string
	value     []byte
	version   uint64
	expiresAt time.Time
}

// Cache is one LRU+TTL tier. The zero value is unusable; construct with
// New.
type Cache struct {
	capacity int
	ttl      time.Duration
	clock    Clock

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats Stats
}

// Option configures a Cache.
type Option func(*Cache)

// WithClock injects a time source (tests use a fake clock to expire
// leases deterministically).
func WithClock(c Clock) Option {
	return func(cc *Cache) { cc.clock = c }
}

// ErrBadCapacity reports a non-positive capacity.
var ErrBadCapacity = errors.New("hccache: capacity must be positive")

// New creates a cache holding at most capacity entries, each valid for
// ttl after insertion (ttl<=0 disables expiry).
func New(capacity int, ttl time.Duration, opts ...Option) (*Cache, error) {
	if capacity <= 0 {
		return nil, ErrBadCapacity
	}
	c := &Cache{
		capacity: capacity,
		ttl:      ttl,
		clock:    time.Now,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Get returns the cached value and its version, if present and fresh.
func (c *Cache) Get(key string) (value []byte, version uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[key]
	if !found {
		c.stats.Misses++
		return nil, 0, false
	}
	e := el.Value.(*entry)
	if c.ttl > 0 && c.clock().After(e.expiresAt) {
		c.removeLocked(el)
		c.stats.Expirations++
		c.stats.Misses++
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return e.value, e.version, true
}

// Put inserts or replaces a value at the given version, renewing its
// lease and evicting the LRU entry if at capacity.
func (c *Cache) Put(key string, value []byte, version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Puts++
	now := c.clock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		e.value = value
		e.version = version
		e.expiresAt = now.Add(c.ttl)
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		if back := c.ll.Back(); back != nil {
			c.removeLocked(back)
			c.stats.Evictions++
		}
	}
	el := c.ll.PushFront(&entry{key: key, value: value, version: version, expiresAt: now.Add(c.ttl)})
	c.items[key] = el
}

// Invalidate drops a key (consistency on update). It reports whether the
// key was present.
func (c *Cache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeLocked(el)
	return true
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// Len returns the number of live entries (including any not yet expired
// lazily).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	delete(c.items, e.key)
	c.ll.Remove(el)
}
