package hccache

import (
	"sync/atomic"
	"testing"
	"time"

	"healthcloud/internal/telemetry"
)

// countingOrigin returns a loader that records how many times each key
// reached the origin.
func countingOrigin(loads *atomic.Uint64) Loader {
	return func(key string) ([]byte, uint64, error) {
		loads.Add(1)
		return []byte("origin:" + key), 1, nil
	}
}

// twoTier builds a tiered cache with a deliberately tiny tier 0 (so LRU
// demotes hot keys out of it) in front of a roomy tier 1.
func twoTier(t *testing.T, tier0Cap int, loads *atomic.Uint64) (*Tiered, *Cache, *Cache) {
	t.Helper()
	t0, err := New(tier0Cap, time.Minute)
	if err != nil {
		t.Fatalf("tier 0: %v", err)
	}
	t1, err := New(64, time.Minute)
	if err != nil {
		t.Fatalf("tier 1: %v", err)
	}
	tc, err := NewTiered(countingOrigin(loads), t0, t1)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	return tc, t0, t1
}

// TestTieredPromotionAfterDemotion walks a key through the full
// lifecycle: origin load fills both tiers, LRU eviction demotes it out
// of tier 0 (tier 1 still holds it), and the next read hits tier 1 and
// promotes the key back into tier 0 — without touching the origin.
func TestTieredPromotionAfterDemotion(t *testing.T) {
	var loads atomic.Uint64
	tc, t0, _ := twoTier(t, 2, &loads)

	if _, err := tc.Get("hot"); err != nil {
		t.Fatalf("initial get: %v", err)
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("origin loads after first get = %d, want 1", got)
	}

	// Evict "hot" from the 2-slot tier 0 by loading two fresher keys.
	for _, k := range []string{"fill-a", "fill-b"} {
		if _, err := tc.Get(k); err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
	}
	if _, _, ok := t0.Get("hot"); ok {
		t.Fatal("hot should have been demoted out of tier 0 by LRU")
	}
	if got := t0.Stats().Evictions; got == 0 {
		t.Fatal("tier 0 reports no evictions after overflow")
	}

	// The re-read must be served by tier 1, not the origin...
	before := loads.Load()
	v, err := tc.Get("hot")
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if string(v) != "origin:hot" {
		t.Fatalf("re-read value = %q", v)
	}
	if got := loads.Load(); got != before {
		t.Fatalf("re-read reached origin (loads %d -> %d)", before, got)
	}
	// ...and must promote the key back into tier 0.
	if _, _, ok := t0.Get("hot"); !ok {
		t.Fatal("tier-1 hit did not back-fill tier 0")
	}
}

// TestTieredHitMissAccounting scripts an access sequence and checks
// that per-tier Stats, OriginLoads, and the telemetry counters all
// agree on what happened.
func TestTieredHitMissAccounting(t *testing.T) {
	var loads atomic.Uint64
	tc, t0, _ := twoTier(t, 1, &loads)
	reg := telemetry.NewRegistry()
	tc.SetTelemetry(reg, nil)

	// a: origin. a again: tier-0 hit. b: origin, evicting a from the
	// 1-slot tier 0. a: tier-1 hit (promotes a, evicting b). b: tier-1
	// hit. Totals: 5 gets, 2 origin loads, 1 tier-0 hit, 2 tier-1 hits.
	for _, k := range []string{"a", "a", "b", "a", "b"} {
		if _, err := tc.Get(k); err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
	}

	if got := tc.OriginLoads(); got != 2 {
		t.Errorf("OriginLoads = %d, want 2", got)
	}
	if got := loads.Load(); got != 2 {
		t.Errorf("loader invocations = %d, want 2", got)
	}
	stats := tc.TierStats()
	if stats[0].Hits != 1 {
		t.Errorf("tier 0 hits = %d, want 1", stats[0].Hits)
	}
	if stats[1].Hits != 2 {
		t.Errorf("tier 1 hits = %d, want 2", stats[1].Hits)
	}
	// Tier 0 saw every probe: 1 hit, 4 misses.
	if stats[0].Misses != 4 {
		t.Errorf("tier 0 misses = %d, want 4", stats[0].Misses)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"cache_gets_total":           5,
		"cache_origin_loads_total":   2,
		`cache_hits_total{tier="0"}`: 1,
		`cache_hits_total{tier="1"}`: 2,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if h := snap.Histograms["cache_get_seconds"]; h.Count != 5 {
		t.Errorf("cache_get_seconds count = %d, want 5", h.Count)
	}
	if h := snap.Histograms["cache_origin_seconds"]; h.Count != 2 {
		t.Errorf("cache_origin_seconds count = %d, want 2", h.Count)
	}
	if got := t0.Stats().HitRate(); got != 0.2 {
		t.Errorf("tier 0 hit rate = %v, want 0.2", got)
	}
}

// TestTieredInvalidateAllTiers verifies server-push invalidation drops
// the key from every tier at once, so the next read is a cold origin
// load rather than a stale hit from a deeper tier.
func TestTieredInvalidateAllTiers(t *testing.T) {
	var loads atomic.Uint64
	tc, t0, t1 := twoTier(t, 4, &loads)

	if _, err := tc.Get("record-7"); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if _, _, ok := t0.Get("record-7"); !ok {
		t.Fatal("tier 0 not warmed")
	}
	if _, _, ok := t1.Get("record-7"); !ok {
		t.Fatal("tier 1 not warmed")
	}

	tc.Invalidate("record-7")
	if _, _, ok := t0.Get("record-7"); ok {
		t.Fatal("tier 0 still holds invalidated key")
	}
	if _, _, ok := t1.Get("record-7"); ok {
		t.Fatal("tier 1 still holds invalidated key")
	}

	if _, err := tc.Get("record-7"); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got := loads.Load(); got != 2 {
		t.Fatalf("origin loads after invalidate+reload = %d, want 2", got)
	}
}

// TestTieredGetCtxSpans checks the tracing contract: traced gets emit
// cache.get (and cache.origin on a full miss) under the caller's span,
// while untraced gets stay out of the span store entirely.
func TestTieredGetCtxSpans(t *testing.T) {
	var loads atomic.Uint64
	tc, _, _ := twoTier(t, 4, &loads)
	tr := telemetry.NewTracer(0, 0)
	tc.SetTelemetry(telemetry.NewRegistry(), tr)

	// Untraced get: metrics only, no spans.
	if _, err := tc.Get("quiet"); err != nil {
		t.Fatalf("untraced get: %v", err)
	}
	if ids := tr.TraceIDs(); len(ids) != 0 {
		t.Fatalf("untraced get created %d traces", len(ids))
	}

	root := tr.StartRoot("test.request")
	if _, err := tc.GetCtx("loud", root.Context()); err != nil { // full miss -> origin
		t.Fatalf("traced miss: %v", err)
	}
	if _, err := tc.GetCtx("loud", root.Context()); err != nil { // tier-0 hit
		t.Fatalf("traced hit: %v", err)
	}
	root.End()

	spans := tr.Trace(root.Context().TraceID.String())
	byName := map[string][]telemetry.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	if got := len(byName["cache.get"]); got != 2 {
		t.Fatalf("cache.get spans = %d, want 2 (trace: %v)", got, names(spans))
	}
	if got := len(byName["cache.origin"]); got != 1 {
		t.Fatalf("cache.origin spans = %d, want 1 (trace: %v)", got, names(spans))
	}
	for _, sp := range byName["cache.get"] {
		if sp.ParentID != root.Context().SpanID.String() {
			t.Errorf("cache.get parent = %s, want root %s", sp.ParentID, root.Context().SpanID)
		}
	}
	var outcomes []string
	for _, sp := range byName["cache.get"] {
		outcomes = append(outcomes, sp.Attrs["outcome"])
	}
	if outcomes[0] != "origin" || outcomes[1] != "hit" {
		t.Errorf("outcomes = %v, want [origin hit]", outcomes)
	}
	if hit := byName["cache.get"][1]; hit.Attrs["tier"] != "0" {
		t.Errorf("hit tier attr = %q, want \"0\"", hit.Attrs["tier"])
	}
	// The origin span must nest under the missing get, not the root.
	if osp := byName["cache.origin"][0]; osp.ParentID != byName["cache.get"][0].SpanID {
		t.Errorf("cache.origin parent = %s, want cache.get %s", osp.ParentID, byName["cache.get"][0].SpanID)
	}
}

func names(spans []telemetry.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestTieredOriginError verifies a failing origin neither poisons the
// tiers nor loses the error, and that metrics still count the attempt.
func TestTieredOriginError(t *testing.T) {
	var calls atomic.Uint64
	origin := func(key string) ([]byte, uint64, error) {
		calls.Add(1)
		return nil, 0, ErrNotFound
	}
	t0, err := New(4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTiered(origin, t0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tc.SetTelemetry(reg, nil)

	for i := 0; i < 3; i++ {
		if _, err := tc.Get("ghost"); err == nil {
			t.Fatalf("get %d: expected error", i)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("origin calls = %d, want 3 (errors must not be cached)", got)
	}
	if got := tc.OriginLoads(); got != 0 {
		t.Fatalf("OriginLoads = %d, want 0 (only successful loads count)", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["cache_origin_loads_total"]; got != 3 {
		t.Fatalf("cache_origin_loads_total = %d, want 3 (attempts)", got)
	}
	if t0.Len() != 0 {
		t.Fatalf("tier 0 holds %d entries after failed loads", t0.Len())
	}
}
