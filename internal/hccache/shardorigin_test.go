package hccache

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"healthcloud/internal/hckrypto"
	"healthcloud/internal/shardlake"
	"healthcloud/internal/store"
)

// shardOrigin builds a 3-shard R=2 lake and a Loader over it, so the
// tiered cache's origin is a cluster whose objects can move shards.
func shardOrigin(t *testing.T) (*shardlake.Lake, *hckrypto.KMS, Loader) {
	t.Helper()
	kms, err := hckrypto.NewKMS("cache-shard-test")
	if err != nil {
		t.Fatal(err)
	}
	members := make([]shardlake.Shard, 3)
	for i := range members {
		members[i] = shardlake.Shard{
			Name: shardlake.ShardName(i),
			Lake: store.NewDataLake(kms, "svc-storage"),
		}
	}
	sl, err := shardlake.New(members, shardlake.Config{Replicas: 2, Seed: 1907})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sl.Close)
	loader := func(key string) ([]byte, uint64, error) {
		v, err := sl.Get(key, "svc-storage")
		if err != nil {
			if errors.Is(err, store.ErrNotFound) || errors.Is(err, store.ErrDeleted) {
				return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
			}
			return nil, 0, err
		}
		return v, 1, nil
	}
	return sl, kms, loader
}

// TestShardedOriginInvalidationAcrossRebalance pins the satellite
// guarantee: when the tiered cache fronts a sharded lake, an object
// that moves shards during a rebalance must still honor invalidation —
// a secure-delete plus cache invalidate yields ErrNotFound, never a
// stale read, whether the delete lands mid-migration or after it.
func TestShardedOriginInvalidationAcrossRebalance(t *testing.T) {
	sl, kms, loader := shardOrigin(t)

	refs := make([]string, 30)
	for i := range refs {
		ref, err := sl.Put(fmt.Sprintf("patient-%02d", i),
			[]byte(fmt.Sprintf("record-%02d", i)), store.Meta{Tenant: "t", Group: "g"})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	tier, err := New(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTiered(loader, tier)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache on the pre-rebalance topology.
	for _, ref := range refs {
		if _, err := tc.Get(ref); err != nil {
			t.Fatal(err)
		}
	}

	// Grow the cluster; the new shard is slowed so deletes can land
	// while the migration is still moving objects.
	extra := store.NewDataLake(kms, "svc-storage")
	extra.SetServiceTime(time.Millisecond)
	if err := sl.AddShard(shardlake.ShardName(3), extra); err != nil {
		t.Fatal(err)
	}

	// Delete + invalidate the first few objects mid-migration.
	mid := refs[:5]
	for _, ref := range mid {
		if err := sl.SecureDelete(ref); err != nil {
			t.Fatal(err)
		}
		tc.Invalidate(ref)
	}
	for _, ref := range mid {
		if _, err := tc.Get(ref); !errors.Is(err, ErrNotFound) {
			t.Errorf("mid-rebalance read of deleted %s = %v, want ErrNotFound", ref, err)
		}
	}

	if err := sl.WaitRebalance(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Post-rebalance: objects have moved shards. Delete + invalidate
	// more and verify no tier serves them; the survivors still read.
	post := refs[5:10]
	for _, ref := range post {
		if err := sl.SecureDelete(ref); err != nil {
			t.Fatal(err)
		}
		tc.Invalidate(ref)
	}
	for _, ref := range post {
		if _, err := tc.Get(ref); !errors.Is(err, ErrNotFound) {
			t.Errorf("post-rebalance read of deleted %s = %v, want ErrNotFound", ref, err)
		}
	}
	for _, ref := range refs[10:] {
		v, err := tc.Get(ref)
		if err != nil {
			t.Fatalf("surviving record %s unreadable after rebalance: %v", ref, err)
		}
		if len(v) == 0 {
			t.Fatalf("surviving record %s served empty", ref)
		}
	}
	// The deletes must also have stayed deleted in the lake itself —
	// the migration cannot resurrect a tombstoned object into a
	// cacheable read.
	for _, ref := range append(append([]string{}, mid...), post...) {
		if _, err := sl.Get(ref, "svc-storage"); !errors.Is(err, store.ErrDeleted) {
			t.Errorf("lake read of deleted %s = %v, want ErrDeleted", ref, err)
		}
	}
}
