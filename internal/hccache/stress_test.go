package hccache

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"healthcloud/internal/telemetry"
)

// TestTieredStressAccounting hammers a two-tier cache from 16 goroutines
// over a shared keyspace and asserts the accounting identity the
// dashboards rely on: every get either hit some tier or reached the
// origin, so gets == Σ tier hits + origin loads — exactly, even under
// contention.
func TestTieredStressAccounting(t *testing.T) {
	const (
		workers = 16
		perW    = 500
		keys    = 64
	)
	var originCalls int64
	origin := func(key string) ([]byte, uint64, error) {
		atomic.AddInt64(&originCalls, 1)
		return []byte("v:" + key), 1, nil
	}
	client, err := New(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	server, err := New(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTiered(origin, client, server)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tc.SetTelemetry(reg, nil)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := "k" + strconv.Itoa((w*31+i)%keys)
				v, err := tc.Get(key)
				if err != nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
				if want := "v:" + key; string(v) != want {
					t.Errorf("get %s = %q, want %q", key, v, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot().Counters
	gets := snap["cache_gets_total"]
	origins := snap["cache_origin_loads_total"]
	hits := snap[`cache_hits_total{tier="0"}`] + snap[`cache_hits_total{tier="1"}`]
	if want := uint64(workers * perW); gets != want {
		t.Errorf("cache_gets_total = %d, want %d", gets, want)
	}
	if gets != hits+origins {
		t.Errorf("accounting identity broken: gets %d != tier hits %d + origins %d",
			gets, hits, origins)
	}
	// The metric counter, the Tiered struct's own counter, and the raw
	// loader call count are three independent tallies of the same events.
	if got := tc.OriginLoads(); got != origins {
		t.Errorf("OriginLoads() = %d, metric says %d", got, origins)
	}
	if got := uint64(atomic.LoadInt64(&originCalls)); got != origins {
		t.Errorf("loader called %d times, metric says %d", got, origins)
	}
	// Per-tier Stats must add up the same way: each tier's probes are
	// its hits + misses, and tier 1 is only probed on tier-0 misses.
	stats := tc.TierStats()
	if probes := stats[0].Hits + stats[0].Misses; probes != gets {
		t.Errorf("tier 0 probed %d times, want %d", probes, gets)
	}
	if probes := stats[1].Hits + stats[1].Misses; probes != stats[0].Misses {
		t.Errorf("tier 1 probed %d times, want tier-0 misses %d", probes, stats[0].Misses)
	}
}

// TestTieredStressInvalidation mixes readers with concurrent
// invalidations: values must never be stale-vs-origin in a way the
// caller can observe (the origin is versioned monotonically), and the
// accounting identity must survive the churn.
func TestTieredStressInvalidation(t *testing.T) {
	const (
		readers = 12
		killers = 4
		perW    = 300
		keys    = 32
	)
	var version uint64 = 1
	origin := func(key string) ([]byte, uint64, error) {
		v := atomic.LoadUint64(&version)
		return []byte(fmt.Sprintf("%s@%d", key, v)), v, nil
	}
	c0, err := New(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(128, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTiered(origin, c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tc.SetTelemetry(reg, nil)

	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := "k" + strconv.Itoa((w*17+i)%keys)
				v, err := tc.Get(key)
				if err != nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
				if len(v) == 0 {
					t.Errorf("get %s returned empty value", key)
					return
				}
			}
		}(w)
	}
	for w := 0; w < killers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				atomic.AddUint64(&version, 1)
				tc.Invalidate("k" + strconv.Itoa((w*13+i)%keys))
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot().Counters
	gets := snap["cache_gets_total"]
	origins := snap["cache_origin_loads_total"]
	hits := snap[`cache_hits_total{tier="0"}`] + snap[`cache_hits_total{tier="1"}`]
	if want := uint64(readers * perW); gets != want {
		t.Errorf("cache_gets_total = %d, want %d", gets, want)
	}
	if gets != hits+origins {
		t.Errorf("accounting identity broken under invalidation: gets %d != hits %d + origins %d",
			gets, hits, origins)
	}
}
