package hccache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is a controllable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("capacity 0: got %v", err)
	}
	if _, err := New(-1, 0); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("capacity -1: got %v", err)
	}
}

func TestPutGet(t *testing.T) {
	c, err := New(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", []byte("v"), 1)
	v, ver, ok := c.Get("k")
	if !ok || string(v) != "v" || ver != 1 {
		t.Errorf("Get = %q, %d, %v", v, ver, ok)
	}
	if _, _, ok := c.Get("missing"); ok {
		t.Error("missing key reported present")
	}
}

func TestPutReplaces(t *testing.T) {
	c, _ := New(10, 0)
	c.Put("k", []byte("v1"), 1)
	c.Put("k", []byte("v2"), 2)
	v, ver, ok := c.Get("k")
	if !ok || string(v) != "v2" || ver != 2 {
		t.Errorf("Get = %q, %d, %v", v, ver, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(3, 0)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"), 1)
	}
	// Touch k0 so k1 becomes LRU.
	c.Get("k0")
	c.Put("k3", []byte("v"), 1)
	if _, _, ok := c.Get("k1"); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c, err := New(10, time.Minute, WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", []byte("v"), 1)
	if _, _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.Advance(2 * time.Minute)
	if _, _, ok := c.Get("k"); ok {
		t.Error("expired entry served")
	}
	s := c.Stats()
	if s.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", s.Expirations)
	}
	// Re-putting renews the lease.
	c.Put("k", []byte("v2"), 2)
	clk.Advance(30 * time.Second)
	if _, _, ok := c.Get("k"); !ok {
		t.Error("renewed entry missing")
	}
}

func TestInvalidate(t *testing.T) {
	c, _ := New(10, 0)
	c.Put("k", []byte("v"), 1)
	if !c.Invalidate("k") {
		t.Error("Invalidate returned false for present key")
	}
	if c.Invalidate("k") {
		t.Error("Invalidate returned true for absent key")
	}
	if _, _, ok := c.Get("k"); ok {
		t.Error("invalidated key still served")
	}
}

func TestInvalidateAll(t *testing.T) {
	c, _ := New(10, 0)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"), 1)
	}
	c.InvalidateAll()
	if c.Len() != 0 {
		t.Errorf("Len after InvalidateAll = %d", c.Len())
	}
}

func TestStatsAndHitRate(t *testing.T) {
	c, _ := New(10, 0)
	c.Put("k", []byte("v"), 1)
	c.Get("k")
	c.Get("k")
	c.Get("miss")
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("HitRate = %f, want ~0.667", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
}

// Property: the cache never exceeds its capacity, whatever the workload.
func TestQuickCapacityInvariant(t *testing.T) {
	c, _ := New(8, 0)
	f := func(keys []uint8) bool {
		for _, k := range keys {
			c.Put(fmt.Sprintf("k%d", k), []byte{k}, uint64(k))
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Get returns exactly what the most recent Put stored.
func TestQuickReadYourWrites(t *testing.T) {
	c, _ := New(64, 0)
	f := func(key uint8, val []byte, ver uint64) bool {
		k := fmt.Sprintf("k%d", key)
		c.Put(k, val, ver)
		got, gotVer, ok := c.Get(k)
		if !ok || gotVer != ver || len(got) != len(val) {
			return false
		}
		for i := range val {
			if got[i] != val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := New(128, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*13+i)%64)
				if i%3 == 0 {
					c.Put(k, []byte{byte(i)}, uint64(i))
				} else if i%7 == 0 {
					c.Invalidate(k)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Errorf("capacity exceeded under concurrency: %d", c.Len())
	}
}

func newOrigin() (Loader, *int) {
	calls := new(int)
	return func(key string) ([]byte, uint64, error) {
		*calls++
		if key == "missing" {
			return nil, 0, ErrNotFound
		}
		return []byte("origin:" + key), 7, nil
	}, calls
}

func TestTieredValidation(t *testing.T) {
	c, _ := New(4, 0)
	if _, err := NewTiered(nil, c); err == nil {
		t.Error("nil origin accepted")
	}
	origin, _ := newOrigin()
	if _, err := NewTiered(origin); err == nil {
		t.Error("zero tiers accepted")
	}
}

func TestTieredReadThrough(t *testing.T) {
	client, _ := New(4, 0)
	server, _ := New(16, 0)
	origin, calls := newOrigin()
	tc, err := NewTiered(origin, client, server)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tc.Get("gene:BRCA1")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "origin:gene:BRCA1" {
		t.Errorf("value = %q", v)
	}
	if *calls != 1 || tc.OriginLoads() != 1 {
		t.Errorf("origin calls = %d, loads = %d", *calls, tc.OriginLoads())
	}
	// Second read: client hit, origin untouched.
	if _, err := tc.Get("gene:BRCA1"); err != nil {
		t.Fatal(err)
	}
	if *calls != 1 {
		t.Errorf("origin re-queried on warm read: %d calls", *calls)
	}
	stats := tc.TierStats()
	if stats[0].Hits != 1 {
		t.Errorf("client hits = %d, want 1", stats[0].Hits)
	}
}

func TestTieredBackfill(t *testing.T) {
	client, _ := New(4, 0)
	server, _ := New(16, 0)
	origin, calls := newOrigin()
	tc, _ := NewTiered(origin, client, server)
	// Warm the server tier only.
	server.Put("k", []byte("from-server"), 3)
	v, err := tc.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "from-server" {
		t.Errorf("value = %q", v)
	}
	if *calls != 0 {
		t.Error("origin touched despite server-tier hit")
	}
	// Back-fill happened: the client tier now holds the key.
	if _, _, ok := client.Get("k"); !ok {
		t.Error("client tier not back-filled")
	}
}

func TestTieredMissingKey(t *testing.T) {
	client, _ := New(4, 0)
	origin, _ := newOrigin()
	tc, _ := NewTiered(origin, client)
	if _, err := tc.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("got %v, want ErrNotFound", err)
	}
}

func TestTieredInvalidate(t *testing.T) {
	client, _ := New(4, 0)
	server, _ := New(16, 0)
	origin, calls := newOrigin()
	tc, _ := NewTiered(origin, client, server)
	tc.Get("k")
	tc.Invalidate("k")
	tc.Get("k")
	if *calls != 2 {
		t.Errorf("origin calls = %d, want 2 (invalidation forces reload)", *calls)
	}
}
