package store

import "fmt"

// The lake's durability hook. When a Journal is attached (SetJournal),
// every mutation is framed to it write-ahead — staged under the lake's
// own mutex so journal order is exactly in-memory apply order — and
// the operation is acknowledged only after the journal reports the
// frame durable. internal/durable provides the file-backed
// implementation; the interface lives here so store stays free of any
// dependency on it, and a nil journal keeps today's in-memory behavior
// byte-identical.

// Journal operations.
const (
	// OpPut is a live record install (Put, PutSealed, replication,
	// read-repair, hint delivery).
	OpPut = "put"
	// OpTombstone is a secure deletion: key shredded, ciphertext
	// zeroed, tombstone retained for audit.
	OpTombstone = "tombstone"
	// OpEvict removes a record outright (rebalance cleanup) — not a
	// deletion; the object lives on its new shards.
	OpEvict = "evict"
	// OpGrant records a KMS key grant. The KMS itself is modeled as an
	// external single-tenant system and is not persisted here; grant
	// frames are an audit trail and a best-effort re-apply on replay.
	OpGrant = "grant"
)

// JournalRecord is one journaled lake mutation.
type JournalRecord struct {
	Op        string `json:"op"`
	Sealed    Sealed `json:"sealed"`
	Principal string `json:"principal,omitempty"`
}

// Journal persists lake mutations write-ahead. Append stages the
// record (cheap, called under the lake's mutex) and returns a wait
// function that blocks until the record is durable; the lake calls it
// after releasing its mutex, so fsync batching across concurrent
// writers is preserved. An Append error means nothing was staged and
// the mutation must not be applied.
type Journal interface {
	Append(rec JournalRecord) (wait func() error, err error)
}

// SetJournal attaches a write-ahead journal (nil detaches). Call
// before the lake is shared across goroutines.
func (d *DataLake) SetJournal(j Journal) { d.journal = j }

// stageJournal stages one record write-ahead. Must be called with d.mu
// held; the returned wait (possibly nil) is invoked after unlock.
func (d *DataLake) stageJournal(rec JournalRecord) (func() error, error) {
	if d.journal == nil {
		return nil, nil
	}
	return d.journal.Append(rec)
}

// ApplyJournal applies one replayed record to the in-memory state,
// bypassing fault points, the service-time model and the journal
// itself — the replay path internal/durable drives at open. Tombstone
// precedence matches PutSealed: a live record never overwrites a
// tombstone.
func (d *DataLake) ApplyJournal(rec JournalRecord) error {
	switch rec.Op {
	case OpPut, OpTombstone:
		s := rec.Sealed
		d.mu.Lock()
		if existing, ok := d.records[s.RefID]; ok && existing.deleted && !s.Deleted {
			d.mu.Unlock()
			return nil
		}
		d.records[s.RefID] = &record{
			refID: s.RefID, keyID: s.KeyID,
			ciphertext: append([]byte(nil), s.Ciphertext...),
			meta:       s.Meta, deleted: s.Deleted,
		}
		d.mu.Unlock()
	case OpEvict:
		d.mu.Lock()
		delete(d.records, rec.Sealed.RefID)
		d.mu.Unlock()
	case OpGrant:
		// Best-effort: after a restart the in-memory KMS is fresh (its
		// durability belongs to the external key-management system the
		// paper models), so a replayed grant may have no key to attach
		// to. The frame still preserves the audit trail.
		_ = d.kms.Grant(rec.Sealed.KeyID, rec.Principal)
	default:
		return fmt.Errorf("store: unknown journal op %q", rec.Op)
	}
	return nil
}

// tombstoneRecord renders a record's post-shred state for journaling.
func tombstoneRecord(rec *record) JournalRecord {
	return JournalRecord{Op: OpTombstone, Sealed: Sealed{
		RefID: rec.refID, KeyID: rec.keyID, Meta: rec.meta, Deleted: true,
	}}
}
