// Package store implements the platform's trusted back-end storage
// (§II-B): a Data Lake of envelope-encrypted records, the secure
// temporary staging area uploads land in, and the reference-id ↔
// identity mapping kept in metadata ("the data is de-identified and
// stored in the backend storage system (Data Lake) with a reference-id,
// and the reference-id to identity the mapping is stored in the
// metadata").
//
// Records are encrypted with per-record data keys from the KMS, bound to
// a subject (patient), so GDPR right-to-forget is implemented by
// crypto-shredding the subject's keys (§IV-B1 "encryption-based record
// deletion").
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/telemetry"
)

// Fault-point names this package consults (see internal/faultinject).
// A sharded lake rescopes the per-shard points via SetFaultScope, so
// "shardlake.shard-1.put" can fail while "shardlake.shard-0.put" serves.
const (
	FaultLakePut    = "store.lake.put"
	FaultLakeGet    = "store.lake.get"
	FaultLakePing   = "store.lake.ping"
	FaultStagingPut = "store.staging.put"
)

// Errors returned by this package.
var (
	ErrNotFound = errors.New("store: record not found")
	ErrDeleted  = errors.New("store: record securely deleted")
	ErrIdentity = errors.New("store: identity mapping access denied")
)

// Meta describes a stored record. Tags carry non-PHI attributes only.
type Meta struct {
	ContentType string            `json:"content_type"`
	Tenant      string            `json:"tenant"`
	Group       string            `json:"group,omitempty"`
	CreatedAt   time.Time         `json:"created_at"`
	Tags        map[string]string `json:"tags,omitempty"`
}

// Lake is the Data Lake surface the rest of the platform programs
// against: the single-node *DataLake implements it directly, and the
// sharded internal/shardlake.Lake implements it over N DataLake shards,
// so ingest, the export path, caching and the health prober swap
// between them via core.Config.Shards without code changes.
type Lake interface {
	Put(subject string, plaintext []byte, meta Meta) (string, error)
	Get(refID, principal string) ([]byte, error)
	Grant(refID, principal string) error
	Meta(refID string) (Meta, error)
	SecureDelete(refID string) error
	List(tenantName, group string) []string
	Count() int
	Ping() error
}

// Sealed is one envelope-encrypted record in transportable form: the
// ciphertext plus the KMS key id that unwraps it, no plaintext and no
// key material. Because every shard of a sharded lake hangs off the
// same KMS, a Sealed record can be installed verbatim on any replica —
// replication, read-repair, hinted handoff and rebalancing all move
// Sealed records, never plaintext.
type Sealed struct {
	RefID      string `json:"ref_id"`
	KeyID      string `json:"key_id"`
	Ciphertext []byte `json:"ciphertext,omitempty"`
	Meta       Meta   `json:"meta"`
	Deleted    bool   `json:"deleted"`
}

type record struct {
	refID      string
	keyID      string
	ciphertext []byte
	meta       Meta
	deleted    bool
}

// DataLake is the encrypted record store. Construct with NewDataLake.
type DataLake struct {
	kms       *hckrypto.KMS
	principal string // the storage service's own KMS identity
	faults    *faultinject.Registry
	met       *lakeMetrics
	// Per-instance fault-point names (SetFaultScope rescopes them so
	// each shard of a sharded lake can be broken independently).
	ptPut, ptGet, ptPing string
	// svcTime models the serial service capacity of one storage node:
	// when set, every storage operation holds the node's "device" for
	// svcTime, so shard-scaling experiments measure a real bottleneck
	// instead of an uncontended map insert. Zero (the default) disables
	// the model entirely.
	svcTime time.Duration
	svcMu   sync.Mutex
	// journal, when set, persists every mutation write-ahead (see
	// journal.go); nil keeps the lake purely in-memory.
	journal Journal

	mu      sync.RWMutex
	records map[string]*record
}

var _ Lake = (*DataLake)(nil)

// lakeMetrics instruments the lake; nil disables it.
type lakeMetrics struct {
	put, get, ping   *telemetry.Histogram
	putErrs, getErrs *telemetry.Counter
}

// NewDataLake creates a lake that encrypts under keys from kms, acting
// as the given KMS principal.
func NewDataLake(kms *hckrypto.KMS, principal string) *DataLake {
	return &DataLake{
		kms: kms, principal: principal, records: make(map[string]*record),
		ptPut: FaultLakePut, ptGet: FaultLakeGet, ptPing: FaultLakePing,
	}
}

// SetFaults installs a fault-injection registry (nil disables). Call
// before the lake is shared across goroutines.
func (d *DataLake) SetFaults(r *faultinject.Registry) { d.faults = r }

// SetFaultScope renames the lake's fault points from the default
// "store.lake.*" to scope+".put", ".get" and ".ping", so each shard of
// a sharded lake exposes its own points (internal/shardlake scopes
// shard i as "shardlake.shard-i"). Call before the lake is shared.
func (d *DataLake) SetFaultScope(scope string) {
	d.ptPut, d.ptGet, d.ptPing = scope+".put", scope+".get", scope+".ping"
}

// SetServiceTime enables the storage-node capacity model: each Put/Get
// (sealed variants included) occupies the node serially for dur. Zero
// restores the default free-of-charge in-memory behavior.
func (d *DataLake) SetServiceTime(dur time.Duration) { d.svcTime = dur }

// serviceDelay charges one operation's service time against the node's
// single "device" (held exclusively, like a disk spindle or a saturated
// NIC), making per-shard throughput finite when the model is on.
func (d *DataLake) serviceDelay() {
	if d.svcTime <= 0 {
		return
	}
	d.svcMu.Lock()
	time.Sleep(d.svcTime)
	d.svcMu.Unlock()
}

// SetTelemetry attaches put/get/ping latency histograms and error
// counters to the registry (nil disables). Call before the lake is
// shared.
func (d *DataLake) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		d.met = nil
		return
	}
	d.met = &lakeMetrics{
		put:     reg.Histogram("lake_put_seconds"),
		get:     reg.Histogram("lake_get_seconds"),
		ping:    reg.Histogram("lake_ping_seconds"),
		putErrs: reg.Counter("lake_put_errors_total"),
		getErrs: reg.Counter("lake_get_errors_total"),
	}
}

// Seal encrypts plaintext under a fresh per-record data key bound to
// subject and returns the sealed record without storing it — the
// coordinator half of a replicated write. No fault point is consulted:
// sealing is coordinator CPU plus KMS work, not shard I/O.
func (d *DataLake) Seal(subject string, plaintext []byte, meta Meta) (Sealed, error) {
	keyID, dk, err := d.kms.CreateDataKey(subject, d.principal)
	if err != nil {
		return Sealed{}, fmt.Errorf("store: creating data key: %w", err)
	}
	refID := "ref-" + hckrypto.NewUUID()
	ct, err := hckrypto.EncryptGCM(dk, plaintext, []byte(refID))
	if err != nil {
		return Sealed{}, fmt.Errorf("store: encrypting record: %w", err)
	}
	if meta.CreatedAt.IsZero() {
		meta.CreatedAt = time.Now().UTC()
	}
	return Sealed{RefID: refID, KeyID: keyID, Ciphertext: ct, Meta: meta}, nil
}

// Open decrypts a sealed record on behalf of principal using this
// lake's KMS — the coordinator half of a replicated read, after quorum
// resolution picked the authoritative copy. Like Seal it consults no
// fault point.
func (d *DataLake) Open(s Sealed, principal string) ([]byte, error) {
	if s.Deleted {
		return nil, fmt.Errorf("%w: %s", ErrDeleted, s.RefID)
	}
	dk, err := d.kms.UnwrapDataKey(s.KeyID, principal)
	if err != nil {
		return nil, fmt.Errorf("store: unwrapping key for %s: %w", s.RefID, err)
	}
	pt, err := hckrypto.DecryptGCM(dk, s.Ciphertext, []byte(s.RefID))
	if err != nil {
		return nil, fmt.Errorf("store: decrypting %s: %w", s.RefID, err)
	}
	return pt, nil
}

// Put encrypts plaintext under a fresh per-record data key bound to
// subject and stores it, returning the reference ID. The plaintext never
// persists; the data key lives only in the KMS.
func (d *DataLake) Put(subject string, plaintext []byte, meta Meta) (string, error) {
	if m := d.met; m != nil {
		defer m.put.ObserveSince(m.put.Start())
	}
	if err := d.faults.Check(d.ptPut); err != nil {
		if m := d.met; m != nil {
			m.putErrs.Inc()
		}
		return "", fmt.Errorf("store: %w", err)
	}
	s, err := d.Seal(subject, plaintext, meta)
	if err != nil {
		return "", err
	}
	d.serviceDelay()
	wait, err := d.install(s)
	if err != nil {
		return "", err
	}
	if wait != nil {
		if err := wait(); err != nil {
			return "", err
		}
	}
	return s.RefID, nil
}

// PutSealed installs a sealed record verbatim — the replication,
// read-repair, hinted-handoff and rebalance write path. It is an
// idempotent upsert with one invariant: a tombstone already present can
// never be overwritten by a live copy (deletion wins, so a late hint
// cannot resurrect a securely-deleted record).
func (d *DataLake) PutSealed(s Sealed) error {
	if m := d.met; m != nil {
		defer m.put.ObserveSince(m.put.Start())
	}
	if err := d.faults.Check(d.ptPut); err != nil {
		if m := d.met; m != nil {
			m.putErrs.Inc()
		}
		return fmt.Errorf("store: %w", err)
	}
	d.serviceDelay()
	d.mu.Lock()
	if existing, ok := d.records[s.RefID]; ok && existing.deleted {
		d.mu.Unlock()
		return nil
	}
	wait, err := d.stageJournal(JournalRecord{Op: OpPut, Sealed: s})
	if err != nil {
		d.mu.Unlock()
		return fmt.Errorf("store: journaling record: %w", err)
	}
	d.records[s.RefID] = &record{
		refID: s.RefID, keyID: s.KeyID,
		ciphertext: append([]byte(nil), s.Ciphertext...),
		meta:       s.Meta, deleted: s.Deleted,
	}
	d.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("store: journaling record: %w", err)
		}
	}
	return nil
}

// GetSealed returns a record in sealed form, tombstones included — the
// replica-side read that quorum resolution, repair and rebalancing are
// built from. It pays the same fault point as Get, so a downed shard
// fails sealed reads too.
func (d *DataLake) GetSealed(refID string) (Sealed, error) {
	if err := d.faults.Check(d.ptGet); err != nil {
		if m := d.met; m != nil {
			m.getErrs.Inc()
		}
		return Sealed{}, fmt.Errorf("store: %w", err)
	}
	d.serviceDelay()
	d.mu.RLock()
	defer d.mu.RUnlock()
	rec, ok := d.records[refID]
	if !ok {
		return Sealed{}, fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	return Sealed{
		RefID: rec.refID, KeyID: rec.keyID,
		Ciphertext: append([]byte(nil), rec.ciphertext...),
		Meta:       rec.meta, Deleted: rec.deleted,
	}, nil
}

// install stores a sealed record, replacing any existing copy. The
// journal frame is staged under the mutex (write-ahead, in apply
// order); the returned wait — to be called after unlock — blocks until
// the frame is durable, so the record is only acknowledged once it
// would survive a crash.
func (d *DataLake) install(s Sealed) (func() error, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	wait, err := d.stageJournal(JournalRecord{Op: OpPut, Sealed: s})
	if err != nil {
		return nil, fmt.Errorf("store: journaling record: %w", err)
	}
	d.records[s.RefID] = &record{
		refID: s.RefID, keyID: s.KeyID, ciphertext: s.Ciphertext,
		meta: s.Meta, deleted: s.Deleted,
	}
	return wait, nil
}

// Get decrypts a record on behalf of principal. The KMS enforces
// need-to-know: the principal must hold a grant on the record's key.
func (d *DataLake) Get(refID, principal string) ([]byte, error) {
	if m := d.met; m != nil {
		defer m.get.ObserveSince(m.get.Start())
	}
	if err := d.faults.Check(d.ptGet); err != nil {
		if m := d.met; m != nil {
			m.getErrs.Inc()
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	d.serviceDelay()
	d.mu.RLock()
	rec, ok := d.records[refID]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	if rec.deleted {
		return nil, fmt.Errorf("%w: %s", ErrDeleted, refID)
	}
	dk, err := d.kms.UnwrapDataKey(rec.keyID, principal)
	if err != nil {
		return nil, fmt.Errorf("store: unwrapping key for %s: %w", refID, err)
	}
	pt, err := hckrypto.DecryptGCM(dk, rec.ciphertext, []byte(refID))
	if err != nil {
		return nil, fmt.Errorf("store: decrypting %s: %w", refID, err)
	}
	return pt, nil
}

// Grant allows another principal to read a record (KMS key grant). The
// grant is journaled for the audit trail; the KMS itself (an external
// system in the paper's model) is the authority for its effect.
func (d *DataLake) Grant(refID, principal string) error {
	d.mu.Lock()
	rec, ok := d.records[refID]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	keyID := rec.keyID
	wait, err := d.stageJournal(JournalRecord{
		Op: OpGrant, Sealed: Sealed{RefID: refID, KeyID: keyID}, Principal: principal,
	})
	d.mu.Unlock()
	if err != nil {
		return fmt.Errorf("store: journaling grant: %w", err)
	}
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("store: journaling grant: %w", err)
		}
	}
	return d.kms.Grant(keyID, principal)
}

// Meta returns a record's metadata (no key material, no plaintext).
func (d *DataLake) Meta(refID string) (Meta, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rec, ok := d.records[refID]
	if !ok {
		return Meta{}, fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	return rec.meta, nil
}

// SecureDelete crypto-shreds one record: its data key is destroyed and
// the ciphertext zeroed. The tombstone remains so audits can see a
// record existed.
func (d *DataLake) SecureDelete(refID string) error {
	d.mu.Lock()
	rec, ok := d.records[refID]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	if rec.deleted {
		d.mu.Unlock()
		return nil
	}
	if err := d.kms.Shred(rec.keyID); err != nil {
		d.mu.Unlock()
		return fmt.Errorf("store: shredding key: %w", err)
	}
	// The key is already shredded (that durability belongs to the
	// external KMS), so the tombstone is journaled write-ahead of the
	// in-memory transition and the deletion acked only once durable.
	wait, err := d.stageJournal(tombstoneRecord(rec))
	if err != nil {
		d.mu.Unlock()
		return fmt.Errorf("store: journaling tombstone: %w", err)
	}
	for i := range rec.ciphertext {
		rec.ciphertext[i] = 0
	}
	rec.ciphertext = nil
	rec.deleted = true
	d.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("store: journaling tombstone: %w", err)
		}
	}
	return nil
}

// List returns the reference IDs matching the tenant/group filter
// (empty strings match everything), sorted, excluding deleted records.
func (d *DataLake) List(tenantName, group string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for id, rec := range d.records {
		if rec.deleted {
			continue
		}
		if tenantName != "" && rec.meta.Tenant != tenantName {
			continue
		}
		if group != "" && rec.meta.Group != group {
			continue
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Ping reports whether the lake's read and write paths are currently
// serviceable, consulting its own ping fault point plus the same points
// Put/Get do, without creating or touching any record — the health
// prober's storage check. The dedicated ping point lets chaos tests
// fail health probes independently of writes (and vice versa); the
// latency histogram makes slow-probe behavior observable.
func (d *DataLake) Ping() error {
	if m := d.met; m != nil {
		defer m.ping.ObserveSince(m.ping.Start())
	}
	if err := d.faults.Check(d.ptPing); err != nil {
		return fmt.Errorf("store: lake probe path: %w", err)
	}
	if err := d.faults.Check(d.ptPut); err != nil {
		return fmt.Errorf("store: lake write path: %w", err)
	}
	if err := d.faults.Check(d.ptGet); err != nil {
		return fmt.Errorf("store: lake read path: %w", err)
	}
	return nil
}

// Refs lists every reference ID the lake holds — tombstones included,
// sorted — the rebalancer's enumeration (List excludes deleted records
// and filters by tenant; a migration must move tombstones too, or a
// resurrected replica could undo a secure deletion).
func (d *DataLake) Refs() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.records))
	for id := range d.records {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Evict removes a record outright without touching its data key — the
// rebalancer's cleanup once an object's placement moved off this shard.
// Not a secure deletion: the key survives and the object lives on its
// new shards.
// Best-effort on the journal: if the evict frame is lost to a crash,
// replay resurrects a stray copy the next rebalance or repair pass
// re-evicts — placement, not presence, is authoritative for reads.
func (d *DataLake) Evict(refID string) {
	d.mu.Lock()
	wait, err := d.stageJournal(JournalRecord{Op: OpEvict, Sealed: Sealed{RefID: refID}})
	delete(d.records, refID)
	d.mu.Unlock()
	if err == nil && wait != nil {
		_ = wait()
	}
}

// Count returns live (non-deleted) record count.
func (d *DataLake) Count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, rec := range d.records {
		if !rec.deleted {
			n++
		}
	}
	return n
}

// Staging is the "secure temporary storage area" uploads land in before
// background ingestion picks them up (§II-B). Contents are already
// client-encrypted; staging only holds opaque bytes.
type Staging struct {
	faults  *faultinject.Registry
	pending *telemetry.Gauge // nil disables

	mu      sync.Mutex
	uploads map[string][]byte
}

// NewStaging creates an empty staging area.
func NewStaging() *Staging {
	return &Staging{uploads: make(map[string][]byte)}
}

// SetFaults installs a fault-injection registry (nil disables). Call
// before the staging area is shared across goroutines.
func (s *Staging) SetFaults(r *faultinject.Registry) { s.faults = r }

// SetTelemetry publishes the pending-upload depth as a gauge (nil
// disables). Call before the staging area is shared.
func (s *Staging) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.pending = nil
		return
	}
	s.pending = reg.Gauge("staging_pending_uploads")
}

// Put stores an encrypted upload and returns its upload ID.
func (s *Staging) Put(encrypted []byte) (string, error) {
	if err := s.faults.Check(FaultStagingPut); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	id := "upload-" + hckrypto.NewUUID()
	s.mu.Lock()
	s.uploads[id] = append([]byte(nil), encrypted...)
	s.mu.Unlock()
	s.pending.Add(1)
	return id, nil
}

// Get returns an upload without consuming it, so a worker whose later
// pipeline stage fails transiently can retry from the same bytes.
func (s *Staging) Get(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.uploads[id]
	if !ok {
		return nil, fmt.Errorf("%w: upload %s", ErrNotFound, id)
	}
	return data, nil
}

// Remove deletes an upload once it reached a terminal state.
func (s *Staging) Remove(id string) {
	s.mu.Lock()
	_, present := s.uploads[id]
	delete(s.uploads, id)
	s.mu.Unlock()
	if present {
		s.pending.Add(-1)
	}
}

// Take removes and returns an upload (the background worker consumes it
// exactly once).
func (s *Staging) Take(id string) ([]byte, error) {
	s.mu.Lock()
	data, ok := s.uploads[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: upload %s", ErrNotFound, id)
	}
	delete(s.uploads, id)
	s.mu.Unlock()
	s.pending.Add(-1)
	return data, nil
}

// Len returns the number of pending uploads.
func (s *Staging) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.uploads)
}

// IdentityMap keeps the reference-id → patient-identity mapping. Access
// is restricted to a single authorized principal (the re-identification
// path of the Full Export service); everything else in the platform works
// with reference IDs only.
type IdentityMap struct {
	authorized string

	mu sync.RWMutex
	m  map[string]string // refID -> identity
}

// NewIdentityMap creates a map readable only by the authorized principal.
func NewIdentityMap(authorizedPrincipal string) *IdentityMap {
	return &IdentityMap{authorized: authorizedPrincipal, m: make(map[string]string)}
}

// Bind records the mapping for a reference ID.
func (im *IdentityMap) Bind(refID, identity string) {
	im.mu.Lock()
	defer im.mu.Unlock()
	im.m[refID] = identity
}

// Identity resolves a reference ID for the authorized principal only.
func (im *IdentityMap) Identity(refID, principal string) (string, error) {
	if principal != im.authorized {
		return "", fmt.Errorf("%w: principal %q", ErrIdentity, principal)
	}
	im.mu.RLock()
	defer im.mu.RUnlock()
	id, ok := im.m[refID]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	return id, nil
}

// Forget removes every mapping for an identity (right-to-forget) and
// returns the reference IDs that pointed at it.
func (im *IdentityMap) Forget(identity string) []string {
	im.mu.Lock()
	defer im.mu.Unlock()
	var refs []string
	for ref, id := range im.m {
		if id == identity {
			refs = append(refs, ref)
			delete(im.m, ref)
		}
	}
	sort.Strings(refs)
	return refs
}
