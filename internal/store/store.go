// Package store implements the platform's trusted back-end storage
// (§II-B): a Data Lake of envelope-encrypted records, the secure
// temporary staging area uploads land in, and the reference-id ↔
// identity mapping kept in metadata ("the data is de-identified and
// stored in the backend storage system (Data Lake) with a reference-id,
// and the reference-id to identity the mapping is stored in the
// metadata").
//
// Records are encrypted with per-record data keys from the KMS, bound to
// a subject (patient), so GDPR right-to-forget is implemented by
// crypto-shredding the subject's keys (§IV-B1 "encryption-based record
// deletion").
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/telemetry"
)

// Fault-point names this package consults (see internal/faultinject).
const (
	FaultLakePut    = "store.lake.put"
	FaultLakeGet    = "store.lake.get"
	FaultStagingPut = "store.staging.put"
)

// Errors returned by this package.
var (
	ErrNotFound = errors.New("store: record not found")
	ErrDeleted  = errors.New("store: record securely deleted")
	ErrIdentity = errors.New("store: identity mapping access denied")
)

// Meta describes a stored record. Tags carry non-PHI attributes only.
type Meta struct {
	ContentType string            `json:"content_type"`
	Tenant      string            `json:"tenant"`
	Group       string            `json:"group,omitempty"`
	CreatedAt   time.Time         `json:"created_at"`
	Tags        map[string]string `json:"tags,omitempty"`
}

type record struct {
	refID      string
	keyID      string
	ciphertext []byte
	meta       Meta
	deleted    bool
}

// DataLake is the encrypted record store. Construct with NewDataLake.
type DataLake struct {
	kms       *hckrypto.KMS
	principal string // the storage service's own KMS identity
	faults    *faultinject.Registry
	met       *lakeMetrics

	mu      sync.RWMutex
	records map[string]*record
}

// lakeMetrics instruments the lake; nil disables it.
type lakeMetrics struct {
	put, get         *telemetry.Histogram
	putErrs, getErrs *telemetry.Counter
}

// NewDataLake creates a lake that encrypts under keys from kms, acting
// as the given KMS principal.
func NewDataLake(kms *hckrypto.KMS, principal string) *DataLake {
	return &DataLake{kms: kms, principal: principal, records: make(map[string]*record)}
}

// SetFaults installs a fault-injection registry (nil disables). Call
// before the lake is shared across goroutines.
func (d *DataLake) SetFaults(r *faultinject.Registry) { d.faults = r }

// SetTelemetry attaches put/get latency histograms and error counters
// to the registry (nil disables). Call before the lake is shared.
func (d *DataLake) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		d.met = nil
		return
	}
	d.met = &lakeMetrics{
		put:     reg.Histogram("lake_put_seconds"),
		get:     reg.Histogram("lake_get_seconds"),
		putErrs: reg.Counter("lake_put_errors_total"),
		getErrs: reg.Counter("lake_get_errors_total"),
	}
}

// Put encrypts plaintext under a fresh per-record data key bound to
// subject and stores it, returning the reference ID. The plaintext never
// persists; the data key lives only in the KMS.
func (d *DataLake) Put(subject string, plaintext []byte, meta Meta) (string, error) {
	if m := d.met; m != nil {
		defer m.put.ObserveSince(m.put.Start())
	}
	if err := d.faults.Check(FaultLakePut); err != nil {
		if m := d.met; m != nil {
			m.putErrs.Inc()
		}
		return "", fmt.Errorf("store: %w", err)
	}
	keyID, dk, err := d.kms.CreateDataKey(subject, d.principal)
	if err != nil {
		return "", fmt.Errorf("store: creating data key: %w", err)
	}
	refID := "ref-" + hckrypto.NewUUID()
	ct, err := hckrypto.EncryptGCM(dk, plaintext, []byte(refID))
	if err != nil {
		return "", fmt.Errorf("store: encrypting record: %w", err)
	}
	if meta.CreatedAt.IsZero() {
		meta.CreatedAt = time.Now().UTC()
	}
	d.mu.Lock()
	d.records[refID] = &record{refID: refID, keyID: keyID, ciphertext: ct, meta: meta}
	d.mu.Unlock()
	return refID, nil
}

// Get decrypts a record on behalf of principal. The KMS enforces
// need-to-know: the principal must hold a grant on the record's key.
func (d *DataLake) Get(refID, principal string) ([]byte, error) {
	if m := d.met; m != nil {
		defer m.get.ObserveSince(m.get.Start())
	}
	if err := d.faults.Check(FaultLakeGet); err != nil {
		if m := d.met; m != nil {
			m.getErrs.Inc()
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	d.mu.RLock()
	rec, ok := d.records[refID]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	if rec.deleted {
		return nil, fmt.Errorf("%w: %s", ErrDeleted, refID)
	}
	dk, err := d.kms.UnwrapDataKey(rec.keyID, principal)
	if err != nil {
		return nil, fmt.Errorf("store: unwrapping key for %s: %w", refID, err)
	}
	pt, err := hckrypto.DecryptGCM(dk, rec.ciphertext, []byte(refID))
	if err != nil {
		return nil, fmt.Errorf("store: decrypting %s: %w", refID, err)
	}
	return pt, nil
}

// Grant allows another principal to read a record (KMS key grant).
func (d *DataLake) Grant(refID, principal string) error {
	d.mu.RLock()
	rec, ok := d.records[refID]
	d.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	return d.kms.Grant(rec.keyID, principal)
}

// Meta returns a record's metadata (no key material, no plaintext).
func (d *DataLake) Meta(refID string) (Meta, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rec, ok := d.records[refID]
	if !ok {
		return Meta{}, fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	return rec.meta, nil
}

// SecureDelete crypto-shreds one record: its data key is destroyed and
// the ciphertext zeroed. The tombstone remains so audits can see a
// record existed.
func (d *DataLake) SecureDelete(refID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.records[refID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	if rec.deleted {
		return nil
	}
	if err := d.kms.Shred(rec.keyID); err != nil {
		return fmt.Errorf("store: shredding key: %w", err)
	}
	for i := range rec.ciphertext {
		rec.ciphertext[i] = 0
	}
	rec.ciphertext = nil
	rec.deleted = true
	return nil
}

// List returns the reference IDs matching the tenant/group filter
// (empty strings match everything), sorted, excluding deleted records.
func (d *DataLake) List(tenantName, group string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for id, rec := range d.records {
		if rec.deleted {
			continue
		}
		if tenantName != "" && rec.meta.Tenant != tenantName {
			continue
		}
		if group != "" && rec.meta.Group != group {
			continue
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Ping reports whether the lake's read and write paths are currently
// serviceable, consulting the same fault points Put/Get do without
// creating or touching any record — the health prober's storage check.
func (d *DataLake) Ping() error {
	if err := d.faults.Check(FaultLakePut); err != nil {
		return fmt.Errorf("store: lake write path: %w", err)
	}
	if err := d.faults.Check(FaultLakeGet); err != nil {
		return fmt.Errorf("store: lake read path: %w", err)
	}
	return nil
}

// Count returns live (non-deleted) record count.
func (d *DataLake) Count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, rec := range d.records {
		if !rec.deleted {
			n++
		}
	}
	return n
}

// Staging is the "secure temporary storage area" uploads land in before
// background ingestion picks them up (§II-B). Contents are already
// client-encrypted; staging only holds opaque bytes.
type Staging struct {
	faults  *faultinject.Registry
	pending *telemetry.Gauge // nil disables

	mu      sync.Mutex
	uploads map[string][]byte
}

// NewStaging creates an empty staging area.
func NewStaging() *Staging {
	return &Staging{uploads: make(map[string][]byte)}
}

// SetFaults installs a fault-injection registry (nil disables). Call
// before the staging area is shared across goroutines.
func (s *Staging) SetFaults(r *faultinject.Registry) { s.faults = r }

// SetTelemetry publishes the pending-upload depth as a gauge (nil
// disables). Call before the staging area is shared.
func (s *Staging) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.pending = nil
		return
	}
	s.pending = reg.Gauge("staging_pending_uploads")
}

// Put stores an encrypted upload and returns its upload ID.
func (s *Staging) Put(encrypted []byte) (string, error) {
	if err := s.faults.Check(FaultStagingPut); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	id := "upload-" + hckrypto.NewUUID()
	s.mu.Lock()
	s.uploads[id] = append([]byte(nil), encrypted...)
	s.mu.Unlock()
	s.pending.Add(1)
	return id, nil
}

// Get returns an upload without consuming it, so a worker whose later
// pipeline stage fails transiently can retry from the same bytes.
func (s *Staging) Get(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.uploads[id]
	if !ok {
		return nil, fmt.Errorf("%w: upload %s", ErrNotFound, id)
	}
	return data, nil
}

// Remove deletes an upload once it reached a terminal state.
func (s *Staging) Remove(id string) {
	s.mu.Lock()
	_, present := s.uploads[id]
	delete(s.uploads, id)
	s.mu.Unlock()
	if present {
		s.pending.Add(-1)
	}
}

// Take removes and returns an upload (the background worker consumes it
// exactly once).
func (s *Staging) Take(id string) ([]byte, error) {
	s.mu.Lock()
	data, ok := s.uploads[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: upload %s", ErrNotFound, id)
	}
	delete(s.uploads, id)
	s.mu.Unlock()
	s.pending.Add(-1)
	return data, nil
}

// Len returns the number of pending uploads.
func (s *Staging) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.uploads)
}

// IdentityMap keeps the reference-id → patient-identity mapping. Access
// is restricted to a single authorized principal (the re-identification
// path of the Full Export service); everything else in the platform works
// with reference IDs only.
type IdentityMap struct {
	authorized string

	mu sync.RWMutex
	m  map[string]string // refID -> identity
}

// NewIdentityMap creates a map readable only by the authorized principal.
func NewIdentityMap(authorizedPrincipal string) *IdentityMap {
	return &IdentityMap{authorized: authorizedPrincipal, m: make(map[string]string)}
}

// Bind records the mapping for a reference ID.
func (im *IdentityMap) Bind(refID, identity string) {
	im.mu.Lock()
	defer im.mu.Unlock()
	im.m[refID] = identity
}

// Identity resolves a reference ID for the authorized principal only.
func (im *IdentityMap) Identity(refID, principal string) (string, error) {
	if principal != im.authorized {
		return "", fmt.Errorf("%w: principal %q", ErrIdentity, principal)
	}
	im.mu.RLock()
	defer im.mu.RUnlock()
	id, ok := im.m[refID]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, refID)
	}
	return id, nil
}

// Forget removes every mapping for an identity (right-to-forget) and
// returns the reference IDs that pointed at it.
func (im *IdentityMap) Forget(identity string) []string {
	im.mu.Lock()
	defer im.mu.Unlock()
	var refs []string
	for ref, id := range im.m {
		if id == identity {
			refs = append(refs, ref)
			delete(im.m, ref)
		}
	}
	sort.Strings(refs)
	return refs
}
