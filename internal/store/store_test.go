package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/telemetry"
)

func newTestLake(t *testing.T) (*DataLake, *hckrypto.KMS) {
	t.Helper()
	kms, err := hckrypto.NewKMS("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	return NewDataLake(kms, "svc-storage"), kms
}

func TestPutGetRoundTrip(t *testing.T) {
	lake, _ := newTestLake(t)
	phi := []byte(`{"patient":"ref only","hba1c":8.1}`)
	ref, err := lake.Put("patient-1", phi, Meta{ContentType: "fhir+json", Tenant: "tenant-a", Group: "study-1"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := lake.Get(ref, "svc-storage")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, phi) {
		t.Error("round trip mismatch")
	}
}

func TestGetUnknownRef(t *testing.T) {
	lake, _ := newTestLake(t)
	if _, err := lake.Get("ref-ghost", "svc-storage"); !errors.Is(err, ErrNotFound) {
		t.Errorf("got %v, want ErrNotFound", err)
	}
}

func TestNeedToKnowEnforced(t *testing.T) {
	lake, _ := newTestLake(t)
	ref, err := lake.Put("patient-1", []byte("phi"), Meta{Tenant: "tenant-a"})
	if err != nil {
		t.Fatal(err)
	}
	// A principal without a key grant cannot decrypt.
	if _, err := lake.Get(ref, "svc-analytics"); !errors.Is(err, hckrypto.ErrAccessDenied) {
		t.Errorf("ungranted read: got %v, want ErrAccessDenied", err)
	}
	if err := lake.Grant(ref, "svc-analytics"); err != nil {
		t.Fatal(err)
	}
	if _, err := lake.Get(ref, "svc-analytics"); err != nil {
		t.Errorf("granted read failed: %v", err)
	}
	if err := lake.Grant("ref-ghost", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("grant on unknown ref: %v", err)
	}
}

func TestSecureDelete(t *testing.T) {
	lake, kms := newTestLake(t)
	ref, err := lake.Put("patient-1", []byte("phi"), Meta{Tenant: "tenant-a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.SecureDelete(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := lake.Get(ref, "svc-storage"); !errors.Is(err, ErrDeleted) {
		t.Errorf("deleted read: got %v, want ErrDeleted", err)
	}
	if kms.KeyCount() != 0 {
		t.Error("data key survived secure deletion")
	}
	// Idempotent.
	if err := lake.SecureDelete(ref); err != nil {
		t.Errorf("second delete: %v", err)
	}
	if err := lake.SecureDelete("ref-ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete unknown: %v", err)
	}
}

func TestRightToForgetViaKMSShred(t *testing.T) {
	lake, kms := newTestLake(t)
	var refs []string
	for i := 0; i < 3; i++ {
		ref, err := lake.Put("patient-7", []byte(fmt.Sprintf("record-%d", i)), Meta{Tenant: "tenant-a"})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	other, err := lake.Put("patient-8", []byte("other"), Meta{Tenant: "tenant-a"})
	if err != nil {
		t.Fatal(err)
	}
	// GDPR erasure: shred every key belonging to the subject.
	if n := kms.ShredSubject("patient-7"); n != 3 {
		t.Fatalf("shredded %d keys, want 3", n)
	}
	for _, ref := range refs {
		if _, err := lake.Get(ref, "svc-storage"); err == nil {
			t.Errorf("record %s readable after right-to-forget", ref)
		}
	}
	if _, err := lake.Get(other, "svc-storage"); err != nil {
		t.Errorf("unrelated patient's record lost: %v", err)
	}
}

func TestMetaAndList(t *testing.T) {
	lake, _ := newTestLake(t)
	r1, _ := lake.Put("p1", []byte("a"), Meta{Tenant: "tenant-a", Group: "study-1", ContentType: "fhir+json"})
	r2, _ := lake.Put("p2", []byte("b"), Meta{Tenant: "tenant-a", Group: "study-2"})
	lake.Put("p3", []byte("c"), Meta{Tenant: "tenant-b"})

	m, err := lake.Meta(r1)
	if err != nil {
		t.Fatal(err)
	}
	if m.ContentType != "fhir+json" || m.CreatedAt.IsZero() {
		t.Errorf("meta = %+v", m)
	}
	if _, err := lake.Meta("ref-ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("meta unknown: %v", err)
	}

	if got := lake.List("tenant-a", ""); len(got) != 2 {
		t.Errorf("tenant-a records = %v", got)
	}
	if got := lake.List("tenant-a", "study-2"); len(got) != 1 || got[0] != r2 {
		t.Errorf("study-2 records = %v", got)
	}
	if got := lake.List("", ""); len(got) != 3 {
		t.Errorf("all records = %v", got)
	}
	if lake.Count() != 3 {
		t.Errorf("Count = %d", lake.Count())
	}
	lake.SecureDelete(r2)
	if lake.Count() != 2 {
		t.Errorf("Count after delete = %d", lake.Count())
	}
	if got := lake.List("tenant-a", "study-2"); len(got) != 0 {
		t.Errorf("deleted record still listed: %v", got)
	}
}

func TestCiphertextNotPlaintext(t *testing.T) {
	lake, _ := newTestLake(t)
	secret := []byte("THE-SECRET-DIAGNOSIS")
	ref, err := lake.Put("p1", secret, Meta{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	lake.mu.RLock()
	ct := lake.records[ref].ciphertext
	lake.mu.RUnlock()
	if bytes.Contains(ct, secret) {
		t.Error("plaintext visible in stored ciphertext")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	lake, _ := newTestLake(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				body := []byte(fmt.Sprintf("g%d-i%d", g, i))
				ref, err := lake.Put(fmt.Sprintf("p-%d", g), body, Meta{Tenant: "t"})
				if err != nil {
					errs <- err
					return
				}
				got, err := lake.Get(ref, "svc-storage")
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, body) {
					errs <- fmt.Errorf("mismatch for %s", ref)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if lake.Count() != 32 {
		t.Errorf("Count = %d, want 32", lake.Count())
	}
}

func TestStaging(t *testing.T) {
	s := NewStaging()
	id, err := s.Put([]byte("encrypted-bundle"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	// Get is non-destructive (retries re-read the same bytes).
	for i := 0; i < 2; i++ {
		data, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != "encrypted-bundle" {
			t.Errorf("data = %q", data)
		}
	}
	data, err := s.Take(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "encrypted-bundle" {
		t.Errorf("data = %q", data)
	}
	if s.Len() != 0 {
		t.Error("upload not consumed")
	}
	// Exactly-once consumption.
	if _, err := s.Take(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("second take: %v", err)
	}
}

func TestStagingRemove(t *testing.T) {
	s := NewStaging()
	id, err := s.Put([]byte("bundle"))
	if err != nil {
		t.Fatal(err)
	}
	s.Remove(id)
	if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after remove: %v", err)
	}
	s.Remove(id) // removing twice is a no-op
}

func TestStagingPutFault(t *testing.T) {
	s := NewStaging()
	reg := faultinject.NewRegistry(1)
	reg.Enable(FaultStagingPut, faultinject.Fault{ErrorRate: 1})
	s.SetFaults(reg)
	if _, err := s.Put([]byte("x")); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("Put with injected fault: %v", err)
	}
	if s.Len() != 0 {
		t.Error("failed put left data staged")
	}
}

func TestStagingIsolation(t *testing.T) {
	s := NewStaging()
	buf := []byte("mutable")
	id, err := s.Put(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _ := s.Take(id)
	if string(got) != "mutable" {
		t.Error("staging did not copy the upload")
	}
}

func TestIdentityMapAccessControl(t *testing.T) {
	im := NewIdentityMap("svc-reident")
	im.Bind("ref-1", "patient-jane")
	if _, err := im.Identity("ref-1", "svc-analytics"); !errors.Is(err, ErrIdentity) {
		t.Errorf("unauthorized resolve: %v", err)
	}
	id, err := im.Identity("ref-1", "svc-reident")
	if err != nil || id != "patient-jane" {
		t.Errorf("authorized resolve = %q, %v", id, err)
	}
	if _, err := im.Identity("ref-ghost", "svc-reident"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown ref: %v", err)
	}
}

func TestIdentityMapForget(t *testing.T) {
	im := NewIdentityMap("svc-reident")
	im.Bind("ref-1", "patient-jane")
	im.Bind("ref-2", "patient-jane")
	im.Bind("ref-3", "patient-bob")
	refs := im.Forget("patient-jane")
	if len(refs) != 2 {
		t.Fatalf("Forget returned %v", refs)
	}
	for _, ref := range refs {
		if _, err := im.Identity(ref, "svc-reident"); !errors.Is(err, ErrNotFound) {
			t.Errorf("%s still mapped after Forget", ref)
		}
	}
	if _, err := im.Identity("ref-3", "svc-reident"); err != nil {
		t.Errorf("unrelated mapping lost: %v", err)
	}
	if got := im.Forget("patient-jane"); len(got) != 0 {
		t.Errorf("second Forget = %v", got)
	}
}

// Property: any payload round-trips through the encrypted lake intact.
func TestQuickLakeRoundTrip(t *testing.T) {
	lake, _ := newTestLake(t)
	f := func(body []byte, subject uint8) bool {
		ref, err := lake.Put(fmt.Sprintf("p-%d", subject), body, Meta{Tenant: "t"})
		if err != nil {
			return false
		}
		got, err := lake.Get(ref, "svc-storage")
		if err != nil {
			return false
		}
		return bytes.Equal(got, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLakePingFaultPoint(t *testing.T) {
	lake, _ := newTestLake(t)
	reg := faultinject.NewRegistry(7)
	lake.SetFaults(reg)

	// The dedicated ping point fails probes without touching writes.
	reg.Enable(FaultLakePing, faultinject.Fault{ErrorRate: 1})
	if err := lake.Ping(); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("Ping with injected probe fault: %v", err)
	}
	ref, err := lake.Put("p", []byte("x"), Meta{Tenant: "tenant-a", Group: "g"})
	if err != nil {
		t.Fatalf("Put must survive a ping-only fault: %v", err)
	}
	if _, err := lake.Get(ref, "svc-storage"); err != nil {
		t.Fatalf("Get must survive a ping-only fault: %v", err)
	}

	// Ping also consults the write and read paths, so a downed put
	// point fails the probe even with the ping point healthy.
	reg.Disable(FaultLakePing)
	reg.Enable(FaultLakePut, faultinject.Fault{ErrorRate: 1})
	if err := lake.Ping(); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("Ping with downed write path: %v", err)
	}
	reg.Disable(FaultLakePut)
	if err := lake.Ping(); err != nil {
		t.Errorf("Ping after healing: %v", err)
	}
}

func TestLakePingLatencyHistogram(t *testing.T) {
	lake, _ := newTestLake(t)
	reg := telemetry.NewRegistry()
	lake.SetTelemetry(reg)
	for i := 0; i < 3; i++ {
		if err := lake.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Histograms["lake_ping_seconds"].Count; got != 3 {
		t.Errorf("lake_ping_seconds count = %d, want 3", got)
	}
}

func TestSealedRecordPortability(t *testing.T) {
	// Two lakes sharing one KMS: a record sealed on one installs and
	// opens on the other byte-for-byte — the property replication
	// depends on.
	kms, err := hckrypto.NewKMS("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	a := NewDataLake(kms, "svc-storage")
	b := NewDataLake(kms, "svc-storage")
	sealed, err := a.Seal("patient-1", []byte("phi"), Meta{Tenant: "tenant-a", Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PutSealed(sealed); err != nil {
		t.Fatal(err)
	}
	got, err := b.Open(sealed, "svc-storage")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("phi")) {
		t.Error("sealed record did not round-trip across lakes")
	}
}

func TestPutSealedTombstoneWins(t *testing.T) {
	lake, _ := newTestLake(t)
	ref, err := lake.Put("patient-1", []byte("phi"), Meta{Tenant: "tenant-a", Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := lake.GetSealed(ref) // live copy, as a replica would hold it
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.SecureDelete(ref); err != nil {
		t.Fatal(err)
	}
	// A late replica write must not resurrect the deleted record.
	if err := lake.PutSealed(stale); err != nil {
		t.Fatal(err)
	}
	got, err := lake.GetSealed(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Deleted {
		t.Error("stale live replica overwrote a tombstone")
	}
	if _, err := lake.Get(ref, "svc-storage"); !errors.Is(err, ErrDeleted) {
		t.Errorf("Get after tombstone-wins = %v, want ErrDeleted", err)
	}
}

func TestRefsIncludeTombstonesAndEvict(t *testing.T) {
	lake, _ := newTestLake(t)
	var refs []string
	for i := 0; i < 3; i++ {
		ref, err := lake.Put(fmt.Sprintf("p-%d", i), []byte("x"), Meta{Tenant: "tenant-a", Group: "g"})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	if err := lake.SecureDelete(refs[1]); err != nil {
		t.Fatal(err)
	}
	all := lake.Refs()
	if len(all) != 3 {
		t.Fatalf("Refs = %v, want all 3 including the tombstone", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("Refs not sorted: %v", all)
		}
	}
	lake.Evict(refs[0])
	if got := len(lake.Refs()); got != 2 {
		t.Errorf("Refs after Evict = %d entries, want 2", got)
	}
	if _, err := lake.GetSealed(refs[0]); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetSealed after Evict = %v, want ErrNotFound", err)
	}
}

func TestSetFaultScopeRenamesPoints(t *testing.T) {
	lake, _ := newTestLake(t)
	reg := faultinject.NewRegistry(7)
	lake.SetFaults(reg)
	lake.SetFaultScope("shardlake.shard-9")

	// The default point no longer applies; the scoped one does.
	reg.Enable(FaultLakePut, faultinject.Fault{ErrorRate: 1})
	if _, err := lake.Put("p", []byte("x"), Meta{Tenant: "tenant-a", Group: "g"}); err != nil {
		t.Fatalf("Put tripped the unscoped fault point after rescoping: %v", err)
	}
	reg.Enable("shardlake.shard-9.put", faultinject.Fault{ErrorRate: 1})
	if _, err := lake.Put("p", []byte("x"), Meta{Tenant: "tenant-a", Group: "g"}); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("Put with scoped fault: %v", err)
	}
}
