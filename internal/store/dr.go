package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Disaster recovery (§II-B lists a "high availability and disaster
// recovery service" among the platform services). The Data Lake's state
// is snapshot-able and restorable: records stay envelope-encrypted in
// the snapshot (a stolen snapshot is ciphertext), and the per-record
// data keys remain in the KMS — the paper's single-tenant, separately
// hardened system — so restoring requires both the snapshot AND the
// surviving KMS. Tombstones for securely-deleted records are preserved
// so a restore cannot resurrect forgotten patients.

// A snapshot serializes lake records in their Sealed form — the same
// shape replication and rebalancing move between shards.
type snapshot struct {
	TakenAt time.Time `json:"taken_at"`
	Records []Sealed  `json:"records"`
}

// Snapshot serializes the lake's full state (encrypted records +
// metadata + tombstones). No plaintext and no key material leave the
// lake.
func (d *DataLake) Snapshot() ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	snap := snapshot{TakenAt: time.Now().UTC()}
	ids := make([]string, 0, len(d.records))
	for id := range d.records {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := d.records[id]
		snap.Records = append(snap.Records, Sealed{
			RefID:      rec.refID,
			KeyID:      rec.keyID,
			Ciphertext: append([]byte(nil), rec.ciphertext...),
			Meta:       rec.meta,
			Deleted:    rec.deleted,
		})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	return data, nil
}

// Restore rebuilds a lake from a snapshot, attached to the surviving
// KMS. Existing records in the receiving lake are replaced wholesale
// (restore targets a fresh replica).
func (d *DataLake) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: restoring snapshot: %w", err)
	}
	records := make(map[string]*record, len(snap.Records))
	for _, sr := range snap.Records {
		records[sr.RefID] = &record{
			refID:      sr.RefID,
			keyID:      sr.KeyID,
			ciphertext: append([]byte(nil), sr.Ciphertext...),
			meta:       sr.Meta,
			deleted:    sr.Deleted,
		}
	}
	d.mu.Lock()
	d.records = records
	d.mu.Unlock()
	return nil
}
