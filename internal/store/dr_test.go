package store

import (
	"bytes"
	"errors"
	"testing"

	"healthcloud/internal/hckrypto"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	lake, kms := newTestLake(t)
	ref1, err := lake.Put("p1", []byte("record-one"), Meta{Tenant: "t", Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := lake.Put("p2", []byte("record-two"), Meta{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := lake.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Storage node dies; a fresh replica restores against the same KMS.
	replica := NewDataLake(kms, "svc-storage")
	if err := replica.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for ref, want := range map[string]string{ref1: "record-one", ref2: "record-two"} {
		got, err := replica.Get(ref, "svc-storage")
		if err != nil {
			t.Fatalf("restored %s: %v", ref, err)
		}
		if string(got) != want {
			t.Errorf("restored %s = %q, want %q", ref, got, want)
		}
	}
	m, err := replica.Meta(ref1)
	if err != nil || m.Group != "g" {
		t.Errorf("restored meta = %+v, %v", m, err)
	}
	if replica.Count() != 2 {
		t.Errorf("restored count = %d", replica.Count())
	}
}

// TestRestoreCannotResurrectForgotten: secure deletion must survive DR —
// a restore cannot bring back a patient who exercised right-to-forget.
func TestRestoreCannotResurrectForgotten(t *testing.T) {
	lake, kms := newTestLake(t)
	ref, err := lake.Put("p1", []byte("sensitive"), Meta{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.SecureDelete(ref); err != nil {
		t.Fatal(err)
	}
	snap, err := lake.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	replica := NewDataLake(kms, "svc-storage")
	if err := replica.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Get(ref, "svc-storage"); !errors.Is(err, ErrDeleted) {
		t.Errorf("forgotten record after restore: %v", err)
	}
}

// TestStaleSnapshotCannotResurrectEither: a snapshot taken BEFORE the
// deletion still cannot resurrect the record, because the data key was
// crypto-shredded in the KMS.
func TestStaleSnapshotCannotResurrectEither(t *testing.T) {
	lake, kms := newTestLake(t)
	ref, err := lake.Put("p1", []byte("sensitive"), Meta{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := lake.Snapshot() // pre-deletion snapshot
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.SecureDelete(ref); err != nil {
		t.Fatal(err)
	}
	replica := NewDataLake(kms, "svc-storage")
	if err := replica.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Get(ref, "svc-storage"); err == nil {
		t.Error("crypto-shredded record decrypted from a stale snapshot")
	}
}

func TestSnapshotIsCiphertextOnly(t *testing.T) {
	lake, _ := newTestLake(t)
	secret := []byte("THE-SECRET-DIAGNOSIS")
	if _, err := lake.Put("p1", secret, Meta{Tenant: "t"}); err != nil {
		t.Fatal(err)
	}
	snap, err := lake.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(snap, secret) {
		t.Error("snapshot contains plaintext PHI")
	}
}

func TestRestoreWithoutKMSKeysFails(t *testing.T) {
	lake, _ := newTestLake(t)
	ref, err := lake.Put("p1", []byte("x"), Meta{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := lake.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// An attacker restores the stolen snapshot into their own KMS: the
	// per-record keys are absent, so nothing decrypts.
	attackerKMS, err := hckrypto.NewKMS("attacker")
	if err != nil {
		t.Fatal(err)
	}
	stolen := NewDataLake(attackerKMS, "svc-storage")
	if err := stolen.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := stolen.Get(ref, "svc-storage"); err == nil {
		t.Error("stolen snapshot decrypted without the original KMS")
	}
}

func TestRestoreMalformed(t *testing.T) {
	lake, _ := newTestLake(t)
	if err := lake.Restore([]byte("{broken")); err == nil {
		t.Error("malformed snapshot accepted")
	}
}
