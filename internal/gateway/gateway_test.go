package gateway

import (
	"errors"
	"testing"
	"time"

	"healthcloud/internal/attest"
	"healthcloud/internal/audit"
	"healthcloud/internal/cloud"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/resilience"
)

// newDestCloud builds a destination cloud instance with one host and VM,
// plus the signer its image management approves.
func newDestCloud(t *testing.T) (*cloud.Cloud, *hckrypto.SigningKey) {
	t.Helper()
	attSvc := attest.NewService()
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	attSvc.ApproveImageSigner(signer.Public())
	c := cloud.New(attSvc, audit.NewLog())
	osImg, err := cloud.NewImage("guest-os", []byte("os-content"), signer)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Registry().Register(osImg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProvisionHost("dst-host", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LaunchVM("dst-host", "dst-vm", "guest-os"); err != nil {
		t.Fatal(err)
	}
	return c, signer
}

func noSleep(time.Duration) {}

func TestLinkTransferTime(t *testing.T) {
	l := Link{Latency: 50 * time.Millisecond, BandwidthMBps: 100}
	// 1 MB at 100 MB/s = 10ms + 100ms RTT setup.
	got, err := l.TransferTime(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := 110 * time.Millisecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	if _, err := (Link{}).TransferTime(1); !errors.Is(err, ErrBadLink) {
		t.Errorf("zero bandwidth: %v", err)
	}
	if _, err := New(Link{}); !errors.Is(err, ErrBadLink) {
		t.Errorf("New with bad link: %v", err)
	}
}

func TestShipWorkloadEndToEnd(t *testing.T) {
	dst, signer := newDestCloud(t)
	g, err := New(Link{Latency: time.Millisecond, BandwidthMBps: 100}, WithSleeper(noSleep))
	if err != nil {
		t.Fatal(err)
	}
	img, err := cloud.NewImage("jmf-workload", []byte("analytics-container-bytes"), signer)
	if err != nil {
		t.Fatal(err)
	}
	receipt, err := g.ShipWorkload(dst, "dst-host", "dst-vm", "wl-1", img)
	if err != nil {
		t.Fatalf("ShipWorkload: %v", err)
	}
	if !receipt.AttestedChain || receipt.BytesShipped != len(img.Content) {
		t.Errorf("receipt = %+v", receipt)
	}
	// The workload is now running and attestable at the destination.
	if err := dst.AttestContainer("dst-host", "dst-vm", "wl-1"); err != nil {
		t.Errorf("post-transfer attestation: %v", err)
	}
}

func TestShipWorkloadRejectsUntrustedImage(t *testing.T) {
	dst, _ := newDestCloud(t)
	rogue, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	img, err := cloud.NewImage("rogue-workload", []byte("payload"), rogue)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := New(Link{Latency: time.Millisecond, BandwidthMBps: 100}, WithSleeper(noSleep))
	if _, err := g.ShipWorkload(dst, "dst-host", "dst-vm", "wl-x", img); !errors.Is(err, cloud.ErrUnsignedImage) {
		t.Errorf("got %v, want ErrUnsignedImage", err)
	}
	// Nothing started.
	if err := dst.AttestContainer("dst-host", "dst-vm", "wl-x"); !errors.Is(err, cloud.ErrNoSuchContainer) {
		t.Errorf("container exists after rejected transfer: %v", err)
	}
}

func TestShipWorkloadToCompromisedVMFails(t *testing.T) {
	dst, signer := newDestCloud(t)
	vm, err := dst.VM("dst-host", "dst-vm")
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.CompromiseVM(); err != nil {
		t.Fatal(err)
	}
	img, err := cloud.NewImage("wl", []byte("bytes"), signer)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := New(Link{Latency: time.Millisecond, BandwidthMBps: 100}, WithSleeper(noSleep))
	if _, err := g.ShipWorkload(dst, "dst-host", "dst-vm", "wl-1", img); !errors.Is(err, attest.ErrMeasurement) {
		t.Errorf("workload started on compromised VM: %v", err)
	}
}

func TestShipWorkloadIdempotentImage(t *testing.T) {
	dst, signer := newDestCloud(t)
	img, err := cloud.NewImage("wl", []byte("bytes"), signer)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := New(Link{Latency: time.Millisecond, BandwidthMBps: 100}, WithSleeper(noSleep))
	if _, err := g.ShipWorkload(dst, "dst-host", "dst-vm", "wl-1", img); err != nil {
		t.Fatal(err)
	}
	// Redeploying the same image as a new container must work (image
	// registration is idempotent for identical content).
	if _, err := g.ShipWorkload(dst, "dst-host", "dst-vm", "wl-2", img); err != nil {
		t.Errorf("redeploy: %v", err)
	}
}

func TestComputeToDataBeatsDataToCompute(t *testing.T) {
	// The paper's §II-C claim, in miniature: a 1 MB container vs a 512 MB
	// dataset over the same link.
	var slept time.Duration
	g, _ := New(Link{Latency: 50 * time.Millisecond, BandwidthMBps: 100},
		WithSleeper(func(d time.Duration) { slept += d }))
	containerTime, err := g.link.TransferTime(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	dataTime, err := g.ShipData(512 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if dataTime <= containerTime {
		t.Errorf("data transfer (%v) should dwarf container transfer (%v)", dataTime, containerTime)
	}
	if dataTime < 40*containerTime {
		t.Errorf("expected >40x gap, got %v vs %v", dataTime, containerTime)
	}
	if slept != dataTime {
		t.Errorf("sleeper accounted %v, want %v", slept, dataTime)
	}
}

func TestTransferRetriesLinkFaults(t *testing.T) {
	faults := faultinject.NewRegistry(5)
	// The first two crossings fail; the third succeeds.
	faults.Enable(FaultTransfer, faultinject.Fault{FailFirst: 2})
	g, err := New(Link{Latency: time.Millisecond, BandwidthMBps: 100},
		WithSleeper(noSleep), WithFaults(faults))
	if err != nil {
		t.Fatal(err)
	}
	dur, err := g.ShipData(1_000_000)
	if err != nil {
		t.Fatalf("ShipData with transient link faults: %v", err)
	}
	if dur <= 0 {
		t.Errorf("transfer time = %v", dur)
	}
	if g.Retries() != 2 {
		t.Errorf("retries = %d, want 2", g.Retries())
	}
}

func TestTransferGivesUpAfterPolicyExhausted(t *testing.T) {
	faults := faultinject.NewRegistry(5)
	faults.Enable(FaultTransfer, faultinject.Fault{ErrorRate: 1})
	g, err := New(Link{Latency: time.Millisecond, BandwidthMBps: 100},
		WithSleeper(noSleep), WithFaults(faults),
		WithRetry(resilience.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShipData(1000); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("ShipData on a dead link: %v", err)
	}
	if g.Retries() != 3 {
		t.Errorf("retries = %d, want 3 (one per attempt)", g.Retries())
	}
}
