// Package gateway implements the Intercloud Secure Gateway (§II-C,
// Fig 1): "transfer of trusted analytic workloads (packaged in
// containers) across different cloud instances ... This allows the
// computation to be transferred to data instead of otherwise, thereby
// making it very efficient and secured." The gateway ships a signed
// container image over a (simulated) WAN link, admits it through the
// destination's image management (approved-signer check), starts it,
// and performs Remote Attestation of the full chain before declaring the
// workload live.
//
// The Link cost model also prices the alternative — moving the dataset
// to the computation — so experiment E13 can quantify the paper's
// "computation to data" claim.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"healthcloud/internal/cloud"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/resilience"
	"healthcloud/internal/telemetry"
)

// FaultTransfer is the fault point consulted per WAN transfer (see
// internal/faultinject) — the flaky-intercloud-link knob.
const FaultTransfer = "gateway.transfer"

// Link models the WAN between two cloud instances.
type Link struct {
	Latency       time.Duration // one-way propagation delay
	BandwidthMBps float64       // payload throughput
}

// ErrBadLink reports a non-positive bandwidth.
var ErrBadLink = errors.New("gateway: bandwidth must be positive")

// TransferTime returns the modeled time to move n bytes across the
// link: one round trip of setup latency plus serialization time.
func (l Link) TransferTime(n int) (time.Duration, error) {
	if l.BandwidthMBps <= 0 {
		return 0, ErrBadLink
	}
	ser := time.Duration(float64(n) / (l.BandwidthMBps * 1e6) * float64(time.Second))
	return 2*l.Latency + ser, nil
}

// Gateway ships workloads between cloud instances over a link.
type Gateway struct {
	link Link
	// sleeper lets tests and benches decide whether modeled time is
	// actually slept or just accounted.
	sleeper func(time.Duration)
	faults  *faultinject.Registry
	retry   resilience.Policy
	tracer  *telemetry.Tracer
	met     *gatewayMetrics
	retries atomic.Uint64
}

// gatewayMetrics instruments WAN crossings; nil disables it.
type gatewayMetrics struct {
	transfers, transferErrs, retried *telemetry.Counter
	transfer                         *telemetry.Histogram
}

// Option configures the gateway.
type Option func(*Gateway)

// WithSleeper replaces the real sleep with an accounting hook.
func WithSleeper(f func(time.Duration)) Option {
	return func(g *Gateway) { g.sleeper = f }
}

// WithFaults installs a fault-injection registry consulted at
// FaultTransfer for every WAN crossing (nil disables).
func WithFaults(r *faultinject.Registry) Option {
	return func(g *Gateway) { g.faults = r }
}

// WithRetry overrides the transfer retry policy (intercloud links are
// flaky; a failed crossing is retried with exponential backoff).
func WithRetry(p resilience.Policy) Option {
	return func(g *Gateway) { g.retry = p }
}

// WithTelemetry instruments WAN crossings with transfer counters and a
// modeled-transfer-time histogram on reg, plus spans on tracer (either
// may be nil).
func WithTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) Option {
	return func(g *Gateway) {
		g.tracer = tracer
		if reg == nil {
			g.met = nil
			return
		}
		g.met = &gatewayMetrics{
			transfers:    reg.Counter("gateway_transfers_total"),
			transferErrs: reg.Counter("gateway_transfer_errors_total"),
			retried:      reg.Counter("gateway_transfer_retries_total"),
			transfer:     reg.Histogram("gateway_transfer_modeled_seconds"),
		}
	}
}

// New creates a gateway over the given link.
func New(link Link, opts ...Option) (*Gateway, error) {
	if link.BandwidthMBps <= 0 {
		return nil, ErrBadLink
	}
	g := &Gateway{link: link, sleeper: time.Sleep,
		retry: resilience.Policy{MaxAttempts: 3, BaseDelay: 20 * time.Millisecond}}
	for _, opt := range opts {
		opt(g)
	}
	// Back off on the same (modeled or real) clock as the transfers.
	if g.retry.Sleeper == nil {
		g.retry.Sleeper = func(d time.Duration) { g.sleeper(d) }
	}
	return g, nil
}

// Retries reports how many transfer attempts failed on the link.
func (g *Gateway) Retries() uint64 { return g.retries.Load() }

// transfer pays the WAN cost for n bytes with retry: each attempt
// consults the fault point, sleeps the modeled link time, and on
// transient failure backs off and tries again.
func (g *Gateway) transfer(n int) (time.Duration, error) {
	return g.transferCtx(n, telemetry.SpanContext{})
}

// transferCtx is transfer continuing a caller's trace; the span records
// the modeled (not wall-clock) link time as an attribute via duration.
func (g *Gateway) transferCtx(n int, parent telemetry.SpanContext) (time.Duration, error) {
	var sp *telemetry.Span
	if parent.Valid() {
		sp = g.tracer.StartSpan("gateway.transfer", parent)
	}
	if g.met != nil {
		g.met.transfers.Inc()
	}
	per, err := g.link.TransferTime(n)
	if err != nil {
		if g.met != nil {
			g.met.transferErrs.Inc()
		}
		sp.SetAttr("error", err.Error())
		sp.End()
		return 0, err
	}
	var total time.Duration
	err = resilience.Retry(context.Background(), g.retry, func(context.Context) error {
		if err := g.faults.Check(FaultTransfer); err != nil {
			g.retries.Add(1)
			if g.met != nil {
				g.met.retried.Inc()
			}
			return fmt.Errorf("gateway: link fault: %w", err)
		}
		g.sleeper(per)
		total += per
		return nil
	})
	if err != nil {
		if g.met != nil {
			g.met.transferErrs.Inc()
		}
		sp.SetAttr("error", err.Error())
		sp.End()
		return 0, err
	}
	if g.met != nil {
		g.met.transfer.Observe(total)
	}
	sp.End()
	return total, nil
}

// Receipt reports a completed workload transfer.
type Receipt struct {
	BytesShipped  int
	TransferTime  time.Duration
	AttestedChain bool
}

// ShipWorkload transfers a signed analytics container image to the
// destination cloud, admits it through image management, starts it in
// the target VM, and remote-attests the full chain. The image must
// already be admitted at (or admissible by) the destination: its signer
// must be on the destination's approved list, which is what makes the
// workload "authored in a trusted environment with trusted libraries".
func (g *Gateway) ShipWorkload(dst *cloud.Cloud, hostName, vmID, containerID string, img cloud.Image) (*Receipt, error) {
	return g.ShipWorkloadCtx(dst, hostName, vmID, containerID, img, telemetry.SpanContext{})
}

// ShipWorkloadCtx is ShipWorkload continuing a caller's trace: the WAN
// transfer, admission, start and attestation appear under one span.
func (g *Gateway) ShipWorkloadCtx(dst *cloud.Cloud, hostName, vmID, containerID string, img cloud.Image, parent telemetry.SpanContext) (*Receipt, error) {
	var sp *telemetry.Span
	if parent.Valid() {
		sp = g.tracer.StartSpan("gateway.ship", parent)
		sp.SetAttr("image", img.Name)
	}
	r, err := g.shipWorkload(dst, hostName, vmID, containerID, img, sp.Context())
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return r, err
}

func (g *Gateway) shipWorkload(dst *cloud.Cloud, hostName, vmID, containerID string, img cloud.Image, pctx telemetry.SpanContext) (*Receipt, error) {
	// 1. Move the container image across the WAN (with retry on link
	// faults).
	dur, err := g.transferCtx(len(img.Content), pctx)
	if err != nil {
		return nil, err
	}
	// 2. Destination image management verifies the signature against its
	//    own approved-signer list. An already-admitted identical image is
	//    fine (idempotent redeploy).
	if err := dst.Registry().Register(img); err != nil && !errors.Is(err, cloud.ErrExists) {
		return nil, fmt.Errorf("gateway: destination rejected image: %w", err)
	}
	// 3. Start the workload container.
	if _, err := dst.StartContainer(hostName, vmID, containerID, img.Name); err != nil {
		return nil, fmt.Errorf("gateway: starting workload: %w", err)
	}
	// 4. Remote attestation "for the platform to attest when the
	//    analytics workload is started".
	if err := dst.AttestContainer(hostName, vmID, containerID); err != nil {
		return nil, fmt.Errorf("gateway: remote attestation failed: %w", err)
	}
	return &Receipt{BytesShipped: len(img.Content), TransferTime: dur, AttestedChain: true}, nil
}

// ShipData prices moving a dataset to the computation instead — the
// rejected alternative in §II-C. No trust transfer happens; this is the
// cost-model arm of experiment E13.
func (g *Gateway) ShipData(nbytes int) (time.Duration, error) {
	return g.transfer(nbytes)
}
