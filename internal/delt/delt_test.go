package delt

import (
	"errors"
	"math"
	"testing"

	"healthcloud/internal/emr"
)

func testCohort(t *testing.T) *emr.Dataset {
	t.Helper()
	cfg := emr.DefaultConfig()
	cfg.Patients = 600
	ds, err := emr.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, DefaultConfig()); !errors.Is(err, ErrInput) {
		t.Errorf("nil cohort: %v", err)
	}
	ds := testCohort(t)
	if _, err := Fit(ds, Config{Iterations: 0}); !errors.Is(err, ErrInput) {
		t.Errorf("zero iterations: %v", err)
	}
	if _, err := Fit(ds, Config{Iterations: 5, Lambda: -1}); !errors.Is(err, ErrInput) {
		t.Errorf("negative lambda: %v", err)
	}
}

func TestObjectiveDecreases(t *testing.T) {
	ds := testCohort(t)
	m, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Objective) < 2 {
		t.Fatalf("only %d iterations recorded", len(m.Objective))
	}
	first, last := m.Objective[0], m.Objective[len(m.Objective)-1]
	if last > first {
		t.Errorf("MSE rose: %f -> %f", first, last)
	}
	// Final fit should approach the generator's noise floor (0.25² ≈ 0.06,
	// plus unmodeled comorbidity steps).
	if last > 0.2 {
		t.Errorf("final MSE = %f, want < 0.2", last)
	}
}

// TestRecoversPlantedEffects is the core E10 claim: DELT's β estimates
// land near the generator's true effects.
func TestRecoversPlantedEffects(t *testing.T) {
	ds := testCohort(t)
	m, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for d, want := range ds.Cfg.TrueEffects {
		got := m.Beta[d]
		if math.Abs(got-want) > 0.15 {
			t.Errorf("drug %d: β = %.3f, want %.3f ± 0.15", d, got, want)
		}
	}
	// No-effect drugs estimate near zero.
	for d := 0; d < ds.Cfg.Drugs; d++ {
		if _, hasEffect := ds.Cfg.TrueEffects[d]; hasEffect {
			continue
		}
		if math.Abs(m.Beta[d]) > 0.15 {
			t.Errorf("no-effect drug %d: β = %.3f, want ~0", d, m.Beta[d])
		}
	}
}

// TestRobustToCoMedicationConfounding: the decoy drugs must be cleared by
// DELT but flagged by the marginal baseline — the paper's contribution
// (1): "DELT looks at the joint exposure of multiple drugs at the same
// time (instead of marginal correlation). Therefore it is robust against
// confounders raised by co-medications."
func TestRobustToCoMedicationConfounding(t *testing.T) {
	ds := testCohort(t)
	m, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	marginal := MarginalSCCS(ds)
	for _, pair := range ds.Cfg.ConfoundPairs {
		decoy := pair[0]
		if math.Abs(m.Beta[decoy]) > 0.15 {
			t.Errorf("DELT fooled by decoy %d: β = %.3f", decoy, m.Beta[decoy])
		}
		if marginal[decoy] > -0.15 {
			t.Errorf("marginal baseline NOT fooled by decoy %d (%.3f) — confounding too weak to demonstrate", decoy, marginal[decoy])
		}
	}
}

func TestDELTBeatsMarginalOnRMSE(t *testing.T) {
	ds := testCohort(t)
	m, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	deltRMSE, err := RMSE(m.Beta, ds.TrueBeta)
	if err != nil {
		t.Fatal(err)
	}
	margRMSE, err := RMSE(MarginalSCCS(ds), ds.TrueBeta)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("RMSE: DELT=%.3f marginal=%.3f", deltRMSE, margRMSE)
	if deltRMSE >= margRMSE {
		t.Errorf("DELT RMSE (%.3f) not better than marginal (%.3f)", deltRMSE, margRMSE)
	}
}

func TestPatientBaselinesRecovered(t *testing.T) {
	ds := testCohort(t)
	m, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// α_i should correlate strongly with the generator's baselines. The
	// comorbidity steps bias some patients, so compare in aggregate.
	var sumErr float64
	for i, p := range ds.Patients {
		sumErr += math.Abs(m.Alpha[i] - p.Baseline)
	}
	meanErr := sumErr / float64(len(ds.Patients))
	if meanErr > 0.25 {
		t.Errorf("mean |α̂−α| = %.3f, want <= 0.25", meanErr)
	}
}

func TestLoweringCandidates(t *testing.T) {
	ds := testCohort(t)
	m, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := m.LoweringCandidates(0.2)
	// Expected: drugs 0,1,2,3 (negative effects ≤ -0.3); drug 4 raises.
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for _, d := range got {
		if !want[d] {
			t.Errorf("unexpected candidate %d", d)
		}
	}
	// Sorted by strength: drug 0 (-1.2) first.
	if got[0] != 0 {
		t.Errorf("strongest candidate = %d, want 0", got[0])
	}
}

func TestPredict(t *testing.T) {
	ds := testCohort(t)
	m, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Prediction with the strong drug is lower than without.
	without := m.Predict(0, 1.0, nil)
	with := m.Predict(0, 1.0, []int{0})
	if with >= without {
		t.Errorf("exposure to drug 0 did not lower prediction: %f vs %f", with, without)
	}
}

func TestRMSEValidation(t *testing.T) {
	if _, err := RMSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Errorf("length mismatch: %v", err)
	}
	v, err := RMSE([]float64{1, 2}, []float64{1, 2})
	if err != nil || v != 0 {
		t.Errorf("identical vectors: %f, %v", v, err)
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("x = %v, want [1 3]", x)
	}
	sing := [][]float64{{1, 1}, {2, 2}}
	if _, err := solveLinear(sing, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("singular system: %v", err)
	}
}

func TestSameTimeVisitsHandled(t *testing.T) {
	// A degenerate patient whose visits are all at t=0 must not produce
	// NaNs (drift unidentifiable → 0).
	ds := &emr.Dataset{
		Cfg: emr.Config{Patients: 1, Drugs: 2, VisitsMin: 2, VisitsMax: 3},
		Patients: []emr.Patient{{
			ID: "p",
			Visits: []emr.Visit{
				{Time: 0, Drugs: []int{0}, HbA1c: 6.2},
				{Time: 0, Drugs: nil, HbA1c: 6.0},
				{Time: 0, Drugs: []int{1}, HbA1c: 6.4},
			},
		}},
		TrueBeta: []float64{0, 0},
	}
	m, err := Fit(ds, Config{Lambda: 1, Iterations: 5, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(append([]float64{}, m.Beta...), m.Alpha[0], m.Gamma[0]) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate cohort produced %f", v)
		}
	}
	if m.Gamma[0] != 0 {
		t.Errorf("gamma = %f, want 0 for unidentifiable drift", m.Gamma[0])
	}
}

// effectSimilarity builds a drug-similarity network from the generator's
// true effects (similar effect → similar drug), the prior knowledge
// DELT's contribution (3) injects.
func effectSimilarity(truth []float64) [][]float64 {
	n := len(truth)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if i == j {
				sim[i][j] = 1
				continue
			}
			d := truth[i] - truth[j]
			sim[i][j] = math.Exp(-8 * d * d)
		}
	}
	return sim
}

func TestGraphRegularizationValidation(t *testing.T) {
	ds := testCohort(t)
	cfg := DefaultConfig()
	cfg.GraphLambda = -1
	if _, err := Fit(ds, cfg); !errors.Is(err, ErrInput) {
		t.Errorf("negative graph lambda: %v", err)
	}
	cfg.GraphLambda = 1
	cfg.DrugSim = [][]float64{{1}}
	if _, err := Fit(ds, cfg); !errors.Is(err, ErrInput) {
		t.Errorf("mis-sized DrugSim: %v", err)
	}
}

// TestGraphRegularizationHelpsWhenDataIsScarce: with few patients the
// unregularized estimates are noisy; the similarity network pulls
// similar drugs together and reduces effect-vector error — DELT's
// contribution (3).
func TestGraphRegularizationHelpsWhenDataIsScarce(t *testing.T) {
	cfg := emr.DefaultConfig()
	cfg.Patients = 40 // scarce data regime
	cfg.NoiseSD = 0.6
	ds, err := emr.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := DefaultConfig()
	reg.GraphLambda = 25
	reg.DrugSim = effectSimilarity(ds.TrueBeta)
	smooth, err := Fit(ds, reg)
	if err != nil {
		t.Fatal(err)
	}
	plainRMSE, _ := RMSE(plain.Beta, ds.TrueBeta)
	smoothRMSE, _ := RMSE(smooth.Beta, ds.TrueBeta)
	t.Logf("RMSE: plain=%.4f graph-regularized=%.4f", plainRMSE, smoothRMSE)
	if smoothRMSE >= plainRMSE {
		t.Errorf("similarity regularization did not help: %.4f vs %.4f", smoothRMSE, plainRMSE)
	}
}

// TestGraphRegularizationHarmlessAtScale: with abundant data the
// regularizer must not materially hurt accuracy.
func TestGraphRegularizationHarmlessAtScale(t *testing.T) {
	ds := testCohort(t)
	plain, err := Fit(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := DefaultConfig()
	reg.GraphLambda = 5
	reg.DrugSim = effectSimilarity(ds.TrueBeta)
	smooth, err := Fit(ds, reg)
	if err != nil {
		t.Fatal(err)
	}
	plainRMSE, _ := RMSE(plain.Beta, ds.TrueBeta)
	smoothRMSE, _ := RMSE(smooth.Beta, ds.TrueBeta)
	if smoothRMSE > plainRMSE*2 {
		t.Errorf("regularizer hurt at scale: %.4f vs %.4f", smoothRMSE, plainRMSE)
	}
}
