// Package delt implements the Drug Effects on Laboratory Tests algorithm
// of §V-B (Ghalwash–Li–Zhang–Hu, CIKM'17), an extension of the
// Self-Controlled Case Series model. It fits
//
//	y_ij = α_i + γ_i·t_ij + Σ_d β_d·x_ijd + ε
//
// by alternating least squares: per-patient closed-form updates for the
// baseline α_i and time-drift γ_i (the confounder absorbers of Figs
// 10–11), and a global ridge regression for the joint drug-effect vector
// β. Modeling *joint* exposure makes DELT "robust against confounders
// raised by co-medications"; the MarginalSCCS baseline in this package
// is the per-drug marginal analysis that experiment E10 shows being
// fooled by exactly those confounders.
package delt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"healthcloud/internal/emr"
)

// Config tunes the fit.
type Config struct {
	Lambda     float64 // ridge strength on β
	Iterations int
	Tol        float64 // stop when max |Δβ| < Tol
	// GraphLambda weights the drug-similarity network regularizer
	// (contribution 3 of the DELT paper: "leverages the prior knowledge
	// of ... drug similarity network information into the SCCS model").
	// With DrugSim set, similar drugs are pulled toward similar effects
	// via the graph Laplacian penalty λ_g Σ s_dd' (β_d − β_d')².
	GraphLambda float64
	// DrugSim is the optional drugs×drugs similarity matrix.
	DrugSim [][]float64
}

// DefaultConfig returns the settings used in examples and benches.
func DefaultConfig() Config {
	return Config{Lambda: 1.0, Iterations: 25, Tol: 1e-6}
}

// Model is a fitted DELT instance.
type Model struct {
	Beta      []float64 // per-drug effect estimates
	Alpha     []float64 // per-patient baselines
	Gamma     []float64 // per-patient drifts
	Objective []float64 // mean squared error per iteration
}

// Errors returned by this package.
var (
	ErrInput    = errors.New("delt: invalid input")
	ErrSingular = errors.New("delt: singular system")
)

// Fit runs DELT over a cohort.
func Fit(ds *emr.Dataset, cfg Config) (*Model, error) {
	if ds == nil || len(ds.Patients) == 0 {
		return nil, fmt.Errorf("%w: empty cohort", ErrInput)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("%w: iterations must be positive", ErrInput)
	}
	if cfg.Lambda < 0 || cfg.GraphLambda < 0 {
		return nil, fmt.Errorf("%w: lambdas must be nonnegative", ErrInput)
	}
	if cfg.GraphLambda > 0 {
		if len(cfg.DrugSim) != ds.Cfg.Drugs {
			return nil, fmt.Errorf("%w: DrugSim must be %d×%d", ErrInput, ds.Cfg.Drugs, ds.Cfg.Drugs)
		}
		for i, row := range cfg.DrugSim {
			if len(row) != ds.Cfg.Drugs {
				return nil, fmt.Errorf("%w: DrugSim row %d ragged", ErrInput, i)
			}
		}
	}
	nD := ds.Cfg.Drugs
	nP := len(ds.Patients)
	m := &Model{
		Beta:  make([]float64, nD),
		Alpha: make([]float64, nP),
		Gamma: make([]float64, nP),
	}
	for it := 0; it < cfg.Iterations; it++ {
		// Step 1: per-patient (α_i, γ_i) by 2-variable least squares on
		// the drug-effect-adjusted residuals.
		for i, p := range ds.Patients {
			m.Alpha[i], m.Gamma[i] = fitPatient(p, m.Beta)
		}
		// Step 2: global ridge for β on baseline-adjusted residuals, with
		// the optional similarity-network (graph Laplacian) penalty.
		newBeta, err := fitBeta(ds, m, cfg)
		if err != nil {
			return nil, err
		}
		maxDelta := 0.0
		for d := range newBeta {
			if dd := math.Abs(newBeta[d] - m.Beta[d]); dd > maxDelta {
				maxDelta = dd
			}
		}
		m.Beta = newBeta
		m.Objective = append(m.Objective, m.mse(ds))
		if maxDelta < cfg.Tol {
			break
		}
	}
	return m, nil
}

// fitPatient solves min over (α, γ) of Σ_j (r_j − α − γ·t_j)² where
// r_j = y_j − x_j·β, in closed form.
func fitPatient(p emr.Patient, beta []float64) (alpha, gamma float64) {
	n := float64(len(p.Visits))
	var st, stt, sr, srt float64
	for _, v := range p.Visits {
		r := v.HbA1c
		for _, d := range v.Drugs {
			r -= beta[d]
		}
		st += v.Time
		stt += v.Time * v.Time
		sr += r
		srt += r * v.Time
	}
	det := n*stt - st*st
	if math.Abs(det) < 1e-12 {
		// All visits at the same time: drift unidentifiable, use mean.
		return sr / n, 0
	}
	alpha = (stt*sr - st*srt) / det
	gamma = (n*srt - st*sr) / det
	return alpha, gamma
}

// fitBeta solves the regularized system (XᵀX + λI + λ_g·L)β = Xᵀz over
// all visits, where z_ij = y_ij − α_i − γ_i·t_ij, X is the binary
// exposure design, and L is the graph Laplacian of the drug-similarity
// network (L = D − S): the Laplacian term penalizes
// Σ s_dd' (β_d − β_d')², shrinking similar drugs toward similar effects.
func fitBeta(ds *emr.Dataset, m *Model, cfg Config) ([]float64, error) {
	nD := ds.Cfg.Drugs
	ata := make([][]float64, nD)
	for d := range ata {
		ata[d] = make([]float64, nD)
		ata[d][d] = cfg.Lambda
	}
	if cfg.GraphLambda > 0 {
		for i := 0; i < nD; i++ {
			var degree float64
			for j := 0; j < nD; j++ {
				if i == j {
					continue
				}
				s := cfg.DrugSim[i][j]
				degree += s
				ata[i][j] -= cfg.GraphLambda * s
			}
			ata[i][i] += cfg.GraphLambda * degree
		}
	}
	atz := make([]float64, nD)
	for i, p := range ds.Patients {
		for _, v := range p.Visits {
			z := v.HbA1c - m.Alpha[i] - m.Gamma[i]*v.Time
			for _, d1 := range v.Drugs {
				atz[d1] += z
				for _, d2 := range v.Drugs {
					ata[d1][d2]++
				}
			}
		}
	}
	return solveLinear(ata, atz)
}

// mse returns the model's mean squared error over the cohort.
func (m *Model) mse(ds *emr.Dataset) float64 {
	var sum float64
	var n int
	for i, p := range ds.Patients {
		for _, v := range p.Visits {
			pred := m.Alpha[i] + m.Gamma[i]*v.Time
			for _, d := range v.Drugs {
				pred += m.Beta[d]
			}
			diff := v.HbA1c - pred
			sum += diff * diff
			n++
		}
	}
	return sum / float64(n)
}

// Predict returns the model's estimate for patient index i at time t
// with exposures drugs.
func (m *Model) Predict(i int, t float64, drugs []int) float64 {
	y := m.Alpha[i] + m.Gamma[i]*t
	for _, d := range drugs {
		y += m.Beta[d]
	}
	return y
}

// LoweringCandidates returns drugs ranked by most-negative estimated
// effect whose |β| meets the threshold — "potential candidates for
// repositioning to control blood sugar".
func (m *Model) LoweringCandidates(threshold float64) []int {
	var out []int
	for d, b := range m.Beta {
		if b <= -threshold {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool { return m.Beta[out[a]] < m.Beta[out[b]] })
	return out
}

// MarginalSCCS is the baseline: for each drug independently, the mean
// within-patient difference between exposed and unexposed visits. It is
// self-controlled (handles α_i) but marginal — co-medication confounding
// and time drift pass straight through.
func MarginalSCCS(ds *emr.Dataset) []float64 {
	nD := ds.Cfg.Drugs
	out := make([]float64, nD)
	for d := 0; d < nD; d++ {
		var diffSum float64
		var n int
		for _, p := range ds.Patients {
			var expSum, unexpSum float64
			var expN, unexpN int
			for _, v := range p.Visits {
				exposed := false
				for _, vd := range v.Drugs {
					if vd == d {
						exposed = true
						break
					}
				}
				if exposed {
					expSum += v.HbA1c
					expN++
				} else {
					unexpSum += v.HbA1c
					unexpN++
				}
			}
			if expN > 0 && unexpN > 0 {
				diffSum += expSum/float64(expN) - unexpSum/float64(unexpN)
				n++
			}
		}
		if n > 0 {
			out[d] = diffSum / float64(n)
		}
	}
	return out
}

// RMSE compares an effect estimate against the ground truth.
func RMSE(estimate, truth []float64) (float64, error) {
	if len(estimate) != len(truth) {
		return 0, fmt.Errorf("%w: length mismatch", ErrInput)
	}
	var sum float64
	for i := range truth {
		d := estimate[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(truth))), nil
}

// solveLinear solves Ax = b by Gaussian elimination with partial
// pivoting. A is destroyed.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// pivot
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= a[col][c] * x[c]
		}
		x[col] = s / a[col][col]
	}
	return x, nil
}
