// Package core assembles the trusted healthcare data analytics cloud
// platform. The paper's primary contribution is not any single
// component but the weave (§I: the system "'weaves' security, privacy
// and compliance in the lifecycle of the crown-jewels that need
// protection: data, systems, users and devices"), so Platform is where
// the pieces interlock:
//
//   - a trusted infrastructure cloud (measured hosts, attested VMs and
//     containers) hosting the health-cloud instance (Fig 1);
//   - RBAC + federated identity guarding every API;
//   - consent management gating ingestion and export;
//   - the asynchronous ingestion pipeline writing to the encrypted Data
//     Lake with provenance on a permissioned blockchain;
//   - the analytics platform with its model lifecycle;
//   - the external AI-service registry and cached knowledge bases;
//   - the enhanced-client server surface.
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"healthcloud/internal/admission"
	"healthcloud/internal/analytics"
	"healthcloud/internal/anonymize"
	"healthcloud/internal/attest"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/client"
	"healthcloud/internal/cloud"
	"healthcloud/internal/consent"
	"healthcloud/internal/durable"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/hccache"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/kb"
	"healthcloud/internal/metering"
	"healthcloud/internal/monitor"
	"healthcloud/internal/multichain"
	"healthcloud/internal/rbac"
	"healthcloud/internal/resilience"
	"healthcloud/internal/scan"
	"healthcloud/internal/services"
	"healthcloud/internal/shardlake"
	"healthcloud/internal/ssi"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// Config sizes a platform instance.
type Config struct {
	Tenant string
	// LedgerPeers are the provenance-network members; empty disables the
	// blockchain (useful for microbenchmarks). Per §IV-B1's "in a
	// different approach, information about a given record on malware,
	// privacy and integrity can be added to a single blockchain network.
	// It is a design decision." — we run one network for all event types.
	LedgerPeers []string
	// EndorsementK is the endorsement policy (default: majority).
	EndorsementK int
	// SignatureScheme selects the endorsement signature scheme for the
	// provenance ledger peers: "ed25519" (the default) or "rsa"/"rsa-pss"
	// (the compatibility scheme stored artifacts were endorsed under).
	// The scheme travels in every signature envelope, so chains written
	// under one scheme replay and verify under another.
	SignatureScheme string
	// Channels partitions provenance onto N independent ledger channels
	// (default 1 = the single hcls-ledger network, byte-identical to the
	// pre-multichain behavior). Above 1 the trust plane is an
	// internal/multichain fabric: transactions route by record key on a
	// seeded consistent-hash ring, each channel owns its own ordering
	// cluster, optional group-commit batcher, and (with DataDir) block
	// WAL directory, and the cross-channel auditor view reconstructs a
	// verifiable per-record total order. The channel count must stay
	// stable for a given DataDir.
	Channels int
	// LedgerSnapshotEvery cuts a ledger world-state snapshot into the
	// WAL every K blocks so restart replay cost stays bounded as the
	// chain grows (0 disables; requires DataDir to have any effect).
	LedgerSnapshotEvery int
	// LedgerBatch enables group-commit provenance batching: ingest
	// workers enqueue into a blockchain.Batcher that coalesces
	// concurrent provenance events (max 64 tx / 5 ms window) into one
	// group endorsement + ordering round (experiment E17). Off by
	// default: batching pays a window latency per event, which only
	// buys throughput under concurrent ingest.
	LedgerBatch bool
	// IngestWorkers is the background worker count (default 4).
	IngestWorkers int
	// RequiredK is the export k-anonymity policy (default 2).
	RequiredK int
	// KBLatency simulates WAN distance to the external knowledge bases.
	KBLatency time.Duration
	// KBDataset overrides the default synthetic knowledge base.
	KBDataset *kb.Dataset
	// IngestMaxAttempts caps bus deliveries per ingest message before it
	// dead-letters (default 5; <0 disables the cap).
	IngestMaxAttempts int
	// DataDir roots the durable persistence layer: each Data Lake shard
	// journals to its own segment directory under it and the provenance
	// ledger write-ahead-logs committed blocks, so a restarted instance
	// replays its state from disk. Empty (the default) keeps everything
	// in memory, byte-identical to the pre-durability behavior. Opening
	// a DataDir with interior corruption fails New with
	// durable.ErrCorrupt rather than serving rewritten history.
	DataDir string
	// Shards is the Data Lake shard count (default 1 = today's single
	// in-process lake, byte-identical behavior). Above 1 the lake is a
	// shardlake cluster: consistent-hash placement, R-way replication,
	// read-repair, hinted handoff, and online rebalancing.
	Shards int
	// Replicas is the replication factor R for the sharded lake
	// (default 1; clamped to Shards). Ignored when Shards <= 1.
	Replicas int
	// Faults, when set, wires a fault-injection registry through the
	// stores, ledger, remote KB, service registry, and consensus fabric
	// so chaos experiments can break components by name.
	Faults *faultinject.Registry
	// Telemetry, when set, wires the observability subsystem (metrics
	// registry + tracer) through the bus, stores, ledger, consensus,
	// caches, remote KB and service registry. Nil disables it at zero
	// cost beyond nil checks (same contract as Faults).
	Telemetry *telemetry.Telemetry
	// TraceSample overrides the tail-sampler's keep probability for
	// unremarkable traces (0 = keep the tracer's default policy;
	// errored traces and the slowest roots are always kept).
	TraceSample float64
	// TraceSlowK overrides how many of the slowest traces per root
	// span name stay pinned in the trace store (0 = policy default).
	TraceSlowK int
	// Admission enables the admission-control layer: per-tenant token
	// buckets refilled from metering quotas, queue-depth load shedding
	// with honest Retry-After, and priority classes (experiment E24).
	// Off by default: a disabled platform is byte-identical to one built
	// before the subsystem existed (the controller is nil and every
	// surface admits unconditionally).
	Admission bool
	// AdmissionRate/AdmissionBurst are the default per-tenant quota for
	// tenants without a metered one (defaults 200/s, 2x burst).
	AdmissionRate  float64
	AdmissionBurst float64
	// ShedBulkDepth is the ingest backlog above which bulk traffic
	// (uploads, registrations) sheds with 503 + Retry-After (default
	// 256); ShedNormalDepth is the deeper limit for interactive traffic
	// (default 4x). Critical traffic (health probes, consent revocations)
	// is never shed.
	ShedBulkDepth   int
	ShedNormalDepth int
	// Monitor enables the self-monitoring layer: a metrics history ring
	// sampled from Telemetry, SLO evaluation with error budgets,
	// dependency-aware health probes behind /readyz and /statusz, and a
	// watchdog that raises PHI-free audit alerts on breach. Requires
	// Telemetry for the ring and SLOs (probes work without it).
	Monitor bool
	// MonitorInterval is the watchdog tick period (default 1s). A
	// negative interval builds the monitor but never starts the loop —
	// tests and experiment E18 call Watchdog().Tick() manually for
	// deterministic timing.
	MonitorInterval time.Duration
}

// Platform is one trusted health cloud instance.
type Platform struct {
	cfg Config

	RBAC   *rbac.System
	KMS    *hckrypto.KMS
	Audit  *audit.Log
	AttSvc *attest.Service
	CM     *audit.ChangeManager
	Cloud  *cloud.Cloud
	Bus    *bus.Bus
	// Lake is the Data Lake the pipeline writes to: a single
	// store.DataLake when Config.Shards <= 1, otherwise ShardLake.
	Lake store.Lake
	// ShardLake is the sharded lake cluster (nil when Shards <= 1).
	ShardLake *shardlake.Lake
	IDMap     *store.IdentityMap
	Consents  *consent.Service
	Scanner   *scan.Scanner
	Verifier  *anonymize.VerificationService
	// Provenance is the single provenance network when Channels <= 1;
	// with a multi-channel fabric it aliases channel ch-0 (the anchor
	// channel legacy single-network paths keep working against).
	Provenance *blockchain.Network // nil when disabled
	// MultiChain is the partitioned provenance fabric (nil unless
	// Config.Channels > 1): per-channel ordering, batching and WALs,
	// plus the cross-channel auditor view.
	MultiChain *multichain.Ledger
	// LedgerBatcher is the group-commit writer in front of Provenance
	// (nil unless Config.LedgerBatch; with a multi-channel fabric the
	// batchers live inside the channels instead).
	LedgerBatcher *blockchain.Batcher
	Ingest        *ingest.Pipeline
	Analytics     *analytics.Platform
	Services      *services.Registry
	KB            *kb.Dataset
	KBRemote      *kb.RemoteKB
	// KBResilient guards the remote KB with retry, a circuit breaker,
	// and stale-serving graceful degradation; KBCache loads through it.
	KBResilient *kb.ResilientClient
	KBCache     *hccache.Tiered
	// Invalidations propagates cache-consistency events to every cache
	// tier, including enhanced clients (§III).
	Invalidations *hccache.Publisher
	// Identity anchors self-sovereign credentials on the ledger (§IV-B1);
	// nil when the ledger is disabled.
	Identity *ssi.Registry
	// Meter records per-tenant service usage for billing (§II-B
	// Registration Service: "metering and billing of various services").
	Meter *metering.Meter
	// DrainEst watches the ingest backlog and completion rate; it backs
	// the honest Retry-After on transient upload failures and the
	// admission layer's shed hints. Always present (passive until read).
	DrainEst *admission.DrainEstimator
	// Admission is the admission controller (nil unless Config.Admission;
	// nil admits everything).
	Admission *admission.Controller
	// Telemetry is the instance's observability subsystem (nil when
	// disabled); httpapi serves it at /metrics and /traces/{id}.
	Telemetry *telemetry.Telemetry
	// Monitor is the self-monitoring layer (nil when disabled); httpapi
	// serves it at /readyz, /statusz, and /metrics/history.
	Monitor *monitor.Monitor
	// LakeLogs are the per-shard durable journals, keyed by shard name
	// ("lake" for the single-lake layout). Empty when DataDir is unset.
	LakeLogs map[string]*durable.LakeLog
	// LedgerWAL is the provenance ledger's write-ahead log (nil when
	// DataDir is unset or the ledger is disabled).
	LedgerWAL *durable.WAL
}

// New builds and starts a platform instance.
func New(cfg Config) (*Platform, error) {
	if cfg.Tenant == "" {
		return nil, errors.New("core: tenant required")
	}
	if cfg.IngestWorkers <= 0 {
		cfg.IngestWorkers = 4
	}
	if cfg.RequiredK <= 0 {
		cfg.RequiredK = 2
	}
	switch {
	case cfg.IngestMaxAttempts == 0:
		cfg.IngestMaxAttempts = 5
	case cfg.IngestMaxAttempts < 0:
		cfg.IngestMaxAttempts = 0 // explicit opt-out: unlimited redelivery
	}
	p := &Platform{cfg: cfg, Telemetry: cfg.Telemetry,
		LakeLogs: make(map[string]*durable.LakeLog)}
	reg, tracer := cfg.Telemetry.Registry(), cfg.Telemetry.Spans()
	if tracer != nil && (cfg.TraceSample > 0 || cfg.TraceSlowK > 0) {
		pol := telemetry.DefaultPolicy()
		if cfg.TraceSample > 0 {
			pol.SampleRate = cfg.TraceSample
		}
		if cfg.TraceSlowK > 0 {
			pol.SlowK = cfg.TraceSlowK
		}
		tracer.SetPolicy(pol)
	}

	// openDurable replays a shard directory into a freshly built lake
	// and attaches its write-ahead journal; a no-op without DataDir.
	openDurable := func(name, dir string, lake *store.DataLake) error {
		if cfg.DataDir == "" {
			return nil
		}
		log, err := durable.OpenLake(dir, lake, durable.Options{
			FaultScope: "durable." + name,
			Faults:     cfg.Faults, Registry: reg, Tracer: tracer,
		})
		if err != nil {
			return fmt.Errorf("core: durable lake %s: %w", name, err)
		}
		lake.SetJournal(log)
		p.LakeLogs[name] = log
		return nil
	}

	var err error
	if p.KMS, err = hckrypto.NewKMS(cfg.Tenant); err != nil {
		return nil, fmt.Errorf("core: kms: %w", err)
	}
	p.Audit = audit.NewLog()
	p.AttSvc = attest.NewService()
	p.CM = audit.NewChangeManager(p.AttSvc, p.Audit)
	p.Cloud = cloud.New(p.AttSvc, p.Audit)
	p.RBAC = rbac.NewSystem()
	if err := p.RBAC.CreateTenant(cfg.Tenant); err != nil {
		return nil, fmt.Errorf("core: tenant: %w", err)
	}
	p.Bus = bus.New(bus.WithMaxAttempts(cfg.IngestMaxAttempts),
		bus.WithTelemetry(reg, tracer))
	if cfg.Shards <= 1 {
		lake := store.NewDataLake(p.KMS, "svc-storage")
		lake.SetFaults(cfg.Faults)
		lake.SetTelemetry(reg)
		if err := openDurable("lake", filepath.Join(cfg.DataDir, "lake"), lake); err != nil {
			return nil, err
		}
		p.Lake = lake
	} else {
		// All shards hang off the one KMS (the trust plane stays
		// unsharded), so replicas are byte-identical sealed records and
		// grants/crypto-shredding cover every copy at once.
		shards := make([]shardlake.Shard, cfg.Shards)
		for i := range shards {
			lake := store.NewDataLake(p.KMS, "svc-storage")
			lake.SetTelemetry(reg)
			name := shardlake.ShardName(i)
			// One directory per shard: replication already moves portable
			// Sealed records, so each replica journals independently and
			// the quorum/repair machinery above is untouched.
			if err := openDurable(name, filepath.Join(cfg.DataDir, "shards", name), lake); err != nil {
				return nil, err
			}
			shards[i] = shardlake.Shard{Name: name, Lake: lake}
		}
		p.ShardLake, err = shardlake.New(shards, shardlake.Config{
			Replicas: cfg.Replicas,
			Seed:     lakeRingSeed,
			Faults:   cfg.Faults,
			Registry: reg,
			Tracer:   tracer,
		})
		if err != nil {
			return nil, fmt.Errorf("core: shardlake: %w", err)
		}
		p.ShardLake.StartPump(time.Second)
		p.Lake = p.ShardLake
	}
	p.IDMap = store.NewIdentityMap("svc-reident")
	p.Consents = consent.NewService()
	if p.Scanner, err = scan.NewScanner(scan.DefaultSignatures()...); err != nil {
		return nil, fmt.Errorf("core: scanner: %w", err)
	}
	p.Verifier = &anonymize.VerificationService{RequiredK: cfg.RequiredK}

	if len(cfg.LedgerPeers) > 0 {
		k := cfg.EndorsementK
		if k <= 0 {
			k = len(cfg.LedgerPeers)/2 + 1
		}
		scheme, err := hckrypto.ParseScheme(cfg.SignatureScheme)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if cfg.Channels > 1 {
			mcDir := ""
			if cfg.DataDir != "" {
				mcDir = filepath.Join(cfg.DataDir, "ledger")
			}
			p.MultiChain, err = multichain.New(multichain.Config{
				Name: "hcls-ledger", Channels: cfg.Channels,
				PeerIDs: cfg.LedgerPeers, PolicyK: k,
				Seed: ledgerRingSeed, Batch: cfg.LedgerBatch,
				DataDir: mcDir, SnapshotEvery: cfg.LedgerSnapshotEvery,
				Scheme: scheme,
				Faults: cfg.Faults, Registry: reg, Tracer: tracer,
			})
			if err != nil {
				return nil, fmt.Errorf("core: multichain ledger: %w", err)
			}
			// ch-0 anchors legacy single-network paths (Components,
			// SubmitWorkloadAttestation-style direct submits).
			p.Provenance = p.MultiChain.Channels()[0].Net
		} else {
			if p.Provenance, err = blockchain.NewNetwork("hcls-ledger", cfg.LedgerPeers, k,
				blockchain.WithSignatureScheme(scheme),
				blockchain.WithFaults(cfg.Faults),
				blockchain.WithTelemetry(reg, tracer)); err != nil {
				return nil, fmt.Errorf("core: ledger: %w", err)
			}
			if cfg.DataDir != "" {
				// One WAL serves every peer: they commit the same blocks from
				// the same ordered stream, the WAL dedups by number + hash and
				// flags divergence. Each peer restores from the replayed chain
				// (hash-verified by Restore) — from the latest world-state
				// snapshot plus its tail when one exists, full replay
				// otherwise — before the network takes traffic.
				wal, rep, err := durable.OpenWALSnapshot(filepath.Join(cfg.DataDir, "ledger"), durable.Options{
					FaultScope: "durable.ledger",
					Faults:     cfg.Faults, Registry: reg, Tracer: tracer,
				})
				if err != nil {
					return nil, fmt.Errorf("core: ledger wal: %w", err)
				}
				for _, id := range p.Provenance.PeerIDs() {
					peer, perr := p.Provenance.Peer(id)
					if perr != nil {
						return nil, fmt.Errorf("core: ledger wal: %w", perr)
					}
					var rerr error
					if rep.Snapshot != nil {
						rerr = peer.Ledger().RestoreSnapshot(*rep.Snapshot, rep.Blocks)
					} else {
						rerr = peer.Ledger().Restore(rep.Blocks)
					}
					if rerr != nil {
						return nil, fmt.Errorf("core: ledger wal restore (%s): %w", id, rerr)
					}
					peer.Ledger().SetWAL(wal)
					peer.Ledger().SetSnapshotEvery(cfg.LedgerSnapshotEvery)
				}
				p.LedgerWAL = wal
			}
		}
	}

	var ledger ingest.Ledger
	switch {
	case p.MultiChain != nil:
		// The fabric routes each provenance event to its owning channel
		// and flushes per-channel batchers on pipeline close.
		ledger = p.MultiChain
	case p.Provenance != nil:
		ledger = p.Provenance
		if cfg.LedgerBatch {
			p.LedgerBatcher = blockchain.NewBatcher(p.Provenance, blockchain.BatcherConfig{
				Registry: reg, Tracer: tracer,
			})
			ledger = p.LedgerBatcher
		}
	}
	p.Ingest, err = ingest.New(ingest.Deps{
		Tenant: cfg.Tenant, KMS: p.KMS, Lake: p.Lake, IDMap: p.IDMap,
		Bus: p.Bus, Scanner: p.Scanner, Consents: p.Consents,
		Verifier: p.Verifier, Ledger: ledger, Log: p.Audit,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return nil, fmt.Errorf("core: ingest: %w", err)
	}
	p.Ingest.Staging().SetFaults(cfg.Faults)
	p.Ingest.Staging().SetTelemetry(reg)
	p.Ingest.Start(cfg.IngestWorkers)

	p.Analytics = analytics.NewPlatform(p.Audit)
	p.Services = services.NewRegistry()
	p.Services.SetFaults(cfg.Faults)
	p.Services.SetTelemetry(reg)
	p.Meter = metering.NewMeter(metering.DefaultRates())

	// The drain estimator is always wired: it is passive (sampled only
	// when read) and the HTTP layer's transient-failure Retry-After uses
	// it whether or not admission control is on.
	p.DrainEst = admission.NewDrainEstimator(p.Ingest.QueueDepth, p.Ingest.Completed, nil)
	if cfg.Admission {
		meter := p.Meter
		p.Admission = admission.New(admission.Config{
			DefaultPerSec: cfg.AdmissionRate,
			DefaultBurst:  cfg.AdmissionBurst,
			Quotas: func(tenant string) (float64, float64, bool) {
				q, ok := meter.QuotaFor(tenant)
				return q.PerSec, q.Burst, ok
			},
			Estimator:   p.DrainEst,
			BulkDepth:   cfg.ShedBulkDepth,
			NormalDepth: cfg.ShedNormalDepth,
			Registry:    reg,
		})
	}

	p.KB = cfg.KBDataset
	if p.KB == nil {
		if p.KB, err = kb.Generate(kb.DefaultConfig()); err != nil {
			return nil, fmt.Errorf("core: kb: %w", err)
		}
	}
	p.KBRemote = kb.NewRemoteKB(p.KB, cfg.KBLatency, kb.WithFaults(cfg.Faults),
		kb.WithTelemetry(reg))
	// The cache loads through the resilience layer: transient KB
	// failures are retried, sustained failure trips the breaker, and
	// open-circuit reads degrade to the last-known-good value.
	p.KBResilient = kb.NewResilientClient(p.KBRemote.Loader(),
		resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 5, OpenFor: time.Second}),
		resilience.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	p.KBResilient.Breaker().SetTelemetry(reg, "kb-remote")
	serverTier, err := hccache.New(4096, 0)
	if err != nil {
		return nil, fmt.Errorf("core: kb cache: %w", err)
	}
	if p.KBCache, err = hccache.NewTiered(p.KBResilient.Loader(), serverTier); err != nil {
		return nil, fmt.Errorf("core: kb cache: %w", err)
	}
	p.KBCache.SetTelemetry(reg, tracer)
	p.Invalidations = hccache.NewPublisher(p.Bus)
	if p.MultiChain != nil {
		// The fabric is both submit surface (routing by record key) and
		// query surface (the merged, chain-verified auditor view).
		p.Identity = ssi.NewRegistry(p.MultiChain, p.MultiChain)
	} else if p.Provenance != nil {
		// Any peer's ledger copy serves identity status queries; use the
		// first (they converge, and VerifyChain audits divergence).
		peer, err := p.Provenance.Peer(p.Provenance.PeerIDs()[0])
		if err != nil {
			return nil, fmt.Errorf("core: identity registry: %w", err)
		}
		p.Identity = ssi.NewRegistry(p.Provenance, peer.Ledger())
	}
	if cfg.Monitor {
		p.wireMonitor(cfg, reg, tracer)
	}
	p.Audit.Record(audit.Event{Level: audit.LevelInfo, Service: "platform",
		Action: "instance-start", Resource: cfg.Tenant})
	return p, nil
}

// Monitoring thresholds for the default probes and objectives. The
// ledger probe's ceiling sits well above the few ms a healthy
// in-process endorsement round takes, so only genuine slowdowns (like
// injected submit-path latency) trip it.
const (
	monitorLedgerSlow    = 250 * time.Millisecond
	monitorFsyncSlow     = 250 * time.Millisecond // durable probe's fsync-latency ceiling
	monitorQueueDegraded = 1000                   // ingest backlog before the queue probe degrades
	monitorSLOWindow     = time.Minute
	// lakeRingSeed pins shardlake placement so experiments and tests see
	// the same layout on every run.
	lakeRingSeed = 1907
	// ledgerRingSeed pins multichain channel placement the same way —
	// and, because routing must agree with data already on disk, it is
	// part of the durable format for multi-channel DataDirs.
	ledgerRingSeed = 2112
)

// The multichain fabric stands in wherever one network or batcher sat.
var (
	_ ingest.Ledger        = (*multichain.Ledger)(nil)
	_ ingest.TracedLedger  = (*multichain.Ledger)(nil)
	_ ingest.LedgerFlusher = (*multichain.Ledger)(nil)
	_ ssi.Ledger           = (*multichain.Ledger)(nil)
	_ ssi.LedgerQuerier    = (*multichain.Ledger)(nil)
)

// wireMonitor assembles the self-monitoring layer: default dependency
// probes over the components this instance runs, the platform SLOs
// evaluated from the metrics history ring, collectors that copy
// pull-style values into gauges each tick, and the watchdog that turns
// breaches into audit alerts.
func (p *Platform) wireMonitor(cfg Config, reg *telemetry.Registry, tracer *telemetry.Tracer) {
	prober := monitor.NewProber()

	if p.ShardLake == nil {
		prober.AddCheck("data-lake", func() monitor.Health {
			if err := p.Lake.Ping(); err != nil {
				return monitor.Degraded(err.Error())
			}
			return monitor.Healthy("serving")
		})
	} else {
		sl := p.ShardLake
		// The cluster probe distinguishes "replication is absorbing an
		// outage" (degraded, still ready) from "quorum lost" (down):
		// with R-way replication a single dead shard must not fail
		// readiness, only surface as degraded until hints drain.
		prober.AddCheck("data-lake", func() monitor.Health {
			down := 0
			for _, err := range sl.ShardHealth() {
				if err != nil {
					down++
				}
			}
			backlog := sl.HintBacklog()
			switch {
			case down == 0 && backlog == 0:
				return monitor.Healthy(fmt.Sprintf("%d shards serving", len(sl.Shards())))
			case sl.QuorumHolds():
				return monitor.Degraded(fmt.Sprintf(
					"%d shard(s) down, quorum holds (R=%d), %d hints queued",
					down, sl.Replicas(), backlog))
			default:
				return monitor.Down(fmt.Sprintf("%d/%d shards down, quorum lost",
					down, len(sl.Shards())))
			}
		})
		for _, name := range sl.Shards() {
			name := name
			prober.AddCheck("data-lake/"+name, func() monitor.Health {
				if err := sl.ShardPing(name); err != nil {
					if sl.QuorumHolds() {
						return monitor.Degraded(err.Error())
					}
					return monitor.Down(err.Error())
				}
				return monitor.Healthy("serving")
			})
		}
	}
	prober.AddCheck("ingest-queue", func() monitor.Health {
		depth, dlq := p.Ingest.QueueDepth(), p.Ingest.DLQBacklog()
		detail := fmt.Sprintf("depth %d, dlq backlog %d", depth, dlq)
		if depth > monitorQueueDegraded {
			return monitor.Degraded(detail)
		}
		return monitor.Healthy(detail)
	})
	if p.Admission != nil {
		// Shedding is the platform doing its job, not an outage: the
		// probe degrades (visible on /statusz, still ready) while bulk
		// traffic is being refused, and recovers when the backlog drains.
		prober.AddCheck("admission", func() monitor.Health {
			s := p.Admission.Snap()
			detail := fmt.Sprintf("depth %d/%d bulk limit, %.0f/s service, %d tenant bucket(s)",
				s.QueueDepth, s.BulkDepth, s.ServiceRate, s.Tenants)
			if s.Shedding {
				return monitor.Degraded("shedding bulk traffic: " + detail)
			}
			return monitor.Healthy(detail)
		})
	}
	// The KB probe goes straight to the remote, not through the
	// resilient client: probes must not trip the production breaker,
	// and recovery must be visible the moment the dependency heals.
	// A caller-supplied dataset may hold no drugs (kb.Generate always
	// plants some); with nothing to fetch there is no remote to probe.
	if len(p.KB.DrugIDs) > 0 {
		probeKey := "drug:" + p.KB.DrugIDs[0]
		prober.AddCheck("kb-remote", func() monitor.Health {
			if _, _, err := p.KBRemote.Fetch(probeKey); err != nil {
				return monitor.Degraded(err.Error())
			}
			return monitor.Healthy("reachable")
		})
	}
	prober.AddCheck("kb-breaker", func() monitor.Health {
		if s := p.KBResilient.Breaker().State(); s != resilience.Closed {
			return monitor.Degraded("circuit " + s.String())
		}
		return monitor.Healthy("circuit closed")
	})
	if p.MultiChain != nil {
		mc := p.MultiChain
		// Aggregate worst-state across channels: one sick channel must
		// degrade /readyz (a slice of record keys can't commit), but
		// only every channel failing takes the whole submit path Down.
		// CheckSubmitPath is side-effect free on every channel, same
		// contract as the single-network probe below.
		prober.AddCheck("provenance-ledger", func() monitor.Health {
			return fabricLedgerHealth(mc.ChannelHealth())
		})
		prober.AddCheck("consensus-leader", func() monitor.Health {
			return fabricLeaderHealth(mc.OrderingLeaders())
		})
		// Per-channel checks keep /statusz attributable: which channel,
		// not just how many. Singly they report Degraded — the aggregate
		// above owns the Down decision.
		for _, name := range mc.ChannelNames() {
			name := name
			prober.AddCheck("provenance-ledger/"+name, func() monitor.Health {
				start := time.Now()
				if err := mc.ChannelHealth()[name]; err != nil {
					return monitor.Degraded(err.Error())
				}
				if elapsed := time.Since(start); elapsed > monitorLedgerSlow {
					return monitor.Degraded(fmt.Sprintf("submit path took %v (ceiling %v)",
						elapsed.Round(time.Millisecond), monitorLedgerSlow))
				}
				return monitor.Healthy("endorsing")
			})
		}
	} else if p.Provenance != nil {
		// Side-effect free by contract: CheckSubmitPath walks the fault
		// point and the endorsement policy but never orders or commits,
		// so probe rounds (and unauthenticated /readyz requests) cannot
		// grow the audit-grade ledger.
		prober.AddCheck("provenance-ledger", func() monitor.Health {
			start := time.Now()
			if err := p.Provenance.CheckSubmitPath(); err != nil {
				return monitor.Down(err.Error())
			}
			if elapsed := time.Since(start); elapsed > monitorLedgerSlow {
				return monitor.Degraded(fmt.Sprintf("submit path took %v (ceiling %v)",
					elapsed.Round(time.Millisecond), monitorLedgerSlow))
			}
			return monitor.Healthy("endorsing")
		})
		prober.AddCheck("consensus-leader", func() monitor.Health {
			if id, ok := p.Provenance.OrderingLeader(); ok {
				return monitor.Healthy("leader " + id)
			}
			return monitor.Degraded("no settled leader")
		})
	}
	var ledgerWALs map[string]*durable.WAL
	if p.MultiChain != nil {
		ledgerWALs = p.MultiChain.WALs()
	}
	if len(p.LakeLogs) > 0 || p.LedgerWAL != nil || len(ledgerWALs) > 0 {
		// Durability probe: a wedged writer (torn write or failed fsync —
		// the store refuses until reopen) means acks can no longer be
		// honored, so it is Down, not Degraded. Slow fsyncs (injected
		// stall or a saturated disk) surface as Degraded before they
		// become upload-latency SLO breaches.
		prober.AddCheck("durable-storage", func() monitor.Health {
			type named struct {
				name string
				st   durable.Stats
			}
			all := make([]named, 0, len(p.LakeLogs)+1)
			for name, log := range p.LakeLogs {
				all = append(all, named{name, log.Stats()})
			}
			if p.LedgerWAL != nil {
				all = append(all, named{"ledger", p.LedgerWAL.Stats()})
			}
			for name, wal := range ledgerWALs {
				all = append(all, named{"ledger/" + name, wal.Stats()})
			}
			var wedged []string
			var slow []string
			var replayed int
			var truncated int64
			for _, n := range all {
				if n.st.Wedged {
					wedged = append(wedged, n.name)
				}
				if n.st.LastFsync > monitorFsyncSlow {
					slow = append(slow, fmt.Sprintf("%s=%v", n.name,
						n.st.LastFsync.Round(time.Millisecond)))
				}
				replayed += n.st.ReplayedRecs
				truncated += n.st.TruncatedLen
			}
			sort.Strings(wedged)
			sort.Strings(slow)
			switch {
			case len(wedged) > 0:
				return monitor.Down("writer wedged: " + strings.Join(wedged, ", "))
			case len(slow) > 0:
				return monitor.Degraded(fmt.Sprintf("fsync over %v ceiling: %s",
					monitorFsyncSlow, strings.Join(slow, ", ")))
			default:
				return monitor.Healthy(fmt.Sprintf(
					"%d log(s) serving, replayed %d record(s), truncated %dB at open",
					len(all), replayed, truncated))
			}
		})
	}

	hist := monitor.NewHistory(reg, 0)
	eval := monitor.NewEvaluator(hist, []monitor.Objective{
		{Name: "upload-success", Kind: monitor.RatioObjective, Window: monitorSLOWindow,
			Good:     []string{"ingest_stored_total"},
			Bad:      []string{"ingest_failed_total", "ingest_dead_lettered_total"},
			MinRatio: 0.99},
		{Name: "ingest-p95", Kind: monitor.QuantileObjective, Window: monitorSLOWindow,
			Histogram: "ingest_process_seconds", Quantile: 0.95, MaxDuration: 2 * time.Second},
		{Name: "bus-redelivery", Kind: monitor.RatioObjective, Window: monitorSLOWindow,
			Good: []string{"bus_acked_total"}, Bad: []string{"bus_nacked_total"},
			MinRatio: 0.90},
		{Name: "dlq-empty", Kind: monitor.DeltaObjective, Window: monitorSLOWindow,
			Counter: "ingest_dead_lettered_total", MaxDelta: 0},
	})

	// Collectors copy pull-style values into gauges before each sample,
	// so the ring and /metrics see them without per-operation cost.
	collectors := []func(){
		func() {
			reg.Gauge("ingest_queue_depth").Set(int64(p.Ingest.QueueDepth()))
			reg.Gauge("ingest_dlq_backlog").Set(int64(p.Ingest.DLQBacklog()))
			reg.Gauge("trace_store_traces").Set(int64(tracer.StoredTraces()))
			reg.Gauge("trace_store_evicted").Set(int64(tracer.EvictedTraces()))
			reg.Gauge("trace_store_dropped_spans").Set(int64(tracer.Dropped()))
		},
	}
	if p.MultiChain != nil {
		// Pre-resolve one labelled gauge per channel so the collector
		// does no map/name work per tick; the label keeps a wedged
		// channel attributable on /metrics, not averaged away.
		leaderGauges := make(map[string]*telemetry.Gauge, len(p.MultiChain.ChannelNames()))
		for _, name := range p.MultiChain.ChannelNames() {
			leaderGauges[name] = reg.Gauge(`consensus_leader_present{channel="` + name + `"}`)
		}
		collectors = append(collectors, func() {
			for name, id := range p.MultiChain.OrderingLeaders() {
				var present int64
				if id != "" {
					present = 1
				}
				leaderGauges[name].Set(present)
			}
		})
	} else if p.Provenance != nil {
		collectors = append(collectors, func() {
			var present int64
			if _, ok := p.Provenance.OrderingLeader(); ok {
				present = 1
			}
			reg.Gauge("consensus_leader_present").Set(present)
		})
	}
	if p.ShardLake != nil {
		collectors = append(collectors, p.ShardLake.Collect)
	}
	if p.Admission != nil {
		collectors = append(collectors, p.Admission.Collect)
	}

	wd := monitor.NewWatchdog(monitor.WatchdogConfig{
		History: hist, Evaluator: eval, Prober: prober,
		Audit: p.Audit, Tracer: tracer, Collectors: collectors,
	})
	p.Monitor = monitor.New(hist, eval, prober, wd)
	if cfg.MonitorInterval >= 0 {
		interval := cfg.MonitorInterval
		if interval == 0 {
			interval = time.Second
		}
		// With the watchdog refreshing the probe report every tick, the
		// HTTP readiness routes serve that cached report instead of
		// probing dependencies per request; two intervals of slack keeps
		// them current across a late tick. Manual-tick setups (interval
		// < 0) leave the TTL at zero so readiness probes on demand.
		prober.SetCacheTTL(2 * interval)
		wd.Start(interval)
	}
}

// fabricLedgerHealth folds per-channel submit-path results into one
// worst-state health. The readiness contract is "degrade, don't lie":
// any failing channel means some slice of record keys cannot commit,
// so the platform is at best Degraded; it is Down only when no channel
// can endorse at all.
func fabricLedgerHealth(health map[string]error) monitor.Health {
	var failing []string
	for name, err := range health {
		if err != nil {
			failing = append(failing, name)
		}
	}
	sort.Strings(failing)
	switch {
	case len(failing) == 0:
		return monitor.Healthy(fmt.Sprintf("%d channel(s) endorsing", len(health)))
	case len(failing) < len(health):
		return monitor.Degraded(fmt.Sprintf("%d/%d channel(s) failing submit path: %s",
			len(failing), len(health), strings.Join(failing, ", ")))
	default:
		return monitor.Down("all channels failing submit path: " + strings.Join(failing, ", "))
	}
}

// fabricLeaderHealth is the same worst-state fold for ordering
// leadership: a channel without a settled leader stalls its keys'
// commits (writes block until Raft re-elects), so it degrades
// readiness without taking the healthy channels down with it.
func fabricLeaderHealth(leaders map[string]string) monitor.Health {
	var missing []string
	for name, id := range leaders {
		if id == "" {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	switch {
	case len(missing) == 0:
		return monitor.Healthy(fmt.Sprintf("leaders settled on %d channel(s)", len(leaders)))
	case len(missing) < len(leaders):
		return monitor.Degraded("no settled leader on: " + strings.Join(missing, ", "))
	default:
		return monitor.Down("no settled leader on any channel")
	}
}

// Close stops background machinery. Order matters: the pipeline first
// (its Close flushes any group-commit batcher so in-flight provenance
// events are acked), then the batcher, then the bus and the network,
// and the durable logs last — everything upstream has drained by then,
// so their final fsync + close seals a complete image on disk.
func (p *Platform) Close() {
	p.Monitor.Watchdog().Stop()
	p.Ingest.Close()
	if p.ShardLake != nil {
		p.ShardLake.Close()
	}
	if p.LedgerBatcher != nil {
		p.LedgerBatcher.Close()
	}
	p.Bus.Close()
	if p.MultiChain != nil {
		// Owns every channel's batcher, network, and WAL; p.Provenance
		// aliases channel 0, so it must not be closed separately.
		p.MultiChain.Close()
	} else if p.Provenance != nil {
		p.Provenance.Close()
	}
	for _, log := range p.LakeLogs {
		log.Close()
	}
	if p.LedgerWAL != nil {
		p.LedgerWAL.Close()
	}
}

// ProvisionTrustedInstance racks a host, boots the platform VM from a
// signed image, attests the chain, and returns the host/VM names — the
// "trusted secure health cloud instances" of §II-A.
func (p *Platform) ProvisionTrustedInstance(signer hckrypto.Signer) (hostName, vmID string, err error) {
	p.AttSvc.ApproveImageSigner(signer.Verifier())
	img, err := cloud.NewImage("healthcloud-platform", []byte("platform-os-v1"), signer)
	if err != nil {
		return "", "", err
	}
	if err := p.Cloud.Registry().Register(img); err != nil {
		return "", "", err
	}
	hostName = p.cfg.Tenant + "-host-1"
	if _, err := p.Cloud.ProvisionHost(hostName, 8); err != nil {
		return "", "", err
	}
	vmID = "platform-vm"
	if _, err := p.Cloud.LaunchVM(hostName, vmID, "healthcloud-platform"); err != nil {
		return "", "", err
	}
	if err := p.Cloud.AttestVM(hostName, vmID); err != nil {
		return "", "", fmt.Errorf("core: instance failed attestation: %w", err)
	}
	return hostName, vmID, nil
}

// clientServer adapts the platform to the enhanced-client SDK surface.
type clientServer struct{ p *Platform }

var _ client.Server = (*clientServer)(nil)

func (s *clientServer) Upload(clientID, group string, encrypted []byte) (string, error) {
	// Uploads are bulk-class: first to be refused when the tenant is over
	// quota or the ingest backlog crosses the shed line. A nil controller
	// (admission off) admits unconditionally.
	if d := s.p.Admission.Admit(s.p.cfg.Tenant, admission.ClassBulk); !d.Allowed {
		return "", d.Err()
	}
	id, err := s.p.Ingest.Upload(clientID, group, encrypted)
	if err == nil {
		s.p.Meter.Record(s.p.cfg.Tenant, "ingest", 1, time.Now())
	}
	return id, err
}

func (s *clientServer) FetchKB(key string) ([]byte, error) {
	v, err := s.p.KBCache.Get(key)
	if err == nil {
		s.p.Meter.Record(s.p.cfg.Tenant, "kb-read", 1, time.Now())
	}
	return v, err
}

func (s *clientServer) PullModel(name string) ([]byte, error) {
	payload, err := s.p.Analytics.PushPayload(name)
	if err == nil {
		s.p.Meter.Record(s.p.cfg.Tenant, "model-run", 1, time.Now())
	}
	return payload, err
}

// ClientServer returns the surface enhanced clients talk to.
func (p *Platform) ClientServer() client.Server { return &clientServer{p: p} }

// NewEnhancedClient registers a device and returns a ready SDK client.
func (p *Platform) NewEnhancedClient(deviceID string, cacheSize int) (*client.Client, error) {
	key, err := p.Ingest.RegisterClient(deviceID)
	if err != nil {
		return nil, err
	}
	return client.New(deviceID, key, p.ClientServer(), cacheSize)
}

// SeedDemoProviders registers simulated external AI services (§III) and
// runs the standard accuracy tests so Best has data. Used by
// cmd/healthcloud and tests.
func (p *Platform) SeedDemoProviders() {
	providers := []*services.Provider{
		services.NewProvider("nlu-alpha", services.CapNLU, 12*time.Millisecond, 4*time.Millisecond, 0.99, 0.82, 11),
		services.NewProvider("nlu-beta", services.CapNLU, 45*time.Millisecond, 10*time.Millisecond, 0.995, 0.95, 12),
		services.NewProvider("nlu-gamma", services.CapNLU, 9*time.Millisecond, 2*time.Millisecond, 0.90, 0.88, 13),
		services.NewProvider("textract-alpha", services.CapTextExtraction, 30*time.Millisecond, 5*time.Millisecond, 0.99, 0.91, 14),
		services.NewProvider("textract-beta", services.CapTextExtraction, 22*time.Millisecond, 5*time.Millisecond, 0.97, 0.86, 15),
	}
	for _, pr := range providers {
		p.Services.Register(pr)
	}
	for _, c := range []services.Capability{services.CapNLU, services.CapTextExtraction} {
		for _, name := range p.Services.Providers(c) {
			for i := 0; i < 50; i++ {
				p.Services.Call(name, c)
			}
		}
		p.Services.RunAccuracyTest(c, 100)
	}
}

// MineFacts runs PubMed-style text extraction over a synthetic corpus
// derived from the knowledge base and returns co-occurrence facts with
// at least minSupport supporting papers (§III: "We perform text analysis
// on these papers to extract important scientific facts").
func (p *Platform) MineFacts(papers, minSupport int) []kb.Fact {
	corpus := kb.GenerateCorpus(p.KB, papers, 17)
	return corpus.MineFacts(minSupport)
}

// InvalidateKB drops a knowledge-base key from the server tier and
// broadcasts the invalidation to every subscribed cache (enhanced
// clients included), closing the stale-read window for changed data.
func (p *Platform) InvalidateKB(key string) error {
	p.KBCache.Invalidate(key)
	return p.Invalidations.Publish(key)
}

// AttachInvalidationListener subscribes an enhanced client's cache to
// the platform's invalidation stream. Callers Stop the listener when the
// device disconnects.
func (p *Platform) AttachInvalidationListener(dev *client.Client, name string) (*hccache.Listener, error) {
	return hccache.NewListener(p.Bus, name, func(key string) { dev.InvalidateKey(key) })
}

// Components lists every named component of Figures 1–3 that this
// instance actually instantiates, sorted. TestFigure1ComponentInventory
// asserts the inventory.
func (p *Platform) Components() []string {
	out := []string{
		"analytics-platform",
		"api-management",
		"attestation-service",
		"audit-log",
		"change-management",
		"consent-management",
		"data-ingestion",
		"data-lake",
		"enhanced-client-management",
		"export-service",
		"federated-identity",
		"image-management",
		"intercloud-gateway-support",
		"internal-messaging",
		"key-management",
		"knowledge-bases",
		"logging-monitoring",
		"malware-filtration",
		"privacy-management-rbac",
		"registration-service",
		"resource-provisioning",
		"service-registry",
		"tpm-vtpm",
	}
	if p.Provenance != nil {
		out = append(out, "provenance-blockchain")
	}
	sort.Strings(out)
	return out
}

// HIPAAControl is one Fig 8 control with its implementing component.
type HIPAAControl struct {
	Pillar    string // administrative | physical | technical | policies
	Name      string
	Component string
}

// HIPAAControls maps Fig 8's four pillars to the platform mechanisms
// that implement them.
func (p *Platform) HIPAAControls() []HIPAAControl {
	return []HIPAAControl{
		{"administrative", "workforce-access-management", "privacy-management-rbac"},
		{"administrative", "security-incident-procedures", "malware-filtration"},
		{"administrative", "change-management", "change-management"},
		{"physical", "device-and-media-controls", "key-management (crypto-shredding)"},
		{"physical", "facility-access(simulated)", "tpm-vtpm measured boot"},
		{"technical", "access-control", "privacy-management-rbac"},
		{"technical", "audit-controls", "audit-log + provenance-blockchain"},
		{"technical", "integrity", "hmac + redactable-signatures"},
		{"technical", "transmission-security", "client-shared-key encryption"},
		{"policies", "documentation", "audit-log change trail"},
		{"policies", "consent", "consent-management"},
	}
}

// SyncConsentProvenance drains pending consent events onto the ledger
// (§IV: "Blockchain enables ... consent provenance as required by GDPR
// and HIPAA"). It returns the number of events committed.
func (p *Platform) SyncConsentProvenance(timeout time.Duration) (int, error) {
	events := p.Consents.Events()
	if p.Provenance == nil || len(events) == 0 {
		return 0, nil
	}
	txs := make([]blockchain.Transaction, 0, len(events))
	for _, e := range events {
		typ := blockchain.EventConsentGranted
		if e.Kind == "revoked" {
			typ = blockchain.EventConsentRevoked
		}
		txs = append(txs, blockchain.NewTransaction(typ, "consent-service", e.Patient,
			nil, map[string]string{"group": e.Group, "purpose": string(e.Purpose)}))
	}
	if p.MultiChain != nil {
		// Route by patient so each patient's consent history stays a
		// totally ordered sequence on one channel.
		if err := p.MultiChain.SubmitBatch(txs, timeout); err != nil {
			return 0, fmt.Errorf("core: consent provenance: %w", err)
		}
		return len(txs), nil
	}
	if err := p.Provenance.SubmitBatch(txs, timeout); err != nil {
		return 0, fmt.Errorf("core: consent provenance: %w", err)
	}
	return len(txs), nil
}

// CheckAccess is the API-management decision: authenticate (caller
// already did), then consult the privacy-management RBAC.
func (p *Platform) CheckAccess(userID string, action rbac.Action, resource string, scope rbac.Scope, env string) error {
	err := p.RBAC.Check(userID, action, resource, scope, env)
	outcome := "allow"
	if err != nil {
		outcome = "deny"
	}
	p.Audit.Record(audit.Event{Level: audit.LevelInfo, Service: "api-mgmt",
		Action: "access-" + outcome, Actor: userID, Resource: resource})
	return err
}
