package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/client"
	"healthcloud/internal/consent"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/fhir"
	"healthcloud/internal/monitor"
	"healthcloud/internal/multichain"
	"healthcloud/internal/telemetry"
)

// TestFabricHealthAggregation pins the worst-state fold behind the
// multi-channel readiness probes: the platform degrades when some
// channels are sick and goes Down only when all are — it never reports
// Healthy over a partial outage, and never reports Down while healthy
// channels can still commit.
func TestFabricHealthAggregation(t *testing.T) {
	boom := errors.New("endorsement refused")
	cases := []struct {
		name   string
		health map[string]error
		want   monitor.ProbeState
	}{
		{"all-healthy", map[string]error{"ch-0": nil, "ch-1": nil, "ch-2": nil}, monitor.StateOK},
		{"one-failing", map[string]error{"ch-0": nil, "ch-1": boom, "ch-2": nil}, monitor.StateDegraded},
		{"all-failing", map[string]error{"ch-0": boom, "ch-1": boom}, monitor.StateDown},
	}
	for _, tc := range cases {
		if got := fabricLedgerHealth(tc.health); got.State != tc.want {
			t.Errorf("fabricLedgerHealth %s = %v (%s), want %v", tc.name, got.State, got.Detail, tc.want)
		}
	}

	leaderCases := []struct {
		name    string
		leaders map[string]string
		want    monitor.ProbeState
	}{
		{"all-settled", map[string]string{"ch-0": "hospital", "ch-1": "hospital"}, monitor.StateOK},
		{"one-unsettled", map[string]string{"ch-0": "hospital", "ch-1": ""}, monitor.StateDegraded},
		{"none-settled", map[string]string{"ch-0": "", "ch-1": ""}, monitor.StateDown},
	}
	for _, tc := range leaderCases {
		if got := fabricLeaderHealth(tc.leaders); got.State != tc.want {
			t.Errorf("fabricLeaderHealth %s = %v (%s), want %v", tc.name, got.State, got.Detail, tc.want)
		}
	}

	// A degraded report must name the sick channel so /statusz is
	// actionable, not just a count.
	if got := fabricLedgerHealth(map[string]error{"ch-0": nil, "ch-1": boom}); got.Detail == "" {
		t.Error("degraded ledger health carries no detail")
	} else if want := "ch-1"; !strings.Contains(got.Detail, want) {
		t.Errorf("degraded detail %q does not name failing channel %s", got.Detail, want)
	}
}

// TestMultiChannelPlatformEndToEnd drives real uploads through a
// Channels=2 platform: ingest routes provenance by patient onto the
// owning channel, consent sync rides the same fabric, the identity
// registry anchors to the partitioned ledger, and the monitor exposes
// the aggregate plus one probe per channel.
func TestMultiChannelPlatformEndToEnd(t *testing.T) {
	p, err := New(Config{
		Tenant:          "mercy-health",
		KBDataset:       smallKB(t),
		LedgerPeers:     []string{"hospital", "audit-svc"},
		Channels:        2,
		Telemetry:       telemetry.New(),
		Monitor:         true,
		MonitorInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.MultiChain == nil {
		t.Fatal("Channels=2 platform has no MultiChain")
	}
	if p.Provenance == nil {
		t.Fatal("channel-0 alias not wired")
	}

	dev, err := p.NewEnhancedClient("device-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	const uploads = 6
	for i := 0; i < uploads; i++ {
		pid := fmt.Sprintf("patient-%02d", i)
		p.Consents.Grant(pid, "study-1", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "other"})
		if _, err := dev.Capture(b, "study-1", client.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range dev.Uploads() {
		st, err := p.Ingest.WaitForUpload(id, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "stored" {
			t.Fatalf("status = %+v", st)
		}
	}
	if got := p.MultiChain.TxCount(); got != uploads {
		t.Errorf("fabric tx count = %d, want %d", got, uploads)
	}
	if err := p.MultiChain.VerifyAll(); err != nil {
		t.Errorf("VerifyAll: %v", err)
	}

	// Consent provenance routes through the fabric too.
	n, err := p.SyncConsentProvenance(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != uploads {
		t.Errorf("consent sync = %d events, want %d", n, uploads)
	}
	if got := p.MultiChain.TxCount(); got != 2*uploads {
		t.Errorf("fabric tx count after consent sync = %d, want %d", got, 2*uploads)
	}

	// The auditor reconstructs each patient's trail even though the
	// records live on different channels.
	for i := 0; i < uploads; i++ {
		pid := fmt.Sprintf("patient-%02d", i)
		trail := p.MultiChain.ProvenanceTrail(pid)
		if len(trail) == 0 {
			t.Errorf("no provenance trail for %s", pid)
		}
	}

	rep := p.Monitor.Prober().Probe()
	for _, name := range []string{"provenance-ledger", "consensus-leader",
		"provenance-ledger/" + multichain.ChannelName(0),
		"provenance-ledger/" + multichain.ChannelName(1)} {
		if _, ok := rep.Components[name]; !ok {
			t.Errorf("probe %q missing: %v", name, rep.Components)
		}
	}
	if !rep.Ready {
		t.Errorf("healthy multi-channel platform not ready: %+v", rep)
	}
}

// TestMultiChannelFaultFlipsReadiness pins the honest half of the
// readiness contract end to end: when the submit path is broken the
// aggregate ledger probe goes Down and /readyz flips, instead of
// serving a green report over a fabric that cannot commit.
func TestMultiChannelFaultFlipsReadiness(t *testing.T) {
	faults := faultinject.NewRegistry(1)
	p, err := New(Config{
		Tenant:          "mercy-health",
		KBDataset:       smallKB(t),
		LedgerPeers:     []string{"hospital", "audit-svc"},
		Channels:        2,
		Faults:          faults,
		Telemetry:       telemetry.New(),
		Monitor:         true,
		MonitorInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	faults.Enable(blockchain.FaultSubmit, faultinject.Fault{ErrorRate: 1})
	rep := p.Monitor.Prober().Probe()
	if h := rep.Components["provenance-ledger"]; h.State != monitor.StateDown {
		t.Errorf("ledger probe under total fault = %v (%s), want Down", h.State, h.Detail)
	}
	for i := 0; i < 2; i++ {
		name := "provenance-ledger/" + multichain.ChannelName(i)
		if h := rep.Components[name]; h.State != monitor.StateDegraded {
			t.Errorf("%s under fault = %v, want Degraded (aggregate owns Down)", name, h.State)
		}
	}
	if rep.Ready {
		t.Error("platform ready while no channel can commit")
	}

	faults.Disable(blockchain.FaultSubmit)
	// Readiness also needs the ordering clusters' first elections to have
	// settled, which races a freshly built platform — poll with a
	// deadline instead of asserting on one instant.
	deadline := time.Now().Add(5 * time.Second)
	rep = p.Monitor.Prober().Probe()
	for !rep.Ready && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		rep = p.Monitor.Prober().Probe()
	}
	if h := rep.Components["provenance-ledger"]; h.State != monitor.StateOK {
		t.Errorf("ledger probe after fault cleared = %v (%s)", h.State, h.Detail)
	}
	if !rep.Ready {
		t.Errorf("platform not ready after fault cleared: %+v", rep)
	}
}

// TestMultiChannelRestartReplaysState is the fabric-wide crash-recovery
// contract: a Channels=2 platform with a DataDir commits traffic, shuts
// down, and a rebuilt platform replays every channel's WAL (through the
// latest world-state snapshot where one exists) to identical per-channel
// state hashes — then keeps accepting writes.
func TestMultiChannelRestartReplaysState(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Tenant:              "mercy-health",
		KBDataset:           smallKB(t),
		LedgerPeers:         []string{"hospital", "audit-svc"},
		Channels:            2,
		DataDir:             dir,
		LedgerSnapshotEvery: 3,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const records = 10
	for i := 0; i < records; i++ {
		tx := blockchain.NewTransaction(blockchain.EventDataReceipt, "ingest",
			fmt.Sprintf("patient-%02d", i), nil, nil)
		if err := p.MultiChain.Submit(tx, 10*time.Second); err != nil {
			p.Close()
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	hashes := p.MultiChain.StateHashes()
	p.Close()

	re, err := New(cfg)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	defer re.Close()
	replayed := re.MultiChain.StateHashes()
	if len(replayed) != len(hashes) {
		t.Fatalf("replayed %d channels, want %d", len(replayed), len(hashes))
	}
	for name, want := range hashes {
		if got := replayed[name]; got != want {
			t.Errorf("channel %s state hash diverged across restart:\n got %s\nwant %s", name, got, want)
		}
	}
	if got := re.MultiChain.TxCount(); got != records {
		t.Errorf("tx count after restart = %d, want %d", got, records)
	}
	if err := re.MultiChain.VerifyAll(); err != nil {
		t.Errorf("VerifyAll after restart: %v", err)
	}
	// The recovered fabric still takes writes.
	tx := blockchain.NewTransaction(blockchain.EventSecureDeletion, "ingest", "patient-00", nil, nil)
	if err := re.MultiChain.Submit(tx, 10*time.Second); err != nil {
		t.Fatalf("post-restart submit: %v", err)
	}
}
