package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"healthcloud/internal/analytics"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/client"
	"healthcloud/internal/consent"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/kb"
	"healthcloud/internal/rbac"
	"healthcloud/internal/services"
	"healthcloud/internal/shardlake"
	"healthcloud/internal/ssi"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// smallKB keeps platform construction fast in tests.
func smallKB(t *testing.T) *kb.Dataset {
	t.Helper()
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 30, 20
	d, err := kb.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newPlatform(t *testing.T, ledger bool) *Platform {
	t.Helper()
	cfg := Config{Tenant: "mercy-health", KBDataset: smallKB(t)}
	if ledger {
		cfg.LedgerPeers = []string{"hospital", "audit-svc", "data-protection"}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty tenant accepted")
	}
}

// TestMonitorWithDrugLessDataset pins that a caller-supplied dataset
// with no drugs (kb.Generate always plants some; a hand-built Dataset
// need not) degrades to "no kb-remote probe" instead of panicking in
// core.New when monitoring is on.
func TestMonitorWithDrugLessDataset(t *testing.T) {
	dataset := smallKB(t)
	dataset.DrugIDs = nil
	p, err := New(Config{
		Tenant:          "mercy-health",
		KBDataset:       dataset,
		Telemetry:       telemetry.New(),
		Monitor:         true,
		MonitorInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep := p.Monitor.Prober().Probe()
	if _, ok := rep.Components["kb-remote"]; ok {
		t.Error("kb-remote probe registered with nothing to fetch")
	}
	if _, ok := rep.Components["data-lake"]; !ok {
		t.Errorf("remaining probes missing: %+v", rep)
	}
}

// TestWatchdogTicksNeverGrowLedger pins the probe contract end to end:
// monitoring rounds (and therefore unauthenticated /readyz traffic)
// must not commit transactions to the audit-grade provenance ledger.
func TestWatchdogTicksNeverGrowLedger(t *testing.T) {
	p, err := New(Config{
		Tenant:          "mercy-health",
		KBDataset:       smallKB(t),
		LedgerPeers:     []string{"hospital", "audit-svc", "data-protection"},
		Telemetry:       telemetry.New(),
		Monitor:         true,
		MonitorInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	peer, err := p.Provenance.Peer("audit-svc")
	if err != nil {
		t.Fatal(err)
	}
	before := peer.Ledger().TxCount()
	for i := 0; i < 5; i++ {
		p.Monitor.Watchdog().Tick()
	}
	if got := peer.Ledger().TxCount(); got != before {
		t.Errorf("ledger grew from %d to %d txs across 5 watchdog ticks; probes must be side-effect free", before, got)
	}
}

func TestComponentInventoryFigure1(t *testing.T) {
	p := newPlatform(t, true)
	got := p.Components()
	// Every key element named in Figs 1-3 must be present.
	want := []string{
		"analytics-platform", "attestation-service", "change-management",
		"consent-management", "data-ingestion", "data-lake",
		"federated-identity", "image-management", "internal-messaging",
		"key-management", "logging-monitoring", "privacy-management-rbac",
		"provenance-blockchain", "registration-service",
		"resource-provisioning", "tpm-vtpm",
	}
	have := make(map[string]bool, len(got))
	for _, c := range got {
		have[c] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("component %q missing from inventory", w)
		}
	}
	// Without a ledger the blockchain is absent, everything else remains.
	p2 := newPlatform(t, false)
	for _, c := range p2.Components() {
		if c == "provenance-blockchain" {
			t.Error("ledger-less platform claims a blockchain")
		}
	}
}

func TestHIPAAControlsFigure8(t *testing.T) {
	p := newPlatform(t, false)
	controls := p.HIPAAControls()
	pillars := map[string]int{}
	for _, c := range controls {
		pillars[c.Pillar]++
		if c.Component == "" {
			t.Errorf("control %q has no implementing component", c.Name)
		}
	}
	// Fig 8's four pillars all have mapped controls.
	for _, pillar := range []string{"administrative", "physical", "technical", "policies"} {
		if pillars[pillar] == 0 {
			t.Errorf("pillar %q has no controls", pillar)
		}
	}
}

func TestProvisionTrustedInstance(t *testing.T) {
	p := newPlatform(t, false)
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	host, vm, err := p.ProvisionTrustedInstance(signer)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cloud.AttestVM(host, vm); err != nil {
		t.Errorf("instance not re-attestable: %v", err)
	}
	// A compromised platform VM stops attesting.
	vmObj, err := p.Cloud.VM(host, vm)
	if err != nil {
		t.Fatal(err)
	}
	vmObj.CompromiseVM()
	if err := p.Cloud.AttestVM(host, vm); err == nil {
		t.Error("compromised platform VM still attests")
	}
}

// TestEndToEndThroughPlatform drives device → ingest → lake → export via
// the composed platform with a live blockchain.
func TestEndToEndThroughPlatform(t *testing.T) {
	p := newPlatform(t, true)
	dev, err := p.NewEnhancedClient("device-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	p.Consents.Grant("patient-1", "study-1", consent.PurposeResearch, 0)

	b := fhir.NewBundle("collection")
	b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: "patient-1",
		Name: []fhir.HumanName{{Family: "Doe"}}, Gender: "female",
		Address: []fhir.Address{{State: "NY", PostalCode: "10598"}}})
	b.AddResource(&fhir.Observation{ResourceType: "Observation", Status: "final",
		Code: fhir.CodeableConcept{Text: "HbA1c"}, ValueQuantity: &fhir.Quantity{Value: 7.1}})

	if _, err := dev.Capture(b, "study-1", client.Options{}); err != nil {
		t.Fatal(err)
	}
	st, err := p.Ingest.WaitForUpload(dev.Uploads()[0], 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "stored" {
		t.Fatalf("status = %+v", st)
	}
	// Provenance on the real ledger.
	peer, err := p.Provenance.Peer("audit-svc")
	if err != nil {
		t.Fatal(err)
	}
	trail := peer.Ledger().ProvenanceTrail(st.RefID)
	if len(trail) != 1 || trail[0].Type != blockchain.EventDataReceipt {
		t.Errorf("trail = %+v", trail)
	}
	if err := peer.Ledger().VerifyChain(); err != nil {
		t.Errorf("ledger chain: %v", err)
	}
}

func TestConsentProvenanceSync(t *testing.T) {
	p := newPlatform(t, true)
	p.Consents.Grant("patient-1", "study-1", consent.PurposeResearch, 0)
	p.Consents.Revoke("patient-1", "study-1", consent.PurposeResearch)
	n, err := p.SyncConsentProvenance(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("synced %d events", n)
	}
	peer, _ := p.Provenance.Peer("hospital")
	granted := peer.Ledger().Audit(blockchain.AuditQuery{Type: blockchain.EventConsentGranted})
	revoked := peer.Ledger().Audit(blockchain.AuditQuery{Type: blockchain.EventConsentRevoked})
	if len(granted) != 1 || len(revoked) != 1 {
		t.Errorf("granted=%d revoked=%d", len(granted), len(revoked))
	}
	// Idempotent drain.
	if n, _ := p.SyncConsentProvenance(time.Second); n != 0 {
		t.Errorf("second sync = %d", n)
	}
	// Ledger-less platform is a no-op.
	p2 := newPlatform(t, false)
	p2.Consents.Grant("p", "g", consent.PurposeResearch, 0)
	if n, err := p2.SyncConsentProvenance(time.Second); err != nil || n != 0 {
		t.Errorf("no-ledger sync = %d, %v", n, err)
	}
}

func TestCheckAccessAudited(t *testing.T) {
	p := newPlatform(t, false)
	scope := rbac.Scope{Tenant: "mercy-health"}
	p.RBAC.RegisterUser("mercy-health", "analyst-1")
	p.RBAC.AssignRole("analyst-1", rbac.RoleAnalyst, scope, "")
	if err := p.CheckAccess("analyst-1", rbac.ActionRead, "deid", scope, ""); err != nil {
		t.Errorf("analyst read deid: %v", err)
	}
	if err := p.CheckAccess("analyst-1", rbac.ActionRead, "phi", scope, ""); !errors.Is(err, rbac.ErrDenied) {
		t.Errorf("analyst read phi: %v", err)
	}
	// Both decisions landed in the audit log.
	if got := p.Audit.Find(audit.Query{Action: "access-allow", Actor: "analyst-1"}); len(got) != 1 {
		t.Errorf("allow events = %d", len(got))
	}
	if got := p.Audit.Find(audit.Query{Action: "access-deny", Actor: "analyst-1"}); len(got) != 1 {
		t.Errorf("deny events = %d", len(got))
	}
}

func TestKBThroughServerCache(t *testing.T) {
	p := newPlatform(t, false)
	key := "drug:" + p.KB.DrugIDs[0]
	for i := 0; i < 10; i++ {
		if _, err := p.KBCache.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if p.KBRemote.Calls() != 1 {
		t.Errorf("remote calls = %d, want 1", p.KBRemote.Calls())
	}
}

func TestModelPushRequiresDeployment(t *testing.T) {
	p := newPlatform(t, false)
	dev, err := p.NewEnhancedClient("device-1", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.InstallModel("hba1c"); err == nil {
		t.Error("undeployed model installable")
	}
	// Walk a model through the lifecycle, then install.
	m := &analytics.LinearModel{Name: "hba1c", Bias: 6}
	payload, _ := m.Marshal()
	p.Analytics.Create("hba1c", nil)
	p.Analytics.MarkTrained("hba1c", 1, payload)
	p.Analytics.RecordTest("hba1c", 1, map[string]float64{"auc": 0.9}, "auc", 0.5)
	p.Analytics.Approve("hba1c", 1, "compliance")
	p.Analytics.Deploy("hba1c", 1)
	if err := dev.InstallModel("hba1c"); err != nil {
		t.Errorf("deployed model not installable: %v", err)
	}
	got, err := dev.Predict("hba1c", nil)
	if err != nil || got != 6 {
		t.Errorf("Predict = %f, %v", got, err)
	}
}

// TestKBInvalidationReachesClient is the cache-consistency weave: a KB
// update invalidates the server tier and pushes the invalidation down to
// enhanced clients, whose next read refetches from the origin.
func TestKBInvalidationReachesClient(t *testing.T) {
	p := newPlatform(t, false)
	dev, err := p.NewEnhancedClient("device-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	listener, err := p.AttachInvalidationListener(dev, "device-1-cache")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(listener.Stop)

	key := "drug:" + p.KB.DrugIDs[0]
	if _, err := dev.QueryKB(key); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.QueryKB(key); err != nil {
		t.Fatal(err)
	}
	callsBefore := p.KBRemote.Calls()
	if callsBefore != 1 {
		t.Fatalf("remote calls before invalidation = %d, want 1", callsBefore)
	}
	if err := p.InvalidateKB(key); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for listener.Applied() < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if listener.Applied() < 1 {
		t.Fatal("invalidation never reached the client")
	}
	// The next read misses both tiers and refetches.
	if _, err := dev.QueryKB(key); err != nil {
		t.Fatal(err)
	}
	if got := p.KBRemote.Calls(); got != callsBefore+1 {
		t.Errorf("remote calls after invalidation = %d, want %d", got, callsBefore+1)
	}
}

// TestSSIThroughPlatformLedger drives the self-sovereign identity flow
// against the platform's real provenance network.
func TestSSIThroughPlatformLedger(t *testing.T) {
	p := newPlatform(t, true)
	if p.Identity == nil {
		t.Fatal("ledger-enabled platform has no identity registry")
	}
	wallet, err := ssi.NewWallet()
	if err != nil {
		t.Fatal(err)
	}
	issuer, err := ssi.NewIssuer("state-authority")
	if err != nil {
		t.Fatal(err)
	}
	cred, err := issuer.Issue(wallet.Commitment(), map[string]string{"role": "clinician"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Identity.Anchor(cred, issuer.Name(), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	v := ssi.NewVerifier("portal", issuer.VerifyKey(), p.Identity)
	nym, proofKey := wallet.RegisterProofKey("portal")
	v.Enroll(nym, proofKey)
	nonce := v.Challenge(nym)
	pres, err := wallet.Present(cred, "portal", nonce, []string{"role"})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := v.Verify(pres)
	if err != nil {
		t.Fatalf("Verify over platform ledger: %v", err)
	}
	if attrs["role"] != "clinician" {
		t.Errorf("attrs = %v", attrs)
	}
	// The identity event is auditable on every peer, PII-free.
	for _, id := range p.Provenance.PeerIDs() {
		peer, _ := p.Provenance.Peer(id)
		regs := peer.Ledger().Audit(blockchain.AuditQuery{Type: blockchain.EventIdentityRegister})
		if len(regs) != 1 {
			t.Errorf("peer %s: %d identity registrations", id, len(regs))
		}
	}
}

// TestLedgerLessPlatformHasNoIdentity confirms the registry is absent
// when the blockchain is disabled.
func TestLedgerLessPlatformHasNoIdentity(t *testing.T) {
	p := newPlatform(t, false)
	if p.Identity != nil {
		t.Error("ledger-less platform has an identity registry")
	}
}

func TestSeedDemoProvidersAndMineFacts(t *testing.T) {
	p := newPlatform(t, false)
	p.SeedDemoProviders()
	nlu := p.Services.Providers("nlu")
	if len(nlu) != 3 {
		t.Fatalf("nlu providers = %v", nlu)
	}
	best, err := p.Services.Best("nlu", services.Criteria{WAccuracy: 1})
	if err != nil {
		t.Fatalf("Best: %v", err)
	}
	if best != "nlu-beta" { // the slow-but-accurate provider
		t.Errorf("accuracy-best = %q, want nlu-beta", best)
	}
	facts := p.MineFacts(100, 1)
	if len(facts) == 0 {
		t.Error("no facts mined from the corpus")
	}
}

// TestLedgerBatchPlatform drives uploads through a platform with
// group-commit provenance batching enabled and verifies per-upload
// semantics survive: every upload stores, every provenance event lands
// on the ledger exactly once, and Close drains cleanly.
func TestLedgerBatchPlatform(t *testing.T) {
	cfg := Config{Tenant: "mercy-health", KBDataset: smallKB(t),
		LedgerPeers: []string{"hospital", "audit-svc", "data-protection"},
		LedgerBatch: true, IngestWorkers: 8}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	if p.LedgerBatcher == nil {
		t.Fatal("LedgerBatch config did not wire a batcher")
	}
	dev, err := p.NewEnhancedClient("device-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	const uploads = 8
	for i := 0; i < uploads; i++ {
		pid := fmt.Sprintf("patient-%d", i)
		p.Consents.Grant(pid, "study-1", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "other"})
		if _, err := dev.Capture(b, "study-1", client.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range dev.Uploads() {
		st, err := p.Ingest.WaitForUpload(id, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "stored" {
			t.Fatalf("status = %+v", st)
		}
	}
	peer, err := p.Provenance.Peer("audit-svc")
	if err != nil {
		t.Fatal(err)
	}
	if got := peer.Ledger().TxCount(); got != uploads {
		t.Errorf("ledger tx count = %d, want %d", got, uploads)
	}
	if err := peer.Ledger().VerifyChain(); err != nil {
		t.Errorf("ledger chain: %v", err)
	}
	if st := p.LedgerBatcher.Stats(); st.Txs < uploads {
		t.Errorf("batcher txs = %d, want >= %d", st.Txs, uploads)
	}
}

// TestShardedPlatformEndToEnd runs a real upload through a platform
// built with Shards=3/Replicas=2 and checks the sharded wiring end to
// end: ingest stores through the consistent-hash lake, every object
// lands on exactly two shards, and the monitor exposes both the
// cluster probe and one probe per shard.
func TestShardedPlatformEndToEnd(t *testing.T) {
	p, err := New(Config{
		Tenant:          "mercy-health",
		KBDataset:       smallKB(t),
		Telemetry:       telemetry.New(),
		Monitor:         true,
		MonitorInterval: -1,
		Shards:          3,
		Replicas:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.ShardLake == nil {
		t.Fatal("Shards=3 platform has no ShardLake")
	}

	dev, err := p.NewEnhancedClient("device-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	p.Consents.Grant("patient-1", "study-1", consent.PurposeResearch, 0)
	b := fhir.NewBundle("collection")
	b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: "patient-1",
		Name: []fhir.HumanName{{Family: "Doe"}}, Gender: "female",
		Address: []fhir.Address{{State: "NY", PostalCode: "10598"}}})
	if _, err := dev.Capture(b, "study-1", client.Options{}); err != nil {
		t.Fatal(err)
	}
	st, err := p.Ingest.WaitForUpload(dev.Uploads()[0], 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "stored" {
		t.Fatalf("status = %+v", st)
	}
	if _, err := p.Lake.Get(st.RefID, "svc-storage"); err != nil {
		t.Fatalf("stored record unreadable through sharded lake: %v", err)
	}

	// Replication held: the cluster converged with every object on
	// exactly R shards.
	objects, divergent := p.ShardLake.VerifyConvergence()
	if objects == 0 || len(divergent) != 0 {
		t.Errorf("convergence: %d objects, divergent %v", objects, divergent)
	}

	rep := p.Monitor.Prober().Probe()
	if _, ok := rep.Components["data-lake"]; !ok {
		t.Errorf("cluster probe missing: %v", rep.Components)
	}
	for i := 0; i < 3; i++ {
		name := "data-lake/" + shardlake.ShardName(i)
		if _, ok := rep.Components[name]; !ok {
			t.Errorf("per-shard probe %q missing: %v", name, rep.Components)
		}
	}
	if !rep.Ready {
		t.Errorf("healthy sharded platform not ready: %+v", rep)
	}
}

// TestUnshardedConfigKeepsSingleLake pins the compatibility contract:
// Shards<=1 wires the same single DataLake as before this subsystem
// existed — no ring, no replication layer.
func TestUnshardedConfigKeepsSingleLake(t *testing.T) {
	p := newPlatform(t, false)
	if p.ShardLake != nil {
		t.Error("default config built a ShardLake")
	}
	if _, ok := p.Lake.(*store.DataLake); !ok {
		t.Errorf("default config Lake is %T, want *store.DataLake", p.Lake)
	}
}
