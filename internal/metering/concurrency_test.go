package metering

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestMeterConcurrentRecording drives 16 workers recording usage for 4
// tenants while bills and quota lookups run against the same meter, then
// checks exact per-tenant aggregation: every worker's contribution must
// land on its tenant's bill, once, regardless of interleaving. Run under
// -race this is the meter's thread-safety proof; run plainly it is the
// conservation proof.
func TestMeterConcurrentRecording(t *testing.T) {
	const workers, perWorker = 16, 500
	tenants := []string{"tenant-a", "tenant-b", "tenant-c", "tenant-d"}
	m := NewMeter(DefaultRates())
	t0 := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := tenants[w%len(tenants)]
			for i := 0; i < perWorker; i++ {
				// Alternate services so aggregation is per (tenant, service),
				// not just per tenant.
				svc, qty := "ingest", 1.0
				if i%2 == 1 {
					svc, qty = "kb-read", 3.0
				}
				if err := m.Record(tenant, svc, qty, t0); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Readers race the writers: bills, tenant listings, and the
	// admission hot path's quota lookups must all be safe mid-recording.
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tenant := tenants[r%len(tenants)]
				b := m.BillFor(tenant, t0.Add(-time.Hour), t0.Add(time.Hour))
				if b.TotalCents < 0 {
					t.Errorf("negative bill mid-run: %v", b.TotalCents)
					return
				}
				m.QuotaFor(tenant)
				m.SetQuota(tenant, Quota{PerSec: float64(r + 1)})
				m.Tenants()
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Each tenant got workers/4 writers x perWorker events, half ingest
	// (qty 1), half kb-read (qty 3).
	perTenant := workers / len(tenants) * perWorker
	for _, tenant := range tenants {
		b := m.BillFor(tenant, t0.Add(-time.Hour), t0.Add(time.Hour))
		got := map[string]float64{}
		for _, line := range b.Lines {
			got[line.Service] = line.Quantity
		}
		if want := float64(perTenant / 2); got["ingest"] != want {
			t.Errorf("%s: ingest quantity = %v, want %v", tenant, got["ingest"], want)
		}
		if want := float64(perTenant/2) * 3; got["kb-read"] != want {
			t.Errorf("%s: kb-read quantity = %v, want %v", tenant, got["kb-read"], want)
		}
		wantCents := float64(perTenant/2)*2.0 + float64(perTenant/2)*3*0.01
		if diff := b.TotalCents - wantCents; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: total = %v cents, want %v", tenant, b.TotalCents, wantCents)
		}
	}
	if got := len(m.Tenants()); got != len(tenants) {
		t.Errorf("tenants = %d, want %d", got, len(tenants))
	}
}

// TestQuotaConcurrentUpdates races SetQuota (including deletions)
// against QuotaFor across 16 goroutines and checks the invariants the
// admission layer relies on: a returned quota is always one that some
// writer actually set (burst defaulting included), never a torn value.
func TestQuotaConcurrentUpdates(t *testing.T) {
	const workers = 16
	const rounds = 2000
	m := NewMeter(DefaultRates())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w%4)
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					m.SetQuota(tenant, Quota{PerSec: float64(1 + i%7)})
				case 1:
					m.SetQuota(tenant, Quota{}) // delete
				default:
					q, ok := m.QuotaFor(tenant)
					if !ok {
						continue
					}
					if q.PerSec < 1 || q.PerSec > 7 {
						t.Errorf("torn quota rate: %+v", q)
						return
					}
					if q.Burst != 2*q.PerSec {
						t.Errorf("burst default not applied: %+v", q)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestQuotaBurstFloor pins the defaulting rule on the write path: a
// burst below the sustained rate is replaced with 2x the rate, and an
// explicit burst above it is kept.
func TestQuotaBurstFloor(t *testing.T) {
	m := NewMeter(DefaultRates())
	m.SetQuota("t", Quota{PerSec: 10, Burst: 3})
	if q, _ := m.QuotaFor("t"); q.Burst != 20 {
		t.Errorf("sub-rate burst kept: %+v", q)
	}
	m.SetQuota("t", Quota{PerSec: 10, Burst: 50})
	if q, _ := m.QuotaFor("t"); q.Burst != 50 {
		t.Errorf("explicit burst lost: %+v", q)
	}
	m.SetQuota("t", Quota{})
	if _, ok := m.QuotaFor("t"); ok {
		t.Error("deletion did not drop the quota")
	}
}
