// Package metering implements the tenant metering and billing the
// Registration Service exists for (§II-B: "The platform supports an idea
// of tenant, which is equivalent to an account at an enterprise level
// for metering and billing of various services."). Services record
// usage events; bills aggregate them per tenant against a rate card.
package metering

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Usage is one metered event.
type Usage struct {
	Tenant   string
	Service  string // e.g. "ingest", "export", "kb-read", "model-run"
	Quantity float64
	At       time.Time
}

// RateCard maps service names to price per unit (in cents).
type RateCard map[string]float64

// DefaultRates is the demo rate card.
func DefaultRates() RateCard {
	return RateCard{
		"ingest":    2.0,  // per bundle
		"export":    5.0,  // per record
		"kb-read":   0.01, // per read
		"model-run": 0.5,  // per prediction
		"ledger-tx": 0.1,  // per provenance event
	}
}

// Errors returned by this package.
var (
	ErrUnknownService = errors.New("metering: service not on the rate card")
	ErrBadQuantity    = errors.New("metering: quantity must be positive")
)

// Quota is a tenant's purchased admission rate: sustained requests per
// second plus the burst the plan tolerates. The admission controller's
// token buckets refill from these, so rate limits track what the tenant
// pays for rather than a platform-wide constant.
type Quota struct {
	PerSec float64 `json:"per_sec"`
	Burst  float64 `json:"burst"`
}

// Meter accumulates usage. Construct with NewMeter.
type Meter struct {
	rates RateCard

	mu     sync.Mutex
	events []Usage

	// Quotas live under their own lock: the admission layer reads them on
	// the request hot path and must never contend with bill aggregation.
	quotaMu sync.RWMutex
	quotas  map[string]Quota
}

// NewMeter creates a meter over a rate card.
func NewMeter(rates RateCard) *Meter {
	rc := make(RateCard, len(rates))
	for k, v := range rates {
		rc[k] = v
	}
	return &Meter{rates: rc, quotas: make(map[string]Quota)}
}

// SetQuota records (or updates) a tenant's admission quota. A
// non-positive PerSec deletes the quota, dropping the tenant back to the
// platform default.
func (m *Meter) SetQuota(tenant string, q Quota) {
	m.quotaMu.Lock()
	defer m.quotaMu.Unlock()
	if q.PerSec <= 0 {
		delete(m.quotas, tenant)
		return
	}
	if q.Burst < q.PerSec {
		q.Burst = 2 * q.PerSec
	}
	m.quotas[tenant] = q
}

// QuotaFor resolves a tenant's admission quota; ok is false when the
// tenant has no metered quota and the caller should use its default.
func (m *Meter) QuotaFor(tenant string) (Quota, bool) {
	m.quotaMu.RLock()
	defer m.quotaMu.RUnlock()
	q, ok := m.quotas[tenant]
	return q, ok
}

// Record adds a usage event. Unknown services are rejected so typos
// cannot silently meter for free.
func (m *Meter) Record(tenant, service string, quantity float64, at time.Time) error {
	if quantity <= 0 {
		return fmt.Errorf("%w: %f", ErrBadQuantity, quantity)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rates[service]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownService, service)
	}
	m.events = append(m.events, Usage{Tenant: tenant, Service: service, Quantity: quantity, At: at.UTC()})
	return nil
}

// LineItem is one service's aggregate on a bill.
type LineItem struct {
	Service   string  `json:"service"`
	Quantity  float64 `json:"quantity"`
	UnitCents float64 `json:"unit_cents"`
	Cents     float64 `json:"cents"`
}

// Bill is a tenant's statement for a period.
type Bill struct {
	Tenant     string     `json:"tenant"`
	From, To   time.Time  `json:"-"`
	Lines      []LineItem `json:"lines"`
	TotalCents float64    `json:"total_cents"`
}

// BillFor aggregates a tenant's usage in [from, to).
func (m *Meter) BillFor(tenant string, from, to time.Time) *Bill {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg := make(map[string]float64)
	for _, e := range m.events {
		if e.Tenant != tenant || e.At.Before(from) || !e.At.Before(to) {
			continue
		}
		agg[e.Service] += e.Quantity
	}
	b := &Bill{Tenant: tenant, From: from, To: to}
	services := make([]string, 0, len(agg))
	for s := range agg {
		services = append(services, s)
	}
	sort.Strings(services)
	for _, s := range services {
		line := LineItem{Service: s, Quantity: agg[s], UnitCents: m.rates[s]}
		line.Cents = line.Quantity * line.UnitCents
		b.Lines = append(b.Lines, line)
		b.TotalCents += line.Cents
	}
	return b
}

// Tenants lists every tenant with recorded usage, sorted.
func (m *Meter) Tenants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := make(map[string]bool)
	for _, e := range m.events {
		set[e.Tenant] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
