package metering

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)

func TestRecordValidation(t *testing.T) {
	m := NewMeter(DefaultRates())
	if err := m.Record("t", "teleportation", 1, t0); !errors.Is(err, ErrUnknownService) {
		t.Errorf("unknown service: %v", err)
	}
	if err := m.Record("t", "ingest", 0, t0); !errors.Is(err, ErrBadQuantity) {
		t.Errorf("zero quantity: %v", err)
	}
	if err := m.Record("t", "ingest", -2, t0); !errors.Is(err, ErrBadQuantity) {
		t.Errorf("negative quantity: %v", err)
	}
}

func TestBillAggregation(t *testing.T) {
	m := NewMeter(DefaultRates())
	m.Record("mercy", "ingest", 10, t0)
	m.Record("mercy", "ingest", 5, t0.Add(time.Hour))
	m.Record("mercy", "kb-read", 1000, t0.Add(2*time.Hour))
	m.Record("mercy", "export", 3, t0.Add(3*time.Hour))
	m.Record("other", "ingest", 99, t0) // different tenant

	b := m.BillFor("mercy", t0, t0.Add(24*time.Hour))
	if len(b.Lines) != 3 {
		t.Fatalf("lines = %+v", b.Lines)
	}
	// Sorted by service: export, ingest, kb-read.
	if b.Lines[0].Service != "export" || b.Lines[1].Service != "ingest" || b.Lines[2].Service != "kb-read" {
		t.Errorf("line order = %+v", b.Lines)
	}
	if b.Lines[1].Quantity != 15 || b.Lines[1].Cents != 30 {
		t.Errorf("ingest line = %+v", b.Lines[1])
	}
	want := 3*5.0 + 15*2.0 + 1000*0.01
	if math.Abs(b.TotalCents-want) > 1e-9 {
		t.Errorf("total = %f, want %f", b.TotalCents, want)
	}
}

func TestBillPeriodBoundaries(t *testing.T) {
	m := NewMeter(DefaultRates())
	m.Record("t", "ingest", 1, t0.Add(-time.Second)) // before window
	m.Record("t", "ingest", 1, t0)                   // inclusive start
	m.Record("t", "ingest", 1, t0.Add(time.Hour))
	m.Record("t", "ingest", 1, t0.Add(24*time.Hour)) // exclusive end
	b := m.BillFor("t", t0, t0.Add(24*time.Hour))
	if len(b.Lines) != 1 || b.Lines[0].Quantity != 2 {
		t.Errorf("bill = %+v", b)
	}
}

func TestEmptyBill(t *testing.T) {
	m := NewMeter(DefaultRates())
	b := m.BillFor("ghost", t0, t0.Add(time.Hour))
	if len(b.Lines) != 0 || b.TotalCents != 0 {
		t.Errorf("empty bill = %+v", b)
	}
}

func TestTenantsListing(t *testing.T) {
	m := NewMeter(DefaultRates())
	m.Record("zeta", "ingest", 1, t0)
	m.Record("alpha", "ingest", 1, t0)
	m.Record("alpha", "export", 1, t0)
	got := m.Tenants()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("tenants = %v", got)
	}
}

func TestConcurrentMetering(t *testing.T) {
	m := NewMeter(DefaultRates())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Record("t", "kb-read", 1, t0)
			}
		}()
	}
	wg.Wait()
	b := m.BillFor("t", t0.Add(-time.Hour), t0.Add(time.Hour))
	if b.Lines[0].Quantity != 800 {
		t.Errorf("quantity = %f, want 800", b.Lines[0].Quantity)
	}
}

func TestRateCardIsolation(t *testing.T) {
	rates := DefaultRates()
	m := NewMeter(rates)
	rates["ingest"] = 999 // caller mutates after construction
	m.Record("t", "ingest", 1, t0)
	b := m.BillFor("t", t0.Add(-time.Hour), t0.Add(time.Hour))
	if b.Lines[0].UnitCents != 2.0 {
		t.Errorf("rate card aliased: %f", b.Lines[0].UnitCents)
	}
}
