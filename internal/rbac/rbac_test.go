package rbac

import (
	"errors"
	"testing"
	"time"
)

// newHospitalSystem builds the scenario used across tests: one tenant
// ("mercy-health") with a research org, a diabetes study group, and a
// production environment.
func newHospitalSystem(t *testing.T) *System {
	t.Helper()
	s := NewSystem()
	if err := s.CreateTenant("mercy-health"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateOrg("mercy-health", "research"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateGroup("mercy-health", "research", "diabetes-study"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateEnvironment("mercy-health", "prod"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTenantDefaults(t *testing.T) {
	s := NewSystem()
	if err := s.CreateTenant("acme"); err != nil {
		t.Fatal(err)
	}
	// The registration service creates a default org and environment.
	if err := s.CreateOrg("acme", "default"); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("default org: got %v, want ErrAlreadyExists", err)
	}
	if err := s.CreateEnvironment("acme", "default"); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("default env: got %v, want ErrAlreadyExists", err)
	}
	if err := s.CreateTenant("acme"); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("duplicate tenant: got %v, want ErrAlreadyExists", err)
	}
}

func TestEntityValidation(t *testing.T) {
	s := newHospitalSystem(t)
	tests := []struct {
		name string
		call func() error
		want error
	}{
		{"org in unknown tenant", func() error { return s.CreateOrg("ghost", "o") }, ErrNoSuchTenant},
		{"group in unknown tenant", func() error { return s.CreateGroup("ghost", "o", "g") }, ErrNoSuchTenant},
		{"group in unknown org", func() error { return s.CreateGroup("mercy-health", "ghost", "g") }, ErrNoSuchOrg},
		{"env in unknown tenant", func() error { return s.CreateEnvironment("ghost", "e") }, ErrNoSuchTenant},
		{"user in unknown tenant", func() error { return s.RegisterUser("ghost", "u") }, ErrNoSuchTenant},
		{"dup group", func() error { return s.CreateGroup("mercy-health", "research", "diabetes-study") }, ErrAlreadyExists},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.call(); !errors.Is(err, tt.want) {
				t.Errorf("got %v, want %v", err, tt.want)
			}
		})
	}
}

func TestRoleBasedAccess(t *testing.T) {
	s := newHospitalSystem(t)
	scope := Scope{Tenant: "mercy-health", Org: "research", Group: "diabetes-study"}
	for _, u := range []string{"dr-alice", "analyst-bob", "auditor-carol"} {
		if err := s.RegisterUser("mercy-health", u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AssignRole("dr-alice", RoleClinician, scope, "prod"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignRole("analyst-bob", RoleAnalyst, scope, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignRole("auditor-carol", RoleAuditor, Scope{Tenant: "mercy-health"}, ""); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name     string
		user     string
		action   Action
		resource string
		env      string
		allowed  bool
	}{
		{"clinician reads PHI", "dr-alice", ActionRead, "phi", "prod", true},
		{"clinician writes PHI", "dr-alice", ActionWrite, "phi", "prod", true},
		{"clinician blocked outside env", "dr-alice", ActionRead, "phi", "default", false},
		{"clinician cannot touch models", "dr-alice", ActionWrite, "models", "prod", false},
		{"analyst reads deid", "analyst-bob", ActionRead, "deid", "prod", true},
		{"analyst cannot read PHI", "analyst-bob", ActionRead, "phi", "prod", false},
		{"analyst cannot write models", "analyst-bob", ActionWrite, "models", "prod", false},
		{"auditor reads logs", "auditor-carol", ActionRead, "logs", "prod", true},
		{"auditor cannot read PHI", "auditor-carol", ActionRead, "phi", "prod", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := s.Check(tt.user, tt.action, tt.resource, scope, tt.env)
			if tt.allowed && err != nil {
				t.Errorf("denied: %v", err)
			}
			if !tt.allowed && !errors.Is(err, ErrDenied) {
				t.Errorf("got %v, want ErrDenied", err)
			}
		})
	}
}

func TestScopeContainment(t *testing.T) {
	s := newHospitalSystem(t)
	if err := s.RegisterUser("mercy-health", "tenant-admin"); err != nil {
		t.Fatal(err)
	}
	// Tenant-wide admin grant covers narrower scopes.
	if err := s.AssignRole("tenant-admin", RoleAdmin, Scope{Tenant: "mercy-health"}, ""); err != nil {
		t.Fatal(err)
	}
	narrow := Scope{Tenant: "mercy-health", Org: "research", Group: "diabetes-study"}
	if err := s.Check("tenant-admin", ActionWrite, "phi", narrow, "prod"); err != nil {
		t.Errorf("tenant-wide admin denied in narrow scope: %v", err)
	}
	// But a group-scoped grant must not leak to other groups.
	if err := s.CreateGroup("mercy-health", "research", "oncology-study"); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterUser("mercy-health", "dr-dan"); err != nil {
		t.Fatal(err)
	}
	diabetes := Scope{Tenant: "mercy-health", Org: "research", Group: "diabetes-study"}
	oncology := Scope{Tenant: "mercy-health", Org: "research", Group: "oncology-study"}
	if err := s.AssignRole("dr-dan", RoleClinician, diabetes, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Check("dr-dan", ActionRead, "phi", diabetes, ""); err != nil {
		t.Errorf("denied in granted group: %v", err)
	}
	if err := s.Check("dr-dan", ActionRead, "phi", oncology, ""); !errors.Is(err, ErrDenied) {
		t.Errorf("group grant leaked: %v", err)
	}
}

func TestCrossTenantIsolation(t *testing.T) {
	s := newHospitalSystem(t)
	if err := s.CreateTenant("rival-hospital"); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterUser("mercy-health", "dr-alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignRole("dr-alice", RoleAdmin, Scope{Tenant: "mercy-health"}, ""); err != nil {
		t.Fatal(err)
	}
	// Admin of one tenant is a stranger in another.
	err := s.Check("dr-alice", ActionRead, "phi", Scope{Tenant: "rival-hospital"}, "")
	if !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("cross-tenant check: got %v, want ErrNoSuchUser", err)
	}
}

func TestRevokeRoles(t *testing.T) {
	s := newHospitalSystem(t)
	scope := Scope{Tenant: "mercy-health"}
	if err := s.RegisterUser("mercy-health", "u"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignRole("u", RoleAnalyst, scope, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Check("u", ActionRead, "deid", scope, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.RevokeRoles("mercy-health", "u", RoleAnalyst); err != nil {
		t.Fatal(err)
	}
	if err := s.Check("u", ActionRead, "deid", scope, ""); !errors.Is(err, ErrDenied) {
		t.Errorf("post-revoke: got %v, want ErrDenied", err)
	}
}

func TestRolesListing(t *testing.T) {
	s := newHospitalSystem(t)
	if err := s.RegisterUser("mercy-health", "u"); err != nil {
		t.Fatal(err)
	}
	scope := Scope{Tenant: "mercy-health"}
	s.AssignRole("u", RoleAnalyst, scope, "")
	s.AssignRole("u", RoleAuditor, scope, "")
	s.AssignRole("u", RoleAnalyst, scope, "prod") // duplicate role, new env
	roles, err := s.Roles("mercy-health", "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(roles) != 2 {
		t.Errorf("roles = %v, want 2 distinct", roles)
	}
}

func TestAssignRoleValidation(t *testing.T) {
	s := newHospitalSystem(t)
	s.RegisterUser("mercy-health", "u")
	scope := Scope{Tenant: "mercy-health"}
	if err := s.AssignRole("u", Role("superuser"), scope, ""); err == nil {
		t.Error("unknown role accepted")
	}
	if err := s.AssignRole("ghost", RoleAnalyst, scope, ""); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("unknown user: %v", err)
	}
	if err := s.AssignRole("u", RoleAnalyst, Scope{Tenant: "mercy-health", Org: "ghost"}, ""); !errors.Is(err, ErrNoSuchOrg) {
		t.Errorf("unknown org: %v", err)
	}
	if err := s.AssignRole("u", RoleAnalyst, Scope{Tenant: "mercy-health", Org: "research", Group: "ghost"}, ""); !errors.Is(err, ErrNoSuchGroup) {
		t.Errorf("unknown group: %v", err)
	}
	if err := s.AssignRole("u", RoleAnalyst, scope, "ghost-env"); !errors.Is(err, ErrNoSuchEnv) {
		t.Errorf("unknown env: %v", err)
	}
}

func TestFederatedIdentity(t *testing.T) {
	s := newHospitalSystem(t)
	idp, err := NewIdentityProvider("hospital-sso")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	tok, err := idp.Issue("alice@hospital.org", "mercy-health", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Unapproved provider is rejected.
	if _, err := s.Authenticate(tok, now); !errors.Is(err, ErrNotFederated) {
		t.Errorf("unapproved idp: got %v, want ErrNotFederated", err)
	}
	s.ApproveIdentityProvider("hospital-sso", idp.VerifyKey())
	// User must be pre-registered under the provider-qualified ID.
	if _, err := s.Authenticate(tok, now); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("unregistered user: got %v, want ErrNoSuchUser", err)
	}
	if err := s.RegisterUser("mercy-health", "hospital-sso:alice@hospital.org"); err != nil {
		t.Fatal(err)
	}
	userID, err := s.Authenticate(tok, now)
	if err != nil {
		t.Fatalf("Authenticate: %v", err)
	}
	if userID != "hospital-sso:alice@hospital.org" {
		t.Errorf("userID = %q", userID)
	}
	// Expired token.
	if _, err := s.Authenticate(tok, now.Add(2*time.Hour)); err == nil {
		t.Error("expired token accepted")
	}
	// Tampered token.
	bad := *tok
	bad.Subject = "mallory@hospital.org"
	if _, err := s.Authenticate(&bad, now); err == nil {
		t.Error("tampered token accepted")
	}
	// Token from a different (unapproved) provider with the same name but
	// different key.
	imposter, err := NewIdentityProvider("hospital-sso")
	if err != nil {
		t.Fatal(err)
	}
	forged, err := imposter.Issue("alice@hospital.org", "mercy-health", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Authenticate(forged, now); err == nil {
		t.Error("token signed by imposter key accepted")
	}
}

func TestScopeString(t *testing.T) {
	tests := []struct {
		scope Scope
		want  string
	}{
		{Scope{Tenant: "t"}, "t"},
		{Scope{Tenant: "t", Org: "o"}, "t/o"},
		{Scope{Tenant: "t", Org: "o", Group: "g"}, "t/o/g"},
	}
	for _, tt := range tests {
		if got := tt.scope.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
