// Package rbac implements the platform's privacy-management access
// control (§II-B): a role-based model with Tenants, Organizations,
// Groups, Environments, Users, Roles, and Permissions, motivated by
// Cloud Foundry's RBAC. A Tenant is the namespace (an enterprise);
// Organizations represent departments and own shareable resources;
// Groups represent healthcare studies/programs that PHI is consented to;
// Environments are development/deployment targets; Users hold Roles per
// environment within an organization; Permissions are read/write grants
// on resources scoped to tenant, organization, or group.
package rbac

import (
	"errors"
	"fmt"
	"sync"

	"healthcloud/internal/hckrypto"
)

// Action is an access mode on a resource.
type Action string

// Supported actions. The paper's permissions are "read and write access
// control to various resources".
const (
	ActionRead  Action = "read"
	ActionWrite Action = "write"
)

// Role names used across the platform.
type Role string

// Built-in roles.
const (
	RoleAdmin     Role = "admin"     // full control within scope
	RoleDeveloper Role = "developer" // write in development environments
	RoleAnalyst   Role = "analyst"   // read de-identified data, run models
	RoleClinician Role = "clinician" // read identified data with consent
	RoleAuditor   Role = "auditor"   // read logs and ledgers only
	RoleIngestor  Role = "ingestor"  // submit data for ingestion
	RoleCRO       Role = "cro"       // clinical research org: exports
)

// Scope identifies where a permission applies.
type Scope struct {
	Tenant string
	Org    string // empty = tenant-wide
	Group  string // empty = org-wide
}

// String renders the scope path.
func (s Scope) String() string {
	out := s.Tenant
	if s.Org != "" {
		out += "/" + s.Org
	}
	if s.Group != "" {
		out += "/" + s.Group
	}
	return out
}

// contains reports whether s covers other (s is equal or broader).
func (s Scope) contains(other Scope) bool {
	if s.Tenant != other.Tenant {
		return false
	}
	if s.Org != "" && s.Org != other.Org {
		return false
	}
	if s.Group != "" && s.Group != other.Group {
		return false
	}
	return true
}

// Errors returned by this package.
var (
	ErrDenied        = errors.New("rbac: access denied")
	ErrNoSuchTenant  = errors.New("rbac: no such tenant")
	ErrNoSuchUser    = errors.New("rbac: no such user")
	ErrNoSuchOrg     = errors.New("rbac: no such organization")
	ErrNoSuchGroup   = errors.New("rbac: no such group")
	ErrNoSuchEnv     = errors.New("rbac: no such environment")
	ErrAlreadyExists = errors.New("rbac: already exists")
	ErrNotFederated  = errors.New("rbac: identity provider not approved")
)

// grant is one (role, scope, environment) binding for a user.
type grant struct {
	role  Role
	scope Scope
	env   string // empty = all environments
}

// rolePerms maps each role to the actions it may perform on each
// resource class. Resource classes are coarse strings ("phi", "deid",
// "models", "logs", "exports", "ingest", "services").
var rolePerms = map[Role]map[string][]Action{
	RoleAdmin: {
		"phi": {ActionRead, ActionWrite}, "deid": {ActionRead, ActionWrite},
		"models": {ActionRead, ActionWrite}, "logs": {ActionRead, ActionWrite},
		"exports": {ActionRead, ActionWrite}, "ingest": {ActionRead, ActionWrite},
		"services": {ActionRead, ActionWrite},
	},
	RoleDeveloper: {
		"deid": {ActionRead}, "models": {ActionRead, ActionWrite},
		"services": {ActionRead, ActionWrite},
	},
	RoleAnalyst: {
		"deid": {ActionRead}, "models": {ActionRead}, "services": {ActionRead},
	},
	RoleClinician: {
		"phi": {ActionRead, ActionWrite}, "deid": {ActionRead},
	},
	RoleAuditor: {
		"logs": {ActionRead},
	},
	RoleIngestor: {
		"ingest": {ActionWrite},
	},
	RoleCRO: {
		"exports": {ActionRead},
	},
}

// Tenant is one enterprise namespace with its organizations, groups,
// environments, and users.
type tenant struct {
	name   string
	orgs   map[string]bool
	groups map[string]string // group -> owning org
	envs   map[string]bool
	users  map[string]*user
}

type user struct {
	id     string
	grants []grant
}

// System is the RBAC decision point. The zero value is unusable; create
// with NewSystem.
type System struct {
	mu      sync.RWMutex
	tenants map[string]*tenant
	// approved federated identity providers (§II-B: "the platform user's
	// identity could be managed and authenticated by an external
	// (approved) system") and their token-verification keys.
	idps    map[string]bool
	idpKeys map[string]*hckrypto.VerifyKey
}

// NewSystem creates an empty RBAC system.
func NewSystem() *System {
	return &System{tenants: make(map[string]*tenant), idps: make(map[string]bool)}
}

// CreateTenant registers a tenant namespace. Per the Registration Service
// (§II-B), a default organization and a default environment are created
// under it.
func (s *System) CreateTenant(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; ok {
		return fmt.Errorf("%w: tenant %q", ErrAlreadyExists, name)
	}
	s.tenants[name] = &tenant{
		name:   name,
		orgs:   map[string]bool{"default": true},
		groups: make(map[string]string),
		envs:   map[string]bool{"default": true},
		users:  make(map[string]*user),
	}
	return nil
}

// CreateOrg adds an organization (department) to a tenant.
func (s *System) CreateOrg(tenantName, org string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTenant, tenantName)
	}
	if t.orgs[org] {
		return fmt.Errorf("%w: org %q", ErrAlreadyExists, org)
	}
	t.orgs[org] = true
	return nil
}

// CreateGroup adds a healthcare study/program group under an org. PHI is
// consented to groups, so consent checks use these.
func (s *System) CreateGroup(tenantName, org, group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTenant, tenantName)
	}
	if !t.orgs[org] {
		return fmt.Errorf("%w: %q", ErrNoSuchOrg, org)
	}
	if _, ok := t.groups[group]; ok {
		return fmt.Errorf("%w: group %q", ErrAlreadyExists, group)
	}
	t.groups[group] = org
	return nil
}

// CreateEnvironment adds a development/deployment environment.
func (s *System) CreateEnvironment(tenantName, env string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTenant, tenantName)
	}
	if t.envs[env] {
		return fmt.Errorf("%w: env %q", ErrAlreadyExists, env)
	}
	t.envs[env] = true
	return nil
}

// RegisterUser adds a user under a tenant.
func (s *System) RegisterUser(tenantName, userID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTenant, tenantName)
	}
	if _, ok := t.users[userID]; ok {
		return fmt.Errorf("%w: user %q", ErrAlreadyExists, userID)
	}
	t.users[userID] = &user{id: userID}
	return nil
}

// AssignRole grants a role to a user in a scope and environment. Users
// "can have different roles in different environments within an
// organization" (§II-B); env=="" grants across all environments.
func (s *System) AssignRole(userID string, role Role, scope Scope, env string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[scope.Tenant]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTenant, scope.Tenant)
	}
	u, ok := t.users[userID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchUser, userID)
	}
	if scope.Org != "" && !t.orgs[scope.Org] {
		return fmt.Errorf("%w: %q", ErrNoSuchOrg, scope.Org)
	}
	if scope.Group != "" {
		if _, ok := t.groups[scope.Group]; !ok {
			return fmt.Errorf("%w: %q", ErrNoSuchGroup, scope.Group)
		}
	}
	if env != "" && !t.envs[env] {
		return fmt.Errorf("%w: %q", ErrNoSuchEnv, env)
	}
	if _, ok := rolePerms[role]; !ok {
		return fmt.Errorf("rbac: unknown role %q", role)
	}
	u.grants = append(u.grants, grant{role: role, scope: scope, env: env})
	return nil
}

// RevokeRoles removes every grant of a role from a user.
func (s *System) RevokeRoles(tenantName, userID string, role Role) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTenant, tenantName)
	}
	u, ok := t.users[userID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchUser, userID)
	}
	kept := u.grants[:0]
	for _, g := range u.grants {
		if g.role != role {
			kept = append(kept, g)
		}
	}
	u.grants = kept
	return nil
}

// Check decides whether a user may perform action on a resource class in
// the given scope and environment. It returns nil on allow and ErrDenied
// (wrapped with context) otherwise.
func (s *System) Check(userID string, action Action, resource string, scope Scope, env string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[scope.Tenant]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTenant, scope.Tenant)
	}
	u, ok := t.users[userID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchUser, userID)
	}
	for _, g := range u.grants {
		if !g.scope.contains(scope) {
			continue
		}
		if g.env != "" && env != "" && g.env != env {
			continue
		}
		for _, a := range rolePerms[g.role][resource] {
			if a == action {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: %s %s on %s in %s", ErrDenied, userID, action, resource, scope)
}

// Roles returns the distinct roles a user holds anywhere in the tenant.
func (s *System) Roles(tenantName, userID string) ([]Role, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[tenantName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTenant, tenantName)
	}
	u, ok := t.users[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchUser, userID)
	}
	seen := make(map[Role]bool)
	var out []Role
	for _, g := range u.grants {
		if !seen[g.role] {
			seen[g.role] = true
			out = append(out, g.role)
		}
	}
	return out, nil
}
