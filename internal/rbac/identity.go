package rbac

import (
	"fmt"
	"time"

	"healthcloud/internal/hckrypto"
)

// Federated identity (§II-B): users may be authenticated by an external
// approved identity provider; the platform then maps the asserted
// identity into its own RBAC system. Providers assert identities by
// signing tokens; the platform trusts only approved provider keys.

// IdentityToken is an assertion from an external IdP.
type IdentityToken struct {
	Provider  string    `json:"provider"`
	Subject   string    `json:"subject"` // external user identity
	Tenant    string    `json:"tenant"`
	IssuedAt  time.Time `json:"issued_at"`
	ExpiresAt time.Time `json:"expires_at"`
	Signature []byte    `json:"signature"`
}

func (tok *IdentityToken) payload() []byte {
	return []byte(fmt.Sprintf("%s|%s|%s|%d|%d",
		tok.Provider, tok.Subject, tok.Tenant,
		tok.IssuedAt.UnixNano(), tok.ExpiresAt.UnixNano()))
}

// IdentityProvider simulates an external approved IdP that issues signed
// tokens.
type IdentityProvider struct {
	name string
	key  *hckrypto.SigningKey
}

// NewIdentityProvider creates a provider with a fresh signing key.
func NewIdentityProvider(name string) (*IdentityProvider, error) {
	key, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return nil, fmt.Errorf("rbac: idp key: %w", err)
	}
	return &IdentityProvider{name: name, key: key}, nil
}

// Name returns the provider name.
func (p *IdentityProvider) Name() string { return p.name }

// VerifyKey returns the provider's public key for enrollment.
func (p *IdentityProvider) VerifyKey() *hckrypto.VerifyKey { return p.key.Public() }

// Issue signs a token asserting subject's identity for a tenant.
func (p *IdentityProvider) Issue(subject, tenantName string, ttl time.Duration) (*IdentityToken, error) {
	now := time.Now().UTC()
	tok := &IdentityToken{
		Provider: p.name, Subject: subject, Tenant: tenantName,
		IssuedAt: now, ExpiresAt: now.Add(ttl),
	}
	sig, err := p.key.Sign(tok.payload())
	if err != nil {
		return nil, fmt.Errorf("rbac: signing token: %w", err)
	}
	tok.Signature = sig
	return tok, nil
}

// ApproveIdentityProvider enrolls an external IdP's verification key.
func (s *System) ApproveIdentityProvider(name string, key *hckrypto.VerifyKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idps[name] = true
	if s.idpKeys == nil {
		s.idpKeys = make(map[string]*hckrypto.VerifyKey)
	}
	s.idpKeys[name] = key
}

// Authenticate validates a federated token and returns the platform user
// ID it maps to (provider-qualified, so two IdPs cannot collide). The
// user must already be registered under the tenant; per §II-B, "once
// users are authenticated, their roles and access privileges are managed
// by the platform's RBAC system".
func (s *System) Authenticate(tok *IdentityToken, now time.Time) (string, error) {
	s.mu.RLock()
	approved := s.idps[tok.Provider]
	key := s.idpKeys[tok.Provider]
	s.mu.RUnlock()
	if !approved || key == nil {
		return "", fmt.Errorf("%w: %q", ErrNotFederated, tok.Provider)
	}
	if !key.Verify(tok.payload(), tok.Signature) {
		return "", fmt.Errorf("rbac: token signature invalid")
	}
	if now.After(tok.ExpiresAt) {
		return "", fmt.Errorf("rbac: token expired at %s", tok.ExpiresAt)
	}
	userID := tok.Provider + ":" + tok.Subject
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[tok.Tenant]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoSuchTenant, tok.Tenant)
	}
	if _, ok := t.users[userID]; !ok {
		return "", fmt.Errorf("%w: %q", ErrNoSuchUser, userID)
	}
	return userID, nil
}
