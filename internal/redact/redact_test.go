package redact

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"healthcloud/internal/hckrypto"
)

// One shared key for the whole test package: RSA keygen is slow and the
// scheme under test is key-agnostic.
var testKey = func() *hckrypto.SigningKey {
	k, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		panic(err)
	}
	return k
}()

func sampleRecord() Record {
	return Record{
		{Name: "name", Value: "Jane Doe"},
		{Name: "dob", Value: "1980-04-02"},
		{Name: "diagnosis", Value: "type 2 diabetes"},
		{Name: "hba1c", Value: "8.1"},
		{Name: "insurer", Value: "Acme Health"},
	}
}

func TestSignVerifyFullRecord(t *testing.T) {
	sr, err := Sign(testKey, sampleRecord())
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := Verify(testKey.Public(), sr); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyDetectsFieldTamper(t *testing.T) {
	sr, err := Sign(testKey, sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	sr.Fields[2].Value = "healthy"
	if err := Verify(testKey.Public(), sr); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered record: got %v, want ErrBadSignature", err)
	}
}

func TestVerifyDetectsSaltFieldMismatch(t *testing.T) {
	sr, err := Sign(testKey, sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	sr.Salts = sr.Salts[:len(sr.Salts)-1]
	if err := Verify(testKey.Public(), sr); !errors.Is(err, ErrMalformed) {
		t.Errorf("got %v, want ErrMalformed", err)
	}
}

func TestRedactAndVerifySubsets(t *testing.T) {
	rec := sampleRecord()
	sr, err := Sign(testKey, rec)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]int{
		{},              // disclose nothing
		{0},             // one field
		{2, 3},          // diagnosis + lab
		{0, 1, 2, 3, 4}, // everything
		{4, 0},          // out of order input
	}
	for _, subset := range subsets {
		t.Run(fmt.Sprintf("disclose%v", subset), func(t *testing.T) {
			rr, err := sr.Redact(subset)
			if err != nil {
				t.Fatalf("Redact: %v", err)
			}
			if err := VerifyRedacted(testKey.Public(), rr); err != nil {
				t.Fatalf("VerifyRedacted: %v", err)
			}
			if len(rr.Disclosed) != len(subset) {
				t.Errorf("disclosed %d fields, want %d", len(rr.Disclosed), len(subset))
			}
			for _, i := range subset {
				if rr.Disclosed[i] != rec[i] {
					t.Errorf("field %d = %+v, want %+v", i, rr.Disclosed[i], rec[i])
				}
			}
		})
	}
}

func TestRedactOutOfRange(t *testing.T) {
	sr, err := Sign(testKey, sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Redact([]int{99}); err == nil {
		t.Error("out-of-range position accepted")
	}
	if _, err := sr.Redact([]int{-1}); err == nil {
		t.Error("negative position accepted")
	}
}

func TestRedactedTamperDetected(t *testing.T) {
	sr, err := Sign(testKey, sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sr.Redact([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Forge a disclosed value.
	f := rr.Disclosed[2]
	f.Value = "no known conditions"
	rr.Disclosed[2] = f
	if err := VerifyRedacted(testKey.Public(), rr); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged disclosure: got %v, want ErrBadSignature", err)
	}
}

func TestRedactedCommitmentTamperDetected(t *testing.T) {
	sr, err := Sign(testKey, sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sr.Redact([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	rr.Commitments[1][0] ^= 1
	if err := VerifyRedacted(testKey.Public(), rr); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered commitment: got %v, want ErrBadSignature", err)
	}
}

func TestRedactedMalformedShapes(t *testing.T) {
	sr, err := Sign(testKey, sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sr.Redact([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Drop a withheld commitment: count mismatch.
	delete(rr.Commitments, 0)
	if err := VerifyRedacted(testKey.Public(), rr); !errors.Is(err, ErrMalformed) {
		t.Errorf("missing commitment: got %v, want ErrMalformed", err)
	}
	// Disclosed field missing its salt.
	rr2, _ := sr.Redact([]int{1})
	delete(rr2.Salts, 1)
	if err := VerifyRedacted(testKey.Public(), rr2); !errors.Is(err, ErrMalformed) {
		t.Errorf("missing salt: got %v, want ErrMalformed", err)
	}
}

// TestLeakageFreedom is the core privacy property: the commitment of a
// withheld field must not be reproducible by an attacker who guesses the
// value, because of the hiding salt. The naive baseline fails exactly this
// test — which is the paper's argument for leakage-free schemes.
func TestLeakageFreedom(t *testing.T) {
	rec := sampleRecord()
	sr, err := Sign(testKey, rec)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sr.Redact([]int{0}) // everything but "name" withheld
	if err != nil {
		t.Fatal(err)
	}
	// Dictionary attack: try to confirm the hidden diagnosis.
	guesses := []string{"type 2 diabetes", "hypertension", "HIV positive"}
	for _, g := range guesses {
		guessLeaf := NaiveLeaf(Field{Name: "diagnosis", Value: g})
		if bytes.Equal(rr.Commitments[2], guessLeaf) {
			t.Errorf("leakage-free scheme leaked: guess %q confirmed", g)
		}
	}
}

func TestNaiveSchemeLeaks(t *testing.T) {
	rec := sampleRecord()
	nr, err := NaiveSign(testKey, rec)
	if err != nil {
		t.Fatal(err)
	}
	red, err := nr.NaiveRedact([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNaiveRedacted(testKey.Public(), red); err != nil {
		t.Fatalf("VerifyNaiveRedacted: %v", err)
	}
	// The dictionary attack succeeds against the baseline.
	confirmed := ""
	for _, g := range []string{"hypertension", "type 2 diabetes", "asthma"} {
		if bytes.Equal(red.LeafHashes[2], NaiveLeaf(Field{Name: "diagnosis", Value: g})) {
			confirmed = g
		}
	}
	if confirmed != "type 2 diabetes" {
		t.Errorf("expected the naive scheme to leak the diagnosis; confirmed=%q", confirmed)
	}
}

func TestTwoRedactionsUnlinkableCommitments(t *testing.T) {
	// Signing the same record twice must produce different commitments
	// (fresh salts), so two disclosures cannot be linked via commitments.
	rec := sampleRecord()
	sr1, err := Sign(testKey, rec)
	if err != nil {
		t.Fatal(err)
	}
	sr2, err := Sign(testKey, rec)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := sr1.Redact([]int{0})
	r2, _ := sr2.Redact([]int{0})
	for i := range r1.Commitments {
		if bytes.Equal(r1.Commitments[i], r2.Commitments[i]) {
			t.Errorf("commitment for field %d identical across signings", i)
		}
	}
}

func TestEmptyAndSingleFieldRecords(t *testing.T) {
	for _, rec := range []Record{{}, {{Name: "only", Value: "field"}}} {
		sr, err := Sign(testKey, rec)
		if err != nil {
			t.Fatalf("Sign(%d fields): %v", len(rec), err)
		}
		if err := Verify(testKey.Public(), sr); err != nil {
			t.Errorf("Verify(%d fields): %v", len(rec), err)
		}
	}
}

func TestDisclosedPositionsSorted(t *testing.T) {
	sr, err := Sign(testKey, sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sr.Redact([]int{3, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	got := rr.DisclosedPositions()
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("positions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("positions = %v, want %v", got, want)
		}
	}
}

// Property: any subset of any record verifies after redaction.
func TestQuickRedactSubsetsVerify(t *testing.T) {
	f := func(values []string, mask uint16) bool {
		if len(values) > 12 {
			values = values[:12]
		}
		rec := make(Record, len(values))
		for i, v := range values {
			rec[i] = Field{Name: fmt.Sprintf("f%d", i), Value: v}
		}
		sr, err := Sign(testKey, rec)
		if err != nil {
			return false
		}
		var disclose []int
		for i := range rec {
			if mask&(1<<uint(i)) != 0 {
				disclose = append(disclose, i)
			}
		}
		rr, err := sr.Redact(disclose)
		if err != nil {
			return false
		}
		return VerifyRedacted(testKey.Public(), rr) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMerkleRootDomainSeparation(t *testing.T) {
	// A single leaf must not collide with the concatenation trick:
	// root([a,b]) != root([H(a)||H(b)]) because of the 0x00/0x01 prefixes.
	a, b := []byte("leaf-a"), []byte("leaf-b")
	two := merkleRoot([][]byte{a, b})
	one := merkleRoot([][]byte{two})
	if bytes.Equal(two, one) {
		t.Error("interior node collides with leaf hash — missing domain separation")
	}
	if !bytes.Equal(merkleRoot(nil), merkleRoot([][]byte{})) {
		t.Error("empty roots disagree")
	}
}
