// Package redact implements leakage-free redactable signatures for
// structured health records, after Kundu–Atallah–Bertino (CODASPY'12)
// as cited in §IV-B1 of the paper.
//
// A holder of a signed record can disclose any subset of its fields to a
// third party together with a proof that (1) the disclosed fields are
// authentic — they were part of the originally signed record, unmodified —
// and (2) nothing about the withheld fields leaks. Classical Merkle-hash
// sharing fails property (2): sibling digests handed to the verifier are
// deterministic hashes of the hidden values, so a verifier can confirm
// guesses by dictionary attack ("does this patient's hidden diagnosis
// field hash to H(name||'HIV positive')?"). The paper calls this out and
// requires leakage-free schemes instead.
//
// The construction here blinds every leaf with a fresh random salt:
// commit_i = SHA-256(salt_i || name_i || value_i). The salts act as
// hiding commitments — without salt_i, commit_i is indistinguishable from
// random, so revealing commitments of redacted fields leaks nothing a
// dictionary attack could use. A Merkle tree over the commitments is
// signed once; redaction reveals (field, salt) pairs only for disclosed
// fields. NaiveSign/NaiveRedact implement the leaky baseline so tests and
// experiment E7 can demonstrate the attack the paper warns about.
package redact

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"unicode/utf8"

	"healthcloud/internal/hckrypto"
)

// Field is one named unit of a record; redaction operates at field
// granularity (§IV-B1: "HCLS data is shared in parts and not as a whole").
type Field struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Record is an ordered list of fields. Order is part of what is signed.
type Record []Field

// SignedRecord binds a record to a signature via blinded commitments.
type SignedRecord struct {
	Fields    Record   `json:"fields"`
	Salts     [][]byte `json:"salts"`     // one per field
	Signature []byte   `json:"signature"` // over the Merkle root of commitments
}

// RedactedRecord is a partial disclosure: disclosed fields carry their
// salts; withheld positions carry only the hiding commitment.
type RedactedRecord struct {
	NumFields   int            `json:"num_fields"`
	Disclosed   map[int]Field  `json:"disclosed"`   // position -> field
	Salts       map[int][]byte `json:"salts"`       // position -> salt (disclosed only)
	Commitments map[int][]byte `json:"commitments"` // position -> commitment (withheld only)
	Signature   []byte         `json:"signature"`
}

const saltSize = 16

// Errors returned by this package.
var (
	ErrBadSignature = errors.New("redact: signature verification failed")
	ErrMalformed    = errors.New("redact: malformed redacted record")
	ErrInvalidUTF8  = errors.New("redact: field is not valid UTF-8")
)

// Sign produces a redactable signature over the record using the
// platform's signing key. Field names and values must be valid UTF-8:
// disclosures travel as JSON, whose encoder silently rewrites invalid
// byte sequences — a third party would then recompute a different
// commitment and reject an authentic disclosure.
func Sign(key hckrypto.Signer, rec Record) (*SignedRecord, error) {
	for i, f := range rec {
		if !utf8.ValidString(f.Name) || !utf8.ValidString(f.Value) {
			return nil, fmt.Errorf("%w: field %d", ErrInvalidUTF8, i)
		}
	}
	salts := make([][]byte, len(rec))
	commits := make([][]byte, len(rec))
	for i, f := range rec {
		salt := make([]byte, saltSize)
		if _, err := io.ReadFull(rand.Reader, salt); err != nil {
			return nil, fmt.Errorf("redact: salt: %w", err)
		}
		salts[i] = salt
		commits[i] = commitField(salt, f)
	}
	root := merkleRoot(commits)
	sig, err := hckrypto.SignEnvelope(key, root)
	if err != nil {
		return nil, fmt.Errorf("redact: signing root: %w", err)
	}
	return &SignedRecord{Fields: rec, Salts: salts, Signature: sig}, nil
}

// Verify checks a full signed record.
func Verify(key hckrypto.Verifier, sr *SignedRecord) error {
	if len(sr.Fields) != len(sr.Salts) {
		return ErrMalformed
	}
	commits := make([][]byte, len(sr.Fields))
	for i, f := range sr.Fields {
		commits[i] = commitField(sr.Salts[i], f)
	}
	if !hckrypto.VerifyEnvelope(key, merkleRoot(commits), sr.Signature) {
		return ErrBadSignature
	}
	return nil
}

// Redact produces a partial disclosure revealing only the fields at the
// given positions. The returned structure carries hiding commitments for
// every withheld field; it can be verified without learning anything
// about them.
func (sr *SignedRecord) Redact(disclose []int) (*RedactedRecord, error) {
	want := make(map[int]bool, len(disclose))
	for _, i := range disclose {
		if i < 0 || i >= len(sr.Fields) {
			return nil, fmt.Errorf("redact: position %d out of range [0,%d)", i, len(sr.Fields))
		}
		want[i] = true
	}
	rr := &RedactedRecord{
		NumFields:   len(sr.Fields),
		Disclosed:   make(map[int]Field),
		Salts:       make(map[int][]byte),
		Commitments: make(map[int][]byte),
		Signature:   sr.Signature,
	}
	for i, f := range sr.Fields {
		if want[i] {
			rr.Disclosed[i] = f
			rr.Salts[i] = append([]byte(nil), sr.Salts[i]...)
		} else {
			rr.Commitments[i] = commitField(sr.Salts[i], f)
		}
	}
	return rr, nil
}

// VerifyRedacted checks that the disclosed fields are authentic parts of
// a record signed by the key's owner.
func VerifyRedacted(key hckrypto.Verifier, rr *RedactedRecord) error {
	if rr.NumFields < 0 || len(rr.Disclosed)+len(rr.Commitments) != rr.NumFields {
		return ErrMalformed
	}
	commits := make([][]byte, rr.NumFields)
	for i := 0; i < rr.NumFields; i++ {
		if f, ok := rr.Disclosed[i]; ok {
			salt, ok := rr.Salts[i]
			if !ok {
				return ErrMalformed
			}
			commits[i] = commitField(salt, f)
		} else if c, ok := rr.Commitments[i]; ok {
			commits[i] = c
		} else {
			return ErrMalformed
		}
	}
	if !hckrypto.VerifyEnvelope(key, merkleRoot(commits), rr.Signature) {
		return ErrBadSignature
	}
	return nil
}

// DisclosedPositions returns the sorted positions revealed in rr.
func (rr *RedactedRecord) DisclosedPositions() []int {
	out := make([]int, 0, len(rr.Disclosed))
	for i := range rr.Disclosed {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func commitField(salt []byte, f Field) []byte {
	h := sha256.New()
	h.Write(salt)
	writeLenPrefixed(h, []byte(f.Name))
	writeLenPrefixed(h, []byte(f.Value))
	return h.Sum(nil)
}

// NaiveLeaf is the leaky baseline leaf: an unsalted deterministic hash.
// Exported so experiment E7 and the privacy tests can mount the
// dictionary attack the paper warns about.
func NaiveLeaf(f Field) []byte {
	h := sha256.New()
	writeLenPrefixed(h, []byte(f.Name))
	writeLenPrefixed(h, []byte(f.Value))
	return h.Sum(nil)
}

// NaiveSignedRecord is the baseline: a plain Merkle tree over unsalted
// field hashes. Redaction reveals sibling hashes directly, enabling
// dictionary attacks on withheld fields.
type NaiveSignedRecord struct {
	Fields    Record
	Signature []byte
}

// NaiveSign signs a record with the leaky baseline scheme.
func NaiveSign(key hckrypto.Signer, rec Record) (*NaiveSignedRecord, error) {
	leaves := make([][]byte, len(rec))
	for i, f := range rec {
		leaves[i] = NaiveLeaf(f)
	}
	sig, err := hckrypto.SignEnvelope(key, merkleRoot(leaves))
	if err != nil {
		return nil, fmt.Errorf("redact: naive signing: %w", err)
	}
	return &NaiveSignedRecord{Fields: rec, Signature: sig}, nil
}

// NaiveRedacted is a baseline partial disclosure: withheld positions carry
// the raw unsalted leaf hash.
type NaiveRedacted struct {
	NumFields  int
	Disclosed  map[int]Field
	LeafHashes map[int][]byte // withheld positions -> H(name||value): LEAKS
	Signature  []byte
}

// NaiveRedact produces the baseline disclosure.
func (nr *NaiveSignedRecord) NaiveRedact(disclose []int) (*NaiveRedacted, error) {
	want := make(map[int]bool, len(disclose))
	for _, i := range disclose {
		if i < 0 || i >= len(nr.Fields) {
			return nil, fmt.Errorf("redact: position %d out of range", i)
		}
		want[i] = true
	}
	out := &NaiveRedacted{
		NumFields:  len(nr.Fields),
		Disclosed:  make(map[int]Field),
		LeafHashes: make(map[int][]byte),
		Signature:  nr.Signature,
	}
	for i, f := range nr.Fields {
		if want[i] {
			out.Disclosed[i] = f
		} else {
			out.LeafHashes[i] = NaiveLeaf(f)
		}
	}
	return out, nil
}

// VerifyNaiveRedacted checks the baseline disclosure.
func VerifyNaiveRedacted(key hckrypto.Verifier, nr *NaiveRedacted) error {
	if len(nr.Disclosed)+len(nr.LeafHashes) != nr.NumFields {
		return ErrMalformed
	}
	leaves := make([][]byte, nr.NumFields)
	for i := 0; i < nr.NumFields; i++ {
		if f, ok := nr.Disclosed[i]; ok {
			leaves[i] = NaiveLeaf(f)
		} else if h, ok := nr.LeafHashes[i]; ok {
			leaves[i] = h
		} else {
			return ErrMalformed
		}
	}
	if !hckrypto.VerifyEnvelope(key, merkleRoot(leaves), nr.Signature) {
		return ErrBadSignature
	}
	return nil
}

// merkleRoot computes a domain-separated binary Merkle root over leaves.
// A single leaf hashes with the leaf prefix; empty input hashes a marker.
func merkleRoot(leaves [][]byte) []byte {
	if len(leaves) == 0 {
		sum := sha256.Sum256([]byte("redact:empty"))
		return sum[:]
	}
	level := make([][]byte, len(leaves))
	for i, l := range leaves {
		h := sha256.New()
		h.Write([]byte{0x00}) // leaf domain separator
		h.Write(l)
		level[i] = h.Sum(nil)
	}
	for len(level) > 1 {
		next := make([][]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			h := sha256.New()
			h.Write([]byte{0x01}) // interior domain separator
			h.Write(level[i])
			if i+1 < len(level) {
				h.Write(level[i+1])
			} else {
				h.Write(level[i]) // duplicate odd node
			}
			next = append(next, h.Sum(nil))
		}
		level = next
	}
	return level[0]
}

func writeLenPrefixed(w io.Writer, b []byte) {
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
	w.Write(lenBuf[:])
	w.Write(b)
}
