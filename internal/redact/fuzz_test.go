package redact

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"unicode/utf8"

	"healthcloud/internal/hckrypto"
)

// fuzzKey is generated once per fuzz process: RSA keygen is ~100ms and
// the scheme's properties are key-independent.
var fuzzKey = func() *hckrypto.SigningKey {
	k, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		panic(err)
	}
	return k
}()

// fieldsFromFuzz derives a record from raw fuzz bytes: alternating
// length-prefixed name/value chunks, capped so RSA signing keeps fuzz
// iterations fast.
func fieldsFromFuzz(data []byte) Record {
	var rec Record
	for len(data) > 0 && len(rec) < 10 {
		n := int(data[0]) % 16
		data = data[1:]
		if n > len(data) {
			n = len(data)
		}
		name := string(data[:n])
		data = data[n:]
		var value string
		if len(data) > 0 {
			v := int(data[0]) % 32
			data = data[1:]
			if v > len(data) {
				v = len(data)
			}
			value = string(data[:v])
			data = data[v:]
		}
		rec = append(rec, Field{Name: name, Value: value})
	}
	return rec
}

// FuzzRedact drives the redactable-signature scheme end to end with
// arbitrary field contents and disclosure masks: sign → verify →
// redact → verify-redacted must hold for every record, a JSON round
// trip of the disclosure must still verify (it crosses the API), and
// any tampering with a disclosed value or a withheld commitment must
// be rejected.
func FuzzRedact(f *testing.F) {
	f.Add([]byte("\x04name\x05alice\x03dob\x0a1980-01-01\x09diagnosis\x04flu!"), uint16(0b01))
	f.Add([]byte(""), uint16(0))
	f.Add([]byte("\x00\x00\x00\x00\x00\x00"), uint16(0xffff))
	f.Add([]byte("\x0funicode-\xc3\xa9\xe2\x82\xac\x05\xff\xfe\x00\x01\x02"), uint16(0b10))

	f.Fuzz(func(t *testing.T, data []byte, mask uint16) {
		rec := fieldsFromFuzz(data)
		validUTF8 := true
		for _, fld := range rec {
			if !utf8.ValidString(fld.Name) || !utf8.ValidString(fld.Value) {
				validUTF8 = false
			}
		}
		sr, err := Sign(fuzzKey, rec)
		if !validUTF8 {
			// JSON disclosures cannot carry invalid UTF-8 losslessly;
			// Sign must refuse rather than produce a record whose
			// serialized disclosure no longer verifies.
			if !errors.Is(err, ErrInvalidUTF8) {
				t.Fatalf("Sign accepted invalid UTF-8 fields: err=%v", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("sign: %v", err)
		}
		pub := fuzzKey.Public()
		if err := Verify(pub, sr); err != nil {
			t.Fatalf("verify full record: %v", err)
		}

		var disclose []int
		for i := range rec {
			if mask&(1<<uint(i%16)) != 0 {
				disclose = append(disclose, i)
			}
		}
		rr, err := sr.Redact(disclose)
		if err != nil {
			t.Fatalf("redact %v of %d fields: %v", disclose, len(rec), err)
		}
		if err := VerifyRedacted(pub, rr); err != nil {
			t.Fatalf("verify redacted: %v", err)
		}
		if got, want := len(rr.Disclosed)+len(rr.Commitments), len(rec); got != want {
			t.Fatalf("disclosure partitions %d positions, record has %d", got, want)
		}

		// The disclosure is what travels to third parties: it must
		// survive JSON serialization and still verify.
		blob, err := json.Marshal(rr)
		if err != nil {
			t.Fatalf("marshal redacted: %v", err)
		}
		var rr2 RedactedRecord
		if err := json.Unmarshal(blob, &rr2); err != nil {
			t.Fatalf("unmarshal redacted: %v", err)
		}
		if err := VerifyRedacted(pub, &rr2); err != nil {
			t.Fatalf("verify after JSON round trip: %v", err)
		}

		// Tampering with any disclosed field must break verification.
		for i, fld := range rr.Disclosed {
			tampered := *rr
			tampered.Disclosed = map[int]Field{}
			for k, v := range rr.Disclosed {
				tampered.Disclosed[k] = v
			}
			tampered.Disclosed[i] = Field{Name: fld.Name, Value: fld.Value + "x"}
			if err := VerifyRedacted(pub, &tampered); err == nil {
				t.Fatalf("tampered disclosed field %d still verified", i)
			}
			break // one position suffices per iteration
		}
		// Tampering with any withheld commitment must break verification.
		for i, c := range rr.Commitments {
			tampered := *rr
			tampered.Commitments = map[int][]byte{}
			for k, v := range rr.Commitments {
				tampered.Commitments[k] = v
			}
			flipped := append([]byte(nil), c...)
			if len(flipped) == 0 {
				break
			}
			flipped[0] ^= 0xff
			tampered.Commitments[i] = flipped
			if err := VerifyRedacted(pub, &tampered); err == nil {
				t.Fatalf("tampered commitment %d still verified", i)
			}
			break
		}

		// Leakage check: a withheld field's commitment must not equal the
		// deterministic unsalted hash an attacker can compute (that is
		// exactly the dictionary-attack surface the scheme removes).
		for i, c := range rr.Commitments {
			if bytes.Equal(c, NaiveLeaf(rec[i])) {
				t.Fatalf("commitment %d equals the unsalted leaf hash — leaks", i)
			}
		}
	})
}
