// Package loadgen is the open-loop load harness (ROADMAP item 4): K
// synthetic client fleets whose arrival rates follow curves (constant,
// diurnal, burst, thundering-herd-after-outage) over a mixed workload,
// driven end to end against a live platform.
//
// Open-loop is the point. A closed-loop driver (every worker waits for
// the previous response) self-throttles exactly when the platform slows
// down, which hides goodput collapse — the failure mode that
// distinguishes architectures under overload. Here arrivals are
// scheduled by the curve regardless of in-flight responses: when the
// platform can't keep up, requests pile into its queues (or get shed),
// and the report shows offered rate vs goodput honestly. The only
// client-side cap is each fleet's connection pool; arrivals that find
// the pool saturated are counted as client overflow, never silently
// dropped.
package loadgen

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Op is one operation in a fleet's workload mix. Do performs a single
// synchronous request and classifies its result; Weight sets the mix
// ratio (weight 2 fires twice as often as weight 1).
type Op struct {
	Name   string
	Weight int
	Do     func() Outcome
}

// Phase is one segment of a fleet's schedule: a named arrival curve
// driven for a duration. Reports are broken down per phase.
type Phase struct {
	Name     string
	Duration time.Duration
	Curve    Curve
}

// Fleet is one synthetic client population.
type Fleet struct {
	Name   string
	Phases []Phase
	Ops    []Op
	// Concurrency caps in-flight requests (the fleet's connection pool;
	// default 64). Arrivals beyond it count as client overflow.
	Concurrency int
}

// Config tunes the engine.
type Config struct {
	// Tick is the scheduler resolution (default 2ms). Arrivals accumulate
	// fractionally between ticks, so rates well below 1/tick still offer
	// the right total.
	Tick time.Duration
	// MaxSamples caps per-phase latency samples (default 65536; reservoir
	// beyond that keeps quantiles unbiased).
	MaxSamples int
	// Snapshot, when set, is sampled at the end of every phase and
	// attached to the phase report — the platform-side view (queue depth,
	// shed state) lined up against the client-side numbers.
	Snapshot func() map[string]any
}

// Engine runs fleets. Construct with New.
type Engine struct {
	cfg Config
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Tick <= 0 {
		cfg.Tick = 2 * time.Millisecond
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 65536
	}
	return &Engine{cfg: cfg}
}

// Run drives every fleet concurrently (each fleet walks its phases in
// order) and returns the combined report. It blocks until all phases
// complete and every in-flight request has returned.
func (e *Engine) Run(fleets []Fleet) *Report {
	rep := &Report{Fleets: make([]FleetReport, len(fleets))}
	var wg sync.WaitGroup
	for i := range fleets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep.Fleets[i] = e.runFleet(fleets[i])
		}(i)
	}
	wg.Wait()
	return rep
}

// phaseStats accumulates one phase's measurements. The scheduler
// goroutine owns offered/overflow; request goroutines funnel outcomes
// through the mutex.
type phaseStats struct {
	offered, overflow uint64

	mu       sync.Mutex
	sent     uint64
	outcomes [4]uint64
	lat      []time.Duration
	seen     uint64 // OK requests observed (for reservoir sampling)
	ops      map[string]uint64
	rng      *rand.Rand // reservoir randomness, guarded by mu
	maxLat   int
}

func (st *phaseStats) record(op string, out Outcome, d time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sent++
	st.outcomes[out]++
	st.ops[op]++
	if out != OutcomeOK {
		return
	}
	st.seen++
	if len(st.lat) < st.maxLat {
		st.lat = append(st.lat, d)
		return
	}
	// Reservoir: every OK request keeps an equal chance of being sampled
	// even past the cap, so long phases don't bias quantiles early.
	if j := st.rng.Int63n(int64(st.seen)); int(j) < st.maxLat {
		st.lat[j] = d
	}
}

// runFleet walks one fleet's phases. In-flight requests are drained at
// each phase boundary so latencies and outcomes land in the phase that
// issued them.
func (e *Engine) runFleet(f Fleet) FleetReport {
	conc := f.Concurrency
	if conc <= 0 {
		conc = 64
	}
	sem := make(chan struct{}, conc)
	// Deterministic op mix per fleet name: reruns offer the same op
	// sequence, so run-to-run diffs are platform-side.
	h := fnv.New64a()
	h.Write([]byte(f.Name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	totalWeight := 0
	for _, op := range f.Ops {
		if op.Weight <= 0 {
			continue
		}
		totalWeight += op.Weight
	}

	out := FleetReport{Fleet: f.Name}
	var wg sync.WaitGroup
	for _, ph := range f.Phases {
		st := &phaseStats{
			ops: make(map[string]uint64), maxLat: e.cfg.MaxSamples,
			rng: rand.New(rand.NewSource(int64(h.Sum64()) ^ int64(len(out.Phases)))),
		}
		start := time.Now()
		last := start
		acc := 0.0
		ticker := time.NewTicker(e.cfg.Tick)
		for now := range ticker.C {
			elapsed := now.Sub(start)
			if elapsed >= ph.Duration {
				break
			}
			// Fractional accumulator: rate × dt arrivals since the last
			// tick, carried across ticks so low rates don't round to zero.
			acc += ph.Curve.Rate(elapsed) * now.Sub(last).Seconds()
			last = now
			for acc >= 1 {
				acc--
				st.offered++
				if totalWeight == 0 {
					continue
				}
				op := pickOp(f.Ops, totalWeight, rng)
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					go func(op Op) {
						defer wg.Done()
						defer func() { <-sem }()
						t0 := time.Now()
						st.record(op.Name, op.Do(), time.Since(t0))
					}(op)
				default:
					// Pool saturated: the arrival happened (open loop!) but
					// this client could not send it. Counted, not hidden.
					st.overflow++
				}
			}
		}
		ticker.Stop()
		wg.Wait()
		out.Phases = append(out.Phases, e.phaseReport(ph, st, time.Since(start)))
	}
	return out
}

// pickOp draws an op by weight.
func pickOp(ops []Op, totalWeight int, rng *rand.Rand) Op {
	n := rng.Intn(totalWeight)
	for _, op := range ops {
		if op.Weight <= 0 {
			continue
		}
		if n < op.Weight {
			return op
		}
		n -= op.Weight
	}
	return ops[len(ops)-1]
}

func (e *Engine) phaseReport(ph Phase, st *phaseStats, wall time.Duration) PhaseReport {
	st.mu.Lock()
	defer st.mu.Unlock()
	secs := wall.Seconds()
	r := PhaseReport{
		Phase:       ph.Name,
		Seconds:     secs,
		Offered:     st.offered,
		Sent:        st.sent,
		Overflow:    st.overflow,
		OK:          st.outcomes[OutcomeOK],
		RateLimited: st.outcomes[OutcomeRateLimited],
		Shed:        st.outcomes[OutcomeShed],
		Errors:      st.outcomes[OutcomeError],
		P50Ms:       ms(Quantile(st.lat, 0.50)),
		P95Ms:       ms(Quantile(st.lat, 0.95)),
		P99Ms:       ms(Quantile(st.lat, 0.99)),
		Ops:         st.ops,
	}
	if secs > 0 {
		r.OfferedRate = float64(st.offered) / secs
		r.GoodputRate = float64(st.outcomes[OutcomeOK]) / secs
	}
	if e.cfg.Snapshot != nil {
		r.Snapshot = e.cfg.Snapshot()
	}
	return r
}
