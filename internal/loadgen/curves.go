package loadgen

import (
	"math"
	"time"
)

// Curve is an arrival-rate schedule: offered requests/sec as a function
// of time since the phase began. Curves are pure functions, so a run is
// reproducible given the same plan (modulo service-side timing).
type Curve interface {
	// Rate returns the offered rate (req/s) at elapsed time t.
	Rate(t time.Duration) float64
}

// Constant offers a fixed rate — the classic throughput sweep point.
type Constant struct {
	RPS float64
}

// Rate implements Curve.
func (c Constant) Rate(time.Duration) float64 { return c.RPS }

// Diurnal models the day/night cycle of a hospital fleet: a raised
// cosine from Base (trough) to Peak over each Period. The phase starts
// at the trough, so short runs exercise the ramp.
type Diurnal struct {
	Base, Peak float64
	Period     time.Duration
}

// Rate implements Curve.
func (d Diurnal) Rate(t time.Duration) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	frac := (1 - math.Cos(2*math.Pi*t.Seconds()/d.Period.Seconds())) / 2
	return d.Base + (d.Peak-d.Base)*frac
}

// Burst is a square wave: Base rate with Peak spikes of Width every
// Every — the "monday morning batch submit" shape that finds the shed
// line without sustaining overload.
type Burst struct {
	Base, Peak   float64
	Every, Width time.Duration
}

// Rate implements Curve.
func (b Burst) Rate(t time.Duration) float64 {
	if b.Every <= 0 {
		return b.Base
	}
	if t%b.Every < b.Width {
		return b.Peak
	}
	return b.Base
}

// Herd is the thundering-herd-after-outage shape: offered load is zero
// while the fleet believes the platform is down (Outage), then every
// queued client retries at once — a Spike decaying exponentially (time
// constant Decay) back to Base as retry backoff spreads the fleet out.
type Herd struct {
	Outage      time.Duration
	Spike, Base float64
	Decay       time.Duration
}

// Rate implements Curve.
func (h Herd) Rate(t time.Duration) float64 {
	if t < h.Outage {
		return 0
	}
	if h.Decay <= 0 {
		return h.Base
	}
	since := (t - h.Outage).Seconds()
	return h.Base + (h.Spike-h.Base)*math.Exp(-since/h.Decay.Seconds())
}
