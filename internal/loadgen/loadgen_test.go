package loadgen

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"healthcloud/internal/admission"
)

func TestCurveShapes(t *testing.T) {
	c := Constant{RPS: 120}
	if c.Rate(0) != 120 || c.Rate(time.Hour) != 120 {
		t.Error("constant curve not constant")
	}

	d := Diurnal{Base: 10, Peak: 110, Period: 20 * time.Second}
	if got := d.Rate(0); math.Abs(got-10) > 1e-9 {
		t.Errorf("diurnal trough = %v, want 10", got)
	}
	if got := d.Rate(10 * time.Second); math.Abs(got-110) > 1e-9 {
		t.Errorf("diurnal peak = %v, want 110", got)
	}
	if got := d.Rate(20 * time.Second); math.Abs(got-10) > 1e-9 {
		t.Errorf("diurnal full period = %v, want 10", got)
	}

	b := Burst{Base: 50, Peak: 500, Every: time.Second, Width: 100 * time.Millisecond}
	if got := b.Rate(50 * time.Millisecond); got != 500 {
		t.Errorf("in-burst rate = %v, want 500", got)
	}
	if got := b.Rate(500 * time.Millisecond); got != 50 {
		t.Errorf("between-burst rate = %v, want 50", got)
	}
	if got := b.Rate(1050 * time.Millisecond); got != 500 {
		t.Errorf("second burst rate = %v, want 500", got)
	}

	h := Herd{Outage: time.Second, Spike: 1000, Base: 100, Decay: 2 * time.Second}
	if got := h.Rate(500 * time.Millisecond); got != 0 {
		t.Errorf("rate during outage = %v, want 0", got)
	}
	if got := h.Rate(time.Second); math.Abs(got-1000) > 1e-9 {
		t.Errorf("herd spike = %v, want 1000", got)
	}
	later := h.Rate(3 * time.Second)
	if later >= 1000 || later <= 100 {
		t.Errorf("herd decay = %v, want between 100 and 1000", later)
	}
	if got := h.Rate(time.Hour); math.Abs(got-100) > 1 {
		t.Errorf("herd settled rate = %v, want ~100", got)
	}
}

func TestOutcomeClassification(t *testing.T) {
	if FromError(nil) != OutcomeOK {
		t.Error("nil error != OK")
	}
	if FromError(fmt.Errorf("wrap: %w", admission.ErrRateLimited)) != OutcomeRateLimited {
		t.Error("rate-limit sentinel not classified")
	}
	if FromError(fmt.Errorf("wrap: %w", admission.ErrShed)) != OutcomeShed {
		t.Error("shed sentinel not classified")
	}
	if FromError(errors.New("boom")) != OutcomeError {
		t.Error("generic error not classified")
	}
	cases := map[int]Outcome{
		202: OutcomeOK, 200: OutcomeOK,
		429: OutcomeRateLimited, 503: OutcomeShed,
		404: OutcomeError, 500: OutcomeError,
	}
	for code, want := range cases {
		if got := FromStatus(code); got != want {
			t.Errorf("FromStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

// TestOpenLoopOfferedRate pins the scheduler: a constant 500/s curve
// over ~400ms offers ~200 arrivals regardless of how slowly ops return.
func TestOpenLoopOfferedRate(t *testing.T) {
	var calls atomic.Uint64
	fleet := Fleet{
		Name: "steady",
		Phases: []Phase{
			{Name: "run", Duration: 400 * time.Millisecond, Curve: Constant{RPS: 500}},
		},
		Ops: []Op{{Name: "noop", Weight: 1, Do: func() Outcome {
			calls.Add(1)
			return OutcomeOK
		}}},
		Concurrency: 256,
	}
	rep := New(Config{}).Run([]Fleet{fleet})
	ph := rep.Fleets[0].Phases[0]
	// Scheduler jitter and the final partial tick allow slack; an
	// off-by-10x (closed-loop collapse or a double-count) cannot pass.
	if ph.Offered < 120 || ph.Offered > 280 {
		t.Fatalf("offered = %d over ~400ms at 500/s, want ~200", ph.Offered)
	}
	if ph.Sent != ph.Offered-ph.Overflow {
		t.Fatalf("sent %d != offered %d - overflow %d", ph.Sent, ph.Offered, ph.Overflow)
	}
	if ph.OK != calls.Load() {
		t.Fatalf("ok %d != ops executed %d", ph.OK, calls.Load())
	}
	if ph.OfferedRate < 300 || ph.OfferedRate > 700 {
		t.Fatalf("offered rate = %.0f, want ~500", ph.OfferedRate)
	}
}

// TestOpenLoopDoesNotThrottle pins the defining property: when every
// request hangs, arrivals keep being offered — the excess lands in
// client overflow instead of slowing the schedule down.
func TestOpenLoopDoesNotThrottle(t *testing.T) {
	release := make(chan struct{})
	fleet := Fleet{
		Name: "stuck",
		Phases: []Phase{
			{Name: "hang", Duration: 300 * time.Millisecond, Curve: Constant{RPS: 1000}},
		},
		Ops: []Op{{Name: "hang", Weight: 1, Do: func() Outcome {
			<-release
			return OutcomeShed
		}}},
		Concurrency: 4,
	}
	done := make(chan *Report, 1)
	go func() { done <- New(Config{}).Run([]Fleet{fleet}) }()
	// Release only after the scheduling window has closed, so the engine
	// is blocked draining the 4 stuck requests and nothing new fires.
	time.Sleep(350 * time.Millisecond)
	close(release)
	rep := <-done
	ph := rep.Fleets[0].Phases[0]
	if ph.Offered < 100 {
		t.Fatalf("offered = %d, a closed loop would have stopped at 4", ph.Offered)
	}
	if ph.Sent != 4 {
		t.Fatalf("sent = %d, want exactly the pool size 4", ph.Sent)
	}
	if ph.Overflow != ph.Offered-ph.Sent {
		t.Fatalf("overflow %d != offered %d - sent %d", ph.Overflow, ph.Offered, ph.Sent)
	}
	if ph.Shed != 4 {
		t.Fatalf("shed = %d, want 4", ph.Shed)
	}
}

// TestMixAndPhases drives two phases over a weighted mix and checks
// per-phase attribution and the op ratio.
func TestMixAndPhases(t *testing.T) {
	fleet := Fleet{
		Name: "mixed",
		Phases: []Phase{
			{Name: "a", Duration: 200 * time.Millisecond, Curve: Constant{RPS: 600}},
			{Name: "b", Duration: 200 * time.Millisecond, Curve: Constant{RPS: 600}},
		},
		Ops: []Op{
			{Name: "heavy", Weight: 3, Do: func() Outcome { return OutcomeOK }},
			{Name: "light", Weight: 1, Do: func() Outcome { return OutcomeRateLimited }},
		},
		Concurrency: 128,
	}
	snapCalls := 0
	rep := New(Config{Snapshot: func() map[string]any {
		snapCalls++
		return map[string]any{"depth": 7}
	}}).Run([]Fleet{fleet})
	if len(rep.Fleets[0].Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(rep.Fleets[0].Phases))
	}
	for _, ph := range rep.Fleets[0].Phases {
		heavy, light := ph.Ops["heavy"], ph.Ops["light"]
		if heavy == 0 || light == 0 {
			t.Fatalf("phase %s: mix missing an op: %v", ph.Phase, ph.Ops)
		}
		ratio := float64(heavy) / float64(light)
		if ratio < 1.5 || ratio > 6 {
			t.Errorf("phase %s: heavy/light = %.1f, want ~3", ph.Phase, ratio)
		}
		if ph.RateLimited != light {
			t.Errorf("phase %s: rate-limited %d != light ops %d", ph.Phase, ph.RateLimited, light)
		}
		if ph.Snapshot["depth"] != 7 {
			t.Errorf("phase %s: snapshot not attached: %v", ph.Phase, ph.Snapshot)
		}
	}
	if snapCalls != 2 {
		t.Errorf("snapshot sampled %d times, want once per phase", snapCalls)
	}
	tot := rep.Totals("a")
	if tot.Offered != rep.Fleets[0].Phases[0].Offered {
		t.Errorf("totals offered = %d, want %d", tot.Offered, rep.Fleets[0].Phases[0].Offered)
	}
}

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.95) != 0 {
		t.Error("empty quantile != 0")
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	if q := Quantile(samples, 0.50); q < 45*time.Millisecond || q > 55*time.Millisecond {
		t.Errorf("p50 = %v", q)
	}
	if q := Quantile(samples, 0.99); q < 95*time.Millisecond {
		t.Errorf("p99 = %v", q)
	}
	if q := Quantile(samples, 1); q != 100*time.Millisecond {
		t.Errorf("p100 = %v", q)
	}
}
