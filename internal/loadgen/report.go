package loadgen

import (
	"errors"
	"net/http"
	"sort"
	"time"

	"healthcloud/internal/admission"
)

// Outcome classifies one request.
type Outcome int

// Outcomes, in decreasing order of health.
const (
	// OutcomeOK is a successful request — what goodput counts.
	OutcomeOK Outcome = iota
	// OutcomeRateLimited is a 429: the tenant's token bucket was empty.
	OutcomeRateLimited
	// OutcomeShed is a 503: the platform refused the request under load
	// (admission shed or transient backpressure), with a Retry-After.
	OutcomeShed
	// OutcomeError is any other failure.
	OutcomeError
)

// FromError classifies an in-process call through the admission
// sentinels (nil = OK).
func FromError(err error) Outcome {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, admission.ErrRateLimited):
		return OutcomeRateLimited
	case errors.Is(err, admission.ErrShed):
		return OutcomeShed
	default:
		return OutcomeError
	}
}

// FromStatus classifies an HTTP response code.
func FromStatus(code int) Outcome {
	switch {
	case code >= 200 && code < 300:
		return OutcomeOK
	case code == http.StatusTooManyRequests:
		return OutcomeRateLimited
	case code == http.StatusServiceUnavailable:
		return OutcomeShed
	default:
		return OutcomeError
	}
}

// PhaseReport is one fleet's measurements over one phase.
type PhaseReport struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	// Offered counts arrivals the curve scheduled; OfferedRate is per
	// second of phase wall time. Open-loop: arrivals do not wait for
	// responses.
	Offered     uint64  `json:"offered"`
	OfferedRate float64 `json:"offered_per_sec"`
	// Sent is the subset actually dispatched; Overflow is arrivals the
	// fleet's own connection pool was too saturated to send (client-side
	// loss — distinct from anything the platform refused).
	Sent     uint64 `json:"sent"`
	Overflow uint64 `json:"client_overflow"`
	// OK is goodput; GoodputRate is per second of phase wall time.
	OK          uint64  `json:"ok"`
	GoodputRate float64 `json:"goodput_per_sec"`
	RateLimited uint64  `json:"rate_limited"`
	Shed        uint64  `json:"shed"`
	Errors      uint64  `json:"errors"`
	// Latency quantiles over successful requests, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Ops breaks Sent down by operation name.
	Ops map[string]uint64 `json:"ops,omitempty"`
	// Snapshot is the platform-side view sampled at phase end (queue
	// depth, shed state) when the engine was given a snapshot hook.
	Snapshot map[string]any `json:"snapshot,omitempty"`
}

// FleetReport is one fleet's phase sequence.
type FleetReport struct {
	Fleet  string        `json:"fleet"`
	Phases []PhaseReport `json:"phases"`
}

// Report is a full run.
type Report struct {
	Fleets []FleetReport `json:"fleets"`
}

// Totals folds every fleet's numbers for a named phase into one
// aggregate view (quantiles are the max across fleets — conservative).
func (r *Report) Totals(phase string) PhaseReport {
	out := PhaseReport{Phase: phase}
	for _, f := range r.Fleets {
		for _, p := range f.Phases {
			if p.Phase != phase {
				continue
			}
			out.Offered += p.Offered
			out.Sent += p.Sent
			out.Overflow += p.Overflow
			out.OK += p.OK
			out.RateLimited += p.RateLimited
			out.Shed += p.Shed
			out.Errors += p.Errors
			out.OfferedRate += p.OfferedRate
			out.GoodputRate += p.GoodputRate
			if p.Seconds > out.Seconds {
				out.Seconds = p.Seconds
			}
			if p.P50Ms > out.P50Ms {
				out.P50Ms = p.P50Ms
			}
			if p.P95Ms > out.P95Ms {
				out.P95Ms = p.P95Ms
			}
			if p.P99Ms > out.P99Ms {
				out.P99Ms = p.P99Ms
			}
		}
	}
	return out
}

// Quantile returns the q-th latency quantile of samples (destructive
// order, copies first). Zero with no samples.
func Quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
