package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"healthcloud/internal/consent"
	"healthcloud/internal/core"
	"healthcloud/internal/durable"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/kb"
	"healthcloud/internal/shardlake"
	"healthcloud/internal/store"
)

// E20 kills a real child process mid-ingest — including mid-frame, via
// an injected torn write — and proves the restarted instance loses no
// acknowledged upload. The child is this same binary re-executed with
// E20ChildEnv set; both cmd/benchreport and the experiments TestMain
// hook dispatch to E20Child before doing anything else.
const (
	// E20ChildEnv marks a process as the E20 crash-test child.
	E20ChildEnv = "HEALTHCLOUD_E20_CHILD"
	// e20DirEnv is the child's durable data directory.
	e20DirEnv = "HEALTHCLOUD_E20_DIR"
	// e20TornEnv arms a torn write on shard-0's journal after N appends.
	e20TornEnv = "HEALTHCLOUD_E20_TORN"

	e20Tenant = "e20-lab"
	e20Client = "e20-client"
	// e20TornAfter lets roughly 15–25 uploads land before the tear
	// (each upload journals an identified + a de-identified record on
	// each of the two replicas, plus grant frames).
	e20TornAfter = 60
	// e20AcksAfterWedge: the parent keeps the child alive for this many
	// more acknowledged uploads after the wedge, so the kill provably
	// lands mid-ingest with a torn frame already on disk.
	e20AcksAfterWedge = 5
)

// e20Event is one line of the child's stdout protocol.
type e20Event struct {
	Type     string `json:"type"` // ready | ack | wedged | error
	Seq      int    `json:"seq,omitempty"`
	UploadID string `json:"upload_id,omitempty"`
	RefID    string `json:"ref_id,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// e20Peers is the child's and the reopened parent's ledger membership.
func e20Peers() []string { return []string{"hospital", "audit-svc", "data-protection"} }

// e20Config builds the platform configuration both the child and the
// post-crash reopen use: 2 shards at R=2 (every object on both), a
// 3-peer provenance ledger, durable storage rooted at dir.
func e20Config(dir string, faults *faultinject.Registry) (core.Config, error) {
	kbCfg := kb.DefaultConfig()
	kbCfg.Drugs, kbCfg.Diseases = 10, 5
	dataset, err := kb.Generate(kbCfg)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Tenant:      e20Tenant,
		Shards:      2,
		Replicas:    2,
		LedgerPeers: e20Peers(),
		DataDir:     dir,
		KBDataset:   dataset,
		Faults:      faults,
	}, nil
}

// e20Upload pushes one patient bundle through the pipeline and waits
// for a terminal state.
func e20Upload(p *core.Platform, key []byte, seq int) (ingest.Status, error) {
	pid := fmt.Sprintf("patient-%05d", seq)
	p.Consents.Grant(pid, "study", consent.PurposeResearch, 0)
	b := fhir.NewBundle("collection")
	b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "female"})
	raw, err := fhir.Marshal(b)
	if err != nil {
		return ingest.Status{}, err
	}
	payload, err := hckrypto.EncryptGCM(key, raw, []byte(e20Client))
	if err != nil {
		return ingest.Status{}, err
	}
	id, err := p.Ingest.Upload(e20Client, "study", payload)
	if err != nil {
		return ingest.Status{}, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := p.Ingest.Status(id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("upload %s stuck in state %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// E20Child is the crash-test child's entry point: it runs a durable
// platform, acknowledges uploads on stdout (one JSON line each, only
// after the pipeline reports them stored — which means fsynced), and
// keeps ingesting until the parent SIGKILLs it. It never returns.
func E20Child() {
	enc := json.NewEncoder(os.Stdout)
	if err := e20ChildRun(enc); err != nil {
		enc.Encode(e20Event{Type: "error", Detail: err.Error()})
		os.Exit(1)
	}
	os.Exit(0)
}

func e20ChildRun(enc *json.Encoder) error {
	dir := os.Getenv(e20DirEnv)
	if dir == "" {
		return errors.New("e20 child: " + e20DirEnv + " not set")
	}
	faults := faultinject.NewRegistry(1907)
	if n, _ := strconv.Atoi(os.Getenv(e20TornEnv)); n > 0 {
		// After n clean appends, shard-0's journal writes half a frame,
		// flushes the tear to disk, and wedges — the exact on-disk image
		// a power cut mid-write leaves. The shard keeps erroring; R=2
		// replication keeps acknowledging through shard-1.
		faults.Enable("durable."+shardlake.ShardName(0)+durable.FaultTornSuffix,
			faultinject.Fault{SkipFirst: n, FailFirst: 1})
	}
	cfg, err := e20Config(dir, faults)
	if err != nil {
		return err
	}
	p, err := core.New(cfg)
	if err != nil {
		return err
	}
	key, err := p.Ingest.RegisterClient(e20Client)
	if err != nil {
		return err
	}
	enc.Encode(e20Event{Type: "ready"})
	wedgedSent := false
	for seq := 0; seq < 5000; seq++ {
		st, err := e20Upload(p, key, seq)
		if err != nil {
			return err
		}
		if st.State == ingest.StateStored {
			enc.Encode(e20Event{Type: "ack", Seq: seq, UploadID: st.UploadID, RefID: st.RefID})
		} else {
			return fmt.Errorf("upload %d ended %s: %s", seq, st.State, st.Error)
		}
		if !wedgedSent {
			for name, log := range p.LakeLogs {
				if log.Wedged() {
					enc.Encode(e20Event{Type: "wedged", Detail: name})
					wedgedSent = true
				}
			}
		}
	}
	return errors.New("e20 child drained its whole workload without being killed")
}

// e20RunChild re-executes this binary as the crash-test child, reads
// its acknowledgment stream, and SIGKILLs it once the torn write has
// landed and several more uploads were acknowledged after it. It
// returns every acknowledged upload and how many were acknowledged
// after the wedge.
func e20RunChild(dir string) (acked []e20Event, afterWedge int, err error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, 0, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		E20ChildEnv+"=1",
		e20DirEnv+"="+dir,
		e20TornEnv+"="+strconv.Itoa(e20TornAfter))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, 0, err
	}
	if err := cmd.Start(); err != nil {
		return nil, 0, err
	}
	events := make(chan e20Event, 256)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			var ev e20Event
			// The kill can land mid-line; a trailing partial record is
			// exactly the torn-tail story and is simply dropped here too.
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				events <- ev
			}
		}
	}()

	wedgeAt := -1
	timeout := time.After(120 * time.Second)
	var childErr string
loop:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				cmd.Wait()
				return nil, 0, fmt.Errorf("e20 child exited before the kill (err=%q, stderr=%q)",
					childErr, stderr.String())
			}
			switch ev.Type {
			case "ack":
				acked = append(acked, ev)
			case "wedged":
				wedgeAt = len(acked)
			case "error":
				childErr = ev.Detail
			}
			if wedgeAt >= 0 && len(acked) >= wedgeAt+e20AcksAfterWedge {
				break loop
			}
		case <-timeout:
			cmd.Process.Kill()
			cmd.Wait()
			return nil, 0, fmt.Errorf("e20 child never reached the kill point (acks=%d wedged=%v)",
				len(acked), wedgeAt >= 0)
		}
	}
	// SIGKILL: no handlers, no flushes — whatever fsync acknowledged is
	// all the disk is guaranteed to hold.
	cmd.Process.Kill()
	cmd.Wait()
	for range events {
		// drain the scanner goroutine
	}
	return acked, len(acked) - wedgeAt, nil
}

// e20FsyncBench measures the fsync-batching win on the journal
// substrate: 8 workers × 50 framed records, fsync-per-append vs
// leader-based group commit. Records are sealed up front (sealing
// serializes on the KMS and would hide the journal), and each worker
// stages its batch before awaiting durability — the pipelined-writer
// shape — so the group-commit run coalesces by construction instead of
// by scheduler luck: one leader fsync covers everything staged, while
// the baseline pays one fsync per frame no matter what.
func e20FsyncBench(syncEach bool) (wall time.Duration, stats durable.Stats, err error) {
	dir, err := os.MkdirTemp("", "healthcloud-e20-bench-")
	if err != nil {
		return 0, stats, err
	}
	defer os.RemoveAll(dir)
	kms, err := hckrypto.NewKMS("e20-bench")
	if err != nil {
		return 0, stats, err
	}
	lake := store.NewDataLake(kms, "svc-storage")
	log, err := durable.OpenLake(dir, lake, durable.Options{SyncEachAppend: syncEach})
	if err != nil {
		return 0, stats, err
	}
	const workers, perWorker = 8, 50
	payload := []byte(`{"resourceType":"Observation","status":"final","value":42}`)
	sealed := make([][]store.Sealed, workers)
	for w := range sealed {
		sealed[w] = make([]store.Sealed, perWorker)
		for j := range sealed[w] {
			s, err := lake.Seal(fmt.Sprintf("p-%02d-%03d", w, j), payload, store.Meta{
				ContentType: "fhir+json;identified", Tenant: "e20-bench", Group: "bench",
			})
			if err != nil {
				return 0, stats, err
			}
			sealed[w][j] = s
		}
	}
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			waits := make([]func() error, 0, perWorker)
			for _, s := range sealed[w] {
				wait, err := log.Append(store.JournalRecord{Op: store.OpPut, Sealed: s})
				if err != nil {
					errCh <- err
					return
				}
				waits = append(waits, wait)
			}
			for _, wait := range waits {
				if err := wait(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall = time.Since(start)
	select {
	case err := <-errCh:
		return 0, stats, err
	default:
	}
	stats = log.Stats()
	return wall, stats, log.Close()
}

// E20CrashRecovery is the kill-and-restart experiment: a child process
// ingests through a 2-shard R=2 durable lake and a 3-peer WAL-backed
// ledger, suffers an injected torn write on one shard's journal,
// acknowledges more uploads through the surviving replica, and is
// SIGKILLed mid-ingest. The parent then reopens the same data
// directory in-process and verifies the durability contract: the torn
// tail is truncated (never refused), every acknowledged upload is
// still present, a repair sweep re-converges the replicas
// byte-identically, and all three peers replay the identical
// hash-verified chain. Replay-time and fsync-batching rows quantify
// the cost of the guarantee.
func E20CrashRecovery() (*Result, error) {
	if os.Getenv(E20ChildEnv) != "" {
		return nil, errors.New("E20 must not run inside its own child")
	}
	dir, err := os.MkdirTemp("", "healthcloud-e20-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	acked, afterWedge, err := e20RunChild(dir)
	if err != nil {
		return nil, err
	}

	// Restart: reopen the same directory in-process, no faults armed.
	cfg, err := e20Config(dir, nil)
	if err != nil {
		return nil, err
	}
	reopenStart := time.Now()
	p, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("E20: reopening after crash: %w", err)
	}
	defer p.Close()
	reopenWall := time.Since(reopenStart)

	var replayed int
	var truncated int64
	var replayTime time.Duration
	for _, log := range p.LakeLogs {
		info := log.ReplayInfo()
		replayed += info.Records
		truncated += info.TruncatedBytes
		replayTime += info.Duration
	}
	if p.LedgerWAL != nil {
		replayTime += p.LedgerWAL.ReplayInfo().Duration
	}

	// Zero acknowledged-upload loss: every ref the child acked must
	// resolve after replay.
	lost := 0
	for _, ev := range acked {
		if _, err := p.Lake.Meta(ev.RefID); err != nil {
			lost++
		}
	}

	// The torn shard missed everything after its wedge; hints died with
	// the process, so convergence is re-established by the repair sweep
	// (exactly what a restarted node runs), then verified byte-by-byte.
	repaired := p.ShardLake.RepairAll()
	objects, divergent := p.ShardLake.VerifyConvergence()

	// Ledger replay: every peer restored the identical chain from the
	// shared WAL, hash-verified block by block, with identical world
	// state.
	ledgerOK := p.Provenance != nil
	height := 0
	agree := 0
	if p.Provenance != nil {
		var first string
		for i, id := range p.Provenance.PeerIDs() {
			peer, perr := p.Provenance.Peer(id)
			if perr != nil {
				return nil, perr
			}
			led := peer.Ledger()
			if verr := led.VerifyChain(); verr != nil {
				ledgerOK = false
				continue
			}
			h := led.StateHash()
			if i == 0 {
				first, height = h, led.Height()
			}
			if h == first {
				agree++
			}
		}
		ledgerOK = ledgerOK && agree == len(p.Provenance.PeerIDs()) && height > 0
	}

	// Fsync batching on the same substrate the crash test exercised.
	wallSync, statsSync, err := e20FsyncBench(true)
	if err != nil {
		return nil, err
	}
	wallGroup, statsGroup, err := e20FsyncBench(false)
	if err != nil {
		return nil, err
	}
	speedup := float64(wallSync) / float64(wallGroup)

	// Batching depth varies with scheduler and fsync speed (the -race
	// runs stage slower, so fewer waiters pile per sync); the pinned
	// shape is that group commit strictly coalesces, not a fixed ratio.
	holds := lost == 0 && afterWedge >= 1 && truncated > 0 &&
		len(divergent) == 0 && ledgerOK &&
		statsGroup.Fsyncs < statsSync.Fsyncs
	return &Result{
		ID: "E20",
		Title: fmt.Sprintf("crash recovery: SIGKILL mid-ingest with a torn frame on disk; "+
			"%d acked uploads replayed from WAL-backed segments", len(acked)),
		PaperClaim: "the Data Lake is the system of record for PHI (§II-A) and the blockchain an " +
			"immutable audit trail (§IV-B1): neither may lose an acknowledged write to a crash, " +
			"so every ack must be preceded by an fsynced journal frame and restart must replay " +
			"identical state — truncating torn tails, never silently dropping interior history",
		Rows: []Row{
			{"uploads acked before SIGKILL", float64(len(acked)), ""},
			{"acked after torn-write wedge", float64(afterWedge), ""},
			{"acked uploads missing after replay", float64(lost), ""},
			{"torn-tail bytes truncated at reopen", float64(truncated), "B"},
			{"lake records replayed", float64(replayed), ""},
			{"ledger blocks replayed", float64(height), ""},
			{"peers agreeing on replayed state hash", float64(agree), ""},
			{"platform reopen wall", reopenWall.Seconds() * 1000, "ms"},
			{"durable replay time (all logs)", replayTime.Seconds() * 1000, "ms"},
			{"records re-copied by repair sweep", float64(repaired), ""},
			{"objects verified converged", float64(objects), ""},
			{"divergent objects", float64(len(divergent)), ""},
			{"400 sealed installs, fsync-per-append", wallSync.Seconds() * 1000, "ms"},
			{"400 sealed installs, group-commit fsync", wallGroup.Seconds() * 1000, "ms"},
			{"fsyncs issued, fsync-per-append", float64(statsSync.Fsyncs), ""},
			{"fsyncs issued, group-commit", float64(statsGroup.Fsyncs), ""},
			{"group-commit speedup", speedup, "x"},
		},
		Shape: verdict(holds,
			fmt.Sprintf("SIGKILL with a torn frame lost 0 of %d acked uploads; replay truncated "+
				"%dB of torn tail, %d peers re-converged on one state hash, repair restored "+
				"byte-identical replicas, and group commit cut %d fsyncs to %d",
				len(acked), truncated, agree, statsSync.Fsyncs, statsGroup.Fsyncs)),
	}, nil
}
