package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"healthcloud/internal/anonymize"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/consent"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/monitor"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// e16CPU returns the process's cumulative CPU time (user+system). The
// overhead comparison uses CPU rather than wall clock: the pipeline's
// wall time is dominated by goroutine handoffs and scheduler latency,
// which swing tens of percent run to run, while the instrumentation's
// cost is pure CPU and rusage measures it free of wait noise.
func e16CPU() (time.Duration, error) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, err
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano()), nil
}

// e16Harness is one live ingest pipeline an arm uploads into repeatedly.
type e16Harness struct {
	tel      *telemetry.Telemetry
	pipe     *ingest.Pipeline
	consents *consent.Service
	key      []byte
	next     int // patient counter, so IDs stay unique across batches
	closers  []func()
}

// e16NewHarness wires a full ingestion pipeline (optionally with a
// 3-peer provenance ledger) under the given telemetry; nil telemetry
// runs it unobserved. Serial mode runs one worker so batches become a
// deterministic request-response sequence.
func e16NewHarness(tel *telemetry.Telemetry, withLedger, serial bool) (*e16Harness, error) {
	h := &e16Harness{tel: tel, consents: consent.NewService()}
	ok := false
	defer func() {
		if !ok {
			h.close()
		}
	}()
	kms, err := hckrypto.NewKMS("telemetry")
	if err != nil {
		return nil, err
	}
	msgBus := bus.New(bus.WithMaxAttempts(5),
		bus.WithTelemetry(tel.Registry(), tel.Spans()))
	h.closers = append(h.closers, func() { msgBus.Close() })
	scanner, err := scan.NewScanner(scan.DefaultSignatures()...)
	if err != nil {
		return nil, err
	}
	var ledger ingest.Ledger
	if withLedger {
		network, err := blockchain.NewNetwork("telemetry-ledger",
			[]string{"p0", "p1", "p2"}, 2,
			blockchain.WithTelemetry(tel.Registry(), tel.Spans()))
		if err != nil {
			return nil, err
		}
		h.closers = append(h.closers, func() { network.Close() })
		ledger = network
	}
	lake := store.NewDataLake(kms, "svc-storage")
	lake.SetTelemetry(tel.Registry())
	h.pipe, err = ingest.New(ingest.Deps{
		Tenant: "telemetry", KMS: kms, Lake: lake,
		IDMap: store.NewIdentityMap("svc-reident"),
		Bus:   msgBus, Scanner: scanner, Consents: h.consents,
		Verifier: &anonymize.VerificationService{},
		Ledger:   ledger, Log: audit.NewLog(),
		Telemetry: tel,
	})
	if err != nil {
		return nil, err
	}
	workers := 4
	if serial {
		workers = 1
	}
	h.pipe.Start(workers)
	pipe := h.pipe
	h.closers = append(h.closers, func() { pipe.Close() })
	if h.key, err = h.pipe.RegisterClient("tele-client"); err != nil {
		return nil, err
	}
	ok = true
	return h, nil
}

func (h *e16Harness) close() {
	for i := len(h.closers) - 1; i >= 0; i-- {
		h.closers[i]()
	}
}

// payloads pre-builds `uploads` encrypted bundles of `bundleSize`
// resources each, outside any timed section.
func (h *e16Harness) payloads(uploads, bundleSize int) ([][]byte, error) {
	out := make([][]byte, uploads)
	for i := range out {
		b := fhir.NewBundle("collection")
		for j := 0; j < bundleSize; j++ {
			pid := fmt.Sprintf("patient-%06d", h.next)
			h.next++
			h.consents.Grant(pid, "study", consent.PurposeResearch, 0)
			b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "other"})
		}
		raw, err := fhir.Marshal(b)
		if err != nil {
			return nil, err
		}
		if out[i], err = hckrypto.EncryptGCM(h.key, raw, []byte("tele-client")); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// batch uploads the payloads (serial: awaiting each before the next)
// and returns the CPU time the batch consumed.
func (h *e16Harness) batch(payloads [][]byte, serial bool) (time.Duration, error) {
	cpu0, err := e16CPU()
	if err != nil {
		return 0, err
	}
	for _, payload := range payloads {
		id, err := h.pipe.Upload("tele-client", "study", payload)
		if err != nil {
			return 0, err
		}
		if serial {
			if _, err := h.pipe.WaitForUpload(id, 30*time.Second); err != nil {
				return 0, err
			}
		}
	}
	if err := h.pipe.WaitForIdle(120 * time.Second); err != nil {
		return 0, err
	}
	cpu1, err := e16CPU()
	if err != nil {
		return 0, err
	}
	return cpu1 - cpu0, nil
}

// e16Stages are the instrumented pipeline stages, matching the
// ingest_stage_seconds{stage=...} series the pipeline emits.
var e16Stages = []string{
	"decrypt", "validate", "scan", "consent", "deidentify",
	"store", "store-deid", "provenance",
}

// E16TelemetryOverhead measures the observability subsystem itself: the
// per-stage latency breakdown of a traced ingest run, the share of
// pipeline time spent on provenance recording (ledger endorse + Raft
// ordering + commit wait), and — the headline — how much CPU the
// instrumentation costs versus running the identical workload with
// telemetry disabled (nil registry/tracer, the faultinject zero-overhead
// contract).
//
// Methodology: both arms are live simultaneously and the workload
// alternates between them one upload at a time, each pair's order
// flipping, so CPU frequency drift, neighbour cache pressure, and
// accumulated pipeline state (consent and status maps grow monotonically)
// hit both halves of a pair equally and cancel in its ratio; the
// sub-millisecond pair window is shorter than typical interference
// bursts, and the median over hundreds of pairs discards the pairs a
// burst (or a GC cycle) still splits. The overhead arms run without the
// ledger so the denominator is the CPU-bound pipeline work telemetry
// actually wraps, not modelled consensus waits that would flatter the
// percentage.
func E16TelemetryOverhead() (*Result, error) {
	const pairs = 480
	const overheadBundle = 40 // resources per bundle: realistic payload so fixed span cost amortizes
	const warmUploads = 20
	const tracedUploads = 40

	baseArm, err := e16NewHarness(nil, false, true)
	if err != nil {
		return nil, err
	}
	defer baseArm.close()
	instArm, err := e16NewHarness(telemetry.New(), false, true)
	if err != nil {
		return nil, err
	}
	defer instArm.close()

	// The instrumented arm also runs the self-monitoring watchdog, so the
	// overhead bound prices the whole observability stack: metrics, traces,
	// history snapshots, SLO evaluation, and dependency probes together.
	instHist := monitor.NewHistory(instArm.tel.Registry(), monitor.DefaultHistoryCapacity)
	instEval := monitor.NewEvaluator(instHist, []monitor.Objective{{
		Name:     "upload-success",
		Kind:     monitor.RatioObjective,
		Window:   time.Minute,
		Good:     []string{"ingest_stored_total"},
		Bad:      []string{"ingest_failed_total"},
		MinRatio: 0.99,
	}})
	instProber := monitor.NewProber()
	instProber.AddCheck("ingest-queue", func() monitor.Health {
		if d := instArm.pipe.QueueDepth(); d > 1000 {
			return monitor.Degraded(fmt.Sprintf("queue depth %d", d))
		}
		return monitor.Healthy("queue drained")
	})
	instWatchdog := monitor.NewWatchdog(monitor.WatchdogConfig{
		History:   instHist,
		Evaluator: instEval,
		Prober:    instProber,
		Audit:     audit.NewLog(),
		Tracer:    instArm.tel.Spans(),
	})
	instWatchdog.Start(100 * time.Millisecond)
	defer instWatchdog.Stop()

	// Warm-up batch per arm (discarded): page faults, heap growth, code
	// warm-up.
	for _, arm := range []*e16Harness{baseArm, instArm} {
		pl, err := arm.payloads(warmUploads, overheadBundle)
		if err != nil {
			return nil, err
		}
		if _, err := arm.batch(pl, true); err != nil {
			return nil, err
		}
	}
	runtime.GC()
	// One P for the measurement: the serial pipeline never needs more,
	// and keeping publisher and worker on one core removes migration and
	// cross-core cache noise from the CPU readings. GC stays on — with
	// per-upload pairing a collection lands inside one pair and the median
	// discards it, whereas disabling GC would make every allocation take
	// fresh pages and bill the instrumented arm's extra allocations at
	// page-fault prices.
	oldProcs := runtime.GOMAXPROCS(1)
	restore := func() {
		runtime.GOMAXPROCS(oldProcs)
	}
	var baseCPU, instCPU time.Duration
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		arms := [2]*e16Harness{baseArm, instArm}
		if i%2 == 1 { // alternate order within the pair so drift cancels
			arms[0], arms[1] = arms[1], arms[0]
		}
		var cpus [2]time.Duration
		for j, arm := range arms {
			pl, err := arm.payloads(1, overheadBundle)
			if err != nil {
				restore()
				return nil, err
			}
			if cpus[j], err = arm.batch(pl, true); err != nil {
				restore()
				return nil, err
			}
		}
		base, inst := cpus[0], cpus[1]
		if i%2 == 1 {
			base, inst = inst, base
		}
		baseCPU += base
		instCPU += inst
		ratios = append(ratios, (inst.Seconds()-base.Seconds())/base.Seconds()*100)
	}
	restore()
	runtime.GC()
	// Median of the per-pair ratios: a scheduler event, interrupt, or
	// co-located process landing inside one upload's window skews that
	// pair, not the verdict.
	sort.Float64s(ratios)
	overheadPct := ratios[len(ratios)/2]

	// Traced arm: full pipeline including the provenance ledger, with
	// telemetry on, for the per-stage breakdown and trace completeness.
	tel := telemetry.New()
	traced, err := e16NewHarness(tel, true, false)
	if err != nil {
		return nil, err
	}
	defer traced.close()
	pl, err := traced.payloads(tracedUploads, overheadBundle)
	if err != nil {
		return nil, err
	}
	if _, err := traced.batch(pl, false); err != nil {
		return nil, err
	}
	stored := 0
	traceID := ""
	for _, st := range traced.pipe.Statuses() {
		if st.State == ingest.StateStored {
			stored++
			if traceID == "" {
				traceID = st.TraceID
			}
		}
	}
	if stored != tracedUploads {
		return nil, fmt.Errorf("E16: %d/%d uploads stored", stored, tracedUploads)
	}
	snap := tel.Metrics.Snapshot()
	rows := []Row{
		{"uploads per overhead arm (paired, interleaved)", float64(pairs), ""},
		{"baseline cpu (telemetry nil)", baseCPU.Seconds() * 1000, "ms"},
		{"instrumented cpu (metrics+traces)", instCPU.Seconds() * 1000, "ms"},
		{"telemetry self-overhead (cpu, median pair)", overheadPct, "%"},
	}
	var pipelineSum, provenanceSum time.Duration
	if h, ok := snap.Histograms["ingest_process_seconds"]; ok {
		pipelineSum = h.Sum
		rows = append(rows, Row{"traced pipeline mean (with ledger)", h.Mean().Seconds() * 1000, "ms"})
	}
	for _, stage := range e16Stages {
		h, ok := snap.Histograms[fmt.Sprintf("ingest_stage_seconds{stage=%q}", stage)]
		if !ok {
			continue
		}
		rows = append(rows, Row{"stage " + stage + " mean", h.Mean().Seconds() * 1000, "ms"})
		if stage == "provenance" {
			provenanceSum = h.Sum
		}
	}
	provFraction := 0.0
	if pipelineSum > 0 {
		provFraction = provenanceSum.Seconds() / pipelineSum.Seconds() * 100
	}
	rows = append(rows, Row{"provenance+ordering share of pipeline", provFraction, "%"})

	// Trace completeness: one upload's trace must hold the whole story —
	// the upload accept, the bus hop, the worker, every stage, and the
	// ledger phases under the provenance stage.
	spans := tel.Tracer.Trace(traceID)
	names := make(map[string]bool, len(spans))
	for _, sp := range spans {
		names[sp.Name] = true
	}
	want := []string{"ingest.upload", "bus.hop", "ingest.process",
		"ledger.submit", "ledger.endorse", "ledger.order", "ledger.commit-wait"}
	for _, stage := range e16Stages {
		want = append(want, "ingest."+stage)
	}
	var missing []string
	for _, n := range want {
		if !names[n] {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	rows = append(rows, Row{"spans in one upload's trace", float64(len(spans)), ""})
	complete := len(missing) == 0

	shapeDetail := fmt.Sprintf("self-overhead %.1f%% (< 5%%); one trace carries all %d pipeline span kinds", overheadPct, len(want))
	if !complete {
		shapeDetail = "trace missing spans: " + strings.Join(missing, ", ")
	}
	return &Result{
		ID:    "E16",
		Title: fmt.Sprintf("telemetry: per-stage breakdown and self-overhead over %d-upload arms", pairs),
		PaperClaim: "observability must be woven in like security (§I's lifecycle weave): tracing every " +
			"ingest stage and pricing provenance, at negligible cost when enabled and zero when disabled",
		Rows:  rows,
		Shape: verdict(overheadPct < 5 && complete, shapeDetail),
	}, nil
}
