package experiments

import (
	"fmt"
	"time"

	"healthcloud/internal/hccache"
	"healthcloud/internal/kb"
)

// kbKeyspace builds the cacheable key universe from a dataset.
func kbKeyspace(d *kb.Dataset) []string {
	keys := make([]string, 0, len(d.DrugIDs)+len(d.DisIDs))
	for _, id := range d.DrugIDs {
		keys = append(keys, "drug:"+id)
	}
	for _, id := range d.DisIDs {
		keys = append(keys, "disease:"+id)
	}
	return keys
}

// E1CacheVsRemote measures the §I/§III claim that remote knowledge-base
// access costs orders of magnitude more than cached access: 10k Zipf
// reads against a 40 ms remote KB, with and without a client cache.
func E1CacheVsRemote() (*Result, error) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 150, 100
	d, err := kb.Generate(cfg)
	if err != nil {
		return nil, err
	}
	const reads = 10_000
	const wan = 40 * time.Millisecond
	keys := zipfKeys(kbKeyspace(d), reads, 1)

	// Arm A: every read goes to the remote KB.
	sleepA, remoteTimeA := accountedSleeper()
	remoteA := kb.NewRemoteKB(d, wan, kb.WithSleeper(sleepA))
	startA := time.Now()
	for _, k := range keys {
		if _, _, err := remoteA.Fetch(k); err != nil {
			return nil, err
		}
	}
	wallA := time.Since(startA) + *remoteTimeA

	// Arm B: a 256-entry client cache in front of the same KB.
	sleepB, remoteTimeB := accountedSleeper()
	remoteB := kb.NewRemoteKB(d, wan, kb.WithSleeper(sleepB))
	tier, err := hccache.New(256, 0)
	if err != nil {
		return nil, err
	}
	cached, err := hccache.NewTiered(remoteB.Loader(), tier)
	if err != nil {
		return nil, err
	}
	startB := time.Now()
	for _, k := range keys {
		if _, err := cached.Get(k); err != nil {
			return nil, err
		}
	}
	wallB := time.Since(startB) + *remoteTimeB

	meanA := wallA / reads
	meanB := wallB / reads
	speedup := float64(meanA) / float64(meanB)
	hitRate := tier.Stats().HitRate()
	return &Result{
		ID:    "E1",
		Title: "cached vs remote knowledge-base access (10k Zipf reads, 40 ms WAN)",
		PaperClaim: "remote cloud access costs orders of magnitude more than local " +
			"access; caching dramatically improves performance (§I, §III)",
		Rows: []Row{
			{"mean latency, remote only", float64(meanA.Microseconds()), "µs"},
			{"mean latency, client cache (256 entries)", float64(meanB.Microseconds()), "µs"},
			{"cache hit rate", hitRate * 100, "%"},
			{"speedup", speedup, "x"},
		},
		Shape: verdict(speedup > 10, fmt.Sprintf("cached access %.0fx faster (orders of magnitude)", speedup)),
	}, nil
}

// E2MultiLevelCache measures Fig 4's multi-level caching: client tier →
// server tier → remote, across client cache sizes. Tier costs model a
// device (0 extra), a LAN hop to the platform (2 ms), and the WAN (40 ms).
func E2MultiLevelCache() (*Result, error) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 150, 100
	d, err := kb.Generate(cfg)
	if err != nil {
		return nil, err
	}
	const reads = 10_000
	const lan, wan = 2 * time.Millisecond, 40 * time.Millisecond
	keys := zipfKeys(kbKeyspace(d), reads, 2)
	rows := []Row{}
	var bestSpeedup float64
	for _, clientSize := range []int{16, 64, 256} {
		sleep, remoteTime := accountedSleeper()
		remote := kb.NewRemoteKB(d, wan, kb.WithSleeper(sleep))
		clientTier, err := hccache.New(clientSize, 0)
		if err != nil {
			return nil, err
		}
		serverTier, err := hccache.New(4096, 0)
		if err != nil {
			return nil, err
		}
		tc, err := hccache.NewTiered(remote.Loader(), clientTier, serverTier)
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			if _, err := tc.Get(k); err != nil {
				return nil, err
			}
		}
		stats := tc.TierStats()
		// Modeled total: every server-tier probe pays the LAN hop; remote
		// loads pay the WAN (accounted in remoteTime).
		serverProbes := stats[1].Hits + stats[1].Misses
		modeled := time.Duration(serverProbes)*lan + *remoteTime
		mean := modeled / reads
		remoteOnly := wan
		speedup := float64(remoteOnly) / float64(mean)
		if speedup > bestSpeedup {
			bestSpeedup = speedup
		}
		rows = append(rows,
			Row{fmt.Sprintf("client=%d: client hit rate", clientSize), stats[0].HitRate() * 100, "%"},
			Row{fmt.Sprintf("client=%d: mean latency", clientSize), float64(mean.Microseconds()), "µs"},
			Row{fmt.Sprintf("client=%d: speedup vs remote-only", clientSize), speedup, "x"},
		)
	}
	return &Result{
		ID:         "E2",
		Title:      "multi-level caching (client+server tiers) across client cache sizes",
		PaperClaim: "caching at multiple levels, not just the client level, improves performance (§I, Fig 4)",
		Rows:       rows,
		Shape:      verdict(bestSpeedup > 20, fmt.Sprintf("two tiers reach %.0fx over remote-only; larger client tiers monotonically help", bestSpeedup)),
	}, nil
}

func verdict(holds bool, detail string) string {
	if holds {
		return "HOLDS — " + detail
	}
	return "DOES NOT HOLD — " + detail
}
