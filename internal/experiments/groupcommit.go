package experiments

import (
	"fmt"
	"sort"
	"time"

	"healthcloud/internal/anonymize"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/consent"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// e17Warmup uploads run untimed before each arm's measured section.
const e17Warmup = 16

// e17Sample is one arm's measurement.
type e17Sample struct {
	tps       float64 // sustained ingest throughput, uploads/s
	provMean  float64 // provenance stage mean wall time per upload, ms
	provShare float64 // provenance stage share of pipeline time, %
	meanBatch float64 // mean group-commit size (batched arms only)
}

// e17Run stands up a fresh full pipeline (3-peer 2-of-3 provenance
// ledger endorsing under the given signature scheme) with the given
// worker count, optionally fronted by the group-commit batcher, pushes
// `uploads` single-patient bundles through it, and returns the sustained
// throughput. Every upload must reach the stored state — a silently
// failing arm would fake its throughput.
func e17Run(workers, uploads int, batched bool, scheme hckrypto.Scheme) (e17Sample, error) {
	var s e17Sample
	tel := telemetry.New()
	kms, err := hckrypto.NewKMS("groupcommit")
	if err != nil {
		return s, err
	}
	msgBus := bus.New(bus.WithMaxAttempts(5))
	defer msgBus.Close()
	scanner, err := scan.NewScanner(scan.DefaultSignatures()...)
	if err != nil {
		return s, err
	}
	network, err := blockchain.NewNetwork("provenance",
		[]string{"p0", "p1", "p2"}, 2,
		blockchain.WithSignatureScheme(scheme),
		blockchain.WithTelemetry(tel.Registry(), tel.Spans()))
	if err != nil {
		return s, err
	}
	defer network.Close()
	var ledger ingest.Ledger = network
	var batcher *blockchain.Batcher
	if batched {
		batcher = blockchain.NewBatcher(network, blockchain.BatcherConfig{
			MaxBatch: 64, MaxDelay: 5 * time.Millisecond,
			Registry: tel.Registry(), Tracer: tel.Spans(),
		})
		defer batcher.Close()
		ledger = batcher
	}
	consents := consent.NewService()
	pipe, err := ingest.New(ingest.Deps{
		Tenant: "groupcommit", KMS: kms,
		Lake:  store.NewDataLake(kms, "svc-storage"),
		IDMap: store.NewIdentityMap("svc-reident"),
		Bus:   msgBus, Scanner: scanner, Consents: consents,
		Verifier: &anonymize.VerificationService{},
		Ledger:   ledger, Log: audit.NewLog(),
		Telemetry: tel,
	})
	if err != nil {
		return s, err
	}
	defer pipe.Close()
	pipe.Start(workers)
	key, err := pipe.RegisterClient("e17-client")
	if err != nil {
		return s, err
	}

	// Pre-build payloads outside the timed section.
	payloads := make([][]byte, uploads)
	for i := range payloads {
		pid := fmt.Sprintf("patient-%06d", i)
		consents.Grant(pid, "study", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		if err := b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "other"}); err != nil {
			return s, err
		}
		raw, err := fhir.Marshal(b)
		if err != nil {
			return s, err
		}
		if payloads[i], err = hckrypto.EncryptGCM(key, raw, []byte("e17-client")); err != nil {
			return s, err
		}
	}

	// Warm-up (untimed): fault the code paths in, grow the heap, let the
	// bus/worker handoff reach steady state.
	warm := payloads[:e17Warmup]
	timed := payloads[e17Warmup:]
	for _, payload := range warm {
		if _, err := pipe.Upload("e17-client", "study", payload); err != nil {
			return s, err
		}
	}
	if err := pipe.WaitForIdle(120 * time.Second); err != nil {
		return s, err
	}

	start := time.Now()
	for _, payload := range timed {
		if _, err := pipe.Upload("e17-client", "study", payload); err != nil {
			return s, err
		}
	}
	if err := pipe.WaitForIdle(120 * time.Second); err != nil {
		return s, err
	}
	elapsed := time.Since(start)

	stored := 0
	for _, st := range pipe.Statuses() {
		if st.State == ingest.StateStored {
			stored++
		}
	}
	if stored != uploads {
		return s, fmt.Errorf("E17: %d/%d uploads stored (workers=%d batched=%v)",
			stored, uploads, workers, batched)
	}
	s.tps = float64(len(timed)) / elapsed.Seconds()

	snap := tel.Metrics.Snapshot()
	if prov, ok := snap.Histograms[`ingest_stage_seconds{stage="provenance"}`]; ok {
		s.provMean = prov.Mean().Seconds() * 1000
		if pl, ok := snap.Histograms["ingest_process_seconds"]; ok && pl.Sum > 0 {
			s.provShare = prov.Sum.Seconds() / pl.Sum.Seconds() * 100
		}
	}
	if batcher != nil {
		s.meanBatch = batcher.Stats().MeanBatchSize()
	}
	return s, nil
}

// e17Median picks the sample with the median throughput.
func e17Median(samples []e17Sample) e17Sample {
	sorted := append([]e17Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].tps < sorted[j].tps })
	return sorted[len(sorted)/2]
}

// E17GroupCommit measures what group-commit provenance batching buys the
// ingest path. E16 showed provenance (endorse + order + commit-wait)
// consumes ~97% of pipeline time; E6 showed batching amortizes ledger
// cost 2.9× at the blockchain layer. E17 closes the loop end to end:
// sustained ingest throughput at worker counts {1, 4, 16}, batching off
// (one Submit per upload, the pre-batcher behaviour) versus on (workers
// enqueue into the group-commit Batcher, max 64 tx / 5 ms window, one
// group endorsement + one ordering round per batch).
//
// Expected shape: at 16 workers the batcher coalesces concurrent
// provenance events into large groups and sustains at least 2× the
// unbatched throughput, and the per-stage breakdown shifts away from
// provenance. With a single worker there is nothing to coalesce — the
// batcher honestly pays its 5 ms window for no win, which is why
// batching targets the concurrent-ingest regime (and why it is a
// config knob, not a default).
func E17GroupCommit() (*Result, error) {
	const uploads = 120 + e17Warmup
	const rounds = 3 // pinned 16-worker arms: median of 3 interleaved rounds

	// The ledger is pinned to RSA-PSS endorsement: E17's claim is about
	// amortizing an expensive per-transaction endorsement, and its >= 2x
	// bar was calibrated against RSA signing cost. Under the Ed25519
	// runtime default endorsement is so cheap that batching has nothing
	// to amortize (E22 measures exactly that shift).
	const scheme = hckrypto.SchemeRSAPSS

	// Informational arms: single measurement each.
	un1, err := e17Run(1, uploads, false, scheme)
	if err != nil {
		return nil, err
	}
	ba1, err := e17Run(1, uploads, true, scheme)
	if err != nil {
		return nil, err
	}
	un4, err := e17Run(4, uploads, false, scheme)
	if err != nil {
		return nil, err
	}
	ba4, err := e17Run(4, uploads, true, scheme)
	if err != nil {
		return nil, err
	}

	// Pinned arms: the acceptance ratio rides on these, so run the pair
	// back to back three times — drift (thermal, neighbours, GC phase)
	// hits both halves of a round — and take each side's median.
	var un16s, ba16s []e17Sample
	for i := 0; i < rounds; i++ {
		u, err := e17Run(16, uploads, false, scheme)
		if err != nil {
			return nil, err
		}
		b, err := e17Run(16, uploads, true, scheme)
		if err != nil {
			return nil, err
		}
		un16s = append(un16s, u)
		ba16s = append(ba16s, b)
	}
	un16 := e17Median(un16s)
	ba16 := e17Median(ba16s)

	ratio := 0.0
	if un16.tps > 0 {
		ratio = ba16.tps / un16.tps
	}
	rows := []Row{
		{"unbatched @ 1 worker", un1.tps, "uploads/s"},
		{"batched @ 1 worker", ba1.tps, "uploads/s"},
		{"unbatched @ 4 workers", un4.tps, "uploads/s"},
		{"batched @ 4 workers", ba4.tps, "uploads/s"},
		{"unbatched @ 16 workers (median of 3)", un16.tps, "uploads/s"},
		{"batched @ 16 workers (median of 3)", ba16.tps, "uploads/s"},
		{"speedup @ 16 workers (batched/unbatched)", ratio, "x"},
		{"mean group size @ 16 workers", ba16.meanBatch, "tx"},
		{"provenance stage mean @ 16 workers, unbatched", un16.provMean, "ms"},
		{"provenance stage mean @ 16 workers, batched", ba16.provMean, "ms"},
		{"provenance share @ 16 workers, unbatched", un16.provShare, "%"},
		{"provenance share @ 16 workers, batched", ba16.provShare, "%"},
	}

	holds := ratio >= 2 && ba16.meanBatch > 1 && ba16.provMean < un16.provMean
	detail := fmt.Sprintf(
		"group commit sustains %.2fx unbatched throughput at 16 workers (mean group %.1f tx); provenance stage mean %.1fms -> %.1fms",
		ratio, ba16.meanBatch, un16.provMean, ba16.provMean)
	return &Result{
		ID:    "E17",
		Title: fmt.Sprintf("group-commit provenance batching, %d uploads per arm", uploads),
		PaperClaim: "per-record chain writes serialize ingestion behind endorsement and ordering (§IV, Fig 6); " +
			"decoupling record flow from chain writes via group commit sustains concurrent ingest at scale",
		Rows:  rows,
		Shape: verdict(holds, detail),
	}, nil
}
