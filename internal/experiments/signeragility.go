package experiments

import (
	"fmt"
	"sort"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/hckrypto"
)

// E22 sizing: enough endorsements per round that the RSA arm runs long
// enough to time stably, small enough that three interleaved rounds of
// both schemes finish in seconds.
const (
	e22Endorse = 192
	e22Warmup  = 8
	e22Rounds  = 3
)

// e22Txs builds distinct transactions so no arm endorses a cached digest.
func e22Txs(n int, tag string) []blockchain.Transaction {
	txs := make([]blockchain.Transaction, n)
	for i := range txs {
		txs[i] = blockchain.NewTransaction(blockchain.EventDataReceipt, "e22",
			fmt.Sprintf("h-%s-%d", tag, i), nil, map[string]string{"round": tag})
	}
	return txs
}

// e22EndorseRate times one peer endorsing every transaction serially —
// the per-endorsement signature cost with the digesting it signs over,
// nothing else (no ordering, no commit) — and returns ops/s.
func e22EndorseRate(peer *blockchain.Peer, txs []blockchain.Transaction) (float64, error) {
	for i := 0; i < e22Warmup; i++ {
		if _, err := peer.Endorse(&txs[i%len(txs)]); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := range txs {
		if _, err := peer.Endorse(&txs[i]); err != nil {
			return 0, err
		}
	}
	return float64(len(txs)) / time.Since(start).Seconds(), nil
}

// e22VerifyRate times envelope verification of pre-built endorsements
// under the peer's verifier — the commit-path cost every peer pays for
// every endorsement it validates.
func e22VerifyRate(peer *blockchain.Peer, txs []blockchain.Transaction) (float64, error) {
	digests := make([][]byte, len(txs))
	sigs := make([][]byte, len(txs))
	for i := range txs {
		e, err := peer.Endorse(&txs[i])
		if err != nil {
			return 0, err
		}
		digests[i] = txs[i].Digest()
		sigs[i] = e.Signature
	}
	v := peer.Verifier()
	start := time.Now()
	for i := range txs {
		if !hckrypto.VerifyEnvelope(v, digests[i], sigs[i]) {
			return 0, fmt.Errorf("E22: own endorsement failed to verify (%s)", peer.Scheme())
		}
	}
	return float64(len(txs)) / time.Since(start).Seconds(), nil
}

func e22Median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// E22SignerAgility measures what the Ed25519 default buys over the
// RSA-PSS compatibility scheme on the two paths that pay for signatures:
// raw peer endorsement (sign side of the endorse phase) and sustained
// unbatched ingest at 16 workers, where every upload spends a full
// endorsement policy before ordering. Both schemes run interleaved —
// RSA round, Ed25519 round, three times — so machine drift lands on both
// arms, and each side's median is compared.
//
// Expected shape: Ed25519 endorses at least 5x the RSA-PSS rate on a
// single peer (in practice ~30x: an RSA-2048-PSS sign costs ~1ms of CPU,
// an Ed25519 sign ~30µs), and end-to-end unbatched ingest — where
// ordering and commit-wait dilute the signature share — still does not
// give the gain back. This is the quantitative case for the crypto-
// agility default flip, and the counterweight to E6/E17, whose batching
// claims are calibrated against RSA cost and stay pinned to it.
func E22SignerAgility() (*Result, error) {
	rsaPeer, err := blockchain.NewPeerWithScheme("e22-rsa", hckrypto.SchemeRSAPSS, nil)
	if err != nil {
		return nil, err
	}
	edPeer, err := blockchain.NewPeerWithScheme("e22-ed", hckrypto.SchemeEd25519, nil)
	if err != nil {
		return nil, err
	}

	var rsaSign, edSign []float64
	for round := 0; round < e22Rounds; round++ {
		r, err := e22EndorseRate(rsaPeer, e22Txs(e22Endorse, fmt.Sprintf("rsa-%d", round)))
		if err != nil {
			return nil, err
		}
		e, err := e22EndorseRate(edPeer, e22Txs(e22Endorse, fmt.Sprintf("ed-%d", round)))
		if err != nil {
			return nil, err
		}
		rsaSign = append(rsaSign, r)
		edSign = append(edSign, e)
	}
	rsaRate, edRate := e22Median(rsaSign), e22Median(edSign)
	ratio := 0.0
	if rsaRate > 0 {
		ratio = edRate / rsaRate
	}

	rsaVerify, err := e22VerifyRate(rsaPeer, e22Txs(e22Endorse, "rsa-v"))
	if err != nil {
		return nil, err
	}
	edVerify, err := e22VerifyRate(edPeer, e22Txs(e22Endorse, "ed-v"))
	if err != nil {
		return nil, err
	}

	// End-to-end arm: the E17 ingest rig, unbatched at 16 workers (the
	// endorsement-heaviest configuration: one full 2-of-3 policy per
	// upload), interleaved RSA/Ed25519 rounds with medians like above.
	const uploads = 120 + e17Warmup
	var rsaTPS, edTPS []float64
	for round := 0; round < e22Rounds; round++ {
		r, err := e17Run(16, uploads, false, hckrypto.SchemeRSAPSS)
		if err != nil {
			return nil, err
		}
		e, err := e17Run(16, uploads, false, hckrypto.SchemeEd25519)
		if err != nil {
			return nil, err
		}
		rsaTPS = append(rsaTPS, r.tps)
		edTPS = append(edTPS, e.tps)
	}
	rsaIngest, edIngest := e22Median(rsaTPS), e22Median(edTPS)
	ingestGain := 0.0
	if rsaIngest > 0 {
		ingestGain = edIngest / rsaIngest
	}

	rows := []Row{
		{"single-peer endorse, rsa-pss (median of 3)", rsaRate, "ops/s"},
		{"single-peer endorse, ed25519 (median of 3)", edRate, "ops/s"},
		{"endorse speedup (ed25519/rsa-pss)", ratio, "x"},
		{"single-peer verify, rsa-pss", rsaVerify, "ops/s"},
		{"single-peer verify, ed25519", edVerify, "ops/s"},
		{"unbatched ingest @ 16 workers, rsa-pss (median of 3)", rsaIngest, "uploads/s"},
		{"unbatched ingest @ 16 workers, ed25519 (median of 3)", edIngest, "uploads/s"},
		{"ingest gain (ed25519/rsa-pss)", ingestGain, "x"},
	}
	holds := ratio >= 5 && ingestGain > 1
	detail := fmt.Sprintf(
		"ed25519 endorses %.0fx faster than rsa-pss on a single peer; unbatched 16-worker ingest moves %.2fx",
		ratio, ingestGain)
	return &Result{
		ID:    "E22",
		Title: fmt.Sprintf("signature-scheme agility: ed25519 vs rsa-pss endorsement, %d signs per round", e22Endorse),
		PaperClaim: "per-event blockchain provenance is feasible at scale (§IV, Fig 6); signature cost is the " +
			"per-transaction floor batching cannot amortize, so a cheaper scheme lifts the whole ingest path",
		Rows:  rows,
		Shape: verdict(holds, detail),
	}, nil
}
