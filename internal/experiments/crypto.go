package experiments

import (
	"fmt"
	"time"

	"healthcloud/internal/hckrypto"
	"healthcloud/internal/redact"
)

// E3SharedVsPublicKey measures §IV-B1's design rule: "public key
// encryption is too expensive to maintain the scalability of the
// system". AES-256-GCM is compared against RSA-2048-OAEP (chunked, since
// RSA cannot seal more than ~190 bytes per operation).
func E3SharedVsPublicKey() (*Result, error) {
	symKey, err := hckrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	rsaKey, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return nil, err
	}
	pub := rsaKey.Public()
	chunk := pub.MaxOAEPPayload()

	rows := []Row{}
	var worstRatio float64 = 1e18
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		// AES-GCM.
		iters := 64
		if size >= 1<<20 {
			iters = 16
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := hckrypto.EncryptGCM(symKey, payload, nil); err != nil {
				return nil, err
			}
		}
		aesPer := time.Since(start) / time.Duration(iters)
		aesMBps := float64(size) / aesPer.Seconds() / 1e6

		// RSA-OAEP, chunked. One pass is enough — it is slow.
		start = time.Now()
		for off := 0; off < size; off += chunk {
			end := off + chunk
			if end > size {
				end = size
			}
			if _, err := pub.EncryptOAEP(payload[off:end]); err != nil {
				return nil, err
			}
		}
		rsaPer := time.Since(start)
		rsaMBps := float64(size) / rsaPer.Seconds() / 1e6
		ratio := aesMBps / rsaMBps
		if ratio < worstRatio {
			worstRatio = ratio
		}
		rows = append(rows,
			Row{fmt.Sprintf("%7d B: AES-256-GCM throughput", size), aesMBps, "MB/s"},
			Row{fmt.Sprintf("%7d B: RSA-2048-OAEP throughput", size), rsaMBps, "MB/s"},
			Row{fmt.Sprintf("%7d B: shared-key advantage", size), ratio, "x"},
		)
	}
	return &Result{
		ID:         "E3",
		Title:      "shared-key (AES-GCM) vs public-key (RSA-OAEP) bulk encryption",
		PaperClaim: "public key encryption is too expensive to maintain the scalability of the system (§IV-B1)",
		Rows:       rows,
		Shape:      verdict(worstRatio > 10, fmt.Sprintf("shared-key at least %.0fx faster at every size", worstRatio)),
	}, nil
}

// E4HMACVsSignature measures §IV-B1's recommendation of HMACs over
// digital signatures for integrity: tag+verify cost per 64 KiB record.
func E4HMACVsSignature() (*Result, error) {
	key, err := hckrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	signKey, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	const iters = 200
	start := time.Now()
	for i := 0; i < iters; i++ {
		tag := hckrypto.MAC(key, payload)
		if !hckrypto.VerifyMAC(key, payload, tag) {
			return nil, fmt.Errorf("hmac verify failed")
		}
	}
	hmacPer := time.Since(start) / iters

	const sigIters = 20
	start = time.Now()
	for i := 0; i < sigIters; i++ {
		sig, err := signKey.Sign(payload)
		if err != nil {
			return nil, err
		}
		if !signKey.Public().Verify(payload, sig) {
			return nil, fmt.Errorf("signature verify failed")
		}
	}
	sigPer := time.Since(start) / sigIters
	ratio := float64(sigPer) / float64(hmacPer)
	return &Result{
		ID:         "E4",
		Title:      "HMAC-SHA256 vs RSA-PSS digital signature (tag+verify, 64 KiB record)",
		PaperClaim: "we recommend using HMACs instead of digital signatures (§IV-B1)",
		Rows: []Row{
			{"HMAC tag+verify", float64(hmacPer.Microseconds()), "µs/op"},
			{"RSA-PSS sign+verify", float64(sigPer.Microseconds()), "µs/op"},
			{"HMAC advantage", ratio, "x"},
		},
		Shape: verdict(ratio > 5, fmt.Sprintf("HMAC %.0fx cheaper per record", ratio)),
	}, nil
}

// E7RedactableSignatures measures the leakage-free redactable-signature
// scheme (§IV-B1): cost of sign/redact/verify across record widths, plus
// the dictionary-attack outcome against both schemes.
func E7RedactableSignatures() (*Result, error) {
	key, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return nil, err
	}
	rows := []Row{}
	for _, fields := range []int{8, 64, 256} {
		rec := make(redact.Record, fields)
		for i := range rec {
			rec[i] = redact.Field{Name: fmt.Sprintf("f%d", i), Value: fmt.Sprintf("v%d", i)}
		}
		disclose := make([]int, 0, fields/2)
		for i := 0; i < fields; i += 2 {
			disclose = append(disclose, i)
		}
		start := time.Now()
		sr, err := redact.Sign(key, rec)
		if err != nil {
			return nil, err
		}
		signT := time.Since(start)
		start = time.Now()
		rr, err := sr.Redact(disclose)
		if err != nil {
			return nil, err
		}
		redactT := time.Since(start)
		start = time.Now()
		if err := redact.VerifyRedacted(key.Public(), rr); err != nil {
			return nil, err
		}
		verifyT := time.Since(start)
		rows = append(rows,
			Row{fmt.Sprintf("%3d fields: sign", fields), float64(signT.Microseconds()), "µs"},
			Row{fmt.Sprintf("%3d fields: redact 50%%", fields), float64(redactT.Microseconds()), "µs"},
			Row{fmt.Sprintf("%3d fields: verify redacted", fields), float64(verifyT.Microseconds()), "µs"},
		)
	}

	// Dictionary attack on a withheld field: must succeed against the
	// naive scheme and fail against the leakage-free one.
	rec := redact.Record{{Name: "diagnosis", Value: "HIV positive"}, {Name: "name", Value: "J"}}
	sr, err := redact.Sign(key, rec)
	if err != nil {
		return nil, err
	}
	rr, err := sr.Redact([]int{1})
	if err != nil {
		return nil, err
	}
	leakFree := 0.0
	if string(rr.Commitments[0]) == string(redact.NaiveLeaf(rec[0])) {
		leakFree = 1.0
	}
	nr, err := redact.NaiveSign(key, rec)
	if err != nil {
		return nil, err
	}
	nred, err := nr.NaiveRedact([]int{1})
	if err != nil {
		return nil, err
	}
	naiveLeak := 0.0
	if string(nred.LeafHashes[0]) == string(redact.NaiveLeaf(rec[0])) {
		naiveLeak = 1.0
	}
	rows = append(rows,
		Row{"dictionary attack succeeds vs naive Merkle", naiveLeak, "(1=yes)"},
		Row{"dictionary attack succeeds vs leakage-free", leakFree, "(1=yes)"},
	)
	return &Result{
		ID:         "E7",
		Title:      "leakage-free redactable signatures: cost and leakage",
		PaperClaim: "existing Merkle/hash sharing leaks information; leakage-free redactable signatures should be used (§IV-B1)",
		Rows:       rows,
		Shape:      verdict(naiveLeak == 1 && leakFree == 0, "naive scheme leaks to a dictionary attack, the blinded scheme does not; cost grows linearly in fields"),
	}, nil
}
