// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md's index (E1–E14), each regenerating the
// measurement behind a figure or quantitative claim of the paper. The
// functions return structured results so cmd/benchreport can print the
// EXPERIMENTS.md tables and tests can assert the *shape* of each claim
// (who wins, by roughly what factor).
package experiments

import (
	"fmt"
	"math/rand"
	"time"
)

// Row is one measurement line.
type Row struct {
	Label string
	Value float64
	Unit  string
}

// Result is one experiment's output.
type Result struct {
	ID         string
	Title      string
	PaperClaim string
	Rows       []Row
	Shape      string // the qualitative verdict the paper predicts
}

// String renders the result as a fixed-width table.
func (r *Result) String() string {
	out := fmt.Sprintf("%s — %s\n  claim: %s\n", r.ID, r.Title, r.PaperClaim)
	for _, row := range r.Rows {
		out += fmt.Sprintf("  %-44s %14.3f %s\n", row.Label, row.Value, row.Unit)
	}
	out += fmt.Sprintf("  shape: %s\n", r.Shape)
	return out
}

// zipfKeys draws n keys from a Zipf(s=1.07) distribution over the
// keyspace — the standard skewed-popularity model for cache studies.
func zipfKeys(keyspace []string, n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.07, 1, uint64(len(keyspace)-1))
	out := make([]string, n)
	for i := range out {
		out[i] = keyspace[z.Uint64()]
	}
	return out
}

// accountedSleeper returns a sleeper that accumulates modeled time
// instead of blocking, so WAN-scale experiments run in microseconds.
func accountedSleeper() (func(time.Duration), *time.Duration) {
	total := new(time.Duration)
	return func(d time.Duration) { *total += d }, total
}
