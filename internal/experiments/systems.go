package experiments

import (
	"fmt"
	"time"

	"healthcloud/internal/anonymize"
	"healthcloud/internal/attest"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/cloud"
	"healthcloud/internal/consent"
	"healthcloud/internal/fhir"
	"healthcloud/internal/gateway"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
)

// E5IngestPipeline measures why §II-B makes ingestion asynchronous:
// the client-facing accept path (stage + enqueue + status URL) must cost
// far less than the full decrypt/validate/scan/consent/de-identify/store
// pipeline, so clients are never blocked on the slow part. Bundles carry
// 200 lab observations each so the background work is realistic.
func E5IngestPipeline() (*Result, error) {
	const bundles = 300
	kms, err := hckrypto.NewKMS("bench")
	if err != nil {
		return nil, err
	}
	msgBus := bus.New()
	defer msgBus.Close()
	scanner, err := scan.NewScanner(scan.DefaultSignatures()...)
	if err != nil {
		return nil, err
	}
	consents := consent.NewService()
	p, err := ingest.New(ingest.Deps{
		Tenant: "bench", KMS: kms,
		Lake:  store.NewDataLake(kms, "svc-storage"),
		IDMap: store.NewIdentityMap("svc-reident"),
		Bus:   msgBus, Scanner: scanner, Consents: consents,
		Verifier: &anonymize.VerificationService{},
		Log:      audit.NewLog(),
	})
	if err != nil {
		return nil, err
	}
	p.Start(4)
	defer p.Close()
	key, err := p.RegisterClient("bench-client")
	if err != nil {
		return nil, err
	}
	payloads := make([][]byte, bundles)
	for i := range payloads {
		pid := fmt.Sprintf("patient-%04d", i)
		consents.Grant(pid, "study", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "female"})
		for v := 0; v < 200; v++ {
			b.AddResource(&fhir.Observation{ResourceType: "Observation", Status: "final",
				Code:          fhir.CodeableConcept{Coding: []fhir.Coding{{System: "http://loinc.org", Code: "4548-4", Display: "HbA1c"}}},
				Subject:       fhir.Reference{Reference: "Patient/" + pid},
				ValueQuantity: &fhir.Quantity{Value: 5 + float64(v%40)/10, Unit: "%"}})
		}
		raw, err := fhir.Marshal(b)
		if err != nil {
			return nil, err
		}
		if payloads[i], err = hckrypto.EncryptGCM(key, raw, []byte("bench-client")); err != nil {
			return nil, err
		}
	}
	// Client-facing accept latency: what Upload costs the caller.
	var acceptTotal time.Duration
	start := time.Now()
	for _, payload := range payloads {
		t0 := time.Now()
		if _, err := p.Upload("bench-client", "study", payload); err != nil {
			return nil, err
		}
		acceptTotal += time.Since(t0)
	}
	if err := p.WaitForIdle(120 * time.Second); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	acceptMean := acceptTotal / bundles
	// Full processing latency per bundle (all stages, amortized).
	processMean := wall / bundles
	tput := float64(bundles) / wall.Seconds()
	ratio := float64(processMean) / float64(acceptMean)
	return &Result{
		ID:         "E5",
		Title:      "asynchronous ingestion: accept latency vs full pipeline (300 bundles × 200 observations)",
		PaperClaim: "data ingestion is a slow process and is thus designed as an asynchronous communication process behind a status URL (§II-B)",
		Rows: []Row{
			{"client-facing accept latency", float64(acceptMean.Microseconds()), "µs"},
			{"full pipeline latency per bundle", float64(processMean.Microseconds()), "µs"},
			{"async advantage for the client", ratio, "x"},
			{"sustained pipeline throughput", tput, "bundles/s"},
		},
		Shape: verdict(ratio > 10, fmt.Sprintf("the accept path is %.0fx cheaper than the pipeline it defers", ratio)),
	}, nil
}

// E6LedgerCommit measures provenance-blockchain commit throughput across
// batch sizes (§IV): batching amortizes endorsement + ordering.
func E6LedgerCommit() (*Result, error) {
	const total = 128
	rows := []Row{}
	var tpSingle, tpBest float64
	for _, batch := range []int{1, 16, 64} {
		// Pinned to RSA-PSS endorsement: the amortization claim (and its
		// gain > 2 bar) is calibrated against expensive per-tx signatures;
		// E22 covers the cheap-signature (Ed25519) regime.
		net, err := blockchain.NewNetwork("bench", []string{"p0", "p1", "p2"}, 2,
			blockchain.WithSignatureScheme(hckrypto.SchemeRSAPSS))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for sent := 0; sent < total; sent += batch {
			n := batch
			if sent+n > total {
				n = total - sent
			}
			txs := make([]blockchain.Transaction, n)
			for i := range txs {
				txs[i] = blockchain.NewTransaction(blockchain.EventDataReceipt, "bench",
					fmt.Sprintf("h-%d", sent+i), nil, nil)
			}
			if err := net.SubmitBatch(txs, 30*time.Second); err != nil {
				net.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		net.Close()
		tput := float64(total) / elapsed.Seconds()
		if batch == 1 {
			tpSingle = tput
		}
		if tput > tpBest {
			tpBest = tput
		}
		rows = append(rows, Row{fmt.Sprintf("batch=%2d: commit throughput", batch), tput, "tx/s"})
	}
	// Endorsement (two RSA-PSS signatures per tx) is per-transaction work
	// that batching cannot amortize, so the gain saturates; ~2-4x is the
	// expected regime.
	gain := tpBest / tpSingle
	return &Result{
		ID:         "E6",
		Title:      "provenance ledger commit throughput vs batch size (3 peers, 2-of-3 endorsement)",
		PaperClaim: "blockchain provenance for every data event is feasible; batching amortizes consensus (§IV, Fig 6)",
		Rows:       append(rows, Row{"batching gain", gain, "x"}),
		Shape:      verdict(gain > 2, fmt.Sprintf("batching amortizes ordering %.1fx; endorsement cost remains per-tx", gain)),
	}, nil
}

// E8AttestationChain measures the cost of transitive-trust verification
// (Fig 5): full hardware→hypervisor→guest chains plus per-container
// attestations.
func E8AttestationChain() (*Result, error) {
	attSvc := attest.NewService()
	log := audit.NewLog()
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return nil, err
	}
	attSvc.ApproveImageSigner(signer.Public())
	c := cloud.New(attSvc, log)
	img, err := cloud.NewImage("os", []byte("os"), signer)
	if err != nil {
		return nil, err
	}
	if err := c.Registry().Register(img); err != nil {
		return nil, err
	}
	if _, err := c.ProvisionHost("h", 4); err != nil {
		return nil, err
	}
	if _, err := c.LaunchVM("h", "vm", "os"); err != nil {
		return nil, err
	}

	const iters = 20
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := c.AttestVM("h", "vm"); err != nil {
			return nil, err
		}
	}
	vmChain := time.Since(start) / iters

	ctrImg, err := cloud.NewImage("workload", []byte("wl"), signer)
	if err != nil {
		return nil, err
	}
	if err := c.Registry().Register(ctrImg); err != nil {
		return nil, err
	}
	if _, err := c.StartContainer("h", "vm", "ctr", "workload"); err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := c.AttestContainer("h", "vm", "ctr"); err != nil {
			return nil, err
		}
	}
	ctrChain := time.Since(start) / iters

	return &Result{
		ID:         "E8",
		Title:      "transitive trust chain attestation cost (Fig 5)",
		PaperClaim: "the root of trust extends transitively to containers, attested whenever a workload starts (§II-A, §II-C)",
		Rows: []Row{
			{"hardware→hypervisor→guest chain", float64(vmChain.Microseconds()) / 1000, "ms"},
			{"full chain incl. container layer", float64(ctrChain.Microseconds()) / 1000, "ms"},
		},
		Shape: verdict(ctrChain < 100*time.Millisecond, fmt.Sprintf("full-chain attestation costs %.1f ms — cheap enough to gate every workload start", float64(ctrChain.Microseconds())/1000)),
	}, nil
}

// E11KAnonymity measures the anonymization verification service on a
// 10k-record cohort: verification cost and the suppression needed to
// reach each k (§IV-C).
func E11KAnonymity() (*Result, error) {
	const records = 10_000
	table := &anonymize.Table{QuasiIDs: []string{"age", "zip", "sex"}, Sensitive: "dx"}
	// ~60 distinct ZIP prefixes so equivalence classes are realistic: most
	// classes are large, a thin tail needs suppression.
	for i := 0; i < records; i++ {
		table.Rows = append(table.Rows, anonymize.Record{
			"age": anonymize.GeneralizeAge((i*37)%95, 10),
			"zip": anonymize.GeneralizeZip(fmt.Sprintf("%03d42", (i*i+3*i)%60), nil),
			"sex": []string{"F", "M"}[i%2],
			"dx":  fmt.Sprintf("dx-%d", i%7),
		})
	}
	v := &anonymize.VerificationService{}
	start := time.Now()
	rep, err := v.Verify(table)
	if err != nil {
		return nil, err
	}
	verifyT := time.Since(start)
	rows := []Row{
		{"verification time, 10k records", float64(verifyT.Microseconds()) / 1000, "ms"},
		{"cohort k-anonymity (as generalized)", float64(rep.K), "k"},
		{"cohort l-diversity", float64(rep.L), "l"},
	}
	for _, k := range []int{2, 5, 10} {
		suppressed, dropped := table.Suppress(k)
		rows = append(rows, Row{fmt.Sprintf("rows suppressed to reach k=%d", k), float64(dropped), "rows"})
		if got := suppressed.KAnonymity(); len(suppressed.Rows) > 0 && got < k {
			return nil, fmt.Errorf("suppression to k=%d achieved only %d", k, got)
		}
	}
	return &Result{
		ID:         "E11",
		Title:      "anonymization verification service on a 10k-record cohort",
		PaperClaim: "the anonymization verification service measures the degree of anonymization before data is accepted or exported (§IV-C)",
		Rows:       rows,
		Shape:      verdict(verifyT < time.Second, "verification is sub-second at 10k records; suppression reaches any required k"),
	}, nil
}

// E13ComputeToData reproduces §II-C's efficiency argument: shipping a
// signed 1 MiB analytics container to the data versus moving a 512 MiB
// dataset to the analytics cloud, over a 50 ms / 100 MB/s WAN.
func E13ComputeToData() (*Result, error) {
	attSvc := attest.NewService()
	signer, err := hckrypto.NewSigningKey(2048)
	if err != nil {
		return nil, err
	}
	attSvc.ApproveImageSigner(signer.Public())
	dst := cloud.New(attSvc, audit.NewLog())
	osImg, err := cloud.NewImage("os", []byte("os"), signer)
	if err != nil {
		return nil, err
	}
	if err := dst.Registry().Register(osImg); err != nil {
		return nil, err
	}
	if _, err := dst.ProvisionHost("h", 2); err != nil {
		return nil, err
	}
	if _, err := dst.LaunchVM("h", "vm", "os"); err != nil {
		return nil, err
	}
	sleep, _ := accountedSleeper()
	gw, err := gateway.New(gateway.Link{Latency: 50 * time.Millisecond, BandwidthMBps: 100},
		gateway.WithSleeper(sleep))
	if err != nil {
		return nil, err
	}
	workload, err := cloud.NewImage("jmf", make([]byte, 1<<20), signer)
	if err != nil {
		return nil, err
	}
	receipt, err := gw.ShipWorkload(dst, "h", "vm", "wl", workload)
	if err != nil {
		return nil, err
	}
	dataTime, err := gw.ShipData(512 << 20)
	if err != nil {
		return nil, err
	}
	ratio := float64(dataTime) / float64(receipt.TransferTime)
	return &Result{
		ID:         "E13",
		Title:      "intercloud gateway: computation-to-data vs data-to-computation",
		PaperClaim: "transferring trusted analytic containers to the data is very efficient and secured (§II-C)",
		Rows: []Row{
			{"ship 1 MiB signed container + attest", float64(receipt.TransferTime.Milliseconds()), "ms"},
			{"ship 512 MiB dataset instead", float64(dataTime.Milliseconds()), "ms"},
			{"compute-to-data advantage", ratio, "x"},
			{"workload remote-attested at start", boolAs(receipt.AttestedChain), "(1=yes)"},
		},
		Shape: verdict(ratio > 10 && receipt.AttestedChain, fmt.Sprintf("moving the computation is %.0fx cheaper and arrives attested", ratio)),
	}, nil
}

func boolAs(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
