package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/multichain"
)

// e21OrderPerTx models the ordering service as a serial device: each
// channel's orderer admits one batch at a time and spends 5ms per
// transaction in it (consensus rounds, log replication, block
// assembly). This is the resource multi-channel partitioning
// parallelizes — without it, ordering on an in-process Raft is so fast
// that fixed per-block costs (endorsement signatures, commit waits)
// drown the scaling signal in noise.
const e21OrderPerTx = 5 * time.Millisecond

// e21Warmup transactions are submitted untimed before each measured
// run: code paths fault in, per-channel batchers reach steady state,
// Raft leaderships settle.
const (
	e21Warmup    = 48
	e21Workers   = 16
	e21PerWorker = 20
	e21Rounds    = 3
)

// e21Sample is one measured arm: sustained submit throughput plus the
// per-channel block-cut cadence observed during the run.
type e21Sample struct {
	tps      float64
	blocks   map[string]uint64
	interval map[string]time.Duration
}

// e21Run builds a fresh fabric with the given channel count, warms it
// up, then drives 16 closed-loop submitters and measures sustained
// commit throughput. Every transaction is audited back out before the
// sample counts.
func e21Run(channels int) (e21Sample, error) {
	var s e21Sample
	m, err := multichain.New(multichain.Config{
		Name:     "e21-ledger",
		Channels: channels,
		PeerIDs:  []string{"org-a", "org-b"},
		PolicyK:  1,
		Seed:     2112,
		Batch:    true,
		// A short window lets each channel's batcher coalesce the 16-way
		// contention into groups without adding visible idle latency.
		BatchMaxDelay:    2 * time.Millisecond,
		OrderServiceTime: e21OrderPerTx,
	})
	if err != nil {
		return s, err
	}
	defer m.Close()

	submit := func(w, j int, phase string) error {
		handle := fmt.Sprintf("e21-%s-w%02d-%03d", phase, w, j)
		tx := blockchain.NewTransaction(blockchain.EventDataReceipt, "ingest",
			handle, nil, nil)
		return m.Submit(tx, 30*time.Second)
	}

	// Warm-up, untimed.
	for i := 0; i < e21Warmup; i++ {
		if err := submit(i%e21Workers, i, "warm"); err != nil {
			return s, err
		}
	}

	const total = e21Workers * e21PerWorker
	errCh := make(chan error, e21Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < e21Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < e21PerWorker; j++ {
				if err := submit(w, j, "run"); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return s, err
	default:
	}
	m.Flush()

	// Honesty checks before the sample counts: nothing lost, every
	// peer chain on every channel verifies, every channel took blocks.
	if got, want := m.TxCount(), e21Warmup+total; got != want {
		return s, fmt.Errorf("E21: %d-channel fabric holds %d txs, want %d", channels, got, want)
	}
	if err := m.VerifyAll(); err != nil {
		return s, fmt.Errorf("E21: %d-channel fabric failed verification: %w", channels, err)
	}
	s.blocks = make(map[string]uint64, channels)
	s.interval = make(map[string]time.Duration, channels)
	for _, ch := range m.Channels() {
		blocks, mean := ch.Net.BlockCutStats()
		if blocks == 0 {
			return s, fmt.Errorf("E21: channel %s cut no blocks", ch.Name)
		}
		s.blocks[ch.Name] = blocks
		s.interval[ch.Name] = mean
	}
	s.tps = float64(total) / elapsed.Seconds()
	return s, nil
}

// e21Median picks the sample with the median throughput.
func e21Median(samples []e21Sample) e21Sample {
	sorted := append([]e21Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].tps < sorted[j].tps })
	return sorted[len(sorted)/2]
}

// E21MultiChannel measures what partitioning provenance across
// independent ledger channels buys. E17 attacked the per-submit cost
// with group commit, but however large the groups, a single channel
// still funnels every record through one ordering service — a serial
// resource. E21 shards that resource: records route by patient onto
// 1, 2, or 4 channels (consistent hashing over a SHA-256 key digest),
// each channel ordering and committing independently with its own
// group-commit batcher, while the cross-channel auditor keeps every
// record's trail totally ordered.
//
// Device model: ordering costs 5ms per transaction, serialized per
// channel (e21OrderPerTx) — the honest bottleneck. 16 closed-loop
// submitters drive 320 timed transactions per arm after a 48-tx
// warm-up. The three arms run back to back within each round so drift
// hits all of them, and each arm takes its median over 3 rounds.
//
// Expected shape: 4 channels sustain at least 1.8x the single-channel
// throughput. Perfect split would approach 4x; three honest costs eat
// part of it: consistent-hash skew loads channels unevenly, smaller
// per-channel groups amortize block-fixed costs (endorsement, commit
// wait) over fewer transactions, and closed-loop submitters idle while
// their channel commits. All channels must verifiably cut blocks with
// zero transactions lost, and block-cut cadence is reported per channel.
func E21MultiChannel() (*Result, error) {
	var s1s, s2s, s4s []e21Sample
	for round := 0; round < e21Rounds; round++ {
		a, err := e21Run(1)
		if err != nil {
			return nil, err
		}
		b, err := e21Run(2)
		if err != nil {
			return nil, err
		}
		c, err := e21Run(4)
		if err != nil {
			return nil, err
		}
		s1s, s2s, s4s = append(s1s, a), append(s2s, b), append(s4s, c)
	}
	s1, s2, s4 := e21Median(s1s), e21Median(s2s), e21Median(s4s)

	speedup2, speedup4 := 0.0, 0.0
	if s1.tps > 0 {
		speedup2 = s2.tps / s1.tps
		speedup4 = s4.tps / s1.tps
	}

	rows := []Row{
		{"throughput @ 1 channel (median of 3)", s1.tps, "tx/s"},
		{"throughput @ 2 channels (median of 3)", s2.tps, "tx/s"},
		{"throughput @ 4 channels (median of 3)", s4.tps, "tx/s"},
		{"speedup (2 vs 1 channels)", speedup2, "x"},
		{"speedup (4 vs 1 channels)", speedup4, "x"},
	}
	// Per-channel block-cut cadence for the pinned 4-channel arm: how
	// many blocks each channel cut and the mean interval between cuts —
	// the direct evidence that ordering ran in parallel, not just that
	// the wall clock shrank.
	names := make([]string, 0, len(s4.blocks))
	for name := range s4.blocks {
		names = append(names, name)
	}
	sort.Strings(names)
	active := 0
	for _, name := range names {
		if s4.blocks[name] > 0 {
			active++
		}
		rows = append(rows,
			Row{fmt.Sprintf("blocks cut @ 4 channels, %s", name), float64(s4.blocks[name]), ""},
			Row{fmt.Sprintf("block-cut mean interval @ 4 channels, %s", name),
				s4.interval[name].Seconds() * 1000, "ms"})
	}

	holds := speedup4 >= 1.8 && active == 4
	detail := fmt.Sprintf(
		"4 channels sustain %.2fx single-channel throughput (2 channels: %.2fx) with all %d channels cutting blocks and zero transactions lost",
		speedup4, speedup2, active)
	return &Result{
		ID: "E21",
		Title: fmt.Sprintf("multi-channel provenance: %d submitters, %d timed txs per arm at 1/2/4 channels",
			e21Workers, e21Workers*e21PerWorker),
		PaperClaim: "blockchain provenance must keep up with platform-scale ingest (§IV); partitioning " +
			"records across independent channels parallelizes the serial ordering service while the " +
			"cross-channel auditor preserves each record's totally ordered trail",
		Rows:  rows,
		Shape: verdict(holds, detail),
	}, nil
}
