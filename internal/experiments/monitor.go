package experiments

import (
	"fmt"
	"time"

	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/core"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/kb"
	"healthcloud/internal/monitor"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// e18FaultClass is one chaos scenario the watchdog must notice and
// forgive: inject breaks the dependency, clear heals it, and alert is
// the alert name the watchdog is expected to raise.
type e18FaultClass struct {
	name   string
	alert  string
	inject func()
	clear  func()
}

// e18TicksUntil drives manual watchdog ticks until the named alert's
// presence matches want, returning how many ticks it took (-1 if the
// state never appeared within max ticks).
func e18TicksUntil(wd *monitor.Watchdog, alert string, want bool, max int) int {
	for i := 1; i <= max; i++ {
		wd.Tick()
		has := false
		for _, a := range wd.ActiveAlerts() {
			if a.Name == alert {
				has = true
				break
			}
		}
		if has == want {
			return i
		}
	}
	return -1
}

// E18WatchdogDetection measures the self-monitoring loop end to end:
// with a full platform instance (ledger, KB, monitor) under manual
// watchdog ticks, inject three distinct fault classes — a store
// outage, provenance-ledger latency, and a knowledge-base outage — and
// count the ticks until the watchdog raises the matching alert
// (time-to-detect) and, after the fault is lifted, until it clears it
// again (time-to-clear). The paper's Logging/Monitoring service
// (§II-A, §IV-E) is only useful if anomalies surface within a bounded
// number of evaluation rounds and recovery is recognized just as fast,
// with every transition leaving a PHI-free, trace-correlated audit
// event.
func E18WatchdogDetection() (*Result, error) {
	const maxTicks = 5

	faults := faultinject.NewRegistry(1808)
	kbCfg := kb.DefaultConfig()
	kbCfg.Drugs, kbCfg.Diseases = 20, 10
	dataset, err := kb.Generate(kbCfg)
	if err != nil {
		return nil, err
	}
	p, err := core.New(core.Config{
		Tenant:      "watchdog-lab",
		LedgerPeers: []string{"p0", "p1", "p2"},
		KBDataset:   dataset,
		Faults:      faults,
		Telemetry:   telemetry.New(),
		Monitor:     true,
		// Manual ticks: the experiment clock is "watchdog rounds", not
		// wall time, so detection latency is deterministic.
		MonitorInterval: -1,
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	wd := p.Monitor.Watchdog()

	// Settle: the ordering cluster may still be electing, which the
	// consensus-leader probe rightly reports; tick until a clean round.
	settled := false
	for i := 0; i < 50; i++ {
		wd.Tick()
		if len(wd.ActiveAlerts()) == 0 {
			settled = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !settled {
		return nil, fmt.Errorf("E18: platform never settled: %+v", wd.ActiveAlerts())
	}

	classes := []e18FaultClass{
		{
			name:   "store outage",
			alert:  "probe:data-lake",
			inject: func() { faults.Enable(store.FaultLakePut, faultinject.Fault{ErrorRate: 1}) },
			clear:  func() { faults.Disable(store.FaultLakePut) },
		},
		{
			name:  "ledger latency",
			alert: "probe:provenance-ledger",
			inject: func() {
				faults.Enable(blockchain.FaultSubmit,
					faultinject.Fault{LatencyRate: 1, Latency: 400 * time.Millisecond})
			},
			clear: func() { faults.Disable(blockchain.FaultSubmit) },
		},
		{
			name:   "kb outage",
			alert:  "probe:kb-remote",
			inject: func() { faults.Enable(kb.FaultFetch, faultinject.Fault{ErrorRate: 1}) },
			clear:  func() { faults.Disable(kb.FaultFetch) },
		},
	}

	rows := make([]Row, 0, 2*len(classes)+2)
	detected, cleared := 0, 0
	worstDetect := 0
	for _, c := range classes {
		c.inject()
		detect := e18TicksUntil(wd, c.alert, true, maxTicks)
		c.clear()
		clear := e18TicksUntil(wd, c.alert, false, maxTicks)
		if detect > 0 {
			detected++
			if detect > worstDetect {
				worstDetect = detect
			}
		}
		if clear > 0 {
			cleared++
		}
		rows = append(rows,
			Row{c.name + ": ticks to detect", float64(detect), "ticks"},
			Row{c.name + ": ticks to clear", float64(clear), "ticks"},
		)
	}

	// Every raise and clear must have left a trace-correlated audit
	// event (Service "monitor"); the settle phase may add more.
	raisedEvents := p.Audit.Find(audit.Query{Service: "monitor", Action: "alert-raised"})
	clearedEvents := p.Audit.Find(audit.Query{Service: "monitor", Action: "alert-cleared"})
	rows = append(rows,
		Row{"alert-raised audit events", float64(len(raisedEvents)), ""},
		Row{"alert-cleared audit events", float64(len(clearedEvents)), ""},
	)

	holds := detected == len(classes) && cleared == len(classes) &&
		worstDetect < 2 && len(raisedEvents) >= len(classes) && len(clearedEvents) >= len(classes)
	return &Result{
		ID: "E18",
		Title: fmt.Sprintf("watchdog chaos: time-to-detect/clear across %d fault classes (manual ticks)",
			len(classes)),
		PaperClaim: "the Logging/Monitoring service keeps the trusted cloud observable (§II-A, §IV-E): " +
			"injected faults must raise audited alerts within two evaluation rounds and clear on recovery",
		Rows: rows,
		Shape: verdict(holds,
			fmt.Sprintf("all %d fault classes detected in <2 ticks (worst %d) and cleared after recovery, "+
				"each transition audited", len(classes), worstDetect)),
	}, nil
}
