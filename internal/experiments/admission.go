package experiments

import (
	"fmt"
	"sync"
	"time"

	"healthcloud/internal/admission"
	"healthcloud/internal/anonymize"
	"healthcloud/internal/audit"
	"healthcloud/internal/bus"
	"healthcloud/internal/consent"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/loadgen"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
)

// e24Harness is one E24 arm: a full ingestion pipeline whose data lake
// runs the serial-device capacity model (so the knee is a property of
// the configuration, not of the host), optionally fronted by the
// admission controller that production wires in front of uploads.
type e24Harness struct {
	pipe    *ingest.Pipeline
	lake    *store.DataLake
	ctrl    *admission.Controller
	payload []byte
	closers []func()

	mu    sync.Mutex
	hints []int // Retry-After seconds handed to rejected requests
}

// newE24Harness builds a fresh arm. svc is the lake's per-Put service
// time (knee ~= 1/svc); withAdmission fronts uploads with a controller
// shedding ClassBulk at bulkDepth (rate limits are opened wide — E24
// isolates queue shedding; E-series rate-limit behavior is unit-tested).
func newE24Harness(svc time.Duration, withAdmission bool, bulkDepth int) (*e24Harness, error) {
	h := &e24Harness{}
	ok := false
	defer func() {
		if !ok {
			h.close()
		}
	}()
	kms, err := hckrypto.NewKMS("admission")
	if err != nil {
		return nil, err
	}
	msgBus := bus.New(bus.WithMaxAttempts(5))
	h.closers = append(h.closers, func() { msgBus.Close() })
	scanner, err := scan.NewScanner(scan.DefaultSignatures()...)
	if err != nil {
		return nil, err
	}
	consents := consent.NewService()
	consents.Grant("patient-e24", "study", consent.PurposeResearch, 0)
	h.lake = store.NewDataLake(kms, "svc-storage")
	h.lake.SetServiceTime(svc)
	h.pipe, err = ingest.New(ingest.Deps{
		Tenant: "admission", KMS: kms, Lake: h.lake,
		IDMap: store.NewIdentityMap("svc-reident"),
		Bus:   msgBus, Scanner: scanner, Consents: consents,
		Verifier: &anonymize.VerificationService{},
		Log:      audit.NewLog(),
	})
	if err != nil {
		return nil, err
	}
	h.pipe.Start(8)
	pipe := h.pipe
	h.closers = append(h.closers, func() { pipe.Close() })
	key, err := h.pipe.RegisterClient("adm-client")
	if err != nil {
		return nil, err
	}
	raw, err := singlePatientBundle("patient-e24")
	if err != nil {
		return nil, err
	}
	if h.payload, err = hckrypto.EncryptGCM(key, raw, []byte("adm-client")); err != nil {
		return nil, err
	}
	if withAdmission {
		h.ctrl = admission.New(admission.Config{
			DefaultPerSec: 1e9, DefaultBurst: 1e9,
			Estimator: admission.NewDrainEstimator(h.pipe.QueueDepth, h.pipe.Completed, nil),
			BulkDepth: bulkDepth,
		})
	}
	ok = true
	return h, nil
}

func (h *e24Harness) close() {
	for i := len(h.closers) - 1; i >= 0; i-- {
		h.closers[i]()
	}
}

// upload is the op the load harness fires: the same admit-then-enqueue
// sequence the HTTP upload route runs, classified for the report.
func (h *e24Harness) upload() loadgen.Outcome {
	if d := h.ctrl.Admit("admission", admission.ClassBulk); !d.Allowed {
		h.mu.Lock()
		h.hints = append(h.hints, d.RetryAfterSeconds())
		h.mu.Unlock()
		return loadgen.FromError(d.Err())
	}
	if _, err := h.pipe.Upload("adm-client", "study", h.payload); err != nil {
		return loadgen.OutcomeError
	}
	return loadgen.OutcomeOK
}

// offer drives an open-loop constant curve at rate for dur and reports
// the client view plus the goodput the pipeline actually completed
// during the window.
func (h *e24Harness) offer(rate float64, dur time.Duration) (loadgen.PhaseReport, float64) {
	before := h.pipe.Completed()
	start := time.Now()
	rep := loadgen.New(loadgen.Config{}).Run([]loadgen.Fleet{{
		Name:   "e24",
		Phases: []loadgen.Phase{{Name: "offered", Duration: dur, Curve: loadgen.Constant{RPS: rate}}},
		Ops:    []loadgen.Op{{Name: "ingest", Weight: 1, Do: h.upload}},
		// Wide pool: rejected requests return instantly and accepted ones
		// only enqueue, so overflow would signal a harness bug, not load.
		Concurrency: 1024,
	}})
	goodput := float64(h.pipe.Completed()-before) / time.Since(start).Seconds()
	return rep.Fleets[0].Phases[0], goodput
}

// drainAll turns off the capacity model and waits the backlog out — how
// an arm is retired without paying the modeled service time again.
func (h *e24Harness) drainAll() error {
	h.lake.SetServiceTime(0)
	return h.pipe.WaitForIdle(120 * time.Second)
}

// sojournP95 is the p95 of stored uploads' time in system (arrival to
// durable completion) — the latency a client actually observed.
func (h *e24Harness) sojournP95() time.Duration {
	var samples []time.Duration
	for _, st := range h.pipe.Statuses() {
		if st.State == ingest.StateStored && !st.DoneAt.IsZero() {
			samples = append(samples, st.DoneAt.Sub(st.ReceivedAt))
		}
	}
	return loadgen.Quantile(samples, 0.95)
}

func (h *e24Harness) hintBounds() (min, max int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.hints {
		if min == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// E24AdmissionControl pins the admission-control claim end to end with
// the open-loop harness: against a platform whose storage knee is set by
// the serial-device capacity model, (a) below the knee nothing is shed
// and goodput tracks offered load; (b) at 10x overload the controller
// sheds with honest Retry-After hints while goodput holds >= 80% of the
// knee and the backlog — hence served latency — stays bounded by the
// shed depth; (c) the same overload with admission off grows the
// backlog without bound, turning queue wait into seconds of latency for
// every accepted request. Every arm runs a fresh pipeline; offered load
// is open-loop (arrivals never wait for responses), because a
// closed-loop driver self-throttles at the knee and cannot produce the
// overload this experiment is about.
func E24AdmissionControl() (*Result, error) {
	const svc = 3 * time.Millisecond // knee ~ 333 uploads/s
	const bulkDepth = 64
	const probeUploads = 400

	// Knee probe: measure the drain rate directly — enqueue a fixed
	// batch with admission off and time the pipeline to idle.
	probe, err := newE24Harness(svc, false, 0)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < probeUploads; i++ {
		if _, err := probe.pipe.Upload("adm-client", "study", probe.payload); err != nil {
			probe.close()
			return nil, fmt.Errorf("E24 knee probe upload: %w", err)
		}
	}
	if err := probe.pipe.WaitForIdle(120 * time.Second); err != nil {
		probe.close()
		return nil, err
	}
	knee := float64(probeUploads) / time.Since(start).Seconds()
	probe.close()

	// Arm A — below the knee (0.5x), admission on: zero sheds.
	armA, err := newE24Harness(svc, true, bulkDepth)
	if err != nil {
		return nil, err
	}
	repA, _ := armA.offer(0.5*knee, 1500*time.Millisecond)
	if err := armA.drainAll(); err != nil {
		armA.close()
		return nil, err
	}
	armA.close()

	// Arm B — 10x overload, admission on: shed hard, keep goodput.
	armB, err := newE24Harness(svc, true, bulkDepth)
	if err != nil {
		return nil, err
	}
	repB, goodputB := armB.offer(10*knee, 1500*time.Millisecond)
	depthB := armB.pipe.QueueDepth()
	if err := armB.drainAll(); err != nil {
		armB.close()
		return nil, err
	}
	p95B := armB.sojournP95()
	minHint, maxHint := armB.hintBounds()
	armB.close()

	// Arm C — the same 10x overload with admission off: the backlog is
	// unbounded, so time-in-queue for an arriving request (backlog/knee)
	// dwarfs anything arm B served.
	armC, err := newE24Harness(svc, false, 0)
	if err != nil {
		return nil, err
	}
	if _, goodputC := armC.offer(10*knee, time.Second); goodputC > 2*knee {
		armC.close()
		return nil, fmt.Errorf("E24: capacity model leak — unprotected goodput %.0f/s above knee %.0f/s", goodputC, knee)
	}
	depthC := armC.pipe.QueueDepth()
	if err := armC.drainAll(); err != nil {
		armC.close()
		return nil, err
	}
	armC.close()
	drainC := float64(depthC) / knee

	rows := []Row{
		{"measured knee (admission off, drain rate)", knee, "uploads/s"},
		{"below knee: offered rate (0.5x)", repA.OfferedRate, "req/s"},
		{"below knee: shed", float64(repA.Shed + repA.RateLimited), ""},
		{"10x overload: offered rate", repB.OfferedRate, "req/s"},
		{"10x overload: goodput", goodputB, "uploads/s"},
		{"10x overload: goodput vs knee", goodputB / knee * 100, "%"},
		{"10x overload: shed (503 + Retry-After)", float64(repB.Shed), ""},
		{"10x overload: Retry-After hints (min..max)", float64(maxHint), "s"},
		{"10x overload: backlog at phase end", float64(depthB), ""},
		{"10x overload: p95 time-in-system (stored)", float64(p95B.Milliseconds()), "ms"},
		{"no admission: backlog at phase end", float64(depthC), ""},
		{"no admission: queue wait for next arrival", drainC, "s"},
	}
	holds := repA.Shed == 0 && repA.RateLimited == 0 &&
		goodputB >= 0.8*knee && repB.Shed > 0 &&
		minHint >= 1 && maxHint <= 30 &&
		depthB <= bulkDepth+64 && // shed line + in-flight slack
		depthC >= 5*bulkDepth &&
		p95B < time.Duration(drainC*float64(time.Second))
	detail := fmt.Sprintf("at 10x overload goodput holds %.0f%% of the %.0f/s knee with backlog capped at %d (vs %d unprotected, %.1fs of queue wait); zero sheds below the knee",
		goodputB/knee*100, knee, depthB, depthC, drainC)
	return &Result{
		ID:    "E24",
		Title: fmt.Sprintf("admission control: open-loop overload at 10x the %.0f/s knee", knee),
		PaperClaim: "a multi-tenant clinical platform must degrade by refusing work honestly (429/503 with real " +
			"Retry-After) rather than queueing without bound: goodput holds near capacity and served latency " +
			"stays flat while the unprotected configuration converts overload into unbounded queue wait",
		Rows:  rows,
		Shape: verdict(holds, detail),
	}, nil
}

// singlePatientBundle marshals a one-patient collection bundle.
func singlePatientBundle(pid string) ([]byte, error) {
	b := fhir.NewBundle("collection")
	if err := b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "other"}); err != nil {
		return nil, err
	}
	return fhir.Marshal(b)
}
