package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"healthcloud/internal/analytics"
	"healthcloud/internal/delt"
	"healthcloud/internal/emr"
	"healthcloud/internal/jmf"
	"healthcloud/internal/kb"
	"healthcloud/internal/tiresias"
)

// E9JMFAccuracy reproduces Fig 9 / §V-A's shape: JMF's multi-source
// integration beats Guilt-by-Association and single-source MF at
// predicting held-out drug–disease associations.
func E9JMFAccuracy() (*Result, error) {
	d, err := kb.Generate(kb.DefaultConfig())
	if err != nil {
		return nil, err
	}
	train, held := d.HoldOut(0.2, 1)
	var S, T [][][]float64
	for _, src := range kb.DrugSources {
		S = append(S, d.DrugSim[src])
	}
	for _, src := range kb.DiseaseSources {
		T = append(T, d.DisSim[src])
	}
	model, err := jmf.Fit(train, S, T, jmf.DefaultConfig())
	if err != nil {
		return nil, err
	}
	jmfScores := jmf.ScoresOf(model)
	gba, err := jmf.GBA(train, d.DrugSim[kb.DrugChemical])
	if err != nil {
		return nil, err
	}
	gbaSE, err := jmf.GBA(train, d.DrugSim[kb.DrugSideEffect])
	if err != nil {
		return nil, err
	}
	mf, err := jmf.SingleSourceMF(train, jmf.DefaultConfig())
	if err != nil {
		return nil, err
	}
	jmfAUC := jmf.AUC(jmfScores, d.Assoc, train, held)
	gbaAUC := jmf.AUC(gba, d.Assoc, train, held)
	gbaSEAUC := jmf.AUC(gbaSE, d.Assoc, train, held)
	mfAUC := jmf.AUC(jmf.ScoresOf(mf), d.Assoc, train, held)
	jmfP := jmf.PrecisionAtK(jmfScores, d.Assoc, train, held, 100)
	gbaP := jmf.PrecisionAtK(gba, d.Assoc, train, held, 100)
	mfP := jmf.PrecisionAtK(jmf.ScoresOf(mf), d.Assoc, train, held, 100)
	return &Result{
		ID:         "E9",
		Title:      "drug repositioning: JMF vs GBA vs single-source MF (200×150, 20% held out)",
		PaperClaim: "JMF integrates multiple drug and disease information sources and outperforms single-aspect methods (§V-A, Fig 9)",
		Rows: []Row{
			{"JMF AUC", jmfAUC, ""},
			{"GBA (chemical) AUC", gbaAUC, ""},
			{"GBA (side-effect) AUC", gbaSEAUC, ""},
			{"single-source MF AUC", mfAUC, ""},
			{"JMF precision@100", jmfP, ""},
			{"GBA precision@100", gbaP, ""},
			{"single-source MF precision@100", mfP, ""},
		},
		Shape: verdict(jmfAUC > gbaAUC && jmfAUC > gbaSEAUC && jmfAUC > mfAUC,
			fmt.Sprintf("JMF wins on AUC (%.3f vs %.3f/%.3f/%.3f); single-aspect GBA varies with its source — the bias the paper motivates JMF with",
				jmfAUC, gbaAUC, gbaSEAUC, mfAUC)),
	}, nil
}

// E10DELTRecovery reproduces Figs 10–11 / §V-B's shape: DELT recovers
// planted drug effects despite per-patient baselines, drift, and
// co-medication confounding, while the marginal SCCS baseline is fooled.
func E10DELTRecovery() (*Result, error) {
	cohort, err := emr.Generate(emr.DefaultConfig())
	if err != nil {
		return nil, err
	}
	model, err := delt.Fit(cohort, delt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	marginal := delt.MarginalSCCS(cohort)
	deltRMSE, err := delt.RMSE(model.Beta, cohort.TrueBeta)
	if err != nil {
		return nil, err
	}
	margRMSE, err := delt.RMSE(marginal, cohort.TrueBeta)
	if err != nil {
		return nil, err
	}
	decoy := cohort.Cfg.ConfoundPairs[0][0]
	rows := []Row{
		{"DELT effect-vector RMSE", deltRMSE, ""},
		{"marginal SCCS RMSE", margRMSE, ""},
		{"marginal penalty", margRMSE / deltRMSE, "x"},
		{fmt.Sprintf("decoy drug-%d true effect", decoy), cohort.TrueBeta[decoy], "HbA1c"},
		{fmt.Sprintf("decoy drug-%d DELT estimate", decoy), model.Beta[decoy], "HbA1c"},
		{fmt.Sprintf("decoy drug-%d marginal estimate", decoy), marginal[decoy], "HbA1c"},
	}
	holds := deltRMSE < margRMSE && abs(model.Beta[decoy]) < 0.15 && marginal[decoy] < -0.15
	return &Result{
		ID:         "E10",
		Title:      "RWE drug-effect detection: DELT vs marginal SCCS (2000 patients, 30 drugs)",
		PaperClaim: "joint exposure modeling makes DELT robust to co-medication confounders; baselines and drift are absorbed by α_i and t_ij (§V-B)",
		Rows:       rows,
		Shape: verdict(holds, fmt.Sprintf("DELT %.1fx more accurate; marginal flags the decoy (%.2f), DELT clears it (%.2f)",
			margRMSE/deltRMSE, marginal[decoy], model.Beta[decoy])),
	}, nil
}

// E12EdgeVsServer measures §I/§III-A's edge-computing claim: running an
// approved model locally on the enhanced client versus calling the
// server over a 20 ms RTT, and the server load avoided.
func E12EdgeVsServer() (*Result, error) {
	model := &analytics.LinearModel{Name: "hba1c-risk", Bias: 6,
		Weights: map[string]float64{"metformin": -1.2, "steroid": 0.4, "age": 0.05}}
	features := map[string]float64{"metformin": 1, "age": 5}
	const ops = 1000
	const rtt = 20 * time.Millisecond

	start := time.Now()
	for i := 0; i < ops; i++ {
		model.Predict(features)
	}
	localTotal := time.Since(start)
	localPer := localTotal / ops

	// Server arm: each prediction pays the RTT (modeled) plus the same
	// compute, and consumes a server request slot.
	serverPer := rtt + localPer
	speedup := float64(serverPer) / float64(localPer)
	return &Result{
		ID:         "E12",
		Title:      "edge analytics: local model execution vs server round-trips (1k predictions)",
		PaperClaim: "computation at clients moves computing to the network edge, offloading servers and cutting latency (§I, §III-A)",
		Rows: []Row{
			{"local prediction", float64(localPer.Nanoseconds()), "ns/op"},
			{"server prediction (20 ms RTT)", float64(serverPer.Microseconds()), "µs/op"},
			{"edge speedup", speedup, "x"},
			{"server requests avoided", ops, "req"},
		},
		Shape: verdict(speedup > 100, fmt.Sprintf("local execution %.0fx faster and removes all %d server round-trips", speedup, ops)),
	}, nil
}

// E14TiresiasDDI reproduces the Tiresias shape (§V-A): pair-similarity
// link prediction beats popularity and random ranking for drug–drug
// interactions.
func E14TiresiasDDI() (*Result, error) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 120, 20
	d, err := kb.Generate(cfg)
	if err != nil {
		return nil, err
	}
	full, err := d.GenerateInteractions(0.05)
	if err != nil {
		return nil, err
	}
	train, held := tiresias.HoldOutPairs(full, 0.2)
	var sims [][][]float64
	for _, src := range kb.DrugSources {
		sims = append(sims, d.DrugSim[src])
	}
	m, err := tiresias.New(train, sims, tiresias.DefaultConfig())
	if err != nil {
		return nil, err
	}
	tireAUC := tiresias.PairAUC(m.ScoreAll(), full, train, held)
	degAUC := tiresias.PairAUC(tiresias.DegreeBaseline(train), full, train, held)
	rng := rand.New(rand.NewSource(3))
	randScores := make([][]float64, len(full))
	for i := range randScores {
		randScores[i] = make([]float64, len(full))
		for j := range randScores[i] {
			randScores[i][j] = rng.Float64()
		}
	}
	randAUC := tiresias.PairAUC(randScores, full, train, held)
	return &Result{
		ID:         "E14",
		Title:      "drug–drug interaction prediction: Tiresias vs degree vs random (120 drugs)",
		PaperClaim: "similarity metrics combined over drug pairs predict drug-drug interactions (§V-A, Tiresias)",
		Rows: []Row{
			{"Tiresias pair-similarity AUC", tireAUC, ""},
			{"degree (popularity) AUC", degAUC, ""},
			{"random AUC", randAUC, ""},
		},
		Shape: verdict(tireAUC > degAUC && tireAUC > 0.65,
			fmt.Sprintf("pair similarity wins (%.3f vs %.3f), random sits at ~0.5", tireAUC, degAUC)),
	}, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// All runs every experiment in order.
func All() ([]*Result, error) {
	funcs := []func() (*Result, error){
		E1CacheVsRemote, E2MultiLevelCache, E3SharedVsPublicKey,
		E4HMACVsSignature, E5IngestPipeline, E6LedgerCommit,
		E7RedactableSignatures, E8AttestationChain, E9JMFAccuracy,
		E10DELTRecovery, E11KAnonymity, E12EdgeVsServer,
		E13ComputeToData, E14TiresiasDDI, E15ChaosIngestion,
	}
	out := make([]*Result, 0, len(funcs))
	for _, f := range funcs {
		r, err := f()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
