package experiments

import (
	"fmt"
	"sync"
	"time"

	"healthcloud/internal/consent"
	"healthcloud/internal/core"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/kb"
	"healthcloud/internal/monitor"
	"healthcloud/internal/shardlake"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// e19ServiceTime models each shard as a storage node that serves one
// operation at a time in 500µs — the bottleneck sharding is supposed
// to widen. Without it every "shard" is an uncontended map insert and
// the scaling measurement would be noise.
const e19ServiceTime = 500 * time.Microsecond

// e19IngestWall runs 16 workers × 25 puts each against a fresh
// sharded lake (R=1) with the given shard count and returns the wall
// time.
func e19IngestWall(shards int) (time.Duration, error) {
	const workers, perWorker = 16, 25
	kms, err := hckrypto.NewKMS("shard-bench")
	if err != nil {
		return 0, err
	}
	members := make([]shardlake.Shard, shards)
	for i := range members {
		lake := store.NewDataLake(kms, "svc-storage")
		lake.SetServiceTime(e19ServiceTime)
		members[i] = shardlake.Shard{Name: shardlake.ShardName(i), Lake: lake}
	}
	sl, err := shardlake.New(members, shardlake.Config{Seed: 1907})
	if err != nil {
		return 0, err
	}
	defer sl.Close()

	payload := []byte(`{"resourceType":"Observation","status":"final","value":42}`)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				subject := fmt.Sprintf("patient-%02d-%03d", w, j)
				if _, err := sl.Put(subject, payload, store.Meta{
					ContentType: "fhir+json;identified", Tenant: "shard-bench", Group: "bench",
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	if got := sl.Count(); got != workers*perWorker {
		return 0, fmt.Errorf("E19: %d-shard lake holds %d objects, want %d", shards, got, workers*perWorker)
	}
	return wall, nil
}

// e19Upload pushes n bundles through the pipeline, granting consent
// per patient, with patient ids offset so the two phases don't collide.
func e19Upload(p *core.Platform, key []byte, offset, n int) error {
	for i := 0; i < n; i++ {
		pid := fmt.Sprintf("patient-%04d", offset+i)
		p.Consents.Grant(pid, "study", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "female"})
		raw, err := fhir.Marshal(b)
		if err != nil {
			return err
		}
		payload, err := hckrypto.EncryptGCM(key, raw, []byte("shard-client"))
		if err != nil {
			return err
		}
		if _, err := p.Ingest.Upload("shard-client", "study", payload); err != nil {
			return err
		}
	}
	return nil
}

// E19ShardedLake measures the sharded Data Lake's two promises. (a)
// Scale: 400 concurrent ingests (16 workers) against 1 vs 4 shards,
// each shard a serial storage node — throughput must at least double.
// (b) Availability: a 3-shard R=2 platform loses one shard mid-run;
// every upload must still land (hinted handoff), readiness must report
// degraded-not-down while quorum holds, and after recovery the hint
// backlog must drain to zero with every object's replicas byte-identical.
// The paper's Data Lake (§II-A, Fig 3) anchors "heavy traffic from
// millions of users" — that needs horizontal scale, and replication
// that turns a shard outage into degradation instead of data loss.
func E19ShardedLake() (*Result, error) {
	// (a) throughput scaling, 1 vs 4 shards.
	wall1, err := e19IngestWall(1)
	if err != nil {
		return nil, err
	}
	wall4, err := e19IngestWall(4)
	if err != nil {
		return nil, err
	}
	speedup := float64(wall1) / float64(wall4)

	// (b) availability under a shard outage.
	const batch = 20
	faults := faultinject.NewRegistry(1907)
	kbCfg := kb.DefaultConfig()
	kbCfg.Drugs, kbCfg.Diseases = 10, 5
	dataset, err := kb.Generate(kbCfg)
	if err != nil {
		return nil, err
	}
	p, err := core.New(core.Config{
		Tenant:    "shard-lab",
		Shards:    3,
		Replicas:  2,
		KBDataset: dataset,
		Faults:    faults,
		Telemetry: telemetry.New(),
		Monitor:   true,
		// Manual watchdog ticks: readiness transitions are measured in
		// probe rounds, not wall time.
		MonitorInterval: -1,
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	wd := p.Monitor.Watchdog()
	wd.Tick()

	key, err := p.Ingest.RegisterClient("shard-client")
	if err != nil {
		return nil, err
	}

	// Phase 1: healthy cluster.
	if err := e19Upload(p, key, 0, batch); err != nil {
		return nil, err
	}
	if err := p.Ingest.WaitForIdle(60 * time.Second); err != nil {
		return nil, err
	}

	// Kill shard-1: writes, reads and probes all fail there.
	deadShard := shardlake.ShardName(1)
	for _, op := range []string{"put", "get", "ping"} {
		faults.Enable(shardlake.FaultPoint(deadShard, op), faultinject.Fault{ErrorRate: 1})
	}
	wd.Tick()
	outage := p.Monitor.Prober().Probe()
	degradedSeen := outage.Overall == monitor.StateDegraded && outage.Ready

	// Phase 2: ingest through the outage. R=2 means every object still
	// reaches a live replica; writes aimed at the dead shard hint.
	if err := e19Upload(p, key, batch, batch); err != nil {
		return nil, err
	}
	if err := p.Ingest.WaitForIdle(60 * time.Second); err != nil {
		return nil, err
	}
	hintsQueued := p.ShardLake.HintBacklog()

	// Heal, drain, re-probe.
	for _, op := range []string{"put", "get", "ping"} {
		faults.Disable(shardlake.FaultPoint(deadShard, op))
	}
	p.ShardLake.DrainHints()
	backlogAfter := p.ShardLake.HintBacklog()
	wd.Tick()
	recovered := p.Monitor.Prober().Probe()
	recoveredSeen := recovered.Overall == monitor.StateOK

	// Every upload must have terminated stored; count the casualties.
	var stored, failed, dead int
	for _, st := range p.Ingest.Statuses() {
		switch st.State {
		case ingest.StateStored:
			stored++
		case ingest.StateFailed:
			failed++
		case ingest.StateDeadLettered:
			dead++
		}
	}
	lost := 2*batch - stored - failed - dead

	// Object-by-object replica convergence (each upload stores an
	// identified + a de-identified record).
	objects, divergent := p.ShardLake.VerifyConvergence()

	holds := speedup >= 2 &&
		lost == 0 && dead == 0 && failed == 0 && stored == 2*batch &&
		degradedSeen && recoveredSeen &&
		backlogAfter == 0 && len(divergent) == 0 && objects == 2*2*batch
	return &Result{
		ID: "E19",
		Title: fmt.Sprintf("sharded data lake: 16-way ingest at 1 vs 4 shards; %d uploads with 1 of 3 shards dead at R=2",
			2*batch),
		PaperClaim: "the Data Lake absorbs heavy traffic from millions of users (§II-A, Fig 3): " +
			"shards must buy near-linear ingest throughput, and replication must turn a shard " +
			"outage into degraded service, never into lost uploads",
		Rows: []Row{
			{"ingest wall, 1 shard (400 puts)", wall1.Seconds() * 1000, "ms"},
			{"ingest wall, 4 shards (400 puts)", wall4.Seconds() * 1000, "ms"},
			{"throughput speedup (4 vs 1)", speedup, "x"},
			{"uploads during outage run", float64(2 * batch), ""},
			{"stored", float64(stored), ""},
			{"lost", float64(lost), ""},
			{"dead-lettered", float64(dead), ""},
			{"hints queued during outage", float64(hintsQueued), ""},
			{"hint backlog after drain", float64(backlogAfter), ""},
			{"objects verified converged", float64(objects), ""},
			{"divergent objects", float64(len(divergent)), ""},
		},
		Shape: verdict(holds,
			fmt.Sprintf("%.1fx ingest speedup at 4 shards; shard outage at R=2 lost 0 of %d uploads, "+
				"readiness degraded-then-recovered, hints drained, %d objects re-converged",
				speedup, 2*batch, objects)),
	}, nil
}
