package experiments

import (
	"fmt"
	"time"

	"healthcloud/internal/anonymize"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/consent"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
)

// E15ChaosIngestion runs the ingestion pipeline under injected
// infrastructure faults — 20% Data Lake write errors (with latency
// spikes) and 10% provenance-ledger submit errors — and measures what
// the resilience layer recovers. The platform's availability story
// (§II-A trusted *and dependable* health cloud instances) only holds if
// a transiently failing store or ledger degrades throughput, not
// durability: every upload must terminate as stored, failed, or
// dead-lettered, with retries recovering the overwhelming share of
// transient failures.
func E15ChaosIngestion() (*Result, error) {
	const uploads = 300
	faults := faultinject.NewRegistry(2024)
	faults.Enable(store.FaultLakePut, faultinject.Fault{
		ErrorRate:   0.20,
		LatencyRate: 0.10,
		Latency:     500 * time.Microsecond,
	})
	faults.Enable(blockchain.FaultSubmit, faultinject.Fault{ErrorRate: 0.10})

	kms, err := hckrypto.NewKMS("chaos")
	if err != nil {
		return nil, err
	}
	msgBus := bus.New(bus.WithMaxAttempts(6))
	defer msgBus.Close()
	scanner, err := scan.NewScanner(scan.DefaultSignatures()...)
	if err != nil {
		return nil, err
	}
	ledger, err := blockchain.NewNetwork("chaos-ledger", []string{"p0", "p1", "p2"}, 2,
		blockchain.WithFaults(faults))
	if err != nil {
		return nil, err
	}
	defer ledger.Close()
	lake := store.NewDataLake(kms, "svc-storage")
	lake.SetFaults(faults)
	consents := consent.NewService()
	p, err := ingest.New(ingest.Deps{
		Tenant: "chaos", KMS: kms, Lake: lake,
		IDMap: store.NewIdentityMap("svc-reident"),
		Bus:   msgBus, Scanner: scanner, Consents: consents,
		Verifier: &anonymize.VerificationService{},
		Ledger:   ledger, Log: audit.NewLog(),
	})
	if err != nil {
		return nil, err
	}
	p.Start(4)
	defer p.Close()

	key, err := p.RegisterClient("chaos-client")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < uploads; i++ {
		pid := fmt.Sprintf("patient-%04d", i)
		consents.Grant(pid, "study", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "female"})
		raw, err := fhir.Marshal(b)
		if err != nil {
			return nil, err
		}
		payload, err := hckrypto.EncryptGCM(key, raw, []byte("chaos-client"))
		if err != nil {
			return nil, err
		}
		if _, err := p.Upload("chaos-client", "study", payload); err != nil {
			return nil, err
		}
	}
	if err := p.WaitForIdle(120 * time.Second); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	var stored, failed, dead, recovered, transientHit int
	for _, st := range p.Statuses() {
		switch st.State {
		case ingest.StateStored:
			stored++
			if st.Attempts > 1 {
				recovered++
			}
		case ingest.StateFailed:
			failed++
		case ingest.StateDeadLettered:
			dead++
		}
		if st.Attempts > 1 {
			transientHit++
		}
	}
	lost := uploads - stored - failed - dead
	recovery := 1.0
	if transientHit > 0 {
		recovery = float64(recovered) / float64(transientHit)
	}
	goodput := float64(stored) / float64(uploads)
	lakeStats := faults.Stats()[store.FaultLakePut]
	return &Result{
		ID:    "E15",
		Title: fmt.Sprintf("chaos ingestion: %d uploads under 20%% store / 10%% ledger fault injection", uploads),
		PaperClaim: "the platform provides trusted and dependable health cloud instances (§II-A): " +
			"infrastructure faults must cost throughput, never uploads",
		Rows: []Row{
			{"uploads issued", float64(uploads), ""},
			{"stored (goodput)", float64(stored), ""},
			{"dead-lettered", float64(dead), ""},
			{"lost (no terminal state)", float64(lost), ""},
			{"injected store faults", float64(lakeStats.Errors), ""},
			{"transient redeliveries (bus Nack)", float64(p.Retries()), ""},
			{"uploads that hit a transient fault", float64(transientHit), ""},
			{"of those, recovered by retry", float64(recovered), ""},
			{"recovery ratio", recovery * 100, "%"},
			{"goodput under chaos", goodput * 100, "%"},
			{"wall clock", wall.Seconds() * 1000, "ms"},
		},
		Shape: verdict(lost == 0 && recovery >= 0.9,
			fmt.Sprintf("zero uploads lost; retries recovered %.0f%% of transiently-failed uploads", recovery*100)),
	}, nil
}
