package experiments

import (
	"fmt"
	"runtime"
	"time"

	"healthcloud/internal/blockchain"
	"healthcloud/internal/hccache"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/jmf"
	"healthcloud/internal/kb"
)

// Ablations isolate the design choices DESIGN.md calls out: which parts
// of JMF's integration actually pay, what endorsement strictness costs,
// and what each cache tier contributes.

// A1JMFSourceAblation removes JMF's side-information blocks one at a
// time: full model vs drug-sims-only vs disease-sims-only vs none (plain
// MF). The paper's integration argument predicts full > either-side >
// none.
func A1JMFSourceAblation() (*Result, error) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 120, 90
	d, err := kb.Generate(cfg)
	if err != nil {
		return nil, err
	}
	train, held := d.HoldOut(0.2, 1)
	var S, T [][][]float64
	for _, src := range kb.DrugSources {
		S = append(S, d.DrugSim[src])
	}
	for _, src := range kb.DiseaseSources {
		T = append(T, d.DisSim[src])
	}
	jcfg := jmf.DefaultConfig()
	arms := []struct {
		label string
		s     [][][]float64
		t     [][][]float64
	}{
		{"full (drug + disease sources)", S, T},
		{"drug sources only", S, nil},
		{"disease sources only", nil, T},
		{"no side information (plain MF)", nil, nil},
	}
	rows := make([]Row, 0, len(arms))
	aucs := make([]float64, len(arms))
	for i, arm := range arms {
		m, err := jmf.Fit(train, arm.s, arm.t, jcfg)
		if err != nil {
			return nil, err
		}
		aucs[i] = jmf.AUC(jmf.ScoresOf(m), d.Assoc, train, held)
		rows = append(rows, Row{arm.label + ": AUC", aucs[i], ""})
	}
	holds := aucs[0] > aucs[1] && aucs[0] > aucs[2] && aucs[0] > aucs[3]
	return &Result{
		ID:         "A1",
		Title:      "ablation: which JMF information blocks pay (120×90, 20% held out)",
		PaperClaim: "JMF's advantage comes from integrating BOTH drug and disease information (§V-A contribution 1)",
		Rows:       rows,
		Shape: verdict(holds, fmt.Sprintf("full integration (%.3f) beats every ablated variant (%.3f/%.3f/%.3f)",
			aucs[0], aucs[1], aucs[2], aucs[3])),
	}, nil
}

// A2EndorsementPolicy measures what endorsement strictness costs on the
// provenance ledger: 1-of-3 vs 2-of-3 vs 3-of-3 signatures per
// transaction, batch size 16. The verdict compares CPU time rather than
// wall clock: EndorseAll signs with the policyK peers in parallel, so on
// an idle multi-core machine stricter policies hide their extra
// signatures in concurrency — but the signature WORK (what a loaded
// platform actually pays) still grows linearly with K, and rusage
// measures it on any core count.
func A2EndorsementPolicy() (*Result, error) {
	const total = 96
	const reps = 3 // min-of-3: CPU noise (GC, interrupts) is strictly additive
	rows := []Row{}
	var tps, cpus []float64
	for _, k := range []int{1, 2, 3} {
		// RSA-PSS pinned: the linear-in-K CPU claim needs signatures
		// expensive enough to dominate the rusage delta; Ed25519 signing
		// would drown in ordering noise (E22 owns that regime).
		net, err := blockchain.NewNetwork("bench", []string{"p0", "p1", "p2"}, k,
			blockchain.WithSignatureScheme(hckrypto.SchemeRSAPSS))
		if err != nil {
			return nil, err
		}
		bestCPU := -1.0
		bestTPS := 0.0
		for rep := 0; rep < reps; rep++ {
			// Quiesce the heap: garbage left by earlier experiments (A1's
			// matrix fits) would otherwise be collected mid-arm and billed
			// to whichever arm GC happens to land in.
			runtime.GC()
			cpu0, err := e16CPU()
			if err != nil {
				net.Close()
				return nil, err
			}
			start := time.Now()
			for sent := 0; sent < total; sent += 16 {
				txs := make([]blockchain.Transaction, 16)
				for i := range txs {
					txs[i] = blockchain.NewTransaction(blockchain.EventDataReceipt, "bench",
						fmt.Sprintf("h-%d-%d-%d", k, rep, sent+i), nil, nil)
				}
				if err := net.SubmitBatch(txs, 30*time.Second); err != nil {
					net.Close()
					return nil, err
				}
			}
			elapsed := time.Since(start)
			cpu1, err := e16CPU()
			if err != nil {
				net.Close()
				return nil, err
			}
			cpuMS := (cpu1 - cpu0).Seconds() * 1000
			if bestCPU < 0 || cpuMS < bestCPU {
				bestCPU = cpuMS
			}
			if tp := float64(total) / elapsed.Seconds(); tp > bestTPS {
				bestTPS = tp
			}
		}
		net.Close()
		tps = append(tps, bestTPS)
		cpus = append(cpus, bestCPU)
		rows = append(rows, Row{fmt.Sprintf("%d-of-3 endorsement: throughput", k), bestTPS, "tx/s"})
		rows = append(rows, Row{fmt.Sprintf("%d-of-3 endorsement: cpu (min of %d)", k, reps), bestCPU, "ms"})
	}
	holds := cpus[2] > cpus[1] && cpus[1] > cpus[0]
	return &Result{
		ID:         "A2",
		Title:      "ablation: endorsement-policy strictness vs ledger cost",
		PaperClaim: "endorsement policy is a security/throughput dial; stricter policies cost per-tx signature work (§IV design decision)",
		Rows:       append(rows, Row{"cpu cost of 3-of-3 vs 1-of-3", cpus[2] / cpus[0], "x"}),
		Shape:      verdict(holds, fmt.Sprintf("signature work rises monotonically with policy strictness (%.0f→%.0f→%.0f ms cpu)", cpus[0], cpus[1], cpus[2])),
	}, nil
}

// A3CacheTierAblation isolates what each tier of Fig 4's cache hierarchy
// contributes: client-only, server-only, and both, at a small client
// cache (64 entries) against a 40 ms WAN.
func A3CacheTierAblation() (*Result, error) {
	cfg := kb.DefaultConfig()
	cfg.Drugs, cfg.Diseases = 150, 100
	d, err := kb.Generate(cfg)
	if err != nil {
		return nil, err
	}
	const reads = 10_000
	const lan, wan = 2 * time.Millisecond, 40 * time.Millisecond
	keys := zipfKeys(kbKeyspace(d), reads, 3)
	type arm struct {
		label  string
		tiers  func() []*hccache.Cache
		isBoth bool
	}
	mk := func(size int) *hccache.Cache {
		c, _ := hccache.New(size, 0)
		return c
	}
	arms := []arm{
		{"client tier only (64)", func() []*hccache.Cache { return []*hccache.Cache{mk(64)} }, false},
		{"server tier only (4096)", func() []*hccache.Cache { return []*hccache.Cache{mk(4096)} }, false},
		{"both tiers (64 + 4096)", func() []*hccache.Cache { return []*hccache.Cache{mk(64), mk(4096)} }, true},
	}
	rows := []Row{}
	var meanBoth, meanBest time.Duration
	for _, a := range arms {
		sleep, remoteTime := accountedSleeper()
		remote := kb.NewRemoteKB(d, wan, kb.WithSleeper(sleep))
		tiers := a.tiers()
		tc, err := hccache.NewTiered(remote.Loader(), tiers...)
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			if _, err := tc.Get(k); err != nil {
				return nil, err
			}
		}
		// Cost model: reads that reach past the first tier pay the LAN hop
		// when a server tier exists remotely (tiers beyond index 0 in the
		// "both" arm; the server-only arm pays LAN on every read since the
		// cache itself lives across the LAN).
		var modeled time.Duration
		stats := tc.TierStats()
		switch {
		case a.isBoth:
			serverProbes := stats[1].Hits + stats[1].Misses
			modeled = time.Duration(serverProbes)*lan + *remoteTime
		case a.label[0] == 's':
			modeled = time.Duration(reads)*lan + *remoteTime
		default:
			modeled = *remoteTime
		}
		mean := modeled / reads
		rows = append(rows, Row{a.label + ": mean latency", float64(mean.Microseconds()), "µs"})
		if a.isBoth {
			meanBoth = mean
		} else if meanBest == 0 || mean < meanBest {
			meanBest = mean
		}
	}
	return &Result{
		ID:         "A3",
		Title:      "ablation: client tier vs server tier vs both (Fig 4 hierarchy)",
		PaperClaim: "caching at multiple levels and not just at the client level (§I)",
		Rows:       rows,
		Shape: verdict(meanBoth < meanBest, fmt.Sprintf("both tiers (%dµs) beat the best single tier (%dµs)",
			meanBoth.Microseconds(), meanBest.Microseconds())),
	}, nil
}

// Ablations runs A1–A3.
func Ablations() ([]*Result, error) {
	funcs := []func() (*Result, error){A1JMFSourceAblation, A2EndorsementPolicy, A3CacheTierAblation}
	out := make([]*Result, 0, len(funcs))
	for _, f := range funcs {
		r, err := f()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
