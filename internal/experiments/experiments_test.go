package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"healthcloud/internal/core"
	"healthcloud/internal/ingest"
)

// TestMain dispatches to the E20 crash-test child when this test
// binary is re-executed with E20ChildEnv set: the child runs a durable
// platform and ingests until the parent SIGKILLs it. E20Child exits
// the process, so m.Run never executes in that mode.
func TestMain(m *testing.M) {
	if os.Getenv(E20ChildEnv) != "" {
		E20Child()
	}
	os.Exit(m.Run())
}

// TestAllShapesHold runs the full reproduction harness and requires every
// experiment to report its paper-predicted shape. This is the repo's
// single strongest statement: each quantitative claim of the paper holds
// on this substrate.
func TestAllShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness skipped in -short mode")
	}
	results, err := All()
	if err != nil {
		t.Fatalf("harness error after %d experiments: %v", len(results), err)
	}
	if len(results) != 15 {
		t.Fatalf("ran %d experiments, want 15", len(results))
	}
	for _, r := range results {
		if !strings.HasPrefix(r.Shape, "HOLDS") {
			t.Errorf("%s: %s", r.ID, r.Shape)
		}
		if len(r.Rows) == 0 || r.PaperClaim == "" {
			t.Errorf("%s: incomplete result %+v", r.ID, r)
		}
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ID: "EX", Title: "t", PaperClaim: "c",
		Rows: []Row{{"a", 1.5, "x"}}, Shape: "HOLDS — demo"}
	s := r.String()
	for _, want := range []string{"EX", "claim: c", "1.500", "HOLDS"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = string(rune('a' + i%26))
	}
	draws := zipfKeys(keys, 10_000, 1)
	counts := map[string]int{}
	for _, k := range draws {
		counts[k]++
	}
	// The head key must dominate a Zipf draw.
	if counts[keys[0]] < 1000 {
		t.Errorf("head key drawn only %d times — not Zipf-skewed", counts[keys[0]])
	}
}

func TestVerdict(t *testing.T) {
	if got := verdict(true, "yes"); got != "HOLDS — yes" {
		t.Errorf("verdict(true) = %q", got)
	}
	if got := verdict(false, "no"); got != "DOES NOT HOLD — no" {
		t.Errorf("verdict(false) = %q", got)
	}
}

func TestAccountedSleeper(t *testing.T) {
	sleep, total := accountedSleeper()
	sleep(100)
	sleep(200)
	if *total != 300 {
		t.Errorf("accounted %v", *total)
	}
}

// TestAblationShapesHold runs the design-choice ablations A1–A3.
func TestAblationShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short mode")
	}
	results, err := Ablations()
	if err != nil {
		t.Fatalf("ablations error after %d: %v", len(results), err)
	}
	if len(results) != 3 {
		t.Fatalf("ran %d ablations, want 3", len(results))
	}
	for _, r := range results {
		if !strings.HasPrefix(r.Shape, "HOLDS") {
			t.Errorf("%s: %s", r.ID, r.Shape)
		}
	}
}

// TestE15ChaosInvariant pins the resilience acceptance criteria: under
// 20% store / 10% ledger fault injection every upload reaches a terminal
// state and retries recover at least 90% of transiently-failed uploads.
func TestE15ChaosInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	r, err := E15ChaosIngestion()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	if rows["lost (no terminal state)"] != 0 {
		t.Errorf("lost uploads = %v, want 0", rows["lost (no terminal state)"])
	}
	if rows["uploads that hit a transient fault"] == 0 {
		t.Error("chaos was a no-op: no upload hit an injected fault")
	}
	if rows["recovery ratio"] < 90 {
		t.Errorf("recovery ratio = %v%%, want >= 90%%", rows["recovery ratio"])
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

// TestE22SignerAgility pins the crypto-agility acceptance criteria: the
// Ed25519 runtime default endorses at least 5x faster than the RSA-PSS
// compatibility scheme on a single peer (median of 3 interleaved
// rounds; ~35x in practice), and unbatched 16-worker ingest — where
// ordering and commit-wait dilute signature cost — still keeps a
// measurable gain. The companion zero-allocation guard for the Ed25519
// verify hot path lives in internal/hckrypto (TestEd25519VerifyZeroAlloc).
func TestE22SignerAgility(t *testing.T) {
	if testing.Short() {
		t.Skip("signer-agility benchmark skipped in -short mode")
	}
	r, err := E22SignerAgility()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	if got := rows["endorse speedup (ed25519/rsa-pss)"]; got < 5 {
		t.Errorf("ed25519/rsa-pss endorse speedup = %.1fx, want >= 5x", got)
	}
	if got := rows["ingest gain (ed25519/rsa-pss)"]; got <= 1.2 {
		t.Errorf("ingest gain = %.2fx, want > 1.2x (measured ~4x)", got)
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

// TestE17BatchedProvenance pins the group-commit acceptance criteria:
// batched provenance sustains at least 2x the unbatched ingest
// throughput at 16 workers, the batcher genuinely coalesces (mean group
// size > 1), and the per-upload provenance stage gets cheaper.
func TestE17BatchedProvenance(t *testing.T) {
	if testing.Short() {
		t.Skip("group-commit benchmark skipped in -short mode")
	}
	r, err := E17GroupCommit()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	if got := rows["speedup @ 16 workers (batched/unbatched)"]; got < 2 {
		t.Errorf("batched/unbatched speedup = %.2fx, want >= 2x", got)
	}
	if got := rows["mean group size @ 16 workers"]; got <= 1 {
		t.Errorf("mean group size = %.1f — batching never coalesced", got)
	}
	if rows["batched @ 16 workers (median of 3)"] <= rows["unbatched @ 16 workers (median of 3)"] {
		t.Error("batched throughput not above unbatched at 16 workers")
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

// TestE16TelemetryOverhead pins the observability acceptance criteria:
// the instrumented pipeline costs < 5% CPU over the nil-telemetry
// baseline, and a single upload's trace carries every pipeline stage
// including the bus hop and ledger phases.
func TestE16TelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("telemetry benchmark skipped in -short mode")
	}
	r, err := E16TelemetryOverhead()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	if got := rows["telemetry self-overhead (cpu, median pair)"]; got >= 5 {
		t.Errorf("telemetry self-overhead = %.2f%%, want < 5%%", got)
	}
	if rows["provenance+ordering share of pipeline"] <= 0 {
		t.Error("provenance share not measured")
	}
	if rows["spans in one upload's trace"] < 15 {
		t.Errorf("trace has %v spans, want >= 15", rows["spans in one upload's trace"])
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

// TestE23TailSampling pins the tail-sampling acceptance criteria: with
// a 200-trace store under a 3000-upload run carrying a seeded 1%
// slow-ledger fault, the tail sampler retains >= 90% of the slow traces
// where FIFO retains < 20%, the span lifecycle stays at 0 allocs/op,
// and self-overhead stays under the E16 5% CPU bound.
func TestE23TailSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("tail-sampling benchmark skipped in -short mode")
	}
	r, err := E23TailSampling()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	if got := rows["tail retention of slow traces"]; got < 90 {
		t.Errorf("tail retention = %.1f%%, want >= 90%%", got)
	}
	if got := rows["fifo retention of slow traces"]; got >= 20 {
		t.Errorf("fifo retention = %.1f%%, want < 20%% (the failure mode tail sampling fixes)", got)
	}
	if got := rows["span lifecycle allocations"]; got != 0 {
		t.Errorf("span lifecycle = %v allocs/op, want 0", got)
	}
	if got := rows["tail-sampling self-overhead (cpu, median pair)"]; got >= 5 {
		t.Errorf("tail-sampling self-overhead = %.2f%%, want < 5%%", got)
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

func TestE18WatchdogDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("watchdog chaos experiment skipped in -short mode")
	}
	r, err := E18WatchdogDetection()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	for _, class := range []string{"store outage", "ledger latency", "kb outage"} {
		if got := rows[class+": ticks to detect"]; got < 1 || got >= 2 {
			t.Errorf("%s detected in %v ticks, want < 2", class, got)
		}
		if got := rows[class+": ticks to clear"]; got < 1 {
			t.Errorf("%s never cleared (ticks = %v)", class, got)
		}
	}
	if rows["alert-raised audit events"] < 3 || rows["alert-cleared audit events"] < 3 {
		t.Errorf("alert transitions not audited: raised %v cleared %v",
			rows["alert-raised audit events"], rows["alert-cleared audit events"])
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

// TestE19ShardedLake pins the sharded-lake acceptance criteria: ≥2×
// ingest throughput at 4 shards vs 1 (16 workers against serial
// storage nodes), and — with one of three shards dead at R=2 — zero
// lost and zero dead-lettered uploads, readiness degraded-then-
// recovered, the hint backlog drained, and every object's replicas
// byte-identical afterwards.
func TestE19ShardedLake(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded-lake experiment skipped in -short mode")
	}
	r, err := E19ShardedLake()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	if got := rows["throughput speedup (4 vs 1)"]; got < 2 {
		t.Errorf("4-shard speedup = %.2fx, want >= 2x", got)
	}
	if got := rows["lost"]; got != 0 {
		t.Errorf("lost uploads = %v, want 0", got)
	}
	if got := rows["dead-lettered"]; got != 0 {
		t.Errorf("dead-lettered uploads = %v, want 0", got)
	}
	if got := rows["stored"]; got != rows["uploads during outage run"] {
		t.Errorf("stored %v of %v uploads", got, rows["uploads during outage run"])
	}
	if got := rows["hints queued during outage"]; got == 0 {
		t.Error("no hints queued — the outage never exercised hinted handoff")
	}
	if got := rows["hint backlog after drain"]; got != 0 {
		t.Errorf("hint backlog after drain = %v, want 0", got)
	}
	if got := rows["divergent objects"]; got != 0 {
		t.Errorf("divergent objects = %v, want 0", got)
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

// TestE20CrashRecovery pins the durability acceptance criteria: a
// child process SIGKILLed mid-ingest — with an injected torn write
// already flushed to one shard's journal — must lose zero acknowledged
// uploads across restart, the torn tail must be truncated (not
// refused), replicas must re-converge byte-identically after the
// repair sweep, all ledger peers must replay one hash-verified chain,
// and group-commit fsync batching must at least halve the fsync count.
func TestE20CrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery experiment skipped in -short mode")
	}
	r, err := E20CrashRecovery()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	if got := rows["acked uploads missing after replay"]; got != 0 {
		t.Errorf("lost %v acked uploads, want 0", got)
	}
	if got := rows["acked after torn-write wedge"]; got < 1 {
		t.Error("no uploads acked after the wedge — the kill did not land mid-ingest")
	}
	if got := rows["torn-tail bytes truncated at reopen"]; got <= 0 {
		t.Errorf("torn-tail bytes truncated = %v, want > 0", got)
	}
	if got := rows["divergent objects"]; got != 0 {
		t.Errorf("divergent objects after repair = %v, want 0", got)
	}
	if got, n := rows["peers agreeing on replayed state hash"], 3.0; got != n {
		t.Errorf("peers agreeing on state hash = %v, want %v", got, n)
	}
	if g, s := rows["fsyncs issued, group-commit"], rows["fsyncs issued, fsync-per-append"]; g >= s {
		t.Errorf("group commit issued %v fsyncs vs %v — batching never coalesced", g, s)
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

// TestCleanStopStartNoLoss is the graceful-shutdown regression: a
// platform that stops cleanly (Platform.Close drains intake, flushes
// the ledger, then syncs and closes the durable logs) must restart
// with every acknowledged upload present and the identical ledger
// state hash — and with nothing truncated, because a clean stop leaves
// no torn tail.
func TestCleanStopStartNoLoss(t *testing.T) {
	dir := t.TempDir()
	cfg, err := e20Config(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key, err := p.Ingest.RegisterClient(e20Client)
	if err != nil {
		t.Fatal(err)
	}
	const uploads = 10
	refs := make([]string, 0, uploads)
	for i := 0; i < uploads; i++ {
		st, err := e20Upload(p, key, i)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != ingest.StateStored {
			t.Fatalf("upload %d ended %s: %s", i, st.State, st.Error)
		}
		refs = append(refs, st.RefID)
	}
	count := p.Lake.Count()
	peer, err := p.Provenance.Peer(p.Provenance.PeerIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	stateHash := peer.Ledger().StateHash()
	p.Close()

	p2, err := core.New(cfg)
	if err != nil {
		t.Fatalf("reopen after clean stop: %v", err)
	}
	defer p2.Close()
	for _, log := range p2.LakeLogs {
		if tb := log.ReplayInfo().TruncatedBytes; tb != 0 {
			t.Errorf("clean stop left %dB of torn tail", tb)
		}
	}
	if got := p2.Lake.Count(); got != count {
		t.Errorf("restart holds %d objects, want %d", got, count)
	}
	for _, ref := range refs {
		if _, err := p2.Lake.Meta(ref); err != nil {
			t.Errorf("acked upload %s missing after clean restart: %v", ref, err)
		}
	}
	peer2, err := p2.Provenance.Peer(p2.Provenance.PeerIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := peer2.Ledger().StateHash(); got != stateHash {
		t.Errorf("ledger state hash changed across clean restart:\n  before %s\n  after  %s",
			stateHash, got)
	}
	if _, divergent := p2.ShardLake.VerifyConvergence(); len(divergent) != 0 {
		t.Errorf("divergent objects after clean restart: %v", divergent)
	}
}

// TestE21MultiChannel pins the multi-channel provenance acceptance
// criteria: 4 channels sustain at least 1.8x the single-channel commit
// throughput under the serial-ordering device model, with zero
// transactions lost, every channel cutting blocks, and per-channel
// block-cut cadence reported.
func TestE21MultiChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-channel benchmark skipped in -short mode")
	}
	r, err := E21MultiChannel()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	if got := rows["speedup (4 vs 1 channels)"]; got < 1.8 {
		t.Errorf("4-channel speedup = %.2fx, want >= 1.8x", got)
	}
	if rows["throughput @ 2 channels (median of 3)"] <= rows["throughput @ 1 channel (median of 3)"] {
		t.Error("2-channel throughput not above single-channel")
	}
	for i := 0; i < 4; i++ {
		label := fmt.Sprintf("blocks cut @ 4 channels, ch-%d", i)
		if got, ok := rows[label]; !ok || got == 0 {
			t.Errorf("%s = %v — channel idle or cadence row missing", label, got)
		}
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}

// TestE24AdmissionControl pins the admission acceptance criteria: under
// open-loop load at 10x the measured knee the admission layer holds
// goodput at >= 80% of the knee while shedding with honest Retry-After
// hints, the backlog stays near the shed depth, and no request below
// the knee is ever refused. The unprotected arm must show the failure
// mode: a backlog several times the shed line.
func TestE24AdmissionControl(t *testing.T) {
	if testing.Short() {
		t.Skip("admission benchmark skipped in -short mode")
	}
	r, err := E24AdmissionControl()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	knee := rows["measured knee (admission off, drain rate)"]
	if knee < 100 {
		t.Fatalf("measured knee = %.0f/s — capacity model off or host overloaded", knee)
	}
	if got := rows["below knee: shed"]; got != 0 {
		t.Errorf("sheds below the knee = %.0f, want 0", got)
	}
	if got := rows["10x overload: goodput vs knee"]; got < 80 {
		t.Errorf("overload goodput = %.0f%% of knee, want >= 80%%", got)
	}
	if got := rows["10x overload: shed (503 + Retry-After)"]; got == 0 {
		t.Error("overload produced no sheds — open loop not overdriving the knee")
	}
	if got := rows["no admission: backlog at phase end"]; got < 5*rows["10x overload: backlog at phase end"] {
		t.Errorf("unprotected backlog %.0f not well above protected %.0f",
			got, rows["10x overload: backlog at phase end"])
	}
	if !strings.HasPrefix(r.Shape, "HOLDS") {
		t.Errorf("shape: %s", r.Shape)
	}
}
