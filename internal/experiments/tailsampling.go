package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"healthcloud/internal/anonymize"
	"healthcloud/internal/audit"
	"healthcloud/internal/blockchain"
	"healthcloud/internal/bus"
	"healthcloud/internal/consent"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/scan"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// e23Ledger wraps the provenance network with a seeded latency fault:
// a deterministic fraction of submissions stall for 120-150 ms, and the
// wrapper records which trace IDs hit the stall. That recording is the
// experiment's ground truth — the set of traces an on-call engineer
// would want retained — measured at the fault site itself, independent
// of anything the tracer does.
type e23Ledger struct {
	n    *blockchain.Network
	mu   sync.Mutex
	rng  *rand.Rand
	rate float64
	slow map[string]bool
}

func newE23Ledger(n *blockchain.Network, seed int64, rate float64) *e23Ledger {
	return &e23Ledger{n: n, rng: rand.New(rand.NewSource(seed)), rate: rate,
		slow: make(map[string]bool)}
}

func (l *e23Ledger) Submit(tx blockchain.Transaction, timeout time.Duration) error {
	return l.n.Submit(tx, timeout)
}

func (l *e23Ledger) SubmitCtx(tx blockchain.Transaction, timeout time.Duration, parent telemetry.SpanContext) error {
	l.mu.Lock()
	stall := time.Duration(0)
	if l.rng.Float64() < l.rate {
		stall = time.Duration(120+l.rng.Intn(31)) * time.Millisecond
		if id := parent.TraceID.String(); id != "" {
			l.slow[id] = true
		}
	}
	l.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	return l.n.SubmitCtx(tx, timeout, parent)
}

func (l *e23Ledger) slowTraces() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.slow))
	for id := range l.slow {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// e23Arm runs `uploads` single-patient bundles through a fresh
// 16-worker pipeline (full 3-peer ledger, fault-injected) under the
// given tracer, then reports what fraction of the ground-truth slow
// traces the trace store still holds.
func e23Arm(tracer *telemetry.Tracer, uploads int, seed int64) (retention float64, slowCount int, err error) {
	tel := &telemetry.Telemetry{Metrics: telemetry.NewRegistry(), Tracer: tracer}
	kms, err := hckrypto.NewKMS("tail-sampling")
	if err != nil {
		return 0, 0, err
	}
	msgBus := bus.New(bus.WithMaxAttempts(5),
		bus.WithTelemetry(tel.Registry(), tel.Spans()))
	defer msgBus.Close()
	scanner, err := scan.NewScanner(scan.DefaultSignatures()...)
	if err != nil {
		return 0, 0, err
	}
	network, err := blockchain.NewNetwork("tail-ledger",
		[]string{"p0", "p1", "p2"}, 2,
		blockchain.WithTelemetry(tel.Registry(), tel.Spans()))
	if err != nil {
		return 0, 0, err
	}
	defer network.Close()
	faulty := newE23Ledger(network, seed, 0.01)
	lake := store.NewDataLake(kms, "svc-storage")
	lake.SetTelemetry(tel.Registry())
	consents := consent.NewService()
	pipe, err := ingest.New(ingest.Deps{
		Tenant: "tail-sampling", KMS: kms, Lake: lake,
		IDMap: store.NewIdentityMap("svc-reident"),
		Bus:   msgBus, Scanner: scanner, Consents: consents,
		Verifier: &anonymize.VerificationService{},
		Ledger:   faulty, Log: audit.NewLog(),
		Telemetry: tel,
	})
	if err != nil {
		return 0, 0, err
	}
	pipe.Start(16)
	defer pipe.Close()
	key, err := pipe.RegisterClient("tele-client")
	if err != nil {
		return 0, 0, err
	}

	h := &e16Harness{consents: consents, key: key}
	payloads, err := h.payloads(uploads, 1)
	if err != nil {
		return 0, 0, err
	}
	for _, payload := range payloads {
		if _, err := pipe.Upload("tele-client", "study", payload); err != nil {
			return 0, 0, err
		}
		// Pace arrivals under the 16-worker service rate: a trace's wall
		// time must reflect how it was processed, not how deep the queue
		// was behind an instantaneous 3000-upload burst — unbounded queue
		// wait would make late normal traces look slower than the stalls.
		time.Sleep(500 * time.Microsecond)
	}
	if err := pipe.WaitForIdle(120 * time.Second); err != nil {
		return 0, 0, err
	}
	stored := 0
	for _, st := range pipe.Statuses() {
		if st.State == ingest.StateStored {
			stored++
		}
	}
	if stored != uploads {
		return 0, 0, fmt.Errorf("E23: %d/%d uploads stored", stored, uploads)
	}
	// Finalize any traces still buffering (e.g. roots whose FinishTrace
	// raced the idle check) so retention is measured post-decision.
	tracer.FlushPending()

	slow := faulty.slowTraces()
	if len(slow) == 0 {
		return 0, 0, fmt.Errorf("E23: fault injector produced no slow traces")
	}
	kept := 0
	for _, id := range slow {
		if len(tracer.Trace(id)) > 0 {
			kept++
		}
	}
	return float64(kept) / float64(len(slow)), len(slow), nil
}

// E23TailSampling pins the tail-sampling trace store against the legacy
// FIFO store on the retention question that matters during an incident:
// after a high-volume run with a rare latency fault, are the anomalous
// traces still there? Both arms run the identical 16-worker pipeline
// with a seeded 1% ledger stall (120-150 ms against a ~2 ms baseline)
// into a store capped at 200 traces — far under the run's 3000 — so
// retention is a policy decision, not a capacity accident. FIFO keeps
// whatever came last; the tail sampler buffers each trace until its
// root finishes, then pins errored and top-K-slowest roots and keeps
// only a 2% sample of the rest. The experiment also re-prices the two
// hot-path guarantees the sampler must not regress: a span lifecycle
// stays allocation-free, and whole-stack self-overhead stays under the
// E16 5% CPU bound (paired-arm median, same methodology).
func E23TailSampling() (*Result, error) {
	const uploads = 3000
	const storeCap = 200
	const seed = 23

	fifoRet, fifoSlow, err := e23Arm(telemetry.NewTracer(storeCap, 0), uploads, seed)
	if err != nil {
		return nil, err
	}
	tailRet, tailSlow, err := e23Arm(telemetry.NewTailTracer(storeCap, 0, telemetry.Policy{
		SampleRate:    0.02,
		SlowK:         64,
		MaxPending:    8192,
		MaxPendingAge: 30 * time.Second,
	}), uploads, seed)
	if err != nil {
		return nil, err
	}

	// Zero-alloc guard, measured the same way the unit test pins it:
	// one root + child + attribute + finish cycle, steady state, under a
	// discard-everything policy so the measurement isolates the span
	// lifecycle itself (keeping a trace converts it to retained records,
	// which allocates once per kept trace by design).
	allocTracer := telemetry.NewTailTracer(64, 0, telemetry.Policy{SampleRate: 0, SlowK: 0})
	cycle := func() {
		root := allocTracer.StartRoot("e23.root")
		sc := root.Context()
		child := allocTracer.StartSpan("e23.child", sc)
		child.SetAttr("stage", "bench")
		child.End()
		root.End()
		allocTracer.FinishTrace(sc.TraceID)
	}
	for i := 0; i < 3000; i++ { // warm the span/trace pools
		cycle()
	}
	allocs := testing.AllocsPerRun(2000, cycle)

	overheadPct, err := e23Overhead()
	if err != nil {
		return nil, err
	}

	rows := []Row{
		{"uploads per arm (16 workers, 1% slow-ledger fault)", float64(uploads), ""},
		{"trace store capacity", float64(storeCap), ""},
		{"ground-truth slow traces (fifo arm)", float64(fifoSlow), ""},
		{"ground-truth slow traces (tail arm)", float64(tailSlow), ""},
		{"fifo retention of slow traces", fifoRet * 100, "%"},
		{"tail retention of slow traces", tailRet * 100, "%"},
		{"span lifecycle allocations", allocs, "allocs/op"},
		{"tail-sampling self-overhead (cpu, median pair)", overheadPct, "%"},
	}
	holds := tailRet >= 0.90 && fifoRet < 0.20 && allocs == 0 && overheadPct < 5
	detail := fmt.Sprintf("tail keeps %.0f%% of the slowest traces where FIFO keeps %.0f%%, at %g allocs/span and %.1f%% CPU",
		tailRet*100, fifoRet*100, allocs, overheadPct)
	return &Result{
		ID:    "E23",
		Title: fmt.Sprintf("tail sampling: anomaly retention under a %d-trace store, %d-upload run", storeCap, uploads),
		PaperClaim: "continuous monitoring must surface the anomalous request, not a uniform sample: retention " +
			"should be decided after a trace completes, when its latency and error status are known",
		Rows:  rows,
		Shape: verdict(holds, detail),
	}, nil
}

// e23Overhead reruns the E16 paired-arm CPU comparison with the tail
// sampler active (2% keep, buffering every span until its root ends) so
// the buffering pipeline — pending lists, slow-heap bookkeeping, span
// pooling — is priced under the same < 5% bound as the FIFO store was.
func e23Overhead() (float64, error) {
	const pairs = 160
	const bundle = 40
	const warmUploads = 20

	baseArm, err := e16NewHarness(nil, false, true)
	if err != nil {
		return 0, err
	}
	defer baseArm.close()
	tailTel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Tracer: telemetry.NewTailTracer(0, 0, telemetry.Policy{
			SampleRate: 0.02, SlowK: 8, MaxPending: 8192, MaxPendingAge: 30 * time.Second,
		}),
	}
	instArm, err := e16NewHarness(tailTel, false, true)
	if err != nil {
		return 0, err
	}
	defer instArm.close()

	for _, arm := range []*e16Harness{baseArm, instArm} {
		pl, err := arm.payloads(warmUploads, bundle)
		if err != nil {
			return 0, err
		}
		if _, err := arm.batch(pl, true); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	oldProcs := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(oldProcs)
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		arms := [2]*e16Harness{baseArm, instArm}
		if i%2 == 1 { // alternate order within the pair so drift cancels
			arms[0], arms[1] = arms[1], arms[0]
		}
		var cpus [2]time.Duration
		for j, arm := range arms {
			pl, err := arm.payloads(1, bundle)
			if err != nil {
				return 0, err
			}
			if cpus[j], err = arm.batch(pl, true); err != nil {
				return 0, err
			}
		}
		base, inst := cpus[0], cpus[1]
		if i%2 == 1 {
			base, inst = inst, base
		}
		ratios = append(ratios, (inst.Seconds()-base.Seconds())/base.Seconds()*100)
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2], nil
}
