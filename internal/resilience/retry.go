// Package resilience provides the platform's failure-handling
// primitives: retry with exponential backoff and full jitter, error
// classification (transient vs permanent), and a circuit breaker. The
// paper assumes external knowledge bases, AI services, and intercloud
// links that can stall or fail (§II-C, §III); these primitives are how
// the reproduction keeps an upload or a KB read from dying on the first
// transient error.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Policy tunes Retry.
type Policy struct {
	// MaxAttempts caps total tries (default 3; 1 = no retry).
	MaxAttempts int
	// BaseDelay is the first backoff ceiling (default 10ms). Attempt n
	// sleeps a uniform draw from [0, min(BaseDelay·Multiplier^(n-1),
	// MaxDelay)] — "full jitter", which decorrelates competing retriers.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the ceiling per attempt (default 2).
	Multiplier float64
	// AttemptTimeout bounds each attempt's context (0 = no per-attempt
	// deadline beyond the caller's).
	AttemptTimeout time.Duration
	// Sleeper and Rand are injectable for deterministic tests: Sleeper
	// replaces the backoff sleep, Rand returns a value in [0,1).
	Sleeper func(time.Duration)
	Rand    func() float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Sleeper == nil {
		p.Sleeper = time.Sleep
	}
	if p.Rand == nil {
		p.Rand = defaultRand
	}
	return p
}

// defaultRandState is a package-level xorshift seeded once; retries
// only need decorrelation, not cryptographic quality. The state
// advances via compare-and-swap because concurrent retriers (replica
// writes, parallel KB reads) share it.
var defaultRandState = func() *atomic.Uint64 {
	var s atomic.Uint64
	s.Store(uint64(time.Now().UnixNano()) | 1)
	return &s
}()

func defaultRand() float64 {
	for {
		old := defaultRandState.Load()
		s := old
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if defaultRandState.CompareAndSwap(old, s) {
			return float64(s%1_000_000) / 1_000_000
		}
	}
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Retry (and IsPermanent) stop immediately.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (anywhere in its chain) was marked
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Retry runs op until it succeeds, returns a Permanent error, the
// context is done, or MaxAttempts is exhausted. The error returned
// after exhaustion wraps the last attempt's error.
func Retry(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var last error
	ceiling := p.BaseDelay
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		last = op(attemptCtx)
		cancel()
		if last == nil {
			return nil
		}
		if IsPermanent(last) {
			return last
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("resilience: %d attempts exhausted: %w", p.MaxAttempts, last)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("resilience: giving up after %d attempts: %w", attempt, err)
		}
		// Full jitter: uniform in [0, ceiling].
		p.Sleeper(time.Duration(p.Rand() * float64(ceiling)))
		ceiling = time.Duration(float64(ceiling) * p.Multiplier)
		if ceiling > p.MaxDelay {
			ceiling = p.MaxDelay
		}
	}
}
