package resilience

import (
	"errors"
	"testing"
	"time"

	"healthcloud/internal/telemetry"
)

type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newTestBreaker(threshold int, openFor time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1700000000, 0)}
	return NewBreaker(BreakerConfig{FailureThreshold: threshold, OpenFor: openFor, Now: clk.Now}), clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	fail := errors.New("down")
	for i := 0; i < 3; i++ {
		if b.State() != Closed {
			t.Fatalf("opened early at failure %d", i)
		}
		b.Do(func() error { return fail })
	}
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures", b.State())
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	if b.Opens() != 1 || b.Rejected() != 1 {
		t.Fatalf("opens=%d rejected=%d", b.Opens(), b.Rejected())
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	fail := errors.New("down")
	b.Do(func() error { return fail })
	b.Do(func() error { return fail })
	b.Do(func() error { return nil }) // resets the consecutive count
	b.Do(func() error { return fail })
	b.Do(func() error { return fail })
	if b.State() != Closed {
		t.Fatal("non-consecutive failures opened the circuit")
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Do(func() error { return errors.New("down") })
	if b.State() != Open {
		t.Fatal("not open")
	}
	clk.Advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after OpenFor elapsed", b.State())
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("successful probe left state %v", b.State())
	}
}

func TestBreakerHalfOpenProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Do(func() error { return errors.New("down") })
	clk.Advance(time.Second)
	b.Do(func() error { return errors.New("still down") })
	if b.State() != Open {
		t.Fatalf("failed probe left state %v", b.State())
	}
	// The open window restarts: still rejecting before a full OpenFor.
	clk.Advance(500 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("re-opened breaker admitted a call early")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Do(func() error { return errors.New("down") })
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatal("probe success did not close")
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Second)
	if b.RetryAfter() != 0 {
		t.Fatal("closed breaker has a retry-after")
	}
	b.Do(func() error { return errors.New("down") })
	clk.Advance(4 * time.Second)
	if got := b.RetryAfter(); got != 6*time.Second {
		t.Fatalf("RetryAfter = %v, want 6s", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestBreakerTelemetryExport(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	errFail := errors.New("down")
	reg := telemetry.NewRegistry()
	b.SetTelemetry(reg, "kb")

	gauge := reg.Gauge(`breaker_state{breaker="kb"}`)
	if gauge.Value() != int64(Closed) {
		t.Fatalf("initial gauge = %d, want closed", gauge.Value())
	}

	b.Record(errFail)
	b.Record(errFail) // threshold reached: closed -> open
	if gauge.Value() != int64(Open) {
		t.Fatalf("gauge after open = %d, want %d", gauge.Value(), int64(Open))
	}
	clk.Advance(time.Second) // lazy open -> half-open on next observation
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if gauge.Value() != int64(HalfOpen) {
		t.Fatalf("gauge after half-open = %d, want %d", gauge.Value(), int64(HalfOpen))
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil) // probe success: half-open -> closed
	if gauge.Value() != int64(Closed) {
		t.Fatalf("gauge after close = %d, want %d", gauge.Value(), int64(Closed))
	}

	for to, want := range map[string]uint64{"open": 1, "half-open": 1, "closed": 1} {
		c := reg.Counter(`breaker_transitions_total{breaker="kb",to="` + to + `"}`)
		if c.Value() != want {
			t.Errorf("transitions to %s = %d, want %d", to, c.Value(), want)
		}
	}

	// Unobserved breakers keep working: nil registry is a no-op.
	nb, _ := newTestBreaker(1, time.Second)
	nb.SetTelemetry(nil, "ignored")
	nb.Record(errFail)
	if nb.State() != Open {
		t.Fatal("unobserved breaker failed to open")
	}
}
