package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fixedPolicy retries without real sleeping and with a deterministic
// jitter draw, recording each backoff.
func fixedPolicy(attempts int, sleeps *[]time.Duration) Policy {
	return Policy{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Multiplier:  2,
		Sleeper:     func(d time.Duration) { *sleeps = append(*sleeps, d) },
		Rand:        func() float64 { return 1.0 }, // jitter draws the full ceiling
	}
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	var sleeps []time.Duration
	calls := 0
	err := Retry(context.Background(), fixedPolicy(5, &sleeps), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryExponentialBackoffCapped(t *testing.T) {
	var sleeps []time.Duration
	fail := errors.New("transient")
	err := Retry(context.Background(), fixedPolicy(5, &sleeps), func(context.Context) error { return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("exhausted error %v should wrap the last attempt error", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (ceiling growth with cap)", i, sleeps[i], want[i])
		}
	}
}

func TestRetryFullJitterBounded(t *testing.T) {
	var sleeps []time.Duration
	p := fixedPolicy(4, &sleeps)
	p.Rand = func() float64 { return 0.5 }
	Retry(context.Background(), p, func(context.Context) error { return errors.New("x") })
	for i, d := range sleeps {
		if d < 0 || d > 80*time.Millisecond {
			t.Fatalf("sleep %d = %v escapes [0, ceiling]", i, d)
		}
	}
	if sleeps[0] != 5*time.Millisecond {
		t.Fatalf("half-jitter of 10ms ceiling = %v, want 5ms", sleeps[0])
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	var sleeps []time.Duration
	calls := 0
	base := errors.New("bad request")
	err := Retry(context.Background(), fixedPolicy(5, &sleeps), func(context.Context) error {
		calls++
		return Permanent(base)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !IsPermanent(err) || !errors.Is(err, base) {
		t.Fatalf("error %v lost its classification", err)
	}
}

func TestRetryContextCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 10, Sleeper: func(time.Duration) {}, Rand: func() float64 { return 0 }}
	err := Retry(ctx, p, func(context.Context) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("kept retrying after cancel: %d calls", calls)
	}
}

func TestRetryPerAttemptDeadline(t *testing.T) {
	p := Policy{MaxAttempts: 2, AttemptTimeout: 5 * time.Millisecond,
		Sleeper: func(time.Duration) {}, Rand: func() float64 { return 0 }}
	var deadlines int
	err := Retry(context.Background(), p, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Second):
			return nil
		}
	})
	if err == nil {
		t.Fatal("attempts outliving their deadline should fail")
	}
	if deadlines != 2 {
		t.Fatalf("per-attempt deadline seen %d times, want 2", deadlines)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
	if IsPermanent(errors.New("plain")) {
		t.Fatal("plain error classified permanent")
	}
}
