package resilience

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestRetryBackoffBoundsProperty checks, across randomized policies and
// failure scripts, the two bounds callers budget against: Retry never
// calls op more than MaxAttempts times, and the summed backoff never
// exceeds the analytic ceiling sum min(BaseDelay·Multiplier^(n-1),
// MaxDelay) over the sleeps actually taken.
func TestRetryBackoffBoundsProperty(t *testing.T) {
	errTransient := errors.New("transient")
	for seed := int64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := Policy{
			MaxAttempts: 1 + rng.Intn(8),
			BaseDelay:   time.Duration(1+rng.Intn(50)) * time.Millisecond,
			MaxDelay:    time.Duration(1+rng.Intn(500)) * time.Millisecond,
			Multiplier:  1 + rng.Float64()*3,
		}
		var slept []time.Duration
		p.Sleeper = func(d time.Duration) { slept = append(slept, d) }
		p.Rand = rng.Float64

		// Random failure script: each attempt independently succeeds,
		// fails transiently, or fails permanently.
		type outcome int
		const (
			transient outcome = iota
			permanent
			success
		)
		script := make([]outcome, p.MaxAttempts)
		for i := range script {
			switch r := rng.Float64(); {
			case r < 0.6:
				script[i] = transient
			case r < 0.8:
				script[i] = permanent
			default:
				script[i] = success
			}
		}
		wantCalls := p.MaxAttempts
		for i, o := range script {
			if o != transient {
				wantCalls = i + 1
				break
			}
		}

		calls := 0
		err := Retry(context.Background(), p, func(context.Context) error {
			defer func() { calls++ }()
			switch script[calls] {
			case success:
				return nil
			case permanent:
				return Permanent(errTransient)
			default:
				return errTransient
			}
		})

		if calls != wantCalls {
			t.Errorf("seed %d: op called %d times, want %d (policy %+v)", seed, calls, wantCalls, p)
		}
		if calls > p.MaxAttempts {
			t.Errorf("seed %d: attempt cap exceeded: %d > %d", seed, calls, p.MaxAttempts)
		}
		if len(slept) != calls-1 {
			t.Errorf("seed %d: %d sleeps for %d attempts, want attempts-1", seed, len(slept), calls)
		}
		switch script[calls-1] {
		case success:
			if err != nil {
				t.Errorf("seed %d: success script returned %v", seed, err)
			}
		case permanent:
			if !IsPermanent(err) {
				t.Errorf("seed %d: permanent script returned non-permanent %v", seed, err)
			}
		default:
			if err == nil || IsPermanent(err) {
				t.Errorf("seed %d: exhaustion script returned %v", seed, err)
			}
		}

		// Replicate the documented ceiling sequence and bound each sleep
		// individually plus the total.
		ceiling := p.BaseDelay
		var bound, total time.Duration
		for i, d := range slept {
			if d > ceiling {
				t.Errorf("seed %d: sleep %d was %v, above its ceiling %v", seed, i, d, ceiling)
			}
			bound += ceiling
			total += d
			ceiling = time.Duration(float64(ceiling) * p.Multiplier)
			if ceiling > p.MaxDelay {
				ceiling = p.MaxDelay
			}
		}
		if total > bound {
			t.Errorf("seed %d: total backoff %v exceeds analytic bound %v", seed, total, bound)
		}
	}
}

// TestRetryContextCancelProperty checks that a canceled context stops
// retrying before the next attempt regardless of the policy drawn.
func TestRetryContextCancelProperty(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cancelAfter := 1 + rng.Intn(3)
		p := Policy{
			MaxAttempts: cancelAfter + 2 + rng.Intn(4),
			Sleeper:     func(time.Duration) {},
			Rand:        rng.Float64,
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		calls := 0
		err := Retry(ctx, p, func(context.Context) error {
			calls++
			if calls == cancelAfter {
				cancel()
			}
			return errors.New("transient")
		})
		if calls != cancelAfter {
			t.Errorf("seed %d: op called %d times after cancel at %d", seed, calls, cancelAfter)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("seed %d: err = %v, want context.Canceled in chain", seed, err)
		}
	}
}

// TestBreakerTransitionProperty drives a breaker through randomized
// call/advance interleavings on a fake clock and asserts the state
// machine only ever takes legal edges: Closed→Open (threshold),
// Open→HalfOpen (timer), HalfOpen→{Closed,Open} (probe outcome).
// Closed→HalfOpen and Open→Closed must never be observed.
func TestBreakerTransitionProperty(t *testing.T) {
	errFail := errors.New("downstream failed")
	legal := map[BreakerState]map[BreakerState]bool{
		Closed:   {Closed: true, Open: true},
		Open:     {Open: true, HalfOpen: true},
		HalfOpen: {HalfOpen: true, Closed: true, Open: true},
	}
	for seed := int64(0); seed < 32; seed++ {
		rng := rand.New(rand.NewSource(seed))
		now := time.Unix(0, 0)
		cfg := BreakerConfig{
			FailureThreshold: 1 + rng.Intn(5),
			OpenFor:          time.Duration(1+rng.Intn(10)) * time.Second,
			Now:              func() time.Time { return now },
		}
		b := NewBreaker(cfg)

		prev := b.State()
		var observedOpens uint64
		observe := func(step int, during string) BreakerState {
			s := b.State()
			if !legal[prev][s] {
				t.Fatalf("seed %d step %d (%s): illegal transition %v → %v", seed, step, during, prev, s)
			}
			if s == Open && prev != Open {
				observedOpens++
			}
			prev = s
			return s
		}

		consecutive := 0 // failures since last success/open, tracked while closed
		for step := 0; step < 400; step++ {
			if rng.Intn(4) == 0 {
				// Advance the clock — sometimes past OpenFor, sometimes not.
				now = now.Add(time.Duration(rng.Int63n(int64(cfg.OpenFor) * 3 / 2)))
				observe(step, "advance")
				continue
			}
			state := observe(step, "pre-allow")
			err := b.Allow()
			switch state {
			case Open:
				if err == nil {
					t.Fatalf("seed %d step %d: open breaker admitted a call", seed, step)
				}
			case Closed:
				if err != nil {
					t.Fatalf("seed %d step %d: closed breaker rejected: %v", seed, step, err)
				}
			case HalfOpen:
				if err == nil {
					// Probe admitted: a second concurrent call must be rejected.
					if err2 := b.Allow(); !errors.Is(err2, ErrOpen) {
						t.Fatalf("seed %d step %d: half-open admitted a second probe (%v)", seed, step, err2)
					}
				}
			}
			if err != nil {
				continue
			}
			fail := rng.Intn(2) == 0
			if fail {
				b.Record(errFail)
			} else {
				b.Record(nil)
			}
			after := observe(step, "post-record")

			// Threshold discipline: from Closed, the circuit opens exactly
			// when consecutive failures reach the threshold.
			if state == Closed {
				if fail {
					consecutive++
				} else {
					consecutive = 0
				}
				wantOpen := consecutive >= cfg.FailureThreshold
				if wantOpen != (after == Open) {
					t.Fatalf("seed %d step %d: %d/%d consecutive failures, state %v",
						seed, step, consecutive, cfg.FailureThreshold, after)
				}
				if wantOpen {
					consecutive = 0
				}
			}
			if state == HalfOpen {
				if fail && after != Open {
					t.Fatalf("seed %d step %d: failed probe left state %v, want Open", seed, step, after)
				}
				if !fail && after != Closed {
					t.Fatalf("seed %d step %d: successful probe left state %v, want Closed", seed, step, after)
				}
				consecutive = 0
			}
		}
		if got := b.Opens(); got != observedOpens {
			t.Errorf("seed %d: Opens() = %d, observed %d →Open transitions", seed, got, observedOpens)
		}
	}
}
