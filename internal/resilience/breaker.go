package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"healthcloud/internal/telemetry"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

// The classic three states.
const (
	Closed   BreakerState = iota // normal operation
	Open                         // failing fast, no calls pass
	HalfOpen                     // one probe in flight decides reopen/close
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrOpen is returned by Allow/Do while the breaker is rejecting calls.
var ErrOpen = errors.New("resilience: circuit open")

// Clock is injectable time (tests advance it manually).
type Clock func() time.Time

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// FailureThreshold opens the circuit after this many consecutive
	// failures (default 5).
	FailureThreshold int
	// OpenFor is how long the breaker rejects before allowing a
	// half-open probe (default 1s).
	OpenFor time.Duration
	// Now is the injectable clock (default time.Now).
	Now Clock
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a closed→open→half-open circuit breaker. While open it
// fails fast with ErrOpen; after OpenFor it admits a single probe
// (half-open) whose outcome closes or re-opens the circuit.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // when the circuit last opened
	probing     bool      // a half-open probe is in flight
	opens       uint64
	rejected    uint64

	// Telemetry export (nil until SetTelemetry; nil metrics no-op).
	stateGauge  *telemetry.Gauge
	transitions map[BreakerState]*telemetry.Counter
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// SetTelemetry exports the breaker's position and transition counts to
// reg: a gauge `breaker_state{breaker=<name>}` (0 closed, 1 open,
// 2 half-open — the BreakerState values) and counters
// `breaker_transitions_total{breaker=<name>,to=<state>}` incremented on
// every state change, including the lazy open→half-open flip. A nil reg
// leaves the breaker unobserved.
func (b *Breaker) SetTelemetry(reg *telemetry.Registry, name string) {
	if b == nil || reg == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stateGauge = reg.Gauge(fmt.Sprintf("breaker_state{breaker=%q}", name))
	b.transitions = map[BreakerState]*telemetry.Counter{
		Closed:   reg.Counter(fmt.Sprintf("breaker_transitions_total{breaker=%q,to=\"closed\"}", name)),
		Open:     reg.Counter(fmt.Sprintf("breaker_transitions_total{breaker=%q,to=\"open\"}", name)),
		HalfOpen: reg.Counter(fmt.Sprintf("breaker_transitions_total{breaker=%q,to=\"half-open\"}", name)),
	}
	b.stateGauge.Set(int64(b.state))
}

// transitionLocked moves the state machine to next, updating exported
// metrics. Callers hold b.mu and must not re-enter stateLocked.
func (b *Breaker) transitionLocked(next BreakerState) {
	b.state = next
	b.stateGauge.Set(int64(next))
	if c := b.transitions[next]; c != nil {
		c.Inc()
	}
}

// State returns the current state (Open lazily becomes HalfOpen once
// OpenFor has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *Breaker) stateLocked() BreakerState {
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.transitionLocked(HalfOpen)
		b.probing = false
	}
	return b.state
}

// Allow reports whether a call may proceed now; the caller must Record
// its outcome. In half-open only one probe is admitted at a time.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case Closed:
		return nil
	case HalfOpen:
		if b.probing {
			b.rejected++
			return ErrOpen
		}
		b.probing = true
		return nil
	default:
		b.rejected++
		return ErrOpen
	}
}

// Record reports a call outcome to the state machine.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	state := b.stateLocked()
	if err == nil {
		b.consecutive = 0
		if state == HalfOpen {
			b.transitionLocked(Closed)
			b.probing = false
		}
		return
	}
	switch state {
	case HalfOpen:
		// Probe failed: back to fully open for another OpenFor window.
		b.openLocked()
	case Closed:
		b.consecutive++
		if b.consecutive >= b.cfg.FailureThreshold {
			b.openLocked()
		}
	}
}

func (b *Breaker) openLocked() {
	b.transitionLocked(Open)
	b.probing = false
	b.consecutive = 0
	b.openedAt = b.cfg.Now()
	b.opens++
}

// Do runs op through the breaker: ErrOpen when rejecting, else op's
// error after recording it.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err)
	return err
}

// RetryAfter returns how long until the breaker will admit a probe
// (zero when not open) — the HTTP Retry-After hint.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stateLocked() != Open {
		return 0
	}
	return b.cfg.OpenFor - b.cfg.Now().Sub(b.openedAt)
}

// Opens returns how many times the circuit has opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Rejected returns how many calls were refused while open/half-open.
func (b *Breaker) Rejected() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}
