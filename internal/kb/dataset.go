// Package kb provides the external knowledge bases of §III. The real
// platform queries DisGeNET (gene–disease), PubChem (chemical
// structures), DrugBank (drug targets), SIDER (side effects), and
// PubMed; none of those are shippable here, so this package generates
// synthetic datasets with the same schema and — crucially — *planted
// latent structure*: every drug and disease carries a hidden latent
// vector, associations follow latent affinity, and each information
// source is a differently-noised view of the latent geometry. That makes
// the drug-repositioning experiments *verifiable*: JMF and the baselines
// are scored against held-out associations whose generating process is
// known (DESIGN.md substitution table).
package kb

import (
	"fmt"
	"math"
	"math/rand"
)

// Source names for drug and disease similarity views (§V-A: "three types
// of drug information (i.e., chemical structure, target protein, and
// side effect) and three types of disease information (i.e., phenotype,
// ontology, and disease gene)").
const (
	DrugChemical   = "chemical"
	DrugTarget     = "target"
	DrugSideEffect = "side-effect"

	DiseasePhenotype = "phenotype"
	DiseaseOntology  = "ontology"
	DiseaseGene      = "gene"
)

// DrugSources and DiseaseSources list the canonical view names.
var (
	DrugSources    = []string{DrugChemical, DrugTarget, DrugSideEffect}
	DiseaseSources = []string{DiseasePhenotype, DiseaseOntology, DiseaseGene}
)

// Config sizes a synthetic dataset.
type Config struct {
	Drugs       int
	Diseases    int
	LatentDim   int     // dimensionality of the hidden structure
	Density     float64 // fraction of (drug,disease) pairs associated
	SourceNoise map[string]float64
	Seed        int64
}

// DefaultConfig returns the dataset used by the examples and benches:
// 200 drugs × 150 diseases, rank-12 latent structure, ~4% association
// density (real repositioning matrices are sparse: the AMIA JMF study
// had ~0.6%; we stay a little denser so the baselines remain credible). Drug-side views carry heavy noise (molecular similarity is a
// famously weak proxy for therapeutic indication) while disease-side
// views are cleaner (phenotype/ontology resources are curated); methods
// that integrate both sides — JMF — can exploit the clean disease
// geometry that drug-only methods such as GBA never see, which is the
// paper's regime.
func DefaultConfig() Config {
	return Config{
		Drugs: 200, Diseases: 150, LatentDim: 12, Density: 0.04,
		SourceNoise: map[string]float64{
			DrugChemical: 1.2, DrugTarget: 1.2, DrugSideEffect: 1.2,
			DiseasePhenotype: 0.5, DiseaseOntology: 0.5, DiseaseGene: 0.5,
		},
		Seed: 42,
	}
}

// Dataset is the generated knowledge-base bundle.
type Dataset struct {
	Cfg     Config
	DrugIDs []string
	DisIDs  []string
	// Assoc is the full ground-truth association matrix (drugs × diseases).
	Assoc [][]float64
	// DrugSim and DisSim map source name -> similarity matrix.
	DrugSim map[string][][]float64
	DisSim  map[string][][]float64
	// latent vectors, retained for tests that check planted structure.
	drugLatent [][]float64
	disLatent  [][]float64
}

// Generate builds a dataset from the config.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Drugs <= 0 || cfg.Diseases <= 0 || cfg.LatentDim <= 0 {
		return nil, fmt.Errorf("kb: sizes must be positive, got %+v", cfg)
	}
	if cfg.Density <= 0 || cfg.Density >= 1 {
		return nil, fmt.Errorf("kb: density must be in (0,1), got %f", cfg.Density)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Cfg:     cfg,
		DrugSim: make(map[string][][]float64),
		DisSim:  make(map[string][][]float64),
	}
	for i := 0; i < cfg.Drugs; i++ {
		d.DrugIDs = append(d.DrugIDs, fmt.Sprintf("drug-%03d", i))
	}
	for j := 0; j < cfg.Diseases; j++ {
		d.DisIDs = append(d.DisIDs, fmt.Sprintf("disease-%03d", j))
	}
	d.drugLatent = randomLatent(rng, cfg.Drugs, cfg.LatentDim)
	d.disLatent = randomLatent(rng, cfg.Diseases, cfg.LatentDim)

	// Associations: the top Density fraction of latent affinities.
	affinities := make([]scoredPair, 0, cfg.Drugs*cfg.Diseases)
	for i := 0; i < cfg.Drugs; i++ {
		for j := 0; j < cfg.Diseases; j++ {
			affinities = append(affinities, scoredPair{i, j, dot(d.drugLatent[i], d.disLatent[j])})
		}
	}
	// nth-element by sorting once (n is small: tens of thousands).
	quota := int(float64(len(affinities)) * cfg.Density)
	sortScoredDesc(affinities)
	d.Assoc = make([][]float64, cfg.Drugs)
	for i := range d.Assoc {
		d.Assoc[i] = make([]float64, cfg.Diseases)
	}
	for _, s := range affinities[:quota] {
		d.Assoc[s.i][s.j] = 1
	}

	// Similarity views: cosine similarity of per-source noisy feature
	// projections of the latent vectors. Each source sees only a sliding
	// window of the latent dimensions — the paper's motivation for JMF is
	// precisely that each information source captures "different aspects
	// of drug/disease activities", so no single view spans the whole
	// structure and integration is what recovers it.
	span := (cfg.LatentDim*2 + 2) / 3 // ~2/3 of dims per source
	for s, src := range DrugSources {
		noise := cfg.SourceNoise[src]
		masked := maskLatent(d.drugLatent, s*cfg.LatentDim/len(DrugSources), span)
		feats := projectFeatures(rng, masked, 2*cfg.LatentDim, noise)
		d.DrugSim[src] = cosineSim(feats)
	}
	for s, src := range DiseaseSources {
		noise := cfg.SourceNoise[src]
		masked := maskLatent(d.disLatent, s*cfg.LatentDim/len(DiseaseSources), span)
		feats := projectFeatures(rng, masked, 2*cfg.LatentDim, noise)
		d.DisSim[src] = cosineSim(feats)
	}
	return d, nil
}

// maskLatent returns vectors restricted to span dimensions starting at
// offset (wrapping), so each similarity source observes a different
// aspect of the latent structure.
func maskLatent(latent [][]float64, offset, span int) [][]float64 {
	k := len(latent[0])
	if span > k {
		span = k
	}
	out := make([][]float64, len(latent))
	for i, u := range latent {
		v := make([]float64, span)
		for d := 0; d < span; d++ {
			v[d] = u[(offset+d)%k]
		}
		out[i] = v
	}
	return out
}

// HoldOut removes a fraction of the positive associations (selected
// deterministically from seed) and returns the training matrix plus the
// held-out positives as (drug, disease) index pairs — the evaluation
// protocol for experiment E9.
func (d *Dataset) HoldOut(fraction float64, seed int64) (train [][]float64, heldOut [][2]int) {
	rng := rand.New(rand.NewSource(seed))
	train = make([][]float64, len(d.Assoc))
	var positives [][2]int
	for i := range d.Assoc {
		train[i] = append([]float64(nil), d.Assoc[i]...)
		for j, v := range d.Assoc[i] {
			if v > 0 {
				positives = append(positives, [2]int{i, j})
			}
		}
	}
	rng.Shuffle(len(positives), func(a, b int) { positives[a], positives[b] = positives[b], positives[a] })
	n := int(float64(len(positives)) * fraction)
	for _, p := range positives[:n] {
		train[p[0]][p[1]] = 0
	}
	return train, positives[:n]
}

func randomLatent(rng *rand.Rand, n, k int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, k)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// projectFeatures maps latent vectors through a random linear map and
// adds Gaussian noise scaled by the source's noise level.
func projectFeatures(rng *rand.Rand, latent [][]float64, featDim int, noise float64) [][]float64 {
	k := len(latent[0])
	proj := make([][]float64, featDim)
	for f := range proj {
		row := make([]float64, k)
		for d := range row {
			row[d] = rng.NormFloat64() / math.Sqrt(float64(k))
		}
		proj[f] = row
	}
	out := make([][]float64, len(latent))
	for i, u := range latent {
		feat := make([]float64, featDim)
		for f := range feat {
			feat[f] = dot(proj[f], u) + noise*rng.NormFloat64()
		}
		out[i] = feat
	}
	return out
}

// cosineSim returns the pairwise cosine similarity matrix, clamped to
// [0,1] (negative similarity carries no signal for the multiplicative
// JMF updates).
func cosineSim(feats [][]float64) [][]float64 {
	n := len(feats)
	norms := make([]float64, n)
	for i, f := range feats {
		norms[i] = math.Sqrt(dot(f, f))
	}
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if norms[i] == 0 || norms[j] == 0 {
				continue
			}
			c := dot(feats[i], feats[j]) / (norms[i] * norms[j])
			if c < 0 {
				c = 0
			}
			sim[i][j] = c
		}
		sim[i][i] = 1
	}
	return sim
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// sortScoredDesc sorts by score descending (insertion of sort.Slice kept
// out of the hot path on purpose: this runs once per generation).
func sortScoredDesc(s []scoredPair) {
	quickSortScored(s, 0, len(s)-1)
}

type scoredPair = struct {
	i, j int
	v    float64
}

func quickSortScored(s []scoredPair, lo, hi int) {
	for lo < hi {
		p := s[(lo+hi)/2].v
		l, r := lo, hi
		for l <= r {
			for s[l].v > p {
				l++
			}
			for s[r].v < p {
				r--
			}
			if l <= r {
				s[l], s[r] = s[r], s[l]
				l++
				r--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if r-lo < hi-l {
			quickSortScored(s, lo, r)
			lo = l
		} else {
			quickSortScored(s, l, hi)
			hi = r
		}
	}
}

// GenerateInteractions derives a symmetric drug–drug interaction matrix
// from the dataset's latent structure: the top `density` fraction of
// drug pairs by latent affinity interact (drugs acting on the same
// pathways compete for targets and metabolism). Used by the Tiresias
// DDI-prediction experiments (E14).
func (d *Dataset) GenerateInteractions(density float64) ([][]float64, error) {
	if density <= 0 || density >= 1 {
		return nil, fmt.Errorf("kb: interaction density must be in (0,1), got %f", density)
	}
	n := len(d.drugLatent)
	pairs := make([]scoredPair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, scoredPair{i, j, dot(d.drugLatent[i], d.drugLatent[j])})
		}
	}
	sortScoredDesc(pairs)
	quota := int(float64(len(pairs)) * density)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for _, p := range pairs[:quota] {
		out[p.i][p.j] = 1
		out[p.j][p.i] = 1
	}
	return out, nil
}
