package kb

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"healthcloud/internal/hccache"
	"healthcloud/internal/resilience"
)

// ErrDegraded wraps errors returned when the KB is unreachable, the
// circuit is open, and no stale copy exists to degrade to.
var ErrDegraded = errors.New("kb: knowledge base unavailable")

// ResilientClient wraps a KB origin loader with the platform's
// resilience layer (§III assumes external KBs that can stall or fail):
// per-request retry with backoff, a circuit breaker that fails fast
// under sustained provider failure, and graceful degradation — while
// the circuit is open, reads are served from a last-known-good stale
// copy, flagged via the DegradedServes counter, instead of erroring.
type ResilientClient struct {
	origin  hccache.Loader
	breaker *resilience.Breaker
	retry   resilience.Policy

	mu       sync.Mutex
	stale    map[string]staleEntry // last good value per key, never expired
	degraded uint64                // reads served stale
}

type staleEntry struct {
	value   []byte
	version uint64
}

// NewResilientClient protects origin with the given breaker and retry
// policy. The stale store is unbounded: it mirrors the KB keyspace,
// which is small relative to the records it annotates.
func NewResilientClient(origin hccache.Loader, breaker *resilience.Breaker, retry resilience.Policy) *ResilientClient {
	return &ResilientClient{
		origin:  origin,
		breaker: breaker,
		stale:   make(map[string]staleEntry),
		retry:   retry,
	}
}

// Breaker exposes the circuit for health endpoints (state, retry-after).
func (c *ResilientClient) Breaker() *resilience.Breaker { return c.breaker }

// DegradedServes reports how many reads were answered from stale data.
func (c *ResilientClient) DegradedServes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Loader returns the protected loader; plug it into an hccache.Tiered
// as the origin.
func (c *ResilientClient) Loader() hccache.Loader { return c.load }

func (c *ResilientClient) load(key string) ([]byte, uint64, error) {
	if err := c.breaker.Allow(); err != nil {
		if v, ver, ok := c.serveStale(key); ok {
			return v, ver, nil
		}
		return nil, 0, fmt.Errorf("%w (circuit %s): %w", ErrDegraded, c.breaker.State(), err)
	}
	var value []byte
	var version uint64
	err := resilience.Retry(context.Background(), c.retry, func(context.Context) error {
		v, ver, err := c.origin(key)
		if errors.Is(err, hccache.ErrNotFound) {
			// A missing key is a healthy answer, not a provider failure.
			return resilience.Permanent(err)
		}
		if err != nil {
			return err
		}
		value, version = v, ver
		return nil
	})
	if errors.Is(err, hccache.ErrNotFound) {
		c.breaker.Record(nil)
		return nil, 0, err
	}
	c.breaker.Record(err)
	if err != nil {
		if v, ver, ok := c.serveStale(key); ok {
			return v, ver, nil
		}
		return nil, 0, fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	c.mu.Lock()
	c.stale[key] = staleEntry{value: value, version: version}
	c.mu.Unlock()
	return value, version, nil
}

func (c *ResilientClient) serveStale(key string) ([]byte, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.stale[key]
	if !ok {
		return nil, 0, false
	}
	c.degraded++
	return e.value, e.version, true
}
