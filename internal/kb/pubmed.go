package kb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// PubMed substitution (§III: "We provide access to papers in PubMed and
// PubMed Central. We perform text analysis on these papers to extract
// important scientific facts."). The corpus generator writes synthetic
// abstracts that mention drug and disease entities; the extractor does
// dictionary-based entity recognition and co-occurrence fact mining, so
// extraction quality is measurable against the planted mentions.

// Abstract is one synthetic paper.
type Abstract struct {
	PMID  string
	Title string
	Text  string
	// planted ground truth, for extraction accuracy tests
	Drugs    []string
	Diseases []string
}

// Corpus is a set of abstracts plus the entity dictionaries.
type Corpus struct {
	Abstracts []Abstract
	DrugDict  map[string]bool
	DisDict   map[string]bool
}

var sentenceTemplates = []string{
	"We investigated the effect of %s on patients with %s.",
	"Treatment with %s was associated with improved outcomes in %s.",
	"A cohort study of %s exposure in %s patients showed mixed results.",
	"%s significantly reduced biomarkers linked to %s.",
	"No association between %s and %s progression was observed.",
}

var fillerSentences = []string{
	"The study enrolled participants across multiple centers.",
	"Statistical analysis used mixed-effects models.",
	"Further randomized trials are warranted.",
	"Baseline characteristics were balanced between arms.",
}

// GenerateCorpus writes n abstracts mentioning entities from the dataset.
func GenerateCorpus(d *Dataset, n int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{
		DrugDict: make(map[string]bool, len(d.DrugIDs)),
		DisDict:  make(map[string]bool, len(d.DisIDs)),
	}
	for _, id := range d.DrugIDs {
		c.DrugDict[id] = true
	}
	for _, id := range d.DisIDs {
		c.DisDict[id] = true
	}
	for p := 0; p < n; p++ {
		nPairs := 1 + rng.Intn(3)
		var sb strings.Builder
		var drugs, diseases []string
		seenDrug := make(map[string]bool)
		seenDis := make(map[string]bool)
		for s := 0; s < nPairs; s++ {
			drug := d.DrugIDs[rng.Intn(len(d.DrugIDs))]
			dis := d.DisIDs[rng.Intn(len(d.DisIDs))]
			tmpl := sentenceTemplates[rng.Intn(len(sentenceTemplates))]
			sb.WriteString(fmt.Sprintf(tmpl, drug, dis))
			sb.WriteByte(' ')
			if !seenDrug[drug] {
				seenDrug[drug] = true
				drugs = append(drugs, drug)
			}
			if !seenDis[dis] {
				seenDis[dis] = true
				diseases = append(diseases, dis)
			}
		}
		sb.WriteString(fillerSentences[rng.Intn(len(fillerSentences))])
		sort.Strings(drugs)
		sort.Strings(diseases)
		c.Abstracts = append(c.Abstracts, Abstract{
			PMID:  fmt.Sprintf("PMID%07d", p+1),
			Title: fmt.Sprintf("Study %d on %s", p+1, drugs[0]),
			Text:  sb.String(),
			Drugs: drugs, Diseases: diseases,
		})
	}
	return c
}

// Fact is an extracted drug–disease co-occurrence with evidence count.
type Fact struct {
	Drug    string
	Disease string
	Papers  []string // PMIDs supporting the fact
}

// ExtractEntities runs dictionary NER over one text, returning the drug
// and disease mentions found (sorted, deduplicated).
func (c *Corpus) ExtractEntities(text string) (drugs, diseases []string) {
	seenDrug := make(map[string]bool)
	seenDis := make(map[string]bool)
	for _, tok := range strings.FieldsFunc(text, func(r rune) bool {
		return r == ' ' || r == '.' || r == ',' || r == ';'
	}) {
		if c.DrugDict[tok] && !seenDrug[tok] {
			seenDrug[tok] = true
			drugs = append(drugs, tok)
		}
		if c.DisDict[tok] && !seenDis[tok] {
			seenDis[tok] = true
			diseases = append(diseases, tok)
		}
	}
	sort.Strings(drugs)
	sort.Strings(diseases)
	return drugs, diseases
}

// MineFacts extracts drug–disease co-occurrence facts across the whole
// corpus, keeping pairs supported by at least minSupport papers.
func (c *Corpus) MineFacts(minSupport int) []Fact {
	type key struct{ drug, dis string }
	support := make(map[key][]string)
	for _, a := range c.Abstracts {
		drugs, diseases := c.ExtractEntities(a.Text)
		for _, d := range drugs {
			for _, s := range diseases {
				k := key{d, s}
				support[k] = append(support[k], a.PMID)
			}
		}
	}
	var out []Fact
	for k, pmids := range support {
		if len(pmids) >= minSupport {
			sort.Strings(pmids)
			out = append(out, Fact{Drug: k.drug, Disease: k.dis, Papers: pmids})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Papers) != len(out[j].Papers) {
			return len(out[i].Papers) > len(out[j].Papers)
		}
		if out[i].Drug != out[j].Drug {
			return out[i].Drug < out[j].Drug
		}
		return out[i].Disease < out[j].Disease
	})
	return out
}
