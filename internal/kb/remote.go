package kb

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/hccache"
	"healthcloud/internal/telemetry"
)

// FaultFetch is the fault point consulted per remote KB request (see
// internal/faultinject) — the WAN/provider outage knob.
const FaultFetch = "kb.remote.fetch"

// RemoteKB wraps a dataset behind a simulated WAN so the caching
// experiments (E1/E2) measure realistic remote-access costs. The paper:
// "We cache data from these knowledge bases locally. That way, data can
// be accessed and analyzed more quickly than if it needs to be fetched
// remotely" (§III).
type RemoteKB struct {
	data      *Dataset
	latency   time.Duration
	sleeper   func(time.Duration)
	faults    *faultinject.Registry
	fetchHist *telemetry.Histogram // nil disables
	fetchErrs *telemetry.Counter   // nil disables
	calls     atomic.Uint64
}

// RemoteOption configures a RemoteKB.
type RemoteOption func(*RemoteKB)

// WithSleeper replaces the real sleep (benches account instead of sleeping).
func WithSleeper(f func(time.Duration)) RemoteOption {
	return func(r *RemoteKB) { r.sleeper = f }
}

// WithFaults installs a fault-injection registry consulted at
// FaultFetch before each request (nil disables).
func WithFaults(reg *faultinject.Registry) RemoteOption {
	return func(r *RemoteKB) { r.faults = reg }
}

// WithTelemetry records per-fetch latency (including the simulated WAN
// hop) and error counts on the registry (nil disables).
func WithTelemetry(reg *telemetry.Registry) RemoteOption {
	return func(r *RemoteKB) {
		if reg == nil {
			r.fetchHist, r.fetchErrs = nil, nil
			return
		}
		r.fetchHist = reg.Histogram("kb_remote_fetch_seconds")
		r.fetchErrs = reg.Counter("kb_remote_fetch_errors_total")
	}
}

// NewRemoteKB serves a dataset with the given per-request latency.
func NewRemoteKB(data *Dataset, latency time.Duration, opts ...RemoteOption) *RemoteKB {
	r := &RemoteKB{data: data, latency: latency, sleeper: time.Sleep}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Calls returns the number of remote requests served.
func (r *RemoteKB) Calls() uint64 { return r.calls.Load() }

// DrugRecord is the JSON document the remote KB serves per drug.
type DrugRecord struct {
	ID           string   `json:"id"`
	Associations []string `json:"associations"` // disease IDs
	Similar      []string `json:"similar"`      // most chemically similar drugs
}

// Fetch serves a key of the form "drug:<id>" or "disease:<id>", paying
// the WAN latency. It satisfies hccache.Loader.
func (r *RemoteKB) Fetch(key string) ([]byte, uint64, error) {
	r.calls.Add(1)
	defer r.fetchHist.ObserveSince(r.fetchHist.Start())
	if err := r.faults.Check(FaultFetch); err != nil {
		r.fetchErrs.Inc()
		return nil, 0, fmt.Errorf("kb: %w", err)
	}
	r.sleeper(r.latency)
	switch {
	case strings.HasPrefix(key, "drug:"):
		id := strings.TrimPrefix(key, "drug:")
		idx := indexOf(r.data.DrugIDs, id)
		if idx < 0 {
			return nil, 0, fmt.Errorf("%w: %s", hccache.ErrNotFound, key)
		}
		rec := DrugRecord{ID: id}
		for j, v := range r.data.Assoc[idx] {
			if v > 0 {
				rec.Associations = append(rec.Associations, r.data.DisIDs[j])
			}
		}
		rec.Similar = r.topSimilarDrugs(idx, 5)
		out, err := json.Marshal(rec)
		return out, 1, err
	case strings.HasPrefix(key, "disease:"):
		id := strings.TrimPrefix(key, "disease:")
		j := indexOf(r.data.DisIDs, id)
		if j < 0 {
			return nil, 0, fmt.Errorf("%w: %s", hccache.ErrNotFound, key)
		}
		var drugs []string
		for i := range r.data.Assoc {
			if r.data.Assoc[i][j] > 0 {
				drugs = append(drugs, r.data.DrugIDs[i])
			}
		}
		out, err := json.Marshal(map[string]any{"id": id, "drugs": drugs})
		return out, 1, err
	default:
		return nil, 0, fmt.Errorf("%w: %s", hccache.ErrNotFound, key)
	}
}

// fetchAsLoader adapts the method to the hccache.Loader func type.
func (r *RemoteKB) fetchAsLoader() hccache.Loader {
	return func(key string) ([]byte, uint64, error) { return r.Fetch(key) }
}

// Loader returns the remote KB as a cache origin.
func (r *RemoteKB) Loader() hccache.Loader { return r.fetchAsLoader() }

func (r *RemoteKB) topSimilarDrugs(idx, k int) []string {
	sim := r.data.DrugSim[DrugChemical][idx]
	type pair struct {
		j int
		v float64
	}
	best := make([]pair, 0, k)
	for j, v := range sim {
		if j == idx {
			continue
		}
		if len(best) < k {
			best = append(best, pair{j, v})
			continue
		}
		// Replace the current minimum if better.
		minAt, minV := 0, best[0].v
		for b := 1; b < len(best); b++ {
			if best[b].v < minV {
				minAt, minV = b, best[b].v
			}
		}
		if v > minV {
			best[minAt] = pair{j, v}
		}
	}
	out := make([]string, 0, len(best))
	for _, p := range best {
		out = append(out, r.data.DrugIDs[p.j])
	}
	return out
}

func indexOf(ids []string, id string) int {
	for i, s := range ids {
		if s == id {
			return i
		}
	}
	return -1
}
