package kb

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"healthcloud/internal/hccache"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Drugs, cfg.Diseases = 60, 40
	return cfg
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Drugs: 0, Diseases: 10, LatentDim: 4, Density: 0.1},
		{Drugs: 10, Diseases: 0, LatentDim: 4, Density: 0.1},
		{Drugs: 10, Diseases: 10, LatentDim: 0, Density: 0.1},
		{Drugs: 10, Diseases: 10, LatentDim: 4, Density: 0},
		{Drugs: 10, Diseases: 10, LatentDim: 4, Density: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DrugIDs) != 60 || len(d.DisIDs) != 40 {
		t.Fatalf("ids = %d, %d", len(d.DrugIDs), len(d.DisIDs))
	}
	if len(d.Assoc) != 60 || len(d.Assoc[0]) != 40 {
		t.Fatalf("assoc shape wrong")
	}
	for _, src := range DrugSources {
		m := d.DrugSim[src]
		if len(m) != 60 || len(m[0]) != 60 {
			t.Errorf("drug sim %s shape wrong", src)
		}
	}
	for _, src := range DiseaseSources {
		m := d.DisSim[src]
		if len(m) != 40 || len(m[0]) != 40 {
			t.Errorf("disease sim %s shape wrong", src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallConfig())
	b, _ := Generate(smallConfig())
	for i := range a.Assoc {
		for j := range a.Assoc[i] {
			if a.Assoc[i][j] != b.Assoc[i][j] {
				t.Fatal("same seed produced different associations")
			}
		}
	}
	cfg := smallConfig()
	cfg.Seed = 7
	c, _ := Generate(cfg)
	same := true
	for i := range a.Assoc {
		for j := range a.Assoc[i] {
			if a.Assoc[i][j] != c.Assoc[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical associations")
	}
}

func TestDensityRespected(t *testing.T) {
	d, _ := Generate(smallConfig())
	total, ones := 0, 0
	for i := range d.Assoc {
		for range d.Assoc[i] {
			total++
		}
		for _, v := range d.Assoc[i] {
			if v > 0 {
				ones++
			}
		}
	}
	got := float64(ones) / float64(total)
	if math.Abs(got-d.Cfg.Density) > 0.01 {
		t.Errorf("density = %f, want ~%f", got, d.Cfg.Density)
	}
}

func TestSimilarityMatrixProperties(t *testing.T) {
	d, _ := Generate(smallConfig())
	for _, src := range DrugSources {
		m := d.DrugSim[src]
		for i := range m {
			if m[i][i] != 1 {
				t.Fatalf("%s: diagonal not 1 at %d", src, i)
			}
			for j := range m[i] {
				if m[i][j] < 0 || m[i][j] > 1.0000001 {
					t.Fatalf("%s: sim[%d][%d] = %f out of range", src, i, j, m[i][j])
				}
				if math.Abs(m[i][j]-m[j][i]) > 1e-9 {
					t.Fatalf("%s: asymmetric at %d,%d", src, i, j)
				}
			}
		}
	}
}

// TestPlantedSignal checks the core property the repositioning
// experiments rely on: drugs associated with the same disease are more
// similar (in every source) than random drug pairs.
func TestPlantedSignal(t *testing.T) {
	d, _ := Generate(DefaultConfig())
	for _, src := range DrugSources {
		sim := d.DrugSim[src]
		var coSum, coN, rndSum, rndN float64
		for i := 0; i < len(d.DrugIDs); i++ {
			for j := i + 1; j < len(d.DrugIDs); j++ {
				shared := false
				for s := 0; s < len(d.DisIDs); s++ {
					if d.Assoc[i][s] > 0 && d.Assoc[j][s] > 0 {
						shared = true
						break
					}
				}
				if shared {
					coSum += sim[i][j]
					coN++
				} else {
					rndSum += sim[i][j]
					rndN++
				}
			}
		}
		coMean, rndMean := coSum/coN, rndSum/rndN
		if coMean <= rndMean {
			t.Errorf("%s: co-associated drugs not more similar (%.3f vs %.3f)", src, coMean, rndMean)
		}
	}
}

func TestHoldOut(t *testing.T) {
	d, _ := Generate(smallConfig())
	train, held := d.HoldOut(0.2, 1)
	// Held-out entries are positive in truth, zero in train.
	for _, p := range held {
		if d.Assoc[p[0]][p[1]] != 1 {
			t.Errorf("held-out %v not positive in ground truth", p)
		}
		if train[p[0]][p[1]] != 0 {
			t.Errorf("held-out %v still positive in train", p)
		}
	}
	// Non-held-out positives survive.
	heldSet := make(map[[2]int]bool)
	for _, p := range held {
		heldSet[p] = true
	}
	for i := range d.Assoc {
		for j := range d.Assoc[i] {
			if d.Assoc[i][j] == 1 && !heldSet[[2]int{i, j}] && train[i][j] != 1 {
				t.Fatalf("training positive (%d,%d) lost", i, j)
			}
		}
	}
	// Ground truth not mutated.
	ones := 0
	for i := range d.Assoc {
		for _, v := range d.Assoc[i] {
			if v > 0 {
				ones++
			}
		}
	}
	if ones == 0 {
		t.Fatal("ground truth mutated by HoldOut")
	}
}

func TestRemoteKBFetch(t *testing.T) {
	d, _ := Generate(smallConfig())
	var slept time.Duration
	r := NewRemoteKB(d, 30*time.Millisecond, WithSleeper(func(x time.Duration) { slept += x }))
	data, ver, err := r.Fetch("drug:drug-000")
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Errorf("version = %d", ver)
	}
	var rec DrugRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != "drug-000" || len(rec.Similar) != 5 {
		t.Errorf("record = %+v", rec)
	}
	if slept != 30*time.Millisecond {
		t.Errorf("latency not paid: %v", slept)
	}
	if _, _, err := r.Fetch("disease:disease-001"); err != nil {
		t.Errorf("disease fetch: %v", err)
	}
	if _, _, err := r.Fetch("drug:nope"); !errors.Is(err, hccache.ErrNotFound) {
		t.Errorf("unknown drug: %v", err)
	}
	if _, _, err := r.Fetch("gene:BRCA1"); !errors.Is(err, hccache.ErrNotFound) {
		t.Errorf("unknown kind: %v", err)
	}
	if r.Calls() != 4 {
		t.Errorf("calls = %d", r.Calls())
	}
}

func TestRemoteKBBehindCache(t *testing.T) {
	d, _ := Generate(smallConfig())
	r := NewRemoteKB(d, 0, WithSleeper(func(time.Duration) {}))
	tier, err := hccache.New(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := hccache.NewTiered(r.Loader(), tier)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tc.Get("drug:drug-001"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Calls() != 1 {
		t.Errorf("remote calls = %d, want 1 (cache absorbs the rest)", r.Calls())
	}
}

func TestCorpusGenerationAndExtraction(t *testing.T) {
	d, _ := Generate(smallConfig())
	c := GenerateCorpus(d, 50, 3)
	if len(c.Abstracts) != 50 {
		t.Fatalf("abstracts = %d", len(c.Abstracts))
	}
	// Extraction recovers exactly the planted mentions.
	for _, a := range c.Abstracts {
		drugs, diseases := c.ExtractEntities(a.Text)
		if strings.Join(drugs, ",") != strings.Join(a.Drugs, ",") {
			t.Errorf("%s: drugs = %v, want %v", a.PMID, drugs, a.Drugs)
		}
		if strings.Join(diseases, ",") != strings.Join(a.Diseases, ",") {
			t.Errorf("%s: diseases = %v, want %v", a.PMID, diseases, a.Diseases)
		}
	}
}

func TestMineFacts(t *testing.T) {
	d, _ := Generate(smallConfig())
	c := GenerateCorpus(d, 200, 3)
	facts := MineFactsHelper(c, 1)
	if len(facts) == 0 {
		t.Fatal("no facts mined")
	}
	// Every fact's papers really mention both entities.
	byPMID := make(map[string]Abstract)
	for _, a := range c.Abstracts {
		byPMID[a.PMID] = a
	}
	for _, f := range facts[:min(len(facts), 20)] {
		for _, pmid := range f.Papers {
			a := byPMID[pmid]
			if !strings.Contains(a.Text, f.Drug) || !strings.Contains(a.Text, f.Disease) {
				t.Errorf("fact %v cites %s which lacks the entities", f, pmid)
			}
		}
	}
	// Sorted by support descending.
	for i := 1; i < len(facts); i++ {
		if len(facts[i].Papers) > len(facts[i-1].Papers) {
			t.Fatal("facts not sorted by support")
		}
	}
	// minSupport filters.
	strict := MineFactsHelper(c, 3)
	if len(strict) > len(facts) {
		t.Error("higher support threshold returned more facts")
	}
}

// MineFactsHelper exists so the test reads naturally.
func MineFactsHelper(c *Corpus, minSupport int) []Fact { return c.MineFacts(minSupport) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
