package kb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"healthcloud/internal/hccache"
	"healthcloud/internal/resilience"
)

// flakyOrigin is a scriptable loader: fails while down, serves versioned
// values otherwise.
type flakyOrigin struct {
	mu      sync.Mutex
	down    bool
	version uint64
	calls   int
}

func (o *flakyOrigin) load(key string) ([]byte, uint64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.calls++
	if o.down {
		return nil, 0, errors.New("origin unreachable")
	}
	if key == "missing" {
		return nil, 0, hccache.ErrNotFound
	}
	return []byte("value-of-" + key), o.version, nil
}

func newTestResilient(origin *flakyOrigin, clk func() time.Time) *ResilientClient {
	return NewResilientClient(origin.load,
		resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: 3, OpenFor: time.Second, Now: clk,
		}),
		resilience.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond})
}

func TestResilientServesAndBanksStale(t *testing.T) {
	origin := &flakyOrigin{version: 7}
	c := newTestResilient(origin, time.Now)
	v, ver, err := c.Loader()("drug:a")
	if err != nil || string(v) != "value-of-drug:a" || ver != 7 {
		t.Fatalf("healthy load = %q %d %v", v, ver, err)
	}
	// Outage: the banked copy is served, flagged as degraded.
	origin.mu.Lock()
	origin.down = true
	origin.mu.Unlock()
	v, ver, err = c.Loader()("drug:a")
	if err != nil || string(v) != "value-of-drug:a" || ver != 7 {
		t.Fatalf("stale load = %q %d %v", v, ver, err)
	}
	if c.DegradedServes() != 1 {
		t.Errorf("DegradedServes = %d, want 1", c.DegradedServes())
	}
}

func TestResilientBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clk := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	origin := &flakyOrigin{down: true}
	c := newTestResilient(origin, clk)
	// Cold cache + outage: every load fails; three recorded failures
	// trip the breaker.
	for i := 0; i < 3; i++ {
		if _, _, err := c.Loader()("drug:x"); !errors.Is(err, ErrDegraded) {
			t.Fatalf("load %d: %v", i, err)
		}
	}
	if got := c.Breaker().State(); got != resilience.Open {
		t.Fatalf("breaker state = %v, want open", got)
	}
	// While open the origin is not called at all (fail fast).
	origin.mu.Lock()
	before := origin.calls
	origin.mu.Unlock()
	if _, _, err := c.Loader()("drug:x"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("open-circuit load: %v", err)
	}
	origin.mu.Lock()
	after := origin.calls
	origin.down = false
	origin.mu.Unlock()
	if after != before {
		t.Errorf("origin called %d times while circuit open", after-before)
	}
	// After the open window a probe succeeds and the circuit closes.
	advance(2 * time.Second)
	if _, _, err := c.Loader()("drug:x"); err != nil {
		t.Fatalf("probe load: %v", err)
	}
	if got := c.Breaker().State(); got != resilience.Closed {
		t.Errorf("breaker state after recovery = %v, want closed", got)
	}
}

func TestResilientNotFoundIsHealthy(t *testing.T) {
	origin := &flakyOrigin{}
	c := newTestResilient(origin, time.Now)
	for i := 0; i < 10; i++ {
		if _, _, err := c.Loader()("missing"); !errors.Is(err, hccache.ErrNotFound) {
			t.Fatalf("missing key: %v", err)
		}
	}
	if got := c.Breaker().State(); got != resilience.Closed {
		t.Errorf("404s tripped the breaker: state = %v", got)
	}
	if c.Breaker().Opens() != 0 {
		t.Errorf("opens = %d, want 0", c.Breaker().Opens())
	}
}
