package services

import (
	"errors"
	"testing"
	"time"
)

// newTestRegistry sets up three NLU providers with distinct profiles:
// fast-but-sloppy, slow-but-accurate, and flaky.
func newTestRegistry() *Registry {
	r := NewRegistry()
	r.Register(NewProvider("fastco", CapNLU, 10*time.Millisecond, 0, 1.0, 0.70, 1))
	r.Register(NewProvider("slowai", CapNLU, 80*time.Millisecond, 0, 1.0, 0.97, 2))
	r.Register(NewProvider("flaky", CapNLU, 15*time.Millisecond, 0, 0.50, 0.90, 3))
	return r
}

// warm drives enough traffic that observed stats approximate the truth.
func warm(r *Registry, n int) {
	for _, name := range []string{"fastco", "slowai", "flaky"} {
		for i := 0; i < n; i++ {
			r.Call(name, CapNLU)
		}
	}
	r.RunAccuracyTest(CapNLU, n)
}

func TestProvidersListing(t *testing.T) {
	r := newTestRegistry()
	got := r.Providers(CapNLU)
	if len(got) != 3 || got[0] != "fastco" || got[1] != "flaky" || got[2] != "slowai" {
		t.Errorf("Providers = %v", got)
	}
	if got := r.Providers(CapVision); len(got) != 0 {
		t.Errorf("vision providers = %v", got)
	}
}

func TestCallRecordsStats(t *testing.T) {
	r := newTestRegistry()
	for i := 0; i < 50; i++ {
		r.Call("fastco", CapNLU)
	}
	st, err := r.StatsFor("fastco")
	if err != nil {
		t.Fatal(err)
	}
	if st.Calls != 50 || st.Failures != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanLatency() != 10*time.Millisecond {
		t.Errorf("mean latency = %v", st.MeanLatency())
	}
	if st.Availability() != 1.0 {
		t.Errorf("availability = %f", st.Availability())
	}
}

func TestFlakyProviderObserved(t *testing.T) {
	r := newTestRegistry()
	for i := 0; i < 200; i++ {
		r.Call("flaky", CapNLU)
	}
	st, _ := r.StatsFor("flaky")
	if av := st.Availability(); av < 0.35 || av > 0.65 {
		t.Errorf("observed availability = %f, want ~0.5", av)
	}
	if st.Failures == 0 {
		t.Error("flaky provider never failed")
	}
}

func TestCallUnknownProvider(t *testing.T) {
	r := newTestRegistry()
	if _, _, err := r.Call("ghost", CapNLU); !errors.Is(err, ErrNoProvider) {
		t.Errorf("got %v", err)
	}
	if _, _, err := r.Call("fastco", CapVision); !errors.Is(err, ErrNoProvider) {
		t.Errorf("wrong capability: %v", err)
	}
}

func TestAccuracyTest(t *testing.T) {
	r := newTestRegistry()
	r.RunAccuracyTest(CapNLU, 300)
	fast, _ := r.StatsFor("fastco")
	slow, _ := r.StatsFor("slowai")
	if fast.MeasuredAccuracy() >= slow.MeasuredAccuracy() {
		t.Errorf("accuracy ordering wrong: fastco %.2f vs slowai %.2f",
			fast.MeasuredAccuracy(), slow.MeasuredAccuracy())
	}
	if slow.MeasuredAccuracy() < 0.9 {
		t.Errorf("slowai measured accuracy %.2f, want >= 0.9", slow.MeasuredAccuracy())
	}
}

func TestFeedback(t *testing.T) {
	r := newTestRegistry()
	if err := r.RecordFeedback("fastco", 4); err != nil {
		t.Fatal(err)
	}
	if err := r.RecordFeedback("fastco", 2); err != nil {
		t.Fatal(err)
	}
	st, _ := r.StatsFor("fastco")
	if st.UserRating() != 3.0 {
		t.Errorf("rating = %f", st.UserRating())
	}
	if err := r.RecordFeedback("fastco", 0); !errors.Is(err, ErrBadRating) {
		t.Errorf("rating 0: %v", err)
	}
	if err := r.RecordFeedback("fastco", 6); !errors.Is(err, ErrBadRating) {
		t.Errorf("rating 6: %v", err)
	}
	if err := r.RecordFeedback("ghost", 3); !errors.Is(err, ErrNoProvider) {
		t.Errorf("unknown provider: %v", err)
	}
}

func TestBestByCriteria(t *testing.T) {
	r := newTestRegistry()
	warm(r, 200)
	// Latency-dominant criteria pick the fast provider.
	fast, err := r.Best(CapNLU, Criteria{WLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fast != "fastco" {
		t.Errorf("latency-best = %s, want fastco", fast)
	}
	// Accuracy-dominant criteria pick the accurate provider.
	acc, err := r.Best(CapNLU, Criteria{WAccuracy: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc != "slowai" {
		t.Errorf("accuracy-best = %s, want slowai", acc)
	}
	// Availability-dominant criteria avoid the flaky provider.
	av, err := r.Best(CapNLU, Criteria{WAvailability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if av == "flaky" {
		t.Error("availability-best picked the flaky provider")
	}
	// Default criteria pick something.
	if _, err := r.Best(CapNLU, Criteria{}); err != nil {
		t.Errorf("default criteria: %v", err)
	}
}

func TestBestWithNoData(t *testing.T) {
	r := newTestRegistry()
	if _, err := r.Best(CapNLU, Criteria{}); !errors.Is(err, ErrNoProvider) {
		t.Errorf("no traffic yet: %v", err)
	}
	if _, err := r.Best(CapVision, Criteria{}); !errors.Is(err, ErrNoProvider) {
		t.Errorf("empty capability: %v", err)
	}
}

func TestFeedbackDoesNotAffectBest(t *testing.T) {
	r := newTestRegistry()
	warm(r, 200)
	before, err := r.Best(CapNLU, Criteria{WAccuracy: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A review-bombing campaign against the winner...
	for i := 0; i < 100; i++ {
		r.RecordFeedback(before, 1)
	}
	after, err := r.Best(CapNLU, Criteria{WAccuracy: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Error("user feedback changed Best — the paper says to treat it with caution, not to rank by it")
	}
}

func TestStatsForUnknown(t *testing.T) {
	r := NewRegistry()
	if _, err := r.StatsFor("ghost"); !errors.Is(err, ErrNoProvider) {
		t.Errorf("got %v", err)
	}
}
