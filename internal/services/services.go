// Package services implements §III's external-service brokerage: "there
// are many external Web services which can be used to provide additional
// analytics ... The AI services from different providers offer similar
// functionality but are not identical. We provide users with a choice of
// services for similar functionality. In addition, we maintain
// information on the different services to allow users to pick the best
// ones. This information includes response times and availability of the
// services. For some of the services (e.g. text extraction), we have
// standard tests which we run to test the accuracy of the services ...
// Users can also provide feedback on services."
//
// Providers are simulated: each has a latency distribution, an
// availability probability, and a task accuracy, so the selection logic
// is exercised end to end without real cloud credentials.
package services

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/telemetry"
)

// FaultInvoke is the fault point consulted per provider call (see
// internal/faultinject): injected errors count as provider downtime.
const FaultInvoke = "services.invoke"

// Capability names a functional family ("nlu", "speech", "vision",
// "text-extraction") within which providers are interchangeable.
type Capability string

// Common capabilities from §III.
const (
	CapNLU            Capability = "nlu"
	CapSpeech         Capability = "speech"
	CapVision         Capability = "vision"
	CapTextExtraction Capability = "text-extraction"
)

// Errors returned by this package.
var (
	ErrNoProvider  = errors.New("services: no provider for capability")
	ErrUnavailable = errors.New("services: provider unavailable")
	ErrBadRating   = errors.New("services: rating must be 1..5")
)

// Provider is one external AI service endpoint.
type Provider struct {
	Name       string
	Capability Capability

	// Simulation parameters.
	baseLatency  time.Duration
	jitter       time.Duration
	availability float64 // probability a call succeeds
	accuracy     float64 // ground-truth task accuracy in [0,1]

	rng *rand.Rand
	mu  sync.Mutex
}

// NewProvider creates a simulated provider.
func NewProvider(name string, capability Capability, baseLatency, jitter time.Duration, availability, accuracy float64, seed int64) *Provider {
	return &Provider{
		Name: name, Capability: capability,
		baseLatency: baseLatency, jitter: jitter,
		availability: availability, accuracy: accuracy,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Invoke simulates one call: it may fail (unavailability) and otherwise
// returns the call latency and whether the answer was correct.
func (p *Provider) Invoke() (latency time.Duration, correct bool, err error) {
	p.mu.Lock()
	up := p.rng.Float64() < p.availability
	lat := p.baseLatency
	if p.jitter > 0 {
		lat += time.Duration(p.rng.Int63n(int64(p.jitter)))
	}
	correct = p.rng.Float64() < p.accuracy
	p.mu.Unlock()
	if !up {
		return 0, false, fmt.Errorf("%w: %s", ErrUnavailable, p.Name)
	}
	return lat, correct, nil
}

// Stats aggregates observed behaviour of one provider.
type Stats struct {
	Calls        uint64
	Failures     uint64
	TotalLatency time.Duration
	AccuracyHits uint64
	AccuracyRuns uint64
	RatingSum    uint64
	RatingCount  uint64
}

// MeanLatency returns the average successful-call latency.
func (s Stats) MeanLatency() time.Duration {
	ok := s.Calls - s.Failures
	if ok == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(ok)
}

// Availability returns the observed success fraction.
func (s Stats) Availability() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Calls-s.Failures) / float64(s.Calls)
}

// MeasuredAccuracy returns the standard-test accuracy.
func (s Stats) MeasuredAccuracy() float64 {
	if s.AccuracyRuns == 0 {
		return 0
	}
	return float64(s.AccuracyHits) / float64(s.AccuracyRuns)
}

// UserRating returns the mean user feedback (1..5), or 0 if none. The
// paper warns this "should be used with caution as it may not be
// accurate" — it is reported but never used by Best.
func (s Stats) UserRating() float64 {
	if s.RatingCount == 0 {
		return 0
	}
	return float64(s.RatingSum) / float64(s.RatingCount)
}

// Registry tracks providers and their observed stats.
type Registry struct {
	faults *faultinject.Registry
	met    *brokerMetrics

	mu        sync.RWMutex
	providers map[Capability][]*Provider
	stats     map[string]*Stats
}

// brokerMetrics instruments provider calls; nil disables it.
type brokerMetrics struct {
	calls, failures *telemetry.Counter
	latency         *telemetry.Histogram // provider-modeled latency
}

// SetTelemetry attaches call counters and the modeled provider-latency
// histogram to the registry (nil disables). Call before sharing.
func (r *Registry) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		r.met = nil
		return
	}
	r.met = &brokerMetrics{
		calls:    reg.Counter("services_calls_total"),
		failures: reg.Counter("services_call_failures_total"),
		latency:  reg.Histogram("services_call_modeled_seconds"),
	}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		providers: make(map[Capability][]*Provider),
		stats:     make(map[string]*Stats),
	}
}

// SetFaults installs a fault-injection registry consulted at
// FaultInvoke on every Call (nil disables). Injected failures are
// recorded in the provider's observed stats exactly like real
// unavailability, so chaos runs drive Best away from a faulted
// provider. Call before the registry is shared across goroutines.
func (r *Registry) SetFaults(reg *faultinject.Registry) { r.faults = reg }

// Register adds a provider.
func (r *Registry) Register(p *Provider) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers[p.Capability] = append(r.providers[p.Capability], p)
	r.stats[p.Name] = &Stats{}
}

// Providers lists provider names for a capability, sorted.
func (r *Registry) Providers(c Capability) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, p := range r.providers[c] {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

// Call invokes a specific provider, recording latency/availability.
func (r *Registry) Call(name string, c Capability) (time.Duration, bool, error) {
	r.mu.RLock()
	var target *Provider
	for _, p := range r.providers[c] {
		if p.Name == name {
			target = p
			break
		}
	}
	r.mu.RUnlock()
	if target == nil {
		return 0, false, fmt.Errorf("%w: %s/%s", ErrNoProvider, c, name)
	}
	var lat time.Duration
	var correct bool
	err := r.faults.Check(FaultInvoke)
	if err != nil {
		err = fmt.Errorf("%w: %s: %w", ErrUnavailable, name, err)
	} else {
		lat, correct, err = target.Invoke()
	}
	r.mu.Lock()
	st := r.stats[name]
	st.Calls++
	if err != nil {
		st.Failures++
	} else {
		st.TotalLatency += lat
	}
	r.mu.Unlock()
	if m := r.met; m != nil {
		m.calls.Inc()
		if err != nil {
			m.failures.Inc()
		} else {
			m.latency.Observe(lat)
		}
	}
	return lat, correct, err
}

// RunAccuracyTest executes the standard accuracy test (n probes) against
// every provider of a capability, updating their measured accuracy.
func (r *Registry) RunAccuracyTest(c Capability, n int) {
	r.mu.RLock()
	providers := append([]*Provider(nil), r.providers[c]...)
	r.mu.RUnlock()
	for _, p := range providers {
		var hits, runs uint64
		for i := 0; i < n; i++ {
			_, correct, err := p.Invoke()
			if err != nil {
				continue
			}
			runs++
			if correct {
				hits++
			}
		}
		r.mu.Lock()
		st := r.stats[p.Name]
		st.AccuracyHits += hits
		st.AccuracyRuns += runs
		r.mu.Unlock()
	}
}

// RecordFeedback stores a user rating (1..5) for a provider.
func (r *Registry) RecordFeedback(name string, rating int) error {
	if rating < 1 || rating > 5 {
		return ErrBadRating
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.stats[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoProvider, name)
	}
	st.RatingSum += uint64(rating)
	st.RatingCount++
	return nil
}

// StatsFor returns a snapshot of a provider's stats.
func (r *Registry) StatsFor(name string) (Stats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.stats[name]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %s", ErrNoProvider, name)
	}
	return *st, nil
}

// Criteria weights the selection dimensions of Best. Zero values fall
// back to a latency-leaning default.
type Criteria struct {
	WLatency      float64
	WAvailability float64
	WAccuracy     float64
}

func (c Criteria) withDefaults() Criteria {
	if c.WLatency == 0 && c.WAvailability == 0 && c.WAccuracy == 0 {
		return Criteria{WLatency: 0.4, WAvailability: 0.3, WAccuracy: 0.3}
	}
	return c
}

// Best picks the provider with the highest weighted score from observed
// stats. Providers with no successful calls are skipped. User feedback
// deliberately does not contribute (§III's caution).
func (r *Registry) Best(c Capability, crit Criteria) (string, error) {
	crit = crit.withDefaults()
	r.mu.RLock()
	defer r.mu.RUnlock()
	providers := r.providers[c]
	if len(providers) == 0 {
		return "", fmt.Errorf("%w: %s", ErrNoProvider, c)
	}
	// Normalize latency against the slowest observed mean.
	var maxLat time.Duration
	for _, p := range providers {
		if l := r.stats[p.Name].MeanLatency(); l > maxLat {
			maxLat = l
		}
	}
	bestName, bestScore := "", -1.0
	names := make([]string, 0, len(providers))
	for _, p := range providers {
		names = append(names, p.Name)
	}
	sort.Strings(names) // deterministic tie-break
	for _, name := range names {
		st := r.stats[name]
		if st.Calls == st.Failures {
			continue // never succeeded; nothing to score
		}
		latScore := 1.0
		if maxLat > 0 {
			latScore = 1 - float64(st.MeanLatency())/float64(maxLat)
		}
		score := crit.WLatency*latScore +
			crit.WAvailability*st.Availability() +
			crit.WAccuracy*st.MeasuredAccuracy()
		if score > bestScore {
			bestName, bestScore = name, score
		}
	}
	if bestName == "" {
		return "", fmt.Errorf("%w: %s (no provider has succeeded yet)", ErrNoProvider, c)
	}
	return bestName, nil
}
