package bus

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestBus(t *testing.T, opts ...Option) *Bus {
	t.Helper()
	b := New(opts...)
	t.Cleanup(b.Close)
	return b
}

func TestPublishReceiveAck(t *testing.T) {
	b := newTestBus(t)
	sub, err := b.Subscribe("ingest", "worker")
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Publish("ingest", []byte("bundle-1"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sub.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != id || string(m.Payload) != "bundle-1" || m.Attempt != 1 {
		t.Errorf("message = %+v", m)
	}
	if err := sub.Ack(m.ID); err != nil {
		t.Fatal(err)
	}
	if sub.InFlight() != 0 || sub.Depth() != 0 {
		t.Errorf("inflight=%d depth=%d after ack", sub.InFlight(), sub.Depth())
	}
}

func TestReceiveTimeout(t *testing.T) {
	b := newTestBus(t)
	sub, _ := b.Subscribe("t", "s")
	start := time.Now()
	if _, err := sub.Receive(50 * time.Millisecond); err == nil {
		t.Error("empty receive returned a message")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("receive returned before timeout")
	}
}

func TestFanOutAcrossSubscriptions(t *testing.T) {
	b := newTestBus(t)
	s1, _ := b.Subscribe("t", "sub1")
	s2, _ := b.Subscribe("t", "sub2")
	b.Publish("t", []byte("x"))
	for _, s := range []*Subscription{s1, s2} {
		m, err := s.Receive(time.Second)
		if err != nil {
			t.Fatalf("subscription missed fan-out: %v", err)
		}
		s.Ack(m.ID)
	}
}

func TestCompetingWorkersShareSubscription(t *testing.T) {
	b := newTestBus(t)
	sub, _ := b.Subscribe("t", "pool")
	const total = 40
	for i := 0; i < total; i++ {
		b.Publish("t", []byte(fmt.Sprintf("m-%d", i)))
	}
	var mu sync.Mutex
	got := make(map[string]int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, err := sub.Receive(100 * time.Millisecond)
				if err != nil {
					return
				}
				mu.Lock()
				got[string(m.Payload)]++
				mu.Unlock()
				sub.Ack(m.ID)
			}
		}()
	}
	wg.Wait()
	if len(got) != total {
		t.Fatalf("received %d distinct messages, want %d", len(got), total)
	}
	for payload, n := range got {
		if n != 1 {
			t.Errorf("%s delivered %d times before any nack/timeout", payload, n)
		}
	}
}

func TestNackRedelivers(t *testing.T) {
	b := newTestBus(t)
	sub, _ := b.Subscribe("t", "s")
	b.Publish("t", []byte("flaky"))
	m, err := sub.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Nack(m.ID); err != nil {
		t.Fatal(err)
	}
	m2, err := sub.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID != m.ID {
		t.Errorf("redelivered different message: %s vs %s", m2.ID, m.ID)
	}
	if m2.Attempt != 2 {
		t.Errorf("attempt = %d, want 2", m2.Attempt)
	}
	if sub.Redeliveries() != 1 {
		t.Errorf("redeliveries = %d, want 1", sub.Redeliveries())
	}
	sub.Ack(m2.ID)
}

func TestVisibilityTimeoutRedelivers(t *testing.T) {
	// Simulates a crashed worker: message received but never acked.
	b := newTestBus(t, WithVisibilityTimeout(40*time.Millisecond))
	sub, _ := b.Subscribe("t", "s")
	b.Publish("t", []byte("orphan"))
	m, err := sub.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Do not ack. The sweeper must return it.
	m2, err := sub.Receive(2 * time.Second)
	if err != nil {
		t.Fatalf("message never redelivered after visibility timeout: %v", err)
	}
	if m2.ID != m.ID || m2.Attempt != 2 {
		t.Errorf("redelivery = %+v", m2)
	}
	sub.Ack(m2.ID)
}

func TestAckNackUnknown(t *testing.T) {
	b := newTestBus(t)
	sub, _ := b.Subscribe("t", "s")
	if err := sub.Ack("ghost"); !errors.Is(err, ErrNotInFlight) {
		t.Errorf("Ack ghost: %v", err)
	}
	if err := sub.Nack("ghost"); !errors.Is(err, ErrNotInFlight) {
		t.Errorf("Nack ghost: %v", err)
	}
}

func TestDoubleAck(t *testing.T) {
	b := newTestBus(t)
	sub, _ := b.Subscribe("t", "s")
	b.Publish("t", []byte("x"))
	m, _ := sub.Receive(time.Second)
	if err := sub.Ack(m.ID); err != nil {
		t.Fatal(err)
	}
	if err := sub.Ack(m.ID); !errors.Is(err, ErrNotInFlight) {
		t.Errorf("double ack: %v", err)
	}
}

func TestDuplicateSubscription(t *testing.T) {
	b := newTestBus(t)
	if _, err := b.Subscribe("t", "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("t", "s"); err == nil {
		t.Error("duplicate subscription accepted")
	}
}

func TestSubscriberOnlySeesLaterMessages(t *testing.T) {
	b := newTestBus(t)
	b.Publish("t", []byte("early")) // no subscribers yet: dropped
	sub, _ := b.Subscribe("t", "late")
	b.Publish("t", []byte("on-time"))
	m, err := sub.Receive(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Payload) != "on-time" {
		t.Errorf("payload = %q", m.Payload)
	}
	sub.Ack(m.ID)
}

func TestClosedBusRejectsOps(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe("t", "s")
	b.Close()
	if _, err := b.Publish("t", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close: %v", err)
	}
	if _, err := b.Subscribe("t", "s2"); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after close: %v", err)
	}
	if _, err := sub.Receive(10 * time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Errorf("Receive after close: %v", err)
	}
	b.Close() // idempotent
}

func TestPayloadIsolation(t *testing.T) {
	b := newTestBus(t)
	sub, _ := b.Subscribe("t", "s")
	payload := []byte("mutable")
	b.Publish("t", payload)
	payload[0] = 'X' // caller mutates after publish
	m, _ := sub.Receive(time.Second)
	if string(m.Payload) != "mutable" {
		t.Errorf("payload not copied at publish: %q", m.Payload)
	}
	sub.Ack(m.ID)
}

func TestHighThroughputDrain(t *testing.T) {
	b := newTestBus(t)
	sub, _ := b.Subscribe("t", "s")
	const total = 2000
	go func() {
		for i := 0; i < total; i++ {
			b.Publish("t", []byte{byte(i)})
		}
	}()
	for i := 0; i < total; i++ {
		m, err := sub.Receive(2 * time.Second)
		if err != nil {
			t.Fatalf("drain stalled at %d: %v", i, err)
		}
		sub.Ack(m.ID)
	}
}

func TestPoisonMessageDeadLettersExactlyOnce(t *testing.T) {
	b := newTestBus(t, WithMaxAttempts(3), WithVisibilityTimeout(20*time.Millisecond))
	sub, _ := b.Subscribe("ingest", "workers")
	dlq, err := b.Subscribe(DLQTopic("ingest"), "dlq-reader")
	if err != nil {
		t.Fatalf("subscribing DLQ: %v", err)
	}
	id, _ := b.Publish("ingest", []byte("poison"))
	// Fail the message its full attempt budget.
	for attempt := 1; attempt <= 3; attempt++ {
		m, err := sub.Receive(time.Second)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if m.Attempt != attempt {
			t.Fatalf("attempt counter = %d, want %d", m.Attempt, attempt)
		}
		if err := sub.Nack(m.ID, "cannot parse"); err != nil {
			t.Fatalf("nack %d: %v", attempt, err)
		}
	}
	// The message lands on the DLQ exactly once, with identity and reason.
	dm, err := dlq.Receive(time.Second)
	if err != nil {
		t.Fatalf("DLQ receive: %v", err)
	}
	if dm.ID != id || string(dm.Payload) != "poison" {
		t.Fatalf("DLQ message %q/%q lost identity", dm.ID, dm.Payload)
	}
	if dm.Reason != "cannot parse" {
		t.Fatalf("DLQ reason = %q", dm.Reason)
	}
	if dm.Topic != "ingest.dlq" {
		t.Fatalf("DLQ topic = %q", dm.Topic)
	}
	dlq.Ack(dm.ID)
	if got := b.DeadLettered(); got != 1 {
		t.Fatalf("DeadLettered = %d, want 1", got)
	}
	// And it stops being redelivered on the original topic.
	if _, err := sub.Receive(100 * time.Millisecond); err == nil {
		t.Fatal("poison message redelivered after dead-lettering")
	}
	if _, err := dlq.Receive(100 * time.Millisecond); err == nil {
		t.Fatal("poison message dead-lettered more than once")
	}
}

func TestVisibilityTimeoutDeadLetters(t *testing.T) {
	b := newTestBus(t, WithMaxAttempts(2), WithVisibilityTimeout(15*time.Millisecond))
	sub, _ := b.Subscribe("t", "s")
	dlq, _ := b.Subscribe(DLQTopic("t"), "d")
	b.Publish("t", []byte("slow"))
	// Receive twice without acking: both deliveries time out; the second
	// exhausts the budget and the sweeper dead-letters the message.
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := sub.Receive(time.Second); err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
	}
	dm, err := dlq.Receive(time.Second)
	if err != nil {
		t.Fatalf("DLQ receive: %v", err)
	}
	if dm.Reason == "" {
		t.Fatal("visibility-timeout dead-letter carries no reason")
	}
	dlq.Ack(dm.ID)
	if _, err := sub.Receive(60 * time.Millisecond); err == nil {
		t.Fatal("message redelivered after dead-lettering")
	}
}

func TestDLQSubscriptionNeverCascades(t *testing.T) {
	b := newTestBus(t, WithMaxAttempts(1), WithVisibilityTimeout(10*time.Millisecond))
	sub, _ := b.Subscribe("t", "s")
	dlq, _ := b.Subscribe(DLQTopic("t"), "d")
	b.Publish("t", []byte("x"))
	m, _ := sub.Receive(time.Second)
	sub.Nack(m.ID)
	// Fail the DLQ delivery repeatedly: it must keep being redelivered on
	// the DLQ (no t.dlq.dlq), never lost.
	for i := 0; i < 4; i++ {
		dm, err := dlq.Receive(time.Second)
		if err != nil {
			t.Fatalf("DLQ redelivery %d: %v", i, err)
		}
		dlq.Nack(dm.ID)
	}
	if got := b.DeadLettered(); got != 1 {
		t.Fatalf("DeadLettered = %d, want 1 (no cascade)", got)
	}
}

func TestNoMaxAttemptsKeepsLegacyRedelivery(t *testing.T) {
	b := newTestBus(t)
	sub, _ := b.Subscribe("t", "s")
	b.Publish("t", []byte("x"))
	for i := 0; i < 5; i++ {
		m, err := sub.Receive(time.Second)
		if err != nil {
			t.Fatalf("redelivery %d: %v", i, err)
		}
		if i == 4 {
			sub.Ack(m.ID)
			break
		}
		sub.Nack(m.ID)
	}
	if b.DeadLettered() != 0 {
		t.Fatal("uncapped bus dead-lettered a message")
	}
}
