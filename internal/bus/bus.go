// Package bus is the platform's internal messaging system (§II-B): the
// ingestion flow leaves "a message ... in the platform's internal
// messaging system for the background ingestion process to ingest the
// data". It provides named topics with fan-out to subscriptions,
// at-least-once delivery with acknowledgements, redelivery of messages
// whose visibility timeout lapses (worker crash simulation), and —
// with WithMaxAttempts — dead-lettering: a message that keeps failing
// moves to the topic's DLQ (DLQTopic) exactly once instead of being
// redelivered forever, so one poison message cannot wedge a consumer.
package bus

import (
	"container/list"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"healthcloud/internal/hckrypto"
	"healthcloud/internal/telemetry"
)

// Message is one queued item.
type Message struct {
	ID      string
	Topic   string
	Payload []byte
	Attempt int // 1 on first delivery, incremented on redelivery
	// Reason is set on dead-letter deliveries only: why the message was
	// given up on (the last nack reason, or the visibility timeout).
	Reason string
	// Trace carries the publisher's span context across the hop. On a
	// bus with tracing enabled, Receive replaces it with the hop span's
	// context so consumer spans nest publish → hop → process.
	Trace telemetry.SpanContext

	publishedAt time.Time // set when the bus has telemetry; hop latency base
}

// DLQTopic returns the dead-letter topic paired with a topic. Messages
// that exhaust their delivery attempts are re-published there.
func DLQTopic(topic string) string { return topic + ".dlq" }

// Errors returned by this package.
var (
	ErrClosed      = errors.New("bus: closed")
	ErrNoSuchSub   = errors.New("bus: no such subscription")
	ErrNotInFlight = errors.New("bus: message not in flight")
)

// Bus routes published messages to every subscription on the topic.
type Bus struct {
	visibility  time.Duration
	maxAttempts int // 0 = redeliver forever (pre-DLQ behaviour)
	tracer      *telemetry.Tracer
	met         *busMetrics // nil disables metrics

	mu           sync.Mutex
	subs         map[string]map[string]*Subscription // topic -> name -> sub
	closed       bool
	deadLettered uint64
	wg           sync.WaitGroup
	stopCh       chan struct{}
}

// busMetrics holds the bus's metric handles (nil when telemetry off).
type busMetrics struct {
	published, delivered, acked, nacked, deadLettered *telemetry.Counter
	hop                                               *telemetry.Histogram
}

func newBusMetrics(reg *telemetry.Registry) *busMetrics {
	if reg == nil {
		return nil
	}
	return &busMetrics{
		published:    reg.Counter("bus_published_total"),
		delivered:    reg.Counter("bus_delivered_total"),
		acked:        reg.Counter("bus_acked_total"),
		nacked:       reg.Counter("bus_nacked_total"),
		deadLettered: reg.Counter("bus_dead_lettered_total"),
		hop:          reg.Histogram("bus_hop_seconds"),
	}
}

// Option configures the Bus.
type Option func(*Bus)

// WithVisibilityTimeout sets how long a delivered-but-unacked message
// stays invisible before redelivery (default 500ms).
func WithVisibilityTimeout(d time.Duration) Option {
	return func(b *Bus) { b.visibility = d }
}

// WithMaxAttempts caps deliveries per message: after the n-th delivery
// fails (nack or visibility timeout) the message is published on the
// topic's dead-letter topic (DLQTopic) instead of being redelivered
// forever. 0 (the default) keeps unlimited redelivery.
func WithMaxAttempts(n int) Option {
	return func(b *Bus) { b.maxAttempts = n }
}

// WithTelemetry instruments the bus: publish/deliver/ack/nack/DLQ
// counters and a publish→receive hop histogram on reg, and — when
// tracer is non-nil — a "bus.hop" span per delivery of a traced
// message, re-parenting the message's context under the hop so
// consumer spans link back to the publisher. Nil arguments disable the
// respective half.
func WithTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) Option {
	return func(b *Bus) {
		b.met = newBusMetrics(reg)
		b.tracer = tracer
	}
}

// New creates a bus. Call Close to stop its redelivery sweeper.
func New(opts ...Option) *Bus {
	b := &Bus{
		visibility: 500 * time.Millisecond,
		subs:       make(map[string]map[string]*Subscription),
		stopCh:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(b)
	}
	b.wg.Add(1)
	go b.sweep()
	return b
}

// Close stops redelivery and closes every subscription channel.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.stopCh)
	for _, topic := range b.subs {
		for _, s := range topic {
			s.close()
		}
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// Publish enqueues a payload on a topic, fanning out to every current
// subscription. It returns the message ID.
func (b *Bus) Publish(topic string, payload []byte) (string, error) {
	return b.PublishCtx(topic, payload, telemetry.SpanContext{})
}

// PublishCtx is Publish with an explicit trace context: every delivery
// of the message on a tracing bus produces a "bus.hop" span under it.
func (b *Bus) PublishCtx(topic string, payload []byte, trace telemetry.SpanContext) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return "", ErrClosed
	}
	b.met.countPublished()
	id := hckrypto.NewUUID()
	m := Message{ID: id, Topic: topic, Payload: append([]byte(nil), payload...), Trace: trace}
	if b.met != nil || b.tracer != nil {
		m.publishedAt = time.Now()
	}
	for _, s := range b.subs[topic] {
		s.enqueue(m)
	}
	return id, nil
}

// countPublished increments the published counter (nil-safe).
func (m *busMetrics) countPublished() {
	if m != nil {
		m.published.Inc()
	}
}

// Subscribe attaches a named subscription to a topic. Each subscription
// receives every message published after it subscribes (fan-out across
// subscriptions; workers sharing one subscription compete for messages).
func (b *Bus) Subscribe(topic, name string) (*Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if b.subs[topic] == nil {
		b.subs[topic] = make(map[string]*Subscription)
	}
	if _, ok := b.subs[topic][name]; ok {
		return nil, fmt.Errorf("bus: subscription %q already exists on %q", name, topic)
	}
	s := &Subscription{
		topic: topic, name: name, bus: b,
		queue:    list.New(),
		inflight: make(map[string]*flightRecord),
		ready:    make(chan struct{}, 1),
	}
	b.subs[topic][name] = s
	return s, nil
}

// sweep periodically returns timed-out in-flight messages to their queues.
func (b *Bus) sweep() {
	defer b.wg.Done()
	interval := b.visibility / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stopCh:
			return
		case now := <-ticker.C:
			b.mu.Lock()
			for _, topic := range b.subs {
				for _, s := range topic {
					for _, m := range s.redeliverExpired(now, b.visibility, b.maxAttempts) {
						b.deadLetterLocked(m)
					}
				}
			}
			b.mu.Unlock()
		}
	}
}

// observeDelivery records delivery metrics and, for traced messages,
// emits the "bus.hop" span covering publish→receive and re-parents the
// delivered message's context under it (so the consumer's processing
// span links publisher → hop → consumer). The inflight record keeps
// the original context: a redelivered message hops again from the
// publisher, producing sibling hop spans per attempt.
func (b *Bus) observeDelivery(m *Message) {
	if b.met == nil && b.tracer == nil {
		return
	}
	now := time.Now()
	start := m.publishedAt
	if start.IsZero() {
		start = now
	}
	if b.met != nil {
		b.met.delivered.Inc()
		b.met.hop.ObserveTrace(now.Sub(start), m.Trace.TraceID)
	}
	if b.tracer != nil && m.Trace.Valid() {
		sp := b.tracer.StartSpanAt("bus.hop", m.Trace, start)
		sp.SetAttr("topic", m.Topic)
		if m.Attempt > 1 { // only redeliveries are worth labelling
			sp.SetAttr("attempt", strconv.Itoa(m.Attempt))
		}
		// Capture the context before EndAt: ended spans may be pooled
		// once their trace finishes.
		m.Trace = sp.Context()
		sp.EndAt(now)
	}
}

// deadLetterLocked publishes a given-up message on its topic's DLQ,
// preserving its ID, payload, and attempt count. Requires b.mu.
func (b *Bus) deadLetterLocked(m Message) {
	b.deadLettered++
	if b.met != nil {
		b.met.deadLettered.Inc()
	}
	m.Topic = DLQTopic(m.Topic)
	for _, s := range b.subs[m.Topic] {
		s.enqueue(m)
	}
}

// deadLetter is deadLetterLocked for callers outside the bus lock
// (consumer Nack paths).
func (b *Bus) deadLetter(m Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.deadLetterLocked(m)
}

// DeadLettered returns how many messages were moved to a DLQ topic.
func (b *Bus) DeadLettered() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.deadLettered
}

type flightRecord struct {
	msg         Message
	deliveredAt time.Time
}

// Subscription is one consumer queue on a topic.
type Subscription struct {
	topic, name string
	bus         *Bus

	mu       sync.Mutex
	queue    *list.List
	inflight map[string]*flightRecord
	closed   bool
	// ready is a wakeup signal (size 1) for receivers.
	ready chan struct{}

	redeliveries uint64
}

// isDLQ reports whether this subscription consumes a dead-letter topic;
// DLQ messages are never dead-lettered again (no topic.dlq.dlq cascade).
func (s *Subscription) isDLQ() bool { return strings.HasSuffix(s.topic, ".dlq") }

func (s *Subscription) enqueue(m Message) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue.PushBack(m)
	s.mu.Unlock()
	s.signal()
}

func (s *Subscription) signal() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

func (s *Subscription) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.signal()
}

// Receive blocks until a message is available or the timeout elapses
// (zero timeout = poll once). The message becomes in-flight: it must be
// Acked, or it will be redelivered after the visibility timeout.
func (s *Subscription) Receive(timeout time.Duration) (Message, error) {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return Message{}, ErrClosed
		}
		if el := s.queue.Front(); el != nil {
			m := s.queue.Remove(el).(Message)
			m.Attempt++
			s.inflight[m.ID] = &flightRecord{msg: m, deliveredAt: time.Now()}
			// More items may remain: re-signal for other receivers.
			if s.queue.Len() > 0 {
				s.signal()
			}
			s.mu.Unlock()
			s.bus.observeDelivery(&m)
			return m, nil
		}
		s.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, fmt.Errorf("bus: receive timeout on %s/%s", s.topic, s.name)
		}
		select {
		case <-s.ready:
		case <-time.After(remain):
		}
	}
}

// Ack marks a message done; it will not be redelivered.
func (s *Subscription) Ack(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.inflight[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotInFlight, id)
	}
	delete(s.inflight, id)
	if m := s.bus.met; m != nil {
		m.acked.Inc()
	}
	return nil
}

// Nack returns a message to the queue immediately (processing failed,
// retry now rather than waiting for the visibility timeout). If the
// message has exhausted the bus's max attempts it is dead-lettered
// instead; the optional reason travels with the DLQ delivery.
func (s *Subscription) Nack(id string, reason ...string) error {
	s.mu.Lock()
	rec, ok := s.inflight[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotInFlight, id)
	}
	delete(s.inflight, id)
	if m := s.bus.met; m != nil {
		m.nacked.Inc()
	}
	max := s.bus.maxAttempts
	if max > 0 && rec.msg.Attempt >= max && !s.isDLQ() {
		m := rec.msg
		if len(reason) > 0 {
			m.Reason = reason[0]
		} else {
			m.Reason = fmt.Sprintf("max attempts (%d) exceeded", max)
		}
		s.mu.Unlock()
		s.bus.deadLetter(m)
		return nil
	}
	s.redeliveries++
	s.queue.PushBack(rec.msg)
	s.mu.Unlock()
	s.signal()
	return nil
}

// redeliverExpired requeues timed-out in-flight messages and returns
// the ones that exhausted their attempts instead (for dead-lettering by
// the caller, which holds the bus lock).
func (s *Subscription) redeliverExpired(now time.Time, visibility time.Duration, maxAttempts int) []Message {
	s.mu.Lock()
	woke := false
	var dead []Message
	for id, rec := range s.inflight {
		if now.Sub(rec.deliveredAt) >= visibility {
			delete(s.inflight, id)
			if maxAttempts > 0 && rec.msg.Attempt >= maxAttempts && !s.isDLQ() {
				m := rec.msg
				m.Reason = fmt.Sprintf("visibility timeout after %d attempts", m.Attempt)
				dead = append(dead, m)
				continue
			}
			s.redeliveries++
			s.queue.PushBack(rec.msg)
			woke = true
		}
	}
	s.mu.Unlock()
	if woke {
		s.signal()
	}
	return dead
}

// Depth returns queued (not in-flight) message count.
func (s *Subscription) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// InFlight returns the number of delivered-but-unacked messages.
func (s *Subscription) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Redeliveries returns how many times messages were requeued (nack or
// visibility timeout).
func (s *Subscription) Redeliveries() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redeliveries
}
