// Package bus is the platform's internal messaging system (§II-B): the
// ingestion flow leaves "a message ... in the platform's internal
// messaging system for the background ingestion process to ingest the
// data". It provides named topics with fan-out to subscriptions,
// at-least-once delivery with acknowledgements, and redelivery of
// messages whose visibility timeout lapses (worker crash simulation).
package bus

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"healthcloud/internal/hckrypto"
)

// Message is one queued item.
type Message struct {
	ID      string
	Topic   string
	Payload []byte
	Attempt int // 1 on first delivery, incremented on redelivery
}

// Errors returned by this package.
var (
	ErrClosed      = errors.New("bus: closed")
	ErrNoSuchSub   = errors.New("bus: no such subscription")
	ErrNotInFlight = errors.New("bus: message not in flight")
)

// Bus routes published messages to every subscription on the topic.
type Bus struct {
	visibility time.Duration

	mu     sync.Mutex
	subs   map[string]map[string]*Subscription // topic -> name -> sub
	closed bool
	wg     sync.WaitGroup
	stopCh chan struct{}
}

// Option configures the Bus.
type Option func(*Bus)

// WithVisibilityTimeout sets how long a delivered-but-unacked message
// stays invisible before redelivery (default 500ms).
func WithVisibilityTimeout(d time.Duration) Option {
	return func(b *Bus) { b.visibility = d }
}

// New creates a bus. Call Close to stop its redelivery sweeper.
func New(opts ...Option) *Bus {
	b := &Bus{
		visibility: 500 * time.Millisecond,
		subs:       make(map[string]map[string]*Subscription),
		stopCh:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(b)
	}
	b.wg.Add(1)
	go b.sweep()
	return b
}

// Close stops redelivery and closes every subscription channel.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.stopCh)
	for _, topic := range b.subs {
		for _, s := range topic {
			s.close()
		}
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// Publish enqueues a payload on a topic, fanning out to every current
// subscription. It returns the message ID.
func (b *Bus) Publish(topic string, payload []byte) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return "", ErrClosed
	}
	id := hckrypto.NewUUID()
	for _, s := range b.subs[topic] {
		s.enqueue(Message{ID: id, Topic: topic, Payload: append([]byte(nil), payload...)})
	}
	return id, nil
}

// Subscribe attaches a named subscription to a topic. Each subscription
// receives every message published after it subscribes (fan-out across
// subscriptions; workers sharing one subscription compete for messages).
func (b *Bus) Subscribe(topic, name string) (*Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if b.subs[topic] == nil {
		b.subs[topic] = make(map[string]*Subscription)
	}
	if _, ok := b.subs[topic][name]; ok {
		return nil, fmt.Errorf("bus: subscription %q already exists on %q", name, topic)
	}
	s := &Subscription{
		topic: topic, name: name,
		queue:    list.New(),
		inflight: make(map[string]*flightRecord),
		ready:    make(chan struct{}, 1),
	}
	b.subs[topic][name] = s
	return s, nil
}

// sweep periodically returns timed-out in-flight messages to their queues.
func (b *Bus) sweep() {
	defer b.wg.Done()
	interval := b.visibility / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stopCh:
			return
		case now := <-ticker.C:
			b.mu.Lock()
			for _, topic := range b.subs {
				for _, s := range topic {
					s.redeliverExpired(now, b.visibility)
				}
			}
			b.mu.Unlock()
		}
	}
}

type flightRecord struct {
	msg         Message
	deliveredAt time.Time
}

// Subscription is one consumer queue on a topic.
type Subscription struct {
	topic, name string

	mu       sync.Mutex
	queue    *list.List
	inflight map[string]*flightRecord
	closed   bool
	// ready is a wakeup signal (size 1) for receivers.
	ready chan struct{}

	redeliveries uint64
}

func (s *Subscription) enqueue(m Message) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue.PushBack(m)
	s.mu.Unlock()
	s.signal()
}

func (s *Subscription) signal() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

func (s *Subscription) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.signal()
}

// Receive blocks until a message is available or the timeout elapses
// (zero timeout = poll once). The message becomes in-flight: it must be
// Acked, or it will be redelivered after the visibility timeout.
func (s *Subscription) Receive(timeout time.Duration) (Message, error) {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return Message{}, ErrClosed
		}
		if el := s.queue.Front(); el != nil {
			m := s.queue.Remove(el).(Message)
			m.Attempt++
			s.inflight[m.ID] = &flightRecord{msg: m, deliveredAt: time.Now()}
			// More items may remain: re-signal for other receivers.
			if s.queue.Len() > 0 {
				s.signal()
			}
			s.mu.Unlock()
			return m, nil
		}
		s.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, fmt.Errorf("bus: receive timeout on %s/%s", s.topic, s.name)
		}
		select {
		case <-s.ready:
		case <-time.After(remain):
		}
	}
}

// Ack marks a message done; it will not be redelivered.
func (s *Subscription) Ack(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.inflight[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotInFlight, id)
	}
	delete(s.inflight, id)
	return nil
}

// Nack returns a message to the queue immediately (processing failed,
// retry now rather than waiting for the visibility timeout).
func (s *Subscription) Nack(id string) error {
	s.mu.Lock()
	rec, ok := s.inflight[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotInFlight, id)
	}
	delete(s.inflight, id)
	s.redeliveries++
	s.queue.PushBack(rec.msg)
	s.mu.Unlock()
	s.signal()
	return nil
}

func (s *Subscription) redeliverExpired(now time.Time, visibility time.Duration) {
	s.mu.Lock()
	woke := false
	for id, rec := range s.inflight {
		if now.Sub(rec.deliveredAt) >= visibility {
			delete(s.inflight, id)
			s.redeliveries++
			s.queue.PushBack(rec.msg)
			woke = true
		}
	}
	s.mu.Unlock()
	if woke {
		s.signal()
	}
}

// Depth returns queued (not in-flight) message count.
func (s *Subscription) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// InFlight returns the number of delivered-but-unacked messages.
func (s *Subscription) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Redeliveries returns how many times messages were requeued (nack or
// visibility timeout).
func (s *Subscription) Redeliveries() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redeliveries
}
