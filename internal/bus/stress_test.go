package bus

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stressConsume runs workers goroutines competing on sub, handling each
// delivery with handle (which returns true once the message counts as
// processed). It returns when total messages have been processed.
func stressConsume(t *testing.T, sub *Subscription, workers int, total int64,
	handle func(m Message) bool) {
	t.Helper()
	var processed int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(30 * time.Second)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.LoadInt64(&processed) < total {
				if time.Now().After(deadline) {
					t.Errorf("stress consumer gave up: %d/%d processed",
						atomic.LoadInt64(&processed), total)
					return
				}
				m, err := sub.Receive(50 * time.Millisecond)
				if err != nil {
					continue // timeout while others drain the tail
				}
				if handle(m) {
					atomic.AddInt64(&processed, 1)
				}
			}
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt64(&processed); got != total {
		t.Fatalf("processed %d messages, want %d", got, total)
	}
}

// TestBusCompetingConsumersExactlyOnce hammers one subscription with 16
// competing consumers while 8 publishers feed it, and asserts every
// message is delivered to exactly one consumer: with a visibility
// timeout far longer than the test, any duplicate would prove a race in
// the queue/in-flight handoff rather than a legitimate redelivery.
func TestBusCompetingConsumersExactlyOnce(t *testing.T) {
	const (
		publishers = 8
		perPub     = 50
		total      = publishers * perPub
		consumers  = 16
	)
	b := New(WithVisibilityTimeout(time.Minute))
	defer b.Close()
	sub, err := b.Subscribe("stress", "workers")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[string]int, total)

	done := make(chan struct{})
	go func() {
		defer close(done)
		stressConsume(t, sub, consumers, total, func(m Message) bool {
			mu.Lock()
			seen[string(m.Payload)]++
			mu.Unlock()
			if err := sub.Ack(m.ID); err != nil {
				t.Errorf("ack %s: %v", m.ID, err)
			}
			return true
		})
	}()

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				if _, err := b.Publish("stress", []byte(fmt.Sprintf("msg-%d-%d", p, i))); err != nil {
					t.Errorf("publish: %v", err)
				}
			}
		}(p)
	}
	pubWG.Wait()
	<-done

	if len(seen) != total {
		t.Fatalf("saw %d distinct payloads, want %d", len(seen), total)
	}
	for payload, n := range seen {
		if n != 1 {
			t.Errorf("payload %s delivered %d times, want exactly once", payload, n)
		}
	}
	if got := sub.Redeliveries(); got != 0 {
		t.Errorf("redeliveries = %d, want 0 (visibility timeout never elapsed)", got)
	}
	if d, f := sub.Depth(), sub.InFlight(); d != 0 || f != 0 {
		t.Errorf("subscription not drained: depth=%d inflight=%d", d, f)
	}
}

// TestBusNackRedeliveryUnderRace drives the explicit-Nack redelivery
// path from 16 competing consumers: every message is rejected on its
// first delivery and acked on a later one. Each message must still end
// up acked exactly once, and the redelivery counter must account for
// exactly one nack per message.
func TestBusNackRedeliveryUnderRace(t *testing.T) {
	const total = 200
	b := New(WithVisibilityTimeout(time.Minute))
	defer b.Close()
	sub, err := b.Subscribe("stress", "workers")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, err := b.Publish("stress", []byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	acked := make(map[string]int, total)

	stressConsume(t, sub, 16, total, func(m Message) bool {
		if m.Attempt == 1 {
			if err := sub.Nack(m.ID, "first attempt always retried"); err != nil {
				t.Errorf("nack %s: %v", m.ID, err)
			}
			return false
		}
		mu.Lock()
		acked[string(m.Payload)]++
		mu.Unlock()
		if err := sub.Ack(m.ID); err != nil {
			t.Errorf("ack %s: %v", m.ID, err)
		}
		return true
	})

	if len(acked) != total {
		t.Fatalf("acked %d distinct payloads, want %d", len(acked), total)
	}
	for payload, n := range acked {
		if n != 1 {
			t.Errorf("payload %s acked %d times, want exactly once", payload, n)
		}
	}
	if got := sub.Redeliveries(); got != total {
		t.Errorf("redeliveries = %d, want %d (one nack per message)", got, total)
	}
	// A fully acked subscription must be empty: any residue here would
	// mean a redelivered copy survived the ack.
	m, err := sub.Receive(0)
	if err == nil {
		t.Fatalf("drained subscription still delivered %s", m.ID)
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Errorf("unexpected receive error: %v", err)
	}
}
