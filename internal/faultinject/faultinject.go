// Package faultinject is the platform's deterministic fault-injection
// substrate. Components expose named fault points (e.g.
// "store.lake.put", "blockchain.submit") and consult a shared Registry
// before doing real work; experiments and chaos tests enable faults at
// those points — injected errors, added latency, or both — with a
// seedable PRNG so every run is reproducible.
//
// A nil *Registry is valid and injects nothing, so components can hold
// an optional registry with zero overhead on the happy path:
//
//	if err := d.faults.Check("store.lake.put"); err != nil { return err }
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the default error returned by a firing fault point.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault configures one fault point.
type Fault struct {
	// ErrorRate is the probability in [0,1] that Check returns an error.
	ErrorRate float64
	// Err overrides the returned error (wrapped around ErrInjected when
	// nil so callers can errors.Is(err, ErrInjected) either way).
	Err error
	// FailFirst forces the first N checks to fail regardless of
	// ErrorRate — deterministic "fail exactly twice then recover" setups.
	FailFirst int
	// SkipFirst lets the first N checks pass untouched (no error, no
	// latency) before FailFirst/ErrorRate apply — deterministic "the
	// K+1th write tears" setups, counted from Enable.
	SkipFirst int
	// LatencyRate is the probability that Check sleeps Latency first.
	LatencyRate float64
	// Latency is the injected delay (a latency spike).
	Latency time.Duration
}

// PointStats reports one fault point's activity.
type PointStats struct {
	Checks   uint64 // times the point was consulted
	Errors   uint64 // injected errors
	Latency  uint64 // injected latency spikes
	Disabled bool   // fault removed but history retained
}

type point struct {
	fault   Fault
	failed  int // FailFirst consumed so far
	skipped int // SkipFirst consumed so far
	stats   PointStats
}

// Registry holds named fault points. The zero value of *Registry (nil)
// never injects.
type Registry struct {
	mu      sync.Mutex
	rng     uint64
	points  map[string]*point
	sleeper func(time.Duration)
}

// NewRegistry creates a registry whose probabilistic decisions derive
// from seed (same seed + same check sequence = same faults).
func NewRegistry(seed int64) *Registry {
	return &Registry{
		rng:     uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D,
		points:  make(map[string]*point),
		sleeper: time.Sleep,
	}
}

// SetSleeper replaces the latency sleep (experiments account modeled
// time instead of blocking).
func (r *Registry) SetSleeper(f func(time.Duration)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sleeper = f
}

// Enable installs (or replaces) a fault at a named point.
func (r *Registry) Enable(name string, f Fault) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.points[name]
	if p == nil {
		p = &point{}
		r.points[name] = p
	}
	p.fault = f
	p.failed = 0
	p.skipped = 0
	p.stats.Disabled = false
}

// Disable removes the fault at a point; its stats survive.
func (r *Registry) Disable(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		p.fault = Fault{}
		p.stats.Disabled = true
	}
}

// next is xorshift64* under r.mu: cheap, deterministic.
func (r *Registry) next() float64 {
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return float64(r.rng%1_000_000) / 1_000_000
}

// Check consults a fault point: it may sleep an injected latency and
// may return an injected error. A nil registry or unknown point injects
// nothing.
func (r *Registry) Check(name string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	p, ok := r.points[name]
	if !ok || p.stats.Disabled {
		if ok {
			p.stats.Checks++
		}
		r.mu.Unlock()
		return nil
	}
	p.stats.Checks++
	if p.skipped < p.fault.SkipFirst {
		p.skipped++
		r.mu.Unlock()
		return nil
	}
	var delay time.Duration
	if p.fault.Latency > 0 && (p.fault.LatencyRate >= 1 || r.next() < p.fault.LatencyRate) {
		delay = p.fault.Latency
		p.stats.Latency++
	}
	fail := false
	if p.failed < p.fault.FailFirst {
		p.failed++
		fail = true
	} else if p.fault.ErrorRate > 0 && (p.fault.ErrorRate >= 1 || r.next() < p.fault.ErrorRate) {
		fail = true
	}
	var err error
	if fail {
		p.stats.Errors++
		if p.fault.Err != nil {
			err = fmt.Errorf("%w: %s: %w", ErrInjected, name, p.fault.Err)
		} else {
			err = fmt.Errorf("%w: %s", ErrInjected, name)
		}
	}
	sleeper := r.sleeper
	r.mu.Unlock()
	if delay > 0 {
		sleeper(delay)
	}
	return err
}

// Stats returns a snapshot of every point that has been enabled.
func (r *Registry) Stats() map[string]PointStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]PointStats, len(r.points))
	for name, p := range r.points {
		out[name] = p.stats
	}
	return out
}

// Points lists the registered fault-point names, sorted.
func (r *Registry) Points() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.points))
	for name := range r.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
