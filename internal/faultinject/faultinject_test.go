package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilRegistryInjectsNothing(t *testing.T) {
	var r *Registry
	if err := r.Check("anything"); err != nil {
		t.Fatalf("nil registry injected: %v", err)
	}
	if r.Stats() != nil || r.Points() != nil {
		t.Fatal("nil registry should report nothing")
	}
}

func TestUnknownPointInjectsNothing(t *testing.T) {
	r := NewRegistry(1)
	for i := 0; i < 100; i++ {
		if err := r.Check("unregistered"); err != nil {
			t.Fatalf("unknown point injected: %v", err)
		}
	}
}

func TestErrorRateDeterministic(t *testing.T) {
	count := func() int {
		r := NewRegistry(42)
		r.Enable("p", Fault{ErrorRate: 0.3})
		n := 0
		for i := 0; i < 1000; i++ {
			if r.Check("p") != nil {
				n++
			}
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("30%% rate injected %d/1000", a)
	}
}

func TestFailFirst(t *testing.T) {
	r := NewRegistry(7)
	r.Enable("p", Fault{FailFirst: 2})
	if r.Check("p") == nil || r.Check("p") == nil {
		t.Fatal("first two checks must fail")
	}
	for i := 0; i < 50; i++ {
		if err := r.Check("p"); err != nil {
			t.Fatalf("check %d after FailFirst consumed: %v", i, err)
		}
	}
}

func TestInjectedErrorWrapping(t *testing.T) {
	r := NewRegistry(7)
	custom := errors.New("boom")
	r.Enable("p", Fault{ErrorRate: 1, Err: custom})
	err := r.Check("p")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Fatalf("error %v should wrap both ErrInjected and the custom error", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	r := NewRegistry(7)
	var slept time.Duration
	r.SetSleeper(func(d time.Duration) { slept += d })
	r.Enable("p", Fault{Latency: 5 * time.Millisecond, LatencyRate: 1})
	if err := r.Check("p"); err != nil {
		t.Fatalf("latency-only fault returned error: %v", err)
	}
	if slept != 5*time.Millisecond {
		t.Fatalf("slept %v, want 5ms", slept)
	}
}

func TestDisableStopsInjectionKeepsStats(t *testing.T) {
	r := NewRegistry(7)
	r.Enable("p", Fault{ErrorRate: 1})
	if r.Check("p") == nil {
		t.Fatal("enabled point did not fire")
	}
	r.Disable("p")
	if err := r.Check("p"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	st := r.Stats()["p"]
	if st.Errors != 1 || st.Checks != 2 || !st.Disabled {
		t.Fatalf("stats after disable: %+v", st)
	}
}

func TestPointsSorted(t *testing.T) {
	r := NewRegistry(7)
	r.Enable("z", Fault{})
	r.Enable("a", Fault{})
	pts := r.Points()
	if len(pts) != 2 || pts[0] != "a" || pts[1] != "z" {
		t.Fatalf("points = %v", pts)
	}
}
