package httpapi

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"healthcloud/internal/analytics"
	"healthcloud/internal/consent"
	"healthcloud/internal/core"
	"healthcloud/internal/faultinject"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/kb"
	"healthcloud/internal/monitor"
	"healthcloud/internal/rbac"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// apiFixture is a running API server with an admin session.
type apiFixture struct {
	srv   *httptest.Server
	p     *core.Platform
	idp   *rbac.IdentityProvider
	admin string // bearer token
}

func newAPI(t *testing.T) *apiFixture {
	t.Helper()
	return newAPIWith(t, nil)
}

// newAPIWith lets a test adjust the platform config (e.g. install a
// fault-injection registry) before the instance starts.
func newAPIWith(t *testing.T, mutate func(*core.Config)) *apiFixture {
	t.Helper()
	kbCfg := kb.DefaultConfig()
	kbCfg.Drugs, kbCfg.Diseases = 20, 10
	dataset, err := kb.Generate(kbCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Tenant: "mercy-health", KBDataset: dataset}
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	srv := httptest.NewServer(New(p))
	t.Cleanup(srv.Close)

	idp, err := rbac.NewIdentityProvider("hospital-sso")
	if err != nil {
		t.Fatal(err)
	}
	p.RBAC.ApproveIdentityProvider("hospital-sso", idp.VerifyKey())
	f := &apiFixture{srv: srv, p: p, idp: idp}
	f.admin = f.login(t, "admin@hospital.org", rbac.RoleAdmin)
	return f
}

// login registers a user with a role and returns their session token.
func (f *apiFixture) login(t *testing.T, subject string, role rbac.Role) string {
	t.Helper()
	userID := "hospital-sso:" + subject
	f.p.RBAC.RegisterUser("mercy-health", userID)
	if err := f.p.RBAC.AssignRole(userID, role, rbac.Scope{Tenant: "mercy-health"}, ""); err != nil {
		t.Fatal(err)
	}
	tok, err := f.idp.Issue(subject, "mercy-health", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(tok)
	resp, err := http.Post(f.srv.URL+"/api/v1/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login status = %d", resp.StatusCode)
	}
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	return out["token"]
}

// do issues an authenticated request and decodes the JSON response.
func (f *apiFixture) do(t *testing.T, method, path, token string, body []byte) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, f.srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func TestHealthz(t *testing.T) {
	f := newAPI(t)
	status, body := f.do(t, "GET", "/api/v1/healthz", "", nil)
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", status, body)
	}
	if comps, ok := body["components"].([]any); !ok || len(comps) < 15 {
		t.Errorf("components = %v", body["components"])
	}
}

func TestLoginRejectsBadTokens(t *testing.T) {
	f := newAPI(t)
	resp, err := http.Post(f.srv.URL+"/api/v1/login", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}
	// A token signed by an unapproved IdP.
	rogue, err := rbac.NewIdentityProvider("rogue")
	if err != nil {
		t.Fatal(err)
	}
	tok, _ := rogue.Issue("mallory", "mercy-health", time.Hour)
	body, _ := json.Marshal(tok)
	resp2, err := http.Post(f.srv.URL+"/api/v1/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Errorf("rogue idp: %d", resp2.StatusCode)
	}
}

func TestAuthRequired(t *testing.T) {
	f := newAPI(t)
	status, _ := f.do(t, "GET", "/api/v1/kb/drug:drug-000", "", nil)
	if status != http.StatusUnauthorized {
		t.Errorf("no token: %d", status)
	}
	status, _ = f.do(t, "GET", "/api/v1/kb/drug:drug-000", "not-a-session", nil)
	if status != http.StatusUnauthorized {
		t.Errorf("bad token: %d", status)
	}
}

func TestRBACEnforcedPerRoute(t *testing.T) {
	f := newAPI(t)
	auditor := f.login(t, "auditor@hospital.org", rbac.RoleAuditor)
	// Auditor can read logs...
	status, body := f.do(t, "GET", "/api/v1/audit?service=platform", auditor, nil)
	if status != http.StatusOK {
		t.Errorf("auditor reading logs: %d %v", status, body)
	}
	// ...but not the KB, models, or uploads.
	if status, _ := f.do(t, "GET", "/api/v1/kb/drug:drug-000", auditor, nil); status != http.StatusForbidden {
		t.Errorf("auditor reading kb: %d", status)
	}
	if status, _ := f.do(t, "POST", "/api/v1/clients", auditor, []byte(`{"client_id":"x"}`)); status != http.StatusForbidden {
		t.Errorf("auditor registering client: %d", status)
	}
}

func TestUploadFlowOverHTTP(t *testing.T) {
	f := newAPI(t)
	ingestor := f.login(t, "nurse@hospital.org", rbac.RoleIngestor)
	// Register a client device.
	status, body := f.do(t, "POST", "/api/v1/clients", ingestor, []byte(`{"client_id":"device-1"}`))
	if status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}
	key, err := base64.StdEncoding.DecodeString(body["key"].(string))
	if err != nil {
		t.Fatal(err)
	}
	// Build and encrypt a bundle exactly as the SDK would.
	f.p.Consents.Grant("patient-1", "study-1", consent.PurposeResearch, 0)
	b := fhir.NewBundle("collection")
	b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: "patient-1", Gender: "female"})
	raw, _ := fhir.Marshal(b)
	encrypted, err := hckrypto.EncryptGCM(key, raw, []byte("device-1"))
	if err != nil {
		t.Fatal(err)
	}
	status, body = f.do(t, "POST", "/api/v1/uploads?client=device-1&group=study-1", ingestor, encrypted)
	if status != http.StatusAccepted {
		t.Fatalf("upload: %d %v", status, body)
	}
	statusURL := body["status_url"].(string)
	// Poll the status URL until terminal.
	deadline := time.Now().Add(10 * time.Second)
	var last map[string]any
	for time.Now().Before(deadline) {
		_, last = f.do(t, "GET", statusURL, ingestor, nil)
		if last["state"] == "stored" || last["state"] == "failed" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if last["state"] != "stored" {
		t.Fatalf("final status = %v", last)
	}
}

func TestUploadValidation(t *testing.T) {
	f := newAPI(t)
	if status, _ := f.do(t, "POST", "/api/v1/uploads", f.admin, []byte("x")); status != http.StatusBadRequest {
		t.Errorf("missing params: %d", status)
	}
	if status, _ := f.do(t, "POST", "/api/v1/uploads?client=ghost&group=g", f.admin, []byte("x")); status != http.StatusBadRequest {
		t.Errorf("unregistered client: %d", status)
	}
	if status, _ := f.do(t, "GET", "/api/v1/uploads/ghost", f.admin, nil); status != http.StatusNotFound {
		t.Errorf("unknown upload: %d", status)
	}
}

func TestKBEndpoint(t *testing.T) {
	f := newAPI(t)
	status, body := f.do(t, "GET", "/api/v1/kb/drug:drug-000", f.admin, nil)
	if status != http.StatusOK || body["id"] != "drug-000" {
		t.Errorf("kb = %d %v", status, body)
	}
	if status, _ := f.do(t, "GET", "/api/v1/kb/drug:ghost", f.admin, nil); status != http.StatusNotFound {
		t.Errorf("unknown key: %d", status)
	}
}

func TestModelEndpoint(t *testing.T) {
	f := newAPI(t)
	if status, _ := f.do(t, "GET", "/api/v1/models/hba1c", f.admin, nil); status != http.StatusNotFound {
		t.Errorf("undeployed model: %d", status)
	}
	m := &analytics.LinearModel{Name: "hba1c", Bias: 6}
	payload, _ := m.Marshal()
	f.p.Analytics.Create("hba1c", nil)
	f.p.Analytics.MarkTrained("hba1c", 1, payload)
	f.p.Analytics.RecordTest("hba1c", 1, map[string]float64{"auc": 0.9}, "auc", 0.5)
	f.p.Analytics.Approve("hba1c", 1, "compliance")
	f.p.Analytics.Deploy("hba1c", 1)
	status, body := f.do(t, "GET", "/api/v1/models/hba1c", f.admin, nil)
	if status != http.StatusOK || body["bias"].(float64) != 6 {
		t.Errorf("model = %d %v", status, body)
	}
}

func TestExportEndpoint(t *testing.T) {
	f := newAPI(t)
	cro := f.login(t, "cro@partner.org", rbac.RoleCRO)
	// No data yet.
	if status, _ := f.do(t, "GET", "/api/v1/exports/anonymized?group=study-1", cro, nil); status != http.StatusForbidden {
		t.Errorf("empty export: %d", status)
	}
	// Ingest three identical-quasi patients, then export passes k=2.
	key, err := f.p.Ingest.RegisterClient("device-9")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pid := fmt.Sprintf("patient-%d", i)
		f.p.Consents.Grant(pid, "study-1", consent.PurposeResearch, 0)
		b := fhir.NewBundle("collection")
		b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: pid, Gender: "female",
			Address: []fhir.Address{{State: "NY", PostalCode: "10598"}}})
		raw, _ := fhir.Marshal(b)
		ct, _ := hckrypto.EncryptGCM(key, raw, []byte("device-9"))
		id, err := f.p.Ingest.Upload("device-9", "study-1", ct)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.p.Ingest.WaitForUpload(id, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	req, _ := http.NewRequest("GET", f.srv.URL+"/api/v1/exports/anonymized?group=study-1", nil)
	req.Header.Set("Authorization", "Bearer "+cro)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	var recs []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("exported %d records", len(recs))
	}
}

func TestServicesEndpoint(t *testing.T) {
	f := newAPI(t)
	f.p.SeedDemoProviders()
	status, body := f.do(t, "GET", "/api/v1/services/nlu", f.admin, nil)
	if status != http.StatusOK {
		t.Fatalf("services = %d %v", status, body)
	}
	providers, ok := body["providers"].([]any)
	if !ok || len(providers) != 3 {
		t.Fatalf("providers = %v", body["providers"])
	}
	if body["best"] == nil || body["best"] == "" {
		t.Error("no best provider selected")
	}
	// Unknown capability.
	if status, _ := f.do(t, "GET", "/api/v1/services/telepathy", f.admin, nil); status != http.StatusNotFound {
		t.Errorf("unknown capability: %d", status)
	}
}

func TestFactsEndpoint(t *testing.T) {
	f := newAPI(t)
	status, body := f.do(t, "GET", "/api/v1/facts?min_support=1", f.admin, nil)
	if status != http.StatusOK {
		t.Fatalf("facts = %d %v", status, body)
	}
	if body["count"].(float64) == 0 {
		t.Error("no facts mined")
	}
	if status, _ := f.do(t, "GET", "/api/v1/facts?min_support=zero", f.admin, nil); status != http.StatusBadRequest {
		t.Errorf("bad min_support: %d", status)
	}
	// RBAC: auditors cannot read services/facts.
	auditor := f.login(t, "auditor2@hospital.org", rbac.RoleAuditor)
	if status, _ := f.do(t, "GET", "/api/v1/facts", auditor, nil); status != http.StatusForbidden {
		t.Errorf("auditor reading facts: %d", status)
	}
}

func TestBillingEndpoint(t *testing.T) {
	f := newAPI(t)
	// Drive some metered usage through the client surface.
	dev, err := f.p.NewEnhancedClient("device-bill", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := dev.QueryKB("drug:drug-00" + string(rune('0'+i%3))); err != nil {
			t.Fatal(err)
		}
	}
	status, body := f.do(t, "GET", "/api/v1/billing", f.admin, nil)
	if status != http.StatusOK {
		t.Fatalf("billing = %d %v", status, body)
	}
	if body["tenant"] != "mercy-health" {
		t.Errorf("tenant = %v", body["tenant"])
	}
	if body["total_cents"].(float64) <= 0 {
		t.Errorf("total = %v, want > 0 after metered reads", body["total_cents"])
	}
}

// doRaw issues an authenticated request and returns the raw response
// (headers included), with the body drained and closed.
func (f *apiFixture) doRaw(t *testing.T, method, path, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, f.srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func TestKBDegradesAndFailsFastUnderOutage(t *testing.T) {
	faults := faultinject.NewRegistry(21)
	f := newAPIWith(t, func(cfg *core.Config) { cfg.Faults = faults })

	// A healthy fetch also banks a last-known-good copy for degradation.
	resp := f.doRaw(t, "GET", "/api/v1/kb/drug:drug-000", f.admin)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("healthy read = %d warning=%q", resp.StatusCode, resp.Header.Get("Warning"))
	}

	// Total KB outage.
	faults.Enable(kb.FaultFetch, faultinject.Fault{ErrorRate: 1})

	// The warmed key keeps serving (stale) while failures accumulate and
	// trip the breaker.
	breaker := f.p.KBResilient.Breaker()
	for i := 0; breaker.Opens() == 0 && i < 20; i++ {
		f.p.KBCache.Invalidate("drug:drug-000") // force an origin load
		resp := f.doRaw(t, "GET", "/api/v1/kb/drug:drug-000", f.admin)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded read = %d", resp.StatusCode)
		}
	}
	if breaker.Opens() == 0 {
		t.Fatal("breaker never opened under sustained KB failure")
	}
	if f.p.KBResilient.DegradedServes() == 0 {
		t.Error("no reads were served from the stale store")
	}

	// Circuit open, warmed key: still 200, but flagged stale.
	f.p.KBCache.Invalidate("drug:drug-000")
	resp = f.doRaw(t, "GET", "/api/v1/kb/drug:drug-000", f.admin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open-circuit stale read = %d", resp.StatusCode)
	}
	if resp.Header.Get("Warning") == "" {
		t.Error("stale response not flagged with a Warning header")
	}

	// Circuit open, cold key: nothing to degrade to — 503 + Retry-After.
	resp = f.doRaw(t, "GET", "/api/v1/kb/drug:drug-001", f.admin)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit cold read = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After header")
	}
}

// TestTraceEndToEnd is the observability acceptance test: one upload
// through the HTTP API, with the provenance ledger on, must yield a
// trace at GET /traces/{id} that contains a span for every pipeline
// stage — including the async bus hop and the ledger phases — linked
// into a single parent/child tree rooted at the upload accept.
func TestTraceEndToEnd(t *testing.T) {
	f := newAPIWith(t, func(cfg *core.Config) {
		cfg.Telemetry = telemetry.New()
		cfg.LedgerPeers = []string{"hospital", "audit-svc", "data-protection"}
	})
	ingestor := f.login(t, "nurse@hospital.org", rbac.RoleIngestor)
	status, body := f.do(t, "POST", "/api/v1/clients", ingestor, []byte(`{"client_id":"device-1"}`))
	if status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}
	key, err := base64.StdEncoding.DecodeString(body["key"].(string))
	if err != nil {
		t.Fatal(err)
	}
	f.p.Consents.Grant("patient-1", "study-1", consent.PurposeResearch, 0)
	b := fhir.NewBundle("collection")
	b.AddResource(&fhir.Patient{ResourceType: "Patient", ID: "patient-1", Gender: "female"})
	raw, _ := fhir.Marshal(b)
	encrypted, err := hckrypto.EncryptGCM(key, raw, []byte("device-1"))
	if err != nil {
		t.Fatal(err)
	}
	status, body = f.do(t, "POST", "/api/v1/uploads?client=device-1&group=study-1", ingestor, encrypted)
	if status != http.StatusAccepted {
		t.Fatalf("upload: %d %v", status, body)
	}
	statusURL := body["status_url"].(string)
	deadline := time.Now().Add(30 * time.Second)
	var last map[string]any
	for time.Now().Before(deadline) {
		_, last = f.do(t, "GET", statusURL, ingestor, nil)
		if last["state"] == "stored" || last["state"] == "failed" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if last["state"] != "stored" {
		t.Fatalf("final status = %v", last)
	}
	traceID, _ := last["trace_id"].(string)
	if traceID == "" {
		t.Fatalf("status carries no trace_id: %v", last)
	}

	status, trace := f.do(t, "GET", "/traces/"+traceID, "", nil)
	if status != http.StatusOK {
		t.Fatalf("trace fetch: %d %v", status, trace)
	}
	if trace["trace_id"] != traceID {
		t.Errorf("trace_id = %v, want %s", trace["trace_id"], traceID)
	}
	spans, _ := trace["spans"].([]any)
	byID := map[string]map[string]any{} // span_id -> span
	byName := map[string]map[string]any{}
	for _, raw := range spans {
		sp := raw.(map[string]any)
		byID[sp["span_id"].(string)] = sp
		byName[sp["name"].(string)] = sp
	}
	want := []string{
		"ingest.upload", "bus.hop", "ingest.process",
		"ingest.decrypt", "ingest.validate", "ingest.scan", "ingest.consent",
		"ingest.deidentify", "ingest.store", "ingest.store-deid", "ingest.provenance",
		"ledger.submit", "ledger.endorse", "ledger.order", "ledger.commit-wait",
	}
	for _, name := range want {
		if byName[name] == nil {
			t.Errorf("trace is missing span %q", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	// Parent/child links: every span must chain back to the upload root.
	parentName := func(name string) string {
		pid, _ := byName[name]["parent_id"].(string)
		if pid == "" {
			return ""
		}
		parent, ok := byID[pid]
		if !ok {
			t.Fatalf("span %q has unknown parent %q", name, pid)
		}
		return parent["name"].(string)
	}
	links := map[string]string{
		"ingest.upload":      "",               // root
		"bus.hop":            "ingest.upload",  // async hop continues the trace
		"ingest.process":     "bus.hop",        // worker hangs off the hop
		"ingest.decrypt":     "ingest.process", // stages under the worker
		"ingest.validate":    "ingest.process",
		"ingest.scan":        "ingest.process",
		"ingest.consent":     "ingest.process",
		"ingest.deidentify":  "ingest.process",
		"ingest.store":       "ingest.process",
		"ingest.store-deid":  "ingest.process",
		"ingest.provenance":  "ingest.process",
		"ledger.submit":      "ingest.provenance", // ledger under the provenance stage
		"ledger.endorse":     "ledger.submit",
		"ledger.order":       "ledger.submit",
		"ledger.commit-wait": "ledger.submit",
	}
	for child, wantParent := range links {
		if got := parentName(child); got != wantParent {
			t.Errorf("%s parent = %q, want %q", child, got, wantParent)
		}
	}

	// The Prometheus endpoint must expose the pipeline counters.
	resp, err := http.Get(f.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{"ingest_uploads_total", "ingest_stored_total", "bus_published_total"} {
		if !strings.Contains(string(text), metric) {
			t.Errorf("/metrics is missing %s", metric)
		}
	}
}

// TestReadyzEndToEnd drives the full loop the monitor tentpole
// promises: /readyz reports ok on a healthy platform, degrades (still
// 200) while a store fault is injected, agrees with the legacy healthz
// route throughout, and returns to ready after recovery.
func TestReadyzEndToEnd(t *testing.T) {
	faults := faultinject.NewRegistry(31)
	f := newAPIWith(t, func(cfg *core.Config) {
		cfg.Faults = faults
		cfg.Telemetry = telemetry.New()
		cfg.Monitor = true
		cfg.MonitorInterval = -1 // manual ticks only: no goroutine racing assertions
	})

	readyz := func() (int, monitor.Report) {
		t.Helper()
		resp, err := http.Get(f.srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep monitor.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rep
	}
	healthzStatus := func() string {
		t.Helper()
		resp, err := http.Get(f.srv.URL + "/api/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		return body.Status
	}

	if code, rep := readyz(); code != http.StatusOK || !rep.Ready || rep.Overall != monitor.StateOK {
		t.Fatalf("healthy: code %d report %+v", code, rep)
	}
	if got := healthzStatus(); got != "ok" {
		t.Fatalf("healthy healthz status = %q", got)
	}

	// Break the data lake: the store probe degrades but the platform
	// keeps serving, so readiness stays 200 with a degraded verdict.
	faults.Enable(store.FaultLakePut, faultinject.Fault{ErrorRate: 1})
	code, rep := readyz()
	if code != http.StatusOK {
		t.Fatalf("degraded must stay 200, got %d", code)
	}
	if rep.Overall != monitor.StateDegraded || !rep.Ready {
		t.Fatalf("faulted report = %+v, want degraded+ready", rep)
	}
	if h := rep.Components["data-lake"]; h.State != monitor.StateDegraded {
		t.Fatalf("data-lake component = %+v, want degraded", h)
	}
	if got := healthzStatus(); got != "degraded" {
		t.Fatalf("legacy healthz disagrees with /readyz: %q", got)
	}

	// Recovery: the next probe round sees the lake healthy again.
	faults.Disable(store.FaultLakePut)
	if code, rep := readyz(); code != http.StatusOK || rep.Overall != monitor.StateOK {
		t.Fatalf("recovered: code %d report %+v", code, rep)
	}
	if got := healthzStatus(); got != "ok" {
		t.Fatalf("recovered healthz status = %q", got)
	}

	// The operator page and the history ring are served too.
	resp, err := http.Get(f.srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), "data-lake") {
		t.Fatalf("statusz: %d\n%s", resp.StatusCode, page)
	}
	resp, err = http.Get(f.srv.URL + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics/history status %d", resp.StatusCode)
	}
}

// TestUploadBackpressure503 pins the upload backpressure contract: a
// transient server-side failure (staging down) answers 503 with a
// Retry-After hint so clients resubmit, while a caller mistake
// (unknown client) stays a plain 400.
func TestUploadBackpressure503(t *testing.T) {
	faults := faultinject.NewRegistry(31)
	f := newAPIWith(t, func(cfg *core.Config) { cfg.Faults = faults })
	ingestor := f.login(t, "nurse@hospital.org", rbac.RoleIngestor)
	status, _ := f.do(t, "POST", "/api/v1/clients", ingestor, []byte(`{"client_id":"device-1"}`))
	if status != http.StatusCreated {
		t.Fatalf("register: %d", status)
	}

	post := func() *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST",
			f.srv.URL+"/api/v1/uploads?client=device-1&group=study-1",
			bytes.NewReader([]byte("ciphertext")))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+ingestor)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	faults.Enable(store.FaultStagingPut, faultinject.Fault{ErrorRate: 1})
	resp := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload with staging down = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}

	faults.Disable(store.FaultStagingPut)
	if resp = post(); resp.StatusCode != http.StatusAccepted {
		t.Errorf("upload after recovery = %d, want 202", resp.StatusCode)
	}

	// Caller mistakes never masquerade as server overload.
	status, _ = f.do(t, "POST", "/api/v1/uploads?client=ghost&group=g", ingestor, []byte("x"))
	if status != http.StatusBadRequest {
		t.Errorf("unknown client = %d, want 400", status)
	}
}
