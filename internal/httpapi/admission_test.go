package httpapi

import (
	"net/http"
	"strconv"
	"testing"
	"time"

	"healthcloud/internal/core"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/metering"
	"healthcloud/internal/store"
)

// retryAfterAtLeast1 asserts a rejection carries a usable integer
// Retry-After header.
func retryAfterAtLeast1(t *testing.T, resp *http.Response) {
	t.Helper()
	n, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || n < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
}

// TestAdmissionRateLimit429 pins the token-bucket surface: with a tiny
// default quota the tenant's burst is admitted, the next request gets
// 429 + Retry-After, and a metered quota upgrade takes effect without a
// restart.
func TestAdmissionRateLimit429(t *testing.T) {
	f := newAPIWith(t, func(cfg *core.Config) {
		cfg.Admission = true
		cfg.AdmissionRate = 1
		cfg.AdmissionBurst = 3
	})
	allowed, limited := 0, 0
	var last *http.Response
	for i := 0; i < 4; i++ {
		last = f.doRaw(t, "GET", "/api/v1/billing", f.admin)
		switch last.StatusCode {
		case http.StatusOK:
			allowed++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("request %d: unexpected status %d", i, last.StatusCode)
		}
	}
	if allowed != 3 || limited != 1 {
		t.Fatalf("allowed/limited = %d/%d, want 3/1", allowed, limited)
	}
	retryAfterAtLeast1(t, last)

	// Plan upgrade through metering: the quota refreshes the live bucket
	// (no restart, no new bucket). The first admission applies the new
	// rate — earned tokens are never backdated — so refill accrues at
	// 1000/s from that point on.
	f.p.Meter.SetQuota("mercy-health", metering.Quota{PerSec: 1000, Burst: 1000})
	f.doRaw(t, "GET", "/api/v1/billing", f.admin) // applies the new rate
	time.Sleep(20 * time.Millisecond)             // accrue a few tokens at 1000/s
	if resp := f.doRaw(t, "GET", "/api/v1/billing", f.admin); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after quota upgrade = %d, want 200", resp.StatusCode)
	}

	// Unguarded operational routes never spend quota.
	if resp := f.doRaw(t, "GET", "/api/v1/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under rate limit = %d, want 200", resp.StatusCode)
	}
}

// TestAdmissionShedsBulkKeepsCritical pins the priority-class contract:
// with the ingest backlog over the bulk shed line, uploads answer 503 +
// Retry-After while consent changes (critical) and interactive reads
// (normal, deeper limit) keep landing.
func TestAdmissionShedsBulkKeepsCritical(t *testing.T) {
	f := newAPIWith(t, func(cfg *core.Config) {
		cfg.Admission = true
		cfg.AdmissionRate = 1e6 // buckets out of the way: this test is about shedding
		cfg.ShedBulkDepth = 4
		cfg.ShedNormalDepth = 1000
	})
	// Build a real backlog: slow the lake down and enqueue well past the
	// bulk limit (directly through the pipeline — the HTTP path would
	// start shedding at depth 4 and never let the queue grow).
	f.p.Lake.(*store.DataLake).SetServiceTime(20 * time.Millisecond)
	key, err := f.p.Ingest.RegisterClient("flood-device")
	if err != nil {
		t.Fatal(err)
	}
	bundle := fhir.NewBundle("collection")
	if err := bundle.AddResource(&fhir.Patient{ResourceType: "Patient", ID: "patient-flood", Gender: "other"}); err != nil {
		t.Fatal(err)
	}
	f.p.Consents.Grant("patient-flood", "study-x", "research", 0)
	raw, err := fhir.Marshal(bundle)
	if err != nil {
		t.Fatal(err)
	}
	encrypted, err := hckrypto.EncryptGCM(key, raw, []byte("flood-device"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := f.p.Ingest.Upload("flood-device", "study-x", encrypted); err != nil {
			t.Fatal(err)
		}
	}
	if depth := f.p.Ingest.QueueDepth(); depth < 4 {
		t.Fatalf("backlog %d below the shed line, fixture broken", depth)
	}

	// Bulk: shed with 503 + Retry-After.
	req, _ := http.NewRequest("POST", f.srv.URL+"/api/v1/uploads?client=flood-device&group=study-x", nil)
	req.Header.Set("Authorization", "Bearer "+f.admin)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("bulk upload over shed line = %d, want 503", resp.StatusCode)
	}
	retryAfterAtLeast1(t, resp)

	// Critical: consent grant and revocation land despite the backlog.
	status, _ := f.do(t, "POST", "/api/v1/consents", f.admin,
		[]byte(`{"patient":"patient-9","group":"study-x"}`))
	if status != http.StatusCreated {
		t.Fatalf("consent grant during shedding = %d, want 201", status)
	}
	status, body := f.do(t, "DELETE", "/api/v1/consents?patient=patient-9&group=study-x", f.admin, nil)
	if status != http.StatusOK {
		t.Fatalf("consent revoke during shedding = %d, want 200", status)
	}
	if n, ok := body["revoked"].(float64); !ok || n < 1 {
		t.Fatalf("revoke response = %v, want revoked >= 1", body)
	}
	if err := f.p.Consents.Check("patient-9", "study-x", "research"); err == nil {
		t.Fatal("consent still active after revocation")
	}

	// Normal: deeper limit, still admitted at this backlog.
	if resp := f.doRaw(t, "GET", "/api/v1/billing", f.admin); resp.StatusCode != http.StatusOK {
		t.Fatalf("normal read during bulk shedding = %d, want 200", resp.StatusCode)
	}
}

// TestConsentRevokeRoute pins the new DELETE surface's validation.
func TestConsentRevokeRoute(t *testing.T) {
	f := newAPI(t)
	status, _ := f.do(t, "DELETE", "/api/v1/consents", f.admin, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("revoke without params = %d, want 400", status)
	}
	status, _ = f.do(t, "DELETE", "/api/v1/consents?patient=p&group=g&purpose=bogus", f.admin, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("revoke with bogus purpose = %d, want 400", status)
	}
	// Revoking a consent that was never granted is a 200 with revoked=0:
	// the end state (no consent) holds either way.
	status, body := f.do(t, "DELETE", "/api/v1/consents?patient=p&group=g", f.admin, nil)
	if status != http.StatusOK {
		t.Fatalf("revoke of absent consent = %d, want 200", status)
	}
	if n, ok := body["revoked"].(float64); !ok || n != 0 {
		t.Fatalf("revoked = %v, want 0", body["revoked"])
	}
}

// TestAdmissionOffByteIdentical asserts the default-off contract: no
// admission flag means no 429/503-shed statuses and no admission
// metrics, exactly the pre-subsystem surface.
func TestAdmissionOffByteIdentical(t *testing.T) {
	f := newAPI(t)
	for i := 0; i < 50; i++ {
		if resp := f.doRaw(t, "GET", "/api/v1/billing", f.admin); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d with admission off = %d, want 200", i, resp.StatusCode)
		}
	}
	if f.p.Admission != nil {
		t.Fatal("admission controller built without Config.Admission")
	}
}
