// Package httpapi exposes the platform as HTTPS (REST) interfaces
// (§III-A: "We provide HTTPS (REST) interfaces to our system. Users
// access our system as Web services.") with the API-management behaviour
// of §II-B: "The API management system first authenticates the user
// requesting the APIs, and once successfully authenticated, it consults
// the Privacy Management system and allows API access accordingly."
//
// Authentication: clients log in with a federated identity token
// (internal/rbac.IdentityToken) and receive an opaque bearer session
// token. Every data route then runs authenticate → RBAC check → handler.
package httpapi

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"healthcloud/internal/admission"
	"healthcloud/internal/audit"
	"healthcloud/internal/consent"
	"healthcloud/internal/core"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/ingest"
	"healthcloud/internal/kb"
	"healthcloud/internal/monitor"
	"healthcloud/internal/rbac"
	"healthcloud/internal/resilience"
	"healthcloud/internal/services"
	"healthcloud/internal/telemetry"
)

// Server is the REST front end over a platform instance.
type Server struct {
	p          *core.Platform
	mux        *http.ServeMux
	reqTimeout time.Duration

	mu       sync.RWMutex
	sessions map[string]string // bearer token -> user id
}

// Option configures the server.
type Option func(*Server)

// WithRequestTimeout bounds each guarded request: handlers see a context
// that expires after d (default 10s).
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// New builds the server and its routes.
func New(p *core.Platform, opts ...Option) *Server {
	s := &Server{p: p, mux: http.NewServeMux(), sessions: make(map[string]string),
		reqTimeout: 10 * time.Second}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST /api/v1/login", s.handleLogin)
	s.mux.HandleFunc("GET /api/v1/healthz", s.handleHealth)
	// Admission classes per route: ingest-side writes are bulk (first to
	// shed under load), interactive reads are normal, and consent changes
	// are critical — a revocation must land even while bulk ingest is
	// being refused, or the platform keeps using data it no longer has
	// consent for. healthz/readyz/metrics are unguarded and never shed.
	s.mux.HandleFunc("POST /api/v1/clients", s.guard("ingest", rbac.ActionWrite, admission.ClassBulk, s.handleRegisterClient))
	s.mux.HandleFunc("POST /api/v1/uploads", s.guard("ingest", rbac.ActionWrite, admission.ClassBulk, s.handleUpload))
	s.mux.HandleFunc("GET /api/v1/uploads/{id}", s.guard("ingest", rbac.ActionWrite, admission.ClassNormal, s.handleUploadStatus))
	s.mux.HandleFunc("GET /api/v1/kb/{key}", s.guard("services", rbac.ActionRead, admission.ClassNormal, s.handleKB))
	s.mux.HandleFunc("GET /api/v1/models/{name}", s.guard("models", rbac.ActionRead, admission.ClassNormal, s.handleModel))
	s.mux.HandleFunc("GET /api/v1/exports/anonymized", s.guard("exports", rbac.ActionRead, admission.ClassNormal, s.handleExportAnonymized))
	s.mux.HandleFunc("GET /api/v1/audit", s.guard("logs", rbac.ActionRead, admission.ClassNormal, s.handleAudit))
	s.mux.HandleFunc("POST /api/v1/consents", s.guard("phi", rbac.ActionWrite, admission.ClassCritical, s.handleGrantConsent))
	s.mux.HandleFunc("DELETE /api/v1/consents", s.guard("phi", rbac.ActionWrite, admission.ClassCritical, s.handleRevokeConsent))
	s.mux.HandleFunc("GET /api/v1/services/{capability}", s.guard("services", rbac.ActionRead, admission.ClassNormal, s.handleServices))
	s.mux.HandleFunc("GET /api/v1/facts", s.guard("services", rbac.ActionRead, admission.ClassNormal, s.handleFacts))
	s.mux.HandleFunc("GET /api/v1/billing", s.guard("logs", rbac.ActionRead, admission.ClassNormal, s.handleBilling))
	// Observability endpoints (operational, like healthz): Prometheus
	// text exposition and per-trace span dumps. Both 404 when the
	// platform runs without telemetry.
	s.mux.Handle("GET /metrics", telemetry.MetricsHandler(p.Telemetry.Registry()))
	s.mux.Handle("GET /traces/{id}", telemetry.TraceHandler(p.Telemetry.Spans()))
	// Go 1.22 routing: the literal pattern wins over /traces/{id}.
	s.mux.Handle("GET /traces/summary", telemetry.TraceSummaryHandler(p.Telemetry.Spans()))
	// Self-monitoring endpoints: dependency-aware readiness (degraded vs
	// down with per-component detail), the operator status page, and the
	// metrics history ring. /metrics/history 404s when monitoring is
	// off; /readyz and /statusz fall back to an everything-ok view so
	// orchestrators probing a monitorless instance still get a 200.
	s.mux.Handle("GET /readyz", monitor.ReadyzHandler(p.Monitor.Prober()))
	s.mux.Handle("GET /statusz", monitor.StatuszHandler(p.Monitor.Prober(), s.evaluations))
	s.mux.Handle("GET /metrics/history", monitor.HistoryHandler(p.Monitor.History()))
	return s
}

// evaluations exposes the monitor's SLO verdicts to /statusz (empty
// when monitoring is disabled).
func (s *Server) evaluations() []monitor.Evaluation {
	return s.p.Monitor.Evaluator().Evaluate()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var _ http.Handler = (*Server)(nil)

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// handleLogin exchanges a federated identity token for a session token.
func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var tok rbac.IdentityToken
	if err := json.NewDecoder(r.Body).Decode(&tok); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"malformed token"})
		return
	}
	userID, err := s.p.RBAC.Authenticate(&tok, time.Now())
	if err != nil {
		writeJSON(w, http.StatusUnauthorized, errorBody{err.Error()})
		return
	}
	session := hckrypto.NewUUID()
	s.mu.Lock()
	s.sessions[session] = userID
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"token": session, "user": userID})
}

// handleHealth is the legacy liveness route. It now derives its verdict
// from the same prober as /readyz so the two can never disagree: same
// overall state, same status code policy (200 unless a dependency is
// down), same cached report (fresh probe rounds only when the watchdog
// hasn't refreshed it recently). Without monitoring the prober is nil
// and reports ok, which is exactly the old static behavior.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rep := s.p.Monitor.Prober().Cached()
	status := http.StatusOK
	if !rep.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"status":     rep.Overall.String(),
		"components": s.p.Components(),
	})
}

// authenticate resolves the bearer token to a user.
func (s *Server) authenticate(r *http.Request) (string, error) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) {
		return "", errors.New("missing bearer token")
	}
	s.mu.RLock()
	user, ok := s.sessions[strings.TrimPrefix(h, prefix)]
	s.mu.RUnlock()
	if !ok {
		return "", errors.New("invalid session")
	}
	return user, nil
}

// guard wraps a handler with authenticate → RBAC (§II-B API management)
// and bounds the request with a per-request timeout context so a stalled
// backend cannot pin the connection forever. With telemetry enabled it
// also times the request on a per-route histogram and opens a root span
// handlers can continue (via telemetry.SpanFromContext).
func (s *Server) guard(resource string, action rbac.Action, class admission.Class, next func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	// Metric handles are created once per route at wiring time so the
	// request path pays only nil checks and atomics.
	var reqs *telemetry.Counter
	var hist *telemetry.Histogram
	if reg := s.p.Telemetry.Registry(); reg != nil {
		label := fmt.Sprintf("{route=%q}", resource+":"+string(action))
		reqs = reg.Counter("http_requests_total" + label)
		hist = reg.Histogram("http_request_seconds" + label)
	}
	tracer := s.p.Telemetry.Spans()
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := hist.Start()
		sp := tracer.StartRoot("http." + resource)
		sc := sp.Context()
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		defer func() {
			sp.End()
			// The handler has returned: the request's trace is over.
			tracer.FinishTrace(sc.TraceID)
			hist.ObserveSinceTrace(start, sc.TraceID)
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(telemetry.ContextWithSpan(ctx, sc))
		user, err := s.authenticate(r)
		if err != nil {
			sp.SetAttr("outcome", "unauthenticated")
			writeJSON(w, http.StatusUnauthorized, errorBody{err.Error()})
			return
		}
		scope := rbac.Scope{Tenant: s.tenant(), Org: r.URL.Query().Get("org"), Group: r.URL.Query().Get("group")}
		if err := s.p.CheckAccess(user, action, resource, scope, r.URL.Query().Get("env")); err != nil {
			sp.SetAttr("outcome", "forbidden")
			writeJSON(w, http.StatusForbidden, errorBody{err.Error()})
			return
		}
		// Admission after authn/authz so only authorized traffic spends
		// quota: 429 when the tenant's token bucket is empty, 503 when the
		// ingest backlog crossed this class's shed line, both with the
		// honest Retry-After (time to next token / estimated drain time).
		// A nil controller (admission off) admits everything.
		if d := s.p.Admission.Admit(s.tenant(), class); !d.Allowed {
			status := http.StatusServiceUnavailable
			if d.Reason == admission.ReasonRateLimit {
				status = http.StatusTooManyRequests
			}
			sp.SetAttr("outcome", d.Reason)
			w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfterSeconds()))
			writeJSON(w, status, errorBody{d.Err().Error()})
			return
		}
		next(w, r, user)
	}
}

func (s *Server) tenant() string {
	// One instance serves one tenant; the RBAC system was seeded with it.
	return s.p.KMS.Tenant()
}

// handleRegisterClient issues an enhanced client its shared key.
func (s *Server) handleRegisterClient(w http.ResponseWriter, r *http.Request, _ string) {
	var body struct {
		ClientID string `json:"client_id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.ClientID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"client_id required"})
		return
	}
	key, err := s.p.Ingest.RegisterClient(body.ClientID)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{
		"client_id": body.ClientID,
		"key":       base64.StdEncoding.EncodeToString(key),
	})
}

// handleUpload accepts an encrypted bundle; responds with the status URL.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request, _ string) {
	clientID := r.URL.Query().Get("client")
	group := r.URL.Query().Get("group")
	if clientID == "" || group == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"client and group query params required"})
		return
	}
	encrypted, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil || len(encrypted) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"empty body"})
		return
	}
	id, err := s.p.Ingest.Upload(clientID, group, encrypted)
	if err != nil {
		// An unregistered client is the caller's mistake; anything else
		// (staging or lake trouble) is transient server-side load, so
		// answer 503 + Retry-After and let the client resubmit — the
		// bundle was not accepted, nothing is half-ingested. The hint is
		// the measured drain estimate (queue depth ÷ observed service
		// rate, clamped to [1s, 30s]), the same one the shedding path
		// answers with; with nothing observed yet it degrades to the old
		// static "1".
		if !errors.Is(err, ingest.ErrUnknownClient) {
			w.Header().Set("Retry-After", strconv.Itoa(s.p.DrainEst.RetryAfterSeconds()))
			writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{
		"upload_id":  id,
		"status_url": "/api/v1/uploads/" + id,
	})
}

func (s *Server) handleUploadStatus(w http.ResponseWriter, r *http.Request, _ string) {
	st, err := s.p.Ingest.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleKB(w http.ResponseWriter, r *http.Request, _ string) {
	breaker := s.p.KBResilient.Breaker()
	// Continue the request's root span into the cache tiers, so a trace
	// shows whether the read hit a tier or paid the origin WAN cost.
	v, err := s.p.KBCache.GetCtx(r.PathValue("key"), telemetry.SpanFromContext(r.Context()))
	if err != nil {
		// Circuit open with nothing stale to degrade to: tell the client
		// when to come back instead of a generic failure.
		if errors.Is(err, kb.ErrDegraded) || errors.Is(err, resilience.ErrOpen) {
			retryAfter := int(breaker.RetryAfter().Round(time.Second) / time.Second)
			if retryAfter < 1 {
				retryAfter = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	if breaker.State() != resilience.Closed {
		// The origin is (or was just) unreachable, so this value came
		// from a cache tier or the stale last-known-good store: flag it
		// so clients can treat it as possibly outdated.
		w.Header().Set("Warning", `110 healthcloud "response is stale"`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(v)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request, _ string) {
	payload, err := s.p.Analytics.PushPayload(r.PathValue("name"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

func (s *Server) handleExportAnonymized(w http.ResponseWriter, r *http.Request, user string) {
	group := r.URL.Query().Get("group")
	if group == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"group required"})
		return
	}
	recs, err := s.p.Ingest.ExportAnonymized(group, user)
	if err != nil {
		writeJSON(w, http.StatusForbidden, errorBody{err.Error()})
		return
	}
	s.p.Meter.Record(s.tenant(), "export", float64(len(recs)), time.Now())
	writeJSON(w, http.StatusOK, recs)
}

// handleBilling returns the tenant's statement for the trailing 30 days
// (§II-B metering and billing).
func (s *Server) handleBilling(w http.ResponseWriter, _ *http.Request, _ string) {
	now := time.Now().UTC()
	bill := s.p.Meter.BillFor(s.tenant(), now.Add(-30*24*time.Hour), now.Add(time.Second))
	writeJSON(w, http.StatusOK, bill)
}

// handleServices lists providers of a capability with their observed
// stats and the current best pick (§III service brokerage).
func (s *Server) handleServices(w http.ResponseWriter, r *http.Request, _ string) {
	capability := services.Capability(r.PathValue("capability"))
	names := s.p.Services.Providers(capability)
	if len(names) == 0 {
		writeJSON(w, http.StatusNotFound, errorBody{"no providers for capability"})
		return
	}
	type row struct {
		Name         string  `json:"name"`
		MeanLatencyM float64 `json:"mean_latency_ms"`
		Availability float64 `json:"availability"`
		Accuracy     float64 `json:"measured_accuracy"`
		UserRating   float64 `json:"user_rating"`
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		st, err := s.p.Services.StatsFor(name)
		if err != nil {
			continue
		}
		rows = append(rows, row{
			Name:         name,
			MeanLatencyM: float64(st.MeanLatency().Microseconds()) / 1000,
			Availability: st.Availability(),
			Accuracy:     st.MeasuredAccuracy(),
			UserRating:   st.UserRating(),
		})
	}
	best, err := s.p.Services.Best(capability, services.Criteria{})
	resp := map[string]any{"providers": rows}
	if err == nil {
		resp["best"] = best
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFacts runs text extraction over the PubMed-style corpus and
// returns mined drug–disease co-occurrence facts.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request, _ string) {
	minSupport := 2
	if v := r.URL.Query().Get("min_support"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorBody{"min_support must be a positive integer"})
			return
		}
		minSupport = n
	}
	facts := s.p.MineFacts(300, minSupport)
	if len(facts) > 50 {
		facts = facts[:50]
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(facts), "facts": facts})
}

// handleGrantConsent records a patient's consent of their data to a
// study group (§II-B consent management).
func (s *Server) handleGrantConsent(w http.ResponseWriter, r *http.Request, _ string) {
	var body struct {
		Patient string `json:"patient"`
		Group   string `json:"group"`
		Purpose string `json:"purpose"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil ||
		body.Patient == "" || body.Group == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"patient and group required"})
		return
	}
	purpose := consent.Purpose(body.Purpose)
	switch purpose {
	case "":
		purpose = consent.PurposeResearch
	case consent.PurposeResearch, consent.PurposeExport, consent.PurposeTreatment:
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{"unknown purpose"})
		return
	}
	s.p.Consents.Grant(body.Patient, body.Group, purpose, 0)
	writeJSON(w, http.StatusCreated, map[string]string{
		"patient": body.Patient, "group": body.Group, "purpose": string(purpose),
	})
}

// handleRevokeConsent withdraws a patient's consent from a study group.
// It is ClassCritical on purpose: a revocation arriving during overload
// must not queue behind the bulk ingest being shed — GDPR/HIPAA
// withdrawal is only meaningful if it takes effect promptly.
func (s *Server) handleRevokeConsent(w http.ResponseWriter, r *http.Request, _ string) {
	q := r.URL.Query()
	patient, group := q.Get("patient"), q.Get("group")
	if patient == "" || group == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{"patient and group query params required"})
		return
	}
	purpose := consent.Purpose(q.Get("purpose"))
	switch purpose {
	case "":
		purpose = consent.PurposeResearch
	case consent.PurposeResearch, consent.PurposeExport, consent.PurposeTreatment:
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{"unknown purpose"})
		return
	}
	revoked := s.p.Consents.Revoke(patient, group, purpose)
	writeJSON(w, http.StatusOK, map[string]any{
		"patient": patient, "group": group, "purpose": string(purpose),
		"revoked": revoked,
	})
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request, _ string) {
	q := r.URL.Query()
	events := s.p.Audit.Find(audit.Query{
		Service: q.Get("service"),
		Action:  q.Get("action"),
		Actor:   q.Get("actor"),
	})
	writeJSON(w, http.StatusOK, map[string]any{"count": len(events), "events": events})
}
