package client

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"healthcloud/internal/analytics"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hckrypto"
)

// fakeServer implements Server, decrypting uploads so tests can inspect
// what actually left the client.
type fakeServer struct {
	mu       sync.Mutex
	key      hckrypto.SymmetricKey
	uploads  []string // decrypted payloads
	kbCalls  int
	failNext bool
	model    []byte
}

func (f *fakeServer) Upload(clientID, group string, encrypted []byte) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext {
		f.failNext = false
		return "", errors.New("boom")
	}
	pt, err := hckrypto.DecryptGCM(f.key, encrypted, []byte(clientID))
	if err != nil {
		return "", err
	}
	f.uploads = append(f.uploads, string(pt))
	return fmt.Sprintf("upload-%d", len(f.uploads)), nil
}

func (f *fakeServer) FetchKB(key string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kbCalls++
	if key == "missing" {
		return nil, errors.New("not found")
	}
	return []byte("kb:" + key), nil
}

func (f *fakeServer) PullModel(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.model == nil {
		return nil, errors.New("no deployed model")
	}
	return f.model, nil
}

func newFixture(t *testing.T) (*Client, *fakeServer) {
	t.Helper()
	key, err := hckrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	srv := &fakeServer{key: key}
	c, err := New("device-1", key, srv, 32)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func sampleBundle(t *testing.T) *fhir.Bundle {
	t.Helper()
	b := fhir.NewBundle("collection")
	if err := b.AddResource(&fhir.Patient{
		ResourceType: "Patient", ID: "p1",
		Name:   []fhir.HumanName{{Family: "Doe"}},
		Gender: "female", BirthDate: "1980-04-02",
		Telecom: []fhir.Telecom{{System: "phone", Value: "914-555-1234"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddResource(&fhir.Observation{
		ResourceType: "Observation", Status: "final",
		Code:          fhir.CodeableConcept{Text: "HbA1c"},
		ValueQuantity: &fhir.Quantity{Value: 7.0},
	}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	key, _ := hckrypto.NewSymmetricKey()
	if _, err := New("id", key, nil, 8); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := New("id", key, &fakeServer{}, 0); err == nil {
		t.Error("zero cache size accepted")
	}
}

func TestCaptureOnlineEncrypted(t *testing.T) {
	c, srv := newFixture(t)
	id, err := c.Capture(sampleBundle(t), "study-1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if id != "upload-1" {
		t.Errorf("id = %q", id)
	}
	if len(srv.uploads) != 1 || !strings.Contains(srv.uploads[0], "Doe") {
		t.Errorf("server saw %v", srv.uploads)
	}
	if got := c.Uploads(); len(got) != 1 || got[0] != "upload-1" {
		t.Errorf("Uploads = %v", got)
	}
}

func TestCaptureWireFormatIsCiphertext(t *testing.T) {
	// Spy on the raw bytes before the fake server decrypts them.
	key, _ := hckrypto.NewSymmetricKey()
	var wire []byte
	srv := &spyServer{fakeServer: &fakeServer{key: key}, wire: &wire}
	c, err := New("device-1", key, srv, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Capture(sampleBundle(t), "g", Options{}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(wire, []byte("Doe")) || bytes.Contains(wire, []byte("914-555")) {
		t.Error("PHI visible on the wire")
	}
}

type spyServer struct {
	*fakeServer
	wire *[]byte
}

func (s *spyServer) Upload(clientID, group string, encrypted []byte) (string, error) {
	*s.wire = append([]byte(nil), encrypted...)
	return s.fakeServer.Upload(clientID, group, encrypted)
}

func TestCaptureDeidentifies(t *testing.T) {
	c, srv := newFixture(t)
	if _, err := c.Capture(sampleBundle(t), "study-1", Options{Deidentify: true}); err != nil {
		t.Fatal(err)
	}
	got := srv.uploads[0]
	for _, phi := range []string{"Doe", "914-555", "1980-04-02"} {
		if strings.Contains(got, phi) {
			t.Errorf("de-identified capture leaked %q", phi)
		}
	}
	if !strings.Contains(got, "HbA1c") {
		t.Error("observation lost in client-side de-identification")
	}
}

func TestCaptureValidation(t *testing.T) {
	c, _ := newFixture(t)
	if _, err := c.Capture(nil, "g", Options{}); !errors.Is(err, ErrNoBundle) {
		t.Errorf("nil bundle: %v", err)
	}
	if _, err := c.Capture(fhir.NewBundle("collection"), "g", Options{}); !errors.Is(err, ErrNoBundle) {
		t.Errorf("empty bundle: %v", err)
	}
}

func TestOfflineQueueAndSync(t *testing.T) {
	c, srv := newFixture(t)
	c.SetOnline(false)
	for i := 0; i < 3; i++ {
		id, err := c.Capture(sampleBundle(t), "study-1", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			t.Errorf("offline capture returned id %q", id)
		}
	}
	if c.Pending() != 3 {
		t.Fatalf("pending = %d", c.Pending())
	}
	if len(srv.uploads) != 0 {
		t.Fatal("offline captures reached the server")
	}
	// Sync while offline fails.
	if _, err := c.Sync(); !errors.Is(err, ErrOffline) {
		t.Errorf("offline sync: %v", err)
	}
	c.SetOnline(true)
	n, err := c.Sync()
	if err != nil || n != 3 {
		t.Fatalf("Sync = %d, %v", n, err)
	}
	if c.Pending() != 0 || len(srv.uploads) != 3 {
		t.Errorf("pending=%d uploads=%d", c.Pending(), len(srv.uploads))
	}
}

func TestSyncPartialFailureRetains(t *testing.T) {
	c, srv := newFixture(t)
	c.SetOnline(false)
	c.Capture(sampleBundle(t), "g", Options{})
	c.Capture(sampleBundle(t), "g", Options{})
	c.SetOnline(true)
	srv.failNext = true
	n, err := c.Sync()
	if err == nil {
		t.Fatal("sync with failing server succeeded")
	}
	if n != 0 || c.Pending() != 2 {
		t.Errorf("n=%d pending=%d, want retained queue", n, c.Pending())
	}
	if n2, err := c.Sync(); err != nil || n2 != 2 {
		t.Errorf("retry sync = %d, %v", n2, err)
	}
}

func TestUploadFailureFallsBackToQueue(t *testing.T) {
	c, srv := newFixture(t)
	srv.failNext = true
	id, err := c.Capture(sampleBundle(t), "g", Options{})
	if err != nil {
		t.Fatalf("capture should queue on network failure: %v", err)
	}
	if id != "" || c.Pending() != 1 {
		t.Errorf("id=%q pending=%d", id, c.Pending())
	}
}

func TestQueryKBCaches(t *testing.T) {
	c, srv := newFixture(t)
	for i := 0; i < 5; i++ {
		v, err := c.QueryKB("gene:BRCA1")
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != "kb:gene:BRCA1" {
			t.Errorf("value = %q", v)
		}
	}
	if srv.kbCalls != 1 {
		t.Errorf("server calls = %d, want 1", srv.kbCalls)
	}
	stats := c.CacheStats()
	if stats.Hits != 4 {
		t.Errorf("cache hits = %d", stats.Hits)
	}
}

func TestQueryKBOffline(t *testing.T) {
	c, _ := newFixture(t)
	// Warm one key.
	if _, err := c.QueryKB("gene:BRCA1"); err != nil {
		t.Fatal(err)
	}
	c.SetOnline(false)
	// Cached key still served offline.
	if _, err := c.QueryKB("gene:BRCA1"); err != nil {
		t.Errorf("cached read offline: %v", err)
	}
	// Uncached key fails with ErrOffline.
	if _, err := c.QueryKB("gene:TP53"); !errors.Is(err, ErrOffline) {
		t.Errorf("uncached offline read: %v", err)
	}
}

func TestModelInstallAndPredictOffline(t *testing.T) {
	c, srv := newFixture(t)
	m := &analytics.LinearModel{Name: "hba1c", Bias: 6, Weights: map[string]float64{"metformin": -1.2}}
	payload, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	srv.model = payload
	if err := c.InstallModel("hba1c"); err != nil {
		t.Fatal(err)
	}
	c.SetOnline(false) // prediction is local
	got, err := c.Predict("hba1c", map[string]float64{"metformin": 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4.8 {
		t.Errorf("Predict = %f", got)
	}
	if names := c.InstalledModels(); len(names) != 1 || names[0] != "hba1c" {
		t.Errorf("InstalledModels = %v", names)
	}
}

func TestModelErrors(t *testing.T) {
	c, srv := newFixture(t)
	if _, err := c.Predict("ghost", nil); !errors.Is(err, ErrNoModel) {
		t.Errorf("Predict ghost: %v", err)
	}
	if err := c.InstallModel("ghost"); err == nil {
		t.Error("install with no deployed model succeeded")
	}
	srv.model = []byte("{bad json")
	if err := c.InstallModel("bad"); err == nil {
		t.Error("malformed model accepted")
	}
	c.SetOnline(false)
	if err := c.InstallModel("hba1c"); !errors.Is(err, ErrOffline) {
		t.Errorf("offline install: %v", err)
	}
}
