// Package client is the enhanced-client SDK of §I/§III-A and Fig 4: the
// piece of the platform that runs on user machines and mobile devices.
// It provides exactly the features the paper enumerates — "these
// enhanced clients provide features such as caching, data analytics, and
// encryption" — plus the privacy behaviour of §IV-C ("the enhanced
// client can anonymize the data it is sending to the system") and
// disconnected operation ("clients can also perform processing and
// analysis while disconnected from servers"):
//
//   - client-side cache in front of server/KB reads;
//   - client-side de-identification before anything leaves the device;
//   - client-side encryption under the registration shared key;
//   - an offline capture queue that syncs on reconnect;
//   - local execution of platform-approved models pushed to the edge.
package client

import (
	"errors"
	"fmt"
	"sync"

	"healthcloud/internal/analytics"
	"healthcloud/internal/anonymize"
	"healthcloud/internal/fhir"
	"healthcloud/internal/hccache"
	"healthcloud/internal/hckrypto"
)

// Server is the platform surface the enhanced client talks to.
type Server interface {
	// Upload submits a client-encrypted bundle for asynchronous ingestion
	// and returns the upload (status) ID.
	Upload(clientID, group string, encrypted []byte) (string, error)
	// FetchKB reads a knowledge-base key server-side.
	FetchKB(key string) ([]byte, error)
	// PullModel returns the deployed payload of an approved model.
	PullModel(name string) ([]byte, error)
}

// Errors returned by this package.
var (
	ErrOffline  = errors.New("client: offline and not cached locally")
	ErrNoModel  = errors.New("client: model not installed")
	ErrNoBundle = errors.New("client: empty bundle")
)

// Options configures a capture.
type Options struct {
	// Deidentify strips direct identifiers at the client before
	// encryption, so PHI never leaves the device (§IV-C).
	Deidentify bool
}

// Client is one enhanced client instance. Construct with New.
type Client struct {
	id     string
	key    hckrypto.SymmetricKey
	server Server
	cache  *hccache.Cache

	mu      sync.Mutex
	online  bool
	queue   []queuedUpload
	models  map[string]*analytics.LinearModel
	uploads []string // upload IDs returned by the server
}

type queuedUpload struct {
	group     string
	encrypted []byte
}

// New creates a client with the shared key issued at registration.
func New(id string, key hckrypto.SymmetricKey, server Server, cacheSize int) (*Client, error) {
	if server == nil {
		return nil, errors.New("client: server required")
	}
	cache, err := hccache.New(cacheSize, 0)
	if err != nil {
		return nil, err
	}
	return &Client{
		id: id, key: append(hckrypto.SymmetricKey(nil), key...),
		server: server, cache: cache, online: true,
		models: make(map[string]*analytics.LinearModel),
	}, nil
}

// SetOnline toggles connectivity (disconnected operation support).
func (c *Client) SetOnline(online bool) {
	c.mu.Lock()
	c.online = online
	c.mu.Unlock()
}

// Online reports connectivity.
func (c *Client) Online() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.online
}

// Capture encrypts a bundle (optionally de-identifying it first) and
// either uploads it immediately or queues it for the next Sync. The
// plaintext never persists on the client beyond this call. It returns
// the upload ID when sent immediately, or "" when queued.
func (c *Client) Capture(b *fhir.Bundle, group string, opts Options) (string, error) {
	if b == nil || len(b.Entry) == 0 {
		return "", ErrNoBundle
	}
	prepared := b
	if opts.Deidentify {
		deid, err := deidentifyBundle(b)
		if err != nil {
			return "", fmt.Errorf("client: de-identify: %w", err)
		}
		prepared = deid
	}
	raw, err := fhir.Marshal(prepared)
	if err != nil {
		return "", fmt.Errorf("client: marshal: %w", err)
	}
	encrypted, err := hckrypto.EncryptGCM(c.key, raw, []byte(c.id))
	if err != nil {
		return "", fmt.Errorf("client: encrypt: %w", err)
	}
	c.mu.Lock()
	online := c.online
	if !online {
		c.queue = append(c.queue, queuedUpload{group: group, encrypted: encrypted})
		c.mu.Unlock()
		return "", nil
	}
	c.mu.Unlock()
	id, err := c.server.Upload(c.id, group, encrypted)
	if err != nil {
		// Network failure: keep the capture, deliver on next Sync.
		c.mu.Lock()
		c.queue = append(c.queue, queuedUpload{group: group, encrypted: encrypted})
		c.mu.Unlock()
		return "", nil
	}
	c.mu.Lock()
	c.uploads = append(c.uploads, id)
	c.mu.Unlock()
	return id, nil
}

// Pending returns the number of captures waiting for Sync.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Uploads returns the IDs of successfully submitted uploads.
func (c *Client) Uploads() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.uploads...)
}

// Sync flushes the offline queue. It returns how many captures were
// delivered; delivery stops at the first failure, retaining the rest.
func (c *Client) Sync() (int, error) {
	c.mu.Lock()
	if !c.online {
		c.mu.Unlock()
		return 0, ErrOffline
	}
	pending := c.queue
	c.queue = nil
	c.mu.Unlock()
	for i, q := range pending {
		id, err := c.server.Upload(c.id, q.group, q.encrypted)
		if err != nil {
			c.mu.Lock()
			c.queue = append(pending[i:], c.queue...)
			c.mu.Unlock()
			return i, fmt.Errorf("client: sync: %w", err)
		}
		c.mu.Lock()
		c.uploads = append(c.uploads, id)
		c.mu.Unlock()
	}
	return len(pending), nil
}

// QueryKB reads a knowledge-base key, serving from the client cache when
// possible. Offline misses return ErrOffline.
func (c *Client) QueryKB(key string) ([]byte, error) {
	if v, _, ok := c.cache.Get(key); ok {
		return v, nil
	}
	if !c.Online() {
		return nil, fmt.Errorf("%w: %s", ErrOffline, key)
	}
	v, err := c.server.FetchKB(key)
	if err != nil {
		return nil, fmt.Errorf("client: kb fetch: %w", err)
	}
	c.cache.Put(key, v, 1)
	return v, nil
}

// CacheStats exposes the client cache counters (E1/E2 measurements).
func (c *Client) CacheStats() hccache.Stats { return c.cache.Stats() }

// InvalidateKey drops a key from the client cache (server-push cache
// consistency, §III). It reports whether the key was cached.
func (c *Client) InvalidateKey(key string) bool { return c.cache.Invalidate(key) }

// InstallModel pulls an approved model from the platform for local
// execution.
func (c *Client) InstallModel(name string) error {
	if !c.Online() {
		return fmt.Errorf("%w: cannot pull model %s", ErrOffline, name)
	}
	payload, err := c.server.PullModel(name)
	if err != nil {
		return fmt.Errorf("client: pulling model: %w", err)
	}
	m, err := analytics.ParseLinearModel(payload)
	if err != nil {
		return fmt.Errorf("client: decoding model: %w", err)
	}
	c.mu.Lock()
	c.models[name] = m
	c.mu.Unlock()
	return nil
}

// Predict runs an installed model locally — client-side data analysis
// that works offline and keeps the features on the device.
func (c *Client) Predict(name string, features map[string]float64) (float64, error) {
	c.mu.Lock()
	m, ok := c.models[name]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoModel, name)
	}
	return m.Predict(features), nil
}

// InstalledModels lists locally available models.
func (c *Client) InstalledModels() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.models))
	for name := range c.models {
		out = append(out, name)
	}
	return out
}

// deidentifyBundle applies Safe-Harbor de-identification to every
// patient in the bundle, client-side.
func deidentifyBundle(b *fhir.Bundle) (*fhir.Bundle, error) {
	resources, err := b.Resources()
	if err != nil {
		return nil, err
	}
	out := fhir.NewBundle(b.Type)
	for _, r := range resources {
		if pt, ok := r.(*fhir.Patient); ok {
			if err := out.AddResource(anonymize.DeidentifyPatient(pt, nil)); err != nil {
				return nil, err
			}
			continue
		}
		if err := out.AddResource(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}
