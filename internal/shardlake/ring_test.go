package shardlake

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"shard-0", "shard-1", "shard-2"}, 64, 42)
	b := NewRing([]string{"shard-2", "shard-0", "shard-1"}, 64, 42) // order-insensitive
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("ref-%03d", i)
		if got, want := a.Placement(key, 2), b.Placement(key, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("placement(%s) differs between identical rings: %v vs %v", key, got, want)
		}
	}
}

func TestRingSeedChangesPlacement(t *testing.T) {
	a := NewRing([]string{"shard-0", "shard-1", "shard-2", "shard-3"}, 64, 1)
	b := NewRing([]string{"shard-0", "shard-1", "shard-2", "shard-3"}, 64, 2)
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("ref-%03d", i)
		if a.Placement(key, 1)[0] != b.Placement(key, 1)[0] {
			moved++
		}
	}
	if moved == 0 {
		t.Error("different seeds produced identical placement for all 200 keys")
	}
}

func TestRingPlacementDistinctAndClamped(t *testing.T) {
	r := NewRing([]string{"shard-0", "shard-1", "shard-2"}, 64, 7)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("ref-%03d", i)
		p := r.Placement(key, 2)
		if len(p) != 2 || p[0] == p[1] {
			t.Fatalf("placement(%s, 2) = %v, want 2 distinct shards", key, p)
		}
	}
	// n above the shard count clamps; n below 1 clamps to 1.
	if got := r.Placement("x", 10); len(got) != 3 {
		t.Errorf("over-replicated placement = %v, want all 3 shards", got)
	}
	if got := r.Placement("x", 0); len(got) != 1 {
		t.Errorf("zero-replica placement = %v, want 1 shard", got)
	}
}

func TestRingDistribution(t *testing.T) {
	shards := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	r := NewRing(shards, 64, 1907)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Placement(fmt.Sprintf("ref-%05d", i), 1)[0]]++
	}
	// With 64 vnodes each shard should land within [15%, 40%] of a
	// 4-way split — loose bounds, but a lost vnode set or a broken hash
	// lands far outside them.
	for _, s := range shards {
		frac := float64(counts[s]) / keys
		if frac < 0.15 || frac > 0.40 {
			t.Errorf("shard %s owns %.1f%% of keys, want 15%%–40%%", s, 100*frac)
		}
	}
}

func TestRingMinimalDisruptionOnJoin(t *testing.T) {
	before := NewRing([]string{"shard-0", "shard-1", "shard-2"}, 64, 1907)
	after := NewRing([]string{"shard-0", "shard-1", "shard-2", "shard-3"}, 64, 1907)
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ref-%05d", i)
		if before.Placement(key, 1)[0] != after.Placement(key, 1)[0] {
			moved++
		}
	}
	// Consistent hashing's whole point: a join moves ~1/N of the keys,
	// not all of them. Allow up to 40% (ideal is 25%).
	if frac := float64(moved) / keys; frac > 0.40 {
		t.Errorf("join moved %.1f%% of keys, want ~25%% (consistent hashing broken)", 100*frac)
	}
}
