package shardlake

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// This file adds arc accounting and a skew-corrected ring constructor.
// The legacy ring hashes its virtual-node positions with FNV-1a over
// structured names ("shard-3#17"), whose weak avalanche clusters the
// points and leaves giant unowned arcs: with a handful of nodes one of
// them routinely owns 2x its fair share of the circle, which E21
// observed as one provenance channel cutting visibly more blocks than
// its siblings. NewBalancedRing fixes both causes: points (and key
// lookups) use a full-avalanche SHA-256 position hash, and per-node
// vnode counts are then greedily reweighted to shave the residual
// statistical skew. Everything stays deterministic per (node set,
// seed). NewRing's placement is untouched: existing rings — and the
// data directories whose layout was hashed against them — keep their
// placement bit for bit.

// newRingCounts builds a ring with an explicit vnode count per shard —
// the shared core of NewRing (equal counts, legacy hash) and
// NewBalancedRing (reweighted counts, avalanche hash).
func newRingCounts(names []string, counts map[string]int, vnodes int, seed int64,
	hashFn func(int64, string) uint64) *Ring {
	r := &Ring{shards: names, vnodes: vnodes, seed: seed, hashFn: hashFn}
	total := 0
	for _, name := range names {
		total += counts[name]
	}
	r.points = make([]ringPoint, 0, total)
	for _, name := range names {
		for v := 0; v < counts[name]; v++ {
			r.points = append(r.points, ringPoint{
				hash:  r.keyHash(name + "#" + itoa(v)),
				shard: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// avalancheHash positions balanced-ring points: SHA-256 over the seed
// and name, so structurally similar names land independently.
func avalancheHash(seed int64, s string) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h := sha256.New()
	h.Write(buf[:])
	h.Write([]byte(s))
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// ArcShares reports the fraction of the hash circle each shard owns —
// the stationary distribution of Placement(·, 1) over uniform keys.
func (r *Ring) ArcShares() map[string]float64 {
	out := make(map[string]float64, len(r.shards))
	if len(r.points) == 0 {
		return out
	}
	const circle = float64(1<<63) * 2 // 2^64
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		// uint64 subtraction wraps, which is exactly the arc length
		// across the 0 point for i == 0.
		out[p.shard] += float64(p.hash-prev) / circle
	}
	return out
}

// Skew is the largest arc share relative to a fair 1/N split: 1.0 is a
// perfectly balanced ring, 1.3 means the hottest shard owns 30% more
// keyspace than its fair share.
func (r *Ring) Skew() float64 {
	shares := r.ArcShares()
	if len(shares) == 0 {
		return 1
	}
	max := 0.0
	for _, s := range shares {
		if s > max {
			max = s
		}
	}
	return max * float64(len(r.shards))
}

// NewBalancedRing builds a skew-corrected ring: avalanche-hashed point
// positions, then per-shard vnode counts greedily reweighted to
// minimize Skew — each round moves one vnode from the shard owning the
// most keyspace to the shard owning the least, and the best ring seen
// wins. Deterministic per (shard set, seed) — names are sorted and
// ties break lexically, so independent rebuilds agree, which is the
// invariant routing correctness rests on. Placement differs from
// NewRing's for the same inputs; callers with data laid out against a
// legacy ring must keep using NewRing.
func NewBalancedRing(shards []string, vnodes int, seed int64) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	names := append([]string(nil), shards...)
	sort.Strings(names)
	counts := make(map[string]int, len(names))
	for _, name := range names {
		counts[name] = vnodes
	}
	best := newRingCounts(names, counts, vnodes, seed, avalancheHash)
	if len(names) < 2 {
		return best
	}
	bestSkew := best.Skew()
	// Walk up to 64 moves per shard, always from the currently hottest
	// arc owner to the coldest, keeping the best ring seen. Individual
	// moves are noisy (the freed arc may fall to another hot shard), so
	// the walk pushes through local non-improvements instead of stopping
	// at the first one; the round cap bounds the oscillation that allows.
	cur := best
	for round := 0; round < 64*len(names) && bestSkew > 1.05; round++ {
		shares := cur.ArcShares()
		over, under := "", ""
		for _, name := range names {
			if over == "" || shares[name] > shares[over] {
				over = name
			}
			if under == "" || shares[name] < shares[under] {
				under = name
			}
		}
		if over == under || counts[over] <= 1 {
			break
		}
		counts[over]--
		counts[under]++
		cur = newRingCounts(names, counts, vnodes, seed, avalancheHash)
		if skew := cur.Skew(); skew < bestSkew {
			best, bestSkew = cur, skew
		}
	}
	return best
}

// itoa avoids strconv in the hot ring-build loop for tiny ints.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
