package shardlake

import (
	"fmt"
	"math"
	"testing"
)

func TestArcSharesSumToOne(t *testing.T) {
	r := NewRing([]string{"shard-0", "shard-1", "shard-2", "shard-3"}, 64, 1907)
	total := 0.0
	for _, s := range r.ArcShares() {
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("arc shares sum to %v, want 1", total)
	}
}

// TestBalancedRingReducesSkew is the skew bound: across a spread of
// seeds and node counts the reweighted ring never exceeds 1.25x fair
// share and never does worse than the equal-count ring it started from.
func TestBalancedRingReducesSkew(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		names := make([]string, n)
		for i := range names {
			names[i] = ShardName(i)
		}
		for seed := int64(1); seed <= 20; seed++ {
			base := NewRing(names, 64, seed).Skew()
			bal := NewBalancedRing(names, 64, seed).Skew()
			if bal > base+1e-9 {
				t.Errorf("n=%d seed=%d: balanced skew %.3f above base %.3f", n, seed, bal, base)
			}
			if bal > 1.25 {
				t.Errorf("n=%d seed=%d: balanced skew %.3f exceeds 1.25x fair share", n, seed, bal)
			}
		}
	}
}

// TestBalancedRingDeterministic pins the rebuild-agreement invariant:
// independent constructions from differently-ordered name lists place
// every key identically — same requirement NewRing carries, because a
// rebuilt ring that disagreed with the ring that placed the data would
// orphan records.
func TestBalancedRingDeterministic(t *testing.T) {
	a := NewBalancedRing([]string{"shard-0", "shard-1", "shard-2", "shard-3"}, 64, 42)
	b := NewBalancedRing([]string{"shard-3", "shard-1", "shard-0", "shard-2"}, 64, 42)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("record-%04d", i)
		if got, want := b.Placement(key, 2), a.Placement(key, 2); got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("key %s: %v vs %v across rebuilds", key, got, want)
		}
	}
}
