package shardlake

import (
	"context"
	"fmt"
	"time"

	"healthcloud/internal/resilience"
	"healthcloud/internal/store"
)

// Online rebalancing: adding or removing a shard swaps in a new ring
// and starts a background migration. While it runs, reads consult both
// the new and the old placement (plus a full-scan fallback), so every
// object stays readable mid-migration. The migrator copies each record
// to the shards the new ring demands, verifies every new target holds
// it, and only then evicts copies from shards that no longer own it —
// at no instant is an object's replica count below its pre-move value.

// AddShard attaches a new shard and rebalances onto it. One topology
// change runs at a time.
func (l *Lake) AddShard(name string, lake *store.DataLake) error {
	if lake == nil || name == "" {
		return ErrNoShards
	}
	l.mu.Lock()
	if l.rebalancing {
		l.mu.Unlock()
		return ErrRebalancing
	}
	if _, dup := l.shards[name]; dup {
		l.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDupShard, name)
	}
	l.wireShard(name, lake)
	l.shards[name] = lake
	l.startRebalanceLocked(append(l.ring.Shards(), name), "")
	l.mu.Unlock()
	return nil
}

// RemoveShard drains a shard out of the cluster: its objects migrate
// to the survivors, then it is detached. The last shard cannot leave,
// and the cluster cannot shrink below the replication factor.
func (l *Lake) RemoveShard(name string) error {
	l.mu.Lock()
	if l.rebalancing {
		l.mu.Unlock()
		return ErrRebalancing
	}
	if _, ok := l.shards[name]; !ok {
		l.mu.Unlock()
		return fmt.Errorf("shardlake: unknown shard %q", name)
	}
	if len(l.shards) <= 1 || len(l.shards)-1 < l.replicas {
		l.mu.Unlock()
		return fmt.Errorf("shardlake: cannot remove %q: %d shards must remain for R=%d", name, l.replicas, l.replicas)
	}
	if l.sealer == l.shards[name] {
		// The sealer only does coordinator crypto against the shared
		// KMS; any member can take over.
		for other, lake := range l.shards {
			if other != name {
				l.sealer = lake
				break
			}
		}
	}
	remaining := make([]string, 0, len(l.shards)-1)
	for _, n := range l.ring.Shards() {
		if n != name {
			remaining = append(remaining, n)
		}
	}
	l.startRebalanceLocked(remaining, name)
	l.mu.Unlock()
	return nil
}

// startRebalanceLocked swaps in the new ring (keeping the old one for
// mid-migration reads) and spawns the migrator. Caller holds l.mu.
func (l *Lake) startRebalanceLocked(names []string, leaving string) {
	l.prev = l.ring
	l.ring = NewRing(names, l.vnodes, l.seed)
	l.rebalancing = true
	l.rebalanceDone = make(chan struct{})
	done := l.rebalanceDone
	l.wg.Add(1)
	go l.migrate(leaving, done)
}

// Rebalancing reports whether a migration is in flight.
func (l *Lake) Rebalancing() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.rebalancing
}

// Moved counts objects migrated across all rebalances.
func (l *Lake) Moved() uint64 { return l.moved.Load() }

// WaitRebalance blocks until the in-flight migration (if any)
// finishes, or the timeout passes.
func (l *Lake) WaitRebalance(timeout time.Duration) error {
	l.mu.RLock()
	done := l.rebalanceDone
	rebalancing := l.rebalancing
	l.mu.RUnlock()
	if !rebalancing || done == nil {
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("shardlake: rebalance still running after %v", timeout)
	}
}

// migrate is the background rebalance worker. For each object in the
// cluster it ensures every new-ring target holds a copy, then evicts
// copies from shards the new ring no longer assigns. A copy that
// cannot be delivered becomes a hint and blocks the eviction of the
// old copies for that object — correctness first, balance second.
func (l *Lake) migrate(leaving string, done chan struct{}) {
	defer l.wg.Done()
	defer func() {
		l.mu.Lock()
		l.prev = nil
		l.rebalancing = false
		if leaving != "" {
			// Detach only if its hints drained; otherwise keep it
			// attached so the backlog can still land.
			if len(l.hints[leaving]) == 0 {
				delete(l.shards, leaving)
			}
		}
		l.mu.Unlock()
		l.Collect()
		close(done)
	}()

	for _, ref := range l.allRefs() {
		l.migrateOne(ref, leaving)
	}
}

// migrateOne settles a single object onto its new-ring placement.
func (l *Lake) migrateOne(ref, leaving string) {
	targets := l.placement(ref)
	want := make(map[string]bool, len(targets))
	for _, n := range targets {
		want[n] = true
	}

	// Find the authoritative copy and who currently holds one.
	var src *store.Sealed
	holders := make(map[string]bool)
	for _, name := range l.Shards() {
		shard := l.shard(name)
		if shard == nil {
			continue
		}
		if s, err := shard.GetSealed(ref); err == nil {
			holders[name] = true
			if src == nil || (s.Deleted && !src.Deleted) {
				c := s
				src = &c
			}
		}
	}
	if src == nil {
		return // all holders unreachable right now; next read repairs it
	}

	// Copy to every new target that lacks it.
	settled := true
	for _, name := range targets {
		if holders[name] {
			continue
		}
		shard := l.shard(name)
		if shard == nil {
			settled = false
			continue
		}
		err := resilience.Retry(context.Background(), l.retry, func(context.Context) error {
			return shard.PutSealed(*src)
		})
		if err != nil {
			l.addHint(name, *src)
			settled = false
			continue
		}
		holders[name] = true
		l.moved.Add(1)
		if l.met != nil {
			l.met.moves.Inc()
		}
	}

	// Evict from non-targets only once every target verifiably holds
	// the object — re-read, don't trust our own bookkeeping.
	if !settled {
		return
	}
	for _, name := range targets {
		shard := l.shard(name)
		if shard == nil {
			return
		}
		if _, err := shard.GetSealed(ref); err != nil {
			return
		}
	}
	for name := range holders {
		if want[name] {
			continue
		}
		if shard := l.shard(name); shard != nil {
			shard.Evict(ref)
		}
	}
}
