package shardlake

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"healthcloud/internal/store"
)

// TestShardLakeStress hammers the cluster from every direction at
// once — concurrent puts, gets and secure-deletes, a flapping shard,
// the hint pump, and a mid-flight shard join — then requires full
// convergence: zero hint backlog, every accepted write readable (or
// properly tombstoned), and every object's replicas byte-identical.
// CI runs this with -race; the invariants matter, the interleavings
// are the point.
func TestShardLakeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	c := newCluster(t, 3, 2)
	c.lake.StartPump(5 * time.Millisecond)

	const workers = 8
	const perWorker = 40
	flaky := ShardName(1)

	var stop atomic.Bool
	var flapperWG sync.WaitGroup
	flapperWG.Add(1)
	go func() {
		defer flapperWG.Done()
		for i := 0; !stop.Load(); i++ {
			if i%2 == 0 {
				c.kill(flaky)
			} else {
				c.heal(flaky)
			}
			time.Sleep(3 * time.Millisecond)
		}
		c.heal(flaky)
	}()

	var (
		mu      sync.Mutex
		live    = map[string]bool{} // ref → expected alive (false = tombstoned)
		wg      sync.WaitGroup
		errCh   = make(chan error, workers)
		joined  atomic.Bool
		newLake = store.NewDataLake(c.kms, "svc-storage")
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []string
			for i := 0; i < perWorker; i++ {
				subject := fmt.Sprintf("patient-w%d-%03d", w, i)
				ref, err := c.lake.Put(subject, []byte("payload "+subject), store.Meta{
					ContentType: "test", Tenant: "shard-test", Group: "g",
				})
				if err != nil {
					// With only one shard flapping at R=2 a put must
					// always find a durable replica.
					errCh <- fmt.Errorf("put %s: %w", subject, err)
					return
				}
				mine = append(mine, ref)
				mu.Lock()
				live[ref] = true
				mu.Unlock()

				// Read something we wrote earlier.
				if len(mine) > 4 && i%3 == 0 {
					back := mine[i/2]
					if _, err := c.lake.Get(back, "svc-storage"); err != nil &&
						!errors.Is(err, store.ErrDeleted) && !errors.Is(err, ErrUnavailable) {
						errCh <- fmt.Errorf("get %s: %w", back, err)
						return
					}
				}
				// Occasionally delete an older record of ours.
				if i%10 == 9 {
					victim := mine[i-5]
					if err := c.lake.SecureDelete(victim); err != nil &&
						!errors.Is(err, ErrUnavailable) {
						errCh <- fmt.Errorf("delete %s: %w", victim, err)
						return
					} else if err == nil {
						mu.Lock()
						live[victim] = false
						mu.Unlock()
					}
				}
				// Halfway through the run, one worker grows the cluster.
				if w == 0 && i == perWorker/2 && joined.CompareAndSwap(false, true) {
					if err := c.lake.AddShard(ShardName(3), newLake); err != nil &&
						!errors.Is(err, ErrRebalancing) {
						errCh <- fmt.Errorf("add shard: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	flapperWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if err := c.lake.WaitRebalance(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Heal for good and drain until dry — bounded, not forever.
	deadline := time.Now().Add(10 * time.Second)
	for c.lake.HintBacklog() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hint backlog stuck at %d", c.lake.HintBacklog())
		}
		c.lake.DrainHints()
	}

	// Every accepted write must resolve to its expected state.
	c.shards[ShardName(3)] = newLake
	mu.Lock()
	defer mu.Unlock()
	for ref, alive := range live {
		_, err := c.lake.Get(ref, "svc-storage")
		switch {
		case alive && err != nil:
			t.Errorf("live record %s unreadable after recovery: %v", ref, err)
		case !alive && !errors.Is(err, store.ErrDeleted):
			t.Errorf("deleted record %s = %v, want ErrDeleted", ref, err)
		}
	}
	objects, divergent := c.lake.VerifyConvergence()
	if len(divergent) != 0 {
		t.Errorf("%d of %d objects divergent after recovery: %v", len(divergent), objects, divergent)
	}
	if objects != len(live) {
		t.Errorf("cluster holds %d objects, expected %d", objects, len(live))
	}
}
