package shardlake

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/hckrypto"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// testCluster bundles a sharded lake with handles to its parts so
// tests can reach under the hood (inspect a specific shard, break one
// by name).
type testCluster struct {
	lake   *Lake
	kms    *hckrypto.KMS
	faults *faultinject.Registry
	shards map[string]*store.DataLake
}

func newCluster(t *testing.T, n, replicas int) *testCluster {
	t.Helper()
	kms, err := hckrypto.NewKMS("shard-test")
	if err != nil {
		t.Fatal(err)
	}
	faults := faultinject.NewRegistry(99)
	members := make([]Shard, n)
	byName := make(map[string]*store.DataLake, n)
	for i := range members {
		lake := store.NewDataLake(kms, "svc-storage")
		name := ShardName(i)
		members[i] = Shard{Name: name, Lake: lake}
		byName[name] = lake
	}
	sl, err := New(members, Config{
		Replicas: replicas, Seed: 1907, Faults: faults,
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sl.Close)
	return &testCluster{lake: sl, kms: kms, faults: faults, shards: byName}
}

func (c *testCluster) put(t *testing.T, subject string) string {
	t.Helper()
	ref, err := c.lake.Put(subject, []byte("payload for "+subject), store.Meta{
		ContentType: "test", Tenant: "shard-test", Group: "g",
	})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// kill makes a shard fail puts, gets and pings (a full outage).
func (c *testCluster) kill(name string) {
	for _, op := range []string{"put", "get", "ping"} {
		c.faults.Enable(FaultPoint(name, op), faultinject.Fault{ErrorRate: 1})
	}
}

func (c *testCluster) heal(name string) {
	for _, op := range []string{"put", "get", "ping"} {
		c.faults.Disable(FaultPoint(name, op))
	}
}

// holders lists which shards hold refID (tombstones included).
func (c *testCluster) holders(refID string) []string {
	var out []string
	for _, name := range c.lake.Shards() {
		if _, err := c.shards[name].GetSealed(refID); err == nil {
			out = append(out, name)
		}
	}
	return out
}

func TestReplicationPlacesRCopies(t *testing.T) {
	c := newCluster(t, 3, 2)
	for i := 0; i < 20; i++ {
		ref := c.put(t, fmt.Sprintf("patient-%02d", i))
		holders := c.holders(ref)
		if len(holders) != 2 {
			t.Fatalf("%s held by %v, want exactly 2 shards", ref, holders)
		}
		want := c.lake.placement(ref)
		for j, name := range want {
			if holders[j] != name && holders[0] != name && holders[1] != name {
				t.Fatalf("%s holders %v don't match ring placement %v", ref, holders, want)
			}
		}
		body, err := c.lake.Get(ref, "svc-storage")
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != "payload for "+fmt.Sprintf("patient-%02d", i) {
			t.Fatalf("round-trip mismatch for %s", ref)
		}
	}
}

func TestGetSurvivesOneReplicaDown(t *testing.T) {
	c := newCluster(t, 3, 2)
	refs := make([]string, 30)
	for i := range refs {
		refs[i] = c.put(t, fmt.Sprintf("patient-%02d", i))
	}
	c.kill(ShardName(1))
	for _, ref := range refs {
		if _, err := c.lake.Get(ref, "svc-storage"); err != nil {
			t.Fatalf("get %s with one shard down: %v", ref, err)
		}
	}
}

func TestReadRepairRestoresMissingReplica(t *testing.T) {
	c := newCluster(t, 3, 2)
	ref := c.put(t, "patient-1")
	victim := c.lake.placement(ref)[1]
	c.shards[victim].Evict(ref)
	if got := len(c.holders(ref)); got != 1 {
		t.Fatalf("setup: %d holders, want 1", got)
	}
	if _, err := c.lake.Get(ref, "svc-storage"); err != nil {
		t.Fatal(err)
	}
	if got := c.holders(ref); len(got) != 2 {
		t.Fatalf("after read: holders %v, want repaired back to 2", got)
	}
	if c.lake.Repairs() == 0 {
		t.Error("repair not counted")
	}
}

func TestReadRepairPropagatesTombstone(t *testing.T) {
	c := newCluster(t, 3, 2)
	ref := c.put(t, "patient-1")
	// Capture the live sealed copy, delete the record, then plant the
	// stale live copy back on one replica — simulating a replica that
	// missed the deletion entirely.
	stale, err := c.shards[c.lake.placement(ref)[0]].GetSealed(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.lake.SecureDelete(ref); err != nil {
		t.Fatal(err)
	}
	victim := c.lake.placement(ref)[1]
	c.shards[victim].Evict(ref)
	if err := c.shards[victim].PutSealed(stale); err != nil {
		t.Fatal(err)
	}
	// The quorum read must serve the deletion (tombstone wins) and
	// repair the stale replica back to a tombstone.
	if _, err := c.lake.Get(ref, "svc-storage"); !errors.Is(err, store.ErrDeleted) {
		t.Fatalf("get = %v, want ErrDeleted (tombstone must win the quorum)", err)
	}
	s, err := c.shards[victim].GetSealed(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Deleted {
		t.Error("stale live replica not repaired to a tombstone")
	}
}

func TestSecureDeleteTombstonesEveryReplica(t *testing.T) {
	c := newCluster(t, 3, 2)
	ref := c.put(t, "patient-1")
	if err := c.lake.SecureDelete(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := c.lake.Get(ref, "svc-storage"); !errors.Is(err, store.ErrDeleted) {
		t.Errorf("get after delete = %v, want ErrDeleted", err)
	}
	for _, name := range c.lake.placement(ref) {
		s, err := c.shards[name].GetSealed(ref)
		if err != nil {
			t.Fatalf("replica %s lost its tombstone: %v", name, err)
		}
		if !s.Deleted {
			t.Errorf("replica %s copy not tombstoned", name)
		}
	}
	// Deleting again reports not-found-style failure? No: idempotent
	// tombstone delete succeeds against the tombstone holders.
	if _, div := c.lake.VerifyConvergence(); len(div) != 0 {
		t.Errorf("divergent after delete: %v", div)
	}
}

func TestLateHintCannotResurrectDeletedRecord(t *testing.T) {
	c := newCluster(t, 3, 2)
	ref := c.put(t, "patient-1")
	target := c.lake.placement(ref)[0]
	live, err := c.shards[target].GetSealed(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.lake.SecureDelete(ref); err != nil {
		t.Fatal(err)
	}
	// A stale hint delivering the live copy after deletion must bounce
	// off the tombstone.
	c.lake.addHint(target, live)
	c.lake.DrainHints()
	s, err := c.shards[target].GetSealed(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Deleted {
		t.Error("late live hint resurrected a securely-deleted record")
	}
}

func TestHintedHandoffDrainsOnRecovery(t *testing.T) {
	c := newCluster(t, 3, 2)
	dead := ShardName(2)
	c.kill(dead)
	refs := make([]string, 40)
	for i := range refs {
		refs[i] = c.put(t, fmt.Sprintf("patient-%02d", i)) // must not error: quorum holds
	}
	if c.lake.HintBacklog() == 0 {
		t.Fatal("no hints queued while a replica was down")
	}
	// Everything stays readable through the outage.
	for _, ref := range refs {
		if _, err := c.lake.Get(ref, "svc-storage"); err != nil {
			t.Fatalf("get %s during outage: %v", ref, err)
		}
	}
	c.heal(dead)
	c.lake.DrainHints()
	if got := c.lake.HintBacklog(); got != 0 {
		t.Fatalf("backlog after drain = %d, want 0", got)
	}
	if _, div := c.lake.VerifyConvergence(); len(div) != 0 {
		t.Fatalf("divergent after drain: %v", div)
	}
}

func TestPutFailsOnlyWhenNoReplicaDurable(t *testing.T) {
	c := newCluster(t, 2, 2)
	c.kill(ShardName(0))
	c.kill(ShardName(1))
	if _, err := c.lake.Put("patient-1", []byte("x"), store.Meta{}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("put with all replicas down = %v, want ErrUnavailable", err)
	}
	c.heal(ShardName(0))
	if _, err := c.lake.Put("patient-2", []byte("x"), store.Meta{}); err != nil {
		t.Errorf("put with one replica up: %v, want sloppy-quorum accept", err)
	}
}

func TestGrantCoversAllReplicas(t *testing.T) {
	c := newCluster(t, 3, 2)
	ref := c.put(t, "patient-1")
	if err := c.lake.Grant(ref, "svc-export"); err != nil {
		t.Fatal(err)
	}
	// The grant is on the shared key, so reading via either replica
	// works — including after the primary goes down.
	c.kill(c.lake.placement(ref)[0])
	if _, err := c.lake.Get(ref, "svc-export"); err != nil {
		t.Fatalf("granted read via surviving replica: %v", err)
	}
}

func TestPingQuorumSemantics(t *testing.T) {
	c := newCluster(t, 3, 2)
	if err := c.lake.Ping(); err != nil {
		t.Fatalf("healthy cluster ping: %v", err)
	}
	c.kill(ShardName(0))
	if err := c.lake.Ping(); err != nil {
		t.Errorf("ping with 1 of 3 down at R=2 = %v, want nil (quorum holds)", err)
	}
	if !c.lake.QuorumHolds() {
		t.Error("QuorumHolds false with 1 of 3 down at R=2")
	}
	c.kill(ShardName(1))
	if err := c.lake.Ping(); err == nil {
		t.Error("ping with 2 of 3 down at R=2 succeeded, want quorum-lost error")
	}
}

func TestListAndCountDeduplicateReplicas(t *testing.T) {
	c := newCluster(t, 3, 2)
	for i := 0; i < 10; i++ {
		c.put(t, fmt.Sprintf("patient-%02d", i))
	}
	if got := c.lake.Count(); got != 10 {
		t.Errorf("Count = %d, want 10 (replicas must not double-count)", got)
	}
	if got := len(c.lake.List("shard-test", "g")); got != 10 {
		t.Errorf("List = %d entries, want 10", got)
	}
}

func TestAddShardRebalances(t *testing.T) {
	c := newCluster(t, 3, 2)
	refs := make([]string, 60)
	for i := range refs {
		refs[i] = c.put(t, fmt.Sprintf("patient-%02d", i))
	}
	extra := store.NewDataLake(c.kms, "svc-storage")
	if err := c.lake.AddShard(ShardName(3), extra); err != nil {
		t.Fatal(err)
	}
	if err := c.lake.WaitRebalance(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.lake.Moved() == 0 {
		t.Error("rebalance moved nothing onto the new shard")
	}
	if extra.Count() == 0 {
		t.Error("new shard holds no objects after rebalance")
	}
	c.shards[ShardName(3)] = extra
	for _, ref := range refs {
		if _, err := c.lake.Get(ref, "svc-storage"); err != nil {
			t.Fatalf("get %s after rebalance: %v", ref, err)
		}
		if got := c.holders(ref); len(got) != 2 {
			t.Fatalf("%s held by %v after rebalance, want exactly R=2 (old copies evicted)", ref, got)
		}
	}
	if _, div := c.lake.VerifyConvergence(); len(div) != 0 {
		t.Fatalf("divergent after rebalance: %v", div)
	}
}

func TestRemoveShardDrainsIt(t *testing.T) {
	c := newCluster(t, 4, 2)
	refs := make([]string, 60)
	for i := range refs {
		refs[i] = c.put(t, fmt.Sprintf("patient-%02d", i))
	}
	leaving := ShardName(3)
	if err := c.lake.RemoveShard(leaving); err != nil {
		t.Fatal(err)
	}
	if err := c.lake.WaitRebalance(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, name := range c.lake.Shards() {
		if name == leaving {
			t.Fatalf("%s still attached after removal", leaving)
		}
	}
	delete(c.shards, leaving)
	for _, ref := range refs {
		if _, err := c.lake.Get(ref, "svc-storage"); err != nil {
			t.Fatalf("get %s after shard removal: %v", ref, err)
		}
		if got := c.holders(ref); len(got) != 2 {
			t.Fatalf("%s held by %v, want R=2 among survivors", ref, got)
		}
	}
	if _, div := c.lake.VerifyConvergence(); len(div) != 0 {
		t.Fatalf("divergent after removal: %v", div)
	}
}

func TestRemoveShardRefusedBelowReplicationFactor(t *testing.T) {
	c := newCluster(t, 2, 2)
	if err := c.lake.RemoveShard(ShardName(0)); err == nil {
		t.Error("removing a shard below R succeeded, want refusal")
	}
}

func TestReadsCorrectMidMigration(t *testing.T) {
	// Make migration slow enough to observe by giving the new shard a
	// service delay, then read every object while it runs.
	c := newCluster(t, 3, 2)
	refs := make([]string, 40)
	for i := range refs {
		refs[i] = c.put(t, fmt.Sprintf("patient-%02d", i))
	}
	extra := store.NewDataLake(c.kms, "svc-storage")
	extra.SetServiceTime(2 * time.Millisecond)
	if err := c.lake.AddShard(ShardName(3), extra); err != nil {
		t.Fatal(err)
	}
	reads := 0
	for c.lake.Rebalancing() {
		for _, ref := range refs {
			if _, err := c.lake.Get(ref, "svc-storage"); err != nil {
				t.Fatalf("mid-migration get %s: %v", ref, err)
			}
			reads++
		}
	}
	if err := c.lake.WaitRebalance(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if reads == 0 {
		t.Skip("migration finished before any mid-flight read (timing)")
	}
}

func TestSingleShardMatchesDataLakeSemantics(t *testing.T) {
	c := newCluster(t, 1, 1)
	ref := c.put(t, "patient-1")
	if got := c.lake.Count(); got != 1 {
		t.Errorf("Count = %d", got)
	}
	meta, err := c.lake.Meta(ref)
	if err != nil || meta.Tenant != "shard-test" {
		t.Errorf("Meta = %+v, %v", meta, err)
	}
	if err := c.lake.SecureDelete(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := c.lake.Get(ref, "svc-storage"); !errors.Is(err, store.ErrDeleted) {
		t.Errorf("get after delete = %v, want ErrDeleted", err)
	}
	if got := c.lake.Count(); got != 0 {
		t.Errorf("Count after delete = %d (tombstones must not count)", got)
	}
}
