// Package shardlake shards the Data Lake horizontally: N
// store.DataLake shards behind a consistent-hash ring with virtual
// nodes, R-way replication, quorum reads with read-repair, hinted
// handoff for downed replicas, and online rebalancing when a shard
// joins or leaves. It implements store.Lake, so ingest, the export
// path and the caches swap over via core.Config.Shards/Replicas with
// Shards=1, Replicas=1 preserving today's single-lake behavior.
//
// The design leans on the platform's plane separation (hChain-style):
// the *data plane* shards freely because the *trust plane* — KMS keys,
// consent, provenance, the identity map — stays unsharded. Every shard
// hangs off the same KMS, so a replica is a byte-identical Sealed
// record installable anywhere, a grant on one replica's key covers all
// of them, and crypto-shredding the key kills every copy at once.
package shardlake

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard string
}

// Ring is a consistent-hash ring over shard names with vnodes virtual
// nodes per shard. It is immutable after construction: rebalancing
// swaps whole rings, never edits one, so readers need no lock beyond
// the pointer swap. The seed folds into every hash, making placement
// deterministic per (seed, shard set) and letting tests pin exact
// layouts.
type Ring struct {
	points []ringPoint
	shards []string
	vnodes int
	seed   int64
	// hashFn positions points and keys; nil means the legacy FNV-1a
	// (ringHash). NewBalancedRing installs the full-avalanche hash —
	// point positions and key lookups must always use the same family.
	hashFn func(seed int64, s string) uint64
}

// keyHash hashes a key with the ring's hash family.
func (r *Ring) keyHash(s string) uint64 {
	if r.hashFn != nil {
		return r.hashFn(r.seed, s)
	}
	return ringHash(r.seed, s)
}

// NewRing builds a ring over the given shard names (order-insensitive:
// names are sorted first so the same set always yields the same ring).
// Every shard gets the same vnode count; NewBalancedRing reweights
// counts to shave hash skew (at the cost of a different placement).
func NewRing(shards []string, vnodes int, seed int64) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	names := append([]string(nil), shards...)
	sort.Strings(names)
	counts := make(map[string]int, len(names))
	for _, name := range names {
		counts[name] = vnodes
	}
	return newRingCounts(names, counts, vnodes, seed, nil)
}

// ringHash is 64-bit FNV-1a with the seed folded in front, so two
// rings with different seeds place the same keys differently.
func ringHash(seed int64, s string) uint64 {
	h := fnv.New64a()
	var sb [8]byte
	for i := 0; i < 8; i++ {
		sb[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(sb[:])
	h.Write([]byte(s))
	return h.Sum64()
}

// Shards returns the shard names on the ring, sorted.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Placement returns the n distinct shards responsible for key: the
// owner of the first virtual node clockwise from the key's hash, then
// the next distinct shards walking onward — the classic successor-list
// replica set. n is clamped to the shard count.
func (r *Ring) Placement(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	if n < 1 {
		n = 1
	}
	h := r.keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, p.shard)
	}
	return out
}

// ShardName is the conventional name of the i-th shard ("shard-i").
func ShardName(i int) string { return fmt.Sprintf("shard-%d", i) }

// FaultPoint names a shard's fault-injection point for op ("put",
// "get" or "ping"): chaos tests kill shard s with
// Enable(FaultPoint(s, "put"), ...) etc.
func FaultPoint(shard, op string) string { return "shardlake." + shard + "." + op }
