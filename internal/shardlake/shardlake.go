package shardlake

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"healthcloud/internal/faultinject"
	"healthcloud/internal/resilience"
	"healthcloud/internal/store"
	"healthcloud/internal/telemetry"
)

// Errors returned by this package.
var (
	ErrNoShards    = errors.New("shardlake: at least one shard required")
	ErrDupShard    = errors.New("shardlake: duplicate shard name")
	ErrRebalancing = errors.New("shardlake: a rebalance is already in progress")
	ErrUnavailable = errors.New("shardlake: not enough replicas reachable")
)

// Shard pairs a shard name with its backing lake. All shards must share
// one KMS (they do when built by core: each is NewDataLake(kms, ...)).
type Shard struct {
	Name string
	Lake *store.DataLake
}

// Config sizes a sharded lake.
type Config struct {
	// Replicas is the replication factor R (default 1, clamped to the
	// shard count). Every object is sealed once and installed on the R
	// distinct shards its reference id hashes to.
	Replicas int
	// VNodes is the virtual-node count per shard (default 64).
	VNodes int
	// Seed fixes ring placement for reproducible experiments.
	Seed int64
	// Faults, when set, gives every shard its own fault points
	// ("shardlake.<name>.{put,get,ping}") on this registry.
	Faults *faultinject.Registry
	// Registry/Tracer wire telemetry (nil disables each at zero cost).
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
	// Retry bounds the per-replica write attempts before a failed
	// replica write turns into a hint (defaults: 3 attempts, 500µs
	// base, 5ms cap).
	Retry resilience.Policy
}

// Lake is the sharded Data Lake. It implements store.Lake.
type Lake struct {
	replicas int
	vnodes   int
	seed     int64
	retry    resilience.Policy
	faults   *faultinject.Registry
	tracer   *telemetry.Tracer
	met      *metrics
	sealer   *store.DataLake // coordinator crypto only; never stores

	mu     sync.RWMutex
	shards map[string]*store.DataLake
	ring   *Ring
	// prev holds the pre-rebalance ring while a migration runs, so
	// reads consult both placements and are correct mid-migration.
	prev          *Ring
	rebalancing   bool
	rebalanceDone chan struct{}
	// hints buffers sealed writes a downed replica missed, keyed
	// shard → refID → record (latest wins, tombstones beat live).
	hints map[string]map[string]store.Sealed

	moved    atomic.Uint64
	repairs  atomic.Uint64
	hinted   atomic.Uint64
	drained  atomic.Uint64
	pumpOnce sync.Once
	pumpStop chan struct{}
	wg       sync.WaitGroup
}

var _ store.Lake = (*Lake)(nil)

// metrics instruments the sharded lake; nil disables it.
type metrics struct {
	reg          *telemetry.Registry
	putReplicas  *telemetry.Counter // replica writes that landed
	repairs      *telemetry.Counter
	repairLat    *telemetry.Histogram
	hintsAdded   *telemetry.Counter
	hintsDrained *telemetry.Counter
	moves        *telemetry.Counter
	backlog      *telemetry.Gauge
	shardsGauge  *telemetry.Gauge
}

// New builds a sharded lake over the given shards. Each shard's fault
// points are rescoped to "shardlake.<name>.*" when cfg.Faults is set.
func New(shards []Shard, cfg Config) (*Lake, error) {
	if len(shards) == 0 {
		return nil, ErrNoShards
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(shards) {
		cfg.Replicas = len(shards)
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = resilience.Policy{
			MaxAttempts: 3, BaseDelay: 500 * time.Microsecond, MaxDelay: 5 * time.Millisecond,
		}
	}
	l := &Lake{
		replicas: cfg.Replicas, vnodes: cfg.VNodes, seed: cfg.Seed,
		retry: cfg.Retry, faults: cfg.Faults, tracer: cfg.Tracer,
		shards:   make(map[string]*store.DataLake, len(shards)),
		hints:    make(map[string]map[string]store.Sealed),
		pumpStop: make(chan struct{}),
	}
	names := make([]string, 0, len(shards))
	for _, s := range shards {
		if s.Lake == nil || s.Name == "" {
			return nil, ErrNoShards
		}
		if _, dup := l.shards[s.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDupShard, s.Name)
		}
		l.wireShard(s.Name, s.Lake)
		l.shards[s.Name] = s.Lake
		names = append(names, s.Name)
	}
	l.sealer = shards[0].Lake
	l.ring = NewRing(names, cfg.VNodes, cfg.Seed)
	if cfg.Registry != nil {
		l.met = &metrics{
			reg:          cfg.Registry,
			putReplicas:  cfg.Registry.Counter("shardlake_replica_writes_total"),
			repairs:      cfg.Registry.Counter("shardlake_repairs_total"),
			repairLat:    cfg.Registry.Histogram("shardlake_repair_seconds"),
			hintsAdded:   cfg.Registry.Counter("shardlake_hints_total"),
			hintsDrained: cfg.Registry.Counter("shardlake_hints_drained_total"),
			moves:        cfg.Registry.Counter("shardlake_moves_total"),
			backlog:      cfg.Registry.Gauge("shardlake_hint_backlog"),
			shardsGauge:  cfg.Registry.Gauge("shardlake_shards"),
		}
		l.Collect()
	}
	return l, nil
}

// wireShard scopes a shard's fault points under its name.
func (l *Lake) wireShard(name string, lake *store.DataLake) {
	lake.SetFaultScope("shardlake." + name)
	lake.SetFaults(l.faults)
}

// Replicas returns the replication factor R.
func (l *Lake) Replicas() int { return l.replicas }

// Shards lists the shard names, sorted.
func (l *Lake) Shards() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.shards))
	for name := range l.shards {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// shard resolves a name to its lake (nil if detached).
func (l *Lake) shard(name string) *store.DataLake {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.shards[name]
}

// placement is the write-side replica set (current ring only).
func (l *Lake) placement(key string) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.ring.Placement(key, l.replicas)
}

// readTargets is the read-side replica set: the current placement
// plus, mid-migration, the previous one, so an object not yet moved is
// still found.
func (l *Lake) readTargets(key string) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := l.ring.Placement(key, l.replicas)
	if l.prev != nil {
		seen := make(map[string]bool, len(out))
		for _, n := range out {
			seen[n] = true
		}
		for _, n := range l.prev.Placement(key, l.replicas) {
			if !seen[n] {
				out = append(out, n)
			}
		}
	}
	return out
}

// Put seals the record once (one data key, one ciphertext) and
// installs it on the R shards its reference id hashes to. Each replica
// write gets bounded retries; a replica that stays down receives a
// hint instead, drained on recovery. The write is accepted as long as
// at least one replica is durable — hinted handoff keeps availability
// through single-replica outages; it fails only when every replica is
// unreachable (no durable copy would exist).
func (l *Lake) Put(subject string, plaintext []byte, meta store.Meta) (string, error) {
	sealed, err := l.sealer.Seal(subject, plaintext, meta)
	if err != nil {
		return "", err
	}
	if err := l.replicate(sealed); err != nil {
		return "", err
	}
	return sealed.RefID, nil
}

// replicate installs a sealed record on its placement shards.
func (l *Lake) replicate(s store.Sealed) error {
	targets := l.placement(s.RefID)
	var failed []string
	var firstErr error
	ok := 0
	for _, name := range targets {
		shard := l.shard(name)
		if shard == nil {
			continue
		}
		err := resilience.Retry(context.Background(), l.retry, func(context.Context) error {
			return shard.PutSealed(s)
		})
		if err == nil {
			ok++
			if m := l.met; m != nil {
				m.putReplicas.Inc()
			}
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		failed = append(failed, name)
	}
	if ok == 0 {
		return fmt.Errorf("%w: no replica of %s durable: %v", ErrUnavailable, s.RefID, firstErr)
	}
	// Only hint once the write is accepted: a rejected write is retried
	// by the caller under a fresh reference id, and hints for it would
	// resurrect an orphan.
	for _, name := range failed {
		l.addHint(name, s)
	}
	return nil
}

// Get resolves the record across its replicas (quorum read), repairs
// stale or missing reachable replicas from the authoritative copy, and
// decrypts on behalf of principal.
func (l *Lake) Get(refID, principal string) ([]byte, error) {
	s, err := l.resolve(refID, true)
	if err != nil {
		return nil, err
	}
	return l.sealer.Open(s, principal)
}

// resolve performs the quorum read: consult every replica (reads pay
// R sealed fetches, the full read quorum), pick the authoritative copy
// — a tombstone beats any live copy, since deletion is always the
// newer fact — and, when repair is set, re-install it on reachable
// current-placement replicas that miss it or hold a stale live copy.
// Repairs are traced (shardlake.get → shardlake.repair spans); clean
// reads stay span-free so hot read loops don't flood the span store.
func (l *Lake) resolve(refID string, repair bool) (store.Sealed, error) {
	targets := l.readTargets(refID)
	current := l.placement(refID)
	copies := make(map[string]store.Sealed, len(targets))
	var best *store.Sealed
	var lastErr error
	unreachable := make(map[string]bool)
	for _, name := range targets {
		shard := l.shard(name)
		if shard == nil {
			continue
		}
		s, err := shard.GetSealed(refID)
		switch {
		case err == nil:
			copies[name] = s
			if best == nil || (s.Deleted && !best.Deleted) {
				c := s
				best = &c
			}
		case errors.Is(err, store.ErrNotFound):
			// reachable, record absent: a repair candidate
		default:
			unreachable[name] = true
			lastErr = err
		}
	}
	if best == nil {
		// Fall back to a full scan: mid-rebalance an object may sit on
		// a shard outside both placements for a moment (copied but not
		// yet evicted elsewhere, or a partial earlier migration). The
		// scan keeps reads correct whatever the migration state.
		if s, holder := l.scanFor(refID); s != nil {
			best = s
			copies[holder] = *s
		}
	}
	if best == nil {
		if len(unreachable) > 0 {
			return store.Sealed{}, fmt.Errorf("%w: %s: %v", ErrUnavailable, refID, lastErr)
		}
		return store.Sealed{}, fmt.Errorf("%w: %s", store.ErrNotFound, refID)
	}
	if repair {
		l.readRepair(refID, *best, current, copies, unreachable)
	}
	return *best, nil
}

// scanFor looks for a record on any attached shard (rebalance
// fallback). Returns the best copy found and its holder.
func (l *Lake) scanFor(refID string) (*store.Sealed, string) {
	l.mu.RLock()
	names := make([]string, 0, len(l.shards))
	for name := range l.shards {
		names = append(names, name)
	}
	l.mu.RUnlock()
	sort.Strings(names)
	var best *store.Sealed
	holder := ""
	for _, name := range names {
		shard := l.shard(name)
		if shard == nil {
			continue
		}
		if s, err := shard.GetSealed(refID); err == nil {
			if best == nil || (s.Deleted && !best.Deleted) {
				c := s
				best = &c
				holder = name
			}
		}
	}
	return best, holder
}

// readRepair re-installs the authoritative copy on current-placement
// replicas that are reachable but missing it or holding a stale live
// copy while the record is deleted. Unreachable replicas get hints.
func (l *Lake) readRepair(refID string, best store.Sealed, current []string, copies map[string]store.Sealed, unreachable map[string]bool) {
	var stale []string
	for _, name := range current {
		if unreachable[name] {
			if best.Deleted {
				// A missed deletion must not be forgotten: hint the
				// tombstone so the downed replica converges on drain.
				l.addHint(name, best)
			}
			continue
		}
		c, ok := copies[name]
		if !ok || (best.Deleted && !c.Deleted) {
			stale = append(stale, name)
		}
	}
	if len(stale) == 0 {
		return
	}
	sp := l.tracer.StartRoot("shardlake.get")
	sc := sp.Context()
	sp.SetAttr("ref", refID)
	sp.SetAttr("stale_replicas", fmt.Sprint(len(stale)))
	for _, name := range stale {
		rsp := l.tracer.StartSpan("shardlake.repair", sc)
		rsp.SetAttr("shard", name)
		shard := l.shard(name)
		if shard == nil {
			rsp.End()
			continue
		}
		var start time.Time
		if m := l.met; m != nil {
			start = m.repairLat.Start()
		}
		if err := shard.PutSealed(best); err != nil {
			rsp.SetAttr("error", err.Error())
			l.addHint(name, best)
		} else {
			l.repairs.Add(1)
			if m := l.met; m != nil {
				m.repairs.Inc()
			}
		}
		if m := l.met; m != nil {
			m.repairLat.ObserveSinceTrace(start, sc.TraceID)
		}
		rsp.End()
	}
	sp.End()
	// Read-repair is a root trace of its own; it is complete here.
	l.tracer.FinishTrace(sc.TraceID)
}

// Grant allows another principal to read a record. One replica
// suffices: every copy is sealed under the same KMS key, so a grant on
// that key covers all of them (repair included).
func (l *Lake) Grant(refID, principal string) error {
	var lastErr error
	for _, name := range l.readTargets(refID) {
		shard := l.shard(name)
		if shard == nil {
			continue
		}
		if err := shard.Grant(refID, principal); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	// Rebalance fallback, mirroring resolve.
	if s, holder := l.scanFor(refID); s != nil {
		if shard := l.shard(holder); shard != nil {
			return shard.Grant(refID, principal)
		}
	}
	if lastErr != nil {
		return lastErr
	}
	return fmt.Errorf("%w: %s", store.ErrNotFound, refID)
}

// Meta returns a record's metadata from the first replica that has it.
func (l *Lake) Meta(refID string) (store.Meta, error) {
	s, err := l.resolve(refID, false)
	if err != nil {
		return store.Meta{}, err
	}
	return s.Meta, nil
}

// SecureDelete crypto-shreds a record everywhere: the shared data key
// is destroyed once (killing every replica's ciphertext at a stroke,
// Shred being idempotent across holders), then every current-placement
// shard is left holding the tombstone — installed outright on reachable
// shards, hinted to unreachable ones. Installing tombstones rather
// than merely deleting holders is what makes deletion race-free
// against read-repair and rebalance copies: whichever side writes
// last, PutSealed's tombstone-wins invariant converges the replica to
// deleted. The tombstones remain for audit, like the single-lake
// contract.
func (l *Lake) SecureDelete(refID string) error {
	// Pass 1: find a copy (for its key id and metadata) and shred every
	// reachable holder.
	var found *store.Sealed
	var holders []string
	unreachable := 0
	for _, name := range l.readTargets(refID) {
		shard := l.shard(name)
		if shard == nil {
			continue
		}
		s, err := shard.GetSealed(refID)
		switch {
		case err == nil:
			holders = append(holders, name)
			if found == nil || (s.Deleted && !found.Deleted) {
				c := s
				found = &c
			}
		case errors.Is(err, store.ErrNotFound):
		default:
			unreachable++
		}
	}
	if found == nil {
		// Mid-rebalance the only copy may sit outside both placements.
		if s, holder := l.scanFor(refID); s != nil {
			found = s
			holders = append(holders, holder)
		}
	}
	if found == nil {
		if unreachable > 0 {
			return fmt.Errorf("%w: %s", ErrUnavailable, refID)
		}
		return fmt.Errorf("%w: %s", store.ErrNotFound, refID)
	}
	deleted := 0
	for _, name := range holders {
		if shard := l.shard(name); shard != nil {
			if err := shard.SecureDelete(refID); err == nil {
				deleted++
			}
		}
	}
	if deleted == 0 {
		return fmt.Errorf("%w: %s", ErrUnavailable, refID)
	}
	// Pass 2: every current-placement shard ends with the tombstone.
	tomb := store.Sealed{RefID: refID, KeyID: found.KeyID, Meta: found.Meta, Deleted: true}
	for _, name := range l.placement(refID) {
		shard := l.shard(name)
		if shard == nil {
			l.addHint(name, tomb)
			continue
		}
		if err := shard.PutSealed(tomb); err != nil {
			l.addHint(name, tomb)
		}
	}
	return nil
}

// List returns the union of the shards' listings, deduplicated (each
// replica reports the same reference id) and sorted.
func (l *Lake) List(tenantName, group string) []string {
	l.mu.RLock()
	lakes := make([]*store.DataLake, 0, len(l.shards))
	for _, shard := range l.shards {
		lakes = append(lakes, shard)
	}
	l.mu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for _, shard := range lakes {
		for _, id := range shard.List(tenantName, group) {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Count returns the number of distinct live objects across all shards.
func (l *Lake) Count() int { return len(l.List("", "")) }

// Ping reports aggregate serviceability: nil while quorum holds —
// fewer shards down than the replication factor, so every placement
// group keeps at least one live replica — an error once availability
// can no longer be guaranteed. Per-shard states come from ShardHealth.
func (l *Lake) Ping() error {
	health := l.ShardHealth()
	down := 0
	var lastErr error
	for _, err := range health {
		if err != nil {
			down++
			lastErr = err
		}
	}
	if down >= l.replicas || down == len(health) {
		return fmt.Errorf("shardlake: %d/%d shards down, quorum lost: %w", down, len(health), lastErr)
	}
	return nil
}

// ShardHealth pings every shard and returns its error (nil = healthy).
func (l *Lake) ShardHealth() map[string]error {
	l.mu.RLock()
	lakes := make(map[string]*store.DataLake, len(l.shards))
	for name, shard := range l.shards {
		lakes[name] = shard
	}
	l.mu.RUnlock()
	out := make(map[string]error, len(lakes))
	for name, shard := range lakes {
		out[name] = shard.Ping()
	}
	return out
}

// ShardPing pings one shard by name.
func (l *Lake) ShardPing(name string) error {
	shard := l.shard(name)
	if shard == nil {
		return fmt.Errorf("shardlake: unknown shard %q", name)
	}
	return shard.Ping()
}

// QuorumHolds reports whether every placement group still has a live
// replica (down shards < replication factor).
func (l *Lake) QuorumHolds() bool {
	down := 0
	for _, err := range l.ShardHealth() {
		if err != nil {
			down++
		}
	}
	return down < l.replicas && down < l.shardCount()
}

func (l *Lake) shardCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.shards)
}

// ShardObjects returns per-shard live object counts (telemetry and the
// E19 scaling report).
func (l *Lake) ShardObjects() map[string]int {
	l.mu.RLock()
	lakes := make(map[string]*store.DataLake, len(l.shards))
	for name, shard := range l.shards {
		lakes[name] = shard
	}
	l.mu.RUnlock()
	out := make(map[string]int, len(lakes))
	for name, shard := range lakes {
		out[name] = shard.Count()
	}
	return out
}

// Repairs reports how many replica repairs the read path performed.
func (l *Lake) Repairs() uint64 { return l.repairs.Load() }

// Collect refreshes the pull-style gauges (per-shard object counts,
// shard count, hint backlog). Core's watchdog calls it each tick.
func (l *Lake) Collect() {
	m := l.met
	if m == nil {
		return
	}
	for name, n := range l.ShardObjects() {
		m.reg.Gauge(`shardlake_objects{shard="` + name + `"}`).Set(int64(n))
	}
	m.shardsGauge.Set(int64(l.shardCount()))
	m.backlog.Set(int64(l.HintBacklog()))
}

// VerifyConvergence checks, object by object, that every replica each
// record's current placement demands exists and is byte-identical
// (key id, ciphertext, tombstone flag). It returns the distinct object
// count and the reference ids with a missing or divergent replica —
// the E19 post-recovery convergence proof.
func (l *Lake) VerifyConvergence() (objects int, divergent []string) {
	refs := l.allRefs()
	for _, ref := range refs {
		objects++
		var want *store.Sealed
		bad := false
		for _, name := range l.placement(ref) {
			shard := l.shard(name)
			if shard == nil {
				bad = true
				break
			}
			s, err := shard.GetSealed(ref)
			if err != nil {
				bad = true
				break
			}
			if want == nil {
				c := s
				want = &c
				continue
			}
			if s.KeyID != want.KeyID || s.Deleted != want.Deleted ||
				!bytesEqual(s.Ciphertext, want.Ciphertext) {
				bad = true
				break
			}
		}
		if bad || want == nil {
			divergent = append(divergent, ref)
		}
	}
	return objects, divergent
}

// RepairAll sweeps every known object through quorum resolution with
// repair enabled, re-installing the authoritative copy on any replica
// that is missing or stale. It returns the repair count of the pass
// (the lake's lifetime counter delta). After a crash-restart the
// hinted-handoff buffers are gone — hints are in-memory by design —
// so this sweep is how a recovered cluster proactively re-converges
// instead of waiting for each object to be read.
func (l *Lake) RepairAll() int {
	before := l.repairs.Load()
	for _, ref := range l.allRefs() {
		l.resolve(ref, true)
	}
	return int(l.repairs.Load() - before)
}

// allRefs is the union of every shard's reference ids, tombstones
// included, sorted.
func (l *Lake) allRefs() []string {
	l.mu.RLock()
	lakes := make([]*store.DataLake, 0, len(l.shards))
	for _, shard := range l.shards {
		lakes = append(lakes, shard)
	}
	l.mu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for _, shard := range lakes {
		for _, id := range shard.Refs() {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
