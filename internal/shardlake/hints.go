package shardlake

import (
	"sort"
	"time"

	"healthcloud/internal/store"
)

// Hinted handoff: when a replica write (or a tombstone for a missed
// deletion) cannot reach its shard, the sealed record is buffered here
// under the shard's name and re-installed once the shard answers again.
// Because records are sealed once and immutable — the only transition
// is live → tombstone — a hint never conflicts with anything: PutSealed
// is an idempotent upsert and tombstones win on both sides.

// addHint buffers a sealed record for a shard that missed it. Per
// reference id the latest hint wins, except that a tombstone is never
// replaced by a live copy.
func (l *Lake) addHint(shard string, s store.Sealed) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.hints[shard]
	if m == nil {
		m = make(map[string]store.Sealed)
		l.hints[shard] = m
	}
	if prev, ok := m[s.RefID]; ok && prev.Deleted && !s.Deleted {
		return
	}
	m[s.RefID] = s
	l.hinted.Add(1)
	if l.met != nil {
		l.met.hintsAdded.Inc()
		l.met.backlog.Set(int64(l.backlogLocked()))
	}
}

// HintBacklog counts buffered hints across all shards.
func (l *Lake) HintBacklog() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.backlogLocked()
}

func (l *Lake) backlogLocked() int {
	n := 0
	for _, m := range l.hints {
		n += len(m)
	}
	return n
}

// DrainHints tries to deliver every buffered hint and returns how many
// landed. A shard that fails a delivery is skipped for the rest of the
// pass (it is presumably still down); its remaining hints stay
// buffered for the next pass.
func (l *Lake) DrainHints() int {
	l.mu.Lock()
	pending := make(map[string][]store.Sealed, len(l.hints))
	for shard, m := range l.hints {
		refs := make([]string, 0, len(m))
		for ref := range m {
			refs = append(refs, ref)
		}
		sort.Strings(refs)
		batch := make([]store.Sealed, 0, len(m))
		for _, ref := range refs {
			batch = append(batch, m[ref])
		}
		pending[shard] = batch
	}
	l.mu.Unlock()

	delivered := 0
	for shardName, batch := range pending {
		shard := l.shard(shardName)
		if shard == nil {
			// Shard left the cluster; its hints are moot.
			l.dropHints(shardName, batch)
			continue
		}
		for _, s := range batch {
			if err := shard.PutSealed(s); err != nil {
				break
			}
			l.removeHint(shardName, s.RefID)
			delivered++
			l.drained.Add(1)
			if l.met != nil {
				l.met.hintsDrained.Inc()
			}
		}
	}
	if l.met != nil {
		l.met.backlog.Set(int64(l.HintBacklog()))
	}
	return delivered
}

func (l *Lake) removeHint(shard, refID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if m := l.hints[shard]; m != nil {
		delete(m, refID)
		if len(m) == 0 {
			delete(l.hints, shard)
		}
	}
}

func (l *Lake) dropHints(shard string, batch []store.Sealed) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.hints[shard]
	for _, s := range batch {
		delete(m, s.RefID)
	}
	if len(m) == 0 {
		delete(l.hints, shard)
	}
}

// StartPump starts the background hint pump: every interval it tries
// to drain the backlog, so a recovered replica converges without any
// explicit operator action. Idempotent; stopped by Close.
func (l *Lake) StartPump(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	l.pumpOnce.Do(func() {
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-l.pumpStop:
					return
				case <-t.C:
					if l.HintBacklog() > 0 {
						l.DrainHints()
					}
				}
			}
		}()
	})
}

// Close stops the hint pump and waits for any in-flight rebalance
// migration to finish.
func (l *Lake) Close() {
	l.mu.Lock()
	select {
	case <-l.pumpStop:
	default:
		close(l.pumpStop)
	}
	done := l.rebalanceDone
	l.mu.Unlock()
	if done != nil {
		<-done
	}
	l.wg.Wait()
}
