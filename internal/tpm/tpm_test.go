package tpm

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newTestTPM(t *testing.T) *TPM {
	t.Helper()
	tp, err := New("host-1")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tp
}

func TestPCRsStartZeroed(t *testing.T) {
	tp := newTestTPM(t)
	zero := make([]byte, 32)
	for i := 0; i < NumPCRs; i++ {
		v, err := tp.ReadPCR(i)
		if err != nil {
			t.Fatalf("ReadPCR(%d): %v", i, err)
		}
		if !bytes.Equal(v, zero) {
			t.Errorf("PCR %d not zeroed at creation", i)
		}
	}
}

func TestExtendChangesOnlyTargetPCR(t *testing.T) {
	tp := newTestTPM(t)
	before := make([][]byte, NumPCRs)
	for i := range before {
		before[i], _ = tp.ReadPCR(i)
	}
	if err := tp.Extend(PCRKernel, "kernel", []byte("vmlinuz")); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	for i := range before {
		after, _ := tp.ReadPCR(i)
		if i == PCRKernel {
			if bytes.Equal(after, before[i]) {
				t.Error("target PCR unchanged after Extend")
			}
		} else if !bytes.Equal(after, before[i]) {
			t.Errorf("PCR %d changed by Extend of PCR %d", i, PCRKernel)
		}
	}
}

func TestExtendOrderMatters(t *testing.T) {
	a := newTestTPM(t)
	b := newTestTPM(t)
	a.Extend(0, "m1", []byte("one"))
	a.Extend(0, "m2", []byte("two"))
	b.Extend(0, "m2", []byte("two"))
	b.Extend(0, "m1", []byte("one"))
	va, _ := a.ReadPCR(0)
	vb, _ := b.ReadPCR(0)
	if bytes.Equal(va, vb) {
		t.Error("different extend orders produced identical PCR values")
	}
}

func TestExtendDeterministic(t *testing.T) {
	a := newTestTPM(t)
	b := newTestTPM(t)
	for _, tp := range []*TPM{a, b} {
		tp.Extend(2, "bios", []byte("bios-v1"))
		tp.Extend(2, "kernel", []byte("kernel-v1"))
	}
	va, _ := a.ReadPCR(2)
	vb, _ := b.ReadPCR(2)
	if !bytes.Equal(va, vb) {
		t.Error("same measurement sequence produced different PCR values")
	}
}

func TestPCRBounds(t *testing.T) {
	tp := newTestTPM(t)
	if err := tp.Extend(-1, "x", nil); !errors.Is(err, ErrBadPCRIndex) {
		t.Errorf("Extend(-1): %v", err)
	}
	if err := tp.Extend(NumPCRs, "x", nil); !errors.Is(err, ErrBadPCRIndex) {
		t.Errorf("Extend(NumPCRs): %v", err)
	}
	if _, err := tp.ReadPCR(NumPCRs); !errors.Is(err, ErrBadPCRIndex) {
		t.Errorf("ReadPCR(NumPCRs): %v", err)
	}
	if _, err := tp.GenerateQuote([]byte("n"), []int{0, 99}); !errors.Is(err, ErrBadPCRIndex) {
		t.Errorf("GenerateQuote bad pcr: %v", err)
	}
}

func TestEventLogRecordsMeasurements(t *testing.T) {
	tp := newTestTPM(t)
	tp.Extend(0, "bios", []byte("bios"))
	tp.Extend(1, "hv", []byte("xen"))
	log := tp.EventLog()
	if len(log) != 2 {
		t.Fatalf("log length = %d, want 2", len(log))
	}
	if log[0].Description != "bios" || log[0].PCR != 0 {
		t.Errorf("log[0] = %+v", log[0])
	}
	if log[1].Description != "hv" || log[1].PCR != 1 {
		t.Errorf("log[1] = %+v", log[1])
	}
}

func TestQuoteVerifies(t *testing.T) {
	tp := newTestTPM(t)
	tp.Extend(0, "bios", []byte("bios"))
	nonce := []byte("fresh-nonce-123")
	q, err := tp.GenerateQuote(nonce, []int{0, 1})
	if err != nil {
		t.Fatalf("GenerateQuote: %v", err)
	}
	if !VerifyQuote(tp.AttestationKey(), q, nonce) {
		t.Error("valid quote rejected")
	}
}

func TestQuoteRejectsWrongNonce(t *testing.T) {
	tp := newTestTPM(t)
	q, err := tp.GenerateQuote([]byte("nonce-a"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if VerifyQuote(tp.AttestationKey(), q, []byte("nonce-b")) {
		t.Error("replayed quote with wrong nonce accepted")
	}
	if VerifyQuote(tp.AttestationKey(), nil, []byte("nonce-a")) {
		t.Error("nil quote accepted")
	}
}

func TestQuoteRejectsTamperedPCR(t *testing.T) {
	tp := newTestTPM(t)
	tp.Extend(0, "bios", []byte("bios"))
	nonce := []byte("n")
	q, err := tp.GenerateQuote(nonce, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	q.PCRs[0][0] ^= 1
	if VerifyQuote(tp.AttestationKey(), q, nonce) {
		t.Error("tampered quote accepted")
	}
}

func TestQuoteRejectsForeignKey(t *testing.T) {
	tp1 := newTestTPM(t)
	tp2 := newTestTPM(t)
	nonce := []byte("n")
	q, err := tp1.GenerateQuote(nonce, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if VerifyQuote(tp2.AttestationKey(), q, nonce) {
		t.Error("quote verified under another TPM's key")
	}
}

func TestQuoteMarshalRoundTrip(t *testing.T) {
	tp := newTestTPM(t)
	tp.Extend(3, "libs", []byte("libssl"))
	nonce := []byte("round-trip")
	q, err := tp.GenerateQuote(nonce, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := q.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	q2, err := UnmarshalQuote(data)
	if err != nil {
		t.Fatalf("UnmarshalQuote: %v", err)
	}
	if !VerifyQuote(tp.AttestationKey(), q2, nonce) {
		t.Error("quote failed verification after JSON round trip")
	}
	if _, err := UnmarshalQuote([]byte("{bad")); err == nil {
		t.Error("malformed quote accepted")
	}
}

// Property: extending with any sequence of measurements never leaves a
// PCR at its previous value (hash chain strictly evolves).
func TestQuickExtendAlwaysChanges(t *testing.T) {
	tp := newTestTPM(t)
	f := func(m []byte) bool {
		before, _ := tp.ReadPCR(5)
		if err := tp.Extend(5, "q", m); err != nil {
			return false
		}
		after, _ := tp.ReadPCR(5)
		return !bytes.Equal(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentExtends(t *testing.T) {
	tp := newTestTPM(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tp.Extend(g%NumPCRs, "concurrent", []byte{byte(g), byte(i)})
			}
		}(g)
	}
	wg.Wait()
	if got := len(tp.EventLog()); got != 400 {
		t.Errorf("event log has %d entries, want 400", got)
	}
}

func TestVTPMLifecycle(t *testing.T) {
	host := newTestTPM(t)
	mgr, err := NewVTPMManager(host)
	if err != nil {
		t.Fatalf("NewVTPMManager: %v", err)
	}
	inst, err := mgr.CreateInstance("vm-1")
	if err != nil {
		t.Fatalf("CreateInstance: %v", err)
	}
	if _, err := mgr.CreateInstance("vm-1"); err == nil {
		t.Error("duplicate vTPM creation accepted")
	}
	got, err := mgr.Instance("vm-1")
	if err != nil || got != inst {
		t.Errorf("Instance: %v", err)
	}
	if mgr.InstanceCount() != 1 {
		t.Errorf("InstanceCount = %d", mgr.InstanceCount())
	}
	if err := mgr.DestroyInstance("vm-1"); err != nil {
		t.Fatalf("DestroyInstance: %v", err)
	}
	if _, err := mgr.Instance("vm-1"); !errors.Is(err, ErrNoSuchVTPM) {
		t.Errorf("Instance after destroy: %v", err)
	}
	if err := mgr.DestroyInstance("vm-1"); !errors.Is(err, ErrNoSuchVTPM) {
		t.Errorf("double destroy: %v", err)
	}
}

func TestVTPMIsolation(t *testing.T) {
	host := newTestTPM(t)
	mgr, err := NewVTPMManager(host)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := mgr.CreateInstance("vm-a")
	b, _ := mgr.CreateInstance("vm-b")
	a.Extend(PCRKernel, "kernel-a", []byte("ka"))
	va, _ := a.ReadPCR(PCRKernel)
	vb, _ := b.ReadPCR(PCRKernel)
	if bytes.Equal(va, vb) {
		t.Error("extending vm-a's vTPM affected vm-b's")
	}
	// Distinct attestation keys: a quote from A must not verify under B's key.
	nonce := []byte("n")
	qa, err := a.GenerateQuote(nonce, []int{PCRKernel})
	if err != nil {
		t.Fatal(err)
	}
	if VerifyQuote(b.AttestationKey(), qa, nonce) {
		t.Error("vm-a quote verified under vm-b attestation key")
	}
}

func TestVTPMCreationIsMeasuredOnHost(t *testing.T) {
	host := newTestTPM(t)
	mgr, err := NewVTPMManager(host)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := host.ReadPCR(PCRVTPMEvents)
	if _, err := mgr.CreateInstance("vm-x"); err != nil {
		t.Fatal(err)
	}
	after, _ := host.ReadPCR(PCRVTPMEvents)
	if bytes.Equal(before, after) {
		t.Error("vTPM creation left no trace in host TPM")
	}
}

func TestDriverAccess(t *testing.T) {
	host := newTestTPM(t)
	mgr, err := NewVTPMManager(host)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.OpenDriver("vm-1"); !errors.Is(err, ErrNoSuchVTPM) {
		t.Errorf("OpenDriver before create: %v", err)
	}
	inst, _ := mgr.CreateInstance("vm-1")
	drv, err := mgr.OpenDriver("vm-1")
	if err != nil {
		t.Fatalf("OpenDriver: %v", err)
	}
	if err := drv.Extend(PCRContainer, "app-image", []byte("sha")); err != nil {
		t.Fatalf("driver Extend: %v", err)
	}
	viaDriver, err := drv.ReadPCR(PCRContainer)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := inst.ReadPCR(PCRContainer)
	if !bytes.Equal(viaDriver, direct) {
		t.Error("driver and direct PCR reads disagree")
	}
	nonce := []byte("drv")
	q, err := drv.GenerateQuote(nonce, []int{PCRContainer})
	if err != nil {
		t.Fatalf("driver quote: %v", err)
	}
	if !VerifyQuote(inst.AttestationKey(), q, nonce) {
		t.Error("driver quote failed verification")
	}
	// Driver becomes stale once the instance is destroyed.
	mgr.DestroyInstance("vm-1")
	if err := drv.Extend(0, "late", nil); !errors.Is(err, ErrNoSuchVTPM) {
		t.Errorf("stale driver Extend: %v", err)
	}
	if _, err := drv.ReadPCR(0); !errors.Is(err, ErrNoSuchVTPM) {
		t.Errorf("stale driver ReadPCR: %v", err)
	}
	if _, err := drv.GenerateQuote(nonce, []int{0}); !errors.Is(err, ErrNoSuchVTPM) {
		t.Errorf("stale driver quote: %v", err)
	}
}
