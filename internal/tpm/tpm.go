// Package tpm implements a software Trusted Platform Module and the vTPM
// manager of Figure 5. The paper's trust chain starts from "a root of
// trust at the hardware level (using TPMs and Attestation Service) for
// each server" (§II-A) and extends transitively — hypervisor, guest OS,
// containers — via vTPM instances (Berger et al.) hosted in a dedicated
// VM and accessed by client drivers.
//
// Substitution note (DESIGN.md): we have no physical TPM, so this package
// models the parts the attestation path consumes: a bank of PCRs that can
// only be extended (never set), a measurement event log, and signed
// quotes over selected PCRs with a caller-supplied nonce for freshness.
package tpm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"healthcloud/internal/hckrypto"
)

// NumPCRs is the number of platform configuration registers, matching
// the TPM 1.2 minimum.
const NumPCRs = 24

// Well-known PCR assignments used by the platform's measured boot.
const (
	PCRBios       = 0 // CRTM + BIOS (TCG conventional BIOS spec)
	PCRHypervisor = 1
	PCRKernel     = 2 // guest kernel (trusted kernel, Sailer et al. IMA)
	PCRLibraries  = 3 // libraries and drivers
	PCRContainer  = 4 // container images measured at start
	PCRVTPMEvents = 5 // vTPM lifecycle events recorded by the manager
)

// Errors returned by this package.
var (
	ErrBadPCRIndex = errors.New("tpm: PCR index out of range")
	ErrNoSuchVTPM  = errors.New("tpm: no vTPM instance for that VM")
)

// Event is one entry in the measurement log: what was extended where.
type Event struct {
	PCR         int    `json:"pcr"`
	Description string `json:"description"`
	Digest      []byte `json:"digest"`
}

// TPM is a software trusted platform module. The zero value is unusable;
// create instances with New so the endorsement key exists.
type TPM struct {
	mu     sync.RWMutex
	pcrs   [NumPCRs][]byte
	log    []Event
	ak     hckrypto.Signer // attestation key, never leaves the TPM
	akName string
}

// New creates a TPM with zeroed PCRs and a fresh attestation key under
// the platform's default signature scheme. The attestation (public) key
// is what the Attestation Service learns about out of band when hardware
// is enrolled.
func New(name string) (*TPM, error) {
	ak, err := hckrypto.NewSigner(hckrypto.DefaultScheme)
	if err != nil {
		return nil, fmt.Errorf("tpm: generating attestation key: %w", err)
	}
	t := &TPM{ak: ak, akName: name}
	for i := range t.pcrs {
		t.pcrs[i] = make([]byte, sha256.Size)
	}
	return t, nil
}

// Name returns the identity the TPM was enrolled under.
func (t *TPM) Name() string { return t.akName }

// AttestationKey returns the public verification key for this TPM's quotes.
func (t *TPM) AttestationKey() hckrypto.Verifier { return t.ak.Verifier() }

// Extend folds a measurement into a PCR: pcr = SHA-256(pcr || digest).
// This is the only way PCR contents change, which is what makes the
// boot-sequence ledger tamper-evident.
func (t *TPM) Extend(pcr int, description string, measured []byte) error {
	if pcr < 0 || pcr >= NumPCRs {
		return ErrBadPCRIndex
	}
	digest := sha256.Sum256(measured)
	t.mu.Lock()
	defer t.mu.Unlock()
	h := sha256.New()
	h.Write(t.pcrs[pcr])
	h.Write(digest[:])
	t.pcrs[pcr] = h.Sum(nil)
	t.log = append(t.log, Event{PCR: pcr, Description: description, Digest: digest[:]})
	return nil
}

// ReadPCR returns a copy of the current value of a PCR.
func (t *TPM) ReadPCR(pcr int) ([]byte, error) {
	if pcr < 0 || pcr >= NumPCRs {
		return nil, ErrBadPCRIndex
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]byte(nil), t.pcrs[pcr]...), nil
}

// EventLog returns a copy of the measurement log.
func (t *TPM) EventLog() []Event {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]Event(nil), t.log...)
}

// Quote is a signed statement of PCR contents at a point in time, bound
// to a verifier-chosen nonce for freshness.
type Quote struct {
	TPMName string         `json:"tpm_name"`
	Nonce   []byte         `json:"nonce"`
	PCRs    map[int][]byte `json:"pcrs"`
	Sig     []byte         `json:"sig"`
}

// GenerateQuote signs the selected PCRs together with the nonce.
func (t *TPM) GenerateQuote(nonce []byte, pcrs []int) (*Quote, error) {
	t.mu.RLock()
	sel := make(map[int][]byte, len(pcrs))
	for _, p := range pcrs {
		if p < 0 || p >= NumPCRs {
			t.mu.RUnlock()
			return nil, ErrBadPCRIndex
		}
		sel[p] = append([]byte(nil), t.pcrs[p]...)
	}
	t.mu.RUnlock()
	q := &Quote{TPMName: t.akName, Nonce: append([]byte(nil), nonce...), PCRs: sel}
	sig, err := hckrypto.SignEnvelope(t.ak, q.payload())
	if err != nil {
		return nil, fmt.Errorf("tpm: signing quote: %w", err)
	}
	q.Sig = sig
	return q, nil
}

// VerifyQuote checks a quote's signature and nonce against the TPM's
// attestation public key. Quotes carry algorithm-tagged signature
// envelopes, so AKs of any registered scheme verify here.
func VerifyQuote(ak hckrypto.Verifier, q *Quote, wantNonce []byte) bool {
	if q == nil || !bytesEqual(q.Nonce, wantNonce) {
		return false
	}
	return hckrypto.VerifyEnvelope(ak, q.payload(), q.Sig)
}

// payload serializes the quote deterministically for signing: name,
// nonce, then PCR indexes in ascending order with their values.
func (q *Quote) payload() []byte {
	h := sha256.New()
	writeField(h, []byte(q.TPMName))
	writeField(h, q.Nonce)
	for i := 0; i < NumPCRs; i++ {
		if v, ok := q.PCRs[i]; ok {
			var idx [4]byte
			binary.BigEndian.PutUint32(idx[:], uint32(i))
			h.Write(idx[:])
			writeField(h, v)
		}
	}
	return h.Sum(nil)
}

// Marshal encodes the quote for transmission to an attestation service.
func (q *Quote) Marshal() ([]byte, error) { return json.Marshal(q) }

// UnmarshalQuote decodes a quote received over the wire.
func UnmarshalQuote(data []byte) (*Quote, error) {
	var q Quote
	if err := json.Unmarshal(data, &q); err != nil {
		return nil, fmt.Errorf("tpm: decoding quote: %w", err)
	}
	return &q, nil
}

func writeField(h interface{ Write([]byte) (int, error) }, b []byte) {
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
	h.Write(lenBuf[:])
	h.Write(b)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
