package tpm

import (
	"fmt"
	"sync"
)

// VTPMManager realizes Figure 5: a vTPM Manager running in a dedicated VM
// provides per-guest-VM vTPM instances. Guest VMs reach their instance
// through a client driver; containers inside a VM reach it through an
// in-VM vTPM-manager container (modeled by Driver below). Each vTPM is a
// full software TPM whose attestation key is distinct, so compromising
// one guest's measurements cannot forge another's.
type VTPMManager struct {
	host *TPM // the hardware TPM the manager's own VM was measured into

	mu        sync.RWMutex
	instances map[string]*TPM
}

// NewVTPMManager creates a manager anchored to a host ("hardware") TPM.
// The manager records its own instantiation in the host TPM (in the
// dedicated vTPM-events PCR, so runtime vTPM lifecycle does not drift
// the hypervisor layer's golden value) and the chain host →
// vTPM-manager → guest vTPM stays measured.
func NewVTPMManager(host *TPM) (*VTPMManager, error) {
	if err := host.Extend(PCRVTPMEvents, "vtpm-manager-start", []byte("vtpm-manager")); err != nil {
		return nil, fmt.Errorf("tpm: anchoring vTPM manager: %w", err)
	}
	return &VTPMManager{host: host, instances: make(map[string]*TPM)}, nil
}

// CreateInstance provisions a vTPM for a VM. Creating an instance is a
// measured event on the host TPM.
func (m *VTPMManager) CreateInstance(vmID string) (*TPM, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.instances[vmID]; exists {
		return nil, fmt.Errorf("tpm: vTPM for VM %q already exists", vmID)
	}
	inst, err := New("vtpm:" + vmID)
	if err != nil {
		return nil, err
	}
	if err := m.host.Extend(PCRVTPMEvents, "vtpm-create:"+vmID, []byte(vmID)); err != nil {
		return nil, err
	}
	m.instances[vmID] = inst
	return inst, nil
}

// Instance returns the vTPM for a VM.
func (m *VTPMManager) Instance(vmID string) (*TPM, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	inst, ok := m.instances[vmID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVTPM, vmID)
	}
	return inst, nil
}

// DestroyInstance removes a VM's vTPM (VM teardown). The destruction is
// measured on the host so an auditor can see the instance existed.
func (m *VTPMManager) DestroyInstance(vmID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.instances[vmID]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchVTPM, vmID)
	}
	delete(m.instances, vmID)
	return m.host.Extend(PCRVTPMEvents, "vtpm-destroy:"+vmID, []byte(vmID))
}

// InstanceCount returns the number of live vTPM instances.
func (m *VTPMManager) InstanceCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.instances)
}

// Driver is the client-side access path of Figure 5: guest code (or a
// container adapter exposing the IPC interface) holds a Driver rather
// than the vTPM itself, mirroring the paper's client-driver/server-driver
// split. It restricts the guest to extend/read/quote on its own instance.
type Driver struct {
	vm  string
	mgr *VTPMManager
}

// OpenDriver connects a guest VM (or one of its containers) to its vTPM.
func (m *VTPMManager) OpenDriver(vmID string) (*Driver, error) {
	if _, err := m.Instance(vmID); err != nil {
		return nil, err
	}
	return &Driver{vm: vmID, mgr: m}, nil
}

// Extend measures into the guest's vTPM.
func (d *Driver) Extend(pcr int, description string, measured []byte) error {
	inst, err := d.mgr.Instance(d.vm)
	if err != nil {
		return err
	}
	return inst.Extend(pcr, description, measured)
}

// ReadPCR reads from the guest's vTPM.
func (d *Driver) ReadPCR(pcr int) ([]byte, error) {
	inst, err := d.mgr.Instance(d.vm)
	if err != nil {
		return nil, err
	}
	return inst.ReadPCR(pcr)
}

// GenerateQuote quotes the guest's vTPM.
func (d *Driver) GenerateQuote(nonce []byte, pcrs []int) (*Quote, error) {
	inst, err := d.mgr.Instance(d.vm)
	if err != nil {
		return nil, err
	}
	return inst.GenerateQuote(nonce, pcrs)
}
