package consent

import (
	"errors"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func newFixedService() (*Service, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1_600_000_000, 0)}
	return NewService(WithClock(clk.Now)), clk
}

func TestGrantAndCheck(t *testing.T) {
	s, _ := newFixedService()
	if err := s.Check("patient-1", "diabetes-study", PurposeResearch); !errors.Is(err, ErrNoConsent) {
		t.Errorf("pre-grant: got %v, want ErrNoConsent", err)
	}
	s.Grant("patient-1", "diabetes-study", PurposeResearch, 0)
	if err := s.Check("patient-1", "diabetes-study", PurposeResearch); err != nil {
		t.Errorf("post-grant: %v", err)
	}
}

func TestConsentIsScopedToGroupAndPurpose(t *testing.T) {
	s, _ := newFixedService()
	s.Grant("patient-1", "diabetes-study", PurposeResearch, 0)
	if err := s.Check("patient-1", "oncology-study", PurposeResearch); !errors.Is(err, ErrNoConsent) {
		t.Errorf("other group: %v", err)
	}
	if err := s.Check("patient-1", "diabetes-study", PurposeExport); !errors.Is(err, ErrNoConsent) {
		t.Errorf("other purpose: %v", err)
	}
	if err := s.Check("patient-2", "diabetes-study", PurposeResearch); !errors.Is(err, ErrNoConsent) {
		t.Errorf("other patient: %v", err)
	}
}

func TestRevoke(t *testing.T) {
	s, _ := newFixedService()
	s.Grant("patient-1", "study", PurposeResearch, 0)
	if n := s.Revoke("patient-1", "study", PurposeResearch); n != 1 {
		t.Errorf("Revoke = %d, want 1", n)
	}
	if err := s.Check("patient-1", "study", PurposeResearch); !errors.Is(err, ErrRevoked) {
		t.Errorf("post-revoke: got %v, want ErrRevoked", err)
	}
	if n := s.Revoke("patient-1", "study", PurposeResearch); n != 0 {
		t.Errorf("second Revoke = %d, want 0", n)
	}
	// Re-consent after revocation works (fresh grant).
	s.Grant("patient-1", "study", PurposeResearch, 0)
	if err := s.Check("patient-1", "study", PurposeResearch); err != nil {
		t.Errorf("re-grant: %v", err)
	}
}

func TestExpiry(t *testing.T) {
	s, clk := newFixedService()
	s.Grant("patient-1", "study", PurposeResearch, time.Hour)
	if err := s.Check("patient-1", "study", PurposeResearch); err != nil {
		t.Fatalf("fresh: %v", err)
	}
	clk.Advance(2 * time.Hour)
	if err := s.Check("patient-1", "study", PurposeResearch); !errors.Is(err, ErrExpired) {
		t.Errorf("expired: got %v, want ErrExpired", err)
	}
}

func TestActiveGroups(t *testing.T) {
	s, clk := newFixedService()
	s.Grant("p", "study-b", PurposeResearch, 0)
	s.Grant("p", "study-a", PurposeResearch, 0)
	s.Grant("p", "study-c", PurposeResearch, time.Hour)
	s.Grant("p", "study-d", PurposeExport, 0) // other purpose
	s.Revoke("p", "study-b", PurposeResearch)
	clk.Advance(2 * time.Hour) // expires study-c
	got := s.ActiveGroups("p", PurposeResearch)
	if len(got) != 1 || got[0] != "study-a" {
		t.Errorf("ActiveGroups = %v, want [study-a]", got)
	}
}

func TestEventsDrain(t *testing.T) {
	s, _ := newFixedService()
	s.Grant("p", "study", PurposeResearch, 0)
	s.Revoke("p", "study", PurposeResearch)
	events := s.Events()
	if len(events) != 2 || events[0].Kind != "granted" || events[1].Kind != "revoked" {
		t.Errorf("events = %+v", events)
	}
	if got := s.Events(); len(got) != 0 {
		t.Errorf("second drain = %+v", got)
	}
}

func TestConcurrentConsent(t *testing.T) {
	s := NewService()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			patient := "p"
			for i := 0; i < 50; i++ {
				s.Grant(patient, "study", PurposeResearch, 0)
				s.Check(patient, "study", PurposeResearch)
				s.Revoke(patient, "study", PurposeResearch)
			}
		}(g)
	}
	wg.Wait()
	// After every grant was revoked, the final state must be revoked.
	if err := s.Check("p", "study", PurposeResearch); !errors.Is(err, ErrRevoked) {
		t.Errorf("final state: %v", err)
	}
}
