// Package consent implements the consent management service (§II-B):
// "Since the platform supports uploading protected health information
// (PHI) via the Data Ingestion service, it is important to secure the
// consent of the patient/user for the uploaded data." Patients consent
// their data to Groups (healthcare studies/programs in the RBAC model);
// ingestion and export verify consent, and every grant or revocation is
// recorded on the provenance blockchain by the platform for GDPR/HIPAA
// consent provenance.
package consent

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Errors returned by this package.
var (
	ErrNoConsent = errors.New("consent: no active consent")
	ErrExpired   = errors.New("consent: consent expired")
	ErrRevoked   = errors.New("consent: consent revoked")
)

// Purpose narrows what a consent covers.
type Purpose string

// Consent purposes.
const (
	PurposeTreatment Purpose = "treatment"
	PurposeResearch  Purpose = "research"
	PurposeExport    Purpose = "export"
)

// Grant is one patient's consent of their data to a group for a purpose.
type Grant struct {
	Patient   string
	Group     string
	Purpose   Purpose
	GrantedAt time.Time
	ExpiresAt time.Time // zero = no expiry
	RevokedAt time.Time // zero = not revoked
}

// Event is the ledger-facing record of a consent change; the platform
// submits these to the provenance network.
type Event struct {
	Kind    string // "granted" | "revoked"
	Patient string
	Group   string
	Purpose Purpose
	At      time.Time
}

// Service is the consent decision point. Create with NewService.
type Service struct {
	mu     sync.RWMutex
	grants map[string][]*Grant // patient -> grants
	events []Event
	clock  func() time.Time
}

// Option configures the service.
type Option func(*Service)

// WithClock injects a time source for deterministic tests.
func WithClock(f func() time.Time) Option {
	return func(s *Service) { s.clock = f }
}

// NewService creates an empty consent service.
func NewService(opts ...Option) *Service {
	s := &Service{grants: make(map[string][]*Grant), clock: time.Now}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Grant records a patient's consent to a group for a purpose, with an
// optional TTL.
func (s *Service) Grant(patient, group string, purpose Purpose, ttl time.Duration) *Grant {
	now := s.clock()
	g := &Grant{Patient: patient, Group: group, Purpose: purpose, GrantedAt: now}
	if ttl > 0 {
		g.ExpiresAt = now.Add(ttl)
	}
	s.mu.Lock()
	s.grants[patient] = append(s.grants[patient], g)
	s.events = append(s.events, Event{Kind: "granted", Patient: patient, Group: group, Purpose: purpose, At: now})
	s.mu.Unlock()
	return g
}

// Revoke withdraws every active consent the patient gave to the group
// for the purpose. Revocation is how GDPR withdrawal-of-consent reaches
// the platform.
func (s *Service) Revoke(patient, group string, purpose Purpose) int {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, g := range s.grants[patient] {
		if g.Group == group && g.Purpose == purpose && g.RevokedAt.IsZero() {
			g.RevokedAt = now
			n++
		}
	}
	if n > 0 {
		s.events = append(s.events, Event{Kind: "revoked", Patient: patient, Group: group, Purpose: purpose, At: now})
	}
	return n
}

// Check returns nil if the patient has an active consent to the group
// for the purpose, and a typed error explaining why not otherwise.
func (s *Service) Check(patient, group string, purpose Purpose) error {
	now := s.clock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sawRevoked, sawExpired bool
	for _, g := range s.grants[patient] {
		if g.Group != group || g.Purpose != purpose {
			continue
		}
		if !g.RevokedAt.IsZero() && !g.RevokedAt.After(now) {
			sawRevoked = true
			continue
		}
		if !g.ExpiresAt.IsZero() && now.After(g.ExpiresAt) {
			sawExpired = true
			continue
		}
		return nil
	}
	switch {
	case sawRevoked:
		return fmt.Errorf("%w: %s -> %s (%s)", ErrRevoked, patient, group, purpose)
	case sawExpired:
		return fmt.Errorf("%w: %s -> %s (%s)", ErrExpired, patient, group, purpose)
	default:
		return fmt.Errorf("%w: %s -> %s (%s)", ErrNoConsent, patient, group, purpose)
	}
}

// ActiveGroups lists the groups a patient currently consents to for a
// purpose, sorted.
func (s *Service) ActiveGroups(patient string, purpose Purpose) []string {
	now := s.clock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for _, g := range s.grants[patient] {
		if g.Purpose != purpose || !g.RevokedAt.IsZero() {
			continue
		}
		if !g.ExpiresAt.IsZero() && now.After(g.ExpiresAt) {
			continue
		}
		set[g.Group] = true
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Events drains the pending ledger events (the caller commits them to
// the provenance blockchain and calls this once per sync).
func (s *Service) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.events
	s.events = nil
	return out
}
