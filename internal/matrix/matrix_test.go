package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromRows(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromRowsValidation(t *testing.T) {
	if _, err := FromRows(nil); !errors.Is(err, ErrDims) {
		t.Errorf("nil rows: %v", err)
	}
	if _, err := FromRows([][]float64{{}}); !errors.Is(err, ErrDims) {
		t.Errorf("empty row: %v", err)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDims) {
		t.Errorf("ragged rows: %v", err)
	}
}

func TestMul(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %f, want %f", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := Mul(a, New(3, 2)); !errors.Is(err, ErrDims) {
		t.Errorf("dim mismatch: %v", err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random(4, 4, 1, rng)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(i, i, 1)
	}
	c, err := Mul(a, eye)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(a, c); d != 0 {
		t.Errorf("A×I != A (diff %f)", d)
	}
}

func TestTranspose(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 0) != 1 {
		t.Error("transpose values wrong")
	}
	back := at.T()
	if d, _ := MaxAbsDiff(a, back); d != 0 {
		t.Error("double transpose not identity")
	}
}

func TestAddSubHadamardScale(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{10, 20}, {30, 40}})
	sum, err := Add(a, b)
	if err != nil || sum.At(1, 1) != 44 {
		t.Errorf("Add: %v, %f", err, sum.At(1, 1))
	}
	diff, err := Sub(b, a)
	if err != nil || diff.At(0, 0) != 9 {
		t.Errorf("Sub: %v", err)
	}
	had, err := Hadamard(a, b)
	if err != nil || had.At(1, 0) != 90 {
		t.Errorf("Hadamard: %v", err)
	}
	sc := a.Clone().Scale(2)
	if sc.At(0, 1) != 4 || a.At(0, 1) != 2 {
		t.Error("Scale/Clone interaction wrong")
	}
	if _, err := Add(a, New(3, 3)); !errors.Is(err, ErrDims) {
		t.Errorf("Add dims: %v", err)
	}
	if _, err := Sub(a, New(3, 3)); !errors.Is(err, ErrDims) {
		t.Errorf("Sub dims: %v", err)
	}
	if _, err := Hadamard(a, New(3, 3)); !errors.Is(err, ErrDims) {
		t.Errorf("Hadamard dims: %v", err)
	}
}

func TestFrobenius(t *testing.T) {
	a := mustFromRows(t, [][]float64{{3, 4}})
	if got := a.Frobenius(); got != 5 {
		t.Errorf("Frobenius = %f", got)
	}
	if New(2, 2).Frobenius() != 0 {
		t.Error("zero matrix norm nonzero")
	}
}

func TestRowDot(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := RowDot(a, 0, a, 1)
	if err != nil || got != 32 {
		t.Errorf("RowDot = %f, %v", got, err)
	}
	if _, err := RowDot(a, 0, New(2, 2), 0); !errors.Is(err, ErrDims) {
		t.Errorf("RowDot dims: %v", err)
	}
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ.
func TestQuickTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := Random(m, k, 1, rng)
		b := Random(k, n, 1, rng)
		ab, err := Mul(a, b)
		if err != nil {
			return false
		}
		btat, err := Mul(b.T(), a.T())
		if err != nil {
			return false
		}
		d, err := MaxAbsDiff(ab.T(), btat)
		return err == nil && d < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Frobenius norm is invariant under transpose.
func TestQuickFrobeniusTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Random(1+r.Intn(8), 1+r.Intn(8), 2, rng)
		return math.Abs(a.Frobenius()-a.T().Frobenius()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0,1) did not panic")
		}
	}()
	New(0, 1)
}
