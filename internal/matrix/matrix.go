// Package matrix is the dense float64 linear-algebra substrate for the
// platform's bioinformatics analytics (§V): JMF's multiplicative
// updates, collaborative-filtering matrix factorization, and Tiresias
// similarity math all build on it. Row-major flat storage, explicit
// dimension checks, no external dependencies.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense rows×cols matrix in row-major order.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// ErrDims reports incompatible dimensions.
var ErrDims = errors.New("matrix: dimension mismatch")

// New returns a zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows copies a [][]float64 into a Matrix.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrDims)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("%w: ragged row %d", ErrDims, i)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// Random fills a matrix with uniform values in [0, scale) — the standard
// nonnegative initialization for multiplicative updates.
func Random(rows, cols int, scale float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * scale
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns a×b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d × %dx%d", ErrDims, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, ErrDims
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Sub returns a−b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, ErrDims
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out, nil
}

// Scale multiplies in place by s and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Hadamard returns the element-wise product.
func Hadamard(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, ErrDims
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out, nil
}

// Frobenius returns the Frobenius norm.
func (m *Matrix) Frobenius() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max |a-b| element-wise (convergence checks).
func MaxAbsDiff(a, b *Matrix) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, ErrDims
	}
	max := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max, nil
}

// RowDot returns the dot product of row i of a and row j of b.
func RowDot(a *Matrix, i int, b *Matrix, j int) (float64, error) {
	if a.Cols != b.Cols {
		return 0, ErrDims
	}
	ar := a.Data[i*a.Cols : (i+1)*a.Cols]
	br := b.Data[j*b.Cols : (j+1)*b.Cols]
	s := 0.0
	for k := range ar {
		s += ar[k] * br[k]
	}
	return s, nil
}
