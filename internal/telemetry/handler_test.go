package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandlerDisabled(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil registry: status %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "telemetry disabled") {
		t.Fatalf("nil registry body = %q", rec.Body.String())
	}
}

func TestMetricsHandlerServesRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("probe_total").Add(3)
	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "probe_total 3") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestHandlersRejectNonGet(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(0, 0)
	for name, h := range map[string]http.Handler{
		"metrics": MetricsHandler(reg),
		"traces":  TraceHandler(tr),
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/x/abc", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s POST: status %d, want 405", name, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("%s Allow header = %q", name, allow)
		}
	}
}

func TestTraceHandlerErrorPaths(t *testing.T) {
	rec := httptest.NewRecorder()
	TraceHandler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/abc", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil tracer: status %d, want 404", rec.Code)
	}

	tr := NewTracer(0, 0)
	rec = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/deadbeef", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "unknown trace") {
		t.Fatalf("unknown trace body = %q", rec.Body.String())
	}
}

func TestTraceHandlerServesSpans(t *testing.T) {
	tr := NewTracer(0, 0)
	sp := tr.StartRoot("op")
	sp.End()
	id := sp.Context().TraceID.String()
	rec := httptest.NewRecorder()
	// No Go 1.22 path value set: the handler falls back to the last path
	// segment.
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	var body TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != id || len(body.Spans) != 1 || len(body.Stages) != 1 {
		t.Fatalf("unexpected response: %+v", body)
	}
}
