package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	g := r.Gauge("g")
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge moved")
	}
	h := r.Histogram("h_seconds")
	h.Observe(time.Millisecond)
	h.ObserveSince(h.Start())
	if !h.Start().IsZero() {
		t.Fatal("nil histogram should not call time.Now")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q, err %v", sb.String(), err)
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("adds_total")
	const goroutines, each = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*each {
		t.Fatalf("counter = %d, want %d", got, goroutines*each)
	}
	// The same name returns the same handle.
	if r.Counter("adds_total") != c {
		t.Fatal("counter handle not stable")
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWithBuckets("lat_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0 (≤1ms)
	h.Observe(5 * time.Millisecond)   // bucket 1 (≤10ms)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second) // +Inf bucket
	snap := r.Snapshot().Histograms["lat_seconds"]
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	wantCounts := []uint64{1, 2, 0, 1}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, snap.Counts[i], want)
		}
	}
	wantSum := 500*time.Microsecond + 10*time.Millisecond + 2*time.Second
	if snap.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	if mean := snap.Mean(); mean != wantSum/4 {
		t.Fatalf("mean = %v", mean)
	}
	// Median falls in the 1–10ms bucket.
	if q := snap.Quantile(0.5); q < time.Millisecond || q > 10*time.Millisecond {
		t.Fatalf("p50 = %v, want within (1ms, 10ms]", q)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`bus_published_total{topic="ingest"}`).Add(3)
	r.Counter(`bus_published_total{topic="audit"}`).Add(1)
	r.Gauge("queue_depth").Set(7)
	r.HistogramWithBuckets("req_seconds", []float64{0.5}).Observe(time.Second)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE bus_published_total counter",
		`bus_published_total{topic="ingest"} 3`,
		`bus_published_total{topic="audit"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{le="0.5"} 0`,
		`req_seconds_bucket{le="+Inf"} 1`,
		"req_seconds_sum 1",
		"req_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family even with two labeled series.
	if n := strings.Count(out, "# TYPE bus_published_total"); n != 1 {
		t.Errorf("TYPE line count = %d, want 1", n)
	}
}

func TestGaugeAddAndSet(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(10)
	if g.Value() != 10 {
		t.Fatalf("gauge = %d, want 10", g.Value())
	}
}

// TestHistogramSnapshotSub checks the windowed-difference view a metrics
// history ring computes: new-minus-old bucket counts, with mismatched or
// reversed snapshots collapsing to the zero snapshot.
func TestHistogramSnapshotSub(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramWithBuckets("w", []float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	older := reg.Snapshot().Histograms["w"]
	h.Observe(500 * time.Millisecond)
	h.Observe(600 * time.Millisecond)
	newer := reg.Snapshot().Histograms["w"]

	win := newer.Sub(older)
	if win.Count != 2 {
		t.Fatalf("window count = %d, want 2", win.Count)
	}
	if q := win.Quantile(0.5); q < 100*time.Millisecond || q > time.Second {
		t.Fatalf("window median %v not in the 0.1-1s bucket", q)
	}
	// The full snapshot's median sits lower: half the observations are fast.
	if q := newer.Quantile(0.5); q > 500*time.Millisecond {
		t.Fatalf("full median %v unexpectedly high", q)
	}

	if got := older.Sub(newer); got.Count != 0 {
		t.Fatalf("reversed Sub count = %d, want 0", got.Count)
	}
	other := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: make([]uint64, 3)}
	if got := newer.Sub(other); got.Count != 0 {
		t.Fatalf("mismatched-bounds Sub count = %d, want 0", got.Count)
	}
}

// TestPrometheusLabelEscaping feeds hostile label values — backslashes,
// embedded quotes, raw newlines — through the render path and checks
// the exposition text stays parseable (one metric per line, specials
// escaped per the format).
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		name string // registry name with inline labels
		want string // escaped label block in the output
	}{
		{`evil_total{path="C:\temp"}`, `evil_total{path="C:\\temp"}`},
		{`evil2_total{msg="say \"hi\""}`, `evil2_total{msg="say \"hi\""}`},
		{`evil3_total{raw="say "hi""}`, `evil3_total{raw="say \"hi\""}`},
		{"evil4_total{nl=\"a\nb\"}", `evil4_total{nl="a\nb"}`},
		{`evil5_total{bs="tail\"}`, `evil5_total{bs="tail\\"}`},
		{`ok_total{topic="ingest"}`, `ok_total{topic="ingest"}`},
	}
	r := NewRegistry()
	for _, c := range cases {
		r.Counter(c.name).Add(1)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, c := range cases {
		if !strings.Contains(out, c.want+" 1") {
			t.Errorf("output missing %q:\n%s", c.want, out)
		}
	}
	// No raw newline may survive inside any line's label block.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "{") && !strings.Contains(line, "}") {
			t.Errorf("unterminated label block (raw newline leaked): %q", line)
		}
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWithBuckets("lat_seconds", []float64{0.1, 1})
	trace := newTraceID()
	h.ObserveTrace(500*time.Millisecond, trace) // 0.1 < 0.5 <= 1 bucket
	h.Observe(time.Millisecond)                 // no exemplar

	snap := r.Snapshot().Histograms["lat_seconds"]
	if snap.Exemplars == nil {
		t.Fatal("snapshot has no exemplars")
	}
	if ex := snap.Exemplars[1]; ex == nil || ex.TraceID != trace.String() || ex.Value != 0.5 {
		t.Fatalf("bucket-1 exemplar = %+v, want trace %s value 0.5", snap.Exemplars[1], trace)
	}
	if snap.Exemplars[0] != nil {
		t.Fatalf("bucket-0 exemplar = %+v, want none", snap.Exemplars[0])
	}

	// Latest observation wins the slot.
	trace2 := newTraceID()
	h.ObserveTrace(700*time.Millisecond, trace2)
	snap = r.Snapshot().Histograms["lat_seconds"]
	if ex := snap.Exemplars[1]; ex.TraceID != trace2.String() {
		t.Fatalf("exemplar not replaced: %+v", ex)
	}

	// The exposition text carries the OpenMetrics exemplar suffix.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `lat_seconds_bucket{le="1"} 3 # {trace_id="` + trace2.String() + `"} 0.7`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing exemplar %q:\n%s", want, sb.String())
	}

	// Sub (the history window view) carries the newer exemplars.
	win := snap.Sub(HistogramSnapshot{Bounds: snap.Bounds, Counts: make([]uint64, len(snap.Counts))})
	if win.Exemplars == nil || win.Exemplars[1] == nil || win.Exemplars[1].TraceID != trace2.String() {
		t.Fatalf("Sub dropped exemplars: %+v", win.Exemplars)
	}
}
