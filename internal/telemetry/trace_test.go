package telemetry

import (
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Context().Valid() {
		t.Fatal("nil span context valid")
	}
	child := tr.StartSpan("y", SpanContext{TraceID: newTraceID(), SpanID: newSpanID()})
	if child != nil {
		t.Fatal("nil tracer produced a child span")
	}
	if tr.Trace("t") != nil || tr.TraceIDs() != nil {
		t.Fatal("nil tracer stored spans")
	}
}

func TestSpanParentLinks(t *testing.T) {
	tr := NewTracer(0, 0)
	root := tr.StartRoot("pipeline")
	ctx := root.Context()
	if !ctx.Valid() {
		t.Fatal("root context invalid")
	}
	child := tr.StartSpan("stage", ctx)
	grand := tr.StartSpan("substage", child.Context())
	grand.End()
	child.End()
	root.SetAttr("outcome", "ok")
	root.End()

	spans := tr.Trace(ctx.TraceID.String())
	if len(spans) != 3 {
		t.Fatalf("stored %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		if sp.TraceID != ctx.TraceID.String() {
			t.Fatalf("span %s trace %s, want %s", sp.Name, sp.TraceID, ctx.TraceID)
		}
		byName[sp.Name] = sp
	}
	if byName["pipeline"].ParentID != "" {
		t.Fatal("root has a parent")
	}
	if byName["stage"].ParentID != byName["pipeline"].SpanID {
		t.Fatal("stage not a child of pipeline")
	}
	if byName["substage"].ParentID != byName["stage"].SpanID {
		t.Fatal("substage not a child of stage")
	}
	if byName["pipeline"].Attrs["outcome"] != "ok" {
		t.Fatal("attr lost")
	}
}

func TestStartSpanWithInvalidParentStartsRoot(t *testing.T) {
	tr := NewTracer(0, 0)
	sp := tr.StartSpan("orphan", SpanContext{})
	sp.End()
	ctx := sp.Context()
	if !ctx.Valid() {
		t.Fatal("orphan got no trace")
	}
	spans := tr.Trace(ctx.TraceID.String())
	if len(spans) != 1 || spans[0].ParentID != "" {
		t.Fatalf("orphan stored wrong: %+v", spans)
	}
}

func TestTraceEvictionFIFO(t *testing.T) {
	tr := NewTracer(2, 0)
	var ids []string
	for i := 0; i < 3; i++ {
		sp := tr.StartRoot("r")
		sp.End()
		ids = append(ids, sp.Context().TraceID.String())
	}
	if got := tr.Trace(ids[0]); got != nil {
		t.Fatal("oldest trace not evicted")
	}
	for _, id := range ids[1:] {
		if tr.Trace(id) == nil {
			t.Fatalf("trace %s evicted too early", id)
		}
	}
}

func TestSpanCapPerTrace(t *testing.T) {
	tr := NewTracer(0, 2)
	root := tr.StartRoot("r")
	root.End()
	for i := 0; i < 3; i++ {
		tr.StartSpan("s", root.Context()).End()
	}
	if got := len(tr.Trace(root.Context().TraceID.String())); got != 2 {
		t.Fatalf("stored %d spans, want cap 2", got)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer(0, 0)
	sp := tr.StartRoot("once")
	sp.End()
	sp.End()
	if got := len(tr.Trace(sp.Context().TraceID.String())); got != 1 {
		t.Fatalf("recorded %d times, want 1", got)
	}
}

func TestStageBreakdownSelfTime(t *testing.T) {
	base := time.Now()
	spans := []SpanRecord{
		{TraceID: "t", SpanID: "a", Name: "process", Start: base, Duration: 100 * time.Millisecond},
		{TraceID: "t", SpanID: "b", ParentID: "a", Name: "decrypt", Start: base.Add(time.Millisecond), Duration: 30 * time.Millisecond},
		{TraceID: "t", SpanID: "c", ParentID: "a", Name: "store", Start: base.Add(40 * time.Millisecond), Duration: 50 * time.Millisecond},
	}
	stats := StageBreakdown(spans)
	if len(stats) != 3 {
		t.Fatalf("got %d stages, want 3", len(stats))
	}
	// Ordered by earliest start: process, decrypt, store.
	if stats[0].Name != "process" || stats[1].Name != "decrypt" || stats[2].Name != "store" {
		t.Fatalf("order = %v", []string{stats[0].Name, stats[1].Name, stats[2].Name})
	}
	if stats[0].Self != 20*time.Millisecond {
		t.Fatalf("process self = %v, want 20ms", stats[0].Self)
	}
	if stats[1].Self != 30*time.Millisecond || stats[2].Self != 50*time.Millisecond {
		t.Fatalf("leaf self times wrong: %v, %v", stats[1].Self, stats[2].Self)
	}
	if stats[0].MeanSelf() != 20*time.Millisecond {
		t.Fatalf("mean self = %v", stats[0].MeanSelf())
	}
}

func TestStartSpanAtBackdatesStart(t *testing.T) {
	tr := NewTracer(0, 0)
	start := time.Now().Add(-time.Second)
	parent := SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}
	sp := tr.StartSpanAt("bus.hop", parent, start)
	sp.End()
	spans := tr.Trace(parent.TraceID.String())
	if len(spans) != 1 {
		t.Fatalf("stored %d spans", len(spans))
	}
	if spans[0].Duration < time.Second {
		t.Fatalf("duration %v, want >= 1s (backdated)", spans[0].Duration)
	}
	if spans[0].ParentID != parent.SpanID.String() {
		t.Fatal("parent link lost")
	}
}

// TestEvictionAndDropCounters forces both overflow paths of the span
// store and checks the honesty counters: whole-trace FIFO eviction and
// the per-trace span cap each leave a trail, so trace-completeness
// claims (E16) can be audited against them.
func TestEvictionAndDropCounters(t *testing.T) {
	tr := NewTracer(2, 2)
	if tr.EvictedTraces() != 0 || tr.Dropped() != 0 {
		t.Fatal("fresh tracer reports losses")
	}
	var roots []*Span
	for i := 0; i < 4; i++ {
		sp := tr.StartRoot("r")
		sp.End()
		roots = append(roots, sp)
	}
	if got := tr.EvictedTraces(); got != 2 {
		t.Fatalf("EvictedTraces = %d, want 2 (4 traces through a 2-trace store)", got)
	}
	if got := tr.StoredTraces(); got != 2 {
		t.Fatalf("StoredTraces = %d, want 2", got)
	}
	// Overflow the newest trace's span cap: 2 stored + root = cap hit.
	for i := 0; i < 3; i++ {
		tr.StartSpan("s", roots[3].Context()).End()
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	// A nil tracer reports zero losses rather than panicking.
	var nilT *Tracer
	if nilT.EvictedTraces() != 0 || nilT.StoredTraces() != 0 {
		t.Fatal("nil tracer reports losses")
	}
}
