// Package telemetry is the platform's observability subsystem: a
// metrics registry (counters, gauges, fixed-bucket latency histograms)
// rendered in Prometheus text format, a tracer producing parent-linked
// spans through the asynchronous ingest pipeline and across the bus,
// and opt-in pprof wiring. The paper claims its performance properties
// qualitatively — multi-level caching cuts access cost "by orders of
// magnitude" (§I, §III), ingestion "is a slow process" (§II-B),
// blockchain provenance has "acceptable overhead" (§IV) — and this
// package is what turns those claims into per-stage numbers (see
// experiment E16).
//
// Everything is nil-safe with zero overhead when disabled, mirroring
// internal/faultinject: a nil *Registry, *Tracer, or *Telemetry injects
// nothing and measures nothing, so production paths pay only a nil
// check. The hot path is lock-free: counters stripe atomic adds across
// cache lines, histograms use atomic bucket arrays.
package telemetry

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// counterStripes spreads concurrent Add calls across cache lines so a
// hot counter shared by many goroutines doesn't serialize on one word.
const counterStripes = 8

// stripe is one padded slot of a striped counter (64-byte cache line).
type stripe struct {
	n atomic.Uint64
	_ [7]uint64
}

// Counter is a monotonically increasing metric. A nil Counter is valid
// and counts nothing.
type Counter struct {
	name    string
	stripes [counterStripes]stripe
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	// rand/v2 reads per-goroutine state: a cheap, lock-free stripe pick.
	c.stripes[rand.Uint64()&(counterStripes-1)].n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. A nil Gauge is valid.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets spans 1µs to 10s — wide enough for in-process
// crypto (µs) through modeled WAN transfers and Raft ordering (ms–s).
var DefaultLatencyBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	1e-3, 5e-3, 25e-3, 100e-3, 500e-3,
	1, 5, 10,
}

// exemplarRec is the internal latest-wins exemplar slot of one bucket.
type exemplarRec struct {
	trace TraceID
	value float64 // observed value, seconds
}

// Exemplar links a histogram bucket back to a trace that landed in it
// (OpenMetrics `# {trace_id="..."} value` convention).
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// Histogram is a fixed-bucket latency histogram (bounds in seconds,
// cumulative at render time, +Inf implicit). A nil Histogram is valid.
type Histogram struct {
	name      string
	bounds    []float64       // ascending upper bounds, seconds
	counts    []atomic.Uint64 // len(bounds)+1; last is +Inf
	exemplars []atomic.Pointer[exemplarRec]
	count     atomic.Uint64
	sum       atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveTrace(d, TraceID{}) }

// ObserveTrace records one duration and, when trace is non-zero,
// stamps it as the bucket's exemplar (latest wins) so a latency spike
// in /metrics points at a trace that caused it.
func (h *Histogram) ObserveTrace(d time.Duration, trace TraceID) {
	if h == nil {
		return
	}
	sec := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, sec)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	if !trace.IsZero() && i < len(h.exemplars) {
		h.exemplars[i].Store(&exemplarRec{trace: trace, value: sec})
	}
}

// Start returns the observation start time, or the zero time on a nil
// histogram — pair with ObserveSince so disabled telemetry never calls
// time.Now.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the time elapsed since start (no-op on nil
// histogram or zero start).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// ObserveSinceTrace is ObserveSince with an exemplar trace ID.
func (h *Histogram) ObserveSinceTrace(start time.Time, trace TraceID) {
	if h == nil || start.IsZero() {
		return
	}
	h.ObserveTrace(time.Since(start), trace)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count  uint64        `json:"count"`
	Sum    time.Duration `json:"sum_ns"`
	Bounds []float64     `json:"bounds"`
	Counts []uint64      `json:"counts"` // per-bucket (not cumulative); last is +Inf
	// Exemplars is parallel to Counts (nil entries = no exemplar yet);
	// omitted entirely when no bucket has one.
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Sub returns the histogram of observations recorded after older was
// taken (bucket-wise difference) — the windowed view a metrics history
// ring needs for sliding-window quantiles. Snapshots with different
// bucket bounds (or an "older" snapshot that is actually newer) yield
// the zero snapshot.
func (s HistogramSnapshot) Sub(older HistogramSnapshot) HistogramSnapshot {
	if older.Count > s.Count || len(older.Counts) != len(s.Counts) {
		return HistogramSnapshot{}
	}
	for i, b := range older.Bounds {
		if i >= len(s.Bounds) || s.Bounds[i] != b {
			return HistogramSnapshot{}
		}
	}
	out := HistogramSnapshot{
		Count:  s.Count - older.Count,
		Sum:    s.Sum - older.Sum,
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]uint64, len(s.Counts)),
		// Exemplars are latest-wins stamps, not counters: the newer
		// snapshot's exemplars are the window's exemplars.
		Exemplars: s.Exemplars,
	}
	for i := range s.Counts {
		if older.Counts[i] > s.Counts[i] {
			return HistogramSnapshot{}
		}
		out.Counts[i] = s.Counts[i] - older.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the containing bucket.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	lower := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			if i < len(s.Bounds) {
				lower = s.Bounds[i]
			}
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(s.Bounds) { // +Inf bucket: report its lower bound
				return time.Duration(lower * float64(time.Second))
			}
			frac := (rank - seen) / float64(c)
			sec := lower + (s.Bounds[i]-lower)*frac
			return time.Duration(sec * float64(time.Second))
		}
		seen += float64(c)
		if i < len(s.Bounds) {
			lower = s.Bounds[i]
		}
	}
	return time.Duration(lower * float64(time.Second))
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry holds named metrics. Names may carry Prometheus-style
// constant labels inline (`bus_published_total{topic="ingest"}`). The
// nil *Registry is valid: every accessor returns a nil metric whose
// operations no-op, so instrumented code pays one nil check when
// telemetry is off.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. Callers
// should cache the handle; the returned pointer is stable.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named histogram with
// DefaultLatencyBuckets.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWithBuckets(name, DefaultLatencyBuckets)
}

// HistogramWithBuckets returns (creating if needed) the named histogram
// with the given ascending upper bounds in seconds.
func (r *Registry) HistogramWithBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = &Histogram{
		name:      name,
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplarRec], len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    time.Duration(h.sum.Load()),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		for i := range h.exemplars {
			rec := h.exemplars[i].Load()
			if rec == nil {
				continue
			}
			if hs.Exemplars == nil {
				hs.Exemplars = make([]*Exemplar, len(h.counts))
			}
			hs.Exemplars[i] = &Exemplar{TraceID: rec.trace.String(), Value: rec.value}
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// splitName separates an inline label block from a metric name:
// `x_total{topic="a"}` → base `x_total`, labels `topic="a"`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline must be
// escaped or the line is unparseable.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// sanitizeLabels re-escapes an inline label block's values. Metric
// names embed labels as `k="v"` pairs built by callers (often via
// strconv.Quote, sometimes raw); this parser decodes each quoted value
// and re-emits it with exposition-format escaping so hostile values
// (backslashes, quotes, newlines) can't corrupt the scrape output.
func sanitizeLabels(labels string) string {
	if labels == "" {
		return labels
	}
	var b strings.Builder
	b.Grow(len(labels) + 8)
	i := 0
	for i < len(labels) {
		// Copy the key up to '='.
		for i < len(labels) && labels[i] != '=' {
			b.WriteByte(labels[i])
			i++
		}
		if i >= len(labels) {
			break
		}
		b.WriteByte('=')
		i++
		if i >= len(labels) || labels[i] != '"' {
			// Not a quoted value; copy until the next comma.
			for i < len(labels) && labels[i] != ',' {
				b.WriteByte(labels[i])
				i++
			}
		} else {
			i++ // opening quote
			var val strings.Builder
			for i < len(labels) {
				c := labels[i]
				if c == '\\' && i+1 < len(labels) {
					if labels[i+1] == '"' && !hasClosingQuote(labels, i+2) {
						// Trailing `\"` with nothing to close the value
						// later: the backslash is content and this
						// quote is the closer.
						val.WriteByte('\\')
						i += 2
						break
					}
					switch labels[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						// Not a format escape (e.g. the \t of a raw
						// Windows path): the backslash is content.
						val.WriteByte('\\')
						val.WriteByte(labels[i+1])
					}
					i += 2
					continue
				}
				// A closing quote only ends the value when followed by
				// ',' or end of block; raw interior quotes are content.
				if c == '"' && (i+1 >= len(labels) || labels[i+1] == ',') {
					i++
					break
				}
				val.WriteByte(c)
				i++
			}
			b.WriteByte('"')
			b.WriteString(escapeLabelValue(val.String()))
			b.WriteByte('"')
		}
		if i < len(labels) && labels[i] == ',' {
			b.WriteByte(',')
			i++
		}
	}
	return b.String()
}

// hasClosingQuote reports whether s[from:] contains an unescaped quote
// in closing position (followed by ',' or end of block). It decides the
// ambiguous `\"` sequence: with a later closer it is an escaped quote;
// without one the backslash is content and the quote ends the value.
func hasClosingQuote(s string, from int) bool {
	for j := from; j < len(s); j++ {
		if s[j] == '\\' {
			j++
			continue
		}
		if s[j] == '"' && (j+1 >= len(s) || s[j+1] == ',') {
			return true
		}
	}
	return false
}

// joinLabels renders a label block from existing labels (re-escaped for
// the exposition format) plus extras (already well-formed, e.g. le=).
func joinLabels(labels string, extra ...string) string {
	parts := make([]string, 0, 2)
	if labels != "" {
		parts = append(parts, sanitizeLabels(labels))
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (families sorted by name, one # TYPE line per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	type line struct{ base, text string }
	var lines []line

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitName(name)
		lines = append(lines, line{base, fmt.Sprintf("%s%s %d\n", base, joinLabels(labels), snap.Counters[name])})
	}
	typed := make(map[string]string)
	for _, name := range names {
		base, _ := splitName(name)
		typed[base] = "counter"
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitName(name)
		lines = append(lines, line{base, fmt.Sprintf("%s%s %d\n", base, joinLabels(labels), snap.Gauges[name])})
		typed[base] = "gauge"
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		base, labels := splitName(name)
		typed[base] = "histogram"
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			// OpenMetrics exemplar: `# {trace_id="..."} value` links
			// the bucket to a trace that landed in it.
			exemplar := ""
			if i < len(h.Exemplars) && h.Exemplars[i] != nil {
				exemplar = fmt.Sprintf(" # {trace_id=%q} %g", h.Exemplars[i].TraceID, h.Exemplars[i].Value)
			}
			lines = append(lines, line{base, fmt.Sprintf("%s_bucket%s %d%s\n",
				base, joinLabels(labels, `le="`+le+`"`), cum, exemplar)})
		}
		lines = append(lines, line{base, fmt.Sprintf("%s_sum%s %g\n", base, joinLabels(labels), h.Sum.Seconds())})
		lines = append(lines, line{base, fmt.Sprintf("%s_count%s %d\n", base, joinLabels(labels), h.Count)})
	}

	sort.SliceStable(lines, func(i, j int) bool { return lines[i].base < lines[j].base })
	lastBase := ""
	for _, l := range lines {
		if l.base != lastBase {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", l.base, typed[l.base]); err != nil {
				return err
			}
			lastBase = l.base
		}
		if _, err := io.WriteString(w, l.text); err != nil {
			return err
		}
	}
	return nil
}
