// Package telemetry is the platform's observability subsystem: a
// metrics registry (counters, gauges, fixed-bucket latency histograms)
// rendered in Prometheus text format, a tracer producing parent-linked
// spans through the asynchronous ingest pipeline and across the bus,
// and opt-in pprof wiring. The paper claims its performance properties
// qualitatively — multi-level caching cuts access cost "by orders of
// magnitude" (§I, §III), ingestion "is a slow process" (§II-B),
// blockchain provenance has "acceptable overhead" (§IV) — and this
// package is what turns those claims into per-stage numbers (see
// experiment E16).
//
// Everything is nil-safe with zero overhead when disabled, mirroring
// internal/faultinject: a nil *Registry, *Tracer, or *Telemetry injects
// nothing and measures nothing, so production paths pay only a nil
// check. The hot path is lock-free: counters stripe atomic adds across
// cache lines, histograms use atomic bucket arrays.
package telemetry

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// counterStripes spreads concurrent Add calls across cache lines so a
// hot counter shared by many goroutines doesn't serialize on one word.
const counterStripes = 8

// stripe is one padded slot of a striped counter (64-byte cache line).
type stripe struct {
	n atomic.Uint64
	_ [7]uint64
}

// Counter is a monotonically increasing metric. A nil Counter is valid
// and counts nothing.
type Counter struct {
	name    string
	stripes [counterStripes]stripe
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	// rand/v2 reads per-goroutine state: a cheap, lock-free stripe pick.
	c.stripes[rand.Uint64()&(counterStripes-1)].n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. A nil Gauge is valid.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets spans 1µs to 10s — wide enough for in-process
// crypto (µs) through modeled WAN transfers and Raft ordering (ms–s).
var DefaultLatencyBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	1e-3, 5e-3, 25e-3, 100e-3, 500e-3,
	1, 5, 10,
}

// Histogram is a fixed-bucket latency histogram (bounds in seconds,
// cumulative at render time, +Inf implicit). A nil Histogram is valid.
type Histogram struct {
	name   string
	bounds []float64       // ascending upper bounds, seconds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Start returns the observation start time, or the zero time on a nil
// histogram — pair with ObserveSince so disabled telemetry never calls
// time.Now.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the time elapsed since start (no-op on nil
// histogram or zero start).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count  uint64        `json:"count"`
	Sum    time.Duration `json:"sum_ns"`
	Bounds []float64     `json:"bounds"`
	Counts []uint64      `json:"counts"` // per-bucket (not cumulative); last is +Inf
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Sub returns the histogram of observations recorded after older was
// taken (bucket-wise difference) — the windowed view a metrics history
// ring needs for sliding-window quantiles. Snapshots with different
// bucket bounds (or an "older" snapshot that is actually newer) yield
// the zero snapshot.
func (s HistogramSnapshot) Sub(older HistogramSnapshot) HistogramSnapshot {
	if older.Count > s.Count || len(older.Counts) != len(s.Counts) {
		return HistogramSnapshot{}
	}
	for i, b := range older.Bounds {
		if i >= len(s.Bounds) || s.Bounds[i] != b {
			return HistogramSnapshot{}
		}
	}
	out := HistogramSnapshot{
		Count:  s.Count - older.Count,
		Sum:    s.Sum - older.Sum,
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]uint64, len(s.Counts)),
	}
	for i := range s.Counts {
		if older.Counts[i] > s.Counts[i] {
			return HistogramSnapshot{}
		}
		out.Counts[i] = s.Counts[i] - older.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the containing bucket.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	lower := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			if i < len(s.Bounds) {
				lower = s.Bounds[i]
			}
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(s.Bounds) { // +Inf bucket: report its lower bound
				return time.Duration(lower * float64(time.Second))
			}
			frac := (rank - seen) / float64(c)
			sec := lower + (s.Bounds[i]-lower)*frac
			return time.Duration(sec * float64(time.Second))
		}
		seen += float64(c)
		if i < len(s.Bounds) {
			lower = s.Bounds[i]
		}
	}
	return time.Duration(lower * float64(time.Second))
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry holds named metrics. Names may carry Prometheus-style
// constant labels inline (`bus_published_total{topic="ingest"}`). The
// nil *Registry is valid: every accessor returns a nil metric whose
// operations no-op, so instrumented code pays one nil check when
// telemetry is off.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. Callers
// should cache the handle; the returned pointer is stable.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named histogram with
// DefaultLatencyBuckets.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWithBuckets(name, DefaultLatencyBuckets)
}

// HistogramWithBuckets returns (creating if needed) the named histogram
// with the given ascending upper bounds in seconds.
func (r *Registry) HistogramWithBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    time.Duration(h.sum.Load()),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// splitName separates an inline label block from a metric name:
// `x_total{topic="a"}` → base `x_total`, labels `topic="a"`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels renders a label block from existing labels plus extras.
func joinLabels(labels string, extra ...string) string {
	parts := make([]string, 0, 2)
	if labels != "" {
		parts = append(parts, labels)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (families sorted by name, one # TYPE line per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	type line struct{ base, text string }
	var lines []line

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitName(name)
		lines = append(lines, line{base, fmt.Sprintf("%s%s %d\n", base, joinLabels(labels), snap.Counters[name])})
	}
	typed := make(map[string]string)
	for _, name := range names {
		base, _ := splitName(name)
		typed[base] = "counter"
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitName(name)
		lines = append(lines, line{base, fmt.Sprintf("%s%s %d\n", base, joinLabels(labels), snap.Gauges[name])})
		typed[base] = "gauge"
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		base, labels := splitName(name)
		typed[base] = "histogram"
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			lines = append(lines, line{base, fmt.Sprintf("%s_bucket%s %d\n",
				base, joinLabels(labels, `le="`+le+`"`), cum)})
		}
		lines = append(lines, line{base, fmt.Sprintf("%s_sum%s %g\n", base, joinLabels(labels), h.Sum.Seconds())})
		lines = append(lines, line{base, fmt.Sprintf("%s_count%s %d\n", base, joinLabels(labels), h.Count)})
	}

	sort.SliceStable(lines, func(i, j int) bool { return lines[i].base < lines[j].base })
	lastBase := ""
	for _, l := range lines {
		if l.base != lastBase {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", l.base, typed[l.base]); err != nil {
				return err
			}
			lastBase = l.base
		}
		if _, err := io.WriteString(w, l.text); err != nil {
			return err
		}
	}
	return nil
}
