package telemetry

import "context"

// Telemetry bundles the metrics registry and tracer one platform
// instance shares. A nil *Telemetry disables observability everywhere
// it is wired, at the cost of a nil check.
type Telemetry struct {
	Metrics *Registry
	Tracer  *Tracer
}

// New creates an enabled Telemetry with default-sized stores and the
// default tail-sampling policy (keep everything, pin errors and the
// slowest roots — a superset of the legacy FIFO retention).
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Tracer: NewTailTracer(0, 0, DefaultPolicy())}
}

// Registry returns the metrics registry (nil when disabled).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Metrics
}

// Spans returns the tracer (nil when disabled).
func (t *Telemetry) Spans() *Tracer {
	if t == nil {
		return nil
	}
	return t.Tracer
}

// ctxKey keys the span context stored in a context.Context.
type ctxKey struct{}

// ContextWithSpan stashes a span context for handlers further down an
// HTTP request chain (explicit propagation elsewhere; context-based
// only where the signature is fixed by net/http).
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext returns the stashed span context (zero if none).
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
