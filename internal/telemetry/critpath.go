package telemetry

import (
	"sort"
	"time"
)

// PathSegment is one stage's share of a trace's critical path.
type PathSegment struct {
	Name  string        `json:"name"`
	Self  time.Duration `json:"self_ns"`
	Share float64       `json:"share"` // fraction of the trace's wall time
}

// criticalPathSpanCap bounds the boundary sweep: traces wider than this
// skip critical-path attribution (the sweep is O(n²) in span count).
const criticalPathSpanCap = 384

// CriticalPath attributes a trace's wall time to the deepest span
// active at each instant — the classic critical-path view: a parent's
// time only counts where no child covers it, and concurrent children
// resolve to the deepest/latest-started one. Gaps covered by no span
// appear as "(unattributed)". Returns nil for empty traces or traces
// wider than criticalPathSpanCap; segments are sorted by Self
// descending.
func CriticalPath(spans []SpanRecord) []PathSegment {
	if len(spans) == 0 || len(spans) > criticalPathSpanCap {
		return nil
	}

	type node struct {
		start, end time.Time
		name       string
		spanID     string
		parentID   string
		depth      int
	}
	nodes := make([]node, 0, len(spans))
	byID := make(map[string]int, len(spans))
	for _, sp := range spans {
		end := sp.Start.Add(sp.Duration)
		nodes = append(nodes, node{start: sp.Start, end: end, name: sp.Name, spanID: sp.SpanID, parentID: sp.ParentID})
		if sp.SpanID != "" {
			byID[sp.SpanID] = len(nodes) - 1
		}
	}

	// Depth via parent links, memoized; the hop cap guards against
	// cycles in malformed input.
	var depthOf func(i, hops int) int
	memo := make([]int, len(nodes))
	for i := range memo {
		memo[i] = -1
	}
	depthOf = func(i, hops int) int {
		if memo[i] >= 0 {
			return memo[i]
		}
		d := 0
		if hops < len(nodes) && nodes[i].parentID != "" {
			if pi, ok := byID[nodes[i].parentID]; ok && pi != i {
				d = depthOf(pi, hops+1) + 1
			}
		}
		memo[i] = d
		return d
	}
	for i := range nodes {
		nodes[i].depth = depthOf(i, 0)
	}

	// Elementary intervals between sorted span boundaries.
	bounds := make([]time.Time, 0, 2*len(nodes))
	for _, n := range nodes {
		bounds = append(bounds, n.start, n.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].Before(bounds[j]) })
	dedup := bounds[:0]
	for _, b := range bounds {
		if len(dedup) == 0 || !b.Equal(dedup[len(dedup)-1]) {
			dedup = append(dedup, b)
		}
	}
	bounds = dedup
	if len(bounds) < 2 {
		return nil
	}

	self := make(map[string]time.Duration)
	var wall time.Duration
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		width := b.Sub(a)
		if width <= 0 {
			continue
		}
		wall += width
		best := -1
		for j := range nodes {
			n := &nodes[j]
			if n.start.After(a) || n.end.Before(b) {
				continue
			}
			if best < 0 {
				best = j
				continue
			}
			bn := &nodes[best]
			if n.depth != bn.depth {
				if n.depth > bn.depth {
					best = j
				}
				continue
			}
			if !n.start.Equal(bn.start) {
				if n.start.After(bn.start) {
					best = j
				}
				continue
			}
			if n.spanID > bn.spanID {
				best = j
			}
		}
		if best >= 0 {
			self[nodes[best].name] += width
		} else {
			self["(unattributed)"] += width
		}
	}

	out := make([]PathSegment, 0, len(self))
	for name, d := range self {
		seg := PathSegment{Name: name, Self: d}
		if wall > 0 {
			seg.Share = float64(d) / float64(wall)
		}
		out = append(out, seg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}
