package telemetry

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier. The zero value means "no
// trace". Binary IDs keep the span hot path allocation-free; the hex
// string form appears only at the edges (JSON, HTTP, Status).
type TraceID [16]byte

// IsZero reports whether the ID is the "no trace" sentinel.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as lowercase hex ("" for the zero ID).
func (id TraceID) String() string {
	if id.IsZero() {
		return ""
	}
	var dst [32]byte
	hex.Encode(dst[:], id[:])
	return string(dst[:])
}

// MarshalJSON renders the hex form ("" for zero).
func (id TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON parses the hex form ("" or null yields the zero ID).
func (id *TraceID) UnmarshalJSON(b []byte) error {
	s := string(b)
	if s == "null" || s == `""` {
		*id = TraceID{}
		return nil
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	parsed, ok := ParseTraceID(s)
	if !ok {
		*id = TraceID{}
		return nil
	}
	*id = parsed
	return nil
}

// ParseTraceID decodes the 32-hex-char string form of a trace ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, true
}

// SpanID is a 64-bit span identifier; zero means "no span".
type SpanID [8]byte

// IsZero reports whether the ID is the "no span" sentinel.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as lowercase hex ("" for the zero ID).
func (id SpanID) String() string {
	if id.IsZero() {
		return ""
	}
	var dst [16]byte
	hex.Encode(dst[:], id[:])
	return string(dst[:])
}

// MarshalJSON renders the hex form ("" for zero).
func (id SpanID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON parses the hex form ("" or null yields the zero ID).
func (id *SpanID) UnmarshalJSON(b []byte) error {
	s := string(b)
	if s == "null" || s == `""` {
		*id = SpanID{}
		return nil
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	var parsed SpanID
	if len(s) != 2*len(parsed) {
		*id = SpanID{}
		return nil
	}
	if _, err := hex.Decode(parsed[:], []byte(s)); err != nil {
		*id = SpanID{}
		return nil
	}
	*id = parsed
	return nil
}

// newTraceID returns a fresh non-zero trace ID. Span IDs need
// uniqueness, not secrecy, so the runtime-sharded generator beats
// crypto/rand's per-call syscall on the span-creation hot path.
func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], rand.Uint64())
		binary.BigEndian.PutUint64(id[8:], rand.Uint64())
	}
	return id
}

// newSpanID returns a fresh non-zero span ID.
func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], rand.Uint64())
	}
	return id
}

// SpanContext identifies a span for explicit propagation — through bus
// messages, across pipeline stages, between goroutines. The zero value
// is "no trace" and produces no spans downstream.
type SpanContext struct {
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id"`
}

// Valid reports whether the context names a real trace.
func (c SpanContext) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// SpanRecord is one completed span as stored and served by
// GET /traces/{id}. IDs are hex strings here — the record is the wire
// and storage form, converted once per span at trace retention time.
type SpanRecord struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// spanAttrCap is the per-span attribute slab size. The widest span in
// the pipeline today carries 3 attrs; overflow is counted, not stored.
const spanAttrCap = 8

// attrKV is one slot of a span's preallocated attribute slab.
type attrKV struct{ k, v string }

// Span is an in-flight operation. Obtain from a Tracer, call End when
// the operation finishes; only ended spans reach the store. A nil *Span
// is valid and does nothing, so callers never nil-check.
//
// In tail-sampling mode spans are pooled: once ended AND their trace
// finished, the object is recycled. Capture Context() before End (all
// production call sites do) and never touch a span after End.
type Span struct {
	tracer *Tracer

	mu       sync.Mutex
	traceID  TraceID
	spanID   SpanID
	parentID SpanID
	name     string
	start    time.Time
	end      time.Time
	attrs    [spanAttrCap]attrKV
	nattrs   int
	errored  bool
	ended    bool

	next *Span // intrusive list link while buffered in a pending trace
}

// Context returns the span's identity for propagation. Capture it
// before End in tail-sampling mode (spans are pooled after retention).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// SetAttr attaches a key/value label (no PHI — stage names, IDs,
// outcomes only, same rule as the audit log). Setting "error" marks the
// whole trace as errored for the tail-sampling keep decision. Calls
// after End are dropped.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	if k == "error" {
		s.errored = true
	}
	for i := 0; i < s.nattrs; i++ {
		if s.attrs[i].k == k {
			s.attrs[i].v = v
			s.mu.Unlock()
			return
		}
	}
	if s.nattrs < spanAttrCap {
		s.attrs[s.nattrs] = attrKV{k, v}
		s.nattrs++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.tracer.attrDropped.Add(1)
}

// End completes the span and records it. Safe to call more than once;
// only the first call records.
func (s *Span) End() { s.EndAt(time.Time{}) }

// EndAt completes the span with an explicit end time (zero = now).
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = end
	s.mu.Unlock()
	s.tracer.record(s)
}

// toRecord converts the span to its storage form. traceID is the
// shared hex string of the whole trace so sibling spans don't each
// re-encode it.
func (s *Span) toRecord(traceID string) SpanRecord {
	rec := SpanRecord{
		TraceID:  traceID,
		SpanID:   s.spanID.String(),
		Name:     s.name,
		Start:    s.start,
		Duration: s.end.Sub(s.start),
	}
	if !s.parentID.IsZero() {
		rec.ParentID = s.parentID.String()
	}
	if s.nattrs > 0 {
		rec.Attrs = make(map[string]string, s.nattrs)
		for i := 0; i < s.nattrs; i++ {
			rec.Attrs[s.attrs[i].k] = s.attrs[i].v
		}
	}
	return rec
}

// retainedTrace is one finished (or FIFO-stored) trace in the
// retention store.
type retainedTrace struct {
	key      TraceID
	id       string // hex form, shared by every span record
	rootName string
	wall     time.Duration
	pinned   bool // errored or slow-K — lives in pinnedOrder
	elem     *list.Element
	spans    []SpanRecord
}

// Tracer creates spans and keeps a bounded in-memory store of completed
// traces. With a Policy installed (NewTailTracer / SetPolicy) it
// tail-samples: spans buffer per trace until the trace finishes, then
// the policy decides retention. Without one it falls back to the legacy
// per-span FIFO store. A nil *Tracer is valid and creates nothing.
type Tracer struct {
	maxTraces int
	maxPerTr  int

	// clock is the injected time source (hot paths must not call the
	// real clock directly — CI lints for it). Atomic so SetClock is
	// race-free against concurrent span starts.
	clock  atomic.Pointer[func() time.Time]
	policy atomic.Pointer[Policy] // nil = legacy FIFO mode

	attrDropped atomic.Uint64

	mu       sync.Mutex
	retained map[TraceID]*retainedTrace
	// Retention order: unpinned traces evict before pinned ones, both
	// FIFO within their class.
	normalOrder *list.List // *retainedTrace, oldest first
	pinnedOrder *list.List // *retainedTrace, oldest first

	// Tail-sampling state (nil in FIFO mode).
	pending            map[TraceID]*pendingTrace
	pendHead, pendTail *pendingTrace // insertion-ordered DLL, oldest first
	slowHeaps          map[string][]slowEntry
	discardMemo        map[TraceID]struct{}
	discardRing        []TraceID
	discardIdx         int
	spanPool           sync.Pool
	pendPool           sync.Pool

	dropped     uint64 // spans past the per-trace cap
	evicted     uint64 // whole traces evicted past maxTraces
	finished    uint64 // traces that reached a tail-sampling decision
	discarded   uint64 // finished traces the policy declined to keep
	lateDropped uint64 // spans arriving after their trace was discarded
	pinnedErr   uint64 // traces kept because a span carried an error
	pinnedSlow  uint64 // traces kept by the slow-K heap
}

// Tracer store defaults: enough for a full E16 run (hundreds of uploads
// × ~15 spans) without unbounded growth under production traffic.
const (
	DefaultMaxTraces        = 2048
	DefaultMaxSpansPerTrace = 512
)

// NewTracer creates a legacy FIFO tracer storing up to maxTraces traces
// of up to maxSpansPerTrace spans each (<=0 selects the defaults).
// Spans record individually as they end and whole traces evict FIFO —
// the pre-tail-sampling behavior, kept as the A arm of experiment E23.
func NewTracer(maxTraces, maxSpansPerTrace int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	t := &Tracer{
		maxTraces:   maxTraces,
		maxPerTr:    maxSpansPerTrace,
		retained:    make(map[TraceID]*retainedTrace),
		normalOrder: list.New(),
		pinnedOrder: list.New(),
	}
	clock := time.Now
	t.clock.Store(&clock)
	return t
}

// SetClock injects the tracer's time source (tests; the pending-age
// sweep and span timestamps all flow through it).
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.clock.Store(&now)
}

func (t *Tracer) now() time.Time { return (*t.clock.Load())() }

// StartRoot opens a new trace and returns its root span.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, SpanContext{TraceID: newTraceID()}, t.now())
}

// StartSpan opens a child span under parent. An invalid parent starts a
// fresh root trace, so callers propagate contexts without branching.
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	return t.StartSpanAt(name, parent, t.now())
}

// StartSpanAt opens a child span with an explicit start time — used for
// bus hops, whose span covers publish→receive and can only be created
// at the receiving end.
func (t *Tracer) StartSpanAt(name string, parent SpanContext, start time.Time) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		parent = SpanContext{TraceID: newTraceID()}
	}
	return t.start(name, parent, start)
}

func (t *Tracer) start(name string, parent SpanContext, start time.Time) *Span {
	var s *Span
	if t.policy.Load() != nil {
		s = t.spanPool.Get().(*Span)
	} else {
		// Legacy FIFO mode never pools: pre-tail callers may read
		// Context() after End, which pooling would make unsafe.
		s = new(Span)
	}
	s.tracer = t
	s.traceID = parent.TraceID
	s.spanID = newSpanID()
	s.parentID = parent.SpanID
	s.name = name
	s.start = start
	return s
}

// recycleSpan resets a span field-wise (the struct embeds a mutex, so
// no wholesale copy) and returns it to the pool.
func (t *Tracer) recycleSpan(s *Span) {
	s.tracer = nil
	s.traceID = TraceID{}
	s.spanID = SpanID{}
	s.parentID = SpanID{}
	s.name = ""
	s.start = time.Time{}
	s.end = time.Time{}
	for i := 0; i < s.nattrs; i++ {
		s.attrs[i] = attrKV{}
	}
	s.nattrs = 0
	s.errored = false
	s.ended = false
	s.next = nil
	t.spanPool.Put(s)
}

// record stores a completed span: buffered per trace in tail mode,
// immediately retained in FIFO mode.
func (t *Tracer) record(s *Span) {
	if t == nil {
		return
	}
	p := t.policy.Load()
	now := t.now()
	t.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	if p == nil {
		t.recordFIFOLocked(s)
	} else {
		t.recordTailLocked(p, s, now)
		t.sweepLocked(p, now)
	}
	t.mu.Unlock()
}

// recordFIFOLocked is the legacy path: convert and append immediately,
// evicting the oldest trace when the store is full.
func (t *Tracer) recordFIFOLocked(s *Span) {
	rt, ok := t.retained[s.traceID]
	if !ok {
		for len(t.retained) >= t.maxTraces {
			if !t.evictOneLocked() {
				break
			}
		}
		rt = &retainedTrace{key: s.traceID, id: s.traceID.String(), rootName: s.name}
		rt.elem = t.normalOrder.PushBack(rt)
		t.retained[s.traceID] = rt
	}
	if len(rt.spans) >= t.maxPerTr {
		t.dropped++
		return
	}
	rt.spans = append(rt.spans, s.toRecord(rt.id))
}

// evictOneLocked removes the oldest evictable trace — unpinned first,
// pinned only when nothing else remains. Reports false on an empty
// store.
func (t *Tracer) evictOneLocked() bool {
	el := t.normalOrder.Front()
	fromPinned := false
	if el == nil {
		el = t.pinnedOrder.Front()
		fromPinned = true
	}
	if el == nil {
		return false
	}
	rt := el.Value.(*retainedTrace)
	if fromPinned {
		t.pinnedOrder.Remove(el)
		t.dropSlowEntryLocked(rt.rootName, rt.key)
	} else {
		t.normalOrder.Remove(el)
	}
	delete(t.retained, rt.key)
	t.memoDiscardLocked(rt.key)
	t.evicted++
	return true
}

// Trace returns the completed spans of a trace, sorted by start time
// (nil if unknown, discarded, or evicted). Pending traces — finished
// root not yet seen — are served from their buffer so in-flight work
// stays observable.
func (t *Tracer) Trace(id string) []SpanRecord {
	if t == nil {
		return nil
	}
	key, ok := ParseTraceID(id)
	if !ok {
		return nil
	}
	t.mu.Lock()
	var out []SpanRecord
	if rt, ok := t.retained[key]; ok {
		out = append([]SpanRecord(nil), rt.spans...)
	} else if pt, ok := t.pending[key]; ok {
		hexID := key.String()
		for s := pt.head; s != nil; s = s.next {
			out = append(out, s.toRecord(hexID))
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceIDs lists stored trace IDs: unpinned then pinned retained traces
// (oldest first within each class), then still-pending traces.
func (t *Tracer) TraceIDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.retained)+len(t.pending))
	for el := t.normalOrder.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*retainedTrace).id)
	}
	for el := t.pinnedOrder.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*retainedTrace).id)
	}
	for pt := t.pendHead; pt != nil; pt = pt.next {
		out = append(out, pt.key.String())
	}
	return out
}

// Dropped reports spans discarded because their trace hit the per-trace
// span cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// EvictedTraces reports whole traces discarded because the store hit
// its trace cap. Together with Dropped it makes trace-completeness
// claims honest: a trace served by Trace may be missing siblings only
// if one of these counters moved (see experiment E16).
func (t *Tracer) EvictedTraces() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// StoredTraces reports how many traces the tracer currently holds
// (retained plus pending).
func (t *Tracer) StoredTraces() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.retained) + len(t.pending)
}

// StageStat is the aggregate of one span name across a span set.
type StageStat struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"` // sum of span durations
	Self  time.Duration `json:"self_ns"`  // Total minus time covered by child spans
	first time.Time
}

// MeanSelf returns the average self time per span.
func (s StageStat) MeanSelf() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Self / time.Duration(s.Count)
}

// StageBreakdown aggregates spans by name into per-stage totals and
// self times (duration minus direct children), ordered by each stage's
// earliest start — the pipeline order for a traced ingest run. Spans
// from multiple traces may be concatenated; span IDs keep parent links
// unambiguous.
func StageBreakdown(spans []SpanRecord) []StageStat {
	childTime := make(map[string]time.Duration, len(spans))
	for _, sp := range spans {
		if sp.ParentID != "" {
			childTime[sp.ParentID] += sp.Duration
		}
	}
	agg := make(map[string]*StageStat)
	for _, sp := range spans {
		st := agg[sp.Name]
		if st == nil {
			st = &StageStat{Name: sp.Name, first: sp.Start}
			agg[sp.Name] = st
		}
		if sp.Start.Before(st.first) {
			st.first = sp.Start
		}
		st.Count++
		st.Total += sp.Duration
		self := sp.Duration - childTime[sp.SpanID]
		if self < 0 {
			self = 0
		}
		st.Self += self
	}
	out := make([]StageStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].first.Before(out[j].first) })
	return out
}
