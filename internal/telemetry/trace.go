package telemetry

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// SpanContext identifies a span for explicit propagation — through bus
// messages, across pipeline stages, between goroutines. The zero value
// is "no trace" and produces no spans downstream.
type SpanContext struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Valid reports whether the context names a real trace.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// SpanRecord is one completed span as stored and served by
// GET /traces/{id}.
type SpanRecord struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Span is an in-flight operation. Obtain from a Tracer, call End when
// the operation finishes; only ended spans reach the store. A nil *Span
// is valid and does nothing, so callers never nil-check.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	rec   SpanRecord
	ended bool
}

// Context returns the span's identity for propagation.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// SetAttr attaches a key/value label (no PHI — stage names, IDs,
// outcomes only, same rule as the audit log).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[k] = v
	s.mu.Unlock()
}

// End completes the span and records it. Safe to call more than once;
// only the first call records.
func (s *Span) End() { s.EndAt(time.Time{}) }

// EndAt completes the span with an explicit end time (zero = now).
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if end.IsZero() {
		end = time.Now()
	}
	s.rec.Duration = end.Sub(s.rec.Start)
	rec := s.rec
	s.mu.Unlock()
	s.tracer.record(rec)
}

// traceBuf holds one trace's completed spans.
type traceBuf struct {
	spans   []SpanRecord
	evictAt *list.Element
}

// Tracer creates spans and keeps a bounded in-memory store of completed
// ones, evicting whole traces FIFO past MaxTraces. A nil *Tracer is
// valid and creates nothing.
type Tracer struct {
	maxTraces  int
	maxPerTr   int
	mu         sync.Mutex
	traces     map[string]*traceBuf
	evictOrder *list.List // trace IDs, oldest first
	dropped    uint64
	evicted    uint64 // whole traces evicted FIFO past maxTraces
}

// Tracer store defaults: enough for a full E16 run (hundreds of uploads
// × ~15 spans) without unbounded growth under production traffic.
const (
	DefaultMaxTraces        = 2048
	DefaultMaxSpansPerTrace = 512
)

// NewTracer creates a tracer storing up to maxTraces traces of up to
// maxSpansPerTrace spans each (<=0 selects the defaults).
func NewTracer(maxTraces, maxSpansPerTrace int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	return &Tracer{
		maxTraces:  maxTraces,
		maxPerTr:   maxSpansPerTrace,
		traces:     make(map[string]*traceBuf),
		evictOrder: list.New(),
	}
}

// newID returns n (a multiple of 8, at most 16) random bytes
// hex-encoded. Span IDs need uniqueness, not secrecy, so the
// runtime-sharded generator beats crypto/rand's per-call syscall on the
// span-creation hot path; stack buffers keep it to the one string
// allocation.
func newID(n int) string {
	var src [16]byte
	for i := 0; i < n; i += 8 {
		binary.BigEndian.PutUint64(src[i:], rand.Uint64())
	}
	var dst [32]byte
	hex.Encode(dst[:2*n], src[:n])
	return string(dst[:2*n])
}

// StartRoot opens a new trace and returns its root span.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, SpanContext{TraceID: newID(16)}, time.Now())
}

// StartSpan opens a child span under parent. An invalid parent starts a
// fresh root trace, so callers propagate contexts without branching.
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	return t.StartSpanAt(name, parent, time.Now())
}

// StartSpanAt opens a child span with an explicit start time — used for
// bus hops, whose span covers publish→receive and can only be created
// at the receiving end.
func (t *Tracer) StartSpanAt(name string, parent SpanContext, start time.Time) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		parent = SpanContext{TraceID: newID(16)}
	}
	return t.start(name, parent, start)
}

func (t *Tracer) start(name string, parent SpanContext, start time.Time) *Span {
	return &Span{tracer: t, rec: SpanRecord{
		TraceID:  parent.TraceID,
		SpanID:   newID(8),
		ParentID: parent.SpanID,
		Name:     name,
		Start:    start,
	}}
}

// record stores a completed span, evicting the oldest trace when full.
func (t *Tracer) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf, ok := t.traces[rec.TraceID]
	if !ok {
		for len(t.traces) >= t.maxTraces {
			oldest := t.evictOrder.Front()
			if oldest == nil {
				break
			}
			t.evictOrder.Remove(oldest)
			delete(t.traces, oldest.Value.(string))
			t.evicted++
		}
		buf = &traceBuf{evictAt: t.evictOrder.PushBack(rec.TraceID)}
		t.traces[rec.TraceID] = buf
	}
	if len(buf.spans) >= t.maxPerTr {
		t.dropped++
		return
	}
	buf.spans = append(buf.spans, rec)
}

// Trace returns the completed spans of a trace, sorted by start time
// (nil if unknown or evicted).
func (t *Tracer) Trace(id string) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	buf, ok := t.traces[id]
	var out []SpanRecord
	if ok {
		out = append([]SpanRecord(nil), buf.spans...)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceIDs lists stored trace IDs, oldest first.
func (t *Tracer) TraceIDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, t.evictOrder.Len())
	for el := t.evictOrder.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(string))
	}
	return out
}

// Dropped reports spans discarded because their trace hit the per-trace
// span cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// EvictedTraces reports whole traces discarded FIFO because the store hit
// its trace cap. Together with Dropped it makes trace-completeness claims
// honest: a trace served by Trace may be missing siblings only if one of
// these counters moved (see experiment E16).
func (t *Tracer) EvictedTraces() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// StoredTraces reports how many traces the store currently holds.
func (t *Tracer) StoredTraces() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// StageStat is the aggregate of one span name across a span set.
type StageStat struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"` // sum of span durations
	Self  time.Duration `json:"self_ns"`  // Total minus time covered by child spans
	first time.Time
}

// MeanSelf returns the average self time per span.
func (s StageStat) MeanSelf() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Self / time.Duration(s.Count)
}

// StageBreakdown aggregates spans by name into per-stage totals and
// self times (duration minus direct children), ordered by each stage's
// earliest start — the pipeline order for a traced ingest run. Spans
// from multiple traces may be concatenated; span IDs keep parent links
// unambiguous.
func StageBreakdown(spans []SpanRecord) []StageStat {
	childTime := make(map[string]time.Duration, len(spans))
	for _, sp := range spans {
		if sp.ParentID != "" {
			childTime[sp.ParentID] += sp.Duration
		}
	}
	agg := make(map[string]*StageStat)
	for _, sp := range spans {
		st := agg[sp.Name]
		if st == nil {
			st = &StageStat{Name: sp.Name, first: sp.Start}
			agg[sp.Name] = st
		}
		if sp.Start.Before(st.first) {
			st.first = sp.Start
		}
		st.Count++
		st.Total += sp.Duration
		self := sp.Duration - childTime[sp.SpanID]
		if self < 0 {
			self = 0
		}
		st.Self += self
	}
	out := make([]StageStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].first.Before(out[j].first) })
	return out
}
