package telemetry

import (
	"sync"
	"testing"
	"time"
)

// finishOne runs a complete mini-trace (root + one child) through tr
// and finishes it, returning the trace ID's hex form.
func finishOne(tr *Tracer, rootName string) string {
	root := tr.StartRoot(rootName)
	sc := root.Context()
	child := tr.StartSpan("stage", sc)
	child.End()
	root.End()
	tr.FinishTrace(sc.TraceID)
	return sc.TraceID.String()
}

func TestTailRetainsErrorTraces(t *testing.T) {
	tr := NewTailTracer(0, 0, Policy{SampleRate: 0, SlowK: 0})
	root := tr.StartRoot("op")
	sc := root.Context()
	child := tr.StartSpan("stage", sc)
	child.SetAttr("error", "boom")
	child.End()
	root.End()
	tr.FinishTrace(sc.TraceID)

	if got := tr.Trace(sc.TraceID.String()); len(got) != 2 {
		t.Fatalf("errored trace spans = %d, want 2 (always kept)", len(got))
	}
	st := tr.Stats()
	if st.PinnedErrors != 1 {
		t.Fatalf("PinnedErrors = %d, want 1", st.PinnedErrors)
	}

	// A clean trace under SampleRate 0 and SlowK 0 is discarded.
	id := finishOne(tr, "op")
	if got := tr.Trace(id); got != nil {
		t.Fatalf("clean trace retained under SampleRate 0: %v", got)
	}
	if st := tr.Stats(); st.Discarded != 1 {
		t.Fatalf("Discarded = %d, want 1", st.Discarded)
	}
}

func TestTailPinsTopKSlowest(t *testing.T) {
	tr := NewTailTracer(0, 0, Policy{SampleRate: 0, SlowK: 2})
	base := time.Unix(1000, 0)

	// Three traces of 10ms, 30ms, 20ms wall: K=2 keeps 30ms and 20ms.
	mk := func(wall time.Duration) string {
		root := tr.StartSpanAt("op", SpanContext{}, base)
		sc := root.Context()
		root.EndAt(base.Add(wall))
		tr.FinishTrace(sc.TraceID)
		return sc.TraceID.String()
	}
	// The first two fill the heap regardless of wall time; the third
	// must displace the 10ms one.
	id10 := mk(10 * time.Millisecond)
	id30 := mk(30 * time.Millisecond)
	id20 := mk(20 * time.Millisecond)

	if tr.Trace(id30) == nil || tr.Trace(id20) == nil {
		t.Fatal("slowest traces not retained")
	}
	// The displaced 10ms trace was demoted to the unpinned class — it
	// stays retained (store not full) but is no longer pinned.
	if tr.Trace(id10) == nil {
		t.Fatal("demoted trace evicted without capacity pressure")
	}
	st := tr.Stats()
	if st.Pinned != 2 {
		t.Fatalf("Pinned = %d, want 2", st.Pinned)
	}
	if st.PinnedSlow != 3 {
		t.Fatalf("PinnedSlow = %d, want 3 (two fills + one displacement)", st.PinnedSlow)
	}

	// A faster-than-minimum trace must not displace anyone.
	idFast := mk(time.Millisecond)
	if tr.Trace(idFast) != nil {
		t.Fatal("fast trace retained under SampleRate 0")
	}
	if got := tr.Stats().Pinned; got != 2 {
		t.Fatalf("Pinned after fast trace = %d, want 2", got)
	}
}

func TestTailProbabilisticSample(t *testing.T) {
	// SampleRate 1 keeps everything.
	keep := NewTailTracer(0, 0, Policy{SampleRate: 1, SlowK: 0})
	for i := 0; i < 50; i++ {
		if id := finishOne(keep, "op"); keep.Trace(id) == nil {
			t.Fatal("SampleRate 1 discarded a trace")
		}
	}
	// SampleRate 0 discards everything unremarkable.
	drop := NewTailTracer(0, 0, Policy{SampleRate: 0, SlowK: 0})
	for i := 0; i < 50; i++ {
		if id := finishOne(drop, "op"); drop.Trace(id) != nil {
			t.Fatal("SampleRate 0 retained a clean trace")
		}
	}
	if st := drop.Stats(); st.Discarded != 50 || st.Finished != 50 {
		t.Fatalf("stats = %+v, want 50 finished / 50 discarded", st)
	}
}

func TestTailLateSpansAppendToRetained(t *testing.T) {
	tr := NewTailTracer(0, 0, Policy{SampleRate: 1, SlowK: 0})
	root := tr.StartRoot("op")
	sc := root.Context()
	root.End()
	tr.FinishTrace(sc.TraceID)
	if got := len(tr.Trace(sc.TraceID.String())); got != 1 {
		t.Fatalf("retained spans = %d, want 1", got)
	}

	// A straggler ending after FinishTrace lands in the retained trace.
	late := tr.StartSpan("straggler", sc)
	late.End()
	if got := len(tr.Trace(sc.TraceID.String())); got != 2 {
		t.Fatalf("after late span: %d spans, want 2", got)
	}
}

func TestTailLateSpansAfterDiscardAreDropped(t *testing.T) {
	tr := NewTailTracer(0, 0, Policy{SampleRate: 0, SlowK: 0})
	root := tr.StartRoot("op")
	sc := root.Context()
	root.End()
	tr.FinishTrace(sc.TraceID)

	late := tr.StartSpan("straggler", sc)
	late.End()
	if tr.Trace(sc.TraceID.String()) != nil {
		t.Fatal("late span resurrected a discarded trace")
	}
	if st := tr.Stats(); st.LateDroppedSpans != 1 {
		t.Fatalf("LateDroppedSpans = %d, want 1", st.LateDroppedSpans)
	}
}

func TestTailPendingServedBeforeFinish(t *testing.T) {
	tr := NewTailTracer(0, 0, DefaultPolicy())
	root := tr.StartRoot("op")
	sc := root.Context()
	child := tr.StartSpan("stage", sc)
	child.End()
	// Root not finished: the trace is pending but still readable.
	spans := tr.Trace(sc.TraceID.String())
	if len(spans) != 1 || spans[0].Name != "stage" {
		t.Fatalf("pending trace spans = %+v, want the ended child", spans)
	}
	if tr.StoredTraces() != 1 {
		t.Fatalf("StoredTraces = %d, want 1 (pending counts)", tr.StoredTraces())
	}
	root.End()
	tr.FinishTrace(sc.TraceID)
	if got := len(tr.Trace(sc.TraceID.String())); got != 2 {
		t.Fatalf("after finish: %d spans, want 2", got)
	}
}

func TestTailPendingAgeFinalize(t *testing.T) {
	tr := NewTailTracer(0, 0, Policy{SampleRate: 1, MaxPendingAge: time.Second})
	now := time.Unix(2000, 0)
	tr.SetClock(func() time.Time { return now })

	orphan := tr.StartRoot("abandoned")
	osc := orphan.Context()
	orphan.End() // ended root, but FinishTrace never called

	// Advance past MaxPendingAge; the next record sweeps the orphan.
	now = now.Add(2 * time.Second)
	finishOne(tr, "op")

	if st := tr.Stats(); st.Pending != 0 {
		t.Fatalf("Pending = %d, want 0 (age sweep)", st.Pending)
	}
	if tr.Trace(osc.TraceID.String()) == nil {
		t.Fatal("age-swept trace not retained under SampleRate 1")
	}
}

func TestTailPendingCapForcesFinalize(t *testing.T) {
	tr := NewTailTracer(0, 0, Policy{SampleRate: 1, MaxPending: 4})
	var scs []SpanContext
	for i := 0; i < 6; i++ {
		root := tr.StartRoot("op")
		scs = append(scs, root.Context())
		root.End() // pending: never finished explicitly
	}
	st := tr.Stats()
	if st.Pending > 4 {
		t.Fatalf("Pending = %d, want <= MaxPending 4", st.Pending)
	}
	// Force-finalized traces were kept (SampleRate 1), not lost.
	for _, sc := range scs {
		if tr.Trace(sc.TraceID.String()) == nil {
			t.Fatalf("trace %s lost to the pending cap", sc.TraceID)
		}
	}
}

func TestFinishTraceIdempotentAndNilSafe(t *testing.T) {
	var nilT *Tracer
	nilT.FinishTrace(TraceID{})
	nilT.FlushPending()

	tr := NewTailTracer(0, 0, DefaultPolicy())
	tr.FinishTrace(TraceID{}) // zero ID: no-op
	id := finishOne(tr, "op")
	key, _ := ParseTraceID(id)
	tr.FinishTrace(key) // second finish: no-op
	if st := tr.Stats(); st.Finished != 1 {
		t.Fatalf("Finished = %d, want 1", st.Finished)
	}

	// FIFO tracers ignore FinishTrace entirely.
	fifo := NewTracer(0, 0)
	sp := fifo.StartRoot("op")
	sp.End()
	fifo.FinishTrace(sp.Context().TraceID)
	if fifo.Trace(sp.Context().TraceID.String()) == nil {
		t.Fatal("FinishTrace disturbed a FIFO tracer")
	}
}

// TestTailEvictionPrefersUnpinned fills the store past its cap and
// checks pinned (errored) traces survive while unpinned ones evict.
func TestTailEvictionPrefersUnpinned(t *testing.T) {
	tr := NewTailTracer(4, 0, Policy{SampleRate: 1, SlowK: 0})
	root := tr.StartRoot("op")
	esc := root.Context()
	root.SetAttr("error", "boom")
	root.End()
	tr.FinishTrace(esc.TraceID)

	for i := 0; i < 8; i++ {
		finishOne(tr, "op")
	}
	if tr.StoredTraces() > 4 {
		t.Fatalf("StoredTraces = %d, want <= 4", tr.StoredTraces())
	}
	if tr.Trace(esc.TraceID.String()) == nil {
		t.Fatal("pinned errored trace evicted while unpinned traces existed")
	}
	if st := tr.Stats(); st.Evicted == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
}

// TestFIFOvsTailConcurrent hammers both tracer modes from concurrent
// writers — the CI -race stress target for the retention machinery.
func TestFIFOvsTailConcurrent(t *testing.T) {
	for _, mode := range []string{"fifo", "tail"} {
		t.Run(mode, func(t *testing.T) {
			var tr *Tracer
			if mode == "fifo" {
				tr = NewTracer(64, 0)
			} else {
				tr = NewTailTracer(64, 0, Policy{SampleRate: 0.5, SlowK: 4, MaxPending: 128})
			}
			const workers = 16
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						root := tr.StartRoot("op")
						sc := root.Context()
						child := tr.StartSpan("stage", sc)
						child.SetAttr("k", "v")
						if i%17 == 0 {
							child.SetAttr("error", "synthetic")
						}
						child.End()
						root.End()
						tr.FinishTrace(sc.TraceID)
						if i%31 == 0 {
							tr.Trace(sc.TraceID.String())
							tr.TraceIDs()
							tr.Stats()
						}
					}
				}(w)
			}
			wg.Wait()
			tr.FlushPending()
			if tr.StoredTraces() > 64+1 {
				t.Fatalf("store exceeded cap: %d", tr.StoredTraces())
			}
			if mode == "tail" {
				st := tr.Stats()
				if st.Finished == 0 || st.Pending != 0 {
					t.Fatalf("stats after flush: %+v", st)
				}
			}
		})
	}
}

// TestSpanZeroAlloc is the ingest-hot-path allocation guard (the
// tracer analog of TestEd25519VerifyZeroAlloc): span start, annotate,
// finish, and the whole-trace discard path must not allocate once the
// pools reach steady state.
func TestSpanZeroAlloc(t *testing.T) {
	tr := NewTailTracer(64, 0, Policy{SampleRate: 0, SlowK: 0})
	miniTrace := func() {
		root := tr.StartRoot("ingest.upload")
		sc := root.Context()
		child := tr.StartSpan("ingest.process", sc)
		child.SetAttr("outcome", "ok")
		child.End()
		root.End()
		tr.FinishTrace(sc.TraceID)
	}
	// Warm the span/pending pools and cycle the discard-memo ring to
	// its steady-state capacity.
	for i := 0; i < 3000; i++ {
		miniTrace()
	}
	if avg := testing.AllocsPerRun(1000, miniTrace); avg != 0 {
		t.Fatalf("span lifecycle allocates %.1f allocs/op, want 0", avg)
	}
}
