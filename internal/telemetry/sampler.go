package telemetry

import (
	"math/rand/v2"
	"sort"
	"time"
)

// Policy is the tail-sampling retention policy, applied when a trace
// finishes (FinishTrace, or the pending-age sweep for abandoned
// traces): errored traces are always kept, the rolling top-K slowest
// per root-span name are always kept, and the rest are kept with
// probability SampleRate. This is Canopy-style tail-based sampling —
// the keep decision sees the whole trace, so under heavy load the rare
// slow/error traces survive the flood of fast ones that evicts them
// from a FIFO store (experiment E23).
type Policy struct {
	// SampleRate is the keep probability for unremarkable traces
	// (clamped to [0,1]; 1 keeps everything — the default, matching
	// the legacy store's behavior under light load).
	SampleRate float64
	// SlowK pins the K slowest traces per root span name (<=0 disables
	// the slow heap; DefaultPolicy uses 8).
	SlowK int
	// MaxPending bounds how many unfinished traces may buffer at once;
	// past it the oldest pending trace is force-finished (default 4096).
	MaxPending int
	// MaxPendingAge force-finishes traces whose root never finished —
	// crashed workers, dropped messages (default 30s).
	MaxPendingAge time.Duration
}

// DefaultPolicy keeps everything except what the store can't hold:
// SampleRate 1, SlowK 8 — a strict superset of the FIFO store's
// retention for workloads that fit in MaxTraces.
func DefaultPolicy() Policy {
	return Policy{SampleRate: 1, SlowK: 8, MaxPending: 4096, MaxPendingAge: 30 * time.Second}
}

func (p Policy) withDefaults() Policy {
	if p.SampleRate < 0 {
		p.SampleRate = 0
	}
	if p.SampleRate > 1 {
		p.SampleRate = 1
	}
	if p.SlowK < 0 {
		p.SlowK = 0
	}
	if p.MaxPending <= 0 {
		p.MaxPending = 4096
	}
	if p.MaxPendingAge <= 0 {
		p.MaxPendingAge = 30 * time.Second
	}
	return p
}

// NewTailTracer creates a tail-sampling tracer: spans buffer per trace
// until FinishTrace (or the pending-age sweep), then p decides
// retention. Store caps as in NewTracer (<=0 selects defaults).
func NewTailTracer(maxTraces, maxSpansPerTrace int, p Policy) *Tracer {
	t := NewTracer(maxTraces, maxSpansPerTrace)
	t.SetPolicy(p)
	return t
}

// SetPolicy installs (or replaces) the tail-sampling policy, switching
// a FIFO tracer to tail mode. Already-retained traces are untouched.
func (t *Tracer) SetPolicy(p Policy) {
	if t == nil {
		return
	}
	p = p.withDefaults()
	t.mu.Lock()
	if t.pending == nil {
		t.pending = make(map[TraceID]*pendingTrace)
		t.slowHeaps = make(map[string][]slowEntry)
		memoSize := t.maxTraces
		if memoSize < 1024 {
			memoSize = 1024
		}
		t.discardMemo = make(map[TraceID]struct{}, memoSize)
		t.discardRing = make([]TraceID, memoSize)
		t.spanPool.New = func() any { return new(Span) }
		t.pendPool.New = func() any { return new(pendingTrace) }
	}
	t.mu.Unlock()
	t.policy.Store(&p)
}

// TailSampling reports whether a tail-sampling policy is installed.
func (t *Tracer) TailSampling() bool {
	return t != nil && t.policy.Load() != nil
}

// pendingTrace buffers one unfinished trace's ended spans (intrusive
// singly-linked list — no per-span container allocations).
type pendingTrace struct {
	key      TraceID
	head     *Span
	tail     *Span
	count    int
	rootName string
	errored  bool
	minStart time.Time
	maxEnd   time.Time
	created  time.Time

	prev, next *pendingTrace // age-ordered DLL, oldest first
}

// slowEntry is one occupant of a per-root-name slow-K heap.
type slowEntry struct {
	id   TraceID
	wall time.Duration
}

// recordTailLocked buffers one ended span into its pending trace,
// creating the buffer on first span. Spans for already-retained traces
// append directly (late arrivals after FinishTrace); spans for
// already-discarded traces are dropped.
func (t *Tracer) recordTailLocked(p *Policy, s *Span, now time.Time) {
	if rt, ok := t.retained[s.traceID]; ok {
		if len(rt.spans) >= t.maxPerTr {
			t.dropped++
		} else {
			rt.spans = append(rt.spans, s.toRecord(rt.id))
		}
		t.recycleSpan(s)
		return
	}
	if _, ok := t.discardMemo[s.traceID]; ok {
		t.lateDropped++
		t.recycleSpan(s)
		return
	}
	pt, ok := t.pending[s.traceID]
	if !ok {
		if len(t.pending) >= p.MaxPending && t.pendHead != nil {
			t.finalizeLocked(p, t.pendHead)
		}
		pt = t.pendPool.Get().(*pendingTrace)
		pt.key = s.traceID
		pt.created = now
		pt.minStart = s.start
		pt.maxEnd = s.end
		t.pending[s.traceID] = pt
		// Link at the DLL tail (newest).
		pt.prev = t.pendTail
		if t.pendTail != nil {
			t.pendTail.next = pt
		} else {
			t.pendHead = pt
		}
		t.pendTail = pt
	}
	if pt.count >= t.maxPerTr {
		t.dropped++
		t.recycleSpan(s)
		return
	}
	if pt.head == nil {
		pt.head = s
	} else {
		pt.tail.next = s
	}
	pt.tail = s
	pt.count++
	if s.parentID.IsZero() {
		pt.rootName = s.name
	}
	if s.errored {
		pt.errored = true
	}
	if s.start.Before(pt.minStart) {
		pt.minStart = s.start
	}
	if s.end.After(pt.maxEnd) {
		pt.maxEnd = s.end
	}
}

// sweepLocked force-finishes pending traces older than MaxPendingAge
// (at most two per call — O(1) amortized against the record rate).
func (t *Tracer) sweepLocked(p *Policy, now time.Time) {
	for i := 0; i < 2; i++ {
		pt := t.pendHead
		if pt == nil || now.Sub(pt.created) < p.MaxPendingAge {
			return
		}
		t.finalizeLocked(p, pt)
	}
}

// FinishTrace marks a trace complete and applies the retention policy.
// Call it where a trace's lifecycle truly ends — the ingest worker's
// ack, an HTTP handler's return, the watchdog tick. No-op in FIFO mode,
// for the zero ID, and for traces with no buffered spans.
func (t *Tracer) FinishTrace(id TraceID) {
	if t == nil || id.IsZero() {
		return
	}
	p := t.policy.Load()
	if p == nil {
		return
	}
	t.mu.Lock()
	if pt, ok := t.pending[id]; ok {
		t.finalizeLocked(p, pt)
	}
	t.mu.Unlock()
}

// FlushPending finalizes every pending trace immediately — tests and
// shutdown paths that want all retention decisions made now.
func (t *Tracer) FlushPending() {
	if t == nil {
		return
	}
	p := t.policy.Load()
	if p == nil {
		return
	}
	t.mu.Lock()
	for t.pendHead != nil {
		t.finalizeLocked(p, t.pendHead)
	}
	t.mu.Unlock()
}

// finalizeLocked applies the retention policy to one pending trace.
func (t *Tracer) finalizeLocked(p *Policy, pt *pendingTrace) {
	delete(t.pending, pt.key)
	t.unlinkPendingLocked(pt)
	t.finished++

	wall := pt.maxEnd.Sub(pt.minStart)
	if wall < 0 {
		wall = 0
	}
	pinned := false
	switch {
	case pt.errored:
		pinned = true
		t.pinnedErr++
	case t.slowKeepLocked(p, pt.rootName, pt.key, wall):
		pinned = true
		t.pinnedSlow++
	default:
		keep := p.SampleRate >= 1 || rand.Float64() < p.SampleRate
		if !keep {
			t.discarded++
			t.memoDiscardLocked(pt.key)
			for s := pt.head; s != nil; {
				next := s.next
				t.recycleSpan(s)
				s = next
			}
			t.recyclePending(pt)
			return
		}
	}

	id := pt.key.String()
	rt := &retainedTrace{
		key:      pt.key,
		id:       id,
		rootName: pt.rootName,
		wall:     wall,
		pinned:   pinned,
		spans:    make([]SpanRecord, 0, pt.count),
	}
	for s := pt.head; s != nil; {
		next := s.next
		rt.spans = append(rt.spans, s.toRecord(id))
		t.recycleSpan(s)
		s = next
	}
	sort.Slice(rt.spans, func(i, j int) bool { return rt.spans[i].Start.Before(rt.spans[j].Start) })
	if pinned {
		rt.elem = t.pinnedOrder.PushBack(rt)
	} else {
		rt.elem = t.normalOrder.PushBack(rt)
	}
	t.retained[pt.key] = rt
	t.recyclePending(pt)
	for len(t.retained) > t.maxTraces {
		if !t.evictOneLocked() {
			break
		}
	}
}

// slowKeepLocked decides whether wall earns a slot in rootName's
// slow-K heap, displacing (and demoting) the current minimum if so.
func (t *Tracer) slowKeepLocked(p *Policy, rootName string, id TraceID, wall time.Duration) bool {
	if p.SlowK <= 0 || rootName == "" {
		return false
	}
	heap := t.slowHeaps[rootName]
	if len(heap) < p.SlowK {
		t.slowHeaps[rootName] = append(heap, slowEntry{id: id, wall: wall})
		return true
	}
	minIdx := 0
	for i := 1; i < len(heap); i++ {
		if heap[i].wall < heap[minIdx].wall {
			minIdx = i
		}
	}
	if wall <= heap[minIdx].wall {
		return false
	}
	t.demoteLocked(heap[minIdx].id)
	heap[minIdx] = slowEntry{id: id, wall: wall}
	return true
}

// demoteLocked moves a formerly slow-pinned trace to the unpinned
// eviction class (it stays retained until capacity pressure).
func (t *Tracer) demoteLocked(id TraceID) {
	rt, ok := t.retained[id]
	if !ok || !rt.pinned {
		return
	}
	t.pinnedOrder.Remove(rt.elem)
	rt.pinned = false
	rt.elem = t.normalOrder.PushBack(rt)
}

// dropSlowEntryLocked removes an evicted trace's slow-heap slot so a
// stale minimum can't block future pins.
func (t *Tracer) dropSlowEntryLocked(rootName string, id TraceID) {
	heap, ok := t.slowHeaps[rootName]
	if !ok {
		return
	}
	for i := range heap {
		if heap[i].id == id {
			heap[i] = heap[len(heap)-1]
			t.slowHeaps[rootName] = heap[:len(heap)-1]
			return
		}
	}
}

// memoDiscardLocked remembers a discarded/evicted trace ID (bounded
// ring) so straggler spans are dropped instead of resurrecting a
// one-span ghost of a trace the policy already rejected.
func (t *Tracer) memoDiscardLocked(id TraceID) {
	if t.discardRing == nil {
		return
	}
	old := t.discardRing[t.discardIdx]
	if !old.IsZero() {
		delete(t.discardMemo, old)
	}
	t.discardRing[t.discardIdx] = id
	t.discardMemo[id] = struct{}{}
	t.discardIdx = (t.discardIdx + 1) % len(t.discardRing)
}

func (t *Tracer) unlinkPendingLocked(pt *pendingTrace) {
	if pt.prev != nil {
		pt.prev.next = pt.next
	} else {
		t.pendHead = pt.next
	}
	if pt.next != nil {
		pt.next.prev = pt.prev
	} else {
		t.pendTail = pt.prev
	}
	pt.prev, pt.next = nil, nil
}

func (t *Tracer) recyclePending(pt *pendingTrace) {
	*pt = pendingTrace{}
	t.pendPool.Put(pt)
}

// TracerStats is a point-in-time copy of the tracer's retention
// counters.
type TracerStats struct {
	Retained         int    `json:"retained"`
	Pinned           int    `json:"pinned"`
	Pending          int    `json:"pending"`
	Finished         uint64 `json:"finished"`
	Discarded        uint64 `json:"discarded"`
	Evicted          uint64 `json:"evicted"`
	PinnedErrors     uint64 `json:"pinned_errors"`
	PinnedSlow       uint64 `json:"pinned_slow"`
	DroppedSpans     uint64 `json:"dropped_spans"`
	LateDroppedSpans uint64 `json:"late_dropped_spans"`
	DroppedAttrs     uint64 `json:"dropped_attrs"`
}

// Stats returns the tracer's retention counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	st := TracerStats{
		Retained:         len(t.retained),
		Pinned:           t.pinnedOrder.Len(),
		Pending:          len(t.pending),
		Finished:         t.finished,
		Discarded:        t.discarded,
		Evicted:          t.evicted,
		PinnedErrors:     t.pinnedErr,
		PinnedSlow:       t.pinnedSlow,
		DroppedSpans:     t.dropped,
		LateDroppedSpans: t.lateDropped,
	}
	t.mu.Unlock()
	st.DroppedAttrs = t.attrDropped.Load()
	return st
}

// TraceSummary is the GET /traces/summary body: store-wide per-stage
// aggregation and merged critical-path attribution across every
// retained trace.
type TraceSummary struct {
	Traces              int           `json:"traces"`
	Pending             int           `json:"pending"`
	Stats               TracerStats   `json:"stats"`
	Stages              []StageStat   `json:"stages"`
	CriticalPath        []PathSegment `json:"critical_path,omitempty"`
	CriticalPathSkipped int           `json:"critical_path_skipped,omitempty"`
}

// Summary aggregates every retained trace: per-stage totals plus a
// merged critical path (per-stage self-time on the deepest-active
// span timeline, summed across traces).
func (t *Tracer) Summary() TraceSummary {
	if t == nil {
		return TraceSummary{}
	}
	t.mu.Lock()
	// Snapshot slice headers only: retained span slices are append-only
	// past their captured length, so reading them outside the lock is
	// safe.
	traces := make([][]SpanRecord, 0, len(t.retained))
	for _, rt := range t.retained {
		traces = append(traces, rt.spans)
	}
	t.mu.Unlock()

	sum := TraceSummary{Stats: t.Stats()}
	sum.Traces = sum.Stats.Retained
	sum.Pending = sum.Stats.Pending

	var all []SpanRecord
	critSelf := make(map[string]time.Duration)
	var critTotal time.Duration
	for _, spans := range traces {
		all = append(all, spans...)
		if len(spans) > criticalPathSpanCap {
			sum.CriticalPathSkipped++
			continue
		}
		for _, seg := range CriticalPath(spans) {
			critSelf[seg.Name] += seg.Self
			critTotal += seg.Self
		}
	}
	sum.Stages = StageBreakdown(all)
	if len(critSelf) > 0 {
		sum.CriticalPath = make([]PathSegment, 0, len(critSelf))
		for name, self := range critSelf {
			seg := PathSegment{Name: name, Self: self}
			if critTotal > 0 {
				seg.Share = float64(self) / float64(critTotal)
			}
			sum.CriticalPath = append(sum.CriticalPath, seg)
		}
		sort.Slice(sum.CriticalPath, func(i, j int) bool {
			if sum.CriticalPath[i].Self != sum.CriticalPath[j].Self {
				return sum.CriticalPath[i].Self > sum.CriticalPath[j].Self
			}
			return sum.CriticalPath[i].Name < sum.CriticalPath[j].Name
		})
	}
	return sum
}
