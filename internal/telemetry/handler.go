package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// MetricsHandler serves the registry in Prometheus text format at
// GET /metrics. With a nil registry it reports telemetry disabled.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if r == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
}

// TraceResponse is the GET /traces/{id} body: the raw spans, the
// per-stage aggregation, and the critical-path attribution derived
// from them.
type TraceResponse struct {
	TraceID      string        `json:"trace_id"`
	Spans        []SpanRecord  `json:"spans"`
	Stages       []StageStat   `json:"stages"`
	CriticalPath []PathSegment `json:"critical_path,omitempty"`
}

// TraceHandler serves one trace as JSON. Expects the trace ID as the
// {id} path value (Go 1.22 pattern routing) or the last path segment.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if t == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		id := req.PathValue("id")
		if id == "" {
			if i := strings.LastIndexByte(req.URL.Path, '/'); i >= 0 {
				id = req.URL.Path[i+1:]
			}
		}
		spans := t.Trace(id)
		if len(spans) == 0 {
			http.Error(w, "unknown trace", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TraceResponse{
			TraceID:      id,
			Spans:        spans,
			Stages:       StageBreakdown(spans),
			CriticalPath: CriticalPath(spans),
		})
	})
}

// TraceSummaryHandler serves the store-wide trace aggregation — per-
// stage totals and merged critical-path attribution across every
// retained trace — at GET /traces/summary.
func TraceSummaryHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if t == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t.Summary())
	})
}

// StartPprof serves net/http/pprof on its own listener — the opt-in
// profiling hook (`healthcloud -pprof`). It returns the server (Close
// to stop) and the bound address (addr may use port 0).
func StartPprof(addr string) (*http.Server, net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
