package telemetry

import (
	"testing"
	"time"
)

func BenchmarkSpanLifecycle(b *testing.B) {
	tr := NewTracer(0, 0)
	root := tr.StartRoot("bench")
	parent := root.Context()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("stage", parent)
		sp.SetAttr("k", "v")
		sp.End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Millisecond)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkStartRoot(b *testing.B) {
	tr := NewTracer(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("bench")
		sp.End()
	}
}
